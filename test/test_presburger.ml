(* Tests for the Presburger/Omega substrate.  The property tests cross-check
   the symbolic engine against brute-force enumeration over a bounding box,
   which is exact because every generated polyhedron contains its box. *)

module L = Presburger.Linexpr
module C = Presburger.Constr
module P = Presburger.Poly
module Omega = Presburger.Omega
module Dnf = Presburger.Dnf
module Iset = Presburger.Iset
module Rel = Presburger.Rel
module Lexo = Presburger.Lex
module Enum = Presburger.Enum

(* Convenient constraint builders; the first argument documents the
   dimension at call sites. *)
let ge _n coef const = C.Ge (L.make (Array.of_list coef) const)
let eq _n coef const = C.Eq (L.make (Array.of_list coef) const)
let dv _n m coef const = C.Div (m, L.make (Array.of_list coef) const)

(* ------------------------------------------------------------------ *)
(* Linexpr                                                              *)

let test_linexpr_ops () =
  let e = L.make [| 2; -3 |] 5 in
  Alcotest.(check int) "eval" 4 (L.eval e [| 1; 1 |]);
  Alcotest.(check int) "coeff" (-3) (L.coeff e 1);
  let f = L.add e (L.var 2 1) in
  Alcotest.(check int) "add coeff" (-2) (L.coeff f 1);
  let g = L.subst e 1 (L.make [| 1; 0 |] 2) in
  (* x1 := x0 + 2 : 2x0 - 3(x0+2) + 5 = -x0 - 1 *)
  Alcotest.(check int) "subst coeff0" (-1) (L.coeff g 0);
  Alcotest.(check int) "subst const" (-1) (L.constant g);
  let h = L.assign e 0 10 in
  Alcotest.(check int) "assign const" 25 (L.constant h);
  Alcotest.(check int) "assign coeff" 0 (L.coeff h 0)

let test_linexpr_remap () =
  let e = L.make [| 1; 2 |] 3 in
  let r = L.remap e 4 [| 2; 0 |] in
  Alcotest.(check int) "remapped c0" 2 (L.coeff r 0);
  Alcotest.(check int) "remapped c2" 1 (L.coeff r 2);
  Alcotest.(check int) "dim" 4 (L.dim r);
  let d = L.drop_var (L.make [| 0; 5 |] 1) 0 in
  Alcotest.(check int) "dropped dim" 1 (L.dim d);
  Alcotest.(check int) "dropped coeff" 5 (L.coeff d 0)

(* ------------------------------------------------------------------ *)
(* Constr                                                               *)

let test_constr_normalize () =
  (* 2x + 4 ≥ 0 → x + 2 ≥ 0 *)
  (match C.normalize (ge 1 [ 2 ] 4) with
  | C.Keep (C.Ge e) ->
      Alcotest.(check int) "tightened coeff" 1 (L.coeff e 0);
      Alcotest.(check int) "tightened const" 2 (L.constant e)
  | _ -> Alcotest.fail "expected Keep Ge");
  (* 2x + 3 ≥ 0 → x + 1 ≥ 0 (integer tightening: x ≥ -3/2 ⟹ x ≥ -1) *)
  (match C.normalize (ge 1 [ 2 ] 3) with
  | C.Keep (C.Ge e) ->
      Alcotest.(check int) "tighten floor" 1 (L.constant e)
  | _ -> Alcotest.fail "expected Keep Ge");
  (* 2x + 3 = 0 has no integer solution *)
  (match C.normalize (eq 1 [ 2 ] 3) with
  | C.Contradiction -> ()
  | _ -> Alcotest.fail "expected contradiction");
  (* constants *)
  (match C.normalize (ge 1 [ 0 ] (-1)) with
  | C.Contradiction -> ()
  | _ -> Alcotest.fail "ground false");
  (match C.normalize (ge 1 [ 0 ] 0) with
  | C.Tautology -> ()
  | _ -> Alcotest.fail "ground true");
  (* Div reduction: 4 | 2x + 2 → 2 | x + 1 *)
  match C.normalize (dv 1 4 [ 2 ] 2) with
  | C.Keep (C.Div (2, e)) ->
      Alcotest.(check int) "div coeff" 1 (L.coeff e 0);
      Alcotest.(check int) "div const" 1 (L.constant e)
  | _ -> Alcotest.fail "expected 2 | x + 1"

let gen_point n = QCheck2.Gen.(array_size (pure n) (int_range (-12) 12))

let gen_constr n =
  QCheck2.Gen.(
    let* kind = int_range 0 2 in
    let* coef = array_size (pure n) (int_range (-3) 3) in
    let* const = int_range (-8) 8 in
    match kind with
    | 0 -> pure (C.Ge (L.make coef const))
    | 1 -> pure (C.Eq (L.make coef const))
    | _ ->
        let* m = int_range 2 4 in
        pure (C.Div (m, L.make coef const)))

let prop_negate_complements =
  QCheck2.Test.make ~name:"negate is pointwise complement" ~count:500
    QCheck2.Gen.(pair (gen_constr 2) (gen_point 2))
    (fun (c, xs) ->
      let holds = C.holds c xs in
      let neg_holds = List.exists (fun nc -> C.holds nc xs) (C.negate c) in
      holds = not neg_holds)

let prop_normalize_preserves =
  QCheck2.Test.make ~name:"normalize preserves satisfaction" ~count:500
    QCheck2.Gen.(pair (gen_constr 2) (gen_point 2))
    (fun (c, xs) ->
      match C.normalize c with
      | C.Keep c' -> C.holds c xs = C.holds c' xs
      | C.Tautology -> C.holds c xs
      | C.Contradiction -> not (C.holds c xs))

(* ------------------------------------------------------------------ *)
(* Omega: emptiness on hand-picked systems                              *)

let box n lo hi =
  List.concat
    (List.init n (fun k ->
         [
           C.Ge (L.add_const (L.var n k) (-lo));
           C.Ge (L.add_const (L.neg (L.var n k)) hi);
         ]))

let test_empty_basic () =
  (* x ≥ 1 ∧ x ≤ 0 *)
  let p = P.make 1 [ ge 1 [ 1 ] (-1); ge 1 [ -1 ] 0 ] in
  Alcotest.(check bool) "interval empty" true (Omega.is_empty p);
  let p = P.make 1 [ ge 1 [ 1 ] (-1); ge 1 [ -1 ] 5 ] in
  Alcotest.(check bool) "interval nonempty" false (Omega.is_empty p);
  (* 2x = 1 *)
  Alcotest.(check bool) "2x=1 empty" true
    (Omega.is_empty (P.make 1 [ eq 1 [ 2 ] (-1) ]));
  Alcotest.(check bool) "2x=4 nonempty" false
    (Omega.is_empty (P.make 1 [ eq 1 [ 2 ] (-4) ]))

let test_empty_diophantine () =
  (* 3x + 5y = 1 has integer solutions… *)
  Alcotest.(check bool) "3x+5y=1" false
    (Omega.is_empty (P.make 2 [ eq 2 [ 3; 5 ] (-1) ]));
  (* …but none with 0 ≤ x,y ≤ 1 *)
  Alcotest.(check bool) "3x+5y=1 in box" true
    (Omega.is_empty (P.make 2 (eq 2 [ 3; 5 ] (-1) :: box 2 0 1)));
  (* 6x + 10y = 3: gcd 2 does not divide 3 *)
  Alcotest.(check bool) "6x+10y=3" true
    (Omega.is_empty (P.make 2 [ eq 2 [ 6; 10 ] (-3) ]))

let test_empty_pugh_example () =
  (* Pugh (CACM'92): 27 ≤ 11x + 13y ≤ 45 ∧ -10 ≤ 7x - 9y ≤ 4 has no integer
     solution although its real shadow is non-empty — exercises dark shadow
     and splinters. *)
  let p =
    P.make 2
      [
        ge 2 [ 11; 13 ] (-27);
        ge 2 [ -11; -13 ] 45;
        ge 2 [ 7; -9 ] 10;
        ge 2 [ -7; 9 ] 4;
      ]
  in
  Alcotest.(check bool) "pugh system empty" true (Omega.is_empty p)

let test_empty_div () =
  let p = P.make 1 (dv 1 2 [ 1 ] 0 :: dv 1 3 [ 1 ] 0 :: box 1 1 5) in
  Alcotest.(check bool) "2|x ∧ 3|x ∧ 1≤x≤5" true (Omega.is_empty p);
  let p = P.make 1 (dv 1 2 [ 1 ] 0 :: dv 1 3 [ 1 ] 0 :: box 1 1 6) in
  Alcotest.(check bool) "…1≤x≤6 has x=6" false (Omega.is_empty p)

(* ------------------------------------------------------------------ *)
(* Brute-force cross-checks                                             *)

let rec box_points n lo hi =
  if n = 0 then [ [] ]
  else
    let rest = box_points (n - 1) lo hi in
    List.concat_map
      (fun v -> List.map (fun tl -> v :: tl) rest)
      (List.init (hi - lo + 1) (fun i -> lo + i))

let brute_points n p =
  List.filter_map
    (fun l ->
      let xs = Array.of_list l in
      if P.mem p xs then Some xs else None)
    (box_points n (-12) 12)

let gen_poly n =
  (* Always includes the box so sets are bounded and brute force is exact. *)
  QCheck2.Gen.(
    let* k = int_range 0 3 in
    let* cs = list_size (pure k) (gen_constr n) in
    pure (P.make n (cs @ box n (-10) 10)))

let prop_emptiness_matches_brute =
  QCheck2.Test.make ~name:"is_empty agrees with brute force (2D)" ~count:300
    (gen_poly 2) (fun p ->
      Omega.is_empty p = (brute_points 2 p = []))

let prop_emptiness_matches_brute_3d =
  QCheck2.Test.make ~name:"is_empty agrees with brute force (3D)" ~count:80
    (gen_poly 3) (fun p ->
      Omega.is_empty p = (brute_points 3 p = []))

let sorted_points pts =
  List.sort_uniq (fun a b -> Linalg.Ivec.compare_lex a b) pts

let prop_projection_exact =
  QCheck2.Test.make ~name:"eliminate = exact integer projection (2D→1D)"
    ~count:300 (gen_poly 2) (fun p ->
      let projected = Omega.eliminate p 1 in
      let expected =
        brute_points 2 p |> List.map (fun xs -> [| xs.(0) |]) |> sorted_points
      in
      let got =
        List.concat_map (brute_points 1) projected |> sorted_points
      in
      expected = got)

let prop_projection_exact_mid =
  QCheck2.Test.make ~name:"eliminate middle var exact (3D→2D)" ~count:80
    (gen_poly 3) (fun p ->
      let projected = Omega.eliminate p 1 in
      let expected =
        brute_points 3 p
        |> List.map (fun xs -> [| xs.(0); xs.(2) |])
        |> sorted_points
      in
      let got =
        List.concat_map (brute_points 2) projected |> sorted_points
      in
      expected = got)

let prop_diff_pointwise =
  QCheck2.Test.make ~name:"diff is pointwise difference" ~count:150
    QCheck2.Gen.(pair (gen_poly 2) (gen_poly 2))
    (fun (a, b) ->
      let d = Dnf.diff [ a ] [ b ] in
      List.for_all
        (fun l ->
          let xs = Array.of_list l in
          Dnf.mem d xs = (P.mem a xs && not (P.mem b xs)))
        (box_points 2 (-11) 11))

let prop_enum_matches_brute =
  QCheck2.Test.make ~name:"Enum.points_polys = brute force" ~count:150
    QCheck2.Gen.(pair (gen_poly 2) (gen_poly 2))
    (fun (a, b) ->
      let got = Enum.points_polys 2 [ a; b ] in
      let expected =
        sorted_points (brute_points 2 a @ brute_points 2 b)
      in
      got = expected)

let prop_simplify_preserves =
  QCheck2.Test.make ~name:"simplify preserves the set" ~count:100
    QCheck2.Gen.(pair (gen_poly 2) (gen_poly 2))
    (fun (a, b) ->
      let s = Dnf.simplify ~aggressive:true [ a; b ] in
      List.for_all
        (fun l ->
          let xs = Array.of_list l in
          Dnf.mem s xs = (P.mem a xs || P.mem b xs))
        (box_points 2 (-11) 11))

(* ------------------------------------------------------------------ *)
(* Iset / Rel                                                           *)

let iters2 = [| "i"; "j" |]
let no_params = ([||] : string array)

let test_iset_ops () =
  let mk cons = P.make 2 cons in
  let s1 = Iset.make ~iters:iters2 ~params:no_params [ mk (box 2 1 5) ] in
  let s2 = Iset.make ~iters:iters2 ~params:no_params [ mk (box 2 3 8) ] in
  let inter = Iset.inter s1 s2 in
  Alcotest.(check bool) "mem (4,4)" true (Iset.mem inter [| 4; 4 |]);
  Alcotest.(check bool) "not mem (2,4)" false (Iset.mem inter [| 2; 4 |]);
  let d = Iset.diff s1 s2 in
  Alcotest.(check bool) "diff mem (2,2)" true (Iset.mem d [| 2; 2 |]);
  Alcotest.(check bool) "diff not mem (4,4)" false (Iset.mem d [| 4; 4 |]);
  Alcotest.(check bool) "union = s1 when subset" true
    (Iset.subset (Iset.inter s1 s2) s1);
  Alcotest.(check int) "cardinal 5x5" 25 (Enum.cardinal s1)

let test_iset_params () =
  (* { i | 1 ≤ i ≤ N } with parameter N bound to 7. *)
  let iters = [| "i" |] and params = [| "N" |] in
  let p =
    P.make 2
      [
        C.Ge (L.make [| 1; 0 |] (-1));
        (* i - 1 ≥ 0 *)
        C.Ge (L.make [| -1; 1 |] 0);
        (* N - i ≥ 0 *)
      ]
  in
  let s = Iset.make ~iters ~params [ p ] in
  Alcotest.(check bool) "nonempty symbolically" false (Iset.is_empty s);
  let b = Iset.bind_params s [| 7 |] in
  Alcotest.(check int) "7 points" 7 (Enum.cardinal b);
  Alcotest.(check bool) "mem 7" true (Iset.mem b [| 7 |]);
  Alcotest.(check bool) "not mem 8" false (Iset.mem b [| 8 |])

let test_cardinal_matches_points () =
  (* cardinal counts during the projection recursion without building the
     point lists; it must agree with the enumeration on overlapping
     unions, intersections and differences. *)
  let mk cons = P.make 2 cons in
  let s1 = Iset.make ~iters:iters2 ~params:no_params [ mk (box 2 1 5) ] in
  let s2 = Iset.make ~iters:iters2 ~params:no_params [ mk (box 2 3 8) ] in
  List.iter
    (fun (label, s) ->
      Alcotest.(check int) label
        (List.length (Enum.points s))
        (Enum.cardinal s))
    [
      ("box", s1);
      ("union", Iset.union s1 s2);
      ("inter", Iset.inter s1 s2);
      ("diff", Iset.diff s1 s2);
      ("empty", Iset.empty ~iters:iters2 ~params:no_params);
    ]

let prop_cardinal_matches_enum =
  QCheck2.Test.make ~name:"Enum.cardinal = |Enum.points|" ~count:100
    QCheck2.Gen.(pair (gen_poly 2) (gen_poly 2))
    (fun (a, b) ->
      let s = Iset.make ~iters:iters2 ~params:no_params [ a; b ] in
      Enum.cardinal s = List.length (Enum.points s))

let test_values_1d_eq_negative_coef () =
  (* -3i + 12 = 0 has the single solution i = 4 whatever the sign of the
     leading coefficient; -3i + 7 = 0 has no integer solution. *)
  let iters = [| "i" |] in
  let solvable =
    Iset.make ~iters ~params:no_params
      [ P.make 1 [ eq 1 [ -3 ] 12; ge 1 [ 1 ] 0 ] ]
  in
  Alcotest.(check int) "one solution" 1 (Enum.cardinal solvable);
  Alcotest.(check bool) "it is 4" true (Enum.points solvable = [ [| 4 |] ]);
  let unsolvable =
    Iset.make ~iters ~params:no_params
      [ P.make 1 [ eq 1 [ -3 ] 7; ge 1 [ 1 ] 0 ] ]
  in
  Alcotest.(check int) "no integer solution" 0 (Enum.cardinal unsolvable);
  Alcotest.(check bool) "empty" true (Enum.points unsolvable = [])

(* The figure-2 relation of the paper: pairs (i,j) with 2i = 21 - j over
   1..20, oriented forward. *)
let fig2_rel () =
  let inn = [| "i" |] and out = [| "j" |] in
  let p =
    P.make 2
      (eq 2 [ 2; 1 ] (-21)
      :: [
           ge 2 [ 1; 0 ] (-1);
           ge 2 [ -1; 0 ] 20;
           ge 2 [ 0; 1 ] (-1);
           ge 2 [ 0; -1 ] 20;
         ])
  in
  Rel.symmetric_closure_forward
    (Rel.make ~inn ~out ~params:no_params [ p ])

let test_rel_fig2 () =
  let rd = fig2_rel () in
  (* Forward arrows computed by hand: (1,19) (2,17) (3,15) (4,13) (5,11)
     (6,9) (5,8) (3,9) (1,10).  Self-pair (7,7) must be excluded by ≺. *)
  let expect = [ (1, 19); (2, 17); (3, 15); (4, 13); (5, 11); (6, 9); (5, 8); (3, 9); (1, 10) ] in
  List.iter
    (fun (i, j) ->
      Alcotest.(check bool)
        (Printf.sprintf "(%d,%d) in Rd" i j)
        true
        (Rel.mem rd ~params:[||] [| i |] [| j |]))
    expect;
  Alcotest.(check bool) "no self-dep (7,7)" false
    (Rel.mem rd ~params:[||] [| 7 |] [| 7 |]);
  (* dom and ran as point sets *)
  let dom_pts = Enum.points (Rel.dom rd) in
  let ran_pts = Enum.points (Rel.ran rd) in
  let to_list pts = List.map (fun a -> a.(0)) pts in
  Alcotest.(check (list int)) "dom" [ 1; 2; 3; 4; 5; 6 ] (to_list dom_pts);
  Alcotest.(check (list int))
    "ran" [ 8; 9; 10; 11; 13; 15; 17; 19 ] (to_list ran_pts);
  (* image/preimage *)
  Alcotest.(check (list int)) "image of 3" [ 9; 15 ]
    (List.map (fun a -> a.(0)) (Rel.image rd ~params:[||] [| 3 |]));
  Alcotest.(check (list int)) "preimage of 9" [ 3; 6 ]
    (List.map (fun a -> a.(0)) (Rel.preimage rd ~params:[||] [| 9 |]))

let test_rel_compose () =
  (* r = {x → x+2 | 0 ≤ x ≤ 10}, r∘r = {x → x+4 | …} *)
  let inn = [| "x" |] and out = [| "y" |] in
  let p =
    P.make 2 [ eq 2 [ 1; -1 ] 2; ge 2 [ 1; 0 ] 0; ge 2 [ -1; 0 ] 10 ]
  in
  let r = Rel.make ~inn ~out ~params:no_params [ p ] in
  let rr = Rel.compose r r in
  Alcotest.(check bool) "0→4" true (Rel.mem rr ~params:[||] [| 0 |] [| 4 |]);
  Alcotest.(check bool) "0→2 not" false
    (Rel.mem rr ~params:[||] [| 0 |] [| 2 |]);
  Alcotest.(check bool) "9→13 needs mid 11 out of bounds" false
    (Rel.mem rr ~params:[||] [| 9 |] [| 13 |]);
  Alcotest.(check bool) "8→12" true (Rel.mem rr ~params:[||] [| 8 |] [| 12 |])

let test_lex () =
  let lt = Lexo.lt ~n_total:4 ~fst_off:0 ~snd_off:2 ~len:2 in
  let mem i j = Dnf.mem lt (Array.append i j) in
  Alcotest.(check bool) "(1,5)≺(2,0)" true (mem [| 1; 5 |] [| 2; 0 |]);
  Alcotest.(check bool) "(1,5)≺(1,6)" true (mem [| 1; 5 |] [| 1; 6 |]);
  Alcotest.(check bool) "(1,5)⊀(1,5)" false (mem [| 1; 5 |] [| 1; 5 |]);
  Alcotest.(check bool) "(2,0)⊀(1,9)" false (mem [| 2; 0 |] [| 1; 9 |]);
  let le_ = Lexo.le ~n_total:4 ~fst_off:0 ~snd_off:2 ~len:2 in
  Alcotest.(check bool) "(1,5)≼(1,5)" true
    (Dnf.mem le_ [| 1; 5; 1; 5 |])

let () =
  Alcotest.run "presburger"
    [
      ( "linexpr",
        [
          Alcotest.test_case "ops" `Quick test_linexpr_ops;
          Alcotest.test_case "remap/drop" `Quick test_linexpr_remap;
        ] );
      ( "constr",
        [
          Alcotest.test_case "normalize" `Quick test_constr_normalize;
          QCheck_alcotest.to_alcotest prop_negate_complements;
          QCheck_alcotest.to_alcotest prop_normalize_preserves;
        ] );
      ( "omega",
        [
          Alcotest.test_case "basic emptiness" `Quick test_empty_basic;
          Alcotest.test_case "diophantine" `Quick test_empty_diophantine;
          Alcotest.test_case "pugh dark-shadow example" `Quick
            test_empty_pugh_example;
          Alcotest.test_case "divisibility" `Quick test_empty_div;
          QCheck_alcotest.to_alcotest prop_emptiness_matches_brute;
          QCheck_alcotest.to_alcotest prop_emptiness_matches_brute_3d;
          QCheck_alcotest.to_alcotest prop_projection_exact;
          QCheck_alcotest.to_alcotest prop_projection_exact_mid;
        ] );
      ( "dnf",
        [
          QCheck_alcotest.to_alcotest prop_diff_pointwise;
          QCheck_alcotest.to_alcotest prop_enum_matches_brute;
          QCheck_alcotest.to_alcotest prop_simplify_preserves;
        ] );
      ( "iset",
        [
          Alcotest.test_case "set algebra" `Quick test_iset_ops;
          Alcotest.test_case "parameters" `Quick test_iset_params;
          Alcotest.test_case "cardinal = |points|" `Quick
            test_cardinal_matches_points;
          QCheck_alcotest.to_alcotest prop_cardinal_matches_enum;
          Alcotest.test_case "1-D equality, negative coefficient" `Quick
            test_values_1d_eq_negative_coef;
        ] );
      ( "rel",
        [
          Alcotest.test_case "paper fig.2 relation" `Quick test_rel_fig2;
          Alcotest.test_case "compose" `Quick test_rel_compose;
          Alcotest.test_case "lex order" `Quick test_lex;
        ] );
    ]
