(* Tests for the socket front-end: address parsing, JSONL framing edge
   cases (partial line across reads, several lines in one read,
   oversized line discarded without losing framing, CRLF, EOF with an
   unterminated tail), and the server end to end over a Unix socket —
   pipelined requests answered in request order, cache hits across a
   connection, oversized requests as typed bad-request records on a
   still-usable connection, load shedding under a saturated queue, and
   graceful drain. *)

module Addr = Net.Addr
module Frame = Net.Frame
module Server = Net.Server
module Client = Net.Client
module Proto = Svc.Proto
module Service = Svc.Service
module Json = Pipeline.Json

let temp_dir =
  let n = ref 0 in
  fun prefix ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !n)
    in
    Unix.mkdir d 0o700;
    d

(* ------------------------------------------------------------------ *)
(* Addr                                                                 *)

let test_addr_parse () =
  (match Addr.parse "unix:/tmp/x.sock" with
  | Ok (Addr.Unix_sock p) -> Alcotest.(check string) "unix path" "/tmp/x.sock" p
  | _ -> Alcotest.fail "unix form");
  (match Addr.parse "tcp:127.0.0.1:8080" with
  | Ok (Addr.Tcp { host; port }) ->
      Alcotest.(check string) "host" "127.0.0.1" host;
      Alcotest.(check int) "port" 8080 port
  | _ -> Alcotest.fail "tcp form");
  (match Addr.parse "localhost:0" with
  | Ok (Addr.Tcp { host; port }) ->
      Alcotest.(check string) "shorthand host" "localhost" host;
      Alcotest.(check int) "shorthand port" 0 port
  | _ -> Alcotest.fail "host:port shorthand");
  List.iter
    (fun bad ->
      match Addr.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" bad))
    [ "nonsense"; "tcp:noport"; "host:99999"; ":123"; "tcp:h:x" ]

(* ------------------------------------------------------------------ *)
(* Frame                                                                *)

let with_pair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_all fd s =
  ignore (Unix.write fd (Bytes.of_string s) 0 (String.length s))

let next r = Frame.next r ~timeout_s:5.0

let test_frame_partial_line () =
  with_pair (fun a b ->
      let r = Frame.reader b in
      write_all a "{\"id\":";
      write_all a "\"r1\"";
      write_all a "}\n";
      match next r with
      | Frame.Line l ->
          Alcotest.(check string) "reassembled across reads" "{\"id\":\"r1\"}" l
      | _ -> Alcotest.fail "expected a line")

let test_frame_pipelined_lines () =
  with_pair (fun a b ->
      let r = Frame.reader b in
      write_all a "one\ntwo\r\nthree\n";
      let got =
        List.init 3 (fun _ ->
            match next r with
            | Frame.Line l -> l
            | _ -> Alcotest.fail "expected a line")
      in
      Alcotest.(check (list string))
        "one read, three frames (CRLF tolerated)"
        [ "one"; "two"; "three" ] got)

let test_frame_oversized_keeps_framing () =
  with_pair (fun a b ->
      let r = Frame.reader ~max_line:16 b in
      (* oversized line delivered in several chunks, then a valid one *)
      write_all a (String.make 40 'x');
      write_all a (String.make 40 'y');
      write_all a "\nok\n";
      (match next r with
      | Frame.Too_long n ->
          Alcotest.(check bool) "discarded count covers the line" true (n >= 80)
      | _ -> Alcotest.fail "expected Too_long");
      match next r with
      | Frame.Line l -> Alcotest.(check string) "framing recovered" "ok" l
      | _ -> Alcotest.fail "expected the next line")

let test_frame_eof_drops_tail () =
  with_pair (fun a b ->
      let r = Frame.reader b in
      write_all a "complete\nunterminated";
      Unix.close a;
      (match next r with
      | Frame.Line l -> Alcotest.(check string) "complete line" "complete" l
      | _ -> Alcotest.fail "expected a line");
      (match next r with
      | Frame.Eof -> ()
      | _ -> Alcotest.fail "unterminated tail is not a frame");
      match next r with
      | Frame.Eof -> ()
      | _ -> Alcotest.fail "Eof is sticky")

let test_frame_idle_timeout () =
  with_pair (fun _a b ->
      let r = Frame.reader b in
      match Frame.next r ~timeout_s:0.05 with
      | Frame.Idle_timeout -> ()
      | _ -> Alcotest.fail "expected Idle_timeout")

let test_frame_read_timeout () =
  with_pair (fun a b ->
      let r = Frame.reader b in
      write_all a "partial-without-newline";
      (* let the bytes arrive, then stall *)
      (match Frame.next r ~timeout_s:0.2 with
      | Frame.Read_timeout -> ()
      | Frame.Idle_timeout -> Alcotest.fail "partial line must be Read_timeout"
      | _ -> Alcotest.fail "expected a timeout");
      ())

(* ------------------------------------------------------------------ *)
(* Server                                                               *)

let service_config =
  {
    Service.default_config with
    domains = 2;
    threads = 1;
    check = false;
    measure = false;
  }

let with_server ?(service_config = service_config) ?server_config f =
  let svc = Service.create ~config:service_config () in
  let sock =
    Filename.concat (temp_dir "net") "s.sock"
  in
  let server = Server.start ?config:server_config svc (Addr.Unix_sock sock) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Service.shutdown svc)
    (fun () -> f server (Addr.Unix_sock sock))

let req_line ?(id = "r1") ?(n = 24) () =
  Json.to_string
    (Proto.request_to_json
       (Proto.request ~params:[ ("n", n) ] ~id ~name:"t"
          (Proto.Src "DO i = 1, n\n  A(i) = A(i-1) + 1\nENDDO\n")))

let get_str k j =
  match Json.member k j with Some (Json.Str s) -> s | _ -> "?"

let get_bool k j =
  match Json.member k j with Some (Json.Bool b) -> b | _ -> false

let parse_line line =
  match Json.parse line with Ok j -> j | Error m -> Alcotest.fail m

let test_server_pipelined_in_order () =
  with_server (fun _server addr ->
      let c = Result.get_ok (Client.connect addr) in
      (* pipeline: compute, introspect, duplicate — one write each, no
         reads until all three are in flight *)
      Result.get_ok (Client.send c (req_line ~id:"a" ()));
      Result.get_ok (Client.send c "{\"id\":\"b\",\"mode\":\"metrics\"}");
      Result.get_ok (Client.send c (req_line ~id:"c" ~n:25 ()));
      let r1 = parse_line (Result.get_ok (Client.recv c)) in
      let r2 = parse_line (Result.get_ok (Client.recv c)) in
      let r3 = parse_line (Result.get_ok (Client.recv c)) in
      Alcotest.(check (list string))
        "responses in request order, not completion order"
        [ "a"; "b"; "c" ]
        [ get_str "id" r1; get_str "id" r2; get_str "id" r3 ];
      Alcotest.(check string) "computed ok" "ok" (get_str "status" r1);
      Alcotest.(check string) "introspection ok" "ok" (get_str "status" r2);
      Alcotest.(check string) "second compute ok" "ok" (get_str "status" r3);
      (* with the pipeline settled, a duplicate is a cache hit *)
      let r4 = parse_line (Result.get_ok (Client.call c (req_line ~id:"d" ()))) in
      Alcotest.(check bool) "duplicate answered from cache" true
        (get_bool "cached" r4);
      (* the metrics op sees the server's own gauges *)
      (match Json.member "metrics" r2 with
      | Some m ->
          Alcotest.(check bool) "net.conns gauge exported" true
            (Json.member "gauges" m <> None)
      | None -> Alcotest.fail "metrics body missing");
      Client.close c)

let test_server_bad_and_oversized_keep_connection () =
  let server_config = { Server.default_config with max_line = 512 } in
  with_server ~server_config (fun _server addr ->
      let c = Result.get_ok (Client.connect addr) in
      (* unparsable line -> typed bad-request record *)
      let r = parse_line (Result.get_ok (Client.call c "{not json")) in
      Alcotest.(check string) "parse failure is a record" "error"
        (get_str "status" r);
      Alcotest.(check string) "bad-request kind" "bad-request"
        (get_str "kind" r);
      (* oversized line -> typed record, framing intact *)
      let huge =
        Printf.sprintf "{\"id\":\"big\",\"src\":\"%s\"}" (String.make 4096 'x')
      in
      let r = parse_line (Result.get_ok (Client.call c huge)) in
      Alcotest.(check string) "oversized is a record" "bad-request"
        (get_str "kind" r);
      (* the connection still works *)
      let r = parse_line (Result.get_ok (Client.call c (req_line ~id:"ok" ()))) in
      Alcotest.(check string) "connection survives" "ok" (get_str "status" r);
      Alcotest.(check string) "id" "ok" (get_str "id" r);
      Client.close c)

let test_server_load_shedding () =
  let service_config =
    { service_config with domains = 1; queue_capacity = 1 }
  in
  with_server ~service_config (fun _server addr ->
      let c = Result.get_ok (Client.connect addr) in
      (* burst of distinct requests through a 1-domain, 1-slot queue:
         the reader admits far faster than the worker computes, so most
         of the burst must shed — and every line still gets exactly one
         response, in order *)
      let n = 64 in
      for i = 1 to n do
        Result.get_ok
          (Client.send c (req_line ~id:(Printf.sprintf "r%02d" i) ~n:(i + 1) ()))
      done;
      let shed = ref 0 and ok = ref 0 in
      for i = 1 to n do
        let r = parse_line (Result.get_ok (Client.recv c)) in
        Alcotest.(check string)
          (Printf.sprintf "response %d in order" i)
          (Printf.sprintf "r%02d" i)
          (get_str "id" r);
        match get_str "status" r with
        | "ok" -> incr ok
        | _ ->
            Alcotest.(check string) "typed overloaded record" "overloaded"
              (get_str "kind" r);
            (match Json.member "queue_capacity" r with
            | Some (Json.Int 1) -> ()
            | _ -> Alcotest.fail "overloaded record carries queue state");
            incr shed
      done;
      Alcotest.(check int) "every request answered" n (!shed + !ok);
      Alcotest.(check bool) "saturated queue shed requests" true (!shed > 0);
      Alcotest.(check bool) "admitted requests completed" true (!ok > 0);
      Client.close c)

let test_server_drain () =
  with_server (fun server addr ->
      let c = Result.get_ok (Client.connect addr) in
      let r = parse_line (Result.get_ok (Client.call c (req_line ()))) in
      Alcotest.(check string) "request before drain" "ok" (get_str "status" r);
      Server.drain server;
      (* existing connection: new requests get the drain record *)
      let r = parse_line (Result.get_ok (Client.call c (req_line ~id:"late" ()))) in
      Alcotest.(check string) "drain record" "drain" (get_str "kind" r);
      Alcotest.(check string) "drain record id" "late" (get_str "id" r);
      Server.wait server;
      (* listener is gone: new connections are refused *)
      (match Client.connect addr with
      | Error _ -> ()
      | Ok c2 ->
          (* unix-socket path unlinked means connect must fail; a racing
             success would mean the listener survived the drain *)
          Client.close c2;
          Alcotest.fail "listener still accepting after drain");
      Client.close c)

let test_server_concurrent_clients () =
  with_server (fun _server addr ->
      let per_client = 12 and clients = 4 in
      let oks = Array.make clients 0 in
      let worker i =
        let c = Result.get_ok (Client.connect addr) in
        for j = 1 to per_client do
          Result.get_ok
            (Client.send c (req_line ~id:(Printf.sprintf "q%d" j) ~n:(j + 1) ()))
        done;
        for _ = 1 to per_client do
          let r = parse_line (Result.get_ok (Client.recv c)) in
          if get_str "status" r = "ok" then oks.(i) <- oks.(i) + 1
        done;
        Client.close c
      in
      let threads = List.init clients (fun i -> Thread.create worker i) in
      List.iter Thread.join threads;
      Array.iteri
        (fun i n ->
          Alcotest.(check int)
            (Printf.sprintf "client %d: every request answered ok" i)
            per_client n)
        oks;
      (* every client got every response; cross-client duplicates hit
         the shared cache *)
      let stats = Obs.Metrics.snapshot () in
      let counter name =
        Option.value ~default:0 (List.assoc_opt name stats.Obs.Metrics.counters)
      in
      Alcotest.(check bool) "shared cache hit across connections" true
        (counter "svc.cache.results.hits" > 0))

let () =
  Alcotest.run "net"
    [
      ("addr", [ Alcotest.test_case "parse" `Quick test_addr_parse ]);
      ( "frame",
        [
          Alcotest.test_case "partial line across reads" `Quick
            test_frame_partial_line;
          Alcotest.test_case "several lines in one read" `Quick
            test_frame_pipelined_lines;
          Alcotest.test_case "oversized line keeps framing" `Quick
            test_frame_oversized_keeps_framing;
          Alcotest.test_case "eof drops unterminated tail" `Quick
            test_frame_eof_drops_tail;
          Alcotest.test_case "idle timeout" `Quick test_frame_idle_timeout;
          Alcotest.test_case "read timeout" `Quick test_frame_read_timeout;
        ] );
      ( "server",
        [
          Alcotest.test_case "pipelined responses in request order" `Quick
            test_server_pipelined_in_order;
          Alcotest.test_case "bad/oversized lines keep the connection" `Quick
            test_server_bad_and_oversized_keep_connection;
          Alcotest.test_case "saturated queue sheds with typed records"
            `Quick test_server_load_shedding;
          Alcotest.test_case "graceful drain" `Quick test_server_drain;
          Alcotest.test_case "concurrent clients share the cache" `Quick
            test_server_concurrent_clients;
        ] );
    ]
