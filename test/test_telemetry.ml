(* Tests for the live-telemetry layer: request contexts (Obs.Ctx) and
   their propagation across the executor pool, histogram percentile
   estimation, windowed aggregates (Obs.Window), the flight recorder
   (Obs.Flight) and the metric exporters — including 4-domain
   concurrent-writer stress for the lock-free paths. *)

module Ctx = Obs.Ctx
module Flight = Obs.Flight
module Window = Obs.Window
module Hist = Obs.Histogram
module Counter = Obs.Counter
module Metrics = Obs.Metrics
module Export = Obs.Export
module Json = Pipeline.Json

let flight_off () =
  Flight.disable ();
  Flight.clear ()

(* ------------------------------------------------------------------ *)
(* Ctx                                                                  *)

let test_ctx_ids_unique () =
  let ids = List.init 1000 (fun _ -> Ctx.id (Ctx.make ())) in
  let distinct = List.sort_uniq String.compare ids in
  Alcotest.(check int) "all distinct" 1000 (List.length distinct);
  List.iter
    (fun id -> Alcotest.(check bool) "non-empty" true (String.length id > 0))
    ids

let test_ctx_scoping () =
  Alcotest.(check (option string)) "none outside" None (Ctx.current_id ());
  let a = Ctx.make () and b = Ctx.make () in
  Ctx.with_ctx a (fun () ->
      Alcotest.(check (option string))
        "a installed" (Some (Ctx.id a)) (Ctx.current_id ());
      Ctx.with_ctx b (fun () ->
          Alcotest.(check (option string))
            "b nested" (Some (Ctx.id b)) (Ctx.current_id ()));
      Alcotest.(check (option string))
        "a restored" (Some (Ctx.id a)) (Ctx.current_id ());
      Ctx.with_opt None (fun () ->
          Alcotest.(check (option string))
            "with_opt None hides" None (Ctx.current_id ())));
  Alcotest.(check (option string)) "none after" None (Ctx.current_id ());
  (try Ctx.with_ctx a (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check (option string))
    "restored after raise" None (Ctx.current_id ())

let test_ctx_of_id () =
  let c = Ctx.of_id "client-7" in
  Ctx.with_ctx c (fun () ->
      Alcotest.(check (option string))
        "adopted" (Some "client-7") (Ctx.current_id ()))

(* Every thunk run through the executor pool must observe the context
   that was installed when [run] was called — including the thunks that
   execute on spawned worker domains. *)
let test_ctx_crosses_workers () =
  let pool = Runtime.Workers.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Runtime.Workers.shutdown pool)
    (fun () ->
      let c = Ctx.make () in
      let seen =
        Ctx.with_ctx c (fun () ->
            Runtime.Workers.run pool
              (Array.init 32 (fun _ () ->
                   (* a little work so the thunks spread across domains *)
                   ignore (Sys.opaque_identity (Array.init 4096 Fun.id));
                   Ctx.current_id ())))
      in
      Array.iter
        (fun id ->
          Alcotest.(check (option string)) "ctx on worker" (Some (Ctx.id c)) id)
        seen;
      (* and with no context installed, the workers see none *)
      let bare =
        Runtime.Workers.run pool
          (Array.init 8 (fun _ () -> Ctx.current_id ()))
      in
      Array.iter
        (fun id -> Alcotest.(check (option string)) "no ctx leaks" None id)
        bare)

(* ------------------------------------------------------------------ *)
(* Histogram percentiles                                                *)

let test_percentile_empty () =
  Metrics.reset_all ();
  let h = Hist.make "tt.empty" in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Hist.percentile (Hist.snap h) 0.5)

let test_percentile_uniform () =
  Metrics.reset_all ();
  let h = Hist.make "tt.uniform" in
  for v = 1 to 1024 do
    Hist.observe h v
  done;
  let s = Hist.snap h in
  let p50 = Hist.percentile s 0.5
  and p90 = Hist.percentile s 0.9
  and p99 = Hist.percentile s 0.99 in
  (* the uniform distribution fills every bucket exactly, so linear
     interpolation recovers the true median *)
  Alcotest.(check (float 1e-6)) "p50 exact" 512.0 p50;
  (* true p90 = 922, p99 = 1014; the estimate must land in the sample's
     bucket (512, 1024] *)
  Alcotest.(check bool) "p90 in bucket" true (p90 > 512.0 && p90 <= 1024.0);
  Alcotest.(check bool) "p99 in bucket" true (p99 > 512.0 && p99 <= 1024.0);
  Alcotest.(check bool) "p99 near true value" true (abs_float (p99 -. 1014.0) < 16.0);
  Alcotest.(check bool) "monotone" true (p50 <= p90 && p90 <= p99);
  Alcotest.(check (float 1e-6)) "q clamped low" (Hist.percentile s 0.0)
    (Hist.percentile s (-1.0));
  Alcotest.(check (float 1e-6)) "q clamped high" (Hist.percentile s 1.0)
    (Hist.percentile s 2.0)

let test_percentile_point_mass () =
  Metrics.reset_all ();
  let h = Hist.make "tt.point" in
  for _ = 1 to 1000 do
    Hist.observe h 100
  done;
  let s = Hist.snap h in
  let p50 = Hist.percentile s 0.5 and p99 = Hist.percentile s 0.99 in
  (* every sample is 100, in bucket (64, 128]; any estimate must stay in
     that bucket, and p50/p99 agree since there is only one bucket *)
  Alcotest.(check bool) "p50 in bucket" true (p50 > 64.0 && p50 <= 128.0);
  Alcotest.(check bool) "p99 in bucket" true (p99 > 64.0 && p99 <= 128.0)

(* ------------------------------------------------------------------ *)
(* Window                                                               *)

let test_window_roll_and_merge () =
  Metrics.reset_all ();
  let c = Counter.make "tt.w.count" in
  (* a huge period so only explicit [roll] closes windows *)
  let w = Window.create ~windows:4 ~period_s:1e6 () in
  Alcotest.(check int) "no closed windows" 0 (Window.closed w);
  Counter.add c 5;
  Window.roll w;
  Alcotest.(check int) "one closed" 1 (Window.closed w);
  let merged = Window.merged w in
  Alcotest.(check (option int))
    "closed diff visible" (Some 5)
    (List.assoc_opt "tt.w.count" merged.Metrics.counters);
  Counter.add c 3;
  let merged = Window.merged w in
  Alcotest.(check (option int))
    "in-progress merged" (Some 8)
    (List.assoc_opt "tt.w.count" merged.Metrics.counters);
  Window.roll w;
  Alcotest.(check int) "two closed" 2 (Window.closed w);
  (* roll_if_due with a huge period is a no-op *)
  Window.roll_if_due w;
  Alcotest.(check int) "not due" 2 (Window.closed w);
  (* four empty rolls evict both active windows from the 4-slot ring *)
  for _ = 1 to 4 do
    Window.roll w
  done;
  Alcotest.(check int) "ring capped" 4 (Window.closed w);
  let merged = Window.merged w in
  Alcotest.(check (option int))
    "old activity evicted" None
    (List.assoc_opt "tt.w.count" merged.Metrics.counters)

let test_window_summary_quantiles () =
  Metrics.reset_all ();
  let h = Hist.make "tt.w.lat" in
  let w = Window.create ~windows:4 ~period_s:1e6 () in
  for v = 1 to 100 do
    Hist.observe h v
  done;
  Window.roll w;
  match List.assoc_opt "tt.w.lat" (Window.summary w) with
  | None -> Alcotest.fail "histogram missing from window summary"
  | Some q ->
      Alcotest.(check int) "count" 100 q.Window.count;
      Alcotest.(check int) "sum" 5050 q.Window.sum;
      (* true median 50 lives in bucket (32, 64] *)
      Alcotest.(check bool)
        "p50 in bucket" true
        (q.Window.p50 > 32.0 && q.Window.p50 <= 64.0);
      Alcotest.(check bool)
        "monotone" true
        (q.Window.p50 <= q.Window.p90 && q.Window.p90 <= q.Window.p99)

(* 4 domains hammer a counter and a histogram while the main domain
   keeps closing windows: every per-window diff must be non-negative
   (snapshots may be torn, but counters are monotone), and the merged
   view must telescope back to the exact totals once the writers join. *)
let test_window_stress_4_domains () =
  Metrics.reset_all ();
  let c = Counter.make "tt.w.stress" in
  let h = Hist.make "tt.w.stress_lat" in
  let w = Window.create ~windows:60 ~period_s:1e6 () in
  let per_domain = 20_000 in
  let writers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Counter.incr c;
              Hist.observe h (i land 1023)
            done))
  in
  for _ = 1 to 40 do
    Window.roll w
  done;
  List.iter Domain.join writers;
  Window.roll w;
  List.iter
    (fun { Window.metrics; _ } ->
      List.iter
        (fun (name, v) ->
          if v < 0 then
            Alcotest.failf "negative counter diff %s = %d in a window" name v)
        metrics.Metrics.counters;
      List.iter
        (fun (name, (s : Hist.snap)) ->
          let bucket_total =
            List.fold_left (fun acc (_, n) -> acc + n) 0 s.Hist.buckets
          in
          (* within one snapshot buckets never exceed count, but a diff
             of two snapshots can skew by the observations in flight at
             the [before] cut (count bumped, bucket not yet) — at most
             one per concurrent writer *)
          if s.Hist.count < 0 || bucket_total > s.Hist.count + 4 then
            Alcotest.failf "torn histogram diff %s: buckets %d vs count %d"
              name bucket_total s.Hist.count)
        metrics.Metrics.histograms)
    (Window.windows w);
  let merged = Window.merged w in
  Alcotest.(check (option int))
    "merged counter telescopes" (Some (4 * per_domain))
    (List.assoc_opt "tt.w.stress" merged.Metrics.counters);
  (match List.assoc_opt "tt.w.stress_lat" merged.Metrics.histograms with
  | None -> Alcotest.fail "stress histogram missing after merge"
  | Some s ->
      Alcotest.(check int) "merged histogram count" (4 * per_domain)
        s.Hist.count)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                      *)

let mk_entry ?(req = "") ~t name =
  {
    Flight.kind = "event";
    scope = "tt";
    name;
    req;
    tid = (Domain.self () :> int);
    t_ns = Int64.of_int t;
    dur_ns = 0L;
    detail = [ ("k", "v") ];
  }

let test_flight_disabled_noop () =
  flight_off ();
  Flight.record (mk_entry ~t:1 "dropped");
  Alcotest.(check int) "nothing recorded" 0 (List.length (Flight.entries ()))

let test_flight_ring_overwrite () =
  flight_off ();
  Flight.enable ~capacity:4 ();
  for i = 0 to 9 do
    Flight.record (mk_entry ~t:i (Printf.sprintf "e%d" i))
  done;
  let names = List.map (fun e -> e.Flight.name) (Flight.entries ()) in
  Alcotest.(check (list string))
    "last capacity entries, oldest first"
    [ "e6"; "e7"; "e8"; "e9" ]
    names;
  Flight.clear ();
  Alcotest.(check int) "clear drops rings" 0 (List.length (Flight.entries ()));
  flight_off ()

let test_flight_req_filter_and_jsonl () =
  flight_off ();
  Flight.enable ~capacity:64 ();
  for i = 0 to 9 do
    Flight.record (mk_entry ~req:(if i mod 2 = 0 then "a" else "b") ~t:i
                     (Printf.sprintf "e%d" i))
  done;
  Alcotest.(check int) "req filter" 5
    (List.length (Flight.entries ~req:"a" ()));
  let dump = Flight.to_jsonl (Flight.entries ()) in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' dump)
  in
  Alcotest.(check int) "one line per entry" 10 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok (Json.Obj fields) ->
          Alcotest.(check bool) "has req" true (List.mem_assoc "req" fields);
          Alcotest.(check bool) "has name" true (List.mem_assoc "name" fields)
      | Ok _ -> Alcotest.fail "flight line is not an object"
      | Error e -> Alcotest.failf "flight line does not parse: %s" e)
    lines;
  flight_off ()

let test_flight_4_domain_writers () =
  flight_off ();
  Flight.enable ~capacity:256 ();
  let per_domain = 100 in
  let writers =
    List.init 4 (fun k ->
        Domain.spawn (fun () ->
            let req = Printf.sprintf "d%d" k in
            for i = 1 to per_domain do
              Flight.record
                { (mk_entry ~req ~t:0 (Printf.sprintf "%s-%d" req i)) with
                  t_ns = Obs.Clock.now_ns ();
                }
            done))
  in
  List.iter Domain.join writers;
  for k = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "domain %d entries all retained" k)
      per_domain
      (List.length (Flight.entries ~req:(Printf.sprintf "d%d" k) ()))
  done;
  let all = Flight.entries () in
  Alcotest.(check int) "total" (4 * per_domain) (List.length all);
  let sorted = ref true in
  let _ =
    List.fold_left
      (fun prev e ->
        if Int64.compare prev e.Flight.t_ns > 0 then sorted := false;
        e.Flight.t_ns)
      Int64.min_int all
  in
  Alcotest.(check bool) "merged oldest-first" true !sorted;
  flight_off ()

(* A span and an event recorded under an installed context must land in
   the flight ring attributed to that context's trace id. *)
let test_flight_captures_ctx () =
  flight_off ();
  Flight.enable ~capacity:64 ();
  let c = Ctx.make () in
  Ctx.with_ctx c (fun () ->
      Obs.Span.with_ ~name:"tt:span" ~args:[ ("x", "1") ] (fun () ->
          Obs.Event.emit ~scope:"tt" ~name:"ev" (fun () ->
              [ ("n", Obs.Event.Int 3) ])));
  let mine = Flight.entries ~req:(Ctx.id c) () in
  Alcotest.(check int) "span + event attributed" 2 (List.length mine);
  let kinds = List.sort compare (List.map (fun e -> e.Flight.kind) mine) in
  Alcotest.(check (list string)) "kinds" [ "event"; "span" ] kinds;
  flight_off ()

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)

let test_export_outputs () =
  Metrics.reset_all ();
  let c = Counter.make "tt.export.hits" in
  let h = Hist.make "tt.export.lat" in
  (* the window must be based before the activity it is to report *)
  let w = Window.create ~windows:4 ~period_s:1e6 () in
  Counter.add c 7;
  for v = 1 to 64 do
    Hist.observe h v
  done;
  Window.roll w;
  let m = Metrics.snapshot () in
  let text = Export.prometheus ~window:w m in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length text && (String.sub text i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "counter line" true
    (contains "recpart_tt_export_hits 7");
  Alcotest.(check bool) "+Inf bucket" true
    (contains "recpart_tt_export_lat_bucket{le=\"+Inf\"} 64");
  Alcotest.(check bool) "windowed quantile gauge" true
    (contains "recpart_window_quantile{name=\"tt_export_lat\",q=\"0.5\"}");
  match Json.parse (Export.json_string ~window:w m) with
  | Error e -> Alcotest.failf "json export does not parse: %s" e
  | Ok (Json.Obj fields) ->
      List.iter
        (fun key ->
          Alcotest.(check bool) (key ^ " present") true
            (List.mem_assoc key fields))
        [ "counters"; "histograms"; "windows" ]
  | Ok _ -> Alcotest.fail "json export is not an object"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "ctx",
        [
          Alcotest.test_case "unique ids" `Quick test_ctx_ids_unique;
          Alcotest.test_case "scoping and restore" `Quick test_ctx_scoping;
          Alcotest.test_case "adopt external id" `Quick test_ctx_of_id;
          Alcotest.test_case "crosses the executor pool" `Quick
            test_ctx_crosses_workers;
        ] );
      ( "percentile",
        [
          Alcotest.test_case "empty snapshot" `Quick test_percentile_empty;
          Alcotest.test_case "uniform 1..1024" `Quick test_percentile_uniform;
          Alcotest.test_case "point mass" `Quick test_percentile_point_mass;
        ] );
      ( "window",
        [
          Alcotest.test_case "roll, merge, evict" `Quick
            test_window_roll_and_merge;
          Alcotest.test_case "summary quantiles" `Quick
            test_window_summary_quantiles;
          Alcotest.test_case "4-domain torn-snapshot stress" `Quick
            test_window_stress_4_domains;
        ] );
      ( "flight",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_flight_disabled_noop;
          Alcotest.test_case "ring overwrite ordering" `Quick
            test_flight_ring_overwrite;
          Alcotest.test_case "req filter and JSONL dump" `Quick
            test_flight_req_filter_and_jsonl;
          Alcotest.test_case "4-domain concurrent writers" `Quick
            test_flight_4_domain_writers;
          Alcotest.test_case "spans/events carry the ctx" `Quick
            test_flight_captures_ctx;
        ] );
      ( "export",
        [ Alcotest.test_case "prometheus and JSON" `Quick test_export_outputs ] );
    ]
