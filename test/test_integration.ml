(* Cross-library integration tests: full pipelines from source text to
   validated parallel execution, and consistency between the fast
   (scan/abstract) and exact (enumeration/concrete) paths. *)

module Partition = Core.Partition
module Sched = Runtime.Sched
module Interp = Runtime.Interp
module Sim = Runtime.Sim
module Ivec = Linalg.Ivec
module Driver = Pipeline.Driver
module Plan = Pipeline.Plan
module Report = Pipeline.Report

(* Strategy selection through the pipeline layer. *)
let rec_plan prog =
  match Driver.classify prog with
  | Ok (Plan.Rec_chains rp) -> Some rp
  | Ok _ | Error _ -> None

let rec_plan_exn prog =
  match rec_plan prog with
  | Some rp -> rp
  | None -> Alcotest.fail "REC expected"

(* ------------------------------------------------------------------ *)
(* Scan-based materialization agrees with enumeration-based             *)

let same_concrete (a : Partition.concrete_rec) (b : Partition.concrete_rec) =
  a.Partition.p1_pts = b.Partition.p1_pts
  && a.Partition.p3_pts = b.Partition.p3_pts
  && List.sort compare (Core.Chain.to_lists a.Partition.chains)
     = List.sort compare (Core.Chain.to_lists b.Partition.chains)
  && a.Partition.theorem_bound = b.Partition.theorem_bound

let test_scan_vs_enum_ex1 () =
  let rp = rec_plan_exn Loopir.Builtin.example1 in
  List.iter
    (fun (n1, n2) ->
      let a = Partition.materialize_rec rp ~params:[| n1; n2 |] in
      let b = Partition.materialize_rec_scan rp ~params:[| n1; n2 |] in
      Alcotest.(check bool)
        (Printf.sprintf "%dx%d identical" n1 n2)
        true (same_concrete a b))
    [ (10, 10); (17, 23); (30, 40) ]

let test_scan_vs_enum_ex2 () =
  let rp = rec_plan_exn Loopir.Builtin.example2 in
  List.iter
    (fun n ->
      let a = Partition.materialize_rec rp ~params:[| n |] in
      let b = Partition.materialize_rec_scan rp ~params:[| n |] in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d identical" n)
        true (same_concrete a b))
    [ 8; 12; 25 ]

let test_scan_iter_space () =
  (* Triangular nest: scan order and content match the exact enumerator. *)
  let prog =
    Loopir.Parser.parse ~name:"t"
      "DO i = 1, 6\n  DO j = i, MIN(6, i + 2)\n    a(i, j) = b(i, j)\n  ENDDO\nENDDO"
  in
  let a = Depend.Solve.analyze_simple prog in
  let scan = Depend.Scan.iter_space a.Depend.Solve.stmt ~params:[] in
  let enum = Presburger.Enum.points a.Depend.Solve.phi in
  Alcotest.(check bool) "same points in same order" true (scan = enum)

(* ------------------------------------------------------------------ *)
(* Abstract simulator agrees with the concrete one                       *)

let test_abstract_sim_consistent () =
  let rp = rec_plan_exn Loopir.Builtin.example1 in
  let c = Partition.materialize_rec rp ~params:[| 20; 30 |] in
  let sched = Sched.of_rec ~stmt:0 c in
  let a = Sim.abstract sched in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "threads=%d" p)
        (Sim.time Sim.base ~threads:p sched)
        (Sim.time_abstract Sim.base ~threads:p a))
    [ 1; 2; 3; 4; 7 ]

(* ------------------------------------------------------------------ *)
(* DOACROSS pipeline model sanity                                        *)

let test_doacross_pipeline () =
  let tr = Depend.Trace.build Loopir.Builtin.example3 ~params:[ ("n", 20) ] in
  let m ~p ~d =
    (Baselines.Doacross.pipeline tr ~threads:p ~w_iter:1.0 ~delay_factor:d)
      .Baselines.Doacross.makespan
  in
  (* Zero delay, many threads: bounded below by the largest stage. *)
  Alcotest.(check bool) "threads help" true (m ~p:4 ~d:0.5 <= m ~p:1 ~d:0.5);
  Alcotest.(check bool) "delay hurts" true (m ~p:4 ~d:1.0 >= m ~p:4 ~d:0.25);
  (* delay_factor 1 on unbounded threads = fully serialized by delays. *)
  let busy =
    (Baselines.Doacross.pipeline tr ~threads:64 ~w_iter:1.0 ~delay_factor:1.0)
      .Baselines.Doacross.busy
  in
  Alcotest.(check bool) "full delay ≈ serial" true (m ~p:64 ~d:1.0 >= 0.9 *. busy)

(* ------------------------------------------------------------------ *)
(* End-to-end on random coupled loops: semantics, not just legality      *)

let gen_coupled =
  QCheck2.Gen.(
    let* alpha = oneofl [ 1; 2; 3; -2 ] in
    let* beta = int_range 0 12 in
    let* gamma = oneofl [ 1; 2; -1; 3 ] in
    let* delta = int_range 0 12 in
    let* n = int_range 5 30 in
    pure (alpha, beta, gamma, delta, n))

let prop_e2e_semantics =
  QCheck2.Test.make ~name:"REC schedules preserve semantics (random 1-D)"
    ~count:60 gen_coupled (fun (alpha, beta, gamma, delta, n) ->
      let src =
        Printf.sprintf "DO i = 1, %d\n  a(%d*i + %d) = a(%d*i + %d) + 1.0\nENDDO"
          n alpha beta gamma delta
      in
      let prog = Loopir.Parser.parse ~name:"rand" src in
      match Driver.classify prog with
      | Ok (Plan.Rec_chains _ as plan) -> (
          match Driver.materialize plan ~prog ~params:[] with
          | Ok (Driver.Rec { c; _ }) -> (
              let sched = Sched.of_rec ~stmt:0 c in
              let env = Interp.prepare prog ~params:[] in
              match Interp.check_schedule env sched with
              | Ok () -> true
              | Error _ -> false)
          | Ok _ -> false
          | Error (Diag.Set_blowup _) -> true
          | Error _ -> false)
      | Ok _ | Error (Diag.Set_blowup _) -> true
      | Error _ -> false)

let prop_dataflow_semantics =
  QCheck2.Test.make ~name:"dataflow schedules preserve semantics (random 2-D)"
    ~count:25
    QCheck2.Gen.(
      let coef = int_range (-2) 2 in
      let* c1 = coef and* c2 = coef and* c3 = int_range 0 4 in
      let* d1 = coef and* d2 = coef and* d3 = int_range 0 4 in
      let* n = int_range 4 8 in
      pure (c1, c2, c3, d1, d2, d3, n))
    (fun (c1, c2, c3, d1, d2, d3, n) ->
      let src =
        Printf.sprintf
          "DO i = 1, %d\n\
          \  DO j = 1, %d\n\
          \    a(%d*i + %d*j + %d) = a(%d*i + %d*j + %d) + b(i, j)\n\
          \  ENDDO\nENDDO"
          n n c1 c2 c3 d1 d2 d3
      in
      let prog = Loopir.Parser.parse ~name:"rand2" src in
      let c = Core.Dataflow.peel_concrete prog ~params:[] in
      let sched = Sched.of_fronts c in
      let env = Interp.prepare prog ~params:[] in
      let tr = Depend.Trace.build prog ~params:[] in
      Sched.check_legal sched tr = Ok ()
      && Interp.check_schedule env sched = Ok ())

(* ------------------------------------------------------------------ *)
(* The paper pipeline end to end, one assertion per example              *)

let test_paper_pipeline () =
  (* example1: REC with exact three sets *)
  let rp = rec_plan_exn Loopir.Builtin.example1 in
  Alcotest.(check bool) "ex1 cover" true
    (Core.Threeset.check_cover rp.Partition.three
       ~phi:rp.Partition.simple.Depend.Solve.phi);
  (* example2 and cholesky end to end through Driver.run: legality checked
     against the exact instance graph, execution on domains compared to the
     sequential interpreter. *)
  let run name prog ~params ~threads =
    let options = { Driver.default_options with threads } in
    match Driver.run ~options ~name ~params prog with
    | Error e -> Alcotest.fail (name ^ ": " ^ Driver.error_to_string e)
    | Ok o ->
        Alcotest.(check string)
          (name ^ " legality") "ok"
          (Report.check_result_string o.Driver.report.Report.legality);
        Alcotest.(check string)
          (name ^ " semantics") "ok"
          (Report.check_result_string o.Driver.report.Report.semantics);
        o
  in
  let o2 =
    run "example2" Loopir.Builtin.example2 ~params:[ ("n", 20) ] ~threads:3
  in
  Alcotest.(check string)
    "ex2 strategy" "rec"
    o2.Driver.report.Report.strategy;
  let o4 =
    run "cholesky" Loopir.Builtin.cholesky
      ~params:[ ("nmat", 3); ("m", 2); ("n", 6); ("nrhs", 1) ]
      ~threads:2
  in
  Alcotest.(check string)
    "cholesky strategy" "pdm"
    o4.Driver.report.Report.strategy

let () =
  Alcotest.run "integration"
    [
      ( "consistency",
        [
          Alcotest.test_case "scan ≡ enum materialization (ex1)" `Quick
            test_scan_vs_enum_ex1;
          Alcotest.test_case "scan ≡ enum materialization (ex2)" `Quick
            test_scan_vs_enum_ex2;
          Alcotest.test_case "scan iter space" `Quick test_scan_iter_space;
          Alcotest.test_case "abstract ≡ concrete simulator" `Quick
            test_abstract_sim_consistent;
          Alcotest.test_case "doacross pipeline sanity" `Quick
            test_doacross_pipeline;
        ] );
      ( "end-to-end",
        [
          QCheck_alcotest.to_alcotest prop_e2e_semantics;
          QCheck_alcotest.to_alcotest prop_dataflow_semantics;
          Alcotest.test_case "paper pipeline" `Quick test_paper_pipeline;
        ] );
    ]
