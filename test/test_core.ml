(* Tests for the recurrence-chain partitioner (the paper's contribution):
   three-set partitioning, chains, dataflow peeling, Theorem 1, and the
   schedule-legality invariant on random coupled loops. *)

module Iset = Presburger.Iset
module Rel = Presburger.Rel
module Enum = Presburger.Enum
module Ivec = Linalg.Ivec
module Solve = Depend.Solve
module Threeset = Core.Threeset
module Chain = Core.Chain
module Partition = Core.Partition
module Dataflow = Core.Dataflow
module Recurrence = Core.Recurrence

let points1 set params =
  Enum.points (Iset.bind_params set params) |> List.map (fun v -> v.(0))

(* ------------------------------------------------------------------ *)
(* Figure 2: the paper's worked 1-D example                             *)

let fig2_three () =
  let a = Solve.analyze_simple Loopir.Builtin.fig2 in
  (a, Threeset.compute ~phi:a.Solve.phi ~rd:a.Solve.rd)

let test_fig2_sets () =
  let _, t = fig2_three () in
  (* Paper: first set = initial {1..6} ∪ independent {7,12,14,16,18,20};
     the intermediate set is empty. *)
  Alcotest.(check (list int))
    "P1" [ 1; 2; 3; 4; 5; 6; 7; 12; 14; 16; 18; 20 ]
    (points1 t.Threeset.p1 [||]);
  Alcotest.(check bool) "P2 empty" true (Iset.is_empty t.Threeset.p2);
  Alcotest.(check (list int))
    "P3" [ 8; 9; 10; 11; 13; 15; 17; 19 ]
    (points1 t.Threeset.p3 [||]);
  Alcotest.(check bool) "W empty" true (Iset.is_empty t.Threeset.w)

let test_fig2_cover () =
  let a, t = fig2_three () in
  Alcotest.(check bool) "partition covers Φ" true
    (Threeset.check_cover t ~phi:a.Solve.phi)

let test_fig2_classify_points () =
  let _, t = fig2_three () in
  Alcotest.(check bool) "7 in P1" true
    (Threeset.classify_point t ~params:[||] [| 7 |] = `P1);
  Alcotest.(check bool) "9 in P3" true
    (Threeset.classify_point t ~params:[||] [| 9 |] = `P3);
  Alcotest.(check bool) "0 outside" true
    (Threeset.classify_point t ~params:[||] [| 0 |] = `Outside)

(* ------------------------------------------------------------------ *)
(* Example 1                                                            *)

let ex1_plan () =
  match Partition.choose Loopir.Builtin.example1 with
  | Partition.Rec_chains rp -> rp
  | _ -> Alcotest.fail "example1 must take the REC branch"

let test_ex1_sets_at_10 () =
  let rp = ex1_plan () in
  let c = Partition.materialize_rec rp ~params:[| 10; 10 |] in
  Alcotest.(check int) "P1" 82 (Core.Points.length c.Partition.p1_pts);
  Alcotest.(check int) "P2 (2 chains of 1)" 2
    (Chain.total_points c.Partition.chains);
  Alcotest.(check int) "P3" 16 (Core.Points.length c.Partition.p3_pts);
  Alcotest.(check int) "covers 100 iterations" 100
    (List.length (Partition.rec_points_in_order c));
  (* The intermediate points are (4,3) and (4,4). *)
  let p2 = List.concat (Chain.to_lists c.Partition.chains) in
  Alcotest.(check bool) "(4,3)" true (List.exists (Ivec.equal [| 4; 3 |]) p2);
  Alcotest.(check bool) "(4,4)" true (List.exists (Ivec.equal [| 4; 4 |]) p2)

let test_ex1_theorem_bound () =
  let rp = ex1_plan () in
  (* det T = 3; L = √(N1² + N2²). *)
  let c = Partition.materialize_rec rp ~params:[| 10; 10 |] in
  Alcotest.(check (float 1e-9)) "growth = 3" 3.0 c.Partition.growth;
  (match c.Partition.theorem_bound with
  | Some b ->
      Alcotest.(check int) "bound = 1 + ⌈log₃ √200⌉" 4 b;
      Alcotest.(check bool) "chains within bound" true
        (Core.Theorem.check c.Partition.chains ~bound:b)
  | None -> Alcotest.fail "bound expected");
  let c = Partition.materialize_rec rp ~params:[| 30; 100 |] in
  match c.Partition.theorem_bound with
  | Some b ->
      Alcotest.(check bool) "chains within bound (30×100)" true
        (Core.Theorem.check c.Partition.chains ~bound:b)
  | None -> Alcotest.fail "bound expected"

let test_ex1_cover () =
  let rp = ex1_plan () in
  Alcotest.(check bool) "cover" true
    (Threeset.check_cover rp.Partition.three ~phi:rp.Partition.simple.Solve.phi)

(* ------------------------------------------------------------------ *)
(* Example 2                                                            *)

let test_ex2_intermediate_single () =
  (* Paper: at N = 12 the intermediate set is the single iteration (2,6). *)
  match Partition.choose Loopir.Builtin.example2 with
  | Partition.Rec_chains rp ->
      let pts =
        Enum.points (Iset.bind_params rp.Partition.three.Threeset.p2 [| 12 |])
      in
      (match pts with
      | [ p ] -> Alcotest.check (Alcotest.array Alcotest.int) "(2,6)" [| 2; 6 |] p
      | _ -> Alcotest.fail "intermediate set should be a single iteration");
      let c = Partition.materialize_rec rp ~params:[| 12 |] in
      Alcotest.(check int) "single chain" 1
        (Chain.n_chains c.Partition.chains);
      Alcotest.(check int) "144 iterations covered" 144
        (List.length (Partition.rec_points_in_order c))
  | _ -> Alcotest.fail "example2 must take the REC branch"

let test_ex2_growth () =
  match Partition.choose Loopir.Builtin.example2 with
  | Partition.Rec_chains rp ->
      let c = Partition.materialize_rec rp ~params:[| 12 |] in
      Alcotest.(check (float 1e-9)) "a = |det T| = 2" 2.0 c.Partition.growth
  | _ -> Alcotest.fail "REC expected"

(* ------------------------------------------------------------------ *)
(* Example 3 (statement-level)                                          *)

let test_ex3_empty_intermediate () =
  let u = Solve.analyze_unified Loopir.Builtin.example3 in
  let t = Threeset.compute ~phi:u.Solve.uphi ~rd:u.Solve.urd in
  Alcotest.(check bool) "P2 empty (paper claim)" true
    (Iset.is_empty t.Threeset.p2);
  Alcotest.(check bool) "P1 nonempty" false (Iset.is_empty t.Threeset.p1);
  Alcotest.(check bool) "P3 nonempty" false (Iset.is_empty t.Threeset.p3)

(* ------------------------------------------------------------------ *)
(* Plan selection                                                       *)

let test_choose_branches () =
  (match Partition.choose Loopir.Builtin.example1 with
  | Partition.Rec_chains _ -> ()
  | _ -> Alcotest.fail "ex1 → REC");
  (match Partition.choose Loopir.Builtin.fig2 with
  | Partition.Rec_chains _ -> ()
  | _ -> Alcotest.fail "fig2 → REC (constant bounds but single pair)");
  (match Partition.choose Loopir.Builtin.cholesky with
  | Partition.Pdm_fallback _ -> ()
  | _ -> Alcotest.fail "cholesky (symbolic bounds, many pairs) → PDM");
  match
    Partition.choose
      (Loopir.Parser.parse ~name:"c"
         "DO i = 1, 8\n  DO j = 1, 8\n    a(i, j) = a(j, i) + b(2*i, j)\nENDDO\nENDDO")
  with
  | Partition.Dataflow_const -> ()
  | _ -> Alcotest.fail "constant bounds, no single pair → dataflow"

(* ------------------------------------------------------------------ *)
(* Dataflow partitioning                                                *)

let test_dataflow_symbolic_fig2 () =
  let a = Solve.analyze_simple Loopir.Builtin.fig2 in
  let fronts = Dataflow.peel_symbolic ~phi:a.Solve.phi ~rd:a.Solve.rd ~max_steps:10 in
  Alcotest.(check int) "two fronts" 2 (List.length fronts);
  Alcotest.(check (list int))
    "front 1" [ 1; 2; 3; 4; 5; 6; 7; 12; 14; 16; 18; 20 ]
    (points1 (List.nth fronts 0) [||]);
  Alcotest.(check (list int))
    "front 2" [ 8; 9; 10; 11; 13; 15; 17; 19 ]
    (points1 (List.nth fronts 1) [||])

let test_dataflow_symbolic_nonterminating () =
  (* prefix_sum with symbolic n: the peel cannot finish at compile time. *)
  let a =
    Solve.analyze_simple (List.assoc "prefix_sum" Loopir.Builtin.corpus)
  in
  match Dataflow.peel_symbolic ~phi:a.Solve.phi ~rd:a.Solve.rd ~max_steps:5 with
  | exception Dataflow.Did_not_terminate 5 -> ()
  | _ -> Alcotest.fail "expected step-limit exception"

let test_dataflow_concrete_matches_symbolic () =
  let concrete = Dataflow.peel_concrete Loopir.Builtin.fig2 ~params:[] in
  Alcotest.(check int) "fig2: 2 steps" 2 concrete.Dataflow.steps;
  Alcotest.(check int) "front sizes" 12
    (List.length concrete.Dataflow.fronts.(0));
  Alcotest.(check int) "front 2 size" 8
    (List.length concrete.Dataflow.fronts.(1))

let test_dataflow_concrete_cholesky_small () =
  let c =
    Dataflow.peel_concrete Loopir.Builtin.cholesky
      ~params:[ ("nmat", 2); ("m", 2); ("n", 6); ("nrhs", 1) ]
  in
  Alcotest.(check bool) "many sequential steps" true (c.Dataflow.steps > 10);
  (* Fronts partition all instances. *)
  let total = Array.fold_left (fun acc f -> acc + List.length f) 0 c.Dataflow.fronts in
  Alcotest.(check int) "fronts cover instances"
    (Array.length c.Dataflow.instances)
    total

(* ------------------------------------------------------------------ *)
(* Recurrence maps                                                      *)

let test_recurrence_ex1_step () =
  let rp = ex1_plan () in
  let r =
    match Recurrence.of_pair rp.Partition.pair ~params:(fun _ -> 10) with
    | Some r -> r
    | None -> Alcotest.fail "non-singular expected"
  in
  (* successor of (4,3) should be (10,9) = (3·4-2, 2·4+3-2) *)
  let in_phi x = x.(0) >= 1 && x.(0) <= 10 && x.(1) >= 1 && x.(1) <= 10 in
  (match Recurrence.successor r ~in_phi [| 4; 3 |] with
  | Some y -> Alcotest.check (Alcotest.array Alcotest.int) "succ" [| 10; 9 |] y
  | None -> Alcotest.fail "successor expected");
  (* predecessor of (4,3) is (2,1): (3·2-2, 2·2+1-2) = (4,3) *)
  match Recurrence.predecessor r ~in_phi [| 4; 3 |] with
  | Some y -> Alcotest.check (Alcotest.array Alcotest.int) "pred" [| 2; 1 |] y
  | None -> Alcotest.fail "predecessor expected"

let test_recurrence_neighbors_integrality () =
  let rp = ex1_plan () in
  let r =
    Option.get (Recurrence.of_pair rp.Partition.pair ~params:(fun _ -> 10))
  in
  (* (3,1) as read side: predecessor solves 3i-2=3 → not integral; as write
     side: successor (7,5).  So (3,1) has exactly one neighbour. *)
  Alcotest.(check int) "one neighbour" 1
    (List.length (Recurrence.neighbors r [| 3; 1 |]))

(* ------------------------------------------------------------------ *)
(* Schedule-legality invariant on random coupled loops                  *)

let gen_coupled_1d =
  QCheck2.Gen.(
    let* alpha = oneofl [ 1; 2; 3; -1; -2 ] in
    let* beta = int_range (-5) 25 in
    let* gamma = oneofl [ 1; 2; 3; -1; -2 ] in
    let* delta = int_range (-5) 25 in
    let* n = int_range 4 24 in
    pure (alpha, beta, gamma, delta, n))

let legal_schedule_prop (alpha, beta, gamma, delta, n) =
  let src =
    Printf.sprintf "DO i = 1, %d\n  a(%d*i + %d) = a(%d*i + %d)\nENDDO" n alpha
      beta gamma delta
  in
  let prog = Loopir.Parser.parse ~name:"rand" src in
  match Partition.choose prog with
  (* degenerate coupled pairs (e.g. cyclic successor maps) are rejected
     with a diagnostic; the driver degrades, so that is a legal outcome *)
  | Partition.Rec_chains rp
    when Diag.result (fun () -> Partition.materialize_rec rp ~params:[||])
         |> Result.is_error ->
      true
  | Partition.Rec_chains rp ->
      let c = Partition.materialize_rec rp ~params:[||] in
      (* position of each iteration: P1 < chains < P3; within a chain,
         sequence order. *)
      let pos = Hashtbl.create 64 in
      Core.Points.iter (fun p -> Hashtbl.replace pos p.(0) (0, 0)) c.Partition.p1_pts;
      List.iteri
        (fun ci ch ->
          List.iteri (fun k p -> Hashtbl.replace pos p.(0) (1 + ci, k)) ch)
        (Chain.to_lists c.Partition.chains);
      Core.Points.iter (fun p -> Hashtbl.replace pos p.(0) (max_int, 0)) c.Partition.p3_pts;
      (* all dependences respect the phase/chain order *)
      let dep_pairs =
        Enum.points (Iset.bind_params (Rel.to_set rp.Partition.simple.Solve.rd) [||])
      in
      List.for_all
        (fun xy ->
          let x = xy.(0) and y = xy.(1) in
          match (Hashtbl.find_opt pos x, Hashtbl.find_opt pos y) with
          | Some (px, kx), Some (py, ky) ->
              (* same chain → earlier; different phases → strictly earlier
                 phase group (P1 before all chains before P3; chains are
                 mutually independent so a dependence between two distinct
                 chains would be a bug). *)
              if px = py then px = 0 || px = max_int || kx < ky
              else (px = 0 && py > 0) || (py = max_int && px < max_int)
          | _ -> false)
        dep_pairs
      (* coverage: every iteration exactly once *)
      && List.length (Partition.rec_points_in_order c) = n
      && List.sort_uniq compare
           (List.map (fun p -> p.(0)) (Partition.rec_points_in_order c))
         = List.init n (fun k -> k + 1)
  | Partition.Dataflow_const | Partition.Pdm_fallback _ -> true

let prop_random_1d_legal =
  QCheck2.Test.make ~name:"REC schedule legal on random 1-D coupled loops"
    ~count:120 gen_coupled_1d legal_schedule_prop

let gen_coupled_2d =
  QCheck2.Gen.(
    let coef = int_range (-2) 3 in
    let* c1 = coef and* c2 = coef and* c3 = int_range 0 6 in
    let* c4 = coef and* c5 = coef and* c6 = int_range 0 6 in
    let* d1 = coef and* d2 = coef and* d3 = int_range 0 6 in
    let* d4 = coef and* d5 = coef and* d6 = int_range 0 6 in
    let* n = int_range 3 8 in
    pure ((c1, c2, c3, c4, c5, c6), (d1, d2, d3, d4, d5, d6), n))

let legal_2d ((c1, c2, c3, c4, c5, c6), (d1, d2, d3, d4, d5, d6), n) =
  let src =
    Printf.sprintf
      "DO i = 1, %d\n\
      \  DO j = 1, %d\n\
      \    a(%d*i + %d*j + %d, %d*i + %d*j + %d) = a(%d*i + %d*j + %d, %d*i \
       + %d*j + %d)\n\
      \  ENDDO\nENDDO"
      n n c1 c2 c3 c4 c5 c6 d1 d2 d3 d4 d5 d6
  in
  let prog = Loopir.Parser.parse ~name:"rand2" src in
  match Partition.choose prog with
  | Partition.Rec_chains rp -> (
      match Partition.materialize_rec rp ~params:[||] with
      | c ->
          (* coverage of the n×n space, each point exactly once *)
          let pts = Partition.rec_points_in_order c in
          List.length pts = n * n
          && List.length (List.sort_uniq Ivec.compare_lex pts) = n * n
      | exception Diag.Error _ ->
          (* Lemma 1 diagnostics must not fire for full-rank pairs. *)
          false
      | exception Presburger.Omega.Blowup _ ->
          (* Work-budget fallback is acceptable (the driver would degrade to
             dataflow partitioning). *)
          true)
  | Partition.Dataflow_const | Partition.Pdm_fallback _ -> true

let prop_random_2d_cover =
  QCheck2.Test.make ~name:"REC covers random 2-D coupled loops" ~count:60
    gen_coupled_2d legal_2d

(* Satellite of the flat-storage refactor: the scan-based materializer
   must produce the same partition as the enumeration-based one (same
   packed P1/P3 points, same chains up to chain order, same bound). *)
let scan_vs_enum_prop (alpha, beta, gamma, delta, n) =
  let src =
    Printf.sprintf "DO i = 1, %d\n  a(%d*i + %d) = a(%d*i + %d)\nENDDO" n alpha
      beta gamma delta
  in
  let prog = Loopir.Parser.parse ~name:"rand-se" src in
  match Partition.choose prog with
  | Partition.Rec_chains rp -> (
      match
        ( Diag.result (fun () -> Partition.materialize_rec rp ~params:[||]),
          Diag.result (fun () -> Partition.materialize_rec_scan rp ~params:[||])
        )
      with
      | Ok a, Ok b ->
          a.Partition.p1_pts = b.Partition.p1_pts
          && a.Partition.p3_pts = b.Partition.p3_pts
          && List.sort compare (Chain.to_lists a.Partition.chains)
             = List.sort compare (Chain.to_lists b.Partition.chains)
          && a.Partition.theorem_bound = b.Partition.theorem_bound
      (* degenerate pairs (cyclic successor maps, intersecting chains)
         must be rejected by BOTH engines, not silently diverge *)
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false
      | exception Presburger.Omega.Blowup _ -> true)
  | Partition.Dataflow_const | Partition.Pdm_fallback _ -> true

let prop_scan_vs_enum =
  QCheck2.Test.make
    ~name:"Scan ≡ Enum materialization on random 1-D coupled loops" ~count:120
    gen_coupled_1d scan_vs_enum_prop

(* Regression: a(i) = a(-i + 10) has the involution successor map
   f(x) = 10 - x, so 3 -> 7 -> 3 is a 2-cycle inside the space.  The
   scan materializer used to follow it forever; both engines must now
   terminate and agree (either both build the partition or both reject
   with a diagnostic). *)
let test_scan_cycle_terminates () =
  let src = "DO i = 1, 24\n  a(i) = a(-1*i + 10)\nENDDO" in
  let prog = Loopir.Parser.parse ~name:"cycle" src in
  match Partition.choose prog with
  | Partition.Rec_chains rp ->
      let a =
        Diag.result (fun () -> Partition.materialize_rec rp ~params:[||])
      in
      let b =
        Diag.result (fun () -> Partition.materialize_rec_scan rp ~params:[||])
      in
      Alcotest.(check bool)
        "engines agree on acceptance" (Result.is_ok a) (Result.is_ok b)
  | Partition.Dataflow_const | Partition.Pdm_fallback _ ->
      (* still fine: the pair never reaches the chain walkers *)
      ()

(* ------------------------------------------------------------------ *)
(* Flat storage: packed points and chains                               *)

let ivec_list = Alcotest.list (Alcotest.array Alcotest.int)

let test_points_roundtrip () =
  let pts = [ [| 1; 2 |]; [| 3; 4 |]; [| 5; 6 |] ] in
  let p = Core.Points.of_list ~dim:2 pts in
  Alcotest.(check int) "length" 3 (Core.Points.length p);
  Alcotest.check ivec_list "roundtrip" pts (Core.Points.to_list p);
  Alcotest.check (Alcotest.array Alcotest.int) "get" [| 3; 4 |]
    (Core.Points.get p 1);
  (* get hands out a fresh copy: mutating it must not reach the buffer *)
  (Core.Points.get p 1).(0) <- 99;
  Alcotest.check (Alcotest.array Alcotest.int) "get is a copy" [| 3; 4 |]
    (Core.Points.get p 1);
  Alcotest.(check int) "empty" 0 (Core.Points.length (Core.Points.empty ~dim:3))

let test_points_builder_growth () =
  let b = Core.Points.Builder.create ~dim:2 in
  for i = 0 to 999 do
    Core.Points.Builder.add b [| i; -i |]
  done;
  let p = Core.Points.Builder.finish b in
  Alcotest.(check int) "n" 1000 (Core.Points.length p);
  Alcotest.check (Alcotest.array Alcotest.int) "first" [| 0; 0 |]
    (Core.Points.get p 0);
  Alcotest.check (Alcotest.array Alcotest.int) "last" [| 999; -999 |]
    (Core.Points.get p 999)

let test_chain_roundtrip () =
  let chains =
    [
      [ [| 1; 1 |]; [| 2; 2 |] ];
      [ [| 5; 3 |] ];
      [ [| 7; 1 |]; [| 8; 2 |]; [| 9; 3 |] ];
    ]
  in
  let c = Chain.of_lists ~dim:2 chains in
  Alcotest.(check int) "n_chains" 3 (Chain.n_chains c);
  Alcotest.(check int) "total" 6 (Chain.total_points c);
  Alcotest.(check int) "longest" 3 c.Chain.longest;
  Alcotest.(check int) "length of chain 1" 1 (Chain.chain_length c 1);
  Alcotest.check (Alcotest.array Alcotest.int) "get" [| 8; 2 |]
    (Chain.get c 2 1);
  Alcotest.check
    (Alcotest.list ivec_list)
    "roundtrip" chains (Chain.to_lists c);
  let empty = Chain.of_lists ~dim:2 [] in
  Alcotest.(check int) "no chains" 0 (Chain.n_chains empty);
  Alcotest.(check int) "no points" 0 (Chain.total_points empty)

let test_chain_scheduling_accessors () =
  let chains =
    [
      [ [| 1; 1 |]; [| 2; 2 |] ];
      [ [| 5; 3 |] ];
      [ [| 7; 1 |]; [| 8; 2 |]; [| 9; 3 |] ];
      [ [| 4; 4 |] ];
    ]
  in
  let c = Chain.of_lists ~dim:2 chains in
  Alcotest.check (Alcotest.array Alcotest.int) "lengths" [| 2; 1; 3; 1 |]
    (Chain.lengths c);
  (* Longest first; equal lengths keep ascending chain id (stable, so
     straggler attribution stays deterministic). *)
  Alcotest.check (Alcotest.array Alcotest.int) "longest-first order"
    [| 2; 0; 1; 3 |]
    (Chain.order_longest_first c);
  let dst = Array.make 4 0 in
  Chain.blit_point_to c 2 1 dst 1;
  Alcotest.check (Alcotest.array Alcotest.int) "blit, no boxing"
    [| 0; 8; 2; 0 |] dst;
  Alcotest.check (Alcotest.array Alcotest.int) "empty lengths" [||]
    (Chain.lengths (Chain.of_lists ~dim:2 []))

let test_points_blit_to () =
  let b = Core.Points.Builder.create ~dim:3 in
  Core.Points.Builder.add b [| 1; 2; 3 |];
  Core.Points.Builder.add b [| 4; 5; 6 |];
  let p = Core.Points.Builder.finish b in
  let dst = Array.make 5 9 in
  Core.Points.blit_to p 1 dst 2;
  Alcotest.check (Alcotest.array Alcotest.int) "copied in place"
    [| 9; 9; 4; 5; 6 |] dst

let () =
  Alcotest.run "core"
    [
      ( "fig2",
        [
          Alcotest.test_case "three sets (paper)" `Quick test_fig2_sets;
          Alcotest.test_case "cover invariant" `Quick test_fig2_cover;
          Alcotest.test_case "point classification" `Quick
            test_fig2_classify_points;
        ] );
      ( "example1",
        [
          Alcotest.test_case "sets at 10×10" `Quick test_ex1_sets_at_10;
          Alcotest.test_case "theorem 1 bound" `Quick test_ex1_theorem_bound;
          Alcotest.test_case "cover invariant" `Quick test_ex1_cover;
        ] );
      ( "example2",
        [
          Alcotest.test_case "intermediate = {(2,6)} at N=12" `Quick
            test_ex2_intermediate_single;
          Alcotest.test_case "growth = 2" `Quick test_ex2_growth;
        ] );
      ( "example3",
        [
          Alcotest.test_case "empty intermediate set" `Quick
            test_ex3_empty_intermediate;
        ] );
      ( "algorithm1",
        [ Alcotest.test_case "branch selection" `Quick test_choose_branches ] );
      ( "dataflow",
        [
          Alcotest.test_case "symbolic peel (fig2)" `Quick
            test_dataflow_symbolic_fig2;
          Alcotest.test_case "step limit" `Quick
            test_dataflow_symbolic_nonterminating;
          Alcotest.test_case "concrete peel (fig2)" `Quick
            test_dataflow_concrete_matches_symbolic;
          Alcotest.test_case "concrete peel (cholesky small)" `Quick
            test_dataflow_concrete_cholesky_small;
        ] );
      ( "recurrence",
        [
          Alcotest.test_case "step maps (ex1)" `Quick test_recurrence_ex1_step;
          Alcotest.test_case "integrality filtering" `Quick
            test_recurrence_neighbors_integrality;
        ] );
      ( "flat-storage",
        [
          Alcotest.test_case "points roundtrip" `Quick test_points_roundtrip;
          Alcotest.test_case "points builder growth" `Quick
            test_points_builder_growth;
          Alcotest.test_case "chain roundtrip" `Quick test_chain_roundtrip;
          Alcotest.test_case "chain scheduling accessors" `Quick
            test_chain_scheduling_accessors;
          Alcotest.test_case "points blit" `Quick test_points_blit_to;
          Alcotest.test_case "cyclic successor map terminates" `Quick
            test_scan_cycle_terminates;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_1d_legal;
          QCheck_alcotest.to_alcotest prop_random_2d_cover;
          QCheck_alcotest.to_alcotest prop_scan_vs_enum;
        ] );
    ]
