(* Tests for the recurrence-chain partitioner (the paper's contribution):
   three-set partitioning, chains, dataflow peeling, Theorem 1, and the
   schedule-legality invariant on random coupled loops. *)

module Iset = Presburger.Iset
module Rel = Presburger.Rel
module Enum = Presburger.Enum
module Ivec = Linalg.Ivec
module Solve = Depend.Solve
module Threeset = Core.Threeset
module Chain = Core.Chain
module Partition = Core.Partition
module Dataflow = Core.Dataflow
module Recurrence = Core.Recurrence

let points1 set params =
  Enum.points (Iset.bind_params set params) |> List.map (fun v -> v.(0))

(* ------------------------------------------------------------------ *)
(* Figure 2: the paper's worked 1-D example                             *)

let fig2_three () =
  let a = Solve.analyze_simple Loopir.Builtin.fig2 in
  (a, Threeset.compute ~phi:a.Solve.phi ~rd:a.Solve.rd)

let test_fig2_sets () =
  let _, t = fig2_three () in
  (* Paper: first set = initial {1..6} ∪ independent {7,12,14,16,18,20};
     the intermediate set is empty. *)
  Alcotest.(check (list int))
    "P1" [ 1; 2; 3; 4; 5; 6; 7; 12; 14; 16; 18; 20 ]
    (points1 t.Threeset.p1 [||]);
  Alcotest.(check bool) "P2 empty" true (Iset.is_empty t.Threeset.p2);
  Alcotest.(check (list int))
    "P3" [ 8; 9; 10; 11; 13; 15; 17; 19 ]
    (points1 t.Threeset.p3 [||]);
  Alcotest.(check bool) "W empty" true (Iset.is_empty t.Threeset.w)

let test_fig2_cover () =
  let a, t = fig2_three () in
  Alcotest.(check bool) "partition covers Φ" true
    (Threeset.check_cover t ~phi:a.Solve.phi)

let test_fig2_classify_points () =
  let _, t = fig2_three () in
  Alcotest.(check bool) "7 in P1" true
    (Threeset.classify_point t ~params:[||] [| 7 |] = `P1);
  Alcotest.(check bool) "9 in P3" true
    (Threeset.classify_point t ~params:[||] [| 9 |] = `P3);
  Alcotest.(check bool) "0 outside" true
    (Threeset.classify_point t ~params:[||] [| 0 |] = `Outside)

(* ------------------------------------------------------------------ *)
(* Example 1                                                            *)

let ex1_plan () =
  match Partition.choose Loopir.Builtin.example1 with
  | Partition.Rec_chains rp -> rp
  | _ -> Alcotest.fail "example1 must take the REC branch"

let test_ex1_sets_at_10 () =
  let rp = ex1_plan () in
  let c = Partition.materialize_rec rp ~params:[| 10; 10 |] in
  Alcotest.(check int) "P1" 82 (List.length c.Partition.p1_pts);
  Alcotest.(check int) "P2 (2 chains of 1)" 2
    (Chain.total_points c.Partition.chains);
  Alcotest.(check int) "P3" 16 (List.length c.Partition.p3_pts);
  Alcotest.(check int) "covers 100 iterations" 100
    (List.length (Partition.rec_points_in_order c));
  (* The intermediate points are (4,3) and (4,4). *)
  let p2 = List.concat c.Partition.chains.Chain.chains in
  Alcotest.(check bool) "(4,3)" true (List.exists (Ivec.equal [| 4; 3 |]) p2);
  Alcotest.(check bool) "(4,4)" true (List.exists (Ivec.equal [| 4; 4 |]) p2)

let test_ex1_theorem_bound () =
  let rp = ex1_plan () in
  (* det T = 3; L = √(N1² + N2²). *)
  let c = Partition.materialize_rec rp ~params:[| 10; 10 |] in
  Alcotest.(check (float 1e-9)) "growth = 3" 3.0 c.Partition.growth;
  (match c.Partition.theorem_bound with
  | Some b ->
      Alcotest.(check int) "bound = 1 + ⌈log₃ √200⌉" 4 b;
      Alcotest.(check bool) "chains within bound" true
        (Core.Theorem.check c.Partition.chains ~bound:b)
  | None -> Alcotest.fail "bound expected");
  let c = Partition.materialize_rec rp ~params:[| 30; 100 |] in
  match c.Partition.theorem_bound with
  | Some b ->
      Alcotest.(check bool) "chains within bound (30×100)" true
        (Core.Theorem.check c.Partition.chains ~bound:b)
  | None -> Alcotest.fail "bound expected"

let test_ex1_cover () =
  let rp = ex1_plan () in
  Alcotest.(check bool) "cover" true
    (Threeset.check_cover rp.Partition.three ~phi:rp.Partition.simple.Solve.phi)

(* ------------------------------------------------------------------ *)
(* Example 2                                                            *)

let test_ex2_intermediate_single () =
  (* Paper: at N = 12 the intermediate set is the single iteration (2,6). *)
  match Partition.choose Loopir.Builtin.example2 with
  | Partition.Rec_chains rp ->
      let pts =
        Enum.points (Iset.bind_params rp.Partition.three.Threeset.p2 [| 12 |])
      in
      (match pts with
      | [ p ] -> Alcotest.check (Alcotest.array Alcotest.int) "(2,6)" [| 2; 6 |] p
      | _ -> Alcotest.fail "intermediate set should be a single iteration");
      let c = Partition.materialize_rec rp ~params:[| 12 |] in
      Alcotest.(check int) "single chain" 1
        (List.length c.Partition.chains.Chain.chains);
      Alcotest.(check int) "144 iterations covered" 144
        (List.length (Partition.rec_points_in_order c))
  | _ -> Alcotest.fail "example2 must take the REC branch"

let test_ex2_growth () =
  match Partition.choose Loopir.Builtin.example2 with
  | Partition.Rec_chains rp ->
      let c = Partition.materialize_rec rp ~params:[| 12 |] in
      Alcotest.(check (float 1e-9)) "a = |det T| = 2" 2.0 c.Partition.growth
  | _ -> Alcotest.fail "REC expected"

(* ------------------------------------------------------------------ *)
(* Example 3 (statement-level)                                          *)

let test_ex3_empty_intermediate () =
  let u = Solve.analyze_unified Loopir.Builtin.example3 in
  let t = Threeset.compute ~phi:u.Solve.uphi ~rd:u.Solve.urd in
  Alcotest.(check bool) "P2 empty (paper claim)" true
    (Iset.is_empty t.Threeset.p2);
  Alcotest.(check bool) "P1 nonempty" false (Iset.is_empty t.Threeset.p1);
  Alcotest.(check bool) "P3 nonempty" false (Iset.is_empty t.Threeset.p3)

(* ------------------------------------------------------------------ *)
(* Plan selection                                                       *)

let test_choose_branches () =
  (match Partition.choose Loopir.Builtin.example1 with
  | Partition.Rec_chains _ -> ()
  | _ -> Alcotest.fail "ex1 → REC");
  (match Partition.choose Loopir.Builtin.fig2 with
  | Partition.Rec_chains _ -> ()
  | _ -> Alcotest.fail "fig2 → REC (constant bounds but single pair)");
  (match Partition.choose Loopir.Builtin.cholesky with
  | Partition.Pdm_fallback _ -> ()
  | _ -> Alcotest.fail "cholesky (symbolic bounds, many pairs) → PDM");
  match
    Partition.choose
      (Loopir.Parser.parse ~name:"c"
         "DO i = 1, 8\n  DO j = 1, 8\n    a(i, j) = a(j, i) + b(2*i, j)\nENDDO\nENDDO")
  with
  | Partition.Dataflow_const -> ()
  | _ -> Alcotest.fail "constant bounds, no single pair → dataflow"

(* ------------------------------------------------------------------ *)
(* Dataflow partitioning                                                *)

let test_dataflow_symbolic_fig2 () =
  let a = Solve.analyze_simple Loopir.Builtin.fig2 in
  let fronts = Dataflow.peel_symbolic ~phi:a.Solve.phi ~rd:a.Solve.rd ~max_steps:10 in
  Alcotest.(check int) "two fronts" 2 (List.length fronts);
  Alcotest.(check (list int))
    "front 1" [ 1; 2; 3; 4; 5; 6; 7; 12; 14; 16; 18; 20 ]
    (points1 (List.nth fronts 0) [||]);
  Alcotest.(check (list int))
    "front 2" [ 8; 9; 10; 11; 13; 15; 17; 19 ]
    (points1 (List.nth fronts 1) [||])

let test_dataflow_symbolic_nonterminating () =
  (* prefix_sum with symbolic n: the peel cannot finish at compile time. *)
  let a =
    Solve.analyze_simple (List.assoc "prefix_sum" Loopir.Builtin.corpus)
  in
  match Dataflow.peel_symbolic ~phi:a.Solve.phi ~rd:a.Solve.rd ~max_steps:5 with
  | exception Dataflow.Did_not_terminate 5 -> ()
  | _ -> Alcotest.fail "expected step-limit exception"

let test_dataflow_concrete_matches_symbolic () =
  let concrete = Dataflow.peel_concrete Loopir.Builtin.fig2 ~params:[] in
  Alcotest.(check int) "fig2: 2 steps" 2 concrete.Dataflow.steps;
  Alcotest.(check int) "front sizes" 12
    (List.length concrete.Dataflow.fronts.(0));
  Alcotest.(check int) "front 2 size" 8
    (List.length concrete.Dataflow.fronts.(1))

let test_dataflow_concrete_cholesky_small () =
  let c =
    Dataflow.peel_concrete Loopir.Builtin.cholesky
      ~params:[ ("nmat", 2); ("m", 2); ("n", 6); ("nrhs", 1) ]
  in
  Alcotest.(check bool) "many sequential steps" true (c.Dataflow.steps > 10);
  (* Fronts partition all instances. *)
  let total = Array.fold_left (fun acc f -> acc + List.length f) 0 c.Dataflow.fronts in
  Alcotest.(check int) "fronts cover instances"
    (Array.length c.Dataflow.instances)
    total

(* ------------------------------------------------------------------ *)
(* Recurrence maps                                                      *)

let test_recurrence_ex1_step () =
  let rp = ex1_plan () in
  let r =
    match Recurrence.of_pair rp.Partition.pair ~params:(fun _ -> 10) with
    | Some r -> r
    | None -> Alcotest.fail "non-singular expected"
  in
  (* successor of (4,3) should be (10,9) = (3·4-2, 2·4+3-2) *)
  let in_phi x = x.(0) >= 1 && x.(0) <= 10 && x.(1) >= 1 && x.(1) <= 10 in
  (match Recurrence.successor r ~in_phi [| 4; 3 |] with
  | Some y -> Alcotest.check (Alcotest.array Alcotest.int) "succ" [| 10; 9 |] y
  | None -> Alcotest.fail "successor expected");
  (* predecessor of (4,3) is (2,1): (3·2-2, 2·2+1-2) = (4,3) *)
  match Recurrence.predecessor r ~in_phi [| 4; 3 |] with
  | Some y -> Alcotest.check (Alcotest.array Alcotest.int) "pred" [| 2; 1 |] y
  | None -> Alcotest.fail "predecessor expected"

let test_recurrence_neighbors_integrality () =
  let rp = ex1_plan () in
  let r =
    Option.get (Recurrence.of_pair rp.Partition.pair ~params:(fun _ -> 10))
  in
  (* (3,1) as read side: predecessor solves 3i-2=3 → not integral; as write
     side: successor (7,5).  So (3,1) has exactly one neighbour. *)
  Alcotest.(check int) "one neighbour" 1
    (List.length (Recurrence.neighbors r [| 3; 1 |]))

(* ------------------------------------------------------------------ *)
(* Schedule-legality invariant on random coupled loops                  *)

let gen_coupled_1d =
  QCheck2.Gen.(
    let* alpha = oneofl [ 1; 2; 3; -1; -2 ] in
    let* beta = int_range (-5) 25 in
    let* gamma = oneofl [ 1; 2; 3; -1; -2 ] in
    let* delta = int_range (-5) 25 in
    let* n = int_range 4 24 in
    pure (alpha, beta, gamma, delta, n))

let legal_schedule_prop (alpha, beta, gamma, delta, n) =
  let src =
    Printf.sprintf "DO i = 1, %d\n  a(%d*i + %d) = a(%d*i + %d)\nENDDO" n alpha
      beta gamma delta
  in
  let prog = Loopir.Parser.parse ~name:"rand" src in
  match Partition.choose prog with
  | Partition.Rec_chains rp ->
      let c = Partition.materialize_rec rp ~params:[||] in
      (* position of each iteration: P1 < chains < P3; within a chain,
         sequence order. *)
      let pos = Hashtbl.create 64 in
      List.iter (fun p -> Hashtbl.replace pos p.(0) (0, 0)) c.Partition.p1_pts;
      List.iteri
        (fun ci ch ->
          List.iteri (fun k p -> Hashtbl.replace pos p.(0) (1 + ci, k)) ch)
        c.Partition.chains.Chain.chains;
      List.iter (fun p -> Hashtbl.replace pos p.(0) (max_int, 0)) c.Partition.p3_pts;
      (* all dependences respect the phase/chain order *)
      let dep_pairs =
        Enum.points (Iset.bind_params (Rel.to_set rp.Partition.simple.Solve.rd) [||])
      in
      List.for_all
        (fun xy ->
          let x = xy.(0) and y = xy.(1) in
          match (Hashtbl.find_opt pos x, Hashtbl.find_opt pos y) with
          | Some (px, kx), Some (py, ky) ->
              (* same chain → earlier; different phases → strictly earlier
                 phase group (P1 before all chains before P3; chains are
                 mutually independent so a dependence between two distinct
                 chains would be a bug). *)
              if px = py then px = 0 || px = max_int || kx < ky
              else (px = 0 && py > 0) || (py = max_int && px < max_int)
          | _ -> false)
        dep_pairs
      (* coverage: every iteration exactly once *)
      && List.length (Partition.rec_points_in_order c) = n
      && List.sort_uniq compare
           (List.map (fun p -> p.(0)) (Partition.rec_points_in_order c))
         = List.init n (fun k -> k + 1)
  | Partition.Dataflow_const | Partition.Pdm_fallback _ -> true

let prop_random_1d_legal =
  QCheck2.Test.make ~name:"REC schedule legal on random 1-D coupled loops"
    ~count:120 gen_coupled_1d legal_schedule_prop

let gen_coupled_2d =
  QCheck2.Gen.(
    let coef = int_range (-2) 3 in
    let* c1 = coef and* c2 = coef and* c3 = int_range 0 6 in
    let* c4 = coef and* c5 = coef and* c6 = int_range 0 6 in
    let* d1 = coef and* d2 = coef and* d3 = int_range 0 6 in
    let* d4 = coef and* d5 = coef and* d6 = int_range 0 6 in
    let* n = int_range 3 8 in
    pure ((c1, c2, c3, c4, c5, c6), (d1, d2, d3, d4, d5, d6), n))

let legal_2d ((c1, c2, c3, c4, c5, c6), (d1, d2, d3, d4, d5, d6), n) =
  let src =
    Printf.sprintf
      "DO i = 1, %d\n\
      \  DO j = 1, %d\n\
      \    a(%d*i + %d*j + %d, %d*i + %d*j + %d) = a(%d*i + %d*j + %d, %d*i \
       + %d*j + %d)\n\
      \  ENDDO\nENDDO"
      n n c1 c2 c3 c4 c5 c6 d1 d2 d3 d4 d5 d6
  in
  let prog = Loopir.Parser.parse ~name:"rand2" src in
  match Partition.choose prog with
  | Partition.Rec_chains rp -> (
      match Partition.materialize_rec rp ~params:[||] with
      | c ->
          (* coverage of the n×n space, each point exactly once *)
          let pts = Partition.rec_points_in_order c in
          List.length pts = n * n
          && List.length (List.sort_uniq Ivec.compare_lex pts) = n * n
      | exception Diag.Error _ ->
          (* Lemma 1 diagnostics must not fire for full-rank pairs. *)
          false
      | exception Presburger.Omega.Blowup _ ->
          (* Work-budget fallback is acceptable (the driver would degrade to
             dataflow partitioning). *)
          true)
  | Partition.Dataflow_const | Partition.Pdm_fallback _ -> true

let prop_random_2d_cover =
  QCheck2.Test.make ~name:"REC covers random 2-D coupled loops" ~count:60
    gen_coupled_2d legal_2d

let () =
  Alcotest.run "core"
    [
      ( "fig2",
        [
          Alcotest.test_case "three sets (paper)" `Quick test_fig2_sets;
          Alcotest.test_case "cover invariant" `Quick test_fig2_cover;
          Alcotest.test_case "point classification" `Quick
            test_fig2_classify_points;
        ] );
      ( "example1",
        [
          Alcotest.test_case "sets at 10×10" `Quick test_ex1_sets_at_10;
          Alcotest.test_case "theorem 1 bound" `Quick test_ex1_theorem_bound;
          Alcotest.test_case "cover invariant" `Quick test_ex1_cover;
        ] );
      ( "example2",
        [
          Alcotest.test_case "intermediate = {(2,6)} at N=12" `Quick
            test_ex2_intermediate_single;
          Alcotest.test_case "growth = 2" `Quick test_ex2_growth;
        ] );
      ( "example3",
        [
          Alcotest.test_case "empty intermediate set" `Quick
            test_ex3_empty_intermediate;
        ] );
      ( "algorithm1",
        [ Alcotest.test_case "branch selection" `Quick test_choose_branches ] );
      ( "dataflow",
        [
          Alcotest.test_case "symbolic peel (fig2)" `Quick
            test_dataflow_symbolic_fig2;
          Alcotest.test_case "step limit" `Quick
            test_dataflow_symbolic_nonterminating;
          Alcotest.test_case "concrete peel (fig2)" `Quick
            test_dataflow_concrete_matches_symbolic;
          Alcotest.test_case "concrete peel (cholesky small)" `Quick
            test_dataflow_concrete_cholesky_small;
        ] );
      ( "recurrence",
        [
          Alcotest.test_case "step maps (ex1)" `Quick test_recurrence_ex1_step;
          Alcotest.test_case "integrality filtering" `Quick
            test_recurrence_neighbors_integrality;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_1d_legal;
          QCheck_alcotest.to_alcotest prop_random_2d_cover;
        ] );
    ]
