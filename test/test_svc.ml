(* Tests for the analysis service layer: content-addressed keys (format
   insensitivity, alpha-renaming, determinism), the sharded LRU cache
   (eviction order, capacity, multi-domain consistency), the domain pool
   (drain-on-shutdown, panic isolation, pool-of-1 ≡ sequential), the
   JSONL protocol, and end-to-end service behavior (cache hits on
   duplicates, per-request error isolation, deadlines). *)

module Key = Svc.Key
module Cache = Svc.Cache
module Pool = Svc.Pool
module Proto = Svc.Proto
module Service = Svc.Service

let parse name src = Loopir.Parser.parse ~name src

(* ------------------------------------------------------------------ *)
(* Key                                                                  *)

let base_src = "DO i = 1, n\n  DO j = 1, i\n    A(i+j, j) = A(j, i)\n  ENDDO\nENDDO\n"

let test_key_whitespace_comments () =
  let a = parse "a" base_src in
  let b =
    parse "b"
      "! a comment line\n\
       DO   i = 1,   n   ! trailing comment\n\
       DO j = 1, i\n\
       \    A( i + j , j ) = A( j , i )\n\
       ENDDO\n\
       \n\
       ENDDO\n"
  in
  let k p = Key.to_string (Key.of_request ~params:[ ("n", 10) ] p) in
  Alcotest.(check string)
    "whitespace/comments/program name do not change the key" (k a) (k b)

let test_key_alpha_renaming () =
  let a = parse "a" base_src in
  let b =
    parse "b"
      "DO outer = 1, n\n\
      \  DO q = 1, outer\n\
      \    A(outer+q, q) = A(q, outer)\n\
      \  ENDDO\n\
       ENDDO\n"
  in
  let k p = Key.to_string (Key.of_request ~params:[ ("n", 10) ] p) in
  Alcotest.(check string) "loop index names do not change the key" (k a) (k b);
  (* ... but the renaming respects binding structure: swapping which index
     appears in the subscripts is a different program. *)
  let c =
    parse "c"
      "DO i = 1, n\n\
      \  DO j = 1, i\n\
      \    A(i+j, i) = A(i, j)\n\
      \  ENDDO\n\
       ENDDO\n"
  in
  Alcotest.(check bool)
    "swapped subscript roles is a different key" false
    (k a = k c)

let test_key_params_and_strategy () =
  let p = parse "p" base_src in
  let k ?strategy params = Key.to_string (Key.of_request ?strategy ~params p) in
  Alcotest.(check bool)
    "a relevant binding changes the key" false
    (k [ ("n", 10) ] = k [ ("n", 11) ]);
  Alcotest.(check string)
    "an irrelevant binding does not" (k [ ("n", 10) ])
    (k [ ("n", 10); ("unused", 99) ]);
  Alcotest.(check string)
    "binding order does not"
    (k [ ("n", 10); ("unused", 1) ])
    (k [ ("unused", 1); ("n", 10) ]);
  Alcotest.(check bool)
    "a forced strategy changes the key" false
    (k [ ("n", 10) ] = k ~strategy:Pipeline.Plan.Rec [ ("n", 10) ])

(* If this digest changes, every persisted cache key in the wild is
   silently invalidated — bump it only with a deliberate key-format
   change. *)
let test_key_determinism () =
  let k () =
    Key.to_string
      (Key.of_request ~params:[ ("n1", 30); ("n2", 40) ]
         Loopir.Builtin.example1)
  in
  Alcotest.(check string) "key is deterministic" (k ()) (k ());
  Alcotest.(check string) "key format regression"
    "bfca8dbe905073d674d245c3d40ff815" (k ())

(* ------------------------------------------------------------------ *)
(* Cache                                                                *)

(* Distinct keys from distinct parameter bindings of one program. *)
let key_of_int =
  let p = parse "keygen" base_src in
  fun i -> Key.of_request ~params:[ ("n", i) ] p

let test_cache_lru_order () =
  let c = Cache.create ~shards:1 ~capacity:3 ~name:"t-lru" () in
  let k = Array.init 4 key_of_int in
  Cache.add c k.(0) "a";
  Cache.add c k.(1) "b";
  Cache.add c k.(2) "c";
  (* refresh a, so b is now least recently used *)
  Alcotest.(check (option string)) "hit a" (Some "a") (Cache.find c k.(0));
  Cache.add c k.(3) "d";
  Alcotest.(check (option string)) "b evicted" None (Cache.find c k.(1));
  Alcotest.(check (option string)) "a kept" (Some "a") (Cache.find c k.(0));
  Alcotest.(check (option string)) "c kept" (Some "c") (Cache.find c k.(2));
  Alcotest.(check (option string)) "d kept" (Some "d") (Cache.find c k.(3));
  Alcotest.(check int) "still 3 entries" 3 (Cache.length c)

let test_cache_capacity_bound () =
  let c = Cache.create ~shards:4 ~capacity:10 ~name:"t-cap" () in
  let effective = (Cache.stats c).Cache.capacity in
  Alcotest.(check bool)
    "effective capacity covers requested" true (effective >= 10);
  for i = 1 to 100 do
    Cache.add c (key_of_int i) (string_of_int i)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "length %d <= effective capacity %d" (Cache.length c)
       effective)
    true
    (Cache.length c <= effective);
  let st = Cache.stats c in
  Alcotest.(check int) "size matches length" (Cache.length c) st.Cache.size;
  Alcotest.(check bool) "evictions happened" true (st.Cache.evictions > 0)

let test_cache_concurrent () =
  let c = Cache.create ~shards:8 ~capacity:16 ~name:"t-conc" () in
  let before = Cache.stats c in
  let keys = Array.init 32 key_of_int in
  let lookups_per_domain = 1_000 in
  let worker seed () =
    let state = ref seed in
    for _ = 1 to lookups_per_domain do
      (* xorshift: cheap deterministic per-domain key sequence *)
      state := !state lxor (!state lsl 13);
      state := !state lxor (!state lsr 7);
      state := !state lxor (!state lsl 17);
      let i = abs !state mod Array.length keys in
      match Cache.find c keys.(i) with
      | Some _ -> ()
      | None -> Cache.add c keys.(i) "v"
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker (d + 1))) in
  List.iter Domain.join domains;
  let st = Cache.stats c in
  let hits = st.Cache.hits - before.Cache.hits in
  let misses = st.Cache.misses - before.Cache.misses in
  Alcotest.(check int)
    "every lookup was a hit or a miss"
    (4 * lookups_per_domain)
    (hits + misses);
  Alcotest.(check bool) "some hits" true (hits > 0);
  Alcotest.(check bool)
    "size within capacity" true
    (st.Cache.size <= st.Cache.capacity);
  Alcotest.(check int) "length agrees with stats" st.Cache.size
    (Cache.length c)

(* ------------------------------------------------------------------ *)
(* Pool                                                                 *)

let test_pool_shutdown_drains () =
  let pool = Pool.create ~queue_capacity:8 ~domains:2 () in
  let done_count = Atomic.make 0 in
  for _ = 1 to 50 do
    Pool.submit pool (fun () -> Atomic.incr done_count)
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "all queued jobs ran" 50 (Atomic.get done_count);
  Alcotest.(check bool)
    "submit after shutdown raises Closed" true
    (match Pool.submit pool (fun () -> ()) with
    | () -> false
    | exception Pool.Closed -> true)

let test_pool_panic_isolation () =
  let panics = Obs.Counter.make "svc.pool.panics" in
  let before = Obs.Counter.value panics in
  let pool = Pool.create ~queue_capacity:4 ~domains:2 () in
  let ok = Atomic.make 0 in
  for i = 1 to 20 do
    if i mod 2 = 0 then Pool.submit pool (fun () -> failwith "boom")
    else Pool.submit pool (fun () -> Atomic.incr ok)
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "good jobs all completed" 10 (Atomic.get ok);
  Alcotest.(check int) "panics counted" 10 (Obs.Counter.value panics - before)

(* A pool of one domain must produce exactly what the calling domain
   produces: same status, strategy and survey for every request. *)
let test_pool_of_one_sequential () =
  let config =
    {
      Service.default_config with
      domains = 1;
      threads = 1;
      check = false;
      measure = false;
    }
  in
  let requests =
    List.map
      (fun (name, prog) ->
        Proto.request ~id:name ~name
          ~params:(List.map (fun p -> (p, 8)) prog.Loopir.Ast.params)
          ~mode:Proto.Classify (Proto.Prog prog))
      Loopir.Builtin.corpus
  in
  let pooled = Service.create ~config () in
  let via_pool = Service.batch pooled requests in
  Service.shutdown pooled;
  let direct = Service.create ~config () in
  let via_caller = List.map (Service.run_one direct) requests in
  Service.shutdown direct;
  let essence (r : Proto.response) =
    ( r.Proto.id,
      match r.Proto.body with
      | Proto.Done { strategy; survey; _ } ->
          Ok (strategy, Option.map (fun s -> s.Proto.cls) survey)
      | Proto.Failed f -> Error (Proto.failure_kind f)
      | Proto.Stats _ | Proto.Healthy _ -> Error "introspective" )
  in
  Alcotest.(check int)
    "one response per request"
    (List.length requests)
    (List.length via_pool);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "pool-of-1 matches sequential for %s"
           (fst (essence a)))
        true
        (essence a = essence b))
    via_pool via_caller

(* ------------------------------------------------------------------ *)
(* Proto                                                                *)

let test_proto_round_trip () =
  let req =
    Proto.request ~id:"r1" ~name:"nest"
      ~params:[ ("n", 30); ("m", 4) ]
      ~strategy:Pipeline.Plan.Rec ~threads:3 ~mode:Proto.Classify
      ~survey:true ~deadline_s:2.5 (Proto.Src base_src)
  in
  let line = Pipeline.Json.to_string (Proto.request_to_json req) in
  match Proto.request_of_line line with
  | Error f -> Alcotest.failf "round trip failed: %s" f.Proto.message
  | Ok got ->
      Alcotest.(check string) "id" req.Proto.id got.Proto.id;
      Alcotest.(check string) "name" req.Proto.name got.Proto.name;
      Alcotest.(check bool) "params" true (got.Proto.params = req.Proto.params);
      Alcotest.(check bool)
        "strategy" true
        (got.Proto.strategy = Some Pipeline.Plan.Rec);
      Alcotest.(check bool) "threads" true (got.Proto.threads = Some 3);
      Alcotest.(check bool) "mode" true (got.Proto.mode = Proto.Classify);
      Alcotest.(check bool) "survey" true got.Proto.survey;
      Alcotest.(check bool)
        "deadline" true
        (got.Proto.deadline_s = Some 2.5);
      (* and the parsed source hashes like the original program *)
      let prog_of r =
        match r.Proto.source with
        | Proto.Prog p -> p
        | Proto.Src s -> parse r.Proto.name s
      in
      Alcotest.(check string) "source survives"
        (Key.to_string
           (Key.of_request ~params:req.Proto.params (prog_of req)))
        (Key.to_string
           (Key.of_request ~params:req.Proto.params (prog_of got)))

let test_proto_malformed_lines () =
  let expect_error ?line_id line what =
    match Proto.request_of_line line with
    | Ok _ -> Alcotest.failf "%s unexpectedly parsed" what
    | Error f ->
        Alcotest.(check (option string))
          (what ^ ": line_id")
          line_id f.Proto.line_id
  in
  expect_error "not json at all" "garbage";
  expect_error "[1,2]" "non-object";
  expect_error {|{"name":"x","src":"DO"}|} "missing id";
  expect_error ~line_id:"r9" {|{"id":"r9","name":"x"}|} "missing src";
  expect_error ~line_id:"r9"
    {|{"id":"r9","name":"x","src":"A(1)=2","strategy":"zigzag"}|}
    "unknown strategy";
  expect_error ~line_id:"r9"
    {|{"id":"r9","name":"x","src":"A(1)=2","threads":0}|}
    "bad thread count"

(* ------------------------------------------------------------------ *)
(* Service                                                              *)

let quiet_config ~domains =
  {
    Service.default_config with
    domains;
    threads = 1;
    check = false;
    measure = false;
  }

(* With one worker the batch is sequential, so every duplicate after the
   first must be a cache hit — no miss race is possible. *)
let test_service_duplicate_hits () =
  let svc = Service.create ~config:(quiet_config ~domains:1) () in
  let before = Service.cache_stats svc in
  let requests =
    List.concat_map
      (fun copy ->
        List.map
          (fun (name, prog) ->
            Proto.request
              ~id:(Printf.sprintf "%s#%d" name copy)
              ~name
              ~params:(List.map (fun p -> (p, 8)) prog.Loopir.Ast.params)
              ~mode:Proto.Classify (Proto.Prog prog))
          [
            ("example1", Loopir.Builtin.example1);
            ("fig2", Loopir.Builtin.fig2);
            ("example2", Loopir.Builtin.example2);
          ])
      [ 0; 1; 2; 3 ]
  in
  let responses = Service.batch svc requests in
  let after = Service.cache_stats svc in
  Service.shutdown svc;
  Alcotest.(check int) "one response per request" 12 (List.length responses);
  List.iter
    (fun (r : Proto.response) ->
      Alcotest.(check bool) (r.Proto.id ^ " ok") true (Proto.ok r))
    responses;
  Alcotest.(check int) "three copies of each nest hit" 9
    (after.Cache.hits - before.Cache.hits);
  let cached =
    List.length (List.filter (fun r -> r.Proto.cached) responses)
  in
  Alcotest.(check int) "responses marked cached" 9 cached

let test_service_error_isolation () =
  let svc = Service.create ~config:(quiet_config ~domains:2) () in
  let good =
    Proto.request ~id:"good" ~name:"good" ~params:[ ("n", 8) ]
      ~mode:Proto.Classify (Proto.Src base_src)
  in
  let bad =
    Proto.request ~id:"bad" ~name:"bad" ~mode:Proto.Classify
      (Proto.Src "DO i = 1, n\n  oops oops(\nENDDO")
  in
  let unbound =
    (* params missing the nest's symbolic bound *)
    Proto.request ~id:"unbound" ~name:"unbound" ~params:[]
      ~mode:Proto.Classify (Proto.Src base_src)
  in
  let responses = Service.batch svc [ good; bad; unbound ] in
  Service.shutdown svc;
  match responses with
  | [ g; b; u ] ->
      Alcotest.(check bool) "good succeeded" true (Proto.ok g);
      (match b.Proto.body with
      | Proto.Failed (Proto.Bad_request _) -> ()
      | _ -> Alcotest.fail "parse failure should be a bad-request record");
      (match u.Proto.body with
      | Proto.Failed (Proto.Pipeline_error { label; _ }) ->
          Alcotest.(check string)
            "unbound parameter surfaces its label" "unbound-parameter" label
      | _ -> Alcotest.fail "unbound parameter should be a pipeline error")
  | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs)

let test_service_deadline () =
  let svc = Service.create ~config:(quiet_config ~domains:1) () in
  let req =
    Proto.request ~id:"late" ~name:"late" ~params:[ ("n", 8) ]
      ~deadline_s:0.0 (Proto.Src base_src)
  in
  let r = Service.run_one svc req in
  Service.shutdown svc;
  match r.Proto.body with
  | Proto.Failed (Proto.Deadline { limit_s; elapsed_s }) ->
      Alcotest.(check (float 0.0)) "limit echoed" 0.0 limit_s;
      Alcotest.(check bool) "elapsed recorded" true (elapsed_s >= 0.0)
  | _ -> Alcotest.fail "zero deadline should fail with a deadline record"

(* ------------------------------------------------------------------ *)
(* Telemetry ops and request tracing                                    *)

let classify_corpus ~copies =
  List.concat_map
    (fun copy ->
      List.map
        (fun (name, prog) ->
          Proto.request
            ~id:(Printf.sprintf "%s#%d" name copy)
            ~name
            ~params:(List.map (fun p -> (p, 8)) prog.Loopir.Ast.params)
            ~mode:Proto.Classify (Proto.Prog prog))
        [
          ("example1", Loopir.Builtin.example1);
          ("fig2", Loopir.Builtin.fig2);
        ])
    (List.init copies Fun.id)

(* A batch ending in a metrics op: the op is answered after the pooled
   analysis drains, so its snapshot must already show this batch's cache
   hits, and both renderings must be well-formed. *)
let test_service_metrics_op () =
  let svc = Service.create ~config:(quiet_config ~domains:2) () in
  let metrics_req = Proto.request ~id:"m0" ~mode:Proto.Metrics ~name:"metrics" (Proto.Src "") in
  let responses = Service.batch svc (classify_corpus ~copies:3 @ [ metrics_req ]) in
  Service.shutdown svc;
  let m =
    match List.rev responses with
    | last :: _ -> last
    | [] -> Alcotest.fail "no responses"
  in
  Alcotest.(check string) "metrics response id" "m0" m.Proto.id;
  Alcotest.(check bool) "metrics response traced" true (m.Proto.trace <> "");
  match m.Proto.body with
  | Proto.Stats { prometheus; snapshot } ->
      let contains sub s =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        "prometheus names sanitized" true
        (contains "recpart_svc_cache_results_hits" prometheus);
      (match snapshot with
      | Pipeline.Json.Obj fields -> (
          match List.assoc_opt "counters" fields with
          | Some (Pipeline.Json.Obj counters) -> (
              match List.assoc_opt "svc.cache.results.hits" counters with
              | Some (Pipeline.Json.Int hits) ->
                  Alcotest.(check bool)
                    "duplicate-heavy batch shows cache hits" true (hits > 0)
              | _ -> Alcotest.fail "svc.cache.results.hits missing")
          | _ -> Alcotest.fail "counters block missing")
      | _ -> Alcotest.fail "snapshot is not an object");
      (* the wire form of the response must itself parse *)
      (match Pipeline.Json.parse (Proto.response_to_line m) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "metrics response line: %s" e)
  | _ -> Alcotest.fail "metrics op should answer with Stats"

let test_service_health_op () =
  let svc = Service.create ~config:(quiet_config ~domains:2) () in
  let r =
    Service.run_one svc
      (Proto.request ~id:"h0" ~mode:Proto.Health ~name:"health" (Proto.Src ""))
  in
  Service.shutdown svc;
  match r.Proto.body with
  | Proto.Healthy { ok; detail } ->
      Alcotest.(check bool) "freshly created service is healthy" true ok;
      (match detail with
      | Pipeline.Json.Obj fields ->
          List.iter
            (fun key ->
              Alcotest.(check bool) (key ^ " block present") true
                (List.mem_assoc key fields))
            [ "pool"; "cache"; "exec"; "windows" ]
      | _ -> Alcotest.fail "health detail is not an object")
  | _ -> Alcotest.fail "health op should answer with Healthy"

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* A deadline-failed request must leave a flight-recorder postmortem
   containing its id and trace id. *)
let test_service_deadline_flight_dump () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "recpart-test-flight"
  in
  rm_rf dir;
  let config = { (quiet_config ~domains:1) with flight_dir = Some dir } in
  let svc = Service.create ~config () in
  let r =
    Service.run_one svc
      (Proto.request ~id:"late" ~name:"late" ~params:[ ("n", 8) ]
         ~deadline_s:0.0 (Proto.Src base_src))
  in
  Service.shutdown svc;
  (match r.Proto.body with
  | Proto.Failed (Proto.Deadline _) -> ()
  | _ -> Alcotest.fail "zero deadline should fail with a deadline record");
  Alcotest.(check bool) "response traced" true (r.Proto.trace <> "");
  let dumps =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f >= 7 && String.sub f 0 7 = "flight-")
  in
  (match dumps with
  | [ file ] ->
      let ic = open_in (Filename.concat dir file) in
      let len = in_channel_length ic in
      let content = really_input_string ic len in
      close_in ic;
      let contains sub s =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "dump names the request" true
        (contains "late" file);
      Alcotest.(check bool) "dump carries the trace id" true
        (contains r.Proto.trace content);
      Alcotest.(check bool) "dump records the failure kind" true
        (contains "deadline" content)
  | files ->
      Alcotest.failf "expected exactly one flight dump, found %d"
        (List.length files));
  rm_rf dir

(* Every service span recorded during a pooled batch must carry the
   originating request's trace id — including the ones that ran on pool
   worker domains, which is where the Ctx propagation could break. *)
let test_service_spans_carry_req () =
  let sink = Obs.Sink.make () in
  let config = { (quiet_config ~domains:2) with sink } in
  let svc = Service.create ~config () in
  let responses = Service.batch svc (classify_corpus ~copies:2) in
  Service.shutdown svc;
  let traces =
    List.filter_map
      (fun (r : Proto.response) ->
        if r.Proto.trace = "" then None else Some r.Proto.trace)
      responses
  in
  Alcotest.(check int) "every response traced" (List.length responses)
    (List.length traces);
  let svc_spans =
    List.filter
      (fun (s : Obs.Sink.span) ->
        String.length s.Obs.Sink.name >= 4
        && String.sub s.Obs.Sink.name 0 4 = "svc:")
      (Obs.Sink.spans sink)
  in
  Alcotest.(check bool) "batch recorded service spans" true (svc_spans <> []);
  let main_tid = (Domain.self () :> int) in
  let off_main = ref false in
  List.iter
    (fun (s : Obs.Sink.span) ->
      match List.assoc_opt "req" s.Obs.Sink.args with
      | None -> Alcotest.failf "span %s lost its request id" s.Obs.Sink.name
      | Some req ->
          if s.Obs.Sink.tid <> main_tid then off_main := true;
          Alcotest.(check bool)
            (Printf.sprintf "span %s req is a batch trace" s.Obs.Sink.name)
            true (List.mem req traces))
    svc_spans;
  Alcotest.(check bool) "spans ran on pool worker domains" true !off_main

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "svc"
    [
      ( "key",
        [
          Alcotest.test_case "whitespace and comments" `Quick
            test_key_whitespace_comments;
          Alcotest.test_case "alpha renaming" `Quick test_key_alpha_renaming;
          Alcotest.test_case "params and strategy" `Quick
            test_key_params_and_strategy;
          Alcotest.test_case "determinism regression" `Quick
            test_key_determinism;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction order" `Quick test_cache_lru_order;
          Alcotest.test_case "capacity bound" `Quick test_cache_capacity_bound;
          Alcotest.test_case "4-domain consistency" `Quick
            test_cache_concurrent;
        ] );
      ( "pool",
        [
          Alcotest.test_case "shutdown drains queue" `Quick
            test_pool_shutdown_drains;
          Alcotest.test_case "panic isolation" `Quick
            test_pool_panic_isolation;
          Alcotest.test_case "pool of 1 = sequential" `Quick
            test_pool_of_one_sequential;
        ] );
      ( "proto",
        [
          Alcotest.test_case "jsonl round trip" `Quick test_proto_round_trip;
          Alcotest.test_case "malformed lines" `Quick
            test_proto_malformed_lines;
        ] );
      ( "service",
        [
          Alcotest.test_case "duplicate requests hit cache" `Quick
            test_service_duplicate_hits;
          Alcotest.test_case "error isolation" `Quick
            test_service_error_isolation;
          Alcotest.test_case "deadline" `Quick test_service_deadline;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "metrics op over a batch" `Quick
            test_service_metrics_op;
          Alcotest.test_case "health op" `Quick test_service_health_op;
          Alcotest.test_case "deadline leaves a flight dump" `Quick
            test_service_deadline_flight_dump;
          Alcotest.test_case "spans carry the request trace" `Quick
            test_service_spans_carry_req;
        ] );
    ]
