(* Tests for the hash-consing/memoization substrate: Numeric.Digest, the
   Presburger.Hc tables, the Iset/Rel union dedup, and — via QCheck —
   extensional agreement between every memoized operator and its
   unmemoized reference computation. *)

module D = Numeric.Digest
module Hc = Presburger.Hc
module L = Presburger.Linexpr
module C = Presburger.Constr
module P = Presburger.Poly
module Iset = Presburger.Iset
module Rel = Presburger.Rel
module Service = Svc.Service
module Proto = Svc.Proto

let ge _n coef const = C.Ge (L.make (Array.of_list coef) const)
let eq _n coef const = C.Eq (L.make (Array.of_list coef) const)

let box n lo hi =
  List.concat
    (List.init n (fun k ->
         [
           C.Ge (L.add_const (L.var n k) (-lo));
           C.Ge (L.add_const (L.neg (L.var n k)) hi);
         ]))

let rec box_points n lo hi =
  if n = 0 then [ [] ]
  else
    let rest = box_points (n - 1) lo hi in
    List.concat_map
      (fun v -> List.map (fun tl -> v :: tl) rest)
      (List.init (hi - lo + 1) (fun i -> lo + i))

let with_memo_disabled f =
  Hc.set_enabled false;
  Fun.protect ~finally:(fun () -> Hc.set_enabled true) f

(* ------------------------------------------------------------------ *)
(* Digest                                                               *)

let test_digest_basics () =
  (* The seed is the FNV-1a 64-bit offset basis on lane a and its
     byte-rotated form on lane b — pinned, since Svc.Key's cache keys and
     every memo table key derive from it. *)
  Alcotest.(check string)
    "seed pins the two FNV lanes" "cbf29ce48422232584222325cbf29ce4"
    (D.to_hex D.seed);
  let h = D.to_hex (D.of_string "recurrence") in
  Alcotest.(check int) "hex width" 32 (String.length h);
  Alcotest.(check string) "deterministic" h (D.to_hex (D.of_string "recurrence"));
  Alcotest.(check bool)
    "distinct inputs" false
    (D.equal (D.of_string "a") (D.of_string "b"));
  Alcotest.(check bool)
    "int feeding is order-sensitive" false
    (D.equal
       (D.add_int (D.add_int D.seed 1) 2)
       (D.add_int (D.add_int D.seed 2) 1));
  Alcotest.(check bool)
    "add_digest is not string append" false
    (D.equal (D.add_digest D.seed (D.of_string "x")) (D.of_string "x"));
  Alcotest.(check int)
    "compare consistent with equal" 0
    (D.compare (D.of_string "chain") (D.of_string "chain"))

let test_poly_digest_syntactic () =
  let p1 = P.make 2 [ ge 2 [ 1; 2 ] 3; eq 2 [ 1; -1 ] 0 ] in
  let p2 = P.make 2 [ ge 2 [ 1; 2 ] 3; eq 2 [ 1; -1 ] 0 ] in
  let p3 = P.make 2 [ eq 2 [ 1; -1 ] 0; ge 2 [ 1; 2 ] 3 ] in
  Alcotest.(check bool)
    "same syntax, same digest" true
    (D.equal (P.digest p1) (P.digest p2));
  (* Digests are order-sensitive so interning never reorders constraint
     lists; multiset equality is the job of equal_syntactic. *)
  Alcotest.(check bool)
    "reordered constraints, different digest" false
    (D.equal (P.digest p1) (P.digest p3));
  Alcotest.(check bool) "equal_syntactic ignores order" true
    (P.equal_syntactic p1 p3)

let test_intern_sharing () =
  let mk () = P.make 2 [ ge 2 [ 1; 2 ] 3; eq 2 [ 1; -1 ] 0 ] in
  let a = P.intern (mk ()) in
  let b = P.intern (mk ()) in
  Alcotest.(check bool) "physically shared" true (a == b)

(* ------------------------------------------------------------------ *)
(* Hc tables                                                            *)

let key i = D.add_int D.seed i

let test_memo_lru () =
  let t : int Hc.memo = Hc.memo ~shards:1 ~name:"test.lru" ~capacity:4 () in
  for i = 0 to 3 do
    Hc.add t (key i) i
  done;
  Alcotest.(check int) "filled to capacity" 4 (Hc.length t);
  (* Touch key 0 so key 1 becomes the eviction victim. *)
  Alcotest.(check bool) "find hits" true (Hc.find t (key 0) = Some 0);
  Hc.add t (key 4) 4;
  Alcotest.(check int) "capacity bound holds" 4 (Hc.length t);
  Alcotest.(check bool)
    "recently-used key survives" true
    (Hc.find t (key 0) <> None);
  Alcotest.(check bool) "LRU key evicted" true (Hc.find t (key 1) = None)

let test_memo_get () =
  let t : int Hc.memo = Hc.memo ~shards:1 ~name:"test.get" ~capacity:8 () in
  let calls = ref 0 in
  let f () =
    incr calls;
    42
  in
  Alcotest.(check int) "computed on miss" 42 (Hc.get t (key 10) f);
  Alcotest.(check int) "served on hit" 42 (Hc.get t (key 10) f);
  Alcotest.(check int) "computed exactly once" 1 !calls;
  (* Exceptions propagate and cache nothing. *)
  (match Hc.get t (key 11) (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected the compute exception"
  | exception Failure _ -> ());
  Alcotest.(check int)
    "failed compute was not cached" 7
    (Hc.get t (key 11) (fun () -> 7));
  Hc.clear_all ();
  Alcotest.(check int) "clear_all empties the table" 0 (Hc.length t)

let test_memo_disabled () =
  let t : int Hc.memo = Hc.memo ~shards:1 ~name:"test.off" ~capacity:8 () in
  with_memo_disabled (fun () ->
      Alcotest.(check bool) "reports disabled" false (Hc.enabled ());
      let calls = ref 0 in
      let f () =
        incr calls;
        1
      in
      ignore (Hc.get t (key 1) f);
      ignore (Hc.get t (key 1) f);
      Alcotest.(check int) "no caching when disabled" 2 !calls;
      Alcotest.(check int) "table untouched" 0 (Hc.length t));
  Alcotest.(check bool) "re-enabled" true (Hc.enabled ())

(* ------------------------------------------------------------------ *)
(* Iset/Rel union dedup (regression: union used to append verbatim)     *)

let test_union_dedup () =
  let iters = [| "i"; "j" |] and params = [||] in
  let p1 = P.make 2 (box 2 0 10) in
  let p2 = P.make 2 (eq 2 [ 1; -1 ] 0 :: box 2 0 10) in
  let s0 = Iset.make ~iters ~params [ p1; p2 ] in
  let s = ref s0 in
  for _ = 1 to 10 do
    s := Iset.union !s !s
  done;
  Alcotest.(check int)
    "iterated self-union keeps the disjunct list bounded" 2
    (List.length (Iset.polys !s));
  Alcotest.(check bool) "and is still the same set" true (Iset.equal !s s0);
  let a = Iset.make ~iters ~params [ p1 ] in
  let b = Iset.make ~iters ~params [ p2 ] in
  Alcotest.(check int)
    "distinct disjuncts are both kept" 2
    (List.length (Iset.polys (Iset.union a b)))

let test_rel_union_dedup () =
  let inn = [| "i" |] and out = [| "j" |] and params = [||] in
  let p = P.make 2 (eq 2 [ 1; -1 ] 1 :: box 2 0 10) in
  let r = Rel.make ~inn ~out ~params [ p; p ] in
  Alcotest.(check int)
    "self-union dedups" 2
    (List.length (Rel.polys (Rel.union r r)))

(* ------------------------------------------------------------------ *)
(* Memoized operators ≡ unmemoized reference (extensional)              *)

let gen_constr n =
  QCheck2.Gen.(
    let* kind = int_range 0 2 in
    let* coef = array_size (pure n) (int_range (-3) 3) in
    let* const = int_range (-8) 8 in
    match kind with
    | 0 -> pure (C.Ge (L.make coef const))
    | 1 -> pure (C.Eq (L.make coef const))
    | _ ->
        let* m = int_range 2 4 in
        pure (C.Div (m, L.make coef const)))

let gen_poly n =
  QCheck2.Gen.(
    let* k = int_range 0 3 in
    let* cs = list_size (pure k) (gen_constr n) in
    pure (P.make n (cs @ box n (-10) 10)))

let iters2 = [| "i"; "j" |]

let gen_iset =
  QCheck2.Gen.(
    let* k = int_range 1 3 in
    let* ps = list_size (pure k) (gen_poly 2) in
    pure (Iset.make ~iters:iters2 ~params:[||] ps))

let gen_rel =
  QCheck2.Gen.(
    let* k = int_range 1 2 in
    let* ps = list_size (pure k) (gen_poly 2) in
    pure (Rel.make ~inn:[| "i" |] ~out:[| "j" |] ~params:[||] ps))

let pts2 = box_points 2 (-12) 12
let pts1 = box_points 1 (-12) 12

let iset_ext_equal a b =
  List.for_all
    (fun l ->
      let xs = Array.of_list l in
      Iset.mem a xs = Iset.mem b xs)
    pts2

let iset1_ext_equal a b =
  List.for_all
    (fun l ->
      let xs = Array.of_list l in
      Iset.mem a xs = Iset.mem b xs)
    pts1

let rel_ext_equal a b =
  List.for_all
    (fun l ->
      let xs = Array.of_list l in
      Rel.mem a ~params:[||] [| xs.(0) |] [| xs.(1) |]
      = Rel.mem b ~params:[||] [| xs.(0) |] [| xs.(1) |])
    pts2

(* Each property computes the operator twice — once through the (warm,
   process-global) memo tables and once with memoization disabled — and
   demands extensional agreement on every box point. *)
let prop_inter_matches_reference =
  QCheck2.Test.make ~name:"memoized inter = reference" ~count:60
    QCheck2.Gen.(pair gen_iset gen_iset)
    (fun (a, b) ->
      iset_ext_equal (Iset.inter a b)
        (with_memo_disabled (fun () -> Iset.inter a b)))

let prop_diff_matches_reference =
  QCheck2.Test.make ~name:"memoized diff = reference" ~count:40
    QCheck2.Gen.(pair gen_iset gen_iset)
    (fun (a, b) ->
      iset_ext_equal (Iset.diff a b)
        (with_memo_disabled (fun () -> Iset.diff a b)))

let prop_simplify_matches_reference =
  QCheck2.Test.make ~name:"memoized simplify = reference" ~count:60 gen_iset
    (fun s ->
      iset_ext_equal
        (Iset.simplify ~aggressive:true s)
        (with_memo_disabled (fun () -> Iset.simplify ~aggressive:true s)))

let prop_decisions_match_reference =
  QCheck2.Test.make ~name:"memoized is_empty/subset/equal = reference"
    ~count:60
    QCheck2.Gen.(pair gen_iset gen_iset)
    (fun (a, b) ->
      let memoized = (Iset.is_empty a, Iset.subset a b, Iset.equal a b) in
      memoized
      = with_memo_disabled (fun () ->
            (Iset.is_empty a, Iset.subset a b, Iset.equal a b)))

let prop_dom_ran_match_reference =
  QCheck2.Test.make ~name:"memoized dom/ran = reference" ~count:40 gen_rel
    (fun r ->
      let rd, rr = with_memo_disabled (fun () -> (Rel.dom r, Rel.ran r)) in
      iset1_ext_equal (Rel.dom r) rd && iset1_ext_equal (Rel.ran r) rr)

let prop_compose_matches_reference =
  QCheck2.Test.make ~name:"memoized compose = reference" ~count:25
    QCheck2.Gen.(pair gen_rel gen_rel)
    (fun (r, s) ->
      rel_ext_equal (Rel.compose r s)
        (with_memo_disabled (fun () -> Rel.compose r s)))

let test_mixed_space_rejected () =
  let a = Iset.universe ~iters:[| "i" |] ~params:[||] in
  let b = Iset.universe ~iters:[| "k" |] ~params:[||] in
  let raises f =
    match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  List.iter
    (fun (what, f) ->
      Alcotest.(check bool) (what ^ " rejects, memo path") true (raises f);
      Alcotest.(check bool)
        (what ^ " rejects, reference path")
        true
        (with_memo_disabled (fun () -> raises f)))
    [
      ("union", fun () -> ignore (Iset.union a b));
      ("inter", fun () -> ignore (Iset.inter a b));
      ("diff", fun () -> ignore (Iset.diff a b));
      ("subset", fun () -> ignore (Iset.subset a b));
      ("equal", fun () -> ignore (Iset.equal a b));
    ]

(* ------------------------------------------------------------------ *)
(* Memo consistency under a concurrent 4-domain analysis pool           *)

let test_four_domain_stress () =
  (* Distinct parameter bindings defeat the request-level result cache, so
     every request re-runs the analysis and the presburger memo tables are
     hammered from four domains at once. *)
  let requests =
    List.concat
      (List.init 3 (fun round ->
           List.map
             (fun (name, prog) ->
               Proto.request
                 ~id:(Printf.sprintf "%s#%d" name round)
                 ~name
                 ~params:
                   (List.map (fun p -> (p, 6 + round)) prog.Loopir.Ast.params)
                 ~mode:Proto.Classify (Proto.Prog prog))
             Loopir.Builtin.corpus))
  in
  let config domains =
    { Service.default_config with domains; threads = 1; check = false;
      measure = false }
  in
  let before = Hc.totals () in
  let pooled = Service.create ~config:(config 4) () in
  let via_pool = Service.batch pooled requests in
  Service.shutdown pooled;
  let after = Hc.totals () in
  let direct = Service.create ~config:(config 1) () in
  let via_seq = List.map (Service.run_one direct) requests in
  Service.shutdown direct;
  let essence (r : Proto.response) =
    ( r.Proto.id,
      match r.Proto.body with
      | Proto.Done { strategy; survey; _ } ->
          Ok (strategy, Option.map (fun s -> s.Proto.cls) survey)
      | Proto.Failed f -> Error (Proto.failure_kind f)
      | Proto.Stats _ | Proto.Healthy _ -> Error "introspective" )
  in
  Alcotest.(check int)
    "one response per request"
    (List.length requests)
    (List.length via_pool);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "4-domain answer matches sequential for %s"
           (fst (essence a)))
        true
        (essence a = essence b))
    via_pool via_seq;
  Alcotest.(check bool)
    "memo tables were exercised concurrently" true
    (after.Hc.hits + after.Hc.misses > before.Hc.hits + before.Hc.misses)

let () =
  Alcotest.run "hc"
    [
      ( "digest",
        [
          Alcotest.test_case "lanes and hex format" `Quick test_digest_basics;
          Alcotest.test_case "poly digests are syntactic" `Quick
            test_poly_digest_syntactic;
          Alcotest.test_case "interning shares structure" `Quick
            test_intern_sharing;
        ] );
      ( "memo",
        [
          Alcotest.test_case "lru eviction order" `Quick test_memo_lru;
          Alcotest.test_case "get computes once" `Quick test_memo_get;
          Alcotest.test_case "disabled bypass" `Quick test_memo_disabled;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "iset self-union bounded" `Quick test_union_dedup;
          Alcotest.test_case "rel union dedups" `Quick test_rel_union_dedup;
        ] );
      ( "reference",
        [
          QCheck_alcotest.to_alcotest prop_inter_matches_reference;
          QCheck_alcotest.to_alcotest prop_diff_matches_reference;
          QCheck_alcotest.to_alcotest prop_simplify_matches_reference;
          QCheck_alcotest.to_alcotest prop_decisions_match_reference;
          QCheck_alcotest.to_alcotest prop_dom_ran_match_reference;
          QCheck_alcotest.to_alcotest prop_compose_matches_reference;
          Alcotest.test_case "mixed spaces rejected on both paths" `Quick
            test_mixed_space_rejected;
        ] );
      ( "stress",
        [
          Alcotest.test_case "4-domain memo consistency" `Quick
            test_four_domain_stress;
        ] );
    ]
