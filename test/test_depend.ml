(* Tests for dependence analysis: exact relations on the paper's examples,
   uniformity classification, trace-based graphs. *)

module Solve = Depend.Solve
module Depeq = Depend.Depeq
module Distance = Depend.Distance
module Trace = Depend.Trace
module Graph = Depend.Graph
module Space = Depend.Space
module Rel = Presburger.Rel
module Iset = Presburger.Iset
module Enum = Presburger.Enum
module Ivec = Linalg.Ivec

let ivec = Alcotest.testable Ivec.pp Ivec.equal
let _ = ivec

(* ------------------------------------------------------------------ *)
(* Example 1 (paper Figure 1)                                           *)

let test_example1_distances () =
  let a = Solve.analyze_simple Loopir.Builtin.example1 in
  let ds = Distance.distances a.Solve.rd ~params:[| 10; 10 |] in
  Alcotest.(check int) "three distinct distances" 3 (List.length ds);
  Alcotest.(check bool) "(2,2)" true
    (List.exists (Ivec.equal [| 2; 2 |]) ds);
  Alcotest.(check bool) "(4,4)" true
    (List.exists (Ivec.equal [| 4; 4 |]) ds);
  Alcotest.(check bool) "(6,6)" true
    (List.exists (Ivec.equal [| 6; 6 |]) ds)

let test_example1_pair_count () =
  (* Figure 1 shows 8 arrows of distance (2,2), 6 of (4,4), 4 of (6,6). *)
  let a = Solve.analyze_simple Loopir.Builtin.example1 in
  let set = Iset.bind_params (Rel.to_set a.Solve.rd) [| 10; 10 |] in
  Alcotest.(check int) "18 direct dependences" 18 (Enum.cardinal set)

let test_example1_classify () =
  let a = Solve.analyze_simple Loopir.Builtin.example1 in
  Alcotest.(check string) "non-uniform" "non-uniform"
    (Distance.class_to_string
       (Distance.classify a.Solve.rd ~phi:a.Solve.phi ~params:[| 10; 10 |]))

let test_example1_pair_matrices () =
  let a = Solve.analyze_simple Loopir.Builtin.example1 in
  match a.Solve.pair with
  | None -> Alcotest.fail "coupled pair expected"
  | Some p ->
      Alcotest.(check bool) "A" true
        (Linalg.Imat.equal p.Depeq.a_mat [| [| 3; 2 |]; [| 0; 1 |] |]);
      Alcotest.(check bool) "B" true
        (Linalg.Imat.equal p.Depeq.b_mat [| [| 1; 0 |]; [| 0; 1 |] |]);
      Alcotest.(check int) "det A" 3 (Depeq.det_a p);
      Alcotest.(check int) "det B" 1 (Depeq.det_b p);
      Alcotest.(check bool) "full rank" true (Depeq.full_rank p);
      (* offsets a = (1,-1), b = (3,1) *)
      Alcotest.(check int) "a1" 1 p.Depeq.a_off.(0).Loopir.Affine.const;
      Alcotest.(check int) "a2" (-1) p.Depeq.a_off.(1).Loopir.Affine.const;
      Alcotest.(check int) "b1" 3 p.Depeq.b_off.(0).Loopir.Affine.const;
      Alcotest.(check int) "b2" 1 p.Depeq.b_off.(1).Loopir.Affine.const

(* ------------------------------------------------------------------ *)
(* Figure 2                                                             *)

let test_fig2_sets () =
  let a = Solve.analyze_simple Loopir.Builtin.fig2 in
  let dom = Enum.points (Rel.dom a.Solve.rd) |> List.map (fun v -> v.(0)) in
  let ran = Enum.points (Rel.ran a.Solve.rd) |> List.map (fun v -> v.(0)) in
  Alcotest.(check (list int)) "dom = initial candidates" [ 1; 2; 3; 4; 5; 6 ] dom;
  Alcotest.(check (list int)) "ran" [ 8; 9; 10; 11; 13; 15; 17; 19 ] ran

let test_fig2_pair () =
  let a = Solve.analyze_simple Loopir.Builtin.fig2 in
  match a.Solve.pair with
  | None -> Alcotest.fail "pair expected"
  | Some p ->
      Alcotest.(check int) "A = [2]" 2 (Linalg.Imat.get p.Depeq.a_mat 0 0);
      Alcotest.(check int) "B = [-1]" (-1) (Linalg.Imat.get p.Depeq.b_mat 0 0);
      Alcotest.(check int) "b offset 21" 21 p.Depeq.b_off.(0).Loopir.Affine.const

let test_fig2_param_pair () =
  let a = Solve.analyze_simple Loopir.Builtin.fig2_param in
  match a.Solve.pair with
  | None -> Alcotest.fail "pair expected"
  | Some p ->
      (* read offset 2m+1 is parametric *)
      Alcotest.(check int) "m coeff" 2
        (Loopir.Affine.coeff p.Depeq.b_off.(0) "m");
      Alcotest.(check int) "const 1" 1 p.Depeq.b_off.(0).Loopir.Affine.const

(* ------------------------------------------------------------------ *)
(* Example 2                                                            *)

let test_example2_pair () =
  let a = Solve.analyze_simple Loopir.Builtin.example2 in
  match a.Solve.pair with
  | None -> Alcotest.fail "pair expected"
  | Some p ->
      Alcotest.(check bool) "A" true
        (Linalg.Imat.equal p.Depeq.a_mat [| [| 2; 0 |]; [| 0; 1 |] |]);
      Alcotest.(check bool) "B" true
        (Linalg.Imat.equal p.Depeq.b_mat [| [| 1; 1 |]; [| 2; 1 |] |]);
      Alcotest.(check int) "det B = -1" (-1) (Depeq.det_b p)

let test_example2_nonuniform () =
  let a = Solve.analyze_simple Loopir.Builtin.example2 in
  Alcotest.(check string) "non-uniform" "non-uniform"
    (Distance.class_to_string
       (Distance.classify a.Solve.rd ~phi:a.Solve.phi ~params:[| 12 |]))

(* ------------------------------------------------------------------ *)
(* Corpus classification                                                *)

let classify_one prog params =
  let a = Solve.analyze_simple prog in
  Distance.classify a.Solve.rd ~phi:a.Solve.phi ~params

let test_corpus_classes () =
  let find name = List.assoc name Loopir.Builtin.corpus in
  let check name params expected =
    Alcotest.(check string)
      name expected
      (Distance.class_to_string (classify_one (find name) params))
  in
  check "vecadd" [| 8 |] "none";
  check "transpose_copy" [| 6 |] "none";
  check "prefix_sum" [| 8 |] "uniform";
  check "stencil1d" [| 8 |] "uniform";
  check "wavefront2d" [| 6 |] "uniform";
  check "uniform_diag" [| 6 |] "uniform";
  check "coupled_stretch" [| 10 |] "non-uniform";
  check "coupled_mirror" [| 10 |] "non-uniform";
  check "coupled_skew2d" [| 6 |] "non-uniform";
  check "reverse_copy" [| 9 |] "none"

let test_coupled_detection () =
  let stmt_of p = List.hd (Loopir.Prog.stmts_of p) in
  Alcotest.(check bool) "example1 coupled" true
    (Distance.has_coupled_subscripts (stmt_of Loopir.Builtin.example1));
  Alcotest.(check bool) "example2 coupled" true
    (Distance.has_coupled_subscripts (stmt_of Loopir.Builtin.example2));
  Alcotest.(check bool) "vecadd not coupled" false
    (Distance.has_coupled_subscripts
       (stmt_of (List.assoc "vecadd" Loopir.Builtin.corpus)));
  Alcotest.(check bool) "wavefront2d not coupled" false
    (Distance.has_coupled_subscripts
       (stmt_of (List.assoc "wavefront2d" Loopir.Builtin.corpus)))

(* ------------------------------------------------------------------ *)
(* Unified statement-level space (example 3)                            *)

let test_unified_space_example3 () =
  let u, phi = Space.unified_space Loopir.Builtin.example3 in
  Alcotest.(check int) "depth 3" 3 u.Space.depth;
  Alcotest.(check int) "7 unified dims" 7 (Array.length u.Space.dims);
  Alcotest.(check int) "two disjuncts" 2 (List.length (Iset.polys phi));
  (* At n = 3: S1 instances: Σ_i Σ_{j≤i} (i-j+1) = 10; S2: Σ_i i = 6. *)
  let pts = Enum.points (Iset.bind_params phi [| 3 |]) in
  Alcotest.(check int) "16 instances at n=3" 16 (List.length pts)

let test_unified_vector () =
  let u, _ = Space.unified_space Loopir.Builtin.example3 in
  let infos = Loopir.Prog.stmts_of Loopir.Builtin.example3 in
  let s1 = List.nth infos 0 and s2 = List.nth infos 1 in
  Alcotest.(check (array int)) "S1(2,1,2)"
    [| 1; 2; 1; 1; 1; 2; 1 |]
    (Space.unified_vector_of u s1 ~iter:[| 2; 1; 2 |]);
  Alcotest.(check (array int)) "S2(2,1)"
    [| 1; 2; 1; 1; 2; 0; 0 |]
    (Space.unified_vector_of u s2 ~iter:[| 2; 1 |])

let test_unified_rd_example3 () =
  let a = Solve.analyze_unified Loopir.Builtin.example3 in
  Alcotest.(check bool) "has dependences" false (Rel.is_empty a.Solve.urd);
  (* The paper's analysis: every dependence goes from an S2 write to an S1
     read (flow) or S1 read to S2 write (anti) on array a. *)
  let dom = Rel.dom a.Solve.urd and ran = Rel.ran a.Solve.urd in
  Alcotest.(check bool) "dom nonempty" false (Iset.is_empty dom);
  Alcotest.(check bool) "ran nonempty" false (Iset.is_empty ran)

(* ------------------------------------------------------------------ *)
(* Trace-based graphs                                                   *)

let test_trace_prefix_sum () =
  let prog = List.assoc "prefix_sum" Loopir.Builtin.corpus in
  let tr = Trace.build prog ~params:[ ("n", 5) ] in
  Alcotest.(check int) "4 instances" 4 (Array.length tr.Trace.instances);
  let g = Graph.of_trace tr in
  Alcotest.(check int) "serial chain: 4 levels" 4 g.Graph.n_levels;
  Alcotest.(check (array int)) "one per level" [| 1; 1; 1; 1 |]
    g.Graph.level_sizes

let test_trace_vecadd () =
  let prog = List.assoc "vecadd" Loopir.Builtin.corpus in
  let tr = Trace.build prog ~params:[ ("n", 6) ] in
  Alcotest.(check int) "no edges" 0 (Trace.n_edges tr);
  let g = Graph.of_trace tr in
  Alcotest.(check int) "fully parallel" 1 g.Graph.n_levels

let test_trace_wavefront () =
  let prog = List.assoc "wavefront2d" Loopir.Builtin.corpus in
  let tr = Trace.build prog ~params:[ ("n", 5) ] in
  let g = Graph.of_trace tr in
  (* 4×4 wavefront: levels = 2·4 - 1 = 7 diagonals. *)
  Alcotest.(check int) "7 wavefronts" 7 g.Graph.n_levels;
  Alcotest.(check (array int)) "diagonal sizes"
    [| 1; 2; 3; 4; 3; 2; 1 |]
    g.Graph.level_sizes

let test_trace_fig2 () =
  let tr = Trace.build Loopir.Builtin.fig2 ~params:[] in
  Alcotest.(check int) "20 instances" 20 (Array.length tr.Trace.instances);
  let g = Graph.of_trace tr in
  (* Monotonic chains have length ≤ 2: P1 then P3. *)
  Alcotest.(check int) "2 levels" 2 g.Graph.n_levels;
  Alcotest.(check (array int)) "12 + 8" [| 12; 8 |] g.Graph.level_sizes

let test_trace_negative_step () =
  (* Reversed loop writing a chain: still a serial dependence chain. *)
  let prog =
    Loopir.Parser.parse ~name:"rev"
      "DO k = n, 2, -1\n  s(k - 1) = s(k) + 1.0\nENDDO"
  in
  let tr = Trace.build prog ~params:[ ("n", 6) ] in
  let g = Graph.of_trace tr in
  Alcotest.(check int) "5 instances" 5 (Array.length tr.Trace.instances);
  Alcotest.(check int) "serial" 5 g.Graph.n_levels

let test_graph_levels_direct () =
  let g = Graph.levels ~n:5 [ (0, 2); (1, 2); (2, 4); (3, 4) ] in
  Alcotest.(check int) "3 levels" 3 g.Graph.n_levels;
  (* Nodes 0, 1, 3 have no predecessors; 2 is level 2; 4 is level 3. *)
  Alcotest.(check (array int)) "sizes" [| 3; 1; 1 |] g.Graph.level_sizes;
  Alcotest.(check int) "level of 4" 3 g.Graph.level.(4);
  match Graph.levels ~n:2 [ (1, 0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "backward edge should be rejected"

(* ------------------------------------------------------------------ *)
(* Classical dependence tests                                           *)

module Dtests = Depend.Dtests

let test_gcd_test () =
  (* 2i - 2j + 1 = 0: gcd 2 does not divide 1 → independent. *)
  let eq =
    { Dtests.a = [| 2 |]; b = [| 2 |]; c = 1; lo = [| 1 |]; hi = [| 100 |] }
  in
  Alcotest.(check bool) "gcd independent" true
    (Dtests.gcd_test eq = Dtests.Independent);
  (* 2i - j = 0 is satisfiable. *)
  let eq2 =
    { Dtests.a = [| 2 |]; b = [| 1 |]; c = 0; lo = [| 1 |]; hi = [| 100 |] }
  in
  Alcotest.(check bool) "gcd maybe" true
    (Dtests.gcd_test eq2 = Dtests.Maybe_dependent)

let test_banerjee_test () =
  (* i - j + 200 = 0 with 1 ≤ i,j ≤ 100: range of i - j is [-99, 99],
     -200 outside → independent (the GCD test cannot see this). *)
  let eq =
    { Dtests.a = [| 1 |]; b = [| 1 |]; c = 200; lo = [| 1 |]; hi = [| 100 |] }
  in
  Alcotest.(check bool) "gcd is fooled" true
    (Dtests.gcd_test eq = Dtests.Maybe_dependent);
  Alcotest.(check bool) "banerjee catches it" true
    (Dtests.banerjee_test eq = Dtests.Independent);
  Alcotest.(check bool) "exact agrees" true (Dtests.exact eq = Dtests.Independent)

let test_dtests_on_example1 () =
  let a = Solve.analyze_simple Loopir.Builtin.example1 in
  match a.Solve.pair with
  | Some p ->
      let eqs =
        Dtests.equations_of_pair p
          ~params:(fun _ -> 10)
          ~lo:[| 1; 1 |] ~hi:[| 10; 10 |]
      in
      Alcotest.(check int) "two equations" 2 (List.length eqs);
      (* Example 1 has real dependences: no test may claim independence. *)
      List.iter
        (fun eq ->
          Alcotest.(check bool) "combined conservative" true
            (Dtests.combined eq = Dtests.Maybe_dependent))
        eqs
  | None -> Alcotest.fail "pair expected"

let gen_equation =
  QCheck2.Gen.(
    let coef = int_range (-4) 4 in
    let* m = int_range 1 3 in
    let* a = array_size (pure m) coef in
    let* b = array_size (pure m) coef in
    let* c = int_range (-30) 30 in
    let* hi = array_size (pure m) (int_range 1 8) in
    pure { Dtests.a; b; c; lo = Array.make m 1; hi })

let prop_dtests_conservative =
  QCheck2.Test.make ~name:"GCD/Banerjee never contradict the exact test"
    ~count:400 gen_equation (fun eq ->
      (* The exact test can exhaust Omega's emptiness budget on adversarial
         random coefficients; that is inconclusive, not a contradiction. *)
      match Dtests.exact eq with
      | exception Presburger.Omega.Blowup _ -> true
      | ex -> (
          match (Dtests.gcd_test eq, Dtests.banerjee_test eq) with
          | Dtests.Independent, _ -> ex = Dtests.Independent
          | _, Dtests.Independent -> ex = Dtests.Independent
          | Dtests.Maybe_dependent, Dtests.Maybe_dependent -> true))

let () =
  Alcotest.run "depend"
    [
      ( "example1",
        [
          Alcotest.test_case "fig.1 distances" `Quick test_example1_distances;
          Alcotest.test_case "fig.1 arrow count" `Quick test_example1_pair_count;
          Alcotest.test_case "classification" `Quick test_example1_classify;
          Alcotest.test_case "A/B matrices" `Quick test_example1_pair_matrices;
        ] );
      ( "fig2",
        [
          Alcotest.test_case "dom/ran" `Quick test_fig2_sets;
          Alcotest.test_case "pair" `Quick test_fig2_pair;
          Alcotest.test_case "parametric offsets" `Quick test_fig2_param_pair;
        ] );
      ( "example2",
        [
          Alcotest.test_case "A/B matrices" `Quick test_example2_pair;
          Alcotest.test_case "non-uniform" `Quick test_example2_nonuniform;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "classification" `Quick test_corpus_classes;
          Alcotest.test_case "coupled detection" `Quick test_coupled_detection;
        ] );
      ( "unified",
        [
          Alcotest.test_case "space (example 3)" `Quick
            test_unified_space_example3;
          Alcotest.test_case "vectors" `Quick test_unified_vector;
          Alcotest.test_case "statement-level Rd" `Quick
            test_unified_rd_example3;
        ] );
      ( "dtests",
        [
          Alcotest.test_case "GCD test" `Quick test_gcd_test;
          Alcotest.test_case "Banerjee test" `Quick test_banerjee_test;
          Alcotest.test_case "example 1 equations" `Quick
            test_dtests_on_example1;
          QCheck_alcotest.to_alcotest prop_dtests_conservative;
        ] );
      ( "trace",
        [
          Alcotest.test_case "prefix sum chain" `Quick test_trace_prefix_sum;
          Alcotest.test_case "vecadd parallel" `Quick test_trace_vecadd;
          Alcotest.test_case "wavefront diagonals" `Quick test_trace_wavefront;
          Alcotest.test_case "fig2 two levels" `Quick test_trace_fig2;
          Alcotest.test_case "negative step" `Quick test_trace_negative_step;
          Alcotest.test_case "direct DAG" `Quick test_graph_levels_direct;
        ] );
    ]
