(* Tests for the pipeline layer: strategy classification, typed plans,
   result-based error threading, the instrumented driver, and the
   Report/Json renderers. *)

module Driver = Pipeline.Driver
module Plan = Pipeline.Plan
module Report = Pipeline.Report
module Json = Pipeline.Json

let strategy_of plan = Plan.strategy_name (Plan.strategy plan)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Classification (Algorithm 1 selection through the pipeline)          *)

let test_classify_builtins () =
  List.iter
    (fun (name, prog, expected) ->
      match Driver.classify prog with
      | Ok plan -> Alcotest.(check string) name expected (strategy_of plan)
      | Error e -> Alcotest.fail (name ^ ": " ^ Diag.to_string e))
    [
      ("example1", Loopir.Builtin.example1, "rec");
      ("fig2", Loopir.Builtin.fig2, "rec");
      ("example2", Loopir.Builtin.example2, "rec");
      ("example3", Loopir.Builtin.example3, "pdm");
      ("cholesky", Loopir.Builtin.cholesky, "pdm");
    ]

let test_forced_strategy_roundtrip () =
  (* strategy_of_string ∘ strategy_name = identity, and find returns the
     matching module. *)
  List.iter
    (fun s ->
      let name = Plan.strategy_name s in
      Alcotest.(check bool)
        ("roundtrip " ^ name) true
        (Plan.strategy_of_string name = Some s);
      let (module M : Pipeline.Strategy.S) = Pipeline.Strategy.find s in
      Alcotest.(check string) ("find " ^ name) name (Plan.strategy_name M.strategy))
    Plan.all_strategies;
  Alcotest.(check bool) "unknown name" true
    (Plan.strategy_of_string "nope" = None)

let test_forced_rec_outside_hypotheses () =
  (* Cholesky has no single full-rank coupled pair: forcing REC must fail
     with a typed error, not an exception. *)
  match Driver.classify ~strategy:Plan.Rec Loopir.Builtin.cholesky with
  | Ok _ -> Alcotest.fail "REC should not apply to cholesky"
  | Error (Diag.Unsupported _) -> ()
  | Error e -> Alcotest.fail ("unexpected error: " ^ Diag.to_string e)

(* ------------------------------------------------------------------ *)
(* Driver.run: every strategy end to end on Example 2                   *)

let run_ex2 ?strategy ?(threads = 4) () =
  let options = { Driver.default_options with threads; strategy } in
  Driver.run ~options ~name:"example2" ~params:[ ("n", 12) ]
    Loopir.Builtin.example2

let check_ok name = function
  | Report.Passed -> ()
  | Report.Failed m -> Alcotest.fail (name ^ " failed: " ^ m)
  | Report.Skipped -> Alcotest.fail (name ^ " unexpectedly skipped")

let test_run_all_strategies_ex2 () =
  List.iter
    (fun strategy ->
      let name = Plan.strategy_name strategy in
      match run_ex2 ~strategy () with
      | Error e -> Alcotest.fail (name ^ ": " ^ Driver.error_to_string e)
      | Ok { sched; report; _ } ->
          Alcotest.(check string) (name ^ " strategy") name
            report.Report.strategy;
          if strategy = Plan.Doacross then begin
            Alcotest.(check bool) "doacross has no schedule" true (sched = None);
            Alcotest.(check bool) "doacross has a makespan" true
              (report.Report.model_makespan <> None)
          end
          else begin
            check_ok (name ^ " legality") report.Report.legality;
            check_ok (name ^ " semantics") report.Report.semantics;
            Alcotest.(check bool) (name ^ " instances") true
              (report.Report.n_instances = Some 144)
          end)
    Plan.all_strategies

let test_run_report_contents () =
  match run_ex2 () with
  | Error e -> Alcotest.fail (Driver.error_to_string e)
  | Ok { report; _ } ->
      (* Per-stage timings in pipeline order. *)
      let stages = List.map fst report.Report.timings in
      Alcotest.(check (list string))
        "stage order"
        [ "classify"; "materialize"; "schedule"; "validate"; "execute" ]
        stages;
      List.iter
        (fun (name, s) ->
          Alcotest.(check bool) (name ^ " non-negative") true (s >= 0.0))
        report.Report.timings;
      (* REC partition statistics: the three sets cover all 144 points. *)
      (match report.Report.stats with
      | Some { Report.p1 = Some p1; p2 = Some p2; p3 = Some p3; _ } ->
          Alcotest.(check int) "three sets cover" 144 (p1 + p2 + p3)
      | _ -> Alcotest.fail "missing REC stats");
      (* Thread loads account for every instance. *)
      (match report.Report.thread_loads with
      | Some loads ->
          Alcotest.(check int) "loads sum" 144 (Array.fold_left ( + ) 0 loads)
      | None -> Alcotest.fail "missing thread loads");
      (* Phase profile matches the schedule shape. *)
      Alcotest.(check bool) "phase profile matches phases" true
        (report.Report.n_phases = Some (List.length report.Report.phases));
      Alcotest.(check int) "profile instances sum" 144
        (List.fold_left
           (fun acc p -> acc + p.Report.instances)
           0 report.Report.phases)

let test_run_text_and_json () =
  match run_ex2 () with
  | Error e -> Alcotest.fail (Driver.error_to_string e)
  | Ok { report; _ } ->
      let text = Report.to_text report in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            ("text mentions " ^ needle) true
            (contains ~needle text))
        [ "example2"; "strategy : rec"; "legality : ok"; "semantics: ok" ];
      let json = Json.to_string (Report.to_json report) in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            ("json mentions " ^ needle) true
            (contains ~needle json))
        [
          "\"program\":\"example2\"";
          "\"strategy\":\"rec\"";
          "\"stages\":{\"classify\":";
          "\"legality\":\"ok\"";
          "\"partition\":{";
        ]

(* ------------------------------------------------------------------ *)
(* Error threading: typed Diag errors instead of failwith strings       *)

let test_unbound_parameter () =
  match Driver.run ~name:"example2" ~params:[] Loopir.Builtin.example2 with
  | Error
      { Driver.stage = Diag.Materialize; error = Diag.Unbound_parameter p; _ }
    ->
      Alcotest.(check string) "which parameter" "n" p
  | Error e -> Alcotest.fail ("unexpected: " ^ Driver.error_to_string e)
  | Ok _ -> Alcotest.fail "missing parameter not reported"

let test_invalid_thread_count () =
  let options = { Driver.default_options with threads = 0 } in
  match Driver.run ~options ~name:"fig2" ~params:[] Loopir.Builtin.fig2 with
  | Error { Driver.error = Diag.Invalid_thread_count 0; _ } -> ()
  | Error e -> Alcotest.fail ("unexpected: " ^ Driver.error_to_string e)
  | Ok _ -> Alcotest.fail "threads=0 accepted"

let test_trace_unbound_parameter_result () =
  match Depend.Trace.build_result Loopir.Builtin.example2 ~params:[] with
  | Error (Diag.Unbound_parameter "n") -> ()
  | Error e -> Alcotest.fail ("unexpected: " ^ Diag.to_string e)
  | Ok _ -> Alcotest.fail "unbound parameter not reported"

let test_materialize_result_param_arity () =
  match Driver.classify Loopir.Builtin.example1 with
  | Ok (Plan.Rec_chains rp) -> (
      match Core.Partition.materialize rp ~params:[| 10 |] with
      | Error (Diag.Param_arity { expected = 2; got = 1 }) -> ()
      | Error e -> Alcotest.fail ("unexpected: " ^ Diag.to_string e)
      | Ok _ -> Alcotest.fail "arity mismatch not reported")
  | _ -> Alcotest.fail "example1 REC expected"

let test_error_labels_stable () =
  (* Kebab-case labels are part of the tooling interface. *)
  List.iter
    (fun (e, label) -> Alcotest.(check string) label label (Diag.label e))
    [
      (Diag.Unsupported "x", "unsupported");
      (Diag.Unbound_parameter "n", "unbound-parameter");
      (Diag.Param_arity { expected = 1; got = 2 }, "param-arity");
      (Diag.Singular_recurrence "t", "singular-recurrence");
      (Diag.Set_blowup "b", "set-blowup");
      (Diag.Invalid_thread_count 0, "invalid-thread-count");
    ];
  (* Every stage has a printable name. *)
  List.iter
    (fun s -> Alcotest.(check bool) "stage name" true (Diag.stage_name s <> ""))
    Diag.all_stages

let test_error_carries_stage_timings () =
  (* A mid-pipeline failure still reports where time went: classify
     completed, then materialize died on the unbound parameter — both
     durations are in the list, in pipeline order. *)
  match Driver.run ~name:"example2" ~params:[] Loopir.Builtin.example2 with
  | Error { Driver.stage = Diag.Materialize; timings; _ } ->
      Alcotest.(check (list string))
        "stages that ran are recorded"
        [ "classify"; "materialize" ]
        (List.map fst timings);
      List.iter
        (fun (_, s) ->
          Alcotest.(check bool) "timing non-negative" true (s >= 0.0))
        timings
  | Error e -> Alcotest.fail ("unexpected: " ^ Driver.error_to_string e)
  | Ok _ -> Alcotest.fail "missing parameter not reported"

(* ------------------------------------------------------------------ *)
(* Observability through the driver                                     *)

let test_run_with_recording_sink () =
  let sink = Obs.Sink.make () in
  let options = { Driver.default_options with sink } in
  match
    Driver.run ~options ~name:"example2" ~params:[ ("n", 12) ]
      Loopir.Builtin.example2
  with
  | Error e -> Alcotest.fail (Driver.error_to_string e)
  | Ok { report; _ } ->
      let names =
        List.map (fun (s : Obs.Sink.span) -> s.Obs.Sink.name)
          (Obs.Sink.spans sink)
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("span " ^ needle) true (List.mem needle names))
        [
          "run:example2"; "stage:classify"; "stage:materialize";
          "stage:schedule"; "stage:validate"; "stage:execute"; "seq-interp";
          "phase:P1"; "phase:P2-chains"; "phase:P3"; "task";
        ];
      (* Load-imbalance breakdown is present and sane. *)
      (match report.Report.balance with
      | None -> Alcotest.fail "balance missing"
      | Some b ->
          Alcotest.(check int) "one busy slot per thread" 4
            (Array.length b.Report.busy);
          Alcotest.(check bool) "idle fraction in [0,1]" true
            (b.Report.idle_fraction >= 0.0 && b.Report.idle_fraction <= 1.0);
          Alcotest.(check bool) "max >= mean >= min" true
            (b.Report.busy_max >= b.Report.busy_mean
            && b.Report.busy_mean >= b.Report.busy_min);
          Alcotest.(check int) "per-phase idle entries" 3
            (List.length b.Report.per_phase_idle));
      (* The metrics diff shows the layers this run exercised. *)
      (match report.Report.metrics with
      | None -> Alcotest.fail "metrics missing"
      | Some m ->
          let count name =
            Option.value ~default:0
              (List.assoc_opt name m.Obs.Metrics.counters)
          in
          Alcotest.(check int) "partition point counters cover the space" 144
            (count "partition.p1_points" + count "partition.p2_points"
           + count "partition.p3_points");
          (* Earlier runs in this process may have warmed the presburger
             memo tables, in which case the set algebra resolves via memo
             hits without reaching Omega. *)
          let memo_hits =
            List.fold_left
              (fun acc (name, v) ->
                if
                  String.starts_with ~prefix:"presburger.memo." name
                  && String.ends_with ~suffix:".hits" name
                then acc + v
                else acc)
              0 m.Obs.Metrics.counters
          in
          Alcotest.(check bool) "omega was exercised" true
            (count "omega.is_empty_calls" > 0 || memo_hits > 0));
      (* Balance and metrics render in both report formats. *)
      let text = Report.to_text report in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("text mentions " ^ needle) true
            (contains ~needle text))
        [ "domains  : busy max"; "metrics  :"; "partition.chains" ];
      let json = Json.to_string (Report.to_json report) in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("json mentions " ^ needle) true
            (contains ~needle json))
        [ "\"balance\":{"; "\"idle_fraction\":"; "\"metrics\":{" ]

let test_null_sink_reports_no_balance_gap () =
  (* With the default no-op sink the run still produces balance (it comes
     from the executor's timers, not from spans). *)
  match run_ex2 () with
  | Error e -> Alcotest.fail (Driver.error_to_string e)
  | Ok { report; _ } ->
      Alcotest.(check bool) "balance present" true
        (report.Report.balance <> None)

let test_json_parse_roundtrip () =
  match run_ex2 () with
  | Error e -> Alcotest.fail (Driver.error_to_string e)
  | Ok { report; _ } -> (
      let v = Report.to_json report in
      match Json.parse (Json.to_string_pretty v) with
      | Error m -> Alcotest.fail ("report JSON does not parse: " ^ m)
      | Ok v' ->
          Alcotest.(check bool) "program survives" true
            (Json.member "program" v' = Some (Json.Str "example2"));
          (match Json.member "stages" v' with
          | Some (Json.Obj stages) ->
              Alcotest.(check (list string))
                "stage keys survive"
                [ "classify"; "materialize"; "schedule"; "validate"; "execute" ]
                (List.map fst stages)
          | _ -> Alcotest.fail "stages missing after round-trip");
          Alcotest.(check bool) "balance survives" true
            (Json.member "balance" v' <> None))

let test_balance_degenerate_clamps () =
  (* Zero, negative, or non-finite phase walls must clamp idle fractions
     to [0, 1] — never nan/inf in the report. *)
  Alcotest.(check bool) "empty input has no balance" true
    (Report.balance_of_phases ~threads:4 [] = None);
  let check_clamped label phases =
    match Report.balance_of_phases ~threads:4 phases with
    | None -> Alcotest.failf "%s: expected Some balance" label
    | Some b ->
        let ok x = Float.is_finite x && x >= 0.0 && x <= 1.0 in
        Alcotest.(check bool) (label ^ ": idle_fraction in [0,1]") true
          (ok b.Report.idle_fraction);
        List.iter
          (fun (phase, idle) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s idle in [0,1]" label phase)
              true (ok idle))
          b.Report.per_phase_idle
  in
  check_clamped "zero wall" [ ("P1", [| 0.0; 0.0 |], 0.0) ];
  check_clamped "nan wall" [ ("P1", [| 1.0 |], Float.nan) ];
  check_clamped "inf wall" [ ("P1", [| 1.0 |], Float.infinity) ];
  check_clamped "negative wall" [ ("P1", [| 1.0 |], -1.0) ];
  check_clamped "empty busy" [ ("P1", [||], 1.0) ];
  check_clamped "mixed"
    [
      ("P1", [| 0.5; 0.5 |], 1.0);
      ("P2", [| 0.0 |], 0.0);
      ("P3", [| 1.0 |], Float.nan);
    ];
  (* A degenerate-only run reports 0 idle, not nan. *)
  match Report.balance_of_phases ~threads:4 [ ("P1", [| 0.0 |], 0.0) ] with
  | Some b ->
      Alcotest.(check (float 0.0)) "degenerate-only idle is 0.0" 0.0
        b.Report.idle_fraction
  | None -> Alcotest.fail "expected Some balance"

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ];
  List.iter
    (fun (s, expect) ->
      match Json.parse s with
      | Ok v -> Alcotest.(check bool) s true (v = expect)
      | Error m -> Alcotest.failf "%S: %s" s m)
    [
      ("-0.5e2", Json.Float (-50.0));
      ("\"a\\u00e9b\"", Json.Str "a\xc3\xa9b");
      ("[1, [2, {\"x\": null}]]",
       Json.List
         [ Json.Int 1; Json.List [ Json.Int 2; Json.Obj [ ("x", Json.Null) ] ] ]);
    ]

(* ------------------------------------------------------------------ *)
(* GC telemetry in the report                                           *)

let test_gc_telemetry_roundtrip () =
  match run_ex2 () with
  | Error e -> Alcotest.fail (Driver.error_to_string e)
  | Ok { report; _ } -> (
      Alcotest.(check bool) "per-stage GC deltas recorded" true
        (report.Report.gc <> []);
      Alcotest.(check (list string))
        "gc stages in pipeline order"
        [ "classify"; "materialize"; "schedule"; "validate"; "execute" ]
        (List.map fst report.Report.gc);
      List.iter
        (fun (stage, g) ->
          Alcotest.(check bool) (stage ^ " alloc non-negative") true
            (Obs.Gcstats.allocated_words g >= 0.0))
        report.Report.gc;
      (* the execute stage allocates (result arrays, domain spawns) *)
      (match List.assoc_opt "execute" report.Report.gc with
      | Some g ->
          Alcotest.(check bool) "execute allocates" true
            (Obs.Gcstats.allocated_words g > 0.0)
      | None -> Alcotest.fail "execute missing from gc");
      (* round-trip through the JSON renderer and parser *)
      match Json.parse (Json.to_string_pretty (Report.to_json report)) with
      | Error m -> Alcotest.fail ("report JSON does not parse: " ^ m)
      | Ok v -> (
          match Json.member "gc" v with
          | Some (Json.Obj stages) ->
              Alcotest.(check bool) "gc stages survive" true (stages <> []);
              List.iter
                (fun (stage, g) ->
                  match Json.member "allocated_words" g with
                  | Some (Json.Float f) ->
                      Alcotest.(check bool)
                        (stage ^ " allocated_words non-negative") true
                        (f >= 0.0)
                  | Some (Json.Int n) ->
                      Alcotest.(check bool)
                        (stage ^ " allocated_words non-negative") true (n >= 0)
                  | _ -> Alcotest.failf "%s lacks allocated_words" stage)
                stages;
              (* per-phase allocation is also reported *)
              (match Json.member "phase_profile" v with
              | Some (Json.List (p :: _)) ->
                  Alcotest.(check bool) "phase alloc_words survive" true
                    (Json.member "alloc_words" p <> None)
              | _ -> Alcotest.fail "phase_profile missing")
          | _ -> Alcotest.fail "gc object missing after round-trip"))

(* ------------------------------------------------------------------ *)
(* Decision provenance events                                           *)

module Event = Obs.Event

let find_event ~name evs =
  List.find_opt (fun (e : Event.event) -> e.Event.name = name) evs

let why_of (e : Event.event) =
  match List.assoc_opt "why" e.Event.fields with
  | Some (Event.Str s) -> s
  | _ -> ""

let test_explain_example1_cites_lemma1 () =
  (* The acceptance criterion behind [recpart explain]: classifying
     Example 1 names the REC branch and cites the Lemma 1 preconditions
     (single coupled pair, full-rank A and B). *)
  let log = Event.make () in
  (match
     Event.with_ambient log (fun () -> Driver.classify Loopir.Builtin.example1)
   with
  | Ok plan -> Alcotest.(check string) "rec chosen" "rec" (strategy_of plan)
  | Error e -> Alcotest.fail (Diag.to_string e));
  let evs = Event.events log in
  (match find_event ~name:"choose.rec" evs with
  | Some e ->
      Alcotest.(check string) "partition scope" "partition" e.Event.scope;
      let why = why_of e in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("why cites " ^ needle) true
            (contains ~needle why))
        [ "Lemma 1"; "single coupled reference pair"; "full-rank" ]
  | None -> Alcotest.fail "no choose.rec event");
  (* Algorithm 1 announces its selection with the evidence *)
  (match find_event ~name:"auto.selected" evs with
  | Some e ->
      Alcotest.(check bool) "selected strategy named" true
        (List.assoc_opt "strategy" e.Event.fields = Some (Event.Str "rec"))
  | None -> Alcotest.fail "no auto.selected event");
  (* forcing the strategy goes through the strategy layer's own check,
     which logs its acceptance too *)
  let forced = Event.make () in
  (match
     Event.with_ambient forced (fun () ->
         Driver.classify ~strategy:Plan.Rec Loopir.Builtin.example1)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Diag.to_string e));
  match find_event ~name:"rec.accept" (Event.events forced) with
  | Some e ->
      Alcotest.(check string) "strategy scope" "strategy" e.Event.scope;
      Alcotest.(check bool) "acceptance cites Lemma 1" true
        (contains ~needle:"Lemma 1" (why_of e))
  | None -> Alcotest.fail "no rec.accept event"

let test_rejection_provenance_example3 () =
  (* Example 3 has no full-rank coupled pair: the log must say why REC
     was rejected before the PDM fallback. *)
  let log = Event.make () in
  (match
     Event.with_ambient log (fun () -> Driver.classify Loopir.Builtin.example3)
   with
  | Ok plan -> Alcotest.(check string) "pdm chosen" "pdm" (strategy_of plan)
  | Error e -> Alcotest.fail (Diag.to_string e));
  let evs = Event.events log in
  (match find_event ~name:"choose.reject_rec" evs with
  | Some e ->
      Alcotest.(check string) "partition scope" "partition" e.Event.scope;
      Alcotest.(check bool) "reject carries a reason" true (why_of e <> "")
  | None -> Alcotest.fail "no choose.reject_rec event");
  (match find_event ~name:"choose.pdm" evs with
  | Some e ->
      Alcotest.(check bool) "fallback carries a reason" true (why_of e <> "")
  | None -> Alcotest.fail "no choose.pdm event");
  match find_event ~name:"auto.selected" evs with
  | Some e ->
      Alcotest.(check bool) "fallback strategy named" true
        (List.assoc_opt "strategy" e.Event.fields = Some (Event.Str "pdm"))
  | None -> Alcotest.fail "no auto.selected event"

let test_driver_threads_events_option () =
  (* Driver.run installs options.events as the ambient log, so the inner
     layers' provenance (dependence tests, partition cardinalities) shows
     up without any explicit plumbing. *)
  let log = Event.make () in
  let options = { Driver.default_options with events = log } in
  (match
     Driver.run ~options ~name:"example2" ~params:[ ("n", 12) ]
       Loopir.Builtin.example2
   with
  | Error e -> Alcotest.fail (Driver.error_to_string e)
  | Ok _ -> ());
  let evs = Event.events log in
  let scopes =
    List.sort_uniq compare (List.map (fun (e : Event.event) -> e.Event.scope) evs)
  in
  List.iter
    (fun scope ->
      Alcotest.(check bool) ("scope " ^ scope ^ " present") true
        (List.mem scope scopes))
    [ "depend"; "partition"; "strategy" ];
  match find_event ~name:"cardinality" evs with
  | Some e ->
      let get k =
        match List.assoc_opt k e.Event.fields with
        | Some (Event.Int n) -> n
        | _ -> Alcotest.failf "cardinality lacks %s" k
      in
      Alcotest.(check int) "three sets cover the space" 144
        (get "p1" + get "p2" + get "p3")
  | None -> Alcotest.fail "no cardinality event"

(* ------------------------------------------------------------------ *)
(* The benchmark regression gate                                        *)

module Gate = Pipeline.Gate

(* A synthetic bench document: one program, one run at 4 threads. *)
let bench_doc ?(wrap = true) ~execute_s ~classify_s ~counter () =
  let entry =
    Json.Obj
      [
        ("program", Json.Str "example2");
        ( "runs",
          Json.List
            [
              Json.Obj
                [
                  ("threads", Json.Int 4);
                  ( "stages",
                    Json.Obj
                      [
                        ("execute", Json.Float execute_s);
                        ("classify", Json.Float classify_s);
                      ] );
                  ( "metrics",
                    Json.Obj
                      [ ("counters", Json.Obj [ ("omega.calls", Json.Int counter) ]) ]
                  );
                ];
            ] );
      ]
  in
  if wrap then
    Json.Obj
      [ ("schema_version", Json.Int 1); ("entries", Json.List [ entry ]) ]
  else Json.List [ entry ]

let test_gate_flags_slowed_stage () =
  (* The acceptance criterion: an artificially slowed stage (well above
     the noise floor) must be flagged and would make bench exit 1. *)
  let baseline = bench_doc ~execute_s:0.2 ~classify_s:0.001 ~counter:1000 () in
  let current = bench_doc ~execute_s:0.5 ~classify_s:0.001 ~counter:1000 () in
  match Gate.check ~threshold_pct:25.0 ~baseline ~current () with
  | Error m -> Alcotest.fail m
  | Ok o -> (
      Alcotest.(check int) "all pairs compared" 3 o.Gate.compared;
      match o.Gate.regressions with
      | [ r ] ->
          Alcotest.(check string) "stage named" "stage:execute" r.Gate.what;
          Alcotest.(check string) "program named" "example2" r.Gate.program;
          Alcotest.(check int) "threads named" 4 r.Gate.threads;
          Alcotest.(check bool) "ratio = 2.5" true
            (abs_float (r.Gate.ratio -. 2.5) < 1e-9);
          let text = Gate.to_text ~threshold_pct:25.0 o in
          Alcotest.(check bool) "FAIL in text" true
            (contains ~needle:"FAIL" text);
          Alcotest.(check bool) "stage in text" true
            (contains ~needle:"stage:execute" text)
      | rs -> Alcotest.failf "expected 1 regression, got %d" (List.length rs))

let test_gate_passes_identity_and_noise () =
  (* Identical documents pass; so does a big ratio on a stage below the
     noise floor in both documents (ms-scale timings are noise). *)
  let baseline = bench_doc ~execute_s:0.2 ~classify_s:0.001 ~counter:1000 () in
  (match Gate.check ~threshold_pct:25.0 ~baseline ~current:baseline () with
  | Ok { Gate.regressions = []; compared = 3 } -> ()
  | Ok o -> Alcotest.failf "identity flagged %d" (List.length o.Gate.regressions)
  | Error m -> Alcotest.fail m);
  let noisy = bench_doc ~execute_s:0.2 ~classify_s:0.004 ~counter:1000 () in
  (match Gate.check ~threshold_pct:25.0 ~baseline ~current:noisy () with
  | Ok { Gate.regressions = []; _ } -> ()
  | Ok _ -> Alcotest.fail "sub-floor stage flagged"
  | Error m -> Alcotest.fail m);
  (* counters are deterministic: a 2x counter growth IS flagged *)
  let busier = bench_doc ~execute_s:0.2 ~classify_s:0.001 ~counter:2000 () in
  match Gate.check ~threshold_pct:25.0 ~baseline ~current:busier () with
  | Ok { Gate.regressions = [ r ]; _ } ->
      Alcotest.(check string) "counter named" "counter:omega.calls" r.Gate.what
  | Ok o -> Alcotest.failf "expected 1 regression, got %d"
              (List.length o.Gate.regressions)
  | Error m -> Alcotest.fail m

let test_gate_schema_tolerance () =
  (* Legacy bare-list baselines still work; bad documents are typed
     errors, and unknown (program, threads) keys are skipped. *)
  let wrapped = bench_doc ~execute_s:0.2 ~classify_s:0.001 ~counter:1000 () in
  let legacy =
    bench_doc ~wrap:false ~execute_s:0.2 ~classify_s:0.001 ~counter:1000 ()
  in
  (match Gate.check ~threshold_pct:25.0 ~baseline:legacy ~current:wrapped () with
  | Ok { Gate.regressions = []; compared = 3 } -> ()
  | Ok _ -> Alcotest.fail "legacy baseline mis-compared"
  | Error m -> Alcotest.fail m);
  (match Gate.entries (Json.Obj [ ("schema_version", Json.Int 99) ]) with
  | Error m ->
      Alcotest.(check bool) "version in message" true
        (contains ~needle:"schema_version" m)
  | Ok _ -> Alcotest.fail "future schema accepted");
  (match Gate.entries (Json.Str "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-document accepted");
  (* a baseline for a different program: nothing compared, nothing flagged *)
  let other =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ( "entries",
          Json.List
            [
              Json.Obj
                [ ("program", Json.Str "other"); ("runs", Json.List []) ];
            ] );
      ]
  in
  match Gate.check ~threshold_pct:25.0 ~baseline:other ~current:wrapped () with
  | Ok { Gate.regressions = []; compared = 0 } -> ()
  | Ok _ -> Alcotest.fail "disjoint programs compared"
  | Error m -> Alcotest.fail m

let test_gate_on_committed_baseline () =
  (* The committed BENCH_pipeline.json must stay parseable by the gate —
     CI diffs fresh runs against it. *)
  (* from the dune sandbox the repo root is a few levels up *)
  let path =
    List.find_opt Sys.file_exists
      [
        "BENCH_pipeline.json"; "../BENCH_pipeline.json";
        "../../BENCH_pipeline.json"; "../../../BENCH_pipeline.json";
      ]
  in
  match path with
  | None -> () (* baseline not visible from the sandbox: nothing to check *)
  | Some path -> begin
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json.parse s with
    | Error m -> Alcotest.fail ("baseline does not parse: " ^ m)
    | Ok doc -> (
        (match Json.member "schema_version" doc with
        | Some (Json.Int (1 | 2)) -> ()
        | _ -> Alcotest.fail "baseline lacks a supported schema_version");
        match Gate.check ~threshold_pct:25.0 ~baseline:doc ~current:doc () with
        | Ok { Gate.regressions = []; compared } ->
            Alcotest.(check bool) "baseline self-comparison is non-trivial"
              true (compared > 0)
        | Ok o ->
            Alcotest.failf "self-comparison flagged %d"
              (List.length o.Gate.regressions)
        | Error m -> Alcotest.fail m)
  end

(* ------------------------------------------------------------------ *)
(* Engine equivalence through the driver                                *)

let test_engines_agree () =
  let run engine =
    let options = { Driver.default_options with engine; measure = false } in
    match
      Driver.run ~options ~name:"example2" ~params:[ ("n", 10) ]
        Loopir.Builtin.example2
    with
    | Ok { concrete = Driver.Rec { c; _ }; _ } -> c
    | Ok _ -> Alcotest.fail "REC expected"
    | Error e -> Alcotest.fail (Driver.error_to_string e)
  in
  let a = run `Enum and b = run `Scan in
  Alcotest.(check bool) "same P1" true
    (a.Core.Partition.p1_pts = b.Core.Partition.p1_pts);
  Alcotest.(check bool) "same chains" true
    (List.sort compare (Core.Chain.to_lists a.Core.Partition.chains)
    = List.sort compare (Core.Chain.to_lists b.Core.Partition.chains))

(* ------------------------------------------------------------------ *)
(* Codegen through the pipeline                                         *)

let test_codegen_rec_and_unsupported () =
  (match Driver.classify Loopir.Builtin.example1 with
  | Ok plan -> (
      match Driver.codegen plan ~prog:Loopir.Builtin.example1 with
      | Ok listing ->
          Alcotest.(check bool) "REC listing non-empty" true
            (String.length listing > 0)
      | Error e -> Alcotest.fail (Diag.to_string e))
  | Error e -> Alcotest.fail (Diag.to_string e));
  match Driver.classify ~strategy:Plan.Doacross Loopir.Builtin.example2 with
  | Ok plan -> (
      match Driver.codegen plan ~prog:Loopir.Builtin.example2 with
      | Error (Diag.Unsupported _) -> ()
      | Error e -> Alcotest.fail ("unexpected: " ^ Diag.to_string e)
      | Ok _ -> Alcotest.fail "doacross has no listing")
  | Error e -> Alcotest.fail (Diag.to_string e)

(* ------------------------------------------------------------------ *)
(* Json renderer                                                        *)

let test_json_rendering () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\n");
        ("n", Json.Int (-3));
        ("f", Json.Float 0.5);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Int 2 ]);
      ]
  in
  Alcotest.(check string)
    "compact"
    "{\"s\":\"a\\\"b\\n\",\"n\":-3,\"f\":0.5,\"b\":true,\"z\":null,\"l\":[1,2]}"
    (Json.to_string v);
  (* Non-finite floats degrade to null rather than emitting invalid JSON. *)
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float nan));
  (* Pretty output keeps the same keys. *)
  let pretty = Json.to_string_pretty v in
  Alcotest.(check bool) "pretty contains key" true
    (contains ~needle:"\"n\": -3" pretty)

let () =
  Alcotest.run "pipeline"
    [
      ( "classify",
        [
          Alcotest.test_case "Algorithm 1 on the builtins" `Quick
            test_classify_builtins;
          Alcotest.test_case "strategy name roundtrip" `Quick
            test_forced_strategy_roundtrip;
          Alcotest.test_case "forced REC outside hypotheses" `Quick
            test_forced_rec_outside_hypotheses;
        ] );
      ( "run",
        [
          Alcotest.test_case "all strategies on example2" `Quick
            test_run_all_strategies_ex2;
          Alcotest.test_case "report contents" `Quick test_run_report_contents;
          Alcotest.test_case "text and JSON rendering" `Quick
            test_run_text_and_json;
          Alcotest.test_case "enum ≡ scan engines" `Quick test_engines_agree;
          Alcotest.test_case "codegen availability" `Quick
            test_codegen_rec_and_unsupported;
        ] );
      ( "errors",
        [
          Alcotest.test_case "unbound parameter" `Quick test_unbound_parameter;
          Alcotest.test_case "invalid thread count" `Quick
            test_invalid_thread_count;
          Alcotest.test_case "trace build_result" `Quick
            test_trace_unbound_parameter_result;
          Alcotest.test_case "materialize arity" `Quick
            test_materialize_result_param_arity;
          Alcotest.test_case "stable error labels" `Quick
            test_error_labels_stable;
          Alcotest.test_case "errors carry stage timings" `Quick
            test_error_carries_stage_timings;
        ] );
      ( "obs",
        [
          Alcotest.test_case "recording sink through the driver" `Quick
            test_run_with_recording_sink;
          Alcotest.test_case "balance without a sink" `Quick
            test_null_sink_reports_no_balance_gap;
          Alcotest.test_case "GC telemetry round-trips through JSON" `Quick
            test_gc_telemetry_roundtrip;
          Alcotest.test_case "balance clamps degenerate walls" `Quick
            test_balance_degenerate_clamps;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "example1 cites Lemma 1" `Quick
            test_explain_example1_cites_lemma1;
          Alcotest.test_case "example3 rejection reasons" `Quick
            test_rejection_provenance_example3;
          Alcotest.test_case "driver threads the event log" `Quick
            test_driver_threads_events_option;
        ] );
      ( "gate",
        [
          Alcotest.test_case "flags an artificially slowed stage" `Quick
            test_gate_flags_slowed_stage;
          Alcotest.test_case "identity and noise pass" `Quick
            test_gate_passes_identity_and_noise;
          Alcotest.test_case "schema tolerance" `Quick
            test_gate_schema_tolerance;
          Alcotest.test_case "committed baseline self-check" `Quick
            test_gate_on_committed_baseline;
        ] );
      ( "json",
        [
          Alcotest.test_case "rendering" `Quick test_json_rendering;
          Alcotest.test_case "parse round-trip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
    ]
