(* Tests for the execution substrate: dense array store, interpreter,
   schedules (legality + semantics), cost simulator, domain executor. *)

module Sched = Runtime.Sched
module Interp = Runtime.Interp
module Arrays = Runtime.Arrays
module Sim = Runtime.Sim
module Exec = Runtime.Exec
module Trace = Depend.Trace
module Partition = Core.Partition
module Dataflow = Core.Dataflow

(* ------------------------------------------------------------------ *)
(* Arrays                                                               *)

let test_arrays_basic () =
  let s = Arrays.create () in
  Arrays.note_bounds s "a" [ -3; 2 ];
  Arrays.note_bounds s "a" [ 5; 7 ];
  Arrays.freeze s;
  Alcotest.(check (float 0.0))
    "initial value deterministic"
    (Arrays.initial_value "a" [ 0; 3 ])
    (Arrays.get s "a" [ 0; 3 ]);
  Arrays.set s "a" [ -3; 7 ] 42.0;
  Alcotest.(check (float 0.0)) "set/get" 42.0 (Arrays.get s "a" [ -3; 7 ]);
  (* out-of-extent read falls back to the deterministic initial value *)
  Alcotest.(check (float 0.0))
    "out-of-extent read"
    (Arrays.initial_value "a" [ 100; 100 ])
    (Arrays.get s "a" [ 100; 100 ])

let test_arrays_equal () =
  let mk () =
    let s = Arrays.create () in
    Arrays.note_bounds s "x" [ 0 ];
    Arrays.note_bounds s "x" [ 4 ];
    Arrays.freeze s;
    s
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "fresh equal" true (Arrays.equal a b);
  Arrays.set a "x" [ 2 ] 1.0;
  Alcotest.(check bool) "diverged" false (Arrays.equal a b)

(* ------------------------------------------------------------------ *)
(* Interpreter                                                          *)

let test_interp_prefix_sum () =
  let prog = List.assoc "prefix_sum" Loopir.Builtin.corpus in
  let env = Interp.prepare prog ~params:[ ("n", 5) ] in
  let store = Interp.run_sequential env in
  (* s(i) = s(i-1) + a(i): check the recurrence holds on the result. *)
  let s i = Arrays.get store "s" [ i ] in
  let a i = Arrays.get store "a" [ i ] in
  let expected = ref (Arrays.initial_value "s" [ 1 ]) in
  for i = 2 to 5 do
    expected := !expected +. a i;
    Alcotest.(check (float 1e-9)) (Printf.sprintf "s(%d)" i) !expected (s i)
  done

let test_interp_schedule_equivalence_fig2 () =
  let env = Interp.prepare Loopir.Builtin.fig2 ~params:[] in
  let tr = Trace.build Loopir.Builtin.fig2 ~params:[] in
  let sched = Sched.sequential_of_trace tr in
  match Interp.check_schedule env sched with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let rec_schedule prog params_assoc params_arr =
  match Partition.choose prog with
  | Partition.Rec_chains rp ->
      let c = Partition.materialize_rec rp ~params:params_arr in
      (Interp.prepare prog ~params:params_assoc, Sched.of_rec ~stmt:0 c)
  | _ -> Alcotest.fail "REC plan expected"

let test_rec_schedule_semantics_ex1 () =
  let env, sched =
    rec_schedule Loopir.Builtin.example1
      [ ("n1", 10); ("n2", 10) ]
      [| 10; 10 |]
  in
  (match Interp.check_schedule env sched with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("interp: " ^ m));
  let tr =
    Trace.build Loopir.Builtin.example1 ~params:[ ("n1", 10); ("n2", 10) ]
  in
  match Sched.check_legal sched tr with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("legality: " ^ m)

let test_rec_schedule_semantics_ex2 () =
  let env, sched =
    rec_schedule Loopir.Builtin.example2 [ ("n", 12) ] [| 12 |]
  in
  (match Interp.check_schedule env sched with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("interp: " ^ m));
  let tr = Trace.build Loopir.Builtin.example2 ~params:[ ("n", 12) ] in
  match Sched.check_legal sched tr with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("legality: " ^ m)

let test_fronts_schedule_cholesky () =
  let params = [ ("nmat", 2); ("m", 2); ("n", 5); ("nrhs", 1) ] in
  let c = Dataflow.peel_concrete Loopir.Builtin.cholesky ~params in
  let sched = Sched.of_fronts c in
  let env = Interp.prepare Loopir.Builtin.cholesky ~params in
  (match Interp.check_schedule env sched with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("interp: " ^ m));
  let tr = Trace.build Loopir.Builtin.cholesky ~params in
  match Sched.check_legal sched tr with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("legality: " ^ m)

let test_illegal_schedule_detected () =
  (* Reverse the sequential order of a serial chain: must be caught both by
     the legality checker and by the interpreter. *)
  let prog = List.assoc "prefix_sum" Loopir.Builtin.corpus in
  let tr = Trace.build prog ~params:[ ("n", 6) ] in
  let rev_task =
    Array.of_list
      (List.rev
         (Array.to_list
            (Array.map
               (fun (i : Trace.instance) ->
                 { Sched.stmt = i.Trace.stmt; iter = i.Trace.iter })
               tr.Trace.instances)))
  in
  let bad = Sched.of_phases [ Sched.Tasks { label = "bad"; tasks = [| rev_task |] } ] in
  (match Sched.check_legal bad tr with
  | Ok () -> Alcotest.fail "legality checker missed reversal"
  | Error _ -> ());
  let env = Interp.prepare prog ~params:[ ("n", 6) ] in
  match Interp.check_schedule env bad with
  | Ok () -> Alcotest.fail "interpreter missed reversal"
  | Error _ -> ()

let test_duplicate_instance_detected () =
  let prog = List.assoc "vecadd" Loopir.Builtin.corpus in
  let tr = Trace.build prog ~params:[ ("n", 3) ] in
  let inst k = { Sched.stmt = 0; iter = [| k |] } in
  let bad =
    Sched.of_phases
      [ Sched.Doall { label = "dup"; instances = [| inst 1; inst 2; inst 3; inst 2 |] } ]
  in
  match Sched.check_legal bad tr with
  | Ok () -> Alcotest.fail "duplicate not detected"
  | Error _ -> ()

let test_duplicate_across_tasks_detected () =
  (* The same instance appearing in two tasks of one phase must be caught
     even though each task alone is fine. *)
  let prog = List.assoc "vecadd" Loopir.Builtin.corpus in
  let tr = Trace.build prog ~params:[ ("n", 3) ] in
  let inst k = { Sched.stmt = 0; iter = [| k |] } in
  let bad =
    Sched.of_phases
      [
        Sched.Tasks
          { label = "dup"; tasks = [| [| inst 1; inst 2 |]; [| inst 2; inst 3 |] |] };
      ]
  in
  match Sched.check_legal bad tr with
  | Ok () -> Alcotest.fail "cross-task duplicate not detected"
  | Error _ -> ()

let test_edge_violation_same_doall_detected () =
  (* Putting a dependent pair in the same DOALL phase breaks the edge even
     though every instance appears exactly once and in source order. *)
  let prog = List.assoc "prefix_sum" Loopir.Builtin.corpus in
  let tr = Trace.build prog ~params:[ ("n", 4) ] in
  let all =
    Array.map
      (fun (i : Trace.instance) ->
        { Sched.stmt = i.Trace.stmt; iter = i.Trace.iter })
      tr.Trace.instances
  in
  let bad = Sched.of_phases [ Sched.Doall { label = "flat"; instances = all } ] in
  match Sched.check_legal bad tr with
  | Ok () -> Alcotest.fail "same-phase dependence edge not detected"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Simulator                                                            *)

let test_lpt_makespan () =
  Alcotest.(check (float 1e-9)) "balanced" 6.0
    (Sim.lpt_makespan 2 [| 4.0; 3.0; 3.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "one proc" 12.0
    (Sim.lpt_makespan 1 [| 4.0; 3.0; 3.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "dominant task" 9.0
    (Sim.lpt_makespan 4 [| 9.0; 1.0; 1.0; 1.0 |])

let test_sim_speedup_monotone () =
  let env, sched =
    rec_schedule Loopir.Builtin.example1
      [ ("n1", 30); ("n2", 40) ]
      [| 30; 40 |]
  in
  ignore env;
  let cost = Sim.base in
  let s p = Sim.speedup cost ~threads:p ~n_seq:(30 * 40) sched in
  Alcotest.(check bool) "2 ≥ 1" true (s 2 >= s 1);
  Alcotest.(check bool) "4 ≥ 2" true (s 4 >= s 2);
  Alcotest.(check bool) "speedup positive" true (s 1 > 0.0)

let test_sim_code_factor () =
  let env, sched =
    rec_schedule Loopir.Builtin.example1
      [ ("n1", 30); ("n2", 40) ]
      [| 30; 40 |]
  in
  ignore env;
  let fast = Sim.with_factor 0.8 and slow = Sim.with_factor 1.2 in
  Alcotest.(check bool) "cheaper code is faster" true
    (Sim.time fast ~threads:2 sched < Sim.time slow ~threads:2 sched)

let test_pipeline_time () =
  let c = { Sim.base with Sim.fork = 0.0; barrier = 0.0 } in
  (* 4 stages, no delay, 4 threads: all parallel → one stage time. *)
  Alcotest.(check (float 1e-9)) "no delay" 10.0
    (Sim.pipeline_time c ~threads:4 ~stages:4 ~stage_work:10.0 ~delay:0.0);
  (* delay ≥ stage_work on one thread: serialized by delay. *)
  let t = Sim.pipeline_time c ~threads:4 ~stages:4 ~stage_work:1.0 ~delay:5.0 in
  Alcotest.(check (float 1e-9)) "delay bound" 16.0 t

(* ------------------------------------------------------------------ *)
(* Domain executor                                                      *)

let test_exec_parallel_matches_sequential () =
  let env, sched =
    rec_schedule Loopir.Builtin.example1
      [ ("n1", 12); ("n2", 12) ]
      [| 12; 12 |]
  in
  List.iter
    (fun threads ->
      match Exec.check env ~threads sched with
      | Ok () -> ()
      | Error m ->
          Alcotest.fail (Printf.sprintf "threads=%d: %s" threads m))
    [ 1; 2; 4 ]

let test_exec_fronts_parallel () =
  let params = [ ("nmat", 2); ("m", 2); ("n", 4); ("nrhs", 1) ] in
  let c = Dataflow.peel_concrete Loopir.Builtin.cholesky ~params in
  let sched = Sched.of_fronts c in
  let env = Interp.prepare Loopir.Builtin.cholesky ~params in
  match Exec.check env ~threads:4 sched with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_exec_determinism_paper_examples () =
  (* Every paper example, every thread count: the domain executor must land
     on exactly the sequential store (same float results, no races). *)
  let cases =
    [
      ("example1", Loopir.Builtin.example1, [ ("n1", 10); ("n2", 10) ]);
      ("fig2", Loopir.Builtin.fig2, []);
      ("example2", Loopir.Builtin.example2, [ ("n", 12) ]);
      ( "cholesky",
        Loopir.Builtin.cholesky,
        [ ("nmat", 2); ("m", 2); ("n", 5); ("nrhs", 1) ] );
    ]
  in
  List.iter
    (fun (name, prog, params) ->
      let sched =
        match Partition.choose prog with
        | Partition.Rec_chains rp ->
            let arr = Array.of_list (List.map snd params) in
            Sched.of_rec ~stmt:0 (Partition.materialize_rec_scan rp ~params:arr)
        | Partition.Dataflow_const | Partition.Pdm_fallback _ ->
            Sched.of_fronts (Dataflow.peel_concrete prog ~params)
      in
      let env = Interp.prepare prog ~params in
      List.iter
        (fun threads ->
          match Exec.check env ~threads sched with
          | Ok () -> ()
          | Error m ->
              Alcotest.fail
                (Printf.sprintf "%s at %d thread(s): %s" name threads m))
        [ 1; 2; 4; 8 ])
    cases

let test_compiled_matches_interp_examples () =
  (* Both engines must leave bit-for-bit identical stores (and both equal
     the sequential oracle) on every paper example, at 1/2/4 domains. *)
  let cases =
    [
      ("example1", Loopir.Builtin.example1, [ ("n1", 10); ("n2", 10) ]);
      ("fig2", Loopir.Builtin.fig2, []);
      ("example2", Loopir.Builtin.example2, [ ("n", 12) ]);
      ( "cholesky",
        Loopir.Builtin.cholesky,
        [ ("nmat", 2); ("m", 2); ("n", 5); ("nrhs", 1) ] );
    ]
  in
  List.iter
    (fun (name, prog, params) ->
      let sched =
        match Partition.choose prog with
        | Partition.Rec_chains rp ->
            let arr = Array.of_list (List.map snd params) in
            Sched.of_rec ~stmt:0
              (Partition.materialize_rec_scan rp ~params:arr)
        | Partition.Dataflow_const | Partition.Pdm_fallback _ ->
            Sched.of_fronts (Dataflow.peel_concrete prog ~params)
      in
      let env = Interp.prepare prog ~params in
      let oracle = Interp.run_sequential env in
      List.iter
        (fun threads ->
          let compiled = Exec.run ~engine:`Compiled env ~threads sched in
          Alcotest.(check bool)
            (Printf.sprintf "%s compiled t=%d ≡ sequential" name threads)
            true
            (Arrays.equal compiled oracle);
          let interp = Exec.run ~engine:`Interp env ~threads sched in
          Alcotest.(check bool)
            (Printf.sprintf "%s compiled t=%d ≡ interp" name threads)
            true
            (Arrays.equal compiled interp))
        [ 1; 2; 4 ])
    cases

let test_compiled_matches_interp_corpus () =
  (* Every corpus kernel through a sequential-order schedule: exercises
     the compiler's general paths (non-affine subscripts, parameters in
     subscripts, multi-statement bodies, reductions). *)
  List.iter
    (fun (name, prog) ->
      let params =
        List.map (fun p -> (p, 8)) prog.Loopir.Ast.params
      in
      let tr = Trace.build prog ~params in
      let sched = Sched.sequential_of_trace tr in
      let env = Interp.prepare prog ~params in
      let compiled = Exec.run ~engine:`Compiled env ~threads:1 sched in
      Alcotest.(check bool)
        (name ^ ": compiled ≡ sequential interp")
        true
        (Arrays.equal compiled (Interp.run_sequential env)))
    Loopir.Builtin.corpus

(* ------------------------------------------------------------------ *)
(* Bytecode engine                                                      *)

module Bytecode = Runtime.Bytecode

let test_bytecode_matches_interp_examples () =
  (* The VM must leave bit-for-bit identical stores to both the closure
     engine and the sequential oracle on every paper example, at 1/2/4
     domains. *)
  let cases =
    [
      ("example1", Loopir.Builtin.example1, [ ("n1", 10); ("n2", 10) ]);
      ("fig2", Loopir.Builtin.fig2, []);
      ("example2", Loopir.Builtin.example2, [ ("n", 12) ]);
      ( "cholesky",
        Loopir.Builtin.cholesky,
        [ ("nmat", 2); ("m", 2); ("n", 5); ("nrhs", 1) ] );
    ]
  in
  List.iter
    (fun (name, prog, params) ->
      let sched =
        match Partition.choose prog with
        | Partition.Rec_chains rp ->
            let arr = Array.of_list (List.map snd params) in
            Sched.of_rec ~stmt:0
              (Partition.materialize_rec_scan rp ~params:arr)
        | Partition.Dataflow_const | Partition.Pdm_fallback _ ->
            Sched.of_fronts (Dataflow.peel_concrete prog ~params)
      in
      let env = Interp.prepare prog ~params in
      let oracle = Interp.run_sequential env in
      List.iter
        (fun threads ->
          let byte = Exec.run ~engine:`Bytecode env ~threads sched in
          Alcotest.(check bool)
            (Printf.sprintf "%s bytecode t=%d ≡ sequential" name threads)
            true
            (Arrays.equal byte oracle);
          let compiled = Exec.run ~engine:`Compiled env ~threads sched in
          Alcotest.(check bool)
            (Printf.sprintf "%s bytecode t=%d ≡ compiled" name threads)
            true
            (Arrays.equal byte compiled))
        [ 1; 2; 4 ])
    cases

let test_bytecode_matches_interp_corpus () =
  (* Every corpus kernel, at 1/2/4 domains: exercises the lowerer's
     general paths (reductions, powers, parameters in subscripts,
     multi-statement bodies) and the closure fallback (non-affine
     subscripts, MOD). *)
  List.iter
    (fun (name, prog) ->
      let params = List.map (fun p -> (p, 8)) prog.Loopir.Ast.params in
      let tr = Trace.build prog ~params in
      let sched = Sched.sequential_of_trace tr in
      let env = Interp.prepare prog ~params in
      let oracle = Interp.run_sequential env in
      List.iter
        (fun threads ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: bytecode t=%d ≡ sequential interp" name
               threads)
            true
            (Arrays.equal (Exec.run ~engine:`Bytecode env ~threads sched) oracle))
        [ 1; 2; 4 ])
    Loopir.Builtin.corpus

let test_bytecode_fallback_nonaffine () =
  (* A quadratic subscript cannot be fused into a linear offset: the
     statement must take the closure fallback — and still match the
     oracle exactly. *)
  let open Loopir.Ast in
  let sq = Bin (Mul, Var "i", Var "i") in
  let prog =
    program ~name:"nonaffine"
      [
        Loop
          {
            index = "i";
            lo = Int 1;
            hi = Int 6;
            step = 1;
            body =
              [ Assign (("a", [ sq ]), Bin (Add, Ref ("a", [ sq ]), Int 1)) ];
          };
      ]
  in
  let env = Interp.prepare prog ~params:[] in
  let store = Interp.scan_bounds env in
  let bc = Bytecode.compile env store in
  Alcotest.(check bool) "statement fell back" true (Bytecode.n_fallbacks bc > 0);
  let sched = Sched.sequential_of_trace (Trace.build prog ~params:[]) in
  Alcotest.(check bool)
    "fallback path ≡ sequential interp" true
    (Arrays.equal
       (Exec.run ~engine:`Bytecode env ~threads:2 sched)
       (Interp.run_sequential env))

let test_chunking_variants_agree () =
  (* Static pre-dealt buckets and cost-proportional self-scheduling must
     produce identical stores for every engine — chunking only moves
     work between domains, never reorders it within a chain. *)
  let env, sched =
    rec_schedule Loopir.Builtin.example1
      [ ("n1", 16); ("n2", 16) ]
      [| 16; 16 |]
  in
  let oracle = Interp.run_sequential env in
  List.iter
    (fun engine ->
      List.iter
        (fun chunking ->
          let got = Exec.run ~engine ~chunking env ~threads:4 sched in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s ≡ sequential"
               (Exec.engine_name engine)
               (Exec.chunking_name chunking))
            true (Arrays.equal got oracle))
        [ `Static; `Cost Sim.base_seconds ])
    [ `Compiled; `Bytecode; `Interp ]

let test_doall_chunk_count_bounds () =
  (* The chunk policy: nothing for empty phases, one chunk sequentially,
     never fewer chunks than domains (work exists), never more than
     8×domains or the instance count. *)
  let c = Sim.base_seconds in
  Alcotest.(check int) "empty phase" 0 (Sim.doall_chunk_count c ~threads:4 ~n:0);
  Alcotest.(check int) "sequential" 1
    (Sim.doall_chunk_count c ~threads:1 ~n:5000);
  Alcotest.(check int) "capped by n" 2
    (Sim.doall_chunk_count c ~threads:4 ~n:2);
  List.iter
    (fun n ->
      let k = Sim.doall_chunk_count c ~threads:4 ~n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: threads <= k <= 8*threads" n)
        true
        (k >= 4 && k <= 32 && k <= n))
    [ 10; 1000; 100_000; 10_000_000 ];
  (* Cheap iterations afford fewer chunks than expensive ones. *)
  let cheap = Sim.doall_chunk_count c ~threads:4 ~n:1000 in
  let expensive =
    Sim.doall_chunk_count
      { c with Sim.w_iter = c.Sim.w_iter *. 100.0 }
      ~threads:4 ~n:1000
  in
  Alcotest.(check bool) "cost-proportional" true (expensive >= cheap)

let test_doall_chunk_ranges () =
  (* Chunk ranges tile [0, n) exactly, in order, with no empty chunk. *)
  List.iter
    (fun (k, n) ->
      let ranges = Exec.doall_chunks ~chunks:k n in
      let expected_k = if n = 0 then 0 else min (max 1 k) n in
      Alcotest.(check int)
        (Printf.sprintf "k=%d n=%d: chunk count" k n)
        expected_k (List.length ranges);
      let pos = ref 0 in
      List.iter
        (fun (off, len) ->
          Alcotest.(check int) "contiguous" !pos off;
          Alcotest.(check bool) "non-empty" true (len > 0);
          pos := !pos + len)
        ranges;
      Alcotest.(check int) "complete" n !pos)
    [ (1, 0); (4, 0); (1, 7); (3, 7); (7, 7); (12, 7); (0, 5); (-2, 5); (8, 64) ]

(* ------------------------------------------------------------------ *)
(* Workers: the persistent executor pool                                *)

module Workers = Runtime.Workers

let test_workers_results_in_order () =
  let w = Workers.create ~domains:3 in
  let r = Workers.run w (Array.init 10 (fun i () -> i * i)) in
  Workers.shutdown w;
  Alcotest.(check (array int)) "in order" (Array.init 10 (fun i -> i * i)) r

let test_workers_reuse_no_respawn () =
  let w = Workers.create ~domains:4 in
  Alcotest.(check int) "spawned = domains - 1" 3 (Workers.spawned w);
  for k = 1 to 50 do
    let r = Workers.run w (Array.init 8 (fun i () -> i + k)) in
    Alcotest.(check int) "sum" ((8 * k) + 28) (Array.fold_left ( + ) 0 r)
  done;
  Alcotest.(check int) "no respawn across 50 runs" 3 (Workers.spawned w);
  Workers.shutdown w

let test_workers_pool_of_one () =
  let w = Workers.create ~domains:1 in
  Alcotest.(check int) "nothing spawned" 0 (Workers.spawned w);
  let r = Workers.run w (Array.init 5 (fun i () -> 2 * i)) in
  Alcotest.(check (array int)) "caller drains alone" [| 0; 2; 4; 6; 8 |] r;
  Workers.shutdown w

let test_workers_oversubscription () =
  (* far more thunks than domains: everything still runs exactly once *)
  let w = Workers.create ~domains:2 in
  let r = Workers.run w (Array.init 100 (fun i () -> i)) in
  Alcotest.(check int) "all jobs ran" (100 * 99 / 2)
    (Array.fold_left ( + ) 0 r);
  Workers.shutdown w

exception Boom

let test_workers_exception_propagates () =
  let w = Workers.create ~domains:2 in
  (match Workers.run w [| (fun () -> 1); (fun () -> raise Boom) |] with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom -> ());
  (* the pool survives a failed call *)
  let r = Workers.run w [| (fun () -> 3); (fun () -> 4) |] in
  Alcotest.(check (array int)) "pool survives" [| 3; 4 |] r;
  Workers.shutdown w

let test_workers_shutdown_idempotent_and_post_run () =
  let w = Workers.create ~domains:3 in
  ignore (Workers.run w (Array.init 4 (fun i () -> i)));
  Workers.shutdown w;
  Workers.shutdown w;
  (* a run after shutdown still completes: the caller drains its own jobs *)
  let r = Workers.run w (Array.init 4 (fun i () -> i + 1)) in
  Alcotest.(check (array int)) "post-shutdown run" [| 1; 2; 3; 4 |] r;
  Alcotest.(check int) "domains unchanged" 3 (Workers.domains w)

let test_workers_telemetry_consistency () =
  (* jobs = stolen + caller must hold over the diff of any quiescent
     window, whatever the 4-domain queue race decided; every queued job
     contributes one queue-wait observation. *)
  let before = Obs.Metrics.snapshot () in
  let w = Workers.create ~domains:4 in
  let total = Atomic.make 0 in
  for _ = 1 to 5 do
    ignore
      (Workers.run w
         (Array.init 8 (fun i () -> Atomic.fetch_and_add total i)))
  done;
  Workers.shutdown w;
  let d =
    Obs.Metrics.diff ~before ~after:(Obs.Metrics.snapshot ())
  in
  let c name = Option.value ~default:0 (List.assoc_opt name d.Obs.Metrics.counters) in
  Alcotest.(check int) "every thunk counted" 40 (c "runtime.workers.jobs");
  Alcotest.(check int) "jobs = stolen + caller"
    (c "runtime.workers.jobs")
    (c "runtime.workers.jobs_stolen" + c "runtime.workers.jobs_caller");
  Alcotest.(check bool) "caller ran at least its first thunks" true
    (c "runtime.workers.jobs_caller" >= 5);
  let queued =
    List.assoc_opt "runtime.workers.queue_wait_us" d.Obs.Metrics.histograms
  in
  (match queued with
  | None -> Alcotest.fail "no queue-wait observations"
  | Some h ->
      (* 5 runs × 7 queued jobs (the first thunk never queues) *)
      Alcotest.(check int) "one wait per queued job" 35
        h.Obs.Histogram.count);
  Alcotest.(check int) "all thunks really ran" (5 * (8 * 7 / 2))
    (Atomic.get total)

let test_exec_degenerate_threads () =
  (* threads ≤ 0 must clamp to sequential execution, not crash or spawn. *)
  let prog = List.assoc "vecadd" Loopir.Builtin.corpus in
  let params = [ ("n", 4) ] in
  let tr = Trace.build prog ~params in
  let sched = Sched.sequential_of_trace tr in
  let env = Interp.prepare prog ~params in
  List.iter
    (fun threads ->
      match Exec.check env ~threads sched with
      | Ok () -> ()
      | Error m ->
          Alcotest.fail (Printf.sprintf "threads=%d: %s" threads m))
    [ 0; -1 ];
  (* Bucketing never produces empty buckets to spawn for. *)
  Alcotest.(check int) "no buckets for empty input" 0
    (List.length (Exec.doall_buckets 4 [||]));
  List.iter
    (fun threads ->
      let buckets = Exec.doall_buckets threads [| 1; 2; 3 |] in
      Alcotest.(check int) "all elements kept" 3
        (List.fold_left (fun acc b -> acc + Array.length b) 0 buckets);
      Alcotest.(check bool) "no empty bucket" true
        (List.for_all (fun b -> Array.length b > 0) buckets))
    [ -3; 0; 1; 2; 7 ]

let test_thread_loads_overflow () =
  (* A phase that used more buckets than [threads] must fold the overflow
     into the last slot rather than silently dropping those loads
     (regression: loads were dropped when stats were taken with a larger
     effective thread count). *)
  let stat loads =
    {
      Exec.label = "p";
      n_instances = Array.fold_left ( + ) 0 loads;
      n_units = Array.length loads;
      loads;
      busy = Array.map (fun _ -> 0.0) loads;
      alloc = Array.map (fun _ -> 0.0) loads;
      seconds = 0.0;
    }
  in
  let timed =
    {
      Exec.store = Arrays.create ();
      seconds = 0.0;
      phase_stats = [ stat [| 1; 2; 3; 4; 5 |]; stat [| 10 |] ];
    }
  in
  Alcotest.(check (array int))
    "overflow folds into last slot" [| 11; 14 |]
    (Exec.thread_loads timed ~threads:2);
  Alcotest.(check (array int))
    "exact fit untouched" [| 11; 2; 3; 4; 5 |]
    (Exec.thread_loads timed ~threads:5);
  (* End to end: run a many-task schedule sequentially, then ask for the
     loads at the parallel thread count — nothing may be lost. *)
  let env, sched =
    rec_schedule Loopir.Builtin.example2 [ ("n", 12) ] [| 12 |]
  in
  let tmd = Exec.run_timed env ~threads:1 sched in
  let total = Array.fold_left ( + ) 0 (Exec.thread_loads tmd ~threads:4) in
  Alcotest.(check int) "all instances accounted for" (12 * 12) total

let test_run_timed_busy_arrays () =
  (* busy is aligned with loads and never negative; sequential runs report
     exactly one slot. *)
  let env, sched =
    rec_schedule Loopir.Builtin.example1
      [ ("n1", 10); ("n2", 10) ]
      [| 10; 10 |]
  in
  List.iter
    (fun threads ->
      let tmd = Exec.run_timed env ~threads sched in
      List.iter
        (fun (ps : Exec.phase_stat) ->
          if threads = 1 then
            Alcotest.(check int) "one busy slot" 1 (Array.length ps.Exec.busy);
          Array.iter
            (fun b ->
              Alcotest.(check bool) "busy >= 0" true (b >= 0.0))
            ps.Exec.busy;
          Alcotest.(check bool) "busy within phase wall" true
            (Array.fold_left max 0.0 ps.Exec.busy
            <= ps.Exec.seconds +. 1e-3))
        tmd.Exec.phase_stats)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "runtime"
    [
      ( "arrays",
        [
          Alcotest.test_case "extents and values" `Quick test_arrays_basic;
          Alcotest.test_case "equality" `Quick test_arrays_equal;
        ] );
      ( "interp",
        [
          Alcotest.test_case "prefix sum semantics" `Quick
            test_interp_prefix_sum;
          Alcotest.test_case "sequential schedule ≡ program" `Quick
            test_interp_schedule_equivalence_fig2;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "REC semantics (ex1)" `Quick
            test_rec_schedule_semantics_ex1;
          Alcotest.test_case "REC semantics (ex2)" `Quick
            test_rec_schedule_semantics_ex2;
          Alcotest.test_case "dataflow fronts (cholesky)" `Quick
            test_fronts_schedule_cholesky;
          Alcotest.test_case "illegal schedule detected" `Quick
            test_illegal_schedule_detected;
          Alcotest.test_case "duplicate instance detected" `Quick
            test_duplicate_instance_detected;
          Alcotest.test_case "cross-task duplicate detected" `Quick
            test_duplicate_across_tasks_detected;
          Alcotest.test_case "same-phase edge violation detected" `Quick
            test_edge_violation_same_doall_detected;
        ] );
      ( "sim",
        [
          Alcotest.test_case "LPT makespan" `Quick test_lpt_makespan;
          Alcotest.test_case "speedup monotone in threads" `Quick
            test_sim_speedup_monotone;
          Alcotest.test_case "code factor" `Quick test_sim_code_factor;
          Alcotest.test_case "pipeline model" `Quick test_pipeline_time;
        ] );
      ( "exec",
        [
          Alcotest.test_case "domains ≡ sequential (ex1)" `Quick
            test_exec_parallel_matches_sequential;
          Alcotest.test_case "domains ≡ sequential (cholesky fronts)" `Quick
            test_exec_fronts_parallel;
          Alcotest.test_case "determinism at 1/2/4/8 threads" `Quick
            test_exec_determinism_paper_examples;
          Alcotest.test_case "compiled ≡ interp (paper examples, 1/2/4)"
            `Quick test_compiled_matches_interp_examples;
          Alcotest.test_case "compiled ≡ interp (full corpus)" `Quick
            test_compiled_matches_interp_corpus;
          Alcotest.test_case "bytecode ≡ interp (paper examples, 1/2/4)"
            `Quick test_bytecode_matches_interp_examples;
          Alcotest.test_case "bytecode ≡ interp (full corpus, 1/2/4)" `Quick
            test_bytecode_matches_interp_corpus;
          Alcotest.test_case "bytecode closure fallback (non-affine)" `Quick
            test_bytecode_fallback_nonaffine;
          Alcotest.test_case "chunking variants agree" `Quick
            test_chunking_variants_agree;
          Alcotest.test_case "cost-proportional chunk count bounds" `Quick
            test_doall_chunk_count_bounds;
          Alcotest.test_case "DOALL chunk ranges tile exactly" `Quick
            test_doall_chunk_ranges;
          Alcotest.test_case "degenerate thread counts" `Quick
            test_exec_degenerate_threads;
          Alcotest.test_case "thread_loads overflow folding" `Quick
            test_thread_loads_overflow;
          Alcotest.test_case "busy arrays" `Quick test_run_timed_busy_arrays;
        ] );
      ( "workers",
        [
          Alcotest.test_case "results in submission order" `Quick
            test_workers_results_in_order;
          Alcotest.test_case "pool reuse spawns once" `Quick
            test_workers_reuse_no_respawn;
          Alcotest.test_case "pool of one" `Quick test_workers_pool_of_one;
          Alcotest.test_case "over-subscription" `Quick
            test_workers_oversubscription;
          Alcotest.test_case "exception propagation" `Quick
            test_workers_exception_propagates;
          Alcotest.test_case "shutdown idempotent, post-shutdown run" `Quick
            test_workers_shutdown_idempotent_and_post_run;
          Alcotest.test_case "telemetry counters consistent on 4 domains"
            `Quick test_workers_telemetry_consistency;
        ] );
    ]
