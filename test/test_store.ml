(* Tests for the durable content-addressed store: append/find round
   trips, write-behind visibility, reopen recovery (index rebuilt from
   the shard logs), torn-tail truncation, checksum rejection,
   last-record-wins, and the service-level disk-warm path — a fresh
   service on the same store directory answers from disk without
   recomputing. *)

module Store = Svc.Store
module Key = Svc.Key
module Proto = Svc.Proto
module Service = Svc.Service

let temp_dir =
  let n = ref 0 in
  fun prefix ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !n)
    in
    Unix.mkdir d 0o700;
    d

let key i = Key.of_hex (Printf.sprintf "%032x" i)

(* ------------------------------------------------------------------ *)
(* basic operation                                                      *)

let test_roundtrip () =
  let dir = temp_dir "store-rt" in
  let s = Store.open_dir ~shards:4 ~flush_every:2 dir in
  Store.add s (key 1) "alpha";
  Store.add s (key 2) "beta";
  Store.add s (key 3) "";
  (* write-behind: visible before any flush *)
  Alcotest.(check (option string)) "mem-tier read" (Some "alpha")
    (Store.find s (key 1));
  Alcotest.(check bool) "mem" true (Store.mem s (key 2));
  Alcotest.(check bool) "absent" false (Store.mem s (key 9));
  Alcotest.(check (option string)) "missing key" None (Store.find s (key 9));
  Store.flush s;
  Alcotest.(check (option string)) "disk-tier read" (Some "alpha")
    (Store.find s (key 1));
  Alcotest.(check (option string)) "empty payload ok" (Some "")
    (Store.find s (key 3));
  Alcotest.(check int) "entries" 3 (Store.entries s);
  Store.close s

let test_reopen_recovers () =
  let dir = temp_dir "store-reopen" in
  let s = Store.open_dir ~shards:4 dir in
  for i = 1 to 20 do
    Store.add s (key i) (Printf.sprintf "payload-%d" i)
  done;
  Store.close s;
  let s2 = Store.open_dir ~shards:4 dir in
  Alcotest.(check int) "all records recovered" 20
    (Store.recovery s2).Store.recovered;
  Alcotest.(check int) "no torn tail" 0
    (Store.recovery s2).Store.truncated_bytes;
  Alcotest.(check int) "entries" 20 (Store.entries s2);
  for i = 1 to 20 do
    Alcotest.(check (option string))
      (Printf.sprintf "key %d" i)
      (Some (Printf.sprintf "payload-%d" i))
      (Store.find s2 (key i))
  done;
  Store.close s2

let test_last_record_wins () =
  let dir = temp_dir "store-lww" in
  let s = Store.open_dir ~shards:2 dir in
  Store.add s (key 7) "first";
  Store.flush s;
  Store.add s (key 7) "second";
  Store.close s;
  let s2 = Store.open_dir ~shards:2 dir in
  Alcotest.(check (option string)) "newest record wins" (Some "second")
    (Store.find s2 (key 7));
  Store.close s2

(* ------------------------------------------------------------------ *)
(* crash recovery                                                       *)

let data_shards dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun f ->
         let p = Filename.concat dir f in
         if Filename.check_suffix f ".log" && (Unix.stat p).Unix.st_size > 0
         then Some p
         else None)

let append_bytes path bytes =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  output_string oc bytes;
  close_out oc

let test_torn_tail_truncated () =
  let dir = temp_dir "store-torn" in
  let s = Store.open_dir ~shards:1 dir in
  Store.add s (key 1) "kept-1";
  Store.add s (key 2) "kept-2";
  Store.close s;
  let shard = List.hd (data_shards dir) in
  let before = (Unix.stat shard).Unix.st_size in
  (* a crash mid-append: a header that promises more bytes than exist *)
  append_bytes shard "RPS1\x10\x00\x00\x00\xff\xff";
  let s2 = Store.open_dir ~shards:1 dir in
  Alcotest.(check int) "intact records survive" 2
    (Store.recovery s2).Store.recovered;
  Alcotest.(check int) "torn bytes truncated" 10
    (Store.recovery s2).Store.truncated_bytes;
  Alcotest.(check (option string)) "record before the tear" (Some "kept-2")
    (Store.find s2 (key 2));
  Store.close s2;
  Alcotest.(check int) "file back to its pre-crash length" before
    (Unix.stat shard).Unix.st_size;
  (* and the truncated log keeps accepting appends *)
  let s3 = Store.open_dir ~shards:1 dir in
  Store.add s3 (key 3) "after-recovery";
  Store.close s3;
  let s4 = Store.open_dir ~shards:1 dir in
  Alcotest.(check int) "append after recovery persisted" 3
    (Store.recovery s4).Store.recovered;
  Store.close s4

let test_corrupt_record_rejected () =
  let dir = temp_dir "store-corrupt" in
  let s = Store.open_dir ~shards:1 dir in
  Store.add s (key 1) "good-record";
  Store.flush s;
  let shard = List.hd (data_shards dir) in
  let keep = (Unix.stat shard).Unix.st_size in
  Store.add s (key 2) "will-be-corrupted";
  Store.close s;
  (* flip one payload byte of the second record: its digest no longer
     matches, so recovery must drop it (and everything after) *)
  let fd = Unix.openfile shard [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd ((Unix.fstat fd).Unix.st_size - 1) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "X") 0 1);
  Unix.close fd;
  let s2 = Store.open_dir ~shards:1 dir in
  Alcotest.(check int) "only the intact record survives" 1
    (Store.recovery s2).Store.recovered;
  Alcotest.(check bool) "torn bytes reported" true
    ((Store.recovery s2).Store.truncated_bytes > 0);
  Alcotest.(check (option string)) "intact record readable"
    (Some "good-record")
    (Store.find s2 (key 1));
  Alcotest.(check (option string)) "corrupt record gone" None
    (Store.find s2 (key 2));
  Store.close s2;
  Alcotest.(check int) "file truncated to the last valid record" keep
    (Unix.stat shard).Unix.st_size

(* ------------------------------------------------------------------ *)
(* service-level disk warmth                                            *)

let counter name =
  match List.assoc_opt name (Obs.Metrics.snapshot ()).Obs.Metrics.counters with
  | Some v -> v
  | None -> 0

let request () =
  Proto.request ~params:[ ("n", 24) ] ~id:"r1" ~name:"warm"
    (Proto.Src "DO i = 1, n\n  A(i) = A(i-1) + 1\nENDDO\n")

let service_config dir =
  {
    Service.default_config with
    domains = 1;
    threads = 1;
    check = false;
    measure = false;
    store_dir = Some dir;
  }

let test_disk_warm_short_circuit () =
  let dir = temp_dir "store-svc" in
  (* first process: compute, persist *)
  let svc = Service.create ~config:(service_config dir) () in
  let r1 = Service.run_one svc (request ()) in
  Alcotest.(check bool) "first run ok" true (Proto.ok r1);
  Alcotest.(check bool) "first run computed" false r1.Proto.cached;
  Service.shutdown svc;
  (* "restarted process": a fresh service, cold memory cache, same dir *)
  let hits0 = counter "svc.store.hits" in
  let svc2 = Service.create ~config:(service_config dir) () in
  let r2 = Service.run_one svc2 (request ()) in
  Alcotest.(check bool) "disk-warm run ok" true (Proto.ok r2);
  Alcotest.(check bool) "disk-warm run answered from the store" true
    r2.Proto.cached;
  Alcotest.(check bool) "store hit counter advanced" true
    (counter "svc.store.hits" > hits0);
  (* promotion: the second lookup is a memory hit, not a second store
     read *)
  let hits1 = counter "svc.store.hits" in
  let r3 = Service.run_one svc2 (request ()) in
  Alcotest.(check bool) "promoted to memory" true r3.Proto.cached;
  Alcotest.(check int) "no second store read" hits1
    (counter "svc.store.hits");
  Service.shutdown svc2

let test_garbage_store_file_is_empty () =
  let dir = temp_dir "store-garbage" in
  let path = Filename.concat dir "shard-00.log" in
  append_bytes path "this is not a store file at all\n";
  let s = Store.open_dir ~shards:1 dir in
  Alcotest.(check int) "nothing recovered" 0 (Store.recovery s).Store.recovered;
  Alcotest.(check bool) "garbage truncated" true
    ((Store.recovery s).Store.truncated_bytes > 0);
  Alcotest.(check int) "store usable and empty" 0 (Store.entries s);
  Store.add s (key 1) "fresh";
  Store.close s;
  let s2 = Store.open_dir ~shards:1 dir in
  Alcotest.(check (option string)) "fresh record persisted" (Some "fresh")
    (Store.find s2 (key 1));
  Store.close s2

let () =
  Alcotest.run "store"
    [
      ( "basic",
        [
          Alcotest.test_case "add/find/mem round trip" `Quick test_roundtrip;
          Alcotest.test_case "reopen rebuilds the index" `Quick
            test_reopen_recovers;
          Alcotest.test_case "last record wins" `Quick test_last_record_wins;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "torn tail truncated" `Quick
            test_torn_tail_truncated;
          Alcotest.test_case "checksum rejects corruption" `Quick
            test_corrupt_record_rejected;
          Alcotest.test_case "garbage file treated as empty" `Quick
            test_garbage_store_file_is_empty;
        ] );
      ( "service",
        [
          Alcotest.test_case "disk-warm hit skips recomputation" `Quick
            test_disk_warm_short_circuit;
        ] );
    ]
