(* Tests for the observability layer: span nesting and ordering, counter
   atomicity under domains, histograms, metrics diffs, and the Chrome
   trace_event export round-tripping through the pipeline JSON parser. *)

module Sink = Obs.Sink
module Span = Obs.Span
module Clock = Obs.Clock

(* ------------------------------------------------------------------ *)
(* Clock                                                                *)

let test_clock_monotone () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now_ns () in
    if Int64.compare t !prev < 0 then
      Alcotest.fail "now_ns went backwards";
    prev := t
  done;
  let t0 = Clock.now_ns () in
  Alcotest.(check bool) "elapsed non-negative" true (Clock.elapsed_s t0 >= 0.0)

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)

let test_span_nesting () =
  let sink = Sink.make () in
  let r =
    Span.with_ ~sink ~name:"outer" (fun () ->
        Span.with_ ~sink ~name:"inner1" (fun () -> ignore (Sys.opaque_identity 1));
        Span.with_ ~sink ~name:"inner2" ~args:[ ("k", "v") ] (fun () -> ());
        17)
  in
  Alcotest.(check int) "with_ returns f's value" 17 r;
  match Sink.spans sink with
  | [ outer; inner1; inner2 ] ->
      Alcotest.(check string) "outer first" "outer" outer.Sink.name;
      Alcotest.(check string) "inner1 second" "inner1" inner1.Sink.name;
      Alcotest.(check string) "inner2 third" "inner2" inner2.Sink.name;
      Alcotest.(check int) "outer depth" 0 outer.Sink.depth;
      Alcotest.(check int) "inner depth" 1 inner1.Sink.depth;
      Alcotest.(check int) "inner2 depth" 1 inner2.Sink.depth;
      Alcotest.(check bool) "args kept" true
        (inner2.Sink.args = [ ("k", "v") ]);
      List.iter
        (fun (s : Sink.span) ->
          Alcotest.(check bool)
            (s.Sink.name ^ " duration >= 0")
            true
            (Int64.compare s.Sink.dur_ns 0L >= 0))
        [ outer; inner1; inner2 ];
      (* children start after the parent and end before it *)
      let ends (s : Sink.span) = Int64.add s.Sink.start_ns s.Sink.dur_ns in
      Alcotest.(check bool) "inner1 starts inside outer" true
        (Int64.compare inner1.Sink.start_ns outer.Sink.start_ns >= 0);
      Alcotest.(check bool) "inner2 after inner1" true
        (Int64.compare inner2.Sink.start_ns (ends inner1) >= 0);
      Alcotest.(check bool) "inner2 ends inside outer" true
        (Int64.compare (ends inner2) (ends outer) <= 0)
  | spans ->
      Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_span_on_exception () =
  let sink = Sink.make () in
  (try Span.with_ ~sink ~name:"boom" (fun () -> failwith "x")
   with Failure _ -> ());
  match Sink.spans sink with
  | [ s ] -> Alcotest.(check string) "recorded despite raise" "boom" s.Sink.name
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_span_null_sink () =
  Span.with_ ~sink:Sink.null ~name:"dropped" (fun () -> ());
  Alcotest.(check int) "null sink records nothing" 0
    (List.length (Sink.spans Sink.null))

let test_ambient_sink () =
  let sink = Sink.make () in
  Sink.with_ambient sink (fun () -> Span.with_ ~name:"ambient" (fun () -> ()));
  (* After with_ambient the default is restored: this span is dropped. *)
  Span.with_ ~name:"after" (fun () -> ());
  match Sink.spans sink with
  | [ s ] -> Alcotest.(check string) "ambient recorded" "ambient" s.Sink.name
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_spans_across_domains () =
  let sink = Sink.make () in
  let work tag () =
    Span.with_ ~sink ~name:("worker-" ^ tag) (fun () ->
        Span.with_ ~sink ~name:"step" (fun () -> ignore (Sys.opaque_identity tag)))
  in
  let ds = List.init 3 (fun k -> Domain.spawn (work (string_of_int k))) in
  List.iter Domain.join ds;
  let spans = Sink.spans sink in
  Alcotest.(check int) "2 spans per domain" 6 (List.length spans);
  let tids =
    List.sort_uniq compare (List.map (fun s -> s.Sink.tid) spans)
  in
  Alcotest.(check int) "3 distinct domain ids" 3 (List.length tids);
  (* each domain has its own independent depth counter *)
  List.iter
    (fun (s : Sink.span) ->
      let expect =
        if String.length s.Sink.name >= 6 && String.sub s.Sink.name 0 6 = "worker"
        then 0
        else 1
      in
      Alcotest.(check int) (s.Sink.name ^ " depth") expect s.Sink.depth)
    spans

(* ------------------------------------------------------------------ *)
(* Counters and histograms                                              *)

let test_counter_atomic_4_domains () =
  let c = Obs.Counter.make "test.atomicity" in
  let before = Obs.Counter.value c in
  let per_domain = 100_000 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Counter.incr c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments" (4 * per_domain)
    (Obs.Counter.value c - before);
  Alcotest.(check bool) "make is idempotent by name" true
    (Obs.Counter.value (Obs.Counter.make "test.atomicity")
    = Obs.Counter.value c)

let test_histogram_buckets () =
  let h = Obs.Histogram.make "test.hist_buckets" in
  List.iter (Obs.Histogram.observe h) [ 0; 1; 2; 3; 4; 5; 1000 ];
  let s = Obs.Histogram.snap h in
  Alcotest.(check int) "count" 7 s.Obs.Histogram.count;
  Alcotest.(check int) "sum" 1015 s.Obs.Histogram.sum;
  (* 0,1 → le 1; 2 → le 2; 3,4 → le 4; 5 → le 8; 1000 → le 1024 *)
  Alcotest.(check (list (pair int int)))
    "power-of-two buckets"
    [ (1, 2); (2, 1); (4, 2); (8, 1); (1024, 1) ]
    s.Obs.Histogram.buckets

let test_histogram_negative_clamp () =
  (* Negative samples are clamped to 0 before anything records, so count,
     sum and the buckets stay mutually consistent. *)
  let h = Obs.Histogram.make "test.hist_negative" in
  List.iter (Obs.Histogram.observe h) [ -5; -1; 0; 3 ];
  let s = Obs.Histogram.snap h in
  Alcotest.(check int) "count includes clamped samples" 4
    s.Obs.Histogram.count;
  Alcotest.(check int) "sum treats negatives as 0" 3 s.Obs.Histogram.sum;
  (* -5, -1, 0 all land in the le-1 bucket; 3 in le-4 *)
  Alcotest.(check (list (pair int int)))
    "buckets agree with count"
    [ (1, 3); (4, 1) ]
    s.Obs.Histogram.buckets;
  Alcotest.(check int) "bucket total = count" s.Obs.Histogram.count
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Obs.Histogram.buckets)

let test_histogram_snap_stress_4_domains () =
  (* snap under concurrent observation: the retry loop plus the
     count-read-last ordering guarantee Σ bucket counts <= count on every
     mid-flight snapshot, and exact totals once the writers join. *)
  let h = Obs.Histogram.make "test.hist_snap_stress" in
  let per_domain = 50_000 in
  let done_count = Atomic.make 0 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Histogram.observe h (i land 1023)
            done;
            Atomic.incr done_count))
  in
  let last_count = ref 0 in
  while Atomic.get done_count < 4 do
    let s = Obs.Histogram.snap h in
    let bucket_total =
      List.fold_left (fun acc (_, n) -> acc + n) 0 s.Obs.Histogram.buckets
    in
    if bucket_total > s.Obs.Histogram.count then
      Alcotest.failf "torn snap: bucket total %d > count %d" bucket_total
        s.Obs.Histogram.count;
    if s.Obs.Histogram.count < !last_count then
      Alcotest.failf "count went backwards: %d after %d"
        s.Obs.Histogram.count !last_count;
    last_count := s.Obs.Histogram.count
  done;
  List.iter Domain.join ds;
  let s = Obs.Histogram.snap h in
  Alcotest.(check int) "final count" (4 * per_domain) s.Obs.Histogram.count;
  let expected_sum =
    let one = ref 0 in
    for i = 1 to per_domain do
      one := !one + (i land 1023)
    done;
    4 * !one
  in
  Alcotest.(check int) "final sum" expected_sum s.Obs.Histogram.sum;
  Alcotest.(check int) "final bucket total" (4 * per_domain)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Obs.Histogram.buckets)

let test_metrics_diff () =
  let c = Obs.Counter.make "test.diffed" in
  let h = Obs.Histogram.make "test.diffed_hist" in
  let before = Obs.Metrics.snapshot () in
  Obs.Counter.add c 5;
  Obs.Histogram.observe h 3;
  let d = Obs.Metrics.diff ~before ~after:(Obs.Metrics.snapshot ()) in
  Alcotest.(check (option int)) "counter delta" (Some 5)
    (List.assoc_opt "test.diffed" d.Obs.Metrics.counters);
  Alcotest.(check bool) "untouched counters dropped" true
    (List.assoc_opt "test.atomicity" d.Obs.Metrics.counters = None);
  (match List.assoc_opt "test.diffed_hist" d.Obs.Metrics.histograms with
  | Some hs ->
      Alcotest.(check int) "hist delta count" 1 hs.Obs.Histogram.count;
      Alcotest.(check int) "hist delta sum" 3 hs.Obs.Histogram.sum
  | None -> Alcotest.fail "histogram delta missing");
  let empty = Obs.Metrics.diff ~before:d ~after:d in
  Alcotest.(check bool) "self-diff is empty" true (Obs.Metrics.is_empty empty)

(* ------------------------------------------------------------------ *)
(* Decision events                                                      *)

module Event = Obs.Event

let test_event_emit_and_order () =
  let log = Event.make () in
  Event.emit ~log ~scope:"depend" ~name:"test.gcd" (fun () ->
      [ ("verdict", Event.Str "independent"); ("gcd", Event.Int 3) ]);
  Event.emit ~log ~severity:Event.Warn ~scope:"strategy" ~name:"rec.reject"
    (fun () -> [ ("why", Event.Str "not full-rank") ]);
  Event.emit ~log ~scope:"partition" ~name:"cardinality" (fun () ->
      [ ("growth", Event.Float 3.0); ("bounded", Event.Bool true) ]);
  match Event.events log with
  | [ a; b; c ] ->
      Alcotest.(check (list int)) "gap-free seq from 0" [ 0; 1; 2 ]
        [ a.Event.seq; b.Event.seq; c.Event.seq ];
      Alcotest.(check (list string))
        "emission order" [ "test.gcd"; "rec.reject"; "cardinality" ]
        [ a.Event.name; b.Event.name; c.Event.name ];
      Alcotest.(check string) "scope kept" "strategy" b.Event.scope;
      Alcotest.(check string) "severity kept" "warn"
        (Event.severity_name b.Event.severity);
      Alcotest.(check bool) "typed fields kept" true
        (a.Event.fields
        = [ ("verdict", Event.Str "independent"); ("gcd", Event.Int 3) ]);
      Event.clear log;
      Alcotest.(check int) "clear empties" 0 (List.length (Event.events log))
  | l -> Alcotest.failf "expected 3 events, got %d" (List.length l)

let test_event_null_does_not_force_thunk () =
  let forced = ref false in
  Event.emit ~log:Event.null ~scope:"s" ~name:"n" (fun () ->
      forced := true;
      []);
  Alcotest.(check bool) "thunk not forced on null log" false !forced;
  Alcotest.(check bool) "null log disabled" false (Event.enabled Event.null);
  Alcotest.(check int) "null log records nothing" 0
    (List.length (Event.events Event.null))

let test_event_ambient_scoping () =
  let log = Event.make () in
  Event.with_ambient log (fun () ->
      Event.emit ~scope:"s" ~name:"inside" (fun () -> []));
  (* the previous ambient (null) is restored: this one is dropped *)
  Event.emit ~scope:"s" ~name:"outside" (fun () -> []);
  match Event.events log with
  | [ e ] -> Alcotest.(check string) "ambient recorded" "inside" e.Event.name
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l)

let test_event_multi_domain_seq () =
  let log = Event.make () in
  let per_domain = 1_000 in
  let ds =
    List.init 4 (fun k ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Event.emit ~log ~scope:"stress" ~name:"tick" (fun () ->
                  [ ("d", Event.Int k); ("i", Event.Int i) ])
            done))
  in
  List.iter Domain.join ds;
  let evs = Event.events log in
  Alcotest.(check int) "all events kept" (4 * per_domain) (List.length evs);
  List.iteri
    (fun i (e : Event.event) ->
      if e.Event.seq <> i then
        Alcotest.failf "seq not gap-free: position %d has seq %d" i e.Event.seq)
    evs;
  let tids =
    List.sort_uniq compare (List.map (fun (e : Event.event) -> e.Event.tid) evs)
  in
  Alcotest.(check int) "4 distinct emitting domains" 4 (List.length tids)

let test_event_jsonl_parses () =
  let log = Event.make () in
  Event.emit ~log ~scope:"depend" ~name:"test.exact" (fun () ->
      [
        ("relation", Event.Str "needs \"quotes\"\nand newlines");
        ("empty", Event.Bool false);
        ("dims", Event.Int 2);
        ("growth", Event.Float 1.5);
        ("nan_degrades", Event.Float nan);
      ]);
  Event.emit ~log ~severity:Event.Warn ~scope:"strategy" ~name:"rec.reject"
    (fun () -> []);
  let lines =
    String.split_on_char '\n' (Event.to_jsonl log)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  let parsed =
    List.map
      (fun line ->
        match Pipeline.Json.parse line with
        | Ok v -> v
        | Error m -> Alcotest.failf "JSONL line does not parse: %s (%s)" line m)
      lines
  in
  let first = List.nth parsed 0 in
  List.iter
    (fun key ->
      if Pipeline.Json.member key first = None then
        Alcotest.failf "line lacks %s" key)
    [ "seq"; "t_us"; "tid"; "severity"; "scope"; "name"; "fields" ];
  (match Pipeline.Json.member "fields" first with
  | Some fields ->
      Alcotest.(check bool) "escaped string survives" true
        (Pipeline.Json.member "relation" fields
        = Some (Pipeline.Json.Str "needs \"quotes\"\nand newlines"));
      Alcotest.(check bool) "int field survives" true
        (Pipeline.Json.member "dims" fields = Some (Pipeline.Json.Int 2));
      Alcotest.(check bool) "non-finite float degrades to null" true
        (Pipeline.Json.member "nan_degrades" fields = Some Pipeline.Json.Null)
  | None -> Alcotest.fail "fields missing");
  match Pipeline.Json.member "severity" (List.nth parsed 1) with
  | Some (Pipeline.Json.Str s) -> Alcotest.(check string) "severity" "warn" s
  | _ -> Alcotest.fail "severity missing on second line"

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                  *)

let record_sample_trace () =
  let sink = Sink.make () in
  Span.with_ ~sink ~name:"run" (fun () ->
      Span.with_ ~sink ~name:"phase:P1" ~args:[ ("n", "3") ] (fun () ->
          let ds =
            List.init 2 (fun k ->
                Domain.spawn (fun () ->
                    Span.with_ ~sink ~name:"bucket" (fun () ->
                        ignore (Sys.opaque_identity k))))
          in
          List.iter Domain.join ds);
      Span.with_ ~sink ~name:"phase:\"quoted\"\n" (fun () -> ()));
  sink

let test_chrome_trace_round_trip () =
  let sink = record_sample_trace () in
  let c = Obs.Counter.make "test.trace_counter" in
  Obs.Counter.incr c;
  let metrics =
    { Obs.Metrics.counters = [ ("test.trace_counter", 1) ]; histograms = [] }
  in
  let json = Obs.Trace.to_chrome_json ~metrics sink in
  match Pipeline.Json.parse json with
  | Error m -> Alcotest.fail ("trace JSON does not parse: " ^ m)
  | Ok t -> (
      match Pipeline.Json.member "traceEvents" t with
      | Some (Pipeline.Json.List events) ->
          let num = function
            | Pipeline.Json.Int i -> float_of_int i
            | Pipeline.Json.Float f -> f
            | _ -> Alcotest.fail "expected a number"
          in
          let xs =
            List.filter
              (fun e ->
                Pipeline.Json.member "ph" e = Some (Pipeline.Json.Str "X"))
              events
          in
          (* run, phase:P1, 2 buckets, the quoted phase *)
          Alcotest.(check int) "complete events" 5 (List.length xs);
          List.iter
            (fun e ->
              let get k =
                match Pipeline.Json.member k e with
                | Some v -> num v
                | None -> Alcotest.failf "event lacks %s" k
              in
              Alcotest.(check bool) "ts >= 0" true (get "ts" >= 0.0);
              Alcotest.(check bool) "dur >= 0" true (get "dur" >= 0.0))
            xs;
          let names =
            List.filter_map
              (fun e ->
                match Pipeline.Json.member "name" e with
                | Some (Pipeline.Json.Str s) -> Some s
                | _ -> None)
              xs
          in
          Alcotest.(check bool) "escaped name survives" true
            (List.mem "phase:\"quoted\"\n" names);
          let counters =
            List.filter
              (fun e ->
                Pipeline.Json.member "ph" e = Some (Pipeline.Json.Str "C"))
              events
          in
          Alcotest.(check int) "counter events" 1 (List.length counters)
      | _ -> Alcotest.fail "traceEvents missing")

let test_trace_text () =
  let sink = record_sample_trace () in
  let text = Obs.Trace.to_text sink in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and tl = String.length text in
        let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("text mentions " ^ needle) true found)
    [ "domain 0"; "run"; "phase:P1"; "bucket" ]

let test_chrome_trace_from_pipeline_run () =
  (* Export a trace from a real 4-domain pipeline run and check the
     properties a trace viewer relies on: at least one tid and, per tid,
     well-nested complete events.  The executor pool load-balances
     dynamically (the caller helps drain the bucket queue), so on a tiny
     nest fewer than [threads] domains may end up executing buckets. *)
  let sink = Sink.make () in
  let options = { Pipeline.Driver.default_options with threads = 4; sink } in
  (match
     Pipeline.Driver.run ~options ~name:"example2" ~params:[ ("n", 12) ]
       Loopir.Builtin.example2
   with
  | Error e -> Alcotest.fail (Pipeline.Driver.error_to_string e)
  | Ok _ -> ());
  let json = Obs.Trace.to_chrome_json sink in
  match Pipeline.Json.parse json with
  | Error m -> Alcotest.fail ("trace JSON does not parse: " ^ m)
  | Ok t -> (
      match Pipeline.Json.member "traceEvents" t with
      | Some (Pipeline.Json.List events) ->
          let num = function
            | Some (Pipeline.Json.Int i) -> float_of_int i
            | Some (Pipeline.Json.Float f) -> f
            | _ -> Alcotest.fail "expected a number"
          in
          let xs =
            List.filter_map
              (fun e ->
                if Pipeline.Json.member "ph" e = Some (Pipeline.Json.Str "X")
                then
                  Some
                    ( num (Pipeline.Json.member "tid" e),
                      num (Pipeline.Json.member "ts" e),
                      num (Pipeline.Json.member "dur" e) )
                else None)
              events
          in
          Alcotest.(check bool) "pipeline run produced events" true
            (List.length xs > 10);
          let tids =
            List.sort_uniq compare (List.map (fun (tid, _, _) -> tid) xs)
          in
          Alcotest.(check bool) "at least one executing tid" true
            (List.length tids >= 1);
          (* well-nested per tid: sorted by start (longest first on ties),
             every event fits inside whatever is still open *)
          let eps = 0.01 (* µs: ns → µs conversion rounding *) in
          List.iter
            (fun tid ->
              let mine =
                List.filter (fun (t, _, _) -> t = tid) xs
                |> List.map (fun (_, ts, dur) -> (ts, dur))
                |> List.sort (fun (a, da) (b, db) ->
                       if a <> b then compare a b else compare db da)
              in
              let stack = ref [] in
              List.iter
                (fun (ts, dur) ->
                  let rec pop () =
                    match !stack with
                    | top :: rest when top <= ts +. eps ->
                        stack := rest;
                        pop ()
                    | _ -> ()
                  in
                  pop ();
                  (match !stack with
                  | top :: _ when ts +. dur > top +. eps ->
                      Alcotest.failf
                        "tid %g: event [%g, %g] overlaps an open event ending \
                         at %g"
                        tid ts (ts +. dur) top
                  | _ -> ());
                  stack := (ts +. dur) :: !stack)
                mine)
            tids
      | _ -> Alcotest.fail "traceEvents missing")

(* ------------------------------------------------------------------ *)
(* Critpath: critical path and straggler attribution on hand-built
   timelines                                                           *)

let mkspan ?(args = []) ?(tid = 0) ~name ~start ~dur () =
  {
    Obs.Sink.name;
    args;
    tid;
    start_ns = Int64.of_int start;
    dur_ns = Int64.of_int dur;
    depth = 0;
  }

let mktask ~phase ~chain ~len ~tid ~start ~dur =
  mkspan ~name:"task"
    ~args:
      [
        ("phase", phase);
        ("chain", string_of_int chain);
        ("len", string_of_int len);
      ]
    ~tid ~start ~dur ()

let test_critpath_balanced () =
  let spans =
    mkspan ~name:"phase:P2-chains" ~start:0 ~dur:100 ()
    :: List.init 4 (fun i ->
           mktask ~phase:"P2-chains" ~chain:i ~len:5 ~tid:i ~start:0 ~dur:100)
  in
  let cp = Obs.Critpath.of_spans ~threads:4 spans in
  Alcotest.(check int) "one barrier" 1 (List.length cp.Obs.Critpath.barriers);
  let b = List.hd cp.Obs.Critpath.barriers in
  Alcotest.(check int) "all tasks attributed" 4 b.Obs.Critpath.n_tasks;
  Alcotest.(check int) "all domains seen" 4 b.Obs.Critpath.n_domains;
  Alcotest.(check (float 1e-9)) "balanced: no idle" 0.0
    b.Obs.Critpath.idle_fraction;
  Alcotest.(check bool) "a straggler is named" true
    (b.Obs.Critpath.straggler <> None);
  Alcotest.(check (float 1e-9)) "wall is all critical" 1.0
    cp.Obs.Critpath.critical_fraction;
  Alcotest.(check (option int)) "longest chain" (Some 5)
    cp.Obs.Critpath.longest_chain

let test_critpath_straggler () =
  let spans =
    mkspan ~name:"phase:P2-chains" ~start:0 ~dur:100 ()
    :: mktask ~phase:"P2-chains" ~chain:0 ~len:20 ~tid:0 ~start:0 ~dur:100
    :: List.init 3 (fun i ->
           mktask ~phase:"P2-chains" ~chain:(i + 1) ~len:2 ~tid:(i + 1)
             ~start:0 ~dur:10)
  in
  let cp = Obs.Critpath.of_spans ~threads:4 spans in
  let b = List.hd cp.Obs.Critpath.barriers in
  (match b.Obs.Critpath.straggler with
  | None -> Alcotest.fail "no straggler named"
  | Some s ->
      Alcotest.(check int) "the long chain is the straggler" 0
        s.Obs.Critpath.id;
      Alcotest.(check int) "with its length" 20 s.Obs.Critpath.len);
  (* busy = 100 + 3·10 of 4·100 capacity *)
  Alcotest.(check (float 1e-9)) "idle fraction" 0.675
    b.Obs.Critpath.idle_fraction;
  Alcotest.(check int) "longest_len" 20 b.Obs.Critpath.longest_len;
  let txt =
    Obs.Critpath.to_text ~theorem_bound:10 cp
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "text names chain 0" true (contains txt "chain 0");
  Alcotest.(check bool) "bound exceeded is called out" true
    (contains txt "EXCEEDS")

let test_critpath_zero_duration () =
  let spans =
    [
      mkspan ~name:"phase:P1" ~start:50 ~dur:0 ();
      mktask ~phase:"P1" ~chain:0 ~len:1 ~tid:0 ~start:50 ~dur:0;
    ]
  in
  let cp = Obs.Critpath.of_spans ~threads:4 spans in
  let b = List.hd cp.Obs.Critpath.barriers in
  Alcotest.(check (float 0.0)) "idle fraction is 0, not nan" 0.0
    b.Obs.Critpath.idle_fraction;
  Alcotest.(check (float 0.0)) "critical fraction is 0, not nan" 0.0
    cp.Obs.Critpath.critical_fraction;
  Alcotest.(check int) "task still attributed" 1 b.Obs.Critpath.n_tasks

let test_critpath_chain_ratio_counter () =
  let counter_value () =
    Option.value ~default:0
      (List.assoc_opt "runtime.sched.longest_chain_ratio_pct"
         (Obs.Counter.snapshot ()))
  in
  let before = counter_value () in
  Obs.Critpath.observe_chain_ratio ~measured:3 ~bound:5;
  Alcotest.(check int) "ratio ticked as a percentage" (before + 60)
    (counter_value ());
  (* Degenerate inputs must not tick (or divide by zero). *)
  Obs.Critpath.observe_chain_ratio ~measured:0 ~bound:5;
  Obs.Critpath.observe_chain_ratio ~measured:3 ~bound:0;
  Alcotest.(check int) "degenerate inputs ignored" (before + 60)
    (counter_value ());
  (* of_spans with a theorem bound ticks it from the measured chain. *)
  let spans =
    [
      mkspan ~name:"phase:P2-chains" ~start:0 ~dur:100 ();
      mktask ~phase:"P2-chains" ~chain:0 ~len:4 ~tid:0 ~start:0 ~dur:100;
    ]
  in
  ignore (Obs.Critpath.of_spans ~threads:2 ~theorem_bound:4 spans);
  Alcotest.(check int) "of_spans ticks measured/bound" (before + 160)
    (counter_value ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "monotone" `Quick test_clock_monotone ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "recorded on exception" `Quick
            test_span_on_exception;
          Alcotest.test_case "null sink drops" `Quick test_span_null_sink;
          Alcotest.test_case "ambient sink" `Quick test_ambient_sink;
          Alcotest.test_case "independent domain timelines" `Quick
            test_spans_across_domains;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter atomicity on 4 domains" `Quick
            test_counter_atomic_4_domains;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram clamps negatives" `Quick
            test_histogram_negative_clamp;
          Alcotest.test_case "histogram snap under 4-domain load" `Quick
            test_histogram_snap_stress_4_domains;
          Alcotest.test_case "snapshot diff" `Quick test_metrics_diff;
        ] );
      ( "events",
        [
          Alcotest.test_case "emit and order" `Quick test_event_emit_and_order;
          Alcotest.test_case "null log skips the thunk" `Quick
            test_event_null_does_not_force_thunk;
          Alcotest.test_case "ambient scoping" `Quick
            test_event_ambient_scoping;
          Alcotest.test_case "gap-free seq across 4 domains" `Quick
            test_event_multi_domain_seq;
          Alcotest.test_case "JSONL lines parse" `Quick
            test_event_jsonl_parses;
        ] );
      ( "trace",
        [
          Alcotest.test_case "chrome JSON round-trip" `Quick
            test_chrome_trace_round_trip;
          Alcotest.test_case "chrome export of a 4-domain pipeline run"
            `Quick test_chrome_trace_from_pipeline_run;
          Alcotest.test_case "text tree" `Quick test_trace_text;
        ] );
      ( "critpath",
        [
          Alcotest.test_case "balanced timeline" `Quick
            test_critpath_balanced;
          Alcotest.test_case "one straggler" `Quick test_critpath_straggler;
          Alcotest.test_case "zero-duration phase" `Quick
            test_critpath_zero_duration;
          Alcotest.test_case "chain-ratio counter" `Quick
            test_critpath_chain_ratio_counter;
        ] );
    ]
