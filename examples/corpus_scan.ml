(* Survey statistics (DESIGN.md E9): classify a corpus of loop kernels by
   dependence uniformity and coupled subscripts, reproducing the
   methodology behind the paper's introduction statistics (46% of SPECfp95
   nests with non-uniform dependences; 12.8% of coupled subscripts causing
   them).  The corpus here is synthetic, so the percentages are indicative
   of the method, not of SPECfp95.

   The scan goes through the Svc batch front-end: every kernel becomes a
   classify-mode request to the analysis service (domain pool +
   content-addressed result cache), and kernels the analysis cannot handle
   surface as typed Diag error records in the table instead of being
   silently dropped.

   Run with:  dune exec examples/corpus_scan.exe *)

let default_n = 10

let () =
  let config =
    {
      Svc.Service.default_config with
      domains = 4;
      threads = 1;
      check = false;
      measure = false;
    }
  in
  let svc = Svc.Service.create ~config () in
  let requests =
    List.map
      (fun (name, prog) ->
        Svc.Proto.request ~id:name ~name
          ~params:
            (List.map (fun p -> (p, default_n)) prog.Loopir.Ast.params)
          ~mode:Svc.Proto.Classify
          (Svc.Proto.Prog prog))
      Loopir.Builtin.corpus
  in
  let responses = Svc.Service.batch svc requests in
  Svc.Service.shutdown svc;
  Printf.printf "%-22s %-14s %s\n" "kernel" "dependences" "coupled subscripts";
  Printf.printf "%s\n" (String.make 55 '-');
  let surveys =
    List.filter_map
      (fun (r : Svc.Proto.response) ->
        match r.Svc.Proto.body with
        | Svc.Proto.Done { survey = Some s; _ } ->
            Printf.printf "%-22s %-14s %s\n" r.Svc.Proto.id s.Svc.Proto.cls
              (if s.Svc.Proto.coupled then "yes" else "no");
            Some s
        | Svc.Proto.Done _ | Svc.Proto.Stats _ | Svc.Proto.Healthy _ ->
            Printf.printf "%-22s (response carried no survey block)\n"
              r.Svc.Proto.id;
            None
        | Svc.Proto.Failed f ->
            Printf.printf "%-22s !%s: %s\n" r.Svc.Proto.id
              (Svc.Proto.failure_kind f)
              (Svc.Proto.failure_message f);
            None)
      responses
  in
  let total = List.length surveys in
  let errors = List.length responses - total in
  let non_uniform =
    Depend.Distance.class_to_string Depend.Distance.Non_uniform
  in
  let count f = List.length (List.filter f surveys) in
  let nonuni = count (fun (s : Svc.Proto.survey) -> s.Svc.Proto.cls = non_uniform) in
  let coupled = count (fun s -> s.Svc.Proto.coupled) in
  let coupled_nonuni =
    count (fun s -> s.Svc.Proto.coupled && s.Svc.Proto.cls = non_uniform)
  in
  Printf.printf "%s\n" (String.make 55 '-');
  if errors > 0 then
    Printf.printf
      "kernels with typed analysis errors : %d/%d (reported above)\n" errors
      (List.length responses);
  Printf.printf "loops with non-uniform dependences : %d/%d (%.0f%%)\n" nonuni
    total
    (100.0 *. float_of_int nonuni /. float_of_int total);
  Printf.printf "loops with coupled subscripts      : %d/%d (%.0f%%)\n" coupled
    total
    (100.0 *. float_of_int coupled /. float_of_int total);
  if coupled > 0 then
    Printf.printf "coupled subscripts → non-uniform   : %d/%d (%.0f%%)\n"
      coupled_nonuni coupled
      (100.0 *. float_of_int coupled_nonuni /. float_of_int coupled);
  print_endline
    "\n(cf. paper introduction: 46% of SPECfp95 nests non-uniform; the\n\
     \ corpus here is synthetic — the methodology is what is reproduced)"
