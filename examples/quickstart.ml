(* Quickstart: parse a loop with non-uniform dependences, run it through the
   pipeline (classify → materialize → schedule → validate → execute), print
   the generated code and the structured run report.

   Run with:  dune exec examples/quickstart.exe *)

let source = "DO i = 1, 4000\n  a(3*i + 1) = a(2*i)\nENDDO"

let () =
  print_endline "=== source loop ===";
  print_endline source;
  let prog = Loopir.Parser.parse ~name:"quickstart" source in

  (* 1. Exact dependence analysis (Omega-style). *)
  let a =
    match Pipeline.Driver.analyze prog with
    | Ok a -> a
    | Error e -> failwith (Diag.to_string e)
  in
  let pairs =
    Presburger.Enum.points
      (Presburger.Iset.bind_params (Presburger.Rel.to_set a.Depend.Solve.rd) [||])
  in
  Printf.printf "\n=== direct dependences (%d, first 10) ===\n"
    (List.length pairs);
  List.iteri
    (fun k p -> if k < 10 then Printf.printf "  %d -> %d\n" p.(0) p.(1))
    pairs;

  (* 2. The whole pipeline in one call: Algorithm 1 picks the
        recurrence-chain branch (single coupled pair, full-rank
        coefficients), the schedule is validated against the exact instance
        graph and executed on 4 domains. *)
  match Pipeline.Driver.run ~name:"quickstart" ~params:[] prog with
  | Error e -> failwith (Pipeline.Driver.error_to_string e)
  | Ok { plan; concrete; sched; report } ->
      (match concrete with
      | Pipeline.Driver.Rec { c; _ } ->
          Printf.printf "\n=== three-set partition ===\n";
          Printf.printf "P1 (independent + initial): %d iterations\n"
            (Core.Points.length c.Core.Partition.p1_pts);
          Printf.printf "P2 (chains)               : %d chains, %d iterations\n"
            (Core.Chain.n_chains c.Core.Partition.chains)
            (Core.Chain.total_points c.Core.Partition.chains);
          List.iteri
            (fun k chain ->
              if k < 8 then
                Printf.printf "    chain:%s\n"
                  (String.concat " ->"
                     (List.map (fun p -> Printf.sprintf " %d" p.(0)) chain)))
            (Core.Chain.to_lists c.Core.Partition.chains);
          if Core.Chain.n_chains c.Core.Partition.chains > 8 then
            print_endline "    ... (chains with irregular strides, ratio 3/2)";
          Printf.printf "P3 (final)                : %d iterations\n"
            (Core.Points.length c.Core.Partition.p3_pts);
          (match c.Core.Partition.theorem_bound with
          | Some b ->
              Printf.printf
                "Theorem 1: growth a = %g, chain length ≤ %d (measured %d)\n"
                c.Core.Partition.growth b
                c.Core.Partition.chains.Core.Chain.longest
          | None -> ())
      | _ -> print_endline "\nunexpected: quickstart should take the REC branch");

      (* 3. Generated code. *)
      (match Pipeline.Driver.codegen plan ~prog with
      | Ok listing ->
          print_endline "\n=== generated code ===";
          print_string listing
      | Error e -> Printf.printf "\nno listing: %s\n" (Diag.to_string e));

      (* 4. The structured report: per-stage wall time, legality and
            semantic validation, per-phase execution profile. *)
      print_endline "\n=== pipeline report ===";
      print_string (Pipeline.Report.to_text report);

      (* 5. Predicted speedup on the simulated SMP. *)
      (match sched with
      | Some sched ->
          print_endline "\n=== simulated speedup (REC) ===";
          List.iter
            (fun p ->
              Printf.printf "  %d thread(s): %.2f\n" p
                (Runtime.Sim.speedup (Runtime.Sim.with_factor 0.8) ~threads:p
                   ~n_seq:(Runtime.Sched.n_instances sched) sched))
            [ 1; 2; 3; 4 ]
      | None -> ())
