(* Paper Example 4: the NASA-benchmark Cholesky kernel.  Multiple coupled
   subscript pairs and symbolic bounds, so Algorithm 1 chooses: dataflow
   partitioning when bounds are known (the paper reports 238 steps at
   NMAT=250, M=4, N=40, NRHS=3) and the PDM fallback otherwise (which keeps
   the outermost L loop DOALL).

   Run with:  dune exec examples/cholesky.exe          (small parameters)
              dune exec examples/cholesky.exe -- full  (paper parameters) *)

let () =
  let prog = Loopir.Builtin.cholesky in
  print_endline "=== source (paper Example 4, NASA Cholesky kernel) ===";
  print_string (Loopir.Pretty.program_to_string prog);

  (match Pipeline.Driver.classify prog with
  | Ok (Pipeline.Plan.Pdm_fallback { reason; _ }) ->
      Printf.printf
        "\nAlgorithm 1 branch: PDM fallback for symbolic bounds (%s)\n" reason
  | _ -> print_endline "\nunexpected branch");

  let full = Array.length Sys.argv > 1 && Sys.argv.(1) = "full" in
  let params =
    if full then [ ("nmat", 250); ("m", 4); ("n", 40); ("nrhs", 3) ]
    else [ ("nmat", 8); ("m", 3); ("n", 10); ("nrhs", 2) ]
  in
  Printf.printf "\n=== dataflow partitioning at %s ===\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) params));
  let c = Core.Dataflow.peel_concrete prog ~params in
  Printf.printf "statement instances : %d\n"
    (Array.length c.Core.Dataflow.instances);
  Printf.printf "dataflow steps      : %d%s\n" c.Core.Dataflow.steps
    (if full then "   (paper: 238 partitioning steps)" else "");
  let sizes = Array.map List.length c.Core.Dataflow.fronts in
  Printf.printf "front sizes         : min %d, max %d, mean %.1f\n"
    (Array.fold_left min max_int sizes)
    (Array.fold_left max 0 sizes)
    (float_of_int (Array.fold_left ( + ) 0 sizes)
    /. float_of_int (Array.length sizes));

  (* The PDM uniformization keeps the L dimension fully parallel: group
     instances by their l value — no dependence crosses groups. *)
  print_endline "\n=== PDM view: outermost L stays DOALL ===";
  let tr = Depend.Trace.build prog ~params in
  let bad = ref 0 in
  (* l is the innermost loop of every statement of the kernel. *)
  let l_of (i : Depend.Trace.instance) =
    let iter = i.Depend.Trace.iter in
    iter.(Array.length iter - 1)
  in
  Depend.Trace.iter_edges tr (fun a b ->
      if l_of tr.Depend.Trace.instances.(a) <> l_of tr.Depend.Trace.instances.(b)
      then incr bad);
  Printf.printf "dependence edges crossing different L values: %d (of %d)\n"
    !bad (Depend.Trace.n_edges tr);

  (* Validate the dataflow schedule semantically (small sizes only). *)
  if not full then begin
    let sched = Runtime.Sched.of_fronts c in
    let env = Runtime.Interp.prepare prog ~params in
    Printf.printf "\ndataflow schedule: legality %s, semantics %s\n"
      (match Runtime.Sched.check_legal sched tr with
      | Ok () -> "OK"
      | Error m -> "FAILED: " ^ m)
      (match Runtime.Interp.check_schedule env sched with
      | Ok () -> "OK"
      | Error m -> "FAILED: " ^ m)
  end;

  (* Figure 3, panel 4: REC dataflow vs PDM (L-cosets), always at the
     paper's parameters so front work dominates region overheads. *)
  print_endline "\n=== simulated speedup (cf. Figure 3, panel 4) ===";
  let cpaper, trpaper =
    if full then (c, tr)
    else begin
      let params = [ ("nmat", 250); ("m", 4); ("n", 40); ("nrhs", 3) ] in
      print_endline "(computing at paper parameters NMAT=250, M=4, N=40, NRHS=3)";
      ( Core.Dataflow.peel_concrete prog ~params,
        Depend.Trace.build prog ~params )
    end
  in
  let n_seq = Array.length cpaper.Core.Dataflow.instances in
  let rec_a =
    List.map
      (fun front -> Runtime.Sim.ADoall (List.length front))
      (Array.to_list cpaper.Core.Dataflow.fronts)
  in
  (* PDM: one parallel region of per-L sequential tasks. *)
  let per_l = Hashtbl.create 64 in
  Array.iter
    (fun i ->
      let l = l_of i in
      Hashtbl.replace per_l l (1 + try Hashtbl.find per_l l with Not_found -> 0))
    trpaper.Depend.Trace.instances;
  let pdm_a =
    [
      Runtime.Sim.ATasks
        (Array.of_list (Hashtbl.fold (fun _ n acc -> n :: acc) per_l []));
    ]
  in
  (* Same calibration as bench/main.exe: overheads relative to per-front
     work (fork 1.46%, bound evaluation 1.6% per thread, barrier 2.18%). *)
  let w_phase =
    0.8 *. float_of_int n_seq /. float_of_int (max (List.length rec_a) 1)
  in
  let rec_cost =
    {
      Runtime.Sim.w_iter = 1.0;
      code_factor = 0.8;
      fork = 0.0146 *. w_phase;
      barrier = 0.0218 *. w_phase;
      bound_eval = 0.016 *. w_phase;
    }
  in
  Printf.printf "threads    REC    PDM  (linear)\n";
  List.iter
    (fun p ->
      let rec_s =
        Runtime.Sim.speedup_abstract rec_cost ~threads:p ~n_seq rec_a
      in
      let pdm_s =
        Runtime.Sim.speedup_abstract Runtime.Sim.base ~threads:p ~n_seq pdm_a
      in
      Printf.printf "   %d     %5.2f  %5.2f   (%d)\n" p rec_s pdm_s p)
    [ 1; 2; 3; 4 ]
