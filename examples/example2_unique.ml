(* Paper Example 2 (Ju & Chaudhary's loop): REC vs the UNIQUE-set
   partitioning.  Reproduces the paper's claims: at N = 12 the intermediate
   set is the single iteration (2,6) (so the WHILE loop disappears), REC
   yields 3 fully parallel regions while UNIQUE needs 5 with a sequential
   third.

   Run with:  dune exec examples/example2_unique.exe *)

module Iset = Presburger.Iset
module Enum = Presburger.Enum

let () =
  let prog = Loopir.Builtin.example2 in
  print_endline "=== source (paper Example 2) ===";
  print_string (Loopir.Pretty.program_to_string prog);

  match Pipeline.Driver.classify prog with
  | Ok (Pipeline.Plan.Rec_chains rp) ->
      let three = rp.Core.Partition.three in
      let p2_12 = Enum.points (Iset.bind_params three.Core.Threeset.p2 [| 12 |]) in
      Printf.printf "\nintermediate set at N=12: {%s}   (paper: {(2,6)})\n"
        (String.concat "; "
           (List.map (fun p -> Printf.sprintf "(%d,%d)" p.(0) p.(1)) p2_12));

      let c = Core.Partition.materialize_rec rp ~params:[| 12 |] in
      Printf.printf "REC: 3 regions — P1 %d ∥, chains %d, P3 %d ∥ (144 total)\n"
        (Core.Points.length c.Core.Partition.p1_pts)
        (Core.Chain.total_points c.Core.Partition.chains)
        (Core.Points.length c.Core.Partition.p3_pts);
      (match c.Core.Partition.theorem_bound with
      | Some b ->
          Printf.printf "Theorem 1: a = |det T| = %g, chains ≤ %d iterations\n"
            c.Core.Partition.growth b
      | None -> ());

      (* UNIQUE *)
      let a = rp.Core.Partition.simple in
      let u = Baselines.Unique.partition a ~three in
      Printf.printf "\nUNIQUE: %d non-empty regions at N=12 (3rd sequential):\n"
        (Baselines.Unique.n_regions u ~params:[| 12 |]);
      List.iter
        (fun (name, set) ->
          Printf.printf "  %-12s %3d iterations\n" name
            (List.length (Enum.points (Iset.bind_params set [| 12 |]))))
        [
          ("head-flow", u.Baselines.Unique.head_flow);
          ("head-rest", u.Baselines.Unique.head_rest);
          ("mid (seq)", u.Baselines.Unique.mid);
          ("tail-anti", u.Baselines.Unique.tail_anti);
          ("tail-rest", u.Baselines.Unique.tail_rest);
        ];

      (* Both schedules are valid; REC has fewer phases. *)
      let params = [ ("n", 12) ] in
      let env = Runtime.Interp.prepare prog ~params in
      let tr = Depend.Trace.build prog ~params in
      let check name sched =
        Printf.printf "%s: %d phases, legality %s, semantics %s\n" name
          (Runtime.Sched.n_phases sched)
          (match Runtime.Sched.check_legal sched tr with
          | Ok () -> "OK"
          | Error m -> "FAILED: " ^ m)
          (match Runtime.Interp.check_schedule env sched with
          | Ok () -> "OK"
          | Error m -> "FAILED: " ^ m)
      in
      print_newline ();
      check "REC   " (Runtime.Sched.of_rec ~stmt:0 c);
      check "UNIQUE" (Baselines.Unique.schedule u ~stmt:0 ~params:[| 12 |]);

      (* Simulated speedups at the paper's N = 300. *)
      print_endline "\n=== simulated speedup at N=300 (cf. Figure 3, panel 2) ===";
      let cbig = Core.Partition.materialize_rec_scan rp ~params:[| 300 |] in
      let rec_sched = Runtime.Sched.of_rec ~stmt:0 cbig in
      let uniq_sched = Baselines.Unique.schedule u ~stmt:0 ~params:[| 300 |] in
      let n_seq = 300 * 300 in
      Printf.printf "threads    REC  UNIQUE  (linear)\n";
      List.iter
        (fun p ->
          Printf.printf "   %d      %5.2f  %5.2f   (%d)\n" p
            (Runtime.Sim.speedup (Runtime.Sim.with_factor 0.8) ~threads:p
               ~n_seq rec_sched)
            (Runtime.Sim.speedup (Runtime.Sim.with_factor 0.8) ~threads:p
               ~n_seq uniq_sched)
            p)
        [ 1; 2; 3; 4 ]
  | _ -> print_endline "unexpected: example 2 should take the REC branch"
