(* Paper Example 1 / Figure 1: the 2-D loop with coupled subscripts and
   non-uniform distances (2,2), (4,4), (6,6).  Reproduces the figure's
   dependence arrows, the three-set REC partition, the generated code, and
   the Theorem 1 bound.

   Run with:  dune exec examples/example1_rec.exe *)

module Iset = Presburger.Iset
module Enum = Presburger.Enum
module Rel = Presburger.Rel

let () =
  let prog = Loopir.Builtin.example1 in
  print_endline "=== source (paper Figure 1) ===";
  print_string (Loopir.Pretty.program_to_string prog);

  let a = Depend.Solve.analyze_simple prog in

  (* Figure 1: dependence arrows at N1 = N2 = 10, grouped by distance. *)
  let pairs =
    Enum.points (Iset.bind_params (Rel.to_set a.Depend.Solve.rd) [| 10; 10 |])
  in
  print_endline "\n=== Figure 1: direct dependences at N1 = N2 = 10 ===";
  let by_d = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let d = (p.(2) - p.(0), p.(3) - p.(1)) in
      Hashtbl.replace by_d d
        (((p.(0), p.(1)), (p.(2), p.(3)))
        :: (try Hashtbl.find by_d d with Not_found -> [])))
    pairs;
  Hashtbl.fold (fun d l acc -> (d, List.rev l) :: acc) by_d []
  |> List.sort compare
  |> List.iter (fun ((d1, d2), arrows) ->
         Printf.printf "distance (%d,%d): %d arrows (paper: %s)\n" d1 d2
           (List.length arrows)
           (match d1 with 2 -> "8" | 4 -> "6" | 6 -> "4" | _ -> "?");
         List.iter
           (fun ((i1, i2), (j1, j2)) ->
             Printf.printf "  (%d,%d) -> (%d,%d)\n" i1 i2 j1 j2)
           arrows);

  (* ASCII iteration space: mark P1/P2/P3 as in the partitioned loop. *)
  match Pipeline.Driver.classify prog with
  | Ok (Pipeline.Plan.Rec_chains rp) ->
      let c = Core.Partition.materialize_rec rp ~params:[| 10; 10 |] in
      print_endline "\n=== iteration space 10×10 (1=P1, 2=intermediate, 3=final) ===";
      for i2 = 10 downto 1 do
        Printf.printf "%2d " i2;
        for i1 = 1 to 10 do
          let cls =
            Core.Threeset.classify_point rp.Core.Partition.three
              ~params:[| 10; 10 |] [| i1; i2 |]
          in
          print_char
            (match cls with `P1 -> '1' | `P2 -> '2' | `P3 -> '3' | `Outside -> '?')
        done;
        print_newline ()
      done;
      print_endline "   1234567890  (i1 →)";

      Printf.printf "\nP1 = %d, chains = %d (%d pts, longest %d), P3 = %d\n"
        (Core.Points.length c.Core.Partition.p1_pts)
        (Core.Chain.n_chains c.Core.Partition.chains)
        (Core.Chain.total_points c.Core.Partition.chains)
        c.Core.Partition.chains.Core.Chain.longest
        (Core.Points.length c.Core.Partition.p3_pts);
      (match c.Core.Partition.theorem_bound with
      | Some b ->
          Printf.printf
            "Theorem 1: det T = %g → chains have ≤ %d iterations (= 1 + ⌈log₃ √(N1²+N2²)⌉)\n"
            c.Core.Partition.growth b
      | None -> ());

      print_endline "\n=== generated code (cf. paper Example 1 listing) ===";
      print_string (Codegen.Emit.rec_partitioning rp);

      (* Paper experiment parameters: N1 = 300, N2 = 1000. *)
      print_endline "\n=== paper experiment scale: N1=300, N2=1000 ===";
      let cbig = Core.Partition.materialize_rec_scan rp ~params:[| 300; 1000 |] in
      Printf.printf "P1 = %d, chains = %d (%d pts, longest %d), P3 = %d, bound = %s\n"
        (Core.Points.length cbig.Core.Partition.p1_pts)
        (Core.Chain.n_chains cbig.Core.Partition.chains)
        (Core.Chain.total_points cbig.Core.Partition.chains)
        cbig.Core.Partition.chains.Core.Chain.longest
        (Core.Points.length cbig.Core.Partition.p3_pts)
        (match cbig.Core.Partition.theorem_bound with
        | Some b -> string_of_int b
        | None -> "-");

      (* Validate at a mid scale. *)
      let params = [ ("n1", 30); ("n2", 40) ] in
      let cmid = Core.Partition.materialize_rec rp ~params:[| 30; 40 |] in
      let sched = Runtime.Sched.of_rec ~stmt:0 cmid in
      let env = Runtime.Interp.prepare prog ~params in
      let tr = Depend.Trace.build prog ~params in
      Printf.printf "\nvalidation at 30×40: legality %s, semantics %s\n"
        (match Runtime.Sched.check_legal sched tr with
        | Ok () -> "OK"
        | Error m -> "FAILED: " ^ m)
        (match Runtime.Interp.check_schedule env sched with
        | Ok () -> "OK"
        | Error m -> "FAILED: " ^ m)
  | _ -> print_endline "unexpected: example 1 should take the REC branch"
