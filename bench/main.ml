(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4) and then times the analysis pipeline with
   bechamel.  See DESIGN.md §4 for the experiment index and EXPERIMENTS.md
   for recorded paper-vs-measured values.

   Usage:  dune exec bench/main.exe            (full: paper parameters)
           dune exec bench/main.exe -- --quick (reduced sizes)
           BENCH_QUICK=1 dune exec bench/main.exe

   Regression gate (CI):
           dune exec bench/main.exe -- --quick \
             --baseline BENCH_pipeline.json --gate 25
   compares the freshly written BENCH_pipeline.json against the committed
   baseline and exits non-zero when a stage timing or metric counter
   regressed more than the gate percentage (see Pipeline.Gate). *)

module Iset = Presburger.Iset
module Enum = Presburger.Enum
module Rel = Presburger.Rel
module Solve = Depend.Solve
module Partition = Core.Partition
module Threeset = Core.Threeset
module Dataflow = Core.Dataflow
module Sched = Runtime.Sched
module Sim = Runtime.Sim

let quick =
  Sys.getenv_opt "BENCH_QUICK" <> None
  || Array.exists (fun a -> a = "--quick") Sys.argv

(* Minimal flag-value extraction ("--baseline FILE", "--gate PCT"): the
   harness predates cmdliner use here and positional scanning keeps the
   no-argument paths untouched. *)
let argv_value flag =
  let n = Array.length Sys.argv in
  let rec go k =
    if k >= n - 1 then None
    else if Sys.argv.(k) = flag then Some Sys.argv.(k + 1)
    else go (k + 1)
  in
  go 1

(* All strategy selection goes through the pipeline layer; panels that
   need the raw REC plan unwrap the typed plan. *)
let rec_plan_exn name prog =
  match Pipeline.Driver.classify prog with
  | Ok (Pipeline.Plan.Rec_chains rp) -> rp
  | Ok _ | Error _ -> failwith (name ^ " must take the REC branch")

let section name =
  Printf.printf "\n%s\n== %s\n%s\n" (String.make 64 '=') name (String.make 64 '=')

(* Calibrated per-scheme code factors (single-thread code-quality ratios the
   paper attributes to each scheme's generated code; the curve shapes and
   crossovers then follow from schedule structure).  Region overheads are
   expressed relative to the average per-phase work so the shapes are
   invariant under --quick scaling.  See DESIGN.md §5. *)
let rel_cost ~factor ~n_seq ~phases ~fork_f ~bound_f ~barrier_f =
  let w_phase = factor *. float_of_int n_seq /. float_of_int (max phases 1) in
  {
    Sim.w_iter = 1.0;
    code_factor = factor;
    fork = fork_f *. w_phase;
    barrier = barrier_f *. w_phase;
    bound_eval = bound_f *. w_phase;
  }

(* Example 1: REC's complex generated bounds cost ~3.9% of a phase's work
   per thread (the paper's 4-thread droop); PDM/PL pay their uniformized
   per-iteration code factors. *)
let rec_ex1_cost ~n_seq ~phases =
  rel_cost ~factor:0.75 ~n_seq ~phases ~fork_f:0.0003 ~bound_f:0.0387
    ~barrier_f:0.0004

let pdm_ex1_cost = Sim.with_factor 1.35
let pl_ex1_cost = Sim.with_factor 1.6
let rec_ex2_cost = Sim.with_factor 0.8
let unique_ex2_cost = Sim.with_factor 0.8

(* Cholesky: 318 dataflow fronts each pay fork/bounds/barrier ≈ 5% of their
   average work at 4 threads — REC wins below 3 threads on its cheaper
   Omega-optimized code, PDM's single DOALL-over-L region wins at 4. *)
let rec_ex4_cost ~n_seq ~phases =
  rel_cost ~factor:0.8 ~n_seq ~phases ~fork_f:0.0146 ~bound_f:0.016
    ~barrier_f:0.0218

let pdm_ex4_cost = Sim.base

let threads_range = [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1                                                        *)

let fig1 () =
  section "E1 / Figure 1: non-uniform dependences of Example 1 (10×10)";
  let a = Solve.analyze_simple Loopir.Builtin.example1 in
  let pairs =
    Enum.points (Iset.bind_params (Rel.to_set a.Solve.rd) [| 10; 10 |])
  in
  let by_d = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let d = p.(2) - p.(0) in
      Hashtbl.replace by_d d (1 + try Hashtbl.find by_d d with Not_found -> 0))
    pairs;
  Printf.printf "distance   arrows   paper\n";
  List.iter
    (fun (d, expect) ->
      Printf.printf "  (%d,%d)      %2d       %d\n" d d
        (try Hashtbl.find by_d d with Not_found -> 0)
        expect)
    [ (2, 8); (4, 6); (6, 4) ];
  Printf.printf "total       %2d      18\n" (List.length pairs)

(* ------------------------------------------------------------------ *)
(* E2 — Figure 2                                                        *)

let fig2 () =
  section "E2 / Figure 2: 1-D chains, DO I=1,20: a(2I)=a(21-I)";
  let a = Solve.analyze_simple Loopir.Builtin.fig2 in
  let three = Threeset.compute ~phi:a.Solve.phi ~rd:a.Solve.rd in
  let ints set =
    List.map (fun p -> string_of_int p.(0)) (Enum.points set)
  in
  Printf.printf "P1 = %s\n" (String.concat " " (ints three.Threeset.p1));
  Printf.printf "     (paper: 1 2 3 4 5 6 7 12 14 16 18 20)\n";
  Printf.printf "P2 = {%s}   (paper: empty)\n"
    (String.concat " " (ints three.Threeset.p2));
  Printf.printf "P3 = %s\n" (String.concat " " (ints three.Threeset.p3));
  Printf.printf "     (paper: 8 9 10 11 13 15 17 19)\n"

(* ------------------------------------------------------------------ *)
(* E3 — Example 1 partition + Theorem 1                                 *)

let ex1_plan = lazy (rec_plan_exn "example1" Loopir.Builtin.example1)

let ex1 () =
  section "E3 / Example 1: REC partitioning";
  let rp = Lazy.force ex1_plan in
  let show (n1, n2) =
    let c = Partition.materialize_rec_scan rp ~params:[| n1; n2 |] in
    Printf.printf
      "N1=%-4d N2=%-5d |P1|=%-7d chains=%-6d |P2|=%-6d longest=%d bound=%s \
       |P3|=%d\n"
      n1 n2
      (Core.Points.length c.Partition.p1_pts)
      (Core.Chain.n_chains c.Partition.chains)
      (Core.Chain.total_points c.Partition.chains)
      c.Partition.chains.Core.Chain.longest
      (match c.Partition.theorem_bound with
      | Some b -> string_of_int b
      | None -> "-")
      (Core.Points.length c.Partition.p3_pts)
  in
  List.iter show [ (10, 10); (30, 100); (300, 1000) ];
  print_endline "\ngenerated code (REC listing, cf. paper Example 1):";
  print_string (Codegen.Emit.rec_partitioning rp)

(* ------------------------------------------------------------------ *)
(* E4 — Example 2                                                       *)

let ex2 () =
  section "E4 / Example 2 (Ju et al): REC vs UNIQUE";
  let rp = rec_plan_exn "example2" Loopir.Builtin.example2 in
  let p2 =
    Enum.points (Iset.bind_params rp.Partition.three.Threeset.p2 [| 12 |])
  in
  Printf.printf "intermediate set at N=12: {%s}   (paper: {(2,6)})\n"
    (String.concat "; "
       (List.map (fun p -> Printf.sprintf "(%d,%d)" p.(0) p.(1)) p2));
  let c = Partition.materialize_rec rp ~params:[| 12 |] in
  Printf.printf "REC regions: 3 (P1 %d ∥ / chains %d / P3 %d ∥)\n"
    (Core.Points.length c.Partition.p1_pts)
    (Core.Chain.total_points c.Partition.chains)
    (Core.Points.length c.Partition.p3_pts);
  let u =
    Baselines.Unique.partition rp.Partition.simple ~three:rp.Partition.three
  in
  Printf.printf "UNIQUE regions: %d (paper: 5, third sequential)\n"
    (Baselines.Unique.n_regions u ~params:[| 12 |]);
  Printf.printf "Theorem 1: growth %g, chain bound %s\n" c.Partition.growth
    (match c.Partition.theorem_bound with
    | Some b -> string_of_int b
    | None -> "-")

(* ------------------------------------------------------------------ *)
(* E5 — Example 3                                                       *)

let ex3 () =
  section "E5 / Example 3 (Chen et al): statement-level REC";
  let u = Solve.analyze_unified Loopir.Builtin.example3 in
  let three = Threeset.compute ~phi:u.Solve.uphi ~rd:u.Solve.urd in
  Printf.printf "intermediate set empty (symbolic n): %b   (paper: empty)\n"
    (Iset.is_empty three.Threeset.p2);
  let c = Dataflow.peel_concrete Loopir.Builtin.example3 ~params:[ ("n", 40) ] in
  Printf.printf
    "exact dataflow levels at n=40: %d   (paper: two iteration time)\n"
    c.Dataflow.steps

(* ------------------------------------------------------------------ *)
(* E6 — Example 4 (Cholesky)                                            *)

let cholesky_params =
  if quick then [ ("nmat", 16); ("m", 4); ("n", 20); ("nrhs", 2) ]
  else [ ("nmat", 250); ("m", 4); ("n", 40); ("nrhs", 3) ]

let cholesky_data =
  lazy
    (let c =
       Dataflow.peel_concrete Loopir.Builtin.cholesky ~params:cholesky_params
     in
     let tr = Depend.Trace.build Loopir.Builtin.cholesky ~params:cholesky_params in
     (c, tr))

let ex4 () =
  section "E6 / Example 4: NASA Cholesky kernel, dataflow partitioning";
  Printf.printf "parameters: %s%s\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) cholesky_params))
    (if quick then "  [--quick]" else "  (paper parameters)");
  let c, tr = Lazy.force cholesky_data in
  Printf.printf "statement instances : %d\n" (Array.length c.Dataflow.instances);
  Printf.printf "dependence edges    : %d\n" (Depend.Trace.n_edges tr);
  Printf.printf "dataflow steps      : %d   (paper: 238 at paper parameters)\n"
    c.Dataflow.steps;
  (* PDM keeps the L dimension (the innermost loop of every statement)
     fully parallel. *)
  let l_of (i : Depend.Trace.instance) =
    i.Depend.Trace.iter.(Array.length i.Depend.Trace.iter - 1)
  in
  let cross = ref 0 in
  Depend.Trace.iter_edges tr (fun a b ->
      if l_of tr.Depend.Trace.instances.(a) <> l_of tr.Depend.Trace.instances.(b)
      then incr cross);
  Printf.printf "edges crossing L    : %d   (0 ⟹ the PDM L-DOALL is legal)\n"
    !cross

(* ------------------------------------------------------------------ *)
(* E7 — Figure 3: the four speedup panels                               *)

let print_panel title header rows =
  Printf.printf "\n-- %s\n" title;
  Printf.printf "threads  %s\n" header;
  List.iter
    (fun p ->
      Printf.printf "   %d    " p;
      List.iter (fun f -> Printf.printf " %6.2f" (f p)) rows;
      print_newline ())
    threads_range

let fig3_panel1 () =
  let n1, n2 = if quick then (100, 160) else (300, 1000) in
  let rp = Lazy.force ex1_plan in
  let c = Partition.materialize_rec_scan rp ~params:[| n1; n2 |] in
  let rec_a = Sim.abstract (Sched.of_rec ~stmt:0 c) in
  let points = Partition.rec_points_in_order c in
  let n_seq = List.length points in
  let a = rp.Partition.simple in
  (* Distance set straight from the recurrence maps (cheap at this scale). *)
  let in_phi x = Iset.mem a.Solve.phi (Array.append x [| n1; n2 |]) in
  let rec_map =
    Option.get
      (Core.Recurrence.of_pair rp.Partition.pair
         ~params:(function "n1" -> n1 | "n2" -> n2 | _ -> 0))
  in
  let dists =
    List.concat_map
      (fun x ->
        List.filter_map
          (fun y -> if in_phi y then Some (Linalg.Ivec.sub y x) else None)
          (Core.Recurrence.neighbors rec_map x))
      points
    |> List.filter Linalg.Ivec.is_lex_positive
    |> List.sort_uniq Linalg.Ivec.compare_lex
  in
  let pdm = Baselines.Pdm.of_distances ~dim:2 dists in
  let pl = Baselines.Pl.of_distances ~dim:2 dists in
  let pdm_a = Sim.abstract (Baselines.Pdm.schedule pdm ~stmt:0 points) in
  let pl_a = Sim.abstract (Baselines.Pl.schedule pl ~stmt:0 points) in
  print_panel
    (Printf.sprintf "panel 1: Example 1, N1=%d N2=%d (paper: REC > PDM > PL)"
       n1 n2)
    "   REC    PDM     PL  linear"
    [
      (fun p ->
        Sim.speedup_abstract
          (rec_ex1_cost ~n_seq ~phases:(List.length rec_a))
          ~threads:p ~n_seq rec_a);
      (fun p -> Sim.speedup_abstract pdm_ex1_cost ~threads:p ~n_seq pdm_a);
      (fun p -> Sim.speedup_abstract pl_ex1_cost ~threads:p ~n_seq pl_a);
      (fun p -> float_of_int p);
    ]

let fig3_panel2 () =
  let n = if quick then 100 else 300 in
  let rp = rec_plan_exn "example2" Loopir.Builtin.example2 in
  let c = Partition.materialize_rec_scan rp ~params:[| n |] in
  let rec_a = Sim.abstract (Sched.of_rec ~stmt:0 c) in
  let n_seq = n * n in
  let u =
    Baselines.Unique.partition rp.Partition.simple ~three:rp.Partition.three
  in
  let uniq_a =
    Sim.abstract (Baselines.Unique.schedule u ~stmt:0 ~params:[| n |])
  in
  print_panel
    (Printf.sprintf
       "panel 2: Example 2, N=%d (paper: REC ≥ UNIQUE, both ≥ linear at 1)"
       n)
    "   REC  UNIQUE  linear"
    [
      (fun p -> Sim.speedup_abstract rec_ex2_cost ~threads:p ~n_seq rec_a);
      (fun p -> Sim.speedup_abstract unique_ex2_cost ~threads:p ~n_seq uniq_a);
      (fun p -> float_of_int p);
    ]

let fig3_panel3 () =
  let n = if quick then 80 else 150 in
  let params = [ ("n", n) ] in
  let tr = Depend.Trace.build Loopir.Builtin.example3 ~params in
  let n_seq = Array.length tr.Depend.Trace.instances in
  let rec_a =
    Sim.abstract
      (Sched.of_fronts (Dataflow.peel_concrete Loopir.Builtin.example3 ~params))
  in
  let par_a = Sim.abstract (Baselines.Innerpar.schedule tr) in
  print_panel
    (Printf.sprintf
       "panel 3: Example 3, n=%d (paper: REC > PAR > DOACROSS; REC has 2 \
        barriers)"
       n)
    "   REC    PAR  DOACROSS  linear"
    [
      (fun p -> Sim.speedup_abstract Sim.base ~threads:p ~n_seq rec_a);
      (fun p -> Sim.speedup_abstract Sim.base ~threads:p ~n_seq par_a);
      (fun p ->
        let r =
          Baselines.Doacross.pipeline tr ~threads:p ~w_iter:Sim.base.Sim.w_iter
            ~delay_factor:0.5
        in
        Sim.seq_time Sim.base n_seq /. r.Baselines.Doacross.makespan);
      (fun p -> float_of_int p);
    ]

let fig3_panel4 () =
  let c, tr = Lazy.force cholesky_data in
  let n_seq = Array.length c.Dataflow.instances in
  let rec_a =
    List.map
      (fun front -> Sim.ADoall (List.length front))
      (Array.to_list c.Dataflow.fronts)
  in
  let per_l = Hashtbl.create 64 in
  Array.iter
    (fun (i : Depend.Trace.instance) ->
      let l = i.Depend.Trace.iter.(Array.length i.Depend.Trace.iter - 1) in
      Hashtbl.replace per_l l (1 + try Hashtbl.find per_l l with Not_found -> 0))
    tr.Depend.Trace.instances;
  let pdm_a =
    [ Sim.ATasks (Array.of_list (Hashtbl.fold (fun _ k acc -> k :: acc) per_l [])) ]
  in
  print_panel "panel 4: Cholesky (paper: REC wins ≤ 3 threads, PDM wins at 4)"
    "   REC    PDM  linear"
    [
      (fun p ->
        Sim.speedup_abstract
          (rec_ex4_cost ~n_seq ~phases:(List.length rec_a))
          ~threads:p ~n_seq rec_a);
      (fun p -> Sim.speedup_abstract pdm_ex4_cost ~threads:p ~n_seq pdm_a);
      (fun p -> float_of_int p);
    ]

let fig3 () =
  section "E7 / Figure 3: speedups on the simulated 4-CPU SMP";
  fig3_panel1 ();
  fig3_panel2 ();
  fig3_panel3 ();
  fig3_panel4 ()

(* ------------------------------------------------------------------ *)
(* E8 — Theorem 1 sweep                                                 *)

let theorem1 () =
  section "E8 / Theorem 1: measured chain length vs bound";
  Printf.printf "%-10s %-14s %-8s %-8s %s\n" "program" "params" "longest"
    "bound" "within";
  let rp1 = Lazy.force ex1_plan in
  List.iter
    (fun (n1, n2) ->
      let c = Partition.materialize_rec_scan rp1 ~params:[| n1; n2 |] in
      let b = Option.value ~default:(-1) c.Partition.theorem_bound in
      Printf.printf "%-10s %-14s %-8d %-8d %b\n" "example1"
        (Printf.sprintf "%dx%d" n1 n2)
        c.Partition.chains.Core.Chain.longest b
        (c.Partition.chains.Core.Chain.longest <= b))
    [ (10, 10); (40, 40); (100, 100); (300, 1000) ];
  let rp2 = rec_plan_exn "example2" Loopir.Builtin.example2 in
  List.iter
    (fun n ->
      let c = Partition.materialize_rec_scan rp2 ~params:[| n |] in
      let b = Option.value ~default:(-1) c.Partition.theorem_bound in
      Printf.printf "%-10s %-14s %-8d %-8d %b\n" "example2"
        (Printf.sprintf "n=%d" n)
        c.Partition.chains.Core.Chain.longest b
        (c.Partition.chains.Core.Chain.longest <= b))
    [ 12; 32; 64; 128; 256 ];
  let rp =
    rec_plan_exn "stretch1d"
      (Loopir.Parser.parse ~name:"q" "DO i = 1, 4000\n  a(3*i + 1) = a(2*i)\nENDDO")
  in
  let c = Partition.materialize_rec rp ~params:[||] in
  let b = Option.value ~default:(-1) c.Partition.theorem_bound in
  Printf.printf "%-10s %-14s %-8d %-8d %b   (growth 3/2)\n" "stretch1d"
    "n=4000" c.Partition.chains.Core.Chain.longest b
    (c.Partition.chains.Core.Chain.longest <= b)

(* ------------------------------------------------------------------ *)
(* E9 — corpus survey                                                   *)

let corpus () =
  section "E9 / survey methodology: corpus classification";
  let default_n = 10 in
  let stats = ref (0, 0, 0) in
  List.iter
    (fun (name, prog) ->
      match Solve.analyze_simple prog with
      | a ->
          let params = Array.map (fun _ -> default_n) a.Solve.params in
          let cls =
            Depend.Distance.classify a.Solve.rd ~phi:a.Solve.phi ~params
          in
          let coupled =
            List.exists Depend.Distance.has_coupled_subscripts
              (Loopir.Prog.stmts_of prog)
          in
          let t, nu, cp = !stats in
          stats :=
            ( t + 1,
              (nu + if cls = Depend.Distance.Non_uniform then 1 else 0),
              (cp + if coupled then 1 else 0) );
          Printf.printf "  %-20s %-12s coupled=%b\n" name
            (Depend.Distance.class_to_string cls)
            coupled
      | exception _ -> ())
    Loopir.Builtin.corpus;
  let t, nu, cp = !stats in
  Printf.printf
    "non-uniform: %d/%d (%.0f%%)  coupled: %d/%d   (paper: 46%% of SPECfp95 \
     nests non-uniform — methodology reproduction, synthetic corpus)\n"
    nu t
    (100.0 *. float_of_int nu /. float_of_int t)
    cp t

(* ------------------------------------------------------------------ *)
(* Ablations: what the design choices buy                               *)

let ablation () =
  section "ablations (design-choice studies, DESIGN.md §5)";

  (* 1. Exact (Omega) vs classical conservative dependence tests on random
     single-dimension equations: how often exactness proves independence
     that GCD/Banerjee miss. *)
  let rng = Random.State.make [| 20040815 |] in
  let n_eq = 2000 in
  let gcd_fp = ref 0 and ban_fp = ref 0 and comb_fp = ref 0 in
  let independent = ref 0 in
  for _ = 1 to n_eq do
    let m = 1 + Random.State.int rng 3 in
    let coef () = Random.State.int rng 9 - 4 in
    let eq =
      {
        Depend.Dtests.a = Array.init m (fun _ -> coef ());
        b = Array.init m (fun _ -> coef ());
        c = Random.State.int rng 61 - 30;
        lo = Array.make m 1;
        hi = Array.init m (fun _ -> 1 + Random.State.int rng 8);
      }
    in
    match (try Some (Depend.Dtests.exact eq) with Presburger.Omega.Blowup _ -> None) with
    | None | Some Depend.Dtests.Maybe_dependent -> ()
    | Some Depend.Dtests.Independent ->
        incr independent;
        if Depend.Dtests.gcd_test eq <> Depend.Dtests.Independent then
          incr gcd_fp;
        if Depend.Dtests.banerjee_test eq <> Depend.Dtests.Independent then
          incr ban_fp;
        if Depend.Dtests.combined eq <> Depend.Dtests.Independent then
          incr comb_fp
  done;
  Printf.printf
    "A1 exactness: of %d random equations, %d are independent;\n\
    \    conservative tests miss: GCD %d, Banerjee %d, GCD+Banerjee %d\n\
    \    (the misses are where the paper's exact-solution approach finds\n\
    \     parallelism that classical tests cannot)\n"
    n_eq !independent !gcd_fp !ban_fp !comb_fp;

  (* 2. Barrier structure per scheme on Example 2 (N=64): phases = barrier
     count, plus the largest sequential task (critical path inside a
     phase). *)
  (let rp = rec_plan_exn "example2" Loopir.Builtin.example2 in
      let n = 64 in
      let c = Partition.materialize_rec_scan rp ~params:[| n |] in
      let rec_sched = Sched.of_rec ~stmt:0 c in
      let a = rp.Partition.simple in
      let pts =
        Depend.Scan.iter_space a.Solve.stmt ~params:[ ("n", n) ]
      in
      let pdm = Baselines.Pdm.of_simple a ~params:[| n |] in
      let pdm_sched = Baselines.Pdm.schedule pdm ~stmt:0 pts in
      let md = Baselines.Mindist.of_simple a ~params:[| n |] in
      let md_sched = Baselines.Mindist.schedule md ~stmt:0 pts in
      let u = Baselines.Unique.partition a ~three:rp.Partition.three in
      let u_sched = Baselines.Unique.schedule u ~stmt:0 ~params:[| n |] in
      let longest_task s =
        List.fold_left
          (fun acc ph ->
            match ph with
            | Sched.Doall _ -> max acc 1
            | Sched.Tasks { tasks; _ } ->
                Array.fold_left (fun a t -> max a (Array.length t)) acc tasks)
          0 s.Sched.phases
      in
      Printf.printf
        "A2 schedule structure on Example 2 (N=%d, %d iterations):\n" n (n * n);
      Printf.printf "    %-10s %8s %18s\n" "scheme" "barriers" "longest seq task";
      List.iter
        (fun (name, s) ->
          Printf.printf "    %-10s %8d %18d\n" name (Sched.n_phases s)
            (longest_task s))
        [
          ("REC", rec_sched);
          ("UNIQUE", u_sched);
          ("PDM", pdm_sched);
          ("MINDIST", md_sched);
        ]);

  (* 3. Redundancy elimination: disjunct counts of P1 with and without
     simplification (raw difference vs simplified). *)
  let a = Solve.analyze_simple Loopir.Builtin.example1 in
  let iters = Array.sub (Iset.names a.Solve.phi) 0 (Iset.n_iters a.Solve.phi) in
  let params = a.Solve.params in
  let ran =
    Iset.make ~iters ~params (Iset.polys (Rel.ran a.Solve.rd))
  in
  let raw = Iset.diff a.Solve.phi ran in
  let simplified =
    try Iset.simplify ~aggressive:true raw
    with Presburger.Omega.Blowup _ -> Iset.simplify raw
  in
  let constr_count s =
    List.fold_left
      (fun acc p -> acc + List.length (Presburger.Poly.constraints p))
      0 (Iset.polys s)
  in
  Printf.printf
    "A3 simplification (Example 1 P1, symbolic): %d disjuncts / %d \
     constraints raw -> %d / %d simplified\n"
    (List.length (Iset.polys raw))
    (constr_count raw)
    (List.length (Iset.polys simplified))
    (constr_count simplified)

(* ------------------------------------------------------------------ *)
(* E10 — pipeline reports → BENCH_pipeline.json                         *)

(* Helpers for the per-run observability blocks of BENCH_pipeline.json. *)
let stages_json (r : Pipeline.Report.t) =
  Pipeline.Json.Obj
    (List.map
       (fun (label, s) -> (label, Pipeline.Json.Float s))
       r.Pipeline.Report.timings)

let phase_profile_json (r : Pipeline.Report.t) =
  Pipeline.Json.List
    (List.map
       (fun (p : Pipeline.Report.phase_profile) ->
         Pipeline.Json.Obj
           [
             ("label", Pipeline.Json.Str p.Pipeline.Report.label);
             ("instances", Pipeline.Json.Int p.Pipeline.Report.instances);
             ("units", Pipeline.Json.Int p.Pipeline.Report.units);
             ("seconds", Pipeline.Json.Float p.Pipeline.Report.seconds);
             ( "alloc_words",
               Pipeline.Json.Float p.Pipeline.Report.alloc_words );
           ])
       r.Pipeline.Report.phases)

let gc_json (r : Pipeline.Report.t) =
  Pipeline.Json.Obj
    (List.map
       (fun (stage, g) ->
         ( stage,
           Pipeline.Json.Obj
             [
               ( "allocated_words",
                 Pipeline.Json.Float (Obs.Gcstats.allocated_words g) );
               ( "minor_collections",
                 Pipeline.Json.Int g.Obs.Gcstats.minor_collections );
               ( "major_collections",
                 Pipeline.Json.Int g.Obs.Gcstats.major_collections );
             ] ))
       r.Pipeline.Report.gc)

let metrics_json (m : Obs.Metrics.t) =
  (* The steal/caller-run split of the worker pool depends on which domain
     wins the queue race at t > 1 — drop it from the emitted (and
     therefore gated) counters so the committed baseline cannot flake.
     The total `runtime.workers.jobs` is deterministic and stays. *)
  let m =
    Obs.Metrics.filter
      (fun name ->
        name <> "runtime.workers.jobs_stolen"
        && name <> "runtime.workers.jobs_caller")
      m
  in
  Pipeline.Json.Obj
    [
      ( "counters",
        Pipeline.Json.Obj
          (List.map
             (fun (n, v) -> (n, Pipeline.Json.Int v))
             m.Obs.Metrics.counters) );
      ( "histograms",
        Pipeline.Json.Obj
          (List.map
             (fun (n, (h : Obs.Histogram.snap)) ->
               ( n,
                 Pipeline.Json.Obj
                   [
                     ("count", Pipeline.Json.Int h.Obs.Histogram.count);
                     ("sum", Pipeline.Json.Int h.Obs.Histogram.sum);
                     ( "buckets",
                       Pipeline.Json.List
                         (List.map
                            (fun (le, c) ->
                              Pipeline.Json.Obj
                                [
                                  ("le", Pipeline.Json.Int le);
                                  ("count", Pipeline.Json.Int c);
                                ])
                            h.Obs.Histogram.buckets) );
                   ] ))
             m.Obs.Metrics.histograms) );
    ]

(* E13 — analyze-stage memoization: cold vs memo-warm classification over
   the builtin corpus, per worker-pool size.  The memo tables are cleared
   before the cold pass, so "cold" really recomputes every set-algebra
   result and "warm" answers from the {!Presburger.Hc} tables.  Timings
   (and the hit counts, which depend on scheduling at t > 1) are plain
   fields; the gate-checked counters are only emitted for the t = 1 run,
   where sequential execution makes omega call counts and memo miss counts
   exactly reproducible. *)
let analyze_entry () =
  let corpus =
    [
      ("example1", Loopir.Builtin.example1);
      ("fig2", Loopir.Builtin.fig2);
      ("example2", Loopir.Builtin.example2);
      ("example3", Loopir.Builtin.example3);
    ]
  in
  Printf.printf
    "  analyze-stage memoization (classify over %d nests, cold vs warm):\n"
    (List.length corpus);
  Printf.printf "  domains    cold s     warm s  speedup  warm hits/misses\n";
  let omega_calls (m : Obs.Metrics.t) =
    List.fold_left
      (fun acc (name, v) ->
        match name with
        | "omega.eliminate_calls" | "omega.project_out_calls"
        | "omega.is_empty_calls" ->
            acc + v
        | _ -> acc)
      0 m.Obs.Metrics.counters
  in
  let runs =
    List.map
      (fun domains ->
        let pool = Runtime.Workers.create ~domains in
        Runtime.Workers.install_dnf_runner pool;
        (* cold-run isolation: zero every registry (and clear the memo
           tables) so counts accumulated by earlier sections or pool
           sizes cannot leak into this run's diffs *)
        Obs.Metrics.reset_all ();
        Presburger.Hc.clear_all ();
        let pass () =
          let before = Obs.Metrics.snapshot () in
          let t0 = Obs.Clock.now_ns () in
          List.iter
            (fun (name, prog) ->
              match Pipeline.Driver.classify prog with
              | Ok _ -> ()
              | Error e ->
                  failwith
                    (Printf.sprintf "analyze bench: %s: %s" name
                       (Diag.to_string e)))
            corpus;
          let dt = Obs.Clock.elapsed_s t0 in
          (dt, Obs.Metrics.diff ~before ~after:(Obs.Metrics.snapshot ()))
        in
        let m0 = Presburger.Hc.totals () in
        let cold_s, cold_m = pass () in
        let m1 = Presburger.Hc.totals () in
        let warm_s, warm_m = pass () in
        let m2 = Presburger.Hc.totals () in
        Runtime.Workers.uninstall_dnf_runner ();
        Runtime.Workers.shutdown pool;
        let open Presburger.Hc in
        let cold_hits = m1.hits - m0.hits
        and cold_misses = m1.misses - m0.misses
        and warm_hits = m2.hits - m1.hits
        and warm_misses = m2.misses - m1.misses in
        Printf.printf "     %d    %8.4f   %8.4f   %5.1fx  %d/%d\n" domains
          cold_s warm_s (cold_s /. warm_s) warm_hits warm_misses;
        let gated =
          if domains <> 1 then []
          else
            [
              ("omega_calls_cold", Pipeline.Json.Int (omega_calls cold_m));
              ("omega_calls_warm", Pipeline.Json.Int (omega_calls warm_m));
              ("memo_misses_cold", Pipeline.Json.Int cold_misses);
              ("memo_misses_warm", Pipeline.Json.Int warm_misses);
            ]
        in
        ( cold_s /. warm_s,
          Pipeline.Json.Obj
            [
              ("threads", Pipeline.Json.Int domains);
              ("cold_seconds", Pipeline.Json.Float cold_s);
              ("warm_seconds", Pipeline.Json.Float warm_s);
              ("warm_speedup", Pipeline.Json.Float (cold_s /. warm_s));
              ("memo_hits_cold", Pipeline.Json.Int cold_hits);
              ("memo_hits_warm", Pipeline.Json.Int warm_hits);
              ( "metrics",
                Pipeline.Json.Obj [ ("counters", Pipeline.Json.Obj gated) ] );
            ] ))
      [ 1; 2; 4 ]
  in
  let worst = List.fold_left (fun m (s, _) -> min m s) infinity runs in
  Printf.printf "  memo-warm analyze speedup (worst over pool sizes): %.1fx%s\n"
    worst
    (if worst >= 2.0 then "" else "  (below the 2x target!)");
  Pipeline.Json.Obj
    [
      ("program", Pipeline.Json.Str "analyze-memo");
      ("runs", Pipeline.Json.List (List.map snd runs));
    ]

(* The E10/E14 program set: the paper's examples plus a tiled kernel. *)
let builtin_corpus sc =
  [
    ("example1", Loopir.Builtin.example1,
     [ ("n1", 30 * sc); ("n2", 50 * sc) ]);
    ("fig2", Loopir.Builtin.fig2, []);
    ("example2", Loopir.Builtin.example2, [ ("n", 32 * sc) ]);
    ("example3", Loopir.Builtin.example3, [ ("n", 24 * sc) ]);
    ("cholesky", Loopir.Builtin.cholesky,
     [ ("nmat", 8 * sc); ("m", 4); ("n", 10 * sc); ("nrhs", 2) ]);
  ]

(* E14 — predicted-vs-actual cost-model accounting: run the corpus at
   t = 1 with the uncalibrated default cost, fit the constants from those
   measured phases ({!Runtime.Sim.calibrate}), re-run with the calibrated
   cost, and record the mean total relative error before and after.  Only
   the post-calibration error is gated (as an integer percentage): the
   default-cost error says nothing about regressions, but the calibrated
   model drifting away from the executor does.  t = 1 keeps the phase
   walls free of scheduling noise. *)
let prediction_entry () =
  section "E14 / cost-model prediction error (before vs after calibration)";
  let sc = if quick then 1 else 2 in
  let programs = builtin_corpus sc in
  let run_one ?cost (name, prog, params) =
    let options =
      { Pipeline.Driver.default_options with threads = 1; sim_cost = cost }
    in
    match Pipeline.Driver.run ~options ~name ~params prog with
    | Error e ->
        Printf.printf "  %s: %s\n" name (Pipeline.Driver.error_to_string e);
        None
    | Ok o -> (
        match o.Pipeline.Driver.report.Pipeline.Report.prediction with
        | Some p ->
            Option.map
              (fun e -> (name, e, o))
              p.Pipeline.Report.rel_error
        | None -> None)
  in
  let samples_of o =
    let r = o.Pipeline.Driver.report in
    match o.Pipeline.Driver.sched with
    | None -> []
    | Some s ->
        let shapes = Runtime.Sim.abstract s in
        let phases = r.Pipeline.Report.phases in
        if List.length shapes <> List.length phases then []
        else
          List.map2
            (fun shape (p : Pipeline.Report.phase_profile) ->
              {
                Runtime.Sim.s_threads = 1;
                s_shape = shape;
                s_busy = p.Pipeline.Report.busy_seconds;
                s_wall = p.Pipeline.Report.seconds;
              })
            shapes phases
  in
  let mean = function
    | [] -> 0.0
    | l ->
        List.fold_left (fun a (_, e, _) -> a +. e) 0.0 l
        /. float_of_int (List.length l)
  in
  let pre = List.filter_map (fun p -> run_one p) programs in
  let samples = List.concat_map (fun (_, _, o) -> samples_of o) pre in
  let post =
    match Runtime.Sim.calibrate samples with
    | None ->
        Printf.printf "  calibration failed: no measured work in corpus\n";
        []
    | Some cost ->
        (* Best-of-3 per program: the phases are microseconds-short at
           bench sizes, so a single unlucky scheduling hiccup would move
           the gated error counter. *)
        let passes =
          List.init 3 (fun _ ->
              List.filter_map (fun p -> run_one ~cost p) programs)
        in
        List.filter_map
          (fun (name, _, _) ->
            let best =
              List.fold_left
                (fun acc pass ->
                  match
                    List.find_map
                      (fun (n, e, o) ->
                        if n = name then Some (e, o) else None)
                      pass
                  with
                  | Some (e, o) -> (
                      match acc with
                      | Some (e0, _) when e0 <= e -> acc
                      | _ -> Some (e, o))
                  | None -> acc)
                None passes
            in
            Option.map (fun (e, o) -> (name, e, o)) best)
          (List.hd passes)
  in
  Printf.printf "  %-10s %12s %12s\n" "program" "pre" "post";
  List.iter
    (fun (name, e_pre, _) ->
      let e_post =
        List.find_map
          (fun (n, e, _) -> if n = name then Some e else None)
          post
      in
      Printf.printf "  %-10s %12.2f %12s\n" name e_pre
        (match e_post with
        | Some e -> Printf.sprintf "%.2f" e
        | None -> "-"))
    pre;
  let mean_pre = mean pre and mean_post = mean post in
  Printf.printf
    "  mean total rel error: %.2f uncalibrated, %.2f calibrated%s\n" mean_pre
    mean_post
    (if post = [] || mean_post <= 0.5 then ""
     else "  (above the 0.5 target!)");
  let run_json =
    Pipeline.Json.Obj
      [
        ("threads", Pipeline.Json.Int 1);
        ("rel_error_pre", Pipeline.Json.Float mean_pre);
        ("rel_error_post", Pipeline.Json.Float mean_post);
        ( "per_program",
          Pipeline.Json.List
            (List.map
               (fun (name, e, _) ->
                 Pipeline.Json.Obj
                   [
                     ("program", Pipeline.Json.Str name);
                     ("rel_error_post", Pipeline.Json.Float e);
                   ])
               post) );
        ( "metrics",
          Pipeline.Json.Obj
            [
              ( "counters",
                Pipeline.Json.Obj
                  [
                    (* Clamped below at the 50% acceptance target: the raw
                       mean swings 2x between runs at bench sizes (exact
                       value in rel_error_post above), so gating it would
                       chase noise.  Anything under target reads as 50;
                       the gate fires only when calibration stops meeting
                       the paper target by a margin. *)
                    ( "prediction_rel_error_pct_post",
                      Pipeline.Json.Int
                        (max 50
                           (int_of_float (Float.round (mean_post *. 100.0))))
                    );
                    ( "programs_predicted",
                      Pipeline.Json.Int (List.length pre) );
                  ] );
            ] );
      ]
  in
  Pipeline.Json.Obj
    [
      ("program", Pipeline.Json.Str "prediction-error");
      ("runs", Pipeline.Json.List [ run_json ]);
    ]

let pipeline_json () =
  section "E10 / pipeline reports: BENCH_pipeline.json";
  let sc = if quick then 1 else 2 in
  let programs = builtin_corpus sc in
  let thread_counts = [ 1; 2; 4 ] in
  (* One recording sink across the whole section: the resulting
     BENCH_trace.json shows every program × thread-count run end to end. *)
  let sink = Obs.Sink.make () in
  let entries =
    List.filter_map
      (fun (name, prog, params) ->
        let runs =
          List.filter_map
            (fun threads ->
              let options =
                { Pipeline.Driver.default_options with threads; sink }
              in
              let name = Printf.sprintf "%s@t%d" name threads in
              match Pipeline.Driver.run ~options ~name ~params prog with
              | Ok o -> Some (threads, o.Pipeline.Driver.report)
              | Error e ->
                  Printf.printf "  %s (t=%d): %s\n" name threads
                    (Pipeline.Driver.error_to_string e);
                  None)
            thread_counts
        in
        match runs with
        | [] -> None
        | (_, r0) :: _ ->
            let open Pipeline in
            Printf.printf "  %-10s %-9s %s\n" name r0.Report.strategy
              (String.concat "  "
                 (List.map
                    (fun (t, r) ->
                      Printf.sprintf "t=%d %s/%s" t
                        (Report.check_result_string r.Report.legality)
                        (Report.check_result_string r.Report.semantics))
                    runs));
            Some
              (Json.Obj
                 [
                   ("program", Json.Str name);
                   ( "params",
                     Json.Obj
                       (List.map (fun (k, v) -> (k, Json.Int v)) params) );
                   ("strategy", Json.Str r0.Report.strategy);
                   ( "phases",
                     match r0.Report.n_phases with
                     | Some n -> Json.Int n
                     | None -> Json.Null );
                   ( "instances",
                     match r0.Report.n_instances with
                     | Some n -> Json.Int n
                     | None -> Json.Null );
                   ( "runs",
                     Json.List
                       (List.map
                          (fun (t, r) ->
                            Json.Obj
                              [
                                ("threads", Json.Int t);
                                ( "seq_seconds",
                                  match r.Report.seq_seconds with
                                  | Some s -> Json.Float s
                                  | None -> Json.Null );
                                ( "par_seconds",
                                  match r.Report.par_seconds with
                                  | Some s -> Json.Float s
                                  | None -> Json.Null );
                                ( "legality",
                                  Json.Str
                                    (Report.check_result_string
                                       r.Report.legality) );
                                ( "semantics",
                                  Json.Str
                                    (Report.check_result_string
                                       r.Report.semantics) );
                                ("stages", stages_json r);
                                ("phase_profile", phase_profile_json r);
                                ("gc", gc_json r);
                                ( "idle_fraction",
                                  match r.Report.balance with
                                  | Some b ->
                                      Json.Float b.Report.idle_fraction
                                  | None -> Json.Null );
                                ( "metrics",
                                  match r.Report.metrics with
                                  | Some m -> metrics_json m
                                  | None -> Json.Null );
                              ])
                          runs) );
                 ]))
      programs
  in
  let entries = entries @ [ analyze_entry (); prediction_entry () ] in
  let doc =
    Pipeline.Json.Obj
      [
        (* v2 = v1 plus the "analyze-memo" entry; the E14
           "prediction-error" entry reads the same way, so the version
           stays. *)
        ("schema_version", Pipeline.Json.Int 2);
        ("entries", Pipeline.Json.List entries);
      ]
  in
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc (Pipeline.Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_pipeline.json (%d programs)\n" (List.length entries);
  let oc = open_out "BENCH_trace.json" in
  output_string oc (Obs.Trace.to_chrome_json ~process:"bench" sink);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_trace.json (%d spans)\n"
    (List.length (Obs.Sink.spans sink));
  doc

(* ------------------------------------------------------------------ *)
(* E15 — socket service under concurrent clients → BENCH_service.json   *)

(* The network front-end end to end: a real server on a Unix socket, 4
   concurrent pipelined clients replaying a corpus, three phases — cold
   (fresh process, empty store), memo-warm (same process, replay) and
   disk-warm (restarted process on the same store directory, primed by
   one sequential pass over the distinct keys).  Wall times and
   latencies are machine-dependent plain fields; the deterministic facts
   — response counts, warm hits, disk-warm hits, store reads, shed = 0
   at this (nominal) load — are the gated counters. *)
let socket_bench () =
  section
    "E15 / socket service: 4 concurrent clients, cold vs memo-warm vs \
     disk-warm";
  let clients = 4 in
  let reps = if quick then 1 else 3 in
  (* 33 distinct keys (>= the gate's count floor), duplicated
     [reps * clients] times across the phase *)
  let base =
    List.concat
      (List.init 11 (fun v ->
           [
             Svc.Proto.request
               ~id:(Printf.sprintf "e1-%d" v)
               ~name:"example1"
               ~params:[ ("n1", 8 + v); ("n2", 12 + v) ]
               (Svc.Proto.Prog Loopir.Builtin.example1);
             Svc.Proto.request
               ~id:(Printf.sprintf "e2-%d" v)
               ~name:"example2"
               ~params:[ ("n", 10 + v) ]
               (Svc.Proto.Prog Loopir.Builtin.example2);
             Svc.Proto.request
               ~id:(Printf.sprintf "e3-%d" v)
               ~name:"example3"
               ~params:[ ("n", 6 + v) ]
               (Svc.Proto.Prog Loopir.Builtin.example3);
           ]))
  in
  let distinct = List.length base in
  let corpus = List.concat (List.init reps (fun _ -> base)) in
  let l = List.length corpus in
  let to_line r = Pipeline.Json.to_string (Svc.Proto.request_to_json r) in
  let lines = List.map to_line corpus in
  let base_lines = List.map to_line base in
  let tmp = Filename.get_temp_dir_name () in
  let store_dir =
    Filename.concat tmp (Printf.sprintf "recpart-bench-store-%d" (Unix.getpid ()))
  in
  (* a fresh store: a leftover from an earlier run must not pre-warm the
     cold phase *)
  if Sys.file_exists store_dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat store_dir f))
      (Sys.readdir store_dir);
    Unix.rmdir store_dir
  end;
  let sock =
    Filename.concat tmp (Printf.sprintf "recpart-bench-%d.sock" (Unix.getpid ()))
  in
  let addr = Net.Addr.Unix_sock sock in
  let config =
    {
      Svc.Service.default_config with
      domains = 4;
      threads = 1;
      check = false;
      measure = false;
      (* nominal load: every pipelined request fits, shed must be 0 *)
      queue_capacity = (clients * l) + distinct + 8;
      store_dir = Some store_dir;
    }
  in
  (* one phase: [n] clients, each pipelining [job_lines] and then
     draining the responses; returns wall seconds and response tallies *)
  let run_phase ~n job_lines =
    let oks = Array.make n 0
    and cached = Array.make n 0
    and shed = Array.make n 0
    and errs = Array.make n 0 in
    let worker i =
      match Net.Client.connect addr with
      | Error e -> Printf.eprintf "bench client %d: %s\n" i e
      | Ok c ->
          List.iter
            (fun line ->
              match Net.Client.send c line with
              | Ok () -> ()
              | Error e -> Printf.eprintf "bench client %d: %s\n" i e)
            job_lines;
          List.iter
            (fun _ ->
              match Net.Client.recv c with
              | Error e -> Printf.eprintf "bench client %d: %s\n" i e
              | Ok resp -> (
                  match Pipeline.Json.parse resp with
                  | Error _ -> errs.(i) <- errs.(i) + 1
                  | Ok j ->
                      let str k =
                        match Pipeline.Json.member k j with
                        | Some (Pipeline.Json.Str s) -> s
                        | _ -> ""
                      in
                      let is_cached =
                        match Pipeline.Json.member "cached" j with
                        | Some (Pipeline.Json.Bool b) -> b
                        | _ -> false
                      in
                      if str "status" = "ok" then begin
                        oks.(i) <- oks.(i) + 1;
                        if is_cached then cached.(i) <- cached.(i) + 1
                      end
                      else if str "kind" = "overloaded" then
                        shed.(i) <- shed.(i) + 1
                      else errs.(i) <- errs.(i) + 1))
            job_lines;
          Net.Client.close c
    in
    let t0 = Obs.Clock.now_ns () in
    let threads = List.init n (fun i -> Thread.create worker i) in
    List.iter Thread.join threads;
    let sum a = Array.fold_left ( + ) 0 a in
    (Obs.Clock.elapsed_s t0, sum oks, sum cached, sum shed, sum errs)
  in
  let counter name m =
    Option.value ~default:0 (List.assoc_opt name m.Obs.Metrics.counters)
  in
  let latency ~before ~after =
    let d = Obs.Metrics.diff ~before ~after in
    match List.assoc_opt "svc.request.latency_us" d.Obs.Metrics.histograms with
    | Some h ->
        (Obs.Histogram.percentile h 0.5, Obs.Histogram.percentile h 0.99)
    | None -> (0.0, 0.0)
  in
  Printf.printf
    "corpus: %d requests/client (%d distinct keys), %d clients\n" l distinct
    clients;
  (* ---- process #1: cold, then memo-warm ---- *)
  let svc = Svc.Service.create ~config () in
  let server = Net.Server.start svc addr in
  let m0 = Obs.Metrics.snapshot () in
  let cold_s, cold_ok, cold_cached, cold_shed, cold_err =
    run_phase ~n:clients lines
  in
  let m1 = Obs.Metrics.snapshot () in
  let warm_s, warm_ok, warm_cached, warm_shed, warm_err =
    run_phase ~n:clients lines
  in
  let m2 = Obs.Metrics.snapshot () in
  Net.Server.stop server;
  Svc.Service.shutdown svc;
  (* ---- process #2: same store directory, cold memory ---- *)
  let svc2 = Svc.Service.create ~config () in
  let server2 = Net.Server.start svc2 addr in
  let m3 = Obs.Metrics.snapshot () in
  let prime_s, prime_ok, prime_cached, prime_shed, prime_err =
    run_phase ~n:1 base_lines
  in
  let m4 = Obs.Metrics.snapshot () in
  let disk_s, disk_ok, disk_cached, disk_shed, disk_err =
    run_phase ~n:clients lines
  in
  let m5 = Obs.Metrics.snapshot () in
  Net.Server.stop server2;
  Svc.Service.shutdown svc2;
  let store_reads = counter "svc.store.hits" m4 - counter "svc.store.hits" m3 in
  let cold_p50, cold_p99 = latency ~before:m0 ~after:m1 in
  let warm_p50, warm_p99 = latency ~before:m1 ~after:m2 in
  let disk_p50, disk_p99 = latency ~before:m4 ~after:m5 in
  let expect = clients * l in
  let report name s ok cached shed err p50 p99 =
    Printf.printf
      "%-10s %7.3fs  %8.0f req/s  p50/p99 %5.0f/%5.0f us  ok=%d cached=%d \
       shed=%d%s\n"
      name s
      (float_of_int ok /. s)
      p50 p99 ok cached shed
      (if err = 0 then "" else Printf.sprintf "  (%d errors!)" err)
  in
  report "cold" cold_s cold_ok cold_cached cold_shed cold_err cold_p50
    cold_p99;
  report "memo-warm" warm_s warm_ok warm_cached warm_shed warm_err warm_p50
    warm_p99;
  Printf.printf
    "restart    (same --store-dir: %d keys primed from disk in %.3fs, \
     cached=%d shed=%d%s)\n"
    store_reads prime_s prime_cached prime_shed
    (if prime_err = 0 then "" else Printf.sprintf ", %d errors!" prime_err);
  report "disk-warm" disk_s disk_ok disk_cached disk_shed disk_err disk_p50
    disk_p99;
  if cold_ok <> expect || warm_ok <> expect || disk_ok <> expect then
    Printf.printf "WARNING: expected %d ok responses per phase\n" expect;
  let phase name ~seconds ~ok ~shed ~errors ~p50 ~p99 ~counters =
    Pipeline.Json.Obj
      [
        ("program", Pipeline.Json.Str name);
        ( "runs",
          Pipeline.Json.List
            [
              Pipeline.Json.Obj
                [
                  ("threads", Pipeline.Json.Int clients);
                  ("requests", Pipeline.Json.Int ok);
                  ("errors", Pipeline.Json.Int errors);
                  ("seconds", Pipeline.Json.Float seconds);
                  ( "requests_per_s",
                    Pipeline.Json.Float (float_of_int ok /. seconds) );
                  ("latency_p50_us", Pipeline.Json.Float p50);
                  ("latency_p99_us", Pipeline.Json.Float p99);
                  ("shed", Pipeline.Json.Int shed);
                  ( "metrics",
                    Pipeline.Json.Obj
                      [
                        ( "counters",
                          Pipeline.Json.Obj
                            (List.map
                               (fun (k, v) -> (k, Pipeline.Json.Int v))
                               counters) );
                      ] );
                ];
            ] );
      ]
  in
  [
    phase "svc-socket-cold" ~seconds:cold_s ~ok:cold_ok ~shed:cold_shed
      ~errors:cold_err ~p50:cold_p50 ~p99:cold_p99
      ~counters:[ ("responses", cold_ok); ("shed", cold_shed) ];
    phase "svc-socket-warm" ~seconds:warm_s ~ok:warm_ok ~shed:warm_shed
      ~errors:warm_err ~p50:warm_p50 ~p99:warm_p99
      ~counters:
        [
          ("responses", warm_ok);
          ("warm_hits", warm_cached);
          ("shed", warm_shed);
        ];
    phase "svc-socket-disk" ~seconds:disk_s ~ok:(prime_ok + disk_ok)
      ~shed:(prime_shed + disk_shed) ~errors:(prime_err + disk_err)
      ~p50:disk_p50 ~p99:disk_p99
      ~counters:
        [
          ("responses", prime_ok + disk_ok);
          ("disk_warm_hits", prime_cached);
          ("store_reads", store_reads);
          ("warm_hits", disk_cached);
          ("shed", prime_shed + disk_shed);
        ];
  ]

(* ------------------------------------------------------------------ *)
(* E11 — analysis service throughput → BENCH_service.json               *)

(* Cold vs warm cache over a duplicate-heavy corpus, per domain count.
   Timings are recorded as plain fields (they are machine-dependent);
   only the deterministic facts — request count and warm-cache hits —
   go into the gate-checked "metrics"/"counters" block, so a committed
   BENCH_service.json baseline gates cache behavior, not wall time. *)
let service_bench () =
  section "E11 / analysis service: BENCH_service.json (cold vs warm cache)";
  let copies = if quick then 8 else 25 in
  let base =
    [
      ("example1", Loopir.Builtin.example1, [ ("n1", 12); ("n2", 16) ]);
      ("fig2", Loopir.Builtin.fig2, []);
      ("example2", Loopir.Builtin.example2, [ ("n", 16) ]);
      ("example3", Loopir.Builtin.example3, [ ("n", 10) ]);
    ]
  in
  let corpus =
    List.concat
      (List.init copies (fun k ->
           List.map
             (fun (name, prog, params) ->
               Svc.Proto.request
                 ~id:(Printf.sprintf "%s#%d" name k)
                 ~name ~params (Svc.Proto.Prog prog))
             base))
  in
  let n = List.length corpus in
  Printf.printf "corpus: %d requests over %d distinct nests\n" n
    (List.length base);
  Printf.printf
    "domains   cold s  cold req/s    warm s  warm req/s  speedup  warm hits\n";
  let runs =
    List.map
      (fun domains ->
        let config =
          {
            Svc.Service.default_config with
            domains;
            threads = 1;
            check = false;
            measure = false;
            cache_capacity = 64;
          }
        in
        (* cold-run isolation: the latency histograms and cache/memo
           counters must reflect only this domain count's passes *)
        Obs.Metrics.reset_all ();
        let svc = Svc.Service.create ~config () in
        let time f =
          let t0 = Obs.Clock.now_ns () in
          let r = f () in
          (Obs.Clock.elapsed_s t0, r)
        in
        let cold_s, cold = time (fun () -> Svc.Service.batch svc corpus) in
        let mid = Svc.Service.cache_stats svc in
        let mid_m = Obs.Metrics.snapshot () in
        let warm_s, warm = time (fun () -> Svc.Service.batch svc corpus) in
        let stop = Svc.Service.cache_stats svc in
        let warm_m =
          Obs.Metrics.diff ~before:mid_m ~after:(Obs.Metrics.snapshot ())
        in
        (* more warm passes with the flight recorder on vs off, to expose
           the always-on telemetry overhead (plain info, not gated); one
           warm pass is ~1ms of mostly pool-wakeup jitter, so amplify to
           a 4x corpus, alternate on/off within each round so machine
           drift hits both arms equally, and take the best of 10 *)
        let big = corpus @ corpus @ corpus @ corpus in
        (* Batch wall time is pool-wakeup-jitter heavy, so a min-of-N
           per arm still swings several percent run to run.  Instead:
           in each round run both arms back to back (order swapped every
           round so neither arm always pays the first-position penalty)
           and keep the round's on/off ratio — adjacent-in-time pairs
           cancel machine drift, and the median over rounds discards the
           jitter tails that a min cannot. *)
        let rounds = 21 in
        let reps = 5 in
        let on_s = ref infinity and off_s = ref infinity in
        let arm cell setup =
          setup ();
          let s =
            fst
              (time (fun () ->
                   for _ = 1 to reps do
                     ignore (Svc.Service.batch svc big)
                   done))
            /. float_of_int reps
          in
          cell := min !cell s;
          s
        in
        let on () = arm on_s (fun () -> Obs.Flight.enable ()) in
        let off () = arm off_s (fun () -> Obs.Flight.disable ()) in
        let ratios =
          List.init rounds (fun i ->
              if i land 1 = 0 then
                let a = on () in
                let b = off () in
                a /. b
              else
                let b = off () in
                let a = on () in
                a /. b)
        in
        let median =
          List.nth (List.sort compare ratios) (rounds / 2)
        in
        let on_s = !on_s and off_s = !off_s in
        Obs.Flight.enable ();
        Svc.Service.shutdown svc;
        let lat_p50, lat_p99 =
          match
            List.assoc_opt "svc.request.latency_us"
              warm_m.Obs.Metrics.histograms
          with
          | Some h ->
              ( Obs.Histogram.percentile h 0.5,
                Obs.Histogram.percentile h 0.99 )
          | None -> (0.0, 0.0)
        in
        let flight_overhead_pct = (median -. 1.0) *. 100.0 in
        let errors =
          List.length
            (List.filter (fun r -> not (Svc.Proto.ok r)) (cold @ warm))
        in
        let warm_hits = stop.Svc.Cache.hits - mid.Svc.Cache.hits in
        Printf.printf
          "   %d     %7.3f  %10.0f   %7.3f  %10.0f   %5.1fx   %d/%d%s\n"
          domains cold_s
          (float_of_int n /. cold_s)
          warm_s
          (float_of_int n /. warm_s)
          (cold_s /. warm_s) warm_hits n
          (if errors = 0 then "" else Printf.sprintf "  (%d errors!)" errors);
        Printf.printf
          "          warm latency p50/p99 = %.0f/%.0f us; flight on/off \
           best: %.0f/%.0f req/s (median overhead %+.1f%%)\n"
          lat_p50 lat_p99
          (float_of_int (4 * n) /. on_s)
          (float_of_int (4 * n) /. off_s)
          flight_overhead_pct;
        Pipeline.Json.Obj
          [
            ("threads", Pipeline.Json.Int domains);
            ("requests", Pipeline.Json.Int n);
            ("errors", Pipeline.Json.Int errors);
            ("cold_seconds", Pipeline.Json.Float cold_s);
            ("warm_seconds", Pipeline.Json.Float warm_s);
            ("warm_latency_p50_us", Pipeline.Json.Float lat_p50);
            ("warm_latency_p99_us", Pipeline.Json.Float lat_p99);
            ("warm_flight_on_seconds", Pipeline.Json.Float on_s);
            ("warm_flight_off_seconds", Pipeline.Json.Float off_s);
            ("flight_overhead_pct", Pipeline.Json.Float flight_overhead_pct);
            ( "cold_requests_per_s",
              Pipeline.Json.Float (float_of_int n /. cold_s) );
            ( "warm_requests_per_s",
              Pipeline.Json.Float (float_of_int n /. warm_s) );
            ("warm_speedup", Pipeline.Json.Float (cold_s /. warm_s));
            ( "metrics",
              Pipeline.Json.Obj
                [
                  ( "counters",
                    Pipeline.Json.Obj
                      [
                        ("requests", Pipeline.Json.Int n);
                        ("warm_hits", Pipeline.Json.Int warm_hits);
                      ] );
                ] );
          ])
      [ 1; 2; 4 ]
  in
  let socket_entries = socket_bench () in
  (* schema v2: the svc-batch entry plus the E15 socket-service entries
     (cold / memo-warm / disk-warm phases as separate programs so the
     gate keys stay unique) *)
  let doc =
    Pipeline.Json.Obj
      [
        ("schema_version", Pipeline.Json.Int 2);
        ( "entries",
          Pipeline.Json.List
            (Pipeline.Json.Obj
               [
                 ("program", Pipeline.Json.Str "svc-batch");
                 ("runs", Pipeline.Json.List runs);
               ]
            :: socket_entries) );
      ]
  in
  let oc = open_out "BENCH_service.json" in
  output_string oc (Pipeline.Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_service.json\n";
  doc

(* ------------------------------------------------------------------ *)
(* E12 — execution engines → BENCH_exec.json                            *)

(* Compiled vs bytecode vs interpreted execution of the same REC schedule
   (example1) on 1/2/4 domains, a whole-corpus t=1 engine sweep, and the
   static-vs-cost chunking idle comparison on coupled_stretch.  Wall
   times are machine-dependent and stay plain fields; the deterministic
   facts — instance count, semantic equivalence — go under
   "metrics"/"counters" where the gate checks them, together with two
   regression-oriented ratio counters (they RISE when the new engine or
   chunking stops paying off, which is the direction the gate flags):
   [corpus_wall_vs_compiled_pct] (summed bytecode corpus wall as % of
   compiled at t=1 — the single-kernel example1 ratio stays a plain
   [speedup_vs_compiled] field, its ~30µs wall is too noisy to gate) and
   [idle_vs_static_pct] (cost-chunking per-barrier idle as % of static).
   Each configuration is run [reps] times and the fastest execute time
   (or the median idle) is kept: the comparison is about the engine, not
   scheduler jitter. *)
let exec_bench () =
  section
    "E12 / execution engines: BENCH_exec.json (compiled vs bytecode vs \
     interp)";
  let sc = if quick then 1 else 2 in
  let prog = Loopir.Builtin.example1 in
  let params = [ ("n1", 30 * sc); ("n2", 50 * sc) ] in
  let reps = if quick then 3 else 5 in
  let thread_counts = [ 1; 2; 4 ] in
  let run_one ~engine ~threads =
    let best = ref None in
    for _ = 1 to reps do
      let options =
        { Pipeline.Driver.default_options with threads; exec_engine = engine }
      in
      match Pipeline.Driver.run ~options ~name:"example1" ~params prog with
      | Error e ->
          failwith
            (Printf.sprintf "E12 %s t=%d: %s"
               (Runtime.Exec.engine_name engine)
               threads
               (Pipeline.Driver.error_to_string e))
      | Ok o -> (
          let r = o.Pipeline.Driver.report in
          let s =
            Option.value r.Pipeline.Report.par_seconds ~default:infinity
          in
          match !best with
          | Some (s0, _) when s0 <= s -> ()
          | _ -> best := Some (s, r))
    done;
    match !best with Some (_, r) -> r | None -> assert false
  in
  let runs =
    List.map
      (fun engine ->
        ( engine,
          List.map (fun t -> (t, run_one ~engine ~threads:t)) thread_counts ))
      [ `Compiled; `Bytecode; `Interp ]
  in
  let exec_s (r : Pipeline.Report.t) =
    Option.value r.Pipeline.Report.par_seconds ~default:nan
  in
  let phase_alloc (r : Pipeline.Report.t) =
    List.fold_left
      (fun acc (p : Pipeline.Report.phase_profile) ->
        acc +. p.Pipeline.Report.alloc_words)
      0.0 r.Pipeline.Report.phases
  in
  let interp_of t = exec_s (List.assoc t (List.assoc `Interp runs)) in
  let compiled_of t = exec_s (List.assoc t (List.assoc `Compiled runs)) in
  Printf.printf
    "engine    threads  execute s  vs interp  vs compiled  phase alloc \
     words  semantics\n";
  List.iter
    (fun (engine, per_t) ->
      List.iter
        (fun (t, r) ->
          Printf.printf "%-8s     %d     %9.6f    %5.2fx      %5.2fx  %17.0f  %s\n"
            (Runtime.Exec.engine_name engine)
            t (exec_s r)
            (interp_of t /. exec_s r)
            (compiled_of t /. exec_s r)
            (phase_alloc r)
            (Pipeline.Report.check_result_string r.Pipeline.Report.semantics))
        per_t)
    runs;
  let entries =
    List.map
      (fun (engine, per_t) ->
        Pipeline.Json.Obj
          [
            ( "program",
              Pipeline.Json.Str
                ("example1/" ^ Runtime.Exec.engine_name engine) );
            ( "params",
              Pipeline.Json.Obj
                (List.map (fun (k, v) -> (k, Pipeline.Json.Int v)) params) );
            ( "runs",
              Pipeline.Json.List
                (List.map
                   (fun (t, r) ->
                     let open Pipeline in
                     Json.Obj
                       [
                         ("threads", Json.Int t);
                         ("exec_seconds", Json.Float (exec_s r));
                         ( "seq_seconds",
                           match r.Report.seq_seconds with
                           | Some s -> Json.Float s
                           | None -> Json.Null );
                         ( "speedup_vs_interp",
                           Json.Float (interp_of t /. exec_s r) );
                         ( "speedup_vs_compiled",
                           Json.Float (compiled_of t /. exec_s r) );
                         ( "semantics",
                           Json.Str
                             (Report.check_result_string r.Report.semantics)
                         );
                         ("phase_profile", phase_profile_json r);
                         (* caller-domain allocation share is scheduling
                            dependent under work stealing at t>1, so it is
                            reported as a plain field, not a gated counter *)
                         ( "phase_alloc_words",
                           Json.Int (int_of_float (phase_alloc r)) );
                         ( "metrics",
                           Json.Obj
                             [
                               ( "counters",
                                 Json.Obj
                                   ([
                                      ( "instances",
                                        Json.Int
                                          (Option.value r.Report.n_instances
                                             ~default:0) );
                                      ( "semantics_ok",
                                        Json.Int
                                          (if
                                             Report.check_result_string
                                               r.Report.semantics
                                             = "ok"
                                           then 1
                                           else 0) );
                                    ]) );
                             ] );
                       ])
                   per_t) );
          ])
      runs
  in
  (* --- whole-corpus t=1 engine sweep --------------------------------- *)
  (* Large enough that the summed t=1 wall resolves well above timer noise
     on a loaded box (at 32 the ~1ms total is noise-dominated and the
     per-instance engines are within noise of each other). *)
  let corpus_v = if quick then 64 else 96 in
  let kernels =
    List.map
      (fun (name, prog) ->
        let params =
          List.map (fun p -> (p, corpus_v)) prog.Loopir.Ast.params
        in
        let env = Runtime.Interp.prepare prog ~params in
        let tr = Depend.Trace.build prog ~params in
        let sched = Sched.sequential_of_trace tr in
        let oracle = Runtime.Interp.run_sequential env in
        (name, env, sched, oracle))
      Loopir.Builtin.corpus
  in
  (* Sum of per-kernel best-of-reps walls, the two engines interleaved
     within each rep so load/GC drift on the host hits both equally
     (best-of-sums with the engines run back to back flaps ±15% on a
     loaded box); store equality against the oracle checked on rep 1. *)
  let corpus_reps = max reps 5 in
  (* The earlier sections leave a large major heap behind; compact once so
     stray GC slices don't land inside the timed walls. *)
  Gc.compact ();
  let compiled_ok = ref 0 and bytecode_ok = ref 0 in
  let compiled_total = ref 0.0 and bytecode_total = ref 0.0 in
  List.iter
    (fun (_, env, sched, oracle) ->
      let best_c = ref infinity and best_b = ref infinity in
      for rep = 1 to corpus_reps do
        let tc = Runtime.Exec.run_timed ~engine:`Compiled env ~threads:1 sched in
        let tb = Runtime.Exec.run_timed ~engine:`Bytecode env ~threads:1 sched in
        if rep = 1 then begin
          if Runtime.Arrays.equal tc.Runtime.Exec.store oracle then
            incr compiled_ok;
          if Runtime.Arrays.equal tb.Runtime.Exec.store oracle then
            incr bytecode_ok
        end;
        if tc.Runtime.Exec.seconds < !best_c then
          best_c := tc.Runtime.Exec.seconds;
        if tb.Runtime.Exec.seconds < !best_b then
          best_b := tb.Runtime.Exec.seconds
      done;
      compiled_total := !compiled_total +. !best_c;
      bytecode_total := !bytecode_total +. !best_b)
    kernels;
  let compiled_total, compiled_ok = (!compiled_total, !compiled_ok) in
  let bytecode_total, bytecode_ok = (!bytecode_total, !bytecode_ok) in
  let n_kernels = List.length kernels in
  Printf.printf
    "corpus t=1 (%d kernels, params=%d): compiled %.4fs  bytecode %.4fs \
     (%.2fx)\n"
    n_kernels corpus_v compiled_total bytecode_total
    (compiled_total /. bytecode_total);
  let corpus_entry =
    let open Pipeline in
    Json.Obj
      [
        ("program", Json.Str "corpus-t1/bytecode");
        ("params", Json.Obj [ ("value", Json.Int corpus_v) ]);
        ( "runs",
          Json.List
            [
              Json.Obj
                [
                  ("threads", Json.Int 1);
                  ("compiled_seconds", Json.Float compiled_total);
                  ("bytecode_seconds", Json.Float bytecode_total);
                  ( "speedup_vs_compiled",
                    Json.Float (compiled_total /. bytecode_total) );
                  ( "metrics",
                    Json.Obj
                      [
                        ( "counters",
                          Json.Obj
                            [
                              ("kernels", Json.Int n_kernels);
                              ( "semantics_ok",
                                Json.Int (min compiled_ok bytecode_ok) );
                              ( "corpus_wall_vs_compiled_pct",
                                Json.Int
                                  (int_of_float
                                     (100.0 *. bytecode_total
                                    /. compiled_total)) );
                            ] );
                      ] );
                ];
            ] );
      ]
  in
  (* --- chunking idle on coupled_stretch at t=4 ----------------------- *)
  let stretch = List.assoc "coupled_stretch" Loopir.Builtin.corpus in
  let stretch_n = 200_000 in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let idle_of chunking =
    let p1 = ref [] and p3 = ref [] and walls = ref [] in
    for _ = 1 to reps do
      let options =
        {
          Pipeline.Driver.default_options with
          threads = 4;
          check = false;
          chunking;
        }
      in
      match
        Pipeline.Driver.run ~options ~name:"coupled_stretch"
          ~params:[ ("n", stretch_n) ] stretch
      with
      | Error e ->
          failwith
            (Printf.sprintf "E12 coupled_stretch: %s"
               (Pipeline.Driver.error_to_string e))
      | Ok o ->
          let r = o.Pipeline.Driver.report in
          (match r.Pipeline.Report.balance with
          | Some b ->
              let idle lbl =
                match List.assoc_opt lbl b.Pipeline.Report.per_phase_idle with
                | Some f -> 100.0 *. f
                | None -> 0.0
              in
              p1 := idle "P1" :: !p1;
              p3 := idle "P3" :: !p3
          | None -> ());
          walls :=
            Option.value r.Pipeline.Report.par_seconds ~default:nan :: !walls
    done;
    (median !p1, median !p3, median !walls)
  in
  let s_p1, s_p3, s_wall = idle_of `Static in
  let c_p1, c_p3, c_wall = idle_of `Cost in
  Printf.printf
    "coupled_stretch n=%d t=4 (median of %d): static idle P1 %.1f%% P3 \
     %.1f%%  |  cost idle P1 %.1f%% P3 %.1f%%\n"
    stretch_n reps s_p1 s_p3 c_p1 c_p3;
  let idle_entry name (p1, p3, wall) extra =
    let open Pipeline in
    Json.Obj
      [
        ("program", Json.Str ("coupled_stretch/" ^ name));
        ("params", Json.Obj [ ("n", Json.Int stretch_n) ]);
        ( "runs",
          Json.List
            [
              Json.Obj
                [
                  ("threads", Json.Int 4);
                  ("exec_seconds", Json.Float wall);
                  ("p1_idle_pct_median", Json.Float p1);
                  ("p3_idle_pct_median", Json.Float p3);
                  ( "metrics",
                    Json.Obj
                      [
                        ( "counters",
                          Json.Obj
                            ([
                               ("p1_idle_pct", Json.Int (int_of_float p1));
                               ("p3_idle_pct", Json.Int (int_of_float p3));
                             ]
                            @ extra) );
                      ] );
                ];
            ] );
      ]
  in
  let idle_entries =
    [
      idle_entry "static" (s_p1, s_p3, s_wall) [];
      idle_entry "cost" (c_p1, c_p3, c_wall)
        [
          (* cost-chunking idle as % of static (same medians) — rises when
             self-scheduling stops reducing barrier idle *)
          ( "idle_vs_static_pct",
            Pipeline.Json.Int
              (int_of_float (100.0 *. (c_p1 +. c_p3) /. (s_p1 +. s_p3))) );
          (* informational (below the gate's count floor): 1 = the drop
             held in this regeneration *)
          ( "idle_drop_ok",
            Pipeline.Json.Int (if c_p1 +. c_p3 < s_p1 +. s_p3 then 1 else 0)
          );
        ];
    ]
  in
  let entries = entries @ (corpus_entry :: idle_entries) in
  let doc =
    Pipeline.Json.Obj
      [
        ("schema_version", Pipeline.Json.Int 1);
        ("entries", Pipeline.Json.List entries);
      ]
  in
  let oc = open_out "BENCH_exec.json" in
  output_string oc (Pipeline.Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_exec.json\n";
  doc

(* ------------------------------------------------------------------ *)
(* Regression gate: --baseline FILE [--gate PCT]                        *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The baseline contents are read before [pipeline_json] runs: gating
   against the committed BENCH_pipeline.json must compare with what was
   on disk at startup, not the document this run just wrote over it. *)
let run_gate ~current = function
  | None -> true
  | Some (baseline_path, baseline_text) ->
      let threshold_pct =
        match argv_value "--gate" with
        | Some s -> (
            match float_of_string_opt s with
            | Some p -> p
            | None -> failwith ("--gate: not a number: " ^ s))
        | None -> 25.0
      in
      section
        (Printf.sprintf "regression gate: vs %s at +%g%%" baseline_path
           threshold_pct);
      let verdict =
        match Pipeline.Json.parse baseline_text with
        | Error e -> Error (Printf.sprintf "%s: %s" baseline_path e)
        | Ok baseline ->
            Pipeline.Gate.check ~threshold_pct ~baseline ~current ()
      in
      (match verdict with
      | Error e ->
          Printf.printf "regression gate: ERROR %s\n" e;
          false
      | Ok outcome ->
          print_string (Pipeline.Gate.to_text ~threshold_pct outcome);
          outcome.Pipeline.Gate.regressions = [])

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (bechamel)                                          *)

let micro () =
  section "micro-benchmarks (bechamel, estimated time per run)";
  let open Bechamel in
  let open Toolkit in
  let pugh_poly =
    let ge coef const =
      Presburger.Constr.Ge (Presburger.Linexpr.make (Array.of_list coef) const)
    in
    Presburger.Poly.make 2
      [ ge [ 11; 13 ] (-27); ge [ -11; -13 ] 45; ge [ 7; -9 ] 10; ge [ -7; 9 ] 4 ]
  in
  let tests =
    [
      Test.make ~name:"E1: solve Rd (example1)"
        (Staged.stage (fun () ->
             ignore (Solve.analyze_simple Loopir.Builtin.example1)));
      Test.make ~name:"omega: Pugh dark-shadow emptiness"
        (Staged.stage (fun () -> ignore (Presburger.Omega.is_empty pugh_poly)));
      Test.make ~name:"E2: three-set partition (fig2)"
        (Staged.stage (fun () ->
             let a = Solve.analyze_simple Loopir.Builtin.fig2 in
             ignore (Threeset.compute ~phi:a.Solve.phi ~rd:a.Solve.rd)));
      Test.make ~name:"E3: materialize REC (ex1, 30x40)"
        (Staged.stage (fun () ->
             let rp = Lazy.force ex1_plan in
             ignore (Partition.materialize_rec_scan rp ~params:[| 30; 40 |])));
      Test.make ~name:"E4: REC+chains (ex2, n=64)"
        (Staged.stage (fun () ->
             match Partition.choose Loopir.Builtin.example2 with
             | Partition.Rec_chains rp ->
                 ignore (Partition.materialize_rec_scan rp ~params:[| 64 |])
             | _ -> ()));
      Test.make ~name:"E5: unified Rd + three sets (ex3)"
        (Staged.stage (fun () ->
             let u = Solve.analyze_unified Loopir.Builtin.example3 in
             ignore (Threeset.compute ~phi:u.Solve.uphi ~rd:u.Solve.urd)));
      Test.make ~name:"E6: trace+levels (cholesky small)"
        (Staged.stage (fun () ->
             ignore
               (Dataflow.peel_concrete Loopir.Builtin.cholesky
                  ~params:[ ("nmat", 4); ("m", 2); ("n", 8); ("nrhs", 1) ])));
      Test.make ~name:"E7: PDM cosets (ex1, 60x60)"
        (Staged.stage (fun () ->
             let rp = Lazy.force ex1_plan in
             let a = rp.Partition.simple in
             let pdm = Baselines.Pdm.of_simple a ~params:[| 60; 60 |] in
             let pts =
               Depend.Scan.iter_space a.Solve.stmt
                 ~params:[ ("n1", 60); ("n2", 60) ]
             in
             ignore (Baselines.Pdm.cosets pdm pts)));
      Test.make ~name:"codegen: REC listing (ex1)"
        (Staged.stage (fun () ->
             ignore (Codegen.Emit.rec_partitioning (Lazy.force ex1_plan))));
      Test.make ~name:"parser: cholesky source"
        (Staged.stage (fun () ->
             ignore
               (Loopir.Parser.parse ~name:"c"
                  (Loopir.Pretty.program_to_string Loopir.Builtin.cholesky))));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.25 else 0.5))
      ~kde:None ()
  in
  let raw =
    Benchmark.all cfg
      [ Instance.monotonic_clock ]
      (Test.make_grouped ~name:"recpart" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name res acc ->
        match Analyze.OLS.estimates res with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> (name, nan) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if ns >= 1e9 then Printf.printf "  %-44s %10.2f s\n" name (ns /. 1e9)
      else if ns >= 1e6 then Printf.printf "  %-44s %10.2f ms\n" name (ns /. 1e6)
      else if ns >= 1e3 then Printf.printf "  %-44s %10.2f us\n" name (ns /. 1e3)
      else Printf.printf "  %-44s %10.0f ns\n" name ns)
    rows

let () =
  Printf.printf "recurrence-chain partitioning — evaluation harness%s\n"
    (if quick then " [--quick]" else " (paper parameters)");
  let baseline =
    Option.map (fun p -> (p, read_file p)) (argv_value "--baseline")
  in
  let service_baseline =
    Option.map (fun p -> (p, read_file p)) (argv_value "--service-baseline")
  in
  let exec_baseline =
    Option.map (fun p -> (p, read_file p)) (argv_value "--exec-baseline")
  in
  fig1 ();
  fig2 ();
  ex1 ();
  ex2 ();
  ex3 ();
  ex4 ();
  fig3 ();
  theorem1 ();
  corpus ();
  ablation ();
  let current = pipeline_json () in
  let service_current = service_bench () in
  let exec_current = exec_bench () in
  micro ();
  let gate_ok = run_gate ~current baseline in
  let service_gate_ok =
    run_gate ~current:service_current service_baseline
  in
  let exec_gate_ok = run_gate ~current:exec_current exec_baseline in
  print_endline "\nall sections completed.";
  if not (gate_ok && service_gate_ok && exec_gate_ok) then exit 1
