(* Paper Example 3 (Chen & Yew's imperfectly nested loop): statement-level
   recurrence partitioning finds an EMPTY intermediate set, so the whole
   program runs as two fully parallel regions ("two iteration time"),
   against DOACROSS synchronization and inner-loop-only parallelization.

   Run with:  dune exec examples/example3_imperfect.exe *)

module Iset = Presburger.Iset

let () =
  let prog = Loopir.Builtin.example3 in
  print_endline "=== source (paper Example 3) ===";
  print_string (Loopir.Pretty.program_to_string prog);

  (* Statement-level analysis (§3.3): unified index vectors. *)
  let u = Depend.Solve.analyze_unified prog in
  Printf.printf "\nunified space: depth %d, dims (%s)\n"
    u.Depend.Solve.unified.Depend.Space.depth
    (String.concat ", " (Array.to_list u.Depend.Solve.unified.Depend.Space.dims));
  let three = Core.Threeset.compute ~phi:u.Depend.Solve.uphi ~rd:u.Depend.Solve.urd in
  Printf.printf "P2 (intermediate) empty: %b   <- paper: empty, two DOALL parts\n"
    (Iset.is_empty three.Core.Threeset.p2);

  print_endline "\n=== generated statement-level code (P1 then P3) ===";
  let names = Iset.names u.Depend.Solve.uphi in
  print_endline "! ---- P1";
  print_string (Codegen.Emit.doall_of_set ~names three.Core.Threeset.p1);
  print_endline "! ---- P3";
  print_string (Codegen.Emit.doall_of_set ~names three.Core.Threeset.p3);

  (* The exact instance graph confirms the two-step critical path. *)
  let params = [ ("n", 40) ] in
  let c = Core.Dataflow.peel_concrete prog ~params in
  Printf.printf "\nexact dataflow levels at n=40: %d (paper: two iteration time)\n"
    c.Core.Dataflow.steps;

  (* Validation of the two-phase schedule. *)
  let sched = Runtime.Sched.of_fronts c in
  let env = Runtime.Interp.prepare prog ~params in
  let tr = Depend.Trace.build prog ~params in
  Printf.printf "two-phase schedule: legality %s, semantics %s\n"
    (match Runtime.Sched.check_legal sched tr with
    | Ok () -> "OK"
    | Error m -> "FAILED: " ^ m)
    (match Runtime.Interp.check_schedule env sched with
    | Ok () -> "OK"
    | Error m -> "FAILED: " ^ m);

  (* Speedups: REC (2 barriers) vs inner-PAR (n barriers) vs DOACROSS. *)
  print_endline "\n=== simulated speedup at n=150 (cf. Figure 3, panel 3) ===";
  let params = [ ("n", 150) ] in
  let tr = Depend.Trace.build prog ~params in
  let n_seq = Array.length tr.Depend.Trace.instances in
  let rec_sched =
    Runtime.Sched.of_fronts (Core.Dataflow.peel_concrete prog ~params)
  in
  let par_sched = Baselines.Innerpar.schedule tr in
  Printf.printf "threads    REC    PAR  DOACROSS  (linear)\n";
  List.iter
    (fun p ->
      let rec_s =
        Runtime.Sim.speedup Runtime.Sim.base ~threads:p ~n_seq rec_sched
      in
      let par_s =
        Runtime.Sim.speedup Runtime.Sim.base ~threads:p ~n_seq par_sched
      in
      let da =
        Baselines.Doacross.pipeline tr ~threads:p
          ~w_iter:Runtime.Sim.base.Runtime.Sim.w_iter ~delay_factor:0.5
      in
      let da_s =
        Runtime.Sim.seq_time Runtime.Sim.base n_seq /. da.Baselines.Doacross.makespan
      in
      Printf.printf "   %d     %5.2f  %5.2f   %5.2f     (%d)\n" p rec_s par_s
        da_s p)
    [ 1; 2; 3; 4 ]
