examples/cholesky.mli:
