examples/example1_rec.ml: Array Codegen Core Depend Hashtbl List Loopir Presburger Printf Runtime
