examples/example2_unique.mli:
