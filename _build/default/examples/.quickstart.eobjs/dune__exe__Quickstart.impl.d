examples/quickstart.ml: Array Codegen Core Depend List Loopir Presburger Printf Runtime String
