examples/fig2_chains.mli:
