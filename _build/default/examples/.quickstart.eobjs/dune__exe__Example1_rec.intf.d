examples/example1_rec.mli:
