examples/example2_unique.ml: Array Baselines Core Depend List Loopir Presburger Printf Runtime String
