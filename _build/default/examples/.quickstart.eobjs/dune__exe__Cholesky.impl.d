examples/cholesky.ml: Array Core Depend Hashtbl List Loopir Printf Runtime String Sys
