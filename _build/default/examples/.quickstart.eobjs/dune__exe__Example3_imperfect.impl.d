examples/example3_imperfect.ml: Array Baselines Codegen Core Depend List Loopir Presburger Printf Runtime String
