examples/corpus_scan.ml: Array Depend List Loopir Printf String
