examples/quickstart.mli:
