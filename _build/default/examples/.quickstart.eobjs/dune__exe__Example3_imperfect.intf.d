examples/example3_imperfect.mli:
