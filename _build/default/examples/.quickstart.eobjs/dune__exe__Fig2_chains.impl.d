examples/fig2_chains.ml: Array Core Depend List Loopir Presburger Printf Runtime String
