examples/corpus_scan.mli:
