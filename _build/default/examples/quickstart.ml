(* Quickstart: parse a loop with non-uniform dependences, partition it with
   recurrence chains (Algorithm 1), print the generated code, and validate
   the parallel schedule against sequential execution.

   Run with:  dune exec examples/quickstart.exe *)

let source = "DO i = 1, 4000\n  a(3*i + 1) = a(2*i)\nENDDO"

let () =
  print_endline "=== source loop ===";
  print_endline source;
  let prog = Loopir.Parser.parse ~name:"quickstart" source in

  (* 1. Exact dependence analysis (Omega-style). *)
  let a = Depend.Solve.analyze_simple prog in
  let pairs =
    Presburger.Enum.points
      (Presburger.Iset.bind_params (Presburger.Rel.to_set a.Depend.Solve.rd) [||])
  in
  Printf.printf "\n=== direct dependences (%d, first 10) ===\n"
    (List.length pairs);
  List.iteri
    (fun k p -> if k < 10 then Printf.printf "  %d -> %d\n" p.(0) p.(1))
    pairs;

  (* 2. Algorithm 1: this loop has a single coupled pair with full-rank
        coefficients, so the recurrence-chain branch applies. *)
  match Core.Partition.choose prog with
  | Core.Partition.Rec_chains rp ->
      let c = Core.Partition.materialize_rec rp ~params:[||] in
      Printf.printf "\n=== three-set partition ===\n";
      Printf.printf "P1 (independent + initial): %d iterations\n"
        (List.length c.Core.Partition.p1_pts);
      Printf.printf "P2 (chains)               : %d chains, %d iterations\n"
        (List.length c.Core.Partition.chains.Core.Chain.chains)
        (Core.Chain.total_points c.Core.Partition.chains);
      List.iteri
        (fun k chain ->
          if k < 8 then
            Printf.printf "    chain:%s\n"
              (String.concat " ->"
                 (List.map (fun p -> Printf.sprintf " %d" p.(0)) chain)))
        c.Core.Partition.chains.Core.Chain.chains;
      if List.length c.Core.Partition.chains.Core.Chain.chains > 8 then
        print_endline "    ... (chains with irregular strides, ratio 3/2)";
      Printf.printf "P3 (final)                : %d iterations\n"
        (List.length c.Core.Partition.p3_pts);
      (match c.Core.Partition.theorem_bound with
      | Some b ->
          Printf.printf "Theorem 1: growth a = %g, chain length ≤ %d (measured %d)\n"
            c.Core.Partition.growth b c.Core.Partition.chains.Core.Chain.longest
      | None -> ());

      (* 3. Generated code. *)
      print_endline "\n=== generated code ===";
      print_string (Codegen.Emit.rec_partitioning rp);

      (* 4. Validate: the parallel schedule computes exactly what the
            sequential loop computes, and respects every dependence. *)
      let sched = Runtime.Sched.of_rec ~stmt:0 c in
      let env = Runtime.Interp.prepare prog ~params:[] in
      let tr = Depend.Trace.build prog ~params:[] in
      (match Runtime.Sched.check_legal sched tr with
      | Ok () -> print_endline "\nschedule legality : OK (all dependences respected)"
      | Error m -> Printf.printf "\nschedule legality : FAILED (%s)\n" m);
      (match Runtime.Interp.check_schedule env sched with
      | Ok () -> print_endline "schedule semantics: OK (arrays identical to sequential run)"
      | Error m -> Printf.printf "schedule semantics: FAILED (%s)\n" m);
      (match Runtime.Exec.check env ~threads:4 sched with
      | Ok () -> print_endline "4-domain execution: OK"
      | Error m -> Printf.printf "4-domain execution: FAILED (%s)\n" m);

      (* 5. Predicted speedup on the simulated SMP. *)
      print_endline "\n=== simulated speedup (REC) ===";
      List.iter
        (fun p ->
          Printf.printf "  %d thread(s): %.2f\n" p
            (Runtime.Sim.speedup (Runtime.Sim.with_factor 0.8) ~threads:p
               ~n_seq:(Runtime.Sched.n_instances sched) sched))
        [ 1; 2; 3; 4 ]
  | Core.Partition.Dataflow_const ->
      print_endline "constant bounds: dataflow partitioning branch"
  | Core.Partition.Pdm_fallback why ->
      Printf.printf "PDM fallback: %s\n" why
