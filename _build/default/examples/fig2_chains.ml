(* Paper Figure 2: the 1-D loop  DO I=1,20: a(2I) = a(21-I)  whose solution
   chain 6→9→3→15 splits into the monotonic chains 6→9, 3→9, 3→15.
   Reproduces the partition P1 = {1..7,12,14,16,18,20} ∪ …, P2 = ∅,
   P3 = {8,9,10,11,13,15,17,19}.

   Run with:  dune exec examples/fig2_chains.exe *)

module Iset = Presburger.Iset
module Enum = Presburger.Enum
module Rel = Presburger.Rel

let ints set = List.map (fun p -> p.(0)) (Enum.points set)
let show l = String.concat " " (List.map string_of_int l)

let () =
  let prog = Loopir.Builtin.fig2 in
  print_endline "=== source (paper Figure 2) ===";
  print_string (Loopir.Pretty.program_to_string prog);

  let a = Depend.Solve.analyze_simple prog in
  let rd = a.Depend.Solve.rd in
  print_endline "\n=== forward dependence arrows (i ≺ j) ===";
  List.iter
    (fun p -> Printf.printf "  %d -> %d\n" p.(0) p.(1))
    (Enum.points (Iset.bind_params (Rel.to_set rd) [||]));

  print_endline "\nthe naive WHILE chain i' = 21 - 2i from 6 visits: 6 9 3 15";
  print_endline "(not lexicographically ordered — split into monotonic chains";
  print_endline " 6->9, 3->9, 3->15 whose endpoints fall into P1/P3)";

  let three = Core.Threeset.compute ~phi:a.Depend.Solve.phi ~rd in
  Printf.printf "\nP1 (independent+initial) = %s\n" (show (ints three.Core.Threeset.p1));
  Printf.printf "P2 (intermediate)        = %s  <- empty, as in the paper\n"
    (show (ints three.Core.Threeset.p2));
  Printf.printf "P3 (final)               = %s\n" (show (ints three.Core.Threeset.p3));
  Printf.printf "paper: P1 = 1 2 3 4 5 6 7 12 14 16 18 20; P3 = the rest\n";

  (* Two-phase schedule, validated. *)
  let fronts =
    Core.Dataflow.peel_symbolic ~phi:a.Depend.Solve.phi ~rd ~max_steps:10
  in
  Printf.printf "\ndataflow peeling finishes in %d fully parallel steps\n"
    (List.length fronts);
  let concrete = Core.Dataflow.peel_concrete prog ~params:[] in
  let sched = Runtime.Sched.of_fronts concrete in
  let env = Runtime.Interp.prepare prog ~params:[] in
  let tr = Depend.Trace.build prog ~params:[] in
  Printf.printf "two-phase schedule: legality %s, semantics %s\n"
    (match Runtime.Sched.check_legal sched tr with
    | Ok () -> "OK"
    | Error m -> "FAILED: " ^ m)
    (match Runtime.Interp.check_schedule env sched with
    | Ok () -> "OK"
    | Error m -> "FAILED: " ^ m);

  (* The parametric generalization keeps the two-set structure. *)
  print_endline "\n=== parametric variant a(2i) = a(2M+1-i), i = 1..2M ===";
  let p = Loopir.Builtin.fig2_param in
  let ap = Depend.Solve.analyze_simple p in
  let threep = Core.Threeset.compute ~phi:ap.Depend.Solve.phi ~rd:ap.Depend.Solve.rd in
  Printf.printf "P2 empty for all M: %b\n"
    (Iset.is_empty threep.Core.Threeset.p2);
  List.iter
    (fun m ->
      let p1 = ints (Iset.bind_params threep.Core.Threeset.p1 [| m |]) in
      let p3 = ints (Iset.bind_params threep.Core.Threeset.p3 [| m |]) in
      Printf.printf "M=%2d: |P1| = %2d, |P3| = %2d (of %d iterations)\n" m
        (List.length p1) (List.length p3) (2 * m))
    [ 5; 10; 20; 40 ]
