(* Survey statistics (DESIGN.md E9): classify a corpus of loop kernels by
   dependence uniformity and coupled subscripts, reproducing the
   methodology behind the paper's introduction statistics (46% of SPECfp95
   nests with non-uniform dependences; 12.8% of coupled subscripts causing
   them).  The corpus here is synthetic, so the percentages are indicative
   of the method, not of SPECfp95.

   Run with:  dune exec examples/corpus_scan.exe *)

let default_n = 10

let classify name prog =
  let stmt_coupled =
    try
      List.exists Depend.Distance.has_coupled_subscripts
        (Loopir.Prog.stmts_of prog)
    with _ -> false
  in
  match Depend.Solve.analyze_simple prog with
  | a ->
      let params =
        Array.map (fun _ -> default_n) a.Depend.Solve.params
      in
      let cls =
        Depend.Distance.classify a.Depend.Solve.rd ~phi:a.Depend.Solve.phi
          ~params
      in
      Some (name, cls, stmt_coupled)
  | exception Invalid_argument _ ->
      (* imperfect nest: classify via the exact instance graph *)
      let params =
        List.map (fun p -> (p, default_n)) prog.Loopir.Ast.params
      in
      let tr = Depend.Trace.build prog ~params in
      let cls =
        if Depend.Trace.n_edges tr = 0 then Depend.Distance.No_dependence
        else Depend.Distance.Non_uniform
      in
      Some (name, cls, stmt_coupled)
  | exception _ -> None

let () =
  let results = List.filter_map (fun (n, p) -> classify n p) Loopir.Builtin.corpus in
  Printf.printf "%-22s %-14s %s\n" "kernel" "dependences" "coupled subscripts";
  Printf.printf "%s\n" (String.make 55 '-');
  List.iter
    (fun (name, cls, coupled) ->
      Printf.printf "%-22s %-14s %s\n" name
        (Depend.Distance.class_to_string cls)
        (if coupled then "yes" else "no"))
    results;
  let total = List.length results in
  let count f = List.length (List.filter f results) in
  let nonuni = count (fun (_, c, _) -> c = Depend.Distance.Non_uniform) in
  let coupled = count (fun (_, _, c) -> c) in
  let coupled_nonuni =
    count (fun (_, c, k) -> k && c = Depend.Distance.Non_uniform)
  in
  Printf.printf "%s\n" (String.make 55 '-');
  Printf.printf "loops with non-uniform dependences : %d/%d (%.0f%%)\n" nonuni
    total
    (100.0 *. float_of_int nonuni /. float_of_int total);
  Printf.printf "loops with coupled subscripts      : %d/%d (%.0f%%)\n" coupled
    total
    (100.0 *. float_of_int coupled /. float_of_int total);
  if coupled > 0 then
    Printf.printf "coupled subscripts → non-uniform   : %d/%d (%.0f%%)\n"
      coupled_nonuni coupled
      (100.0 *. float_of_int coupled_nonuni /. float_of_int coupled);
  print_endline
    "\n(cf. paper introduction: 46% of SPECfp95 nests non-uniform; the\n\
     \ corpus here is synthetic — the methodology is what is reproduced)"
