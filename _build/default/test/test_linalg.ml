(* Unit and property tests for the linear algebra substrate. *)

module Q = Numeric.Rat
module Ivec = Linalg.Ivec
module Imat = Linalg.Imat
module Qmat = Linalg.Qmat
module Hnf = Linalg.Hnf

let ivec = Alcotest.testable Ivec.pp Ivec.equal
let imat = Alcotest.testable Imat.pp Imat.equal
let qmat = Alcotest.testable Qmat.pp Qmat.equal

(* ------------------------------------------------------------------ *)
(* Ivec                                                                *)

let test_ivec_ops () =
  Alcotest.check ivec "add" [| 4; 6 |] (Ivec.add [| 1; 2 |] [| 3; 4 |]);
  Alcotest.check ivec "sub" [| -2; -2 |] (Ivec.sub [| 1; 2 |] [| 3; 4 |]);
  Alcotest.check ivec "scale" [| 3; -6 |] (Ivec.scale 3 [| 1; -2 |]);
  Alcotest.(check int) "dot" 11 (Ivec.dot [| 1; 2 |] [| 3; 4 |]);
  Alcotest.(check int) "norm2" 25 (Ivec.norm2 [| 3; 4 |]);
  Alcotest.(check int) "gcd" 6 (Ivec.gcd [| 12; -18; 6 |])

let test_ivec_lex () =
  Alcotest.(check bool) "(1,2) < (1,3)" true
    (Ivec.compare_lex [| 1; 2 |] [| 1; 3 |] < 0);
  Alcotest.(check bool) "(2,0) > (1,9)" true
    (Ivec.compare_lex [| 2; 0 |] [| 1; 9 |] > 0);
  Alcotest.(check int) "equal" 0 (Ivec.compare_lex [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "lexpos (0,1)" true (Ivec.is_lex_positive [| 0; 1 |]);
  Alcotest.(check bool) "lexpos (0,-1)" false
    (Ivec.is_lex_positive [| 0; -1 |]);
  Alcotest.(check bool) "lexpos 0" false (Ivec.is_lex_positive [| 0; 0 |])

(* ------------------------------------------------------------------ *)
(* Imat                                                                *)

let test_imat_mul () =
  let a = [| [| 1; 2 |]; [| 3; 4 |] |] in
  let b = [| [| 0; 1 |]; [| 1; 0 |] |] in
  Alcotest.check imat "swap cols" [| [| 2; 1 |]; [| 4; 3 |] |] (Imat.mul a b);
  Alcotest.check imat "identity" a (Imat.mul a (Imat.identity 2));
  Alcotest.check ivec "vecmat" [| 7; 10 |] (Imat.vecmat [| 1; 2 |] a)

let test_imat_det () =
  Alcotest.(check int) "det [[3,2],[0,1]]" 3
    (Imat.det [| [| 3; 2 |]; [| 0; 1 |] |]);
  Alcotest.(check int) "det example2 T" (-2)
    (Imat.det [| [| -2; 2 |]; [| 2; -1 |] |]);
  Alcotest.(check int) "det singular" 0 (Imat.det [| [| 1; 2 |]; [| 2; 4 |] |]);
  Alcotest.(check int) "det identity" 1 (Imat.det (Imat.identity 4));
  Alcotest.(check int) "det permutation" (-1)
    (Imat.det [| [| 0; 1 |]; [| 1; 0 |] |]);
  (* 3x3 with known determinant *)
  Alcotest.(check int) "det 3x3" (-306)
    (Imat.det [| [| 6; 1; 1 |]; [| 4; -2; 5 |]; [| 2; 8; 7 |] |])

let test_imat_rank () =
  Alcotest.(check int) "full" 2 (Imat.rank [| [| 3; 2 |]; [| 0; 1 |] |]);
  Alcotest.(check int) "deficient" 1 (Imat.rank [| [| 1; 2 |]; [| 2; 4 |] |]);
  Alcotest.(check int) "zero" 0 (Imat.rank [| [| 0; 0 |]; [| 0; 0 |] |]);
  Alcotest.(check int) "wide" 2 (Imat.rank [| [| 1; 0; 1 |]; [| 0; 1; 1 |] |])

(* ------------------------------------------------------------------ *)
(* Qmat                                                                *)

let test_qmat_inv () =
  (* Example 2 of the paper: B = [[1,1],[2,1]], B^{-1} = [[-1,1],[2,-1]]. *)
  let b = Qmat.of_imat [| [| 1; 1 |]; [| 2; 1 |] |] in
  (match Qmat.inv b with
  | None -> Alcotest.fail "B should be invertible"
  | Some bi ->
      Alcotest.check qmat "B^-1"
        (Qmat.of_imat [| [| -1; 1 |]; [| 2; -1 |] |])
        bi;
      Alcotest.check qmat "B*B^-1 = I" (Qmat.identity 2) (Qmat.mul b bi));
  Alcotest.(check bool) "singular" true
    (Qmat.inv (Qmat.of_imat [| [| 1; 2 |]; [| 2; 4 |] |]) = None)

let test_qmat_det () =
  let t = Qmat.of_imat [| [| -2; 2 |]; [| 2; -1 |] |] in
  Alcotest.(check bool) "det T = -2" true (Q.equal (Q.of_int (-2)) (Qmat.det t));
  let half = Qmat.make 2 2 (fun i j -> if i = j then Q.make 1 2 else Q.zero) in
  Alcotest.(check bool) "det 1/4" true (Q.equal (Q.make 1 4) (Qmat.det half))

let test_qmat_vec () =
  (* Paper Example 1: successor map j = i·T + u with T = A, u = (-2,-2). *)
  let t = Qmat.of_imat [| [| 3; 2 |]; [| 0; 1 |] |] in
  let u = [| Q.of_int (-2); Q.of_int (-2) |] in
  let step i = Qmat.qvec_add (Qmat.ivecmat i t) u in
  (match Qmat.qvec_to_ivec (step [| 2; 3 |]) with
  | Some j -> Alcotest.check ivec "(2,3) -> (4,5)" [| 4; 5 |] j
  | None -> Alcotest.fail "integral expected");
  match Qmat.qvec_to_ivec [| Q.make 1 2; Q.one |] with
  | Some _ -> Alcotest.fail "should not be integral"
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Hnf                                                                 *)

let test_hnf_basic () =
  let b = Hnf.of_rows 2 [ [| 2; 0 |]; [| 0; 3 |] ] in
  Alcotest.(check int) "rank 2" 2 (Hnf.rank b);
  Alcotest.(check bool) "mem (4,6)" true (Hnf.mem b [| 4; 6 |]);
  Alcotest.(check bool) "mem (4,5)" false (Hnf.mem b [| 4; 5 |]);
  Alcotest.(check bool) "mem (1,0)" false (Hnf.mem b [| 1; 0 |]);
  Alcotest.(check bool) "mem 0" true (Hnf.mem b [| 0; 0 |])

let test_hnf_gcd_collapse () =
  (* Rows (2,2) and (3,3) generate the lattice of multiples of (1,1). *)
  let b = Hnf.of_rows 2 [ [| 2; 2 |]; [| 3; 3 |] ] in
  Alcotest.(check int) "rank 1" 1 (Hnf.rank b);
  Alcotest.(check bool) "mem (5,5)" true (Hnf.mem b [| 5; 5 |]);
  Alcotest.(check bool) "mem (1,1)" true (Hnf.mem b [| 1; 1 |]);
  Alcotest.(check bool) "mem (1,2)" false (Hnf.mem b [| 1; 2 |])

let test_hnf_decompose () =
  let b = Hnf.of_rows 2 [ [| 1; 2 |]; [| 0; 5 |] ] in
  match Hnf.decompose b [| 3; 16 |] with
  | None -> Alcotest.fail "should decompose"
  | Some c ->
      let v =
        List.fold_left Ivec.add (Ivec.zero 2)
          (List.mapi (fun k r -> Ivec.scale c.(k) r) (Hnf.rows b))
      in
      Alcotest.check ivec "recombines" [| 3; 16 |] v

let test_hnf_empty () =
  let b = Hnf.of_rows 3 [ [| 0; 0; 0 |] ] in
  Alcotest.(check int) "rank 0" 0 (Hnf.rank b);
  Alcotest.(check bool) "only zero" true (Hnf.mem b [| 0; 0; 0 |]);
  Alcotest.(check bool) "nonzero out" false (Hnf.mem b [| 1; 0; 0 |])

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let gen_mat n =
  QCheck2.Gen.(
    array_size (pure n) (array_size (pure n) (int_range (-6) 6)))

let prop_det_transpose =
  QCheck2.Test.make ~name:"det m = det mᵀ" ~count:200 (gen_mat 3) (fun m ->
      Imat.det m = Imat.det (Imat.transpose m))

let prop_det_product =
  QCheck2.Test.make ~name:"det (a·b) = det a · det b" ~count:200
    QCheck2.Gen.(pair (gen_mat 3) (gen_mat 3))
    (fun (a, b) -> Imat.det (Imat.mul a b) = Imat.det a * Imat.det b)

let prop_inv_roundtrip =
  QCheck2.Test.make ~name:"m · m⁻¹ = I when invertible" ~count:200 (gen_mat 3)
    (fun m ->
      let qm = Qmat.of_imat m in
      match Qmat.inv qm with
      | None -> Imat.det m = 0
      | Some mi ->
          Imat.det m <> 0
          && Qmat.equal (Qmat.mul qm mi) (Qmat.identity 3)
          && Qmat.equal (Qmat.mul mi qm) (Qmat.identity 3))

let gen_rows =
  QCheck2.Gen.(list_size (int_range 1 4) (array_size (pure 3) (int_range (-5) 5)))

let prop_hnf_contains_generators =
  QCheck2.Test.make ~name:"generators lie in their HNF lattice" ~count:200
    gen_rows (fun rows ->
      let b = Hnf.of_rows 3 rows in
      List.for_all (fun r -> Hnf.mem b r) rows)

let prop_hnf_closed_under_sum =
  QCheck2.Test.make ~name:"lattice closed under combination" ~count:200
    QCheck2.Gen.(pair gen_rows (pair (int_range (-3) 3) (int_range (-3) 3)))
    (fun (rows, (k1, k2)) ->
      match rows with
      | r1 :: r2 :: _ ->
          let b = Hnf.of_rows 3 rows in
          Hnf.mem b (Ivec.add (Ivec.scale k1 r1) (Ivec.scale k2 r2))
      | _ -> QCheck2.assume_fail ())

let () =
  Alcotest.run "linalg"
    [
      ( "ivec",
        [
          Alcotest.test_case "vector ops" `Quick test_ivec_ops;
          Alcotest.test_case "lexicographic order" `Quick test_ivec_lex;
        ] );
      ( "imat",
        [
          Alcotest.test_case "multiplication" `Quick test_imat_mul;
          Alcotest.test_case "determinant" `Quick test_imat_det;
          Alcotest.test_case "rank" `Quick test_imat_rank;
          QCheck_alcotest.to_alcotest prop_det_transpose;
          QCheck_alcotest.to_alcotest prop_det_product;
        ] );
      ( "qmat",
        [
          Alcotest.test_case "inverse" `Quick test_qmat_inv;
          Alcotest.test_case "determinant" `Quick test_qmat_det;
          Alcotest.test_case "affine step (paper ex.1)" `Quick test_qmat_vec;
          QCheck_alcotest.to_alcotest prop_inv_roundtrip;
        ] );
      ( "hnf",
        [
          Alcotest.test_case "diagonal lattice" `Quick test_hnf_basic;
          Alcotest.test_case "gcd collapse" `Quick test_hnf_gcd_collapse;
          Alcotest.test_case "decompose" `Quick test_hnf_decompose;
          Alcotest.test_case "empty lattice" `Quick test_hnf_empty;
          QCheck_alcotest.to_alcotest prop_hnf_contains_generators;
          QCheck_alcotest.to_alcotest prop_hnf_closed_under_sum;
        ] );
    ]
