(* Additional coverage: relation algebra properties cross-checked against
   enumeration, integer expression evaluation, interpreter value semantics,
   and executor work distribution. *)

module L = Presburger.Linexpr
module C = Presburger.Constr
module P = Presburger.Poly
module Iset = Presburger.Iset
module Rel = Presburger.Rel
module Enum = Presburger.Enum
module Ivec = Linalg.Ivec

(* ------------------------------------------------------------------ *)
(* Relation algebra vs enumeration                                     *)

let box n lo hi =
  List.concat
    (List.init n (fun k ->
         [
           C.Ge (L.add_const (L.var n k) (-lo));
           C.Ge (L.add_const (L.neg (L.var n k)) hi);
         ]))

let gen_rel_poly =
  (* Random relations over 1-in/1-out with a bounding box. *)
  QCheck2.Gen.(
    let* k = int_range 1 2 in
    let* cs =
      list_size (pure k)
        (let* c1 = int_range (-3) 3 in
         let* c2 = int_range (-3) 3 in
         let* c0 = int_range (-6) 6 in
         let* eq = bool in
         pure
           (if eq then C.Eq (L.make [| c1; c2 |] c0)
            else C.Ge (L.make [| c1; c2 |] c0)))
    in
    pure (P.make 2 (cs @ box 2 (-5) 5)))

let mk_rel p = Rel.make ~inn:[| "x" |] ~out:[| "y" |] ~params:[||] [ p ]

let pairs_of r =
  Enum.points (Rel.to_set r) |> List.map (fun a -> (a.(0), a.(1)))

let prop_inverse_swaps =
  QCheck2.Test.make ~name:"inverse swaps pairs" ~count:150 gen_rel_poly
    (fun p ->
      let r = mk_rel p in
      let inv = Rel.inverse r in
      List.sort compare (List.map (fun (a, b) -> (b, a)) (pairs_of r))
      = List.sort compare (pairs_of inv))

let prop_compose_matches =
  QCheck2.Test.make ~name:"compose = relational join" ~count:80
    QCheck2.Gen.(pair gen_rel_poly gen_rel_poly)
    (fun (p1, p2) ->
      let r = mk_rel p1 and s = mk_rel p2 in
      let rs = Rel.compose r s in
      let rp = pairs_of r and sp = pairs_of s in
      let expected =
        List.concat_map
          (fun (a, b) ->
            List.filter_map (fun (b', c) -> if b = b' then Some (a, c) else None) sp)
          rp
        |> List.sort_uniq compare
      in
      List.sort compare (pairs_of rs) = expected)

let prop_dom_ran_match =
  QCheck2.Test.make ~name:"dom/ran = projections of pairs" ~count:150
    gen_rel_poly (fun p ->
      let r = mk_rel p in
      let prs = pairs_of r in
      let dom =
        Enum.points (Rel.dom r) |> List.map (fun a -> a.(0)) |> List.sort_uniq compare
      and ran =
        Enum.points (Rel.ran r) |> List.map (fun a -> a.(0)) |> List.sort_uniq compare
      in
      dom = List.sort_uniq compare (List.map fst prs)
      && ran = List.sort_uniq compare (List.map snd prs))

let prop_lex_forward_subset =
  QCheck2.Test.make ~name:"lex_forward keeps exactly x < y pairs" ~count:150
    gen_rel_poly (fun p ->
      let r = mk_rel p in
      let fwd = Rel.lex_forward r in
      List.sort compare (pairs_of fwd)
      = List.sort compare (List.filter (fun (a, b) -> a < b) (pairs_of r)))

let test_restrict_dom_ran () =
  (* r = {x→x+1 | 0 ≤ x ≤ 9}; restrict domain to evens. *)
  let p =
    P.make 2
      [ C.Eq (L.make [| 1; -1 |] 1); C.Ge (L.var 2 0);
        C.Ge (L.add_const (L.neg (L.var 2 0)) 9) ]
  in
  let r = mk_rel p in
  let evens =
    Iset.make ~iters:[| "x" |] ~params:[||]
      [ P.make 1 [ C.Div (2, L.var 1 0); C.Ge (L.var 1 0);
                   C.Ge (L.add_const (L.neg (L.var 1 0)) 9) ] ]
  in
  let restricted = Rel.restrict_dom r evens in
  Alcotest.(check (list (pair int int)))
    "even sources only"
    [ (0, 1); (2, 3); (4, 5); (6, 7); (8, 9) ]
    (List.sort compare (pairs_of restricted))

(* ------------------------------------------------------------------ *)
(* Eval_int                                                             *)

let test_eval_int () =
  let e = Loopir.Parser.parse_expr in
  let env = function "i" -> 7 | "j" -> -3 | _ -> failwith "unbound" in
  let check name src expect =
    Alcotest.(check int) name expect (Loopir.Eval_int.eval env (e src))
  in
  check "arith" "2*i + j - 1" 10;
  check "floor div" "j/2" (-2);
  (* floor(-3/2) = -2 *)
  check "min" "MIN(i, j, 4)" (-3);
  check "max" "MAX(i, j, 4)" 7;
  check "mod euclidean" "MOD(j, 5)" 2;
  check "abs" "ABS(j)" 3;
  check "pow" "j**2" 9;
  match Loopir.Eval_int.eval env (e "SQRT(4)") with
  | exception Loopir.Eval_int.Not_integer _ -> ()
  | _ -> Alcotest.fail "SQRT is not integer-valued"

(* ------------------------------------------------------------------ *)
(* Interpreter value semantics                                          *)

let run_single src params =
  let prog = Loopir.Parser.parse ~name:"t" src in
  let env = Runtime.Interp.prepare prog ~params in
  Runtime.Interp.run_sequential env

let test_interp_float_ops () =
  (* out(1) = SQRT(ABS(-9.0)) + MIN(2.0, 5.0) *)
  let store =
    run_single "DO i = 1, 1\n  out(i) = SQRT(ABS(0.0 - 9.0)) + MIN(2.0, 5.0)\nENDDO" []
  in
  Alcotest.(check (float 1e-9)) "sqrt+min" 5.0
    (Runtime.Arrays.get store "out" [ 1 ]);
  let store = run_single "DO i = 1, 1\n  out(i) = 3.0/2.0\nENDDO" [] in
  Alcotest.(check (float 1e-9)) "real division" 1.5
    (Runtime.Arrays.get store "out" [ 1 ]);
  let store = run_single "DO i = 1, 1\n  out(i) = 2.0**3\nENDDO" [] in
  Alcotest.(check (float 1e-9)) "power" 8.0
    (Runtime.Arrays.get store "out" [ 1 ])

let test_interp_accumulation () =
  (* Serial accumulation uses the written values, not stale ones. *)
  let store =
    run_single "DO i = 2, 6\n  s(i) = s(i - 1)*2.0\nENDDO" []
  in
  let s1 = Runtime.Arrays.initial_value "s" [ 1 ] in
  Alcotest.(check (float 1e-9)) "geometric" (s1 *. 32.0)
    (Runtime.Arrays.get store "s" [ 6 ])

let test_interp_negative_indices () =
  let store =
    run_single "DO i = 1, 4\n  a(i - 3) = 1.0*i\nENDDO" []
  in
  Alcotest.(check (float 1e-9)) "a(-2)" 1.0 (Runtime.Arrays.get store "a" [ -2 ]);
  Alcotest.(check (float 1e-9)) "a(1)" 4.0 (Runtime.Arrays.get store "a" [ 1 ])

(* ------------------------------------------------------------------ *)
(* Executor work distribution                                           *)

let test_exec_thread_counts () =
  (* Same result for every thread count, including more threads than work. *)
  let prog = List.assoc "coupled_stretch" Loopir.Builtin.corpus in
  let params = [ ("n", 17) ] in
  let env = Runtime.Interp.prepare prog ~params in
  match Core.Partition.choose prog with
  | Core.Partition.Rec_chains rp ->
      let c = Core.Partition.materialize_rec_scan rp ~params:[| 17 |] in
      let sched = Runtime.Sched.of_rec ~stmt:0 c in
      List.iter
        (fun t ->
          match Runtime.Exec.check env ~threads:t sched with
          | Ok () -> ()
          | Error m -> Alcotest.fail (Printf.sprintf "threads=%d: %s" t m))
        [ 1; 2; 5; 32 ]
  | _ -> Alcotest.fail "REC expected"

(* ------------------------------------------------------------------ *)
(* Pretty/parse round trip of every corpus kernel                       *)

let test_corpus_roundtrip () =
  List.iter
    (fun (name, p) ->
      let printed = Loopir.Pretty.program_to_string p in
      let p2 = Loopir.Parser.parse ~name printed in
      Alcotest.(check string) name printed (Loopir.Pretty.program_to_string p2))
    Loopir.Builtin.corpus

(* ------------------------------------------------------------------ *)
(* Safeint boundary cases exercised through the stack                   *)

let test_large_coefficient_loop () =
  (* Large coefficients should analyze without overflow surprises. *)
  let prog =
    Loopir.Parser.parse ~name:"big" "DO i = 1, 50\n  a(97*i + 1000) = a(89*i)\nENDDO"
  in
  let a = Depend.Solve.analyze_simple prog in
  let pairs =
    Enum.points (Iset.bind_params (Rel.to_set a.Depend.Solve.rd) [||])
  in
  (* 97 i + 1000 = 89 j: brute-force count. *)
  let expected = ref 0 in
  for i = 1 to 50 do
    for j = 1 to 50 do
      if i <> j && (97 * i) + 1000 = 89 * j then incr expected
    done
  done;
  Alcotest.(check int) "exact pair count" !expected (List.length pairs)

let () =
  Alcotest.run "extra"
    [
      ( "relations",
        [
          QCheck_alcotest.to_alcotest prop_inverse_swaps;
          QCheck_alcotest.to_alcotest prop_compose_matches;
          QCheck_alcotest.to_alcotest prop_dom_ran_match;
          QCheck_alcotest.to_alcotest prop_lex_forward_subset;
          Alcotest.test_case "restrict_dom" `Quick test_restrict_dom_ran;
        ] );
      ( "eval",
        [
          Alcotest.test_case "integer expressions" `Quick test_eval_int;
          Alcotest.test_case "float operations" `Quick test_interp_float_ops;
          Alcotest.test_case "accumulation" `Quick test_interp_accumulation;
          Alcotest.test_case "negative indices" `Quick
            test_interp_negative_indices;
        ] );
      ( "exec",
        [ Alcotest.test_case "thread counts" `Quick test_exec_thread_counts ] );
      ( "robustness",
        [
          Alcotest.test_case "corpus round-trips" `Quick test_corpus_roundtrip;
          Alcotest.test_case "large coefficients" `Quick
            test_large_coefficient_loop;
        ] );
    ]
