(* Tests for the mini-Fortran IR: lexer, parser, pretty round-trips, affine
   extraction, normalization, and the statement table. *)

open Loopir

let parse_e = Parser.parse_expr
let pp_e = Pretty.expr_to_string

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)

let test_lexer_basic () =
  let toks = Lexer.tokenize "DO i = 1, 20" |> List.map fst in
  Alcotest.(check (list string))
    "tokens"
    [ "DO"; "i"; "="; "1"; ","; "20"; "<eof>" ]
    (List.map Lexer.pp_token toks)

let test_lexer_operators () =
  let toks = Lexer.tokenize "a(i)**2 - b/c" |> List.map fst in
  Alcotest.(check (list string))
    "tokens"
    [ "a"; "("; "i"; ")"; "**"; "2"; "-"; "b"; "/"; "c"; "<eof>" ]
    (List.map Lexer.pp_token toks)

let test_lexer_comments_and_case () =
  let toks =
    Lexer.tokenize "! a comment line\nEndDo MIN ! trailing\n" |> List.map fst
  in
  Alcotest.(check (list string))
    "tokens" [ "ENDDO"; "MIN"; "<eof>" ]
    (List.map Lexer.pp_token toks)

let test_lexer_reals () =
  match Lexer.tokenize "0.5 + 2" |> List.map fst with
  | [ Lexer.REAL r; Lexer.PLUS; Lexer.INT 2; Lexer.EOF ] ->
      Alcotest.(check (float 1e-9)) "real" 0.5 r
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_error () =
  match Lexer.tokenize "a ? b" with
  | exception Lexer.Error (_, 1) -> ()
  | _ -> Alcotest.fail "expected lexer error"

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)

let test_parse_expr_precedence () =
  Alcotest.(check string) "mul binds" "1 + 2*i" (pp_e (parse_e "1 + 2 * i"));
  Alcotest.(check string)
    "paren kept" "(1 + i)*2"
    (pp_e (parse_e "(1 + i) * 2"));
  Alcotest.(check string) "assoc" "i - j - k" (pp_e (parse_e "i - j - k"));
  (* left associativity: (i-j)-k evaluates correctly *)
  Alcotest.(check string) "pow" "i**2" (pp_e (parse_e "i ** 2"));
  Alcotest.(check string) "min" "MIN(i, j + 1)" (pp_e (parse_e "min(i, j+1)"))

let test_parse_program () =
  let p =
    Parser.parse ~name:"t"
      "DO i = 1, n\n  DO j = 1, i\n    a(i, j) = a(i - 1, j) + 1.0\n  ENDDO\nENDDO"
  in
  Alcotest.(check (list string)) "params" [ "n" ] p.Ast.params;
  match p.Ast.body with
  | [ Ast.Loop l ] -> (
      Alcotest.(check string) "outer index" "i" l.Ast.index;
      match l.Ast.body with
      | [ Ast.Loop l2 ] ->
          Alcotest.(check string) "inner hi = i" "i"
            (Pretty.expr_to_string l2.Ast.hi);
          Alcotest.(check int) "one stmt" 1 (List.length l2.Ast.body)
      | _ -> Alcotest.fail "expected inner loop")
  | _ -> Alcotest.fail "expected single loop"

let test_parse_step () =
  let p = Parser.parse ~name:"t" "DO k = n, 0, -1\n  a(k) = a(k + 1)\nENDDO" in
  (match p.Ast.body with
  | [ Ast.Loop l ] -> Alcotest.(check int) "step -1" (-1) l.Ast.step
  | _ -> Alcotest.fail "loop expected");
  let p = Parser.parse ~name:"t" "DO k = 1, 10, 3\n  a(k) = b(k)\nENDDO" in
  match p.Ast.body with
  | [ Ast.Loop l ] -> Alcotest.(check int) "step 3" 3 l.Ast.step
  | _ -> Alcotest.fail "loop expected"

let test_parse_errors () =
  let bad s =
    match Parser.parse ~name:"t" s with
    | exception Parser.Error _ -> ()
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  bad "DO i = 1, n a(i) = 1.0";
  (* missing ENDDO *)
  bad "a(i) = ";
  bad "i = 1";
  (* scalar assignment is not a statement *)
  bad "DO i = 1, n, 0\n a(i)=1.0 \nENDDO"

let test_roundtrip_builtins () =
  List.iter
    (fun (name, p) ->
      let printed = Pretty.program_to_string p in
      let p2 = Parser.parse ~name printed in
      Alcotest.(check string)
        (name ^ " round-trips") printed
        (Pretty.program_to_string p2))
    Builtin.all

(* ------------------------------------------------------------------ *)
(* Affine                                                               *)

let aff = Alcotest.testable Affine.pp Affine.equal

let test_affine_extract () =
  let a = Affine.of_expr_exn (parse_e "3*i1 + 1") in
  Alcotest.check aff "3i1+1"
    Affine.(add (scale 3 (var "i1")) (const 1))
    a;
  let b = Affine.of_expr_exn (parse_e "2*i1 + i2 - 1") in
  Alcotest.(check int) "coeff i1" 2 (Affine.coeff b "i1");
  Alcotest.(check int) "coeff i2" 1 (Affine.coeff b "i2");
  let c = Affine.of_expr_exn (parse_e "-(i - 2*j)") in
  Alcotest.(check int) "neg distributes" (-1) (Affine.coeff c "i");
  Alcotest.(check int) "neg distributes j" 2 (Affine.coeff c "j");
  Alcotest.(check bool) "non-affine i*j" true
    (Affine.of_expr (parse_e "i*j") = None);
  Alcotest.(check bool) "non-affine ref" true
    (Affine.of_expr (parse_e "a(i)") = None)

let test_affine_eval () =
  let a = Affine.of_expr_exn (parse_e "2*i + 3*j - 4") in
  let env = function "i" -> 5 | "j" -> 1 | _ -> assert false in
  Alcotest.(check int) "eval" 9 (Affine.eval env a)

let test_bound_atoms () =
  (* MAX(-m, -j) as a lower bound: two atoms. *)
  let atoms = Affine.lower_atoms (parse_e "MAX(-m, -j)") in
  Alcotest.(check int) "two lower atoms" 2 (List.length atoms);
  List.iter
    (fun a -> Alcotest.(check int) "den 1" 1 a.Affine.den)
    atoms;
  (* MIN as upper bound *)
  let atoms = Affine.upper_atoms (parse_e "MIN(m, n - k)") in
  Alcotest.(check int) "two upper atoms" 2 (List.length atoms);
  (* floor division *)
  let atoms = Affine.upper_atoms (parse_e "(2*i)/3") in
  (match atoms with
  | [ a ] ->
      Alcotest.(check int) "den 3" 3 a.Affine.den;
      Alcotest.(check int) "num coeff" 2 (Affine.coeff a.Affine.num "i")
  | _ -> Alcotest.fail "one atom expected");
  (* MAX(..) - i distributes *)
  let atoms = Affine.lower_atoms (parse_e "MAX(-m, -j) - i") in
  Alcotest.(check int) "distributed" 2 (List.length atoms);
  List.iter
    (fun a -> Alcotest.(check int) "i coeff" (-1) (Affine.coeff a.Affine.num "i"))
    atoms;
  (* MIN as a lower bound is rejected *)
  (match Affine.lower_atoms (parse_e "MIN(i, j)") with
  | exception Affine.Unsupported _ -> ()
  | _ -> Alcotest.fail "MIN lower bound should be rejected");
  (* negation swaps MIN and MAX *)
  let atoms = Affine.upper_atoms (parse_e "-MAX(i, j)") in
  Alcotest.(check int) "neg max is min" 2 (List.length atoms)

(* ------------------------------------------------------------------ *)
(* Normalize                                                            *)

let test_normalize_negative_step () =
  let p = Parser.parse ~name:"t" "DO k = n, 0, -1\n  a(k) = a(k + 1)\nENDDO" in
  let p' = Normalize.unit_strides p in
  match p'.Ast.body with
  | [ Ast.Loop l ] -> (
      Alcotest.(check int) "unit step" 1 l.Ast.step;
      Alcotest.(check string) "lo 0" "0" (Pretty.expr_to_string l.Ast.lo);
      Alcotest.(check string) "hi n" "n - 0" (Pretty.expr_to_string l.Ast.hi);
      match l.Ast.body with
      | [ Ast.Assign ((_, [ sub ]), _) ] ->
          (* k ↦ n - k: subscript becomes n - 1*k *)
          let a = Affine.of_expr_exn sub in
          Alcotest.(check int) "k coeff" (-1) (Affine.coeff a "k");
          Alcotest.(check int) "n coeff" 1 (Affine.coeff a "n")
      | _ -> Alcotest.fail "assign expected")
  | _ -> Alcotest.fail "loop expected"

let test_normalize_step3 () =
  let p = Parser.parse ~name:"t" "DO k = 1, 10, 3\n  a(k) = b(k)\nENDDO" in
  let p' = Normalize.unit_strides p in
  match p'.Ast.body with
  | [ Ast.Loop l ] ->
      Alcotest.(check int) "unit step" 1 l.Ast.step;
      Alcotest.(check string) "hi (10-1)/3" "(10 - 1)/3"
        (Pretty.expr_to_string l.Ast.hi)
  | _ -> Alcotest.fail "loop expected"

let test_normalize_identity_on_unit () =
  let p = Builtin.example1 in
  let p' = Normalize.unit_strides p in
  Alcotest.(check string) "unchanged" (Pretty.program_to_string p)
    (Pretty.program_to_string p')

(* ------------------------------------------------------------------ *)
(* Prog                                                                 *)

let test_stmt_table_example3 () =
  let infos = Prog.stmts_of Builtin.example3 in
  Alcotest.(check int) "two statements" 2 (List.length infos);
  let s1 = List.nth infos 0 and s2 = List.nth infos 1 in
  Alcotest.(check (list int)) "s1 path" [ 1; 1; 1; 1 ] s1.Prog.path;
  Alcotest.(check (list int)) "s2 path" [ 1; 1; 2 ] s2.Prog.path;
  Alcotest.(check (list string)) "s1 loops" [ "i"; "j"; "k" ]
    (Prog.loop_vars s1);
  Alcotest.(check (list string)) "s2 loops" [ "i"; "j" ] (Prog.loop_vars s2);
  Alcotest.(check int) "max depth" 3 (Prog.max_depth Builtin.example3)

let test_refs_and_arrays () =
  let infos = Prog.stmts_of Builtin.example1 in
  let s = List.hd infos in
  let refs = Prog.refs_of s in
  Alcotest.(check int) "two refs" 2 (List.length refs);
  (match refs with
  | [ (a1, _, Prog.Write); (a2, _, Prog.Read) ] ->
      Alcotest.(check string) "write a" "a" a1;
      Alcotest.(check string) "read a" "a" a2
  | _ -> Alcotest.fail "expected write then read");
  Alcotest.(check (list (pair string int)))
    "arrays" [ ("a", 2) ]
    (Prog.arrays_of Builtin.example1)

let test_cholesky_table () =
  let p = Normalize.unit_strides Builtin.cholesky in
  let infos = Prog.stmts_of p in
  Alcotest.(check int) "9 statements" 9 (List.length infos);
  Alcotest.(check int) "depth 4" 4 (Prog.max_depth p);
  Alcotest.(check (list (pair string int)))
    "arrays"
    [ ("a", 3); ("b", 3); ("epss", 1) ]
    (Prog.arrays_of p);
  Alcotest.(check (list string)) "params" [ "m"; "n"; "nmat"; "nrhs" ]
    p.Ast.params

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)

let gen_affine_expr =
  (* Random affine expressions over {i, j} to round-trip through the
     extractor. *)
  QCheck2.Gen.(
    let leaf =
      oneof
        [
          map (fun k -> Ast.Int k) (int_range (-9) 9);
          oneofl [ Ast.Var "i"; Ast.Var "j" ];
        ]
    in
    let rec build n =
      if n = 0 then leaf
      else
        oneof
          [
            leaf;
            map2 (fun a b -> Ast.Bin (Ast.Add, a, b)) (build (n - 1)) (build (n - 1));
            map2 (fun a b -> Ast.Bin (Ast.Sub, a, b)) (build (n - 1)) (build (n - 1));
            map2
              (fun k a -> Ast.Bin (Ast.Mul, Ast.Int k, a))
              (int_range (-4) 4) (build (n - 1));
            map (fun a -> Ast.Un (Ast.Neg, a)) (build (n - 1));
          ]
    in
    build 3)

let prop_affine_agrees_with_eval =
  QCheck2.Test.make ~name:"affine extraction preserves evaluation" ~count:300
    QCheck2.Gen.(triple gen_affine_expr (int_range (-10) 10) (int_range (-10) 10))
    (fun (e, vi, vj) ->
      let a = Affine.of_expr_exn e in
      let env = function "i" -> vi | "j" -> vj | _ -> 0 in
      let rec eval_ast = function
        | Ast.Int k -> k
        | Ast.Var v -> env v
        | Ast.Bin (Ast.Add, a, b) -> eval_ast a + eval_ast b
        | Ast.Bin (Ast.Sub, a, b) -> eval_ast a - eval_ast b
        | Ast.Bin (Ast.Mul, a, b) -> eval_ast a * eval_ast b
        | Ast.Un (Ast.Neg, a) -> -eval_ast a
        | _ -> assert false
      in
      Affine.eval env a = eval_ast e)

let prop_parse_pretty_roundtrip =
  QCheck2.Test.make ~name:"expr parse∘pretty preserves meaning" ~count:300
    QCheck2.Gen.(triple gen_affine_expr (int_range (-10) 10) (int_range (-10) 10))
    (fun (e, vi, vj) ->
      let e' = Parser.parse_expr (Pretty.expr_to_string e) in
      let env = function "i" -> vi | "j" -> vj | _ -> 0 in
      Affine.eval env (Affine.of_expr_exn e')
      = Affine.eval env (Affine.of_expr_exn e))

let () =
  Alcotest.run "loopir"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments/case" `Quick test_lexer_comments_and_case;
          Alcotest.test_case "reals" `Quick test_lexer_reals;
          Alcotest.test_case "errors" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_expr_precedence;
          Alcotest.test_case "program structure" `Quick test_parse_program;
          Alcotest.test_case "steps" `Quick test_parse_step;
          Alcotest.test_case "rejects bad input" `Quick test_parse_errors;
          Alcotest.test_case "builtin round-trips" `Quick test_roundtrip_builtins;
          QCheck_alcotest.to_alcotest prop_parse_pretty_roundtrip;
        ] );
      ( "affine",
        [
          Alcotest.test_case "extraction" `Quick test_affine_extract;
          Alcotest.test_case "evaluation" `Quick test_affine_eval;
          Alcotest.test_case "bound atoms" `Quick test_bound_atoms;
          QCheck_alcotest.to_alcotest prop_affine_agrees_with_eval;
        ] );
      ( "normalize",
        [
          Alcotest.test_case "negative step" `Quick test_normalize_negative_step;
          Alcotest.test_case "step 3" `Quick test_normalize_step3;
          Alcotest.test_case "identity on unit loops" `Quick
            test_normalize_identity_on_unit;
        ] );
      ( "prog",
        [
          Alcotest.test_case "statement paths (example 3)" `Quick
            test_stmt_table_example3;
          Alcotest.test_case "refs and arrays" `Quick test_refs_and_arrays;
          Alcotest.test_case "cholesky table" `Quick test_cholesky_table;
        ] );
    ]
