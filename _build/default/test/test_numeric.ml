(* Unit and property tests for the numeric substrate. *)

module S = Numeric.Safeint
module Q = Numeric.Rat

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Safeint units                                                       *)

let test_add_basic () =
  check_int "2+3" 5 (S.add 2 3);
  check_int "neg" (-7) (S.add (-3) (-4));
  check_int "mixed" 1 (S.add 4 (-3))

let test_overflow_detected () =
  Alcotest.check_raises "add max" S.Overflow (fun () ->
      ignore (S.add max_int 1));
  Alcotest.check_raises "sub min" S.Overflow (fun () ->
      ignore (S.sub min_int 1));
  Alcotest.check_raises "mul big" S.Overflow (fun () ->
      ignore (S.mul max_int 2));
  Alcotest.check_raises "neg min" S.Overflow (fun () -> ignore (S.neg min_int));
  Alcotest.check_raises "abs min" S.Overflow (fun () -> ignore (S.abs min_int))

let test_gcd () =
  check_int "gcd 12 18" 6 (S.gcd 12 18);
  check_int "gcd neg" 6 (S.gcd (-12) 18);
  check_int "gcd 0 5" 5 (S.gcd 0 5);
  check_int "gcd 0 0" 0 (S.gcd 0 0);
  check_int "lcm 4 6" 12 (S.lcm 4 6);
  check_int "lcm 0" 0 (S.lcm 0 7)

let test_egcd () =
  let cases = [ (12, 18); (-12, 18); (7, 0); (0, 0); (240, 46); (-5, -3) ] in
  List.iter
    (fun (a, b) ->
      let g, x, y = S.egcd a b in
      check_int "g = gcd" (S.gcd a b) g;
      check_int "bezout" g ((a * x) + (b * y)))
    cases

let test_division () =
  check_int "fdiv 7 2" 3 (S.fdiv 7 2);
  check_int "fdiv -7 2" (-4) (S.fdiv (-7) 2);
  check_int "fdiv 7 -2" (-4) (S.fdiv 7 (-2));
  check_int "fdiv -7 -2" 3 (S.fdiv (-7) (-2));
  check_int "cdiv 7 2" 4 (S.cdiv 7 2);
  check_int "cdiv -7 2" (-3) (S.cdiv (-7) 2);
  check_int "cdiv 7 -2" (-3) (S.cdiv 7 (-2));
  check_int "emod -7 3" 2 (S.emod (-7) 3);
  check_int "emod 7 3" 1 (S.emod 7 3);
  Alcotest.check_raises "fdiv by zero" Division_by_zero (fun () ->
      ignore (S.fdiv 1 0))

let test_pow () =
  check_int "3^4" 81 (S.pow 3 4);
  check_int "x^0" 1 (S.pow 99 0);
  check_int "0^0" 1 (S.pow 0 0);
  check_int "(-2)^3" (-8) (S.pow (-2) 3);
  Alcotest.check_raises "neg exponent"
    (Invalid_argument "Safeint.pow: negative exponent") (fun () ->
      ignore (S.pow 2 (-1)))

(* ------------------------------------------------------------------ *)
(* Safeint properties                                                  *)

let gen_i = QCheck2.Gen.int_range (-10000) 10000

let prop_fdiv_emod =
  QCheck2.Test.make ~name:"a = b*fdiv(a,b) + emod(a,b) for b>0" ~count:500
    QCheck2.Gen.(pair gen_i (int_range 1 1000))
    (fun (a, b) ->
      let q = S.fdiv a b and r = S.emod a b in
      a = (b * q) + r && 0 <= r && r < b)

let prop_gcd_divides =
  QCheck2.Test.make ~name:"gcd divides both" ~count:500
    QCheck2.Gen.(pair gen_i gen_i)
    (fun (a, b) ->
      let g = S.gcd a b in
      if a = 0 && b = 0 then g = 0 else a mod g = 0 && b mod g = 0)

(* ------------------------------------------------------------------ *)
(* Rat units                                                           *)

let rat = Alcotest.testable Q.pp Q.equal

let test_rat_normalization () =
  Alcotest.check rat "6/4 = 3/2" (Q.make 3 2) (Q.make 6 4);
  Alcotest.check rat "neg den" (Q.make (-3) 2) (Q.make 3 (-2));
  Alcotest.check rat "0/5 = 0" Q.zero (Q.make 0 5);
  check_int "den positive" 2 (Q.den (Q.make 3 (-2)));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (Q.make 1 0))

let test_rat_arith () =
  Alcotest.check rat "1/2 + 1/3" (Q.make 5 6) (Q.add (Q.make 1 2) (Q.make 1 3));
  Alcotest.check rat "1/2 - 1/3" (Q.make 1 6) (Q.sub (Q.make 1 2) (Q.make 1 3));
  Alcotest.check rat "2/3 * 3/4" (Q.make 1 2) (Q.mul (Q.make 2 3) (Q.make 3 4));
  Alcotest.check rat "(1/2) / (1/4)" (Q.of_int 2)
    (Q.div (Q.make 1 2) (Q.make 1 4));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero))

let test_rat_floor_ceil () =
  check_int "floor 7/2" 3 (Q.floor (Q.make 7 2));
  check_int "ceil 7/2" 4 (Q.ceil (Q.make 7 2));
  check_int "floor -7/2" (-4) (Q.floor (Q.make (-7) 2));
  check_int "ceil -7/2" (-3) (Q.ceil (Q.make (-7) 2));
  check_int "floor 4" 4 (Q.floor (Q.of_int 4));
  check_int "ceil 4" 4 (Q.ceil (Q.of_int 4))

let test_rat_compare () =
  Alcotest.(check bool) "1/2 < 2/3" true (Q.compare (Q.make 1 2) (Q.make 2 3) < 0);
  Alcotest.(check bool) "eq" true (Q.equal (Q.make 2 4) (Q.make 1 2));
  check_int "sign neg" (-1) (Q.sign (Q.make (-1) 5));
  Alcotest.check rat "min" (Q.make 1 2) (Q.min (Q.make 1 2) (Q.make 2 3));
  Alcotest.check rat "max" (Q.make 2 3) (Q.max (Q.make 1 2) (Q.make 2 3))

let test_rat_to_int () =
  check_int "to_int 8/4" 2 (Q.to_int_exn (Q.make 8 4));
  Alcotest.(check bool) "is_integer" false (Q.is_integer (Q.make 1 2));
  Alcotest.check_raises "not integer"
    (Invalid_argument "Rat.to_int_exn: not an integer") (fun () ->
      ignore (Q.to_int_exn (Q.make 1 2)))

let gen_rat =
  QCheck2.Gen.map
    (fun (n, d) -> Q.make n d)
    QCheck2.Gen.(pair (int_range (-1000) 1000) (int_range 1 1000))

let prop_rat_field =
  QCheck2.Test.make ~name:"rational field laws" ~count:300
    QCheck2.Gen.(triple gen_rat gen_rat gen_rat)
    (fun (a, b, c) ->
      Q.equal (Q.add a b) (Q.add b a)
      && Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c))
      && Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c))
      && Q.equal (Q.sub a a) Q.zero)

let prop_rat_floor =
  QCheck2.Test.make ~name:"floor ≤ q < floor+1" ~count:300 gen_rat (fun q ->
      let f = Q.floor q in
      Q.compare (Q.of_int f) q <= 0 && Q.compare q (Q.of_int (f + 1)) < 0)

let () =
  Alcotest.run "numeric"
    [
      ( "safeint",
        [
          Alcotest.test_case "add basics" `Quick test_add_basic;
          Alcotest.test_case "overflow detected" `Quick test_overflow_detected;
          Alcotest.test_case "gcd/lcm" `Quick test_gcd;
          Alcotest.test_case "egcd bezout" `Quick test_egcd;
          Alcotest.test_case "floor/ceil div" `Quick test_division;
          Alcotest.test_case "pow" `Quick test_pow;
          QCheck_alcotest.to_alcotest prop_fdiv_emod;
          QCheck_alcotest.to_alcotest prop_gcd_divides;
        ] );
      ( "rat",
        [
          Alcotest.test_case "normalization" `Quick test_rat_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
          Alcotest.test_case "compare/min/max" `Quick test_rat_compare;
          Alcotest.test_case "to_int" `Quick test_rat_to_int;
          QCheck_alcotest.to_alcotest prop_rat_field;
          QCheck_alcotest.to_alcotest prop_rat_floor;
        ] );
    ]
