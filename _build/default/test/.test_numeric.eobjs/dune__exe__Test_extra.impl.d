test/test_extra.ml: Alcotest Array Core Depend Linalg List Loopir Presburger Printf QCheck2 QCheck_alcotest Runtime
