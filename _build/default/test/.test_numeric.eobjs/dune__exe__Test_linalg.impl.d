test/test_linalg.ml: Alcotest Array Linalg List Numeric QCheck2 QCheck_alcotest
