test/test_integration.ml: Alcotest Baselines Core Depend Linalg List Loopir Presburger Printf QCheck2 QCheck_alcotest Runtime
