test/test_depend.ml: Alcotest Array Depend Linalg List Loopir Presburger QCheck2 QCheck_alcotest
