test/test_baselines.ml: Alcotest Array Baselines Core Depend Linalg List Loopir Presburger Printf Runtime
