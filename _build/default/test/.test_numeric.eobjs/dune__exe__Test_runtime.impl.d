test/test_runtime.ml: Alcotest Array Core Depend List Loopir Printf Runtime
