test/test_loopir.ml: Affine Alcotest Ast Builtin Lexer List Loopir Normalize Parser Pretty Prog QCheck2 QCheck_alcotest
