test/test_presburger.ml: Alcotest Array Linalg List Presburger Printf QCheck2 QCheck_alcotest
