test/test_core.ml: Alcotest Array Core Depend Hashtbl Linalg List Loopir Option Presburger Printf QCheck2 QCheck_alcotest
