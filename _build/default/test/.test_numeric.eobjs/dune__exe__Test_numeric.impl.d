test/test_numeric.ml: Alcotest List Numeric QCheck2 QCheck_alcotest
