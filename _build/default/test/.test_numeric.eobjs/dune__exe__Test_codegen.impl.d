test/test_codegen.ml: Alcotest Array Codegen Core Depend List Loopir Numeric Presburger QCheck2 QCheck_alcotest String
