(* Tests for code generation: Fourier–Motzkin bound extraction must
   enumerate exactly the polyhedron's points (validated against the exact
   enumerator), and the emitted listings must contain the paper's structural
   elements. *)

module L = Presburger.Linexpr
module C = Presburger.Constr
module P = Presburger.Poly
module Bounds = Codegen.Bounds
module Emit = Codegen.Emit
module Enum = Presburger.Enum
module Iset = Presburger.Iset

(* Evaluate a bound list at a point prefix. *)
let eval_bound xs { Bounds.num; den } ~ceil =
  let v = L.eval num xs in
  if ceil then Numeric.Safeint.cdiv v den else Numeric.Safeint.fdiv v den

(* Walk a nest: enumerate exactly the points its loops + guards produce
   (handling loop strides like the emitted code would). *)
let enumerate_nest n_total nest =
  let pts = ref [] in
  let xs = Array.make n_total 0 in
  let rec go k =
    if k = nest.Bounds.n_iters then pts := Array.copy xs :: !pts
    else begin
      let lv = nest.Bounds.levels.(k) in
      let lo =
        List.fold_left
          (fun acc b -> max acc (eval_bound xs b ~ceil:true))
          min_int lv.Bounds.lowers
      in
      let hi =
        List.fold_left
          (fun acc b -> min acc (eval_bound xs b ~ceil:false))
          max_int lv.Bounds.uppers
      in
      let start, step =
        match lv.Bounds.stride with
        | None -> (lo, 1)
        | Some (m, r) ->
            (lo + Numeric.Safeint.emod (L.eval r xs - lo) m, m)
      in
      let v = ref start in
      while !v <= hi do
        xs.(k) <- !v;
        if List.for_all (fun g -> C.holds g xs) lv.Bounds.guards then go (k + 1);
        v := !v + step
      done;
      xs.(k) <- 0
    end
  in
  go 0;
  List.rev !pts

let ge coef const = C.Ge (L.make (Array.of_list coef) const)
let eq coef const = C.Eq (L.make (Array.of_list coef) const)
let dv m coef const = C.Div (m, L.make (Array.of_list coef) const)

let check_nest_matches name p n_iters =
  let nest = Bounds.of_poly ~n_iters p in
  let got = enumerate_nest (P.dim p) nest in
  let expected = Enum.points_polys (P.dim p) [ p ] in
  Alcotest.(check int)
    (name ^ " count")
    (List.length expected) (List.length got);
  Alcotest.(check bool)
    (name ^ " same points")
    true
    (List.sort compare got = List.sort compare expected)

let test_bounds_triangle () =
  (* 1 ≤ i ≤ 8, 1 ≤ j ≤ i *)
  let p =
    P.make 2
      [ ge [ 1; 0 ] (-1); ge [ -1; 0 ] 8; ge [ 0; 1 ] (-1); ge [ 1; -1 ] 0 ]
  in
  check_nest_matches "triangle" p 2

let test_bounds_diagonal_equality () =
  (* 2j = i, 0 ≤ i ≤ 10: j bounds are the exact halved range. *)
  let p = P.make 2 [ eq [ 1; -2 ] 0; ge [ 1; 0 ] 0; ge [ -1; 0 ] 10 ] in
  check_nest_matches "diagonal" p 2

let test_bounds_divisibility_guard () =
  (* 1 ≤ i ≤ 20 ∧ 3 | i + 1 *)
  let p = P.make 1 [ ge [ 1 ] (-1); ge [ -1 ] 20; dv 3 [ 1 ] 1 ] in
  let nest = Bounds.of_poly ~n_iters:1 p in
  Alcotest.(check int) "one guard" 1
    (List.length nest.Bounds.levels.(0).Bounds.guards);
  check_nest_matches "mod guard" p 1

let test_bounds_transitive () =
  (* i ≤ j ∧ 1 ≤ j ≤ 5: i's upper bound must come through j's. *)
  let p = P.make 2 [ ge [ -1; 1 ] 0; ge [ 0; 1 ] (-1); ge [ 0; -1 ] 5; ge [ 1; 0 ] (-2) ] in
  check_nest_matches "transitive" p 2

let test_bounds_unbounded_detected () =
  let p = P.make 1 [ ge [ 1 ] 0 ] in
  match Bounds.of_poly ~n_iters:1 p with
  | exception Bounds.Unbounded 0 -> ()
  | _ -> Alcotest.fail "unbounded not detected"

let test_bounds_empty_poly () =
  let p = P.make 1 [ ge [ 1 ] 0; ge [ -1 ] (-5) ] in
  (* i ≥ 0 ∧ i ≤ -5: normalize keeps it; nest enumerates nothing. *)
  let nest = Bounds.of_poly ~n_iters:1 p in
  Alcotest.(check (list (list int))) "no points" []
    (List.map Array.to_list (enumerate_nest 1 nest))

(* Property: random bounded polyhedra round-trip through bound extraction. *)
let gen_constr n =
  QCheck2.Gen.(
    let* kind = int_range 0 2 in
    let* coef = array_size (pure n) (int_range (-3) 3) in
    let* const = int_range (-8) 8 in
    match kind with
    | 0 -> pure (C.Ge (L.make coef const))
    | 1 -> pure (C.Eq (L.make coef const))
    | _ ->
        let* m = int_range 2 4 in
        pure (C.Div (m, L.make coef const)))

let box n lo hi =
  List.concat
    (List.init n (fun k ->
         [
           C.Ge (L.add_const (L.var n k) (-lo));
           C.Ge (L.add_const (L.neg (L.var n k)) hi);
         ]))

let gen_poly n =
  QCheck2.Gen.(
    let* k = int_range 0 2 in
    let* cs = list_size (pure k) (gen_constr n) in
    pure (P.make n (cs @ box n (-6) 6)))

let prop_nest_exact =
  QCheck2.Test.make ~name:"nest enumeration = exact points (2D)" ~count:200
    (gen_poly 2) (fun p ->
      let nest = Bounds.of_poly ~n_iters:2 p in
      let got = enumerate_nest 2 nest |> List.sort compare in
      let expected = Enum.points_polys 2 [ p ] |> List.sort compare in
      got = expected)

let prop_nest_strided_exact =
  QCheck2.Test.make ~name:"strided nest enumeration = exact points (2D)"
    ~count:200 (gen_poly 2) (fun p ->
      let nest = Bounds.with_strides (Bounds.of_poly ~n_iters:2 p) in
      let got = enumerate_nest 2 nest |> List.sort compare in
      let expected = Enum.points_polys 2 [ p ] |> List.sort compare in
      got = expected)

let test_stride_extraction () =
  (* 1 ≤ i ≤ 20 ∧ 3 | i + 1: stride 3 starting at residue 2. *)
  let p = P.make 1 [ ge [ 1 ] (-1); ge [ -1 ] 20; dv 3 [ 1 ] 1 ] in
  let nest = Bounds.with_strides (Bounds.of_poly ~n_iters:1 p) in
  (match nest.Bounds.levels.(0).Bounds.stride with
  | Some (3, _) -> ()
  | _ -> Alcotest.fail "stride 3 expected");
  Alcotest.(check int) "guard consumed" 0
    (List.length nest.Bounds.levels.(0).Bounds.guards);
  let got = enumerate_nest 1 nest |> List.map (fun a -> a.(0)) in
  Alcotest.(check (list int)) "points" [ 2; 5; 8; 11; 14; 17; 20 ] got

let test_stride_non_coprime_kept_as_guard () =
  (* 4 | 2i + 1 is unsatisfiable and gcd(2,4) ≠ 1: must stay a guard (the
     normalizer reduces it to 2 | 2i + 1 → 2 | 1 → contradiction, so the
     nest is empty). *)
  let p = P.make 1 [ ge [ 1 ] 0; ge [ -1 ] 10; dv 4 [ 2 ] 1 ] in
  let nest = Bounds.with_strides (Bounds.of_poly ~n_iters:1 p) in
  Alcotest.(check (list (list int))) "no points" []
    (List.map Array.to_list (enumerate_nest 1 nest))

(* ------------------------------------------------------------------ *)
(* Emission                                                             *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_emit_doall_structure () =
  let a = Depend.Solve.analyze_simple Loopir.Builtin.example1 in
  let three = Core.Threeset.compute ~phi:a.Depend.Solve.phi ~rd:a.Depend.Solve.rd in
  let txt =
    Emit.doall_of_set ~names:(Iset.names a.Depend.Solve.phi) three.Core.Threeset.p1
  in
  Alcotest.(check bool) "has DOALL" true (contains txt "DOALL i1");
  Alcotest.(check bool) "has ENDDOALL" true (contains txt "ENDDOALL");
  Alcotest.(check bool) "body call" true (contains txt "s(i1, i2)")

let test_emit_rec_listing_ex1 () =
  match Core.Partition.choose Loopir.Builtin.example1 with
  | Core.Partition.Rec_chains rp ->
      let txt = Emit.rec_partitioning rp in
      Alcotest.(check bool) "P1 header" true (contains txt "initial partition");
      Alcotest.(check bool) "W calls chain" true (contains txt "CALL chain");
      Alcotest.(check bool) "final partition" true (contains txt "final partition");
      Alcotest.(check bool) "chain subroutine" true
        (contains txt "SUBROUTINE chain(i1, i2)");
      (* The step of example 1: i1' = 3·i1 - 2, i2' = 2·i1 + i2 - 2. *)
      Alcotest.(check bool) "step i1" true (contains txt "3*i1 - 2");
      Alcotest.(check bool) "step i2" true (contains txt "2*i1 + i2 - 2")
  | _ -> Alcotest.fail "REC expected"

let test_emit_dataflow_listing () =
  let a = Depend.Solve.analyze_simple Loopir.Builtin.fig2 in
  let fronts =
    Core.Dataflow.peel_symbolic ~phi:a.Depend.Solve.phi ~rd:a.Depend.Solve.rd
      ~max_steps:10
  in
  let txt = Emit.dataflow_listing fronts ~names:(Iset.names a.Depend.Solve.phi) in
  Alcotest.(check bool) "front 1" true (contains txt "dataflow front 1");
  Alcotest.(check bool) "front 2" true (contains txt "dataflow front 2")

(* ------------------------------------------------------------------ *)
(* Visualization                                                        *)

let test_viz_dot_trace () =
  let prog = List.assoc "prefix_sum" Loopir.Builtin.corpus in
  let tr = Depend.Trace.build prog ~params:[ ("n", 6) ] in
  let dot = Codegen.Viz.dot_of_trace tr in
  Alcotest.(check bool) "digraph" true (contains dot "digraph dependences");
  Alcotest.(check bool) "node" true (contains dot "S0(2)");
  Alcotest.(check bool) "edge" true (contains dot "->");
  (* truncation marker on tiny cap *)
  let dot2 = Codegen.Viz.dot_of_trace ~max_nodes:2 tr in
  Alcotest.(check bool) "truncated" true (contains dot2 "truncated")

and test_viz_dot_chains () =
  match Core.Partition.choose Loopir.Builtin.example1 with
  | Core.Partition.Rec_chains rp ->
      let c = Core.Partition.materialize_rec rp ~params:[| 10; 10 |] in
      let dot = Codegen.Viz.dot_of_chains c.Core.Partition.chains in
      Alcotest.(check bool) "digraph" true (contains dot "digraph chains");
      Alcotest.(check bool) "chain point (4, 3)" true (contains dot "(4, 3)")
  | _ -> Alcotest.fail "REC expected"

and test_viz_ascii () =
  match Core.Partition.choose Loopir.Builtin.example1 with
  | Core.Partition.Rec_chains rp ->
      let grid =
        Codegen.Viz.ascii_three_sets rp.Core.Partition.three
          ~params:[| 10; 10 |] ~x_range:(1, 10) ~y_range:(1, 10)
      in
      (* rows 1-2 are pure P1; (4,3) is intermediate *)
      Alcotest.(check bool) "has P1 row" true (contains grid "1111111111");
      Alcotest.(check bool) "has intermediate mark" true (contains grid "2")
  | _ -> Alcotest.fail "REC expected"

let () =
  Alcotest.run "codegen"
    [
      ( "bounds",
        [
          Alcotest.test_case "triangle nest" `Quick test_bounds_triangle;
          Alcotest.test_case "equality stride" `Quick
            test_bounds_diagonal_equality;
          Alcotest.test_case "divisibility guard" `Quick
            test_bounds_divisibility_guard;
          Alcotest.test_case "transitive bound" `Quick test_bounds_transitive;
          Alcotest.test_case "unbounded detected" `Quick
            test_bounds_unbounded_detected;
          Alcotest.test_case "empty polyhedron" `Quick test_bounds_empty_poly;
          QCheck_alcotest.to_alcotest prop_nest_exact;
          QCheck_alcotest.to_alcotest prop_nest_strided_exact;
          Alcotest.test_case "stride extraction" `Quick test_stride_extraction;
          Alcotest.test_case "non-coprime stride stays guard" `Quick
            test_stride_non_coprime_kept_as_guard;
        ] );
      ( "emit",
        [
          Alcotest.test_case "DOALL structure" `Quick test_emit_doall_structure;
          Alcotest.test_case "REC listing (ex1)" `Quick
            test_emit_rec_listing_ex1;
          Alcotest.test_case "dataflow listing (fig2)" `Quick
            test_emit_dataflow_listing;
        ] );
      ( "viz",
        [
          Alcotest.test_case "DOT trace" `Quick test_viz_dot_trace;
          Alcotest.test_case "DOT chains" `Quick test_viz_dot_chains;
          Alcotest.test_case "ASCII grid" `Quick test_viz_ascii;
        ] );
    ]
