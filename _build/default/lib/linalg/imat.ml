module S = Numeric.Safeint

type t = int array array

let make r c f = Array.init r (fun i -> Array.init c (fun j -> f i j))

let of_rows rows =
  match rows with
  | [] -> invalid_arg "Imat.of_rows: empty"
  | r0 :: rest ->
      let c = Array.length r0 in
      if List.exists (fun r -> Array.length r <> c) rest then
        invalid_arg "Imat.of_rows: ragged rows";
      Array.of_list (List.map Array.copy rows)

let rows m = Array.length m
let cols m = if Array.length m = 0 then 0 else Array.length m.(0)
let get m i j = m.(i).(j)
let identity n = make n n (fun i j -> if i = j then 1 else 0)
let zero r c = make r c (fun _ _ -> 0)
let transpose m = make (cols m) (rows m) (fun i j -> m.(j).(i))
let add a b = make (rows a) (cols a) (fun i j -> S.add a.(i).(j) b.(i).(j))
let sub a b = make (rows a) (cols a) (fun i j -> S.sub a.(i).(j) b.(i).(j))
let neg a = make (rows a) (cols a) (fun i j -> S.neg a.(i).(j))
let scale k a = make (rows a) (cols a) (fun i j -> S.mul k a.(i).(j))

let mul a b =
  if cols a <> rows b then invalid_arg "Imat.mul: dimension mismatch";
  make (rows a) (cols b) (fun i j ->
      let acc = ref 0 in
      for k = 0 to cols a - 1 do
        acc := S.add !acc (S.mul a.(i).(k) b.(k).(j))
      done;
      !acc)

let vecmat v m =
  if Array.length v <> rows m then invalid_arg "Imat.vecmat: dimension";
  Array.init (cols m) (fun j ->
      let acc = ref 0 in
      for k = 0 to rows m - 1 do
        acc := S.add !acc (S.mul v.(k) m.(k).(j))
      done;
      !acc)

let equal a b = a = b
let is_square m = rows m = cols m

(* Bareiss fraction-free elimination: every division below is exact. *)
let det m =
  if not (is_square m) then invalid_arg "Imat.det: not square";
  let n = rows m in
  if n = 0 then 1
  else
    let a = Array.map Array.copy m in
    let sign = ref 1 in
    let prev = ref 1 in
    let result = ref None in
    (try
       for k = 0 to n - 2 do
         if a.(k).(k) = 0 then begin
           let p = ref (-1) in
           for i = n - 1 downto k + 1 do
             if a.(i).(k) <> 0 then p := i
           done;
           if !p < 0 then begin
             result := Some 0;
             raise Exit
           end;
           let t = a.(k) in
           a.(k) <- a.(!p);
           a.(!p) <- t;
           sign := - !sign
         end;
         for i = k + 1 to n - 1 do
           for j = k + 1 to n - 1 do
             let v =
               S.sub (S.mul a.(i).(j) a.(k).(k)) (S.mul a.(i).(k) a.(k).(j))
             in
             a.(i).(j) <- v / !prev
           done;
           a.(i).(k) <- 0
         done;
         prev := a.(k).(k)
       done
     with Exit -> ());
    match !result with Some d -> d | None -> !sign * a.(n - 1).(n - 1)

let rank m =
  let r = rows m and c = cols m in
  if r = 0 || c = 0 then 0
  else
    let a =
      Array.map (Array.map (fun x -> Numeric.Rat.of_int x)) m
    in
    let rank = ref 0 in
    let row = ref 0 in
    for col = 0 to c - 1 do
      if !row < r then begin
        let p = ref (-1) in
        for i = r - 1 downto !row do
          if not (Numeric.Rat.is_zero a.(i).(col)) then p := i
        done;
        if !p >= 0 then begin
          let t = a.(!row) in
          a.(!row) <- a.(!p);
          a.(!p) <- t;
          let pivot = a.(!row).(col) in
          for i = !row + 1 to r - 1 do
            let f = Numeric.Rat.div a.(i).(col) pivot in
            for j = col to c - 1 do
              a.(i).(j) <-
                Numeric.Rat.sub a.(i).(j) (Numeric.Rat.mul f a.(!row).(j))
            done
          done;
          incr row;
          incr rank
        end
      end
    done;
    !rank

let row m i = Array.copy m.(i)
let to_rows m = Array.to_list (Array.map Array.copy m)

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i r ->
      if i > 0 then Format.fprintf ppf "@,";
      Ivec.pp ppf r)
    m;
  Format.fprintf ppf "@]"

let to_string m = Format.asprintf "%a" pp m
