lib/linalg/imat.ml: Array Format Ivec List Numeric
