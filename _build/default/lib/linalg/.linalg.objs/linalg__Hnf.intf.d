lib/linalg/hnf.mli: Format Imat Ivec
