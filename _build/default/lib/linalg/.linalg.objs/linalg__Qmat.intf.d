lib/linalg/qmat.mli: Format Imat Ivec Numeric
