lib/linalg/qmat.ml: Array Format Numeric
