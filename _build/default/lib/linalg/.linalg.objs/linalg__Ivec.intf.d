lib/linalg/ivec.mli: Format
