lib/linalg/ivec.ml: Array Format Numeric
