lib/linalg/hnf.ml: Array Format Imat Ivec List Numeric
