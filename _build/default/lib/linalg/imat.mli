(** Integer matrices, stored as arrays of rows.

    A matrix [m] with [rows m = r] and [cols m = c] maps a row vector of
    dimension [r] to one of dimension [c] via {!vecmat}. *)

type t = int array array

val make : int -> int -> (int -> int -> int) -> t
(** [make r c f] is the [r×c] matrix with entry [f i j] at row [i], col [j]. *)

val of_rows : int array list -> t
(** [of_rows rows] builds a matrix from row vectors; raises
    [Invalid_argument] when rows have differing lengths or the list is
    empty. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> int
val identity : int -> t
val zero : int -> int -> t
val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val mul : t -> t -> t

val vecmat : Ivec.t -> t -> Ivec.t
(** [vecmat v m] is the row vector [v·m]. *)

val equal : t -> t -> bool
val is_square : t -> bool

val det : t -> int
(** [det m] is the determinant of a square matrix, computed exactly by
    fraction-free (Bareiss) elimination; raises [Invalid_argument] for a
    non-square matrix. *)

val rank : t -> int
(** [rank m] is the rank over the rationals. *)

val row : t -> int -> Ivec.t
val to_rows : t -> Ivec.t list
val pp : Format.formatter -> t -> unit
val to_string : t -> string
