type t = int array

let zero n = Array.make n 0
let dim = Array.length
let add a b = Array.map2 Numeric.Safeint.add a b
let sub a b = Array.map2 Numeric.Safeint.sub a b
let neg a = Array.map Numeric.Safeint.neg a
let scale k a = Array.map (Numeric.Safeint.mul k) a

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Ivec.dot";
  let acc = ref 0 in
  Array.iteri
    (fun k ak -> acc := Numeric.Safeint.add !acc (Numeric.Safeint.mul ak b.(k)))
    a;
  !acc

let equal a b = a = b

let compare_lex a b =
  if Array.length a <> Array.length b then invalid_arg "Ivec.compare_lex";
  let n = Array.length a in
  let rec go k =
    if k = n then 0
    else
      let c = compare a.(k) b.(k) in
      if c <> 0 then c else go (k + 1)
  in
  go 0

let is_zero a = Array.for_all (fun x -> x = 0) a

let is_lex_positive a =
  let n = Array.length a in
  let rec go k =
    if k = n then false
    else if a.(k) > 0 then true
    else if a.(k) < 0 then false
    else go (k + 1)
  in
  go 0

let gcd a = Array.fold_left Numeric.Safeint.gcd 0 a

let norm2 a =
  Array.fold_left
    (fun acc x -> Numeric.Safeint.add acc (Numeric.Safeint.mul x x))
    0 a

let pp ppf a =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    a

let to_string a = Format.asprintf "%a" pp a
