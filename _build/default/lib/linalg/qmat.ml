module Q = Numeric.Rat

type t = Q.t array array

let of_imat m = Array.map (Array.map Q.of_int) m
let make r c f = Array.init r (fun i -> Array.init c (fun j -> f i j))
let rows m = Array.length m
let cols m = if Array.length m = 0 then 0 else Array.length m.(0)

let identity n =
  make n n (fun i j -> if i = j then Q.one else Q.zero)

let mul a b =
  if cols a <> rows b then invalid_arg "Qmat.mul: dimension mismatch";
  make (rows a) (cols b) (fun i j ->
      let acc = ref Q.zero in
      for k = 0 to cols a - 1 do
        acc := Q.add !acc (Q.mul a.(i).(k) b.(k).(j))
      done;
      !acc)

let add a b = make (rows a) (cols a) (fun i j -> Q.add a.(i).(j) b.(i).(j))
let sub a b = make (rows a) (cols a) (fun i j -> Q.sub a.(i).(j) b.(i).(j))

let vecmat v m =
  if Array.length v <> rows m then invalid_arg "Qmat.vecmat: dimension";
  Array.init (cols m) (fun j ->
      let acc = ref Q.zero in
      for k = 0 to rows m - 1 do
        acc := Q.add !acc (Q.mul v.(k) m.(k).(j))
      done;
      !acc)

let qvec_of_ivec v = Array.map Q.of_int v
let ivecmat v m = vecmat (qvec_of_ivec v) m

let det m =
  if rows m <> cols m then invalid_arg "Qmat.det: not square";
  let n = rows m in
  if n = 0 then Q.one
  else
    let a = Array.map Array.copy m in
    let d = ref Q.one in
    (try
       for k = 0 to n - 1 do
         if Q.is_zero a.(k).(k) then begin
           let p = ref (-1) in
           for i = n - 1 downto k + 1 do
             if not (Q.is_zero a.(i).(k)) then p := i
           done;
           if !p < 0 then begin
             d := Q.zero;
             raise Exit
           end;
           let t = a.(k) in
           a.(k) <- a.(!p);
           a.(!p) <- t;
           d := Q.neg !d
         end;
         d := Q.mul !d a.(k).(k);
         for i = k + 1 to n - 1 do
           let f = Q.div a.(i).(k) a.(k).(k) in
           for j = k to n - 1 do
             a.(i).(j) <- Q.sub a.(i).(j) (Q.mul f a.(k).(j))
           done
         done
       done
     with Exit -> ());
    !d

let inv m =
  if rows m <> cols m then invalid_arg "Qmat.inv: not square";
  let n = rows m in
  let a = Array.map Array.copy m in
  let b = Array.init n (fun i -> Array.init n (fun j -> if i = j then Q.one else Q.zero)) in
  let ok = ref true in
  (try
     for k = 0 to n - 1 do
       if Q.is_zero a.(k).(k) then begin
         let p = ref (-1) in
         for i = n - 1 downto k + 1 do
           if not (Q.is_zero a.(i).(k)) then p := i
         done;
         if !p < 0 then begin
           ok := false;
           raise Exit
         end;
         let t = a.(k) in
         a.(k) <- a.(!p);
         a.(!p) <- t;
         let t = b.(k) in
         b.(k) <- b.(!p);
         b.(!p) <- t
       end;
       let pivot = a.(k).(k) in
       for j = 0 to n - 1 do
         a.(k).(j) <- Q.div a.(k).(j) pivot;
         b.(k).(j) <- Q.div b.(k).(j) pivot
       done;
       for i = 0 to n - 1 do
         if i <> k && not (Q.is_zero a.(i).(k)) then begin
           let f = a.(i).(k) in
           for j = 0 to n - 1 do
             a.(i).(j) <- Q.sub a.(i).(j) (Q.mul f a.(k).(j));
             b.(i).(j) <- Q.sub b.(i).(j) (Q.mul f b.(k).(j))
           done
         end
       done
     done
   with Exit -> ());
  if !ok then Some b else None

let equal a b =
  rows a = rows b && cols a = cols b
  && Array.for_all2 (fun ra rb -> Array.for_all2 Q.equal ra rb) a b

let pp_qvec ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Q.pp)
    v

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i r ->
      if i > 0 then Format.fprintf ppf "@,";
      pp_qvec ppf r)
    m;
  Format.fprintf ppf "@]"

let qvec_add a b = Array.map2 Q.add a b
let qvec_sub a b = Array.map2 Q.sub a b

let qvec_to_ivec v =
  if Array.for_all Q.is_integer v then Some (Array.map Q.to_int_exn v)
  else None
