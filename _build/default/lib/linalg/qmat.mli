(** Rational matrices (arrays of rows) used for the recurrence maps
    [T = A·B⁻¹] of the paper, which are rational in general. *)

type t = Numeric.Rat.t array array

val of_imat : Imat.t -> t
val make : int -> int -> (int -> int -> Numeric.Rat.t) -> t
val rows : t -> int
val cols : t -> int
val identity : int -> t
val mul : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t

val vecmat : Numeric.Rat.t array -> t -> Numeric.Rat.t array
(** [vecmat v m] is the row vector [v·m]. *)

val ivecmat : Ivec.t -> t -> Numeric.Rat.t array
(** [ivecmat v m] is [v·m] for an integer row vector [v]. *)

val det : t -> Numeric.Rat.t
(** [det m] of a square matrix; raises [Invalid_argument] otherwise. *)

val inv : t -> t option
(** [inv m] is the inverse of a square matrix, or [None] when singular. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val qvec_of_ivec : Ivec.t -> Numeric.Rat.t array
val qvec_add : Numeric.Rat.t array -> Numeric.Rat.t array -> Numeric.Rat.t array
val qvec_sub : Numeric.Rat.t array -> Numeric.Rat.t array -> Numeric.Rat.t array

val qvec_to_ivec : Numeric.Rat.t array -> Ivec.t option
(** [qvec_to_ivec v] is the integer vector when every component is an
    integer, [None] otherwise. *)

val pp_qvec : Format.formatter -> Numeric.Rat.t array -> unit
