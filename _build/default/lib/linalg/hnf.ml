module S = Numeric.Safeint

type basis = { mat : Imat.t; pivot_cols : int array }

(* Reduce a working list of rows to row Hermite normal form by integer row
   operations (gcd pivoting).  [dim] is the row width. *)
let of_rows dim row_list =
  let rows = Array.of_list (List.filter (fun r -> not (Ivec.is_zero r)) row_list) in
  Array.iter
    (fun r -> if Array.length r <> dim then invalid_arg "Hnf.of_rows: bad dim")
    rows;
  let n = Array.length rows in
  let rows = Array.map Array.copy rows in
  let pivots = ref [] in
  let top = ref 0 in
  for col = 0 to dim - 1 do
    if !top < n then begin
      (* Use extended-gcd row combinations to concentrate the column gcd in
         row [top]. *)
      for i = !top + 1 to n - 1 do
        if rows.(i).(col) <> 0 then
          if rows.(!top).(col) = 0 then begin
            let t = rows.(!top) in
            rows.(!top) <- rows.(i);
            rows.(i) <- t
          end
          else begin
            let a = rows.(!top).(col) and b = rows.(i).(col) in
            let g, x, y = S.egcd a b in
            let ra = Array.copy rows.(!top) and rb = Array.copy rows.(i) in
            for j = 0 to dim - 1 do
              rows.(!top).(j) <- S.add (S.mul x ra.(j)) (S.mul y rb.(j));
              rows.(i).(j) <-
                S.sub
                  (S.mul (b / g) ra.(j))
                  (S.mul (a / g) rb.(j))
            done
          end
      done;
      if rows.(!top).(col) <> 0 then begin
        if rows.(!top).(col) < 0 then rows.(!top) <- Ivec.neg rows.(!top);
        (* Reduce the entries above the pivot into [0, pivot). *)
        let p = rows.(!top).(col) in
        for i = 0 to !top - 1 do
          let q = S.fdiv rows.(i).(col) p in
          if q <> 0 then
            for j = 0 to dim - 1 do
              rows.(i).(j) <- S.sub rows.(i).(j) (S.mul q rows.(!top).(j))
            done
        done;
        pivots := (!top, col) :: !pivots;
        incr top
      end
    end
  done;
  let pivots = List.rev !pivots in
  let mat =
    if !top = 0 then [||] else Array.init !top (fun i -> rows.(i))
  in
  { mat; pivot_cols = Array.of_list (List.map snd pivots) }

let rank b = Array.length b.mat

let decompose b v =
  let dim = Array.length v in
  let r = Array.copy v in
  let n = rank b in
  let coeffs = Array.make n 0 in
  let ok = ref true in
  for i = 0 to n - 1 do
    if !ok then begin
      let col = b.pivot_cols.(i) in
      let p = b.mat.(i).(col) in
      if r.(col) mod p <> 0 then ok := false
      else begin
        let q = r.(col) / p in
        coeffs.(i) <- q;
        if q <> 0 then
          for j = 0 to dim - 1 do
            r.(j) <- S.sub r.(j) (S.mul q b.mat.(i).(j))
          done
      end
    end
  done;
  if !ok && Ivec.is_zero r then Some coeffs else None

let mem b v = decompose b v <> None
let rows b = Imat.to_rows b.mat

let pp ppf b =
  if rank b = 0 then Format.pp_print_string ppf "<empty lattice>"
  else Imat.pp ppf b.mat
