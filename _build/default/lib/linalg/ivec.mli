(** Integer row vectors.

    The paper writes iterations as row vectors [i] acted on from the right by
    matrices ([i·A]); this module follows that convention. *)

type t = int array

val zero : int -> t
val dim : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val dot : t -> t -> int
val equal : t -> t -> bool

val compare_lex : t -> t -> int
(** [compare_lex a b] is the lexicographic comparison of equal-length
    vectors. *)

val is_zero : t -> bool

val is_lex_positive : t -> bool
(** [is_lex_positive v] is true when the first non-zero component of [v] is
    positive. *)

val gcd : t -> int
(** [gcd v] is the gcd of the components (0 for the zero vector). *)

val norm2 : t -> int
(** [norm2 v] is the squared Euclidean norm. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
