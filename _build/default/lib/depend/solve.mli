(** Exact dependence relations [Rd] (eq. 4 / eq. 7 of the paper), solved with
    the Presburger engine.

    Two granularities are provided: the plain loop-index relation for
    single-statement perfect nests (the recurrence-chain fast path), and the
    unified statement-instance relation of §3.3 for general programs.  In
    both, every arrow points from the lexicographically earlier instance to
    the later one, and flow, anti and output dependences are all covered by
    enumerating ordered reference pairs with at least one write. *)

type simple = {
  prog : Loopir.Ast.program;  (** normalized *)
  stmt : Loopir.Prog.stmt_info;
  iters : string array;
  params : string array;
  phi : Presburger.Iset.t;  (** iteration space Φ *)
  rd : Presburger.Rel.t;  (** forward dependence relation *)
  pair : Depeq.t option;  (** the single coupled pair, when applicable *)
}

val analyze_simple : Loopir.Ast.program -> simple
(** Raises [Invalid_argument] unless the program is a single perfectly
    nested statement; {!Space.Unsupported} on unsupported bounds. *)

type unified = {
  uprog : Loopir.Ast.program;  (** normalized *)
  unified : Space.unified;
  uparams : string array;
  uphi : Presburger.Iset.t;  (** unified iteration space *)
  urd : Presburger.Rel.t;  (** statement-level forward dependences (eq. 7) *)
}

val analyze_unified : Loopir.Ast.program -> unified

val pair_relation :
  Space.unified ->
  Loopir.Prog.stmt_info ->
  Loopir.Ast.expr list ->
  Loopir.Prog.stmt_info ->
  Loopir.Ast.expr list ->
  Presburger.Rel.t option
(** [pair_relation u s1 subs1 s2 subs2] is the forward dependence relation
    contributed by one ordered reference pair over the unified space, or
    [None] when a subscript is not affine. *)
