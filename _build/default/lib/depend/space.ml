module L = Presburger.Linexpr
module C = Presburger.Constr
module P = Presburger.Poly
module Affine = Loopir.Affine
module Prog = Loopir.Prog

exception Unsupported of string

let linexpr_of_affine ~n ~index_of (a : Affine.t) =
  let coef = Array.make n 0 in
  List.iter
    (fun v ->
      let k =
        try index_of v
        with Not_found ->
          raise (Unsupported (Printf.sprintf "unbound variable %s" v))
      in
      coef.(k) <- Numeric.Safeint.add coef.(k) (Affine.coeff a v))
    (Affine.names a);
  L.make coef a.Affine.const

let bound_constraints ~n ~index_of ~var (ctx : Prog.loop_ctx) =
  let wrap f x = try f x with Affine.Unsupported m -> raise (Unsupported m) in
  let lo_atoms = wrap Affine.lower_atoms ctx.Prog.lo in
  let hi_atoms = wrap Affine.upper_atoms ctx.Prog.hi in
  let lower { Affine.num; den } =
    (* v ≥ ⌊num/den⌋ ⟺ den·v - num + den - 1 ≥ 0 *)
    let num = linexpr_of_affine ~n ~index_of num in
    C.Ge
      (L.add_const
         (L.sub (L.scale den (L.var n var)) num)
         (den - 1))
  in
  let upper { Affine.num; den } =
    (* v ≤ ⌊num/den⌋ ⟺ num - den·v ≥ 0 *)
    let num = linexpr_of_affine ~n ~index_of num in
    C.Ge (L.sub num (L.scale den (L.var n var)))
  in
  List.map lower lo_atoms @ List.map upper hi_atoms

let stmt_space ~params (s : Prog.stmt_info) =
  let iters = Array.of_list (Prog.loop_vars s) in
  let names = Array.append iters params in
  let n = Array.length names in
  let index_of v =
    let rec find k =
      if k = n then raise Not_found
      else if names.(k) = v then k
      else find (k + 1)
    in
    find 0
  in
  let cons =
    List.concat
      (List.mapi
         (fun k ctx -> bound_constraints ~n ~index_of ~var:k ctx)
         s.Prog.loops)
  in
  Presburger.Iset.make ~iters ~params [ P.make n cons ]

(* ------------------------------------------------------------------ *)
(* Unified statement-instance space                                    *)

type unified = { depth : int; dims : string array; params : string array }

let make_unified (p : Loopir.Ast.program) =
  let depth = Prog.max_depth p in
  let dims =
    Array.init
      ((2 * depth) + 1)
      (fun k ->
        if k mod 2 = 0 then Printf.sprintf "s%d" (k / 2)
        else Printf.sprintf "i%d" ((k + 1) / 2))
  in
  { depth; dims; params = Array.of_list p.Loopir.Ast.params }

let unified_dim u = (2 * u.depth) + 1

let stmt_index_fn u ~off ~params_off (s : Prog.stmt_info) =
  let tbl = Hashtbl.create 8 in
  Array.iteri (fun k v -> Hashtbl.replace tbl v (params_off + k)) u.params;
  (* Loop variable at depth k (1-based) lives at dimension off + 2k - 1;
     statement-local bindings shadow parameters. *)
  List.iteri
    (fun k v -> Hashtbl.replace tbl v (off + (2 * k) + 1))
    (Prog.loop_vars s);
  fun v ->
    match Hashtbl.find_opt tbl v with Some k -> k | None -> raise Not_found

let stmt_poly u ~n ~off ~params_off (s : Prog.stmt_info) =
  let vars = Prog.loop_vars s in
  let l = List.length vars in
  let index_of = stmt_index_fn u ~off ~params_off s in
  let bounds =
    List.concat
      (List.mapi
         (fun k ctx ->
           bound_constraints ~n ~index_of ~var:(off + (2 * k) + 1) ctx)
         s.Prog.loops)
  in
  (* Statement position constants on the s-dimensions. *)
  let path = Array.of_list s.Prog.path in
  let pos_eqs =
    List.init (l + 1) (fun k ->
        C.Eq (L.add_const (L.var n (off + (2 * k))) (-path.(k))))
  in
  (* Padding below the statement's depth: both i and s components are 0. *)
  let pad_eqs =
    List.concat
      (List.init (u.depth - l) (fun k ->
           let d = l + 1 + k in
           [
             C.Eq (L.var n (off + (2 * d) - 1));
             C.Eq (L.var n (off + (2 * d)));
           ]))
  in
  P.make n (bounds @ pos_eqs @ pad_eqs)

let unified_space (p : Loopir.Ast.program) =
  let u = make_unified p in
  let n = unified_dim u + Array.length u.params in
  let polys =
    List.map
      (fun s -> stmt_poly u ~n ~off:0 ~params_off:(unified_dim u) s)
      (Prog.stmts_of p)
  in
  (u, Presburger.Iset.make ~iters:u.dims ~params:u.params polys)

let unified_vector_of u (s : Prog.stmt_info) ~iter =
  let l = List.length s.Prog.loops in
  if Array.length iter <> l then invalid_arg "unified_vector_of: arity";
  let path = Array.of_list s.Prog.path in
  Array.init (unified_dim u) (fun k ->
      let d = k / 2 in
      if k mod 2 = 0 then if d <= l then path.(d) else 0
      else if d < l then iter.(d)
      else 0)
