lib/depend/trace.mli: Loopir
