lib/depend/space.ml: Array Hashtbl List Loopir Numeric Presburger Printf
