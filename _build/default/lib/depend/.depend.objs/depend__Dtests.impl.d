lib/depend/dtests.ml: Array Depeq Linalg List Loopir Numeric Presburger
