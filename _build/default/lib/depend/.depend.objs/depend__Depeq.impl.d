lib/depend/depeq.ml: Array Linalg List Loopir Option
