lib/depend/graph.mli: Trace
