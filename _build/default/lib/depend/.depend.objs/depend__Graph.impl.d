lib/depend/graph.ml: Array List Trace
