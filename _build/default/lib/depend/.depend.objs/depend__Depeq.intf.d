lib/depend/depeq.mli: Linalg Loopir
