lib/depend/space.mli: Loopir Presburger
