lib/depend/dtests.mli: Depeq
