lib/depend/solve.mli: Depeq Loopir Presburger Space
