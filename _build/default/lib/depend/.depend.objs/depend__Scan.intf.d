lib/depend/scan.mli: Loopir
