lib/depend/distance.ml: Array Linalg List Loopir Presburger Set
