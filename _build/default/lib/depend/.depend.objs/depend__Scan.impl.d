lib/depend/scan.ml: Array List Loopir
