lib/depend/solve.ml: Array Depeq Hashtbl List Loopir Option Presburger Space
