lib/depend/distance.mli: Linalg Loopir Presburger
