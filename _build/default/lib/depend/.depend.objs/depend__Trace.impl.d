lib/depend/trace.ml: Array Hashtbl List Loopir Printf
