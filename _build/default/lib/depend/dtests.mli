(** Classical conservative dependence tests — the GCD test and Banerjee's
    inequality test — for single-subscript-pair dependence equations over a
    rectangular iteration space.

    These are the fast pre-filters parallelizing compilers run before an
    exact method (cf. the paper's §5 discussion of dependence tests
    [14,18,22]).  Both are {e conservative}: [Independent] is definitive,
    [Maybe_dependent] may be a false positive.  The property tests check
    conservativeness against the exact Omega solver, and the ablation bench
    measures how often exactness pays off. *)

type verdict = Independent | Maybe_dependent

type equation = {
  a : int array;  (** coefficients of the write iteration vector *)
  b : int array;  (** coefficients of the read iteration vector *)
  c : int;  (** constant: the equation is [Σ aᵢ·iᵢ − Σ bⱼ·jⱼ + c = 0] *)
  lo : int array;  (** common rectangular lower bounds *)
  hi : int array;  (** upper bounds *)
}

val gcd_test : equation -> verdict
(** Independent iff [gcd(a ⧺ b) ∤ c] (with the usual zero-gcd special
    case). *)

val banerjee_test : equation -> verdict
(** Independent iff [-c] lies outside [[Σ min terms, Σ max terms]] over the
    bounds. *)

val combined : equation -> verdict
(** GCD then Banerjee. *)

val equations_of_pair :
  Depeq.t -> params:(string -> int) -> lo:int array -> hi:int array -> equation list
(** One equation per subscript dimension of a coupled pair, with offsets
    evaluated. *)

val exact : equation -> verdict
(** Ground truth via the Omega engine (used by tests/ablation). *)
