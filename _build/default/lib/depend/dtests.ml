module S = Numeric.Safeint
module L = Presburger.Linexpr
module C = Presburger.Constr
module P = Presburger.Poly

type verdict = Independent | Maybe_dependent

type equation = {
  a : int array;
  b : int array;
  c : int;
  lo : int array;
  hi : int array;
}

let gcd_test eq =
  let g =
    Array.fold_left S.gcd (Array.fold_left S.gcd 0 eq.a) eq.b
  in
  if g = 0 then if eq.c = 0 then Maybe_dependent else Independent
  else if eq.c mod g <> 0 then Independent
  else Maybe_dependent

(* Banerjee: the value Σ aᵢ·iᵢ − Σ bⱼ·jⱼ over the bounds spans
   [Σ min(coef·range), Σ max(coef·range)]; no solution when -c is outside. *)
let banerjee_test eq =
  let add_range (mn, mx) coef lo hi =
    if coef >= 0 then (S.add mn (S.mul coef lo), S.add mx (S.mul coef hi))
    else (S.add mn (S.mul coef hi), S.add mx (S.mul coef lo))
  in
  let range = ref (0, 0) in
  Array.iteri (fun k c -> range := add_range !range c eq.lo.(k) eq.hi.(k)) eq.a;
  Array.iteri
    (fun k c -> range := add_range !range (-c) eq.lo.(k) eq.hi.(k))
    eq.b;
  let mn, mx = !range in
  if -eq.c < mn || -eq.c > mx then Independent else Maybe_dependent

let combined eq =
  match gcd_test eq with
  | Independent -> Independent
  | Maybe_dependent -> banerjee_test eq

let equations_of_pair (p : Depeq.t) ~params ~lo ~hi =
  let m = p.Depeq.m in
  if Array.length lo <> m || Array.length hi <> m then
    invalid_arg "Dtests.equations_of_pair: bounds arity";
  List.init m (fun d ->
      let a = Array.init m (fun k -> Linalg.Imat.get p.Depeq.a_mat k d) in
      let b = Array.init m (fun k -> Linalg.Imat.get p.Depeq.b_mat k d) in
      let c =
        S.sub
          (Loopir.Affine.eval params p.Depeq.a_off.(d))
          (Loopir.Affine.eval params p.Depeq.b_off.(d))
      in
      { a; b; c; lo; hi })

let exact eq =
  let m = Array.length eq.a in
  let n = 2 * m in
  let coef = Array.make n 0 in
  Array.iteri (fun k v -> coef.(k) <- v) eq.a;
  Array.iteri (fun k v -> coef.(m + k) <- S.neg v) eq.b;
  let bounds =
    List.concat
      (List.init n (fun k ->
           let kk = k mod m in
           [
             C.Ge (L.add_const (L.var n k) (-eq.lo.(kk)));
             C.Ge (L.add_const (L.neg (L.var n k)) eq.hi.(kk));
           ]))
  in
  let p = P.make n (C.Eq (L.make coef eq.c) :: bounds) in
  if Presburger.Omega.is_empty p then Independent else Maybe_dependent
