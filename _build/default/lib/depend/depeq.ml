module Affine = Loopir.Affine
module Prog = Loopir.Prog

type t = {
  arr : string;
  m : int;
  a_mat : Linalg.Imat.t;
  a_off : Affine.t array;
  b_mat : Linalg.Imat.t;
  b_off : Affine.t array;
}

(* Split an affine subscript into loop-variable coefficients and the
   residual (constants + parameters). *)
let split_subscript vars (a : Affine.t) =
  let coefs = List.map (fun v -> Affine.coeff a v) vars in
  let residual =
    List.fold_left
      (fun acc v -> Affine.sub acc (Affine.scale (Affine.coeff acc v) (Affine.var v)))
      a vars
  in
  (coefs, residual)

let matrix_of vars subs =
  let m = List.length vars in
  if List.length subs <> m then None
  else
    let cols =
      List.map
        (fun e ->
          match Affine.of_expr e with
          | None -> None
          | Some a -> Some (split_subscript vars a))
        subs
    in
    if List.exists Option.is_none cols then None
    else
      let cols = List.map Option.get cols in
      (* Column d of the matrix holds the coefficients of subscript d. *)
      let mat =
        Linalg.Imat.make m m (fun row col ->
            List.nth (fst (List.nth cols col)) row)
      in
      let off = Array.of_list (List.map snd cols) in
      Some (mat, off)

let of_stmt (s : Prog.stmt_info) =
  let vars = Prog.loop_vars s in
  let m = List.length vars in
  if m = 0 then None
  else
    match Prog.refs_of s with
    | [ (arr_w, subs_w, Prog.Write); (arr_r, subs_r, Prog.Read) ]
      when arr_w = arr_r -> (
        match (matrix_of vars subs_w, matrix_of vars subs_r) with
        | Some (a_mat, a_off), Some (b_mat, b_off) ->
            Some { arr = arr_w; m; a_mat; a_off; b_mat; b_off }
        | _ -> None)
    | _ -> None

let full_rank t = Linalg.Imat.det t.a_mat <> 0 && Linalg.Imat.det t.b_mat <> 0
let det_a t = Linalg.Imat.det t.a_mat
let det_b t = Linalg.Imat.det t.b_mat
