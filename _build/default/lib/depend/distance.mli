(** Dependence distance sets and the uniform / non-uniform classification of
    §2, plus the coupled-subscript test used by the survey statistics
    (DESIGN.md E9). *)

type class_ = No_dependence | Uniform | Non_uniform

val distances :
  Presburger.Rel.t -> params:int array -> Linalg.Ivec.t list
(** Distinct distance vectors [j - i] of the concrete dependence relation,
    lexicographically sorted. *)

val classify :
  Presburger.Rel.t ->
  phi:Presburger.Iset.t ->
  params:int array ->
  class_
(** Exact check of the paper's definition on a bounded instance: the
    relation is uniform iff for every distance [d] and every iteration [i]
    with [i], [i+d] both in [Φ], the pair [(i, i+d)] is a dependence. *)

val has_coupled_subscripts : Loopir.Prog.stmt_info -> bool
(** True when some array reference of the statement uses a loop index in two
    or more subscript positions (the classic "coupled subscripts"
    condition). *)

val class_to_string : class_ -> string
