(** Dependence equations for a single pair of coupled array references
    [X(I·A + a)] = … [X(I·B + b)] … in a perfectly nested single-statement
    loop — the setting of Lemma 1 and the recurrence-chain fast path.

    Row-vector convention as in the paper: iteration [i] is a row vector and
    subscript [d] of the write is [(i·A)_d + a_d]. *)

type t = {
  arr : string;
  m : int;  (** loop depth = subscript rank *)
  a_mat : Linalg.Imat.t;  (** m×m coefficients of the write reference *)
  a_off : Loopir.Affine.t array;  (** constant (possibly parametric) parts *)
  b_mat : Linalg.Imat.t;  (** m×m coefficients of the read reference *)
  b_off : Loopir.Affine.t array;
}

val of_stmt : Loopir.Prog.stmt_info -> t option
(** [of_stmt s] extracts the single coupled pair when [s] has exactly two
    references, both to the same array, one write and one read, with affine
    subscripts of rank equal to the loop depth (offsets may involve symbolic
    parameters but not loop indices beyond the linear part). *)

val full_rank : t -> bool
(** Both coefficient matrices are non-singular (the Lemma 1 hypothesis). *)

val det_a : t -> int
val det_b : t -> int
