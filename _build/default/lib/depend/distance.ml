module Rel = Presburger.Rel
module Iset = Presburger.Iset
module Enum = Presburger.Enum
module Ivec = Linalg.Ivec

type class_ = No_dependence | Uniform | Non_uniform

let concrete_pairs rd ~params =
  let set = Rel.to_set rd in
  let bound = Iset.bind_params set params in
  let n2 = Iset.dim bound in
  let m = n2 / 2 in
  List.map
    (fun xy -> (Array.sub xy 0 m, Array.sub xy m m))
    (Enum.points bound)

let distances rd ~params =
  concrete_pairs rd ~params
  |> List.map (fun (i, j) -> Ivec.sub j i)
  |> List.sort_uniq Ivec.compare_lex

let classify rd ~phi ~params =
  let pairs = concrete_pairs rd ~params in
  if pairs = [] then No_dependence
  else
    let module PS = Set.Make (struct
      type t = int array * int array

      let compare (a1, b1) (a2, b2) =
        match Ivec.compare_lex a1 a2 with
        | 0 -> Ivec.compare_lex b1 b2
        | c -> c
    end) in
    let pair_set = PS.of_list pairs in
    let ds = distances rd ~params in
    let phi_pts = Enum.points (Iset.bind_params phi params) in
    let module VS = Set.Make (struct
      type t = int array

      let compare = Ivec.compare_lex
    end) in
    let phi_set = VS.of_list phi_pts in
    let uniform =
      List.for_all
        (fun d ->
          List.for_all
            (fun i ->
              let j = Ivec.add i d in
              (not (VS.mem j phi_set)) || PS.mem (i, j) pair_set)
            phi_pts)
        ds
    in
    if uniform then Uniform else Non_uniform

let has_coupled_subscripts (s : Loopir.Prog.stmt_info) =
  let vars = Loopir.Prog.loop_vars s in
  List.exists
    (fun (_, subs, _) ->
      let occurring =
        List.map
          (fun e ->
            match Loopir.Affine.of_expr e with
            | None -> []
            | Some a ->
                List.filter (fun v -> List.mem v vars) (Loopir.Affine.names a))
          subs
      in
      List.exists
        (fun v ->
          List.length (List.filter (fun names -> List.mem v names) occurring)
          >= 2)
        vars)
    (Loopir.Prog.refs_of s)

let class_to_string = function
  | No_dependence -> "none"
  | Uniform -> "uniform"
  | Non_uniform -> "non-uniform"
