(** Concrete dependence-DAG utilities: level sets (the successive fully
    parallel fronts of dataflow partitioning) and critical paths. *)

type t = {
  n : int;  (** number of nodes *)
  level : int array;  (** 1-based dataflow level of each node *)
  n_levels : int;  (** = number of dataflow partitioning steps *)
  level_sizes : int array;  (** nodes per level, index 0 = level 1 *)
}

val levels : n:int -> (int * int) list -> t
(** [levels ~n edges] computes longest-path layering of a DAG whose edges
    all satisfy [src < dst] (execution order), as produced by
    {!Trace.build}.  Level 1 nodes have no predecessors; level [k+1] nodes
    depend on some level-[k] node. *)

val of_trace : Trace.t -> t
val critical_path_length : t -> int
(** Equals [n_levels]. *)
