type t = {
  n : int;
  level : int array;
  n_levels : int;
  level_sizes : int array;
}

let levels ~n edges =
  let level = Array.make n 1 in
  (* Processing edges by increasing destination finalizes every source level
     before it is read (edges satisfy src < dst). *)
  let edges =
    List.sort (fun (_, d1) (_, d2) -> compare d1 d2) edges
  in
  List.iter
    (fun (src, dst) ->
      if src >= dst then invalid_arg "Graph.levels: edge not in execution order";
      if level.(dst) < level.(src) + 1 then level.(dst) <- level.(src) + 1)
    edges;
  let n_levels = Array.fold_left max (if n = 0 then 0 else 1) level in
  let level_sizes = Array.make (max n_levels 0) 0 in
  Array.iter (fun l -> level_sizes.(l - 1) <- level_sizes.(l - 1) + 1) level;
  { n; level; n_levels; level_sizes }

let of_trace (tr : Trace.t) =
  (* Trace edges are already ordered by destination (edges into an instance
     are recorded when it executes), so one pass suffices. *)
  let n = Array.length tr.Trace.instances in
  let level = Array.make n 1 in
  Trace.iter_edges tr (fun src dst ->
      if level.(dst) < level.(src) + 1 then level.(dst) <- level.(src) + 1);
  let n_levels = Array.fold_left max (if n = 0 then 0 else 1) level in
  let level_sizes = Array.make (max n_levels 0) 0 in
  Array.iter (fun l -> level_sizes.(l - 1) <- level_sizes.(l - 1) + 1) level;
  { n; level; n_levels; level_sizes }

let critical_path_length t = t.n_levels
