(** Building Presburger iteration spaces from loop nests — both the plain
    per-statement index space and the unified statement-instance space of
    §3.3 of the paper. *)

exception Unsupported of string

val linexpr_of_affine :
  n:int -> index_of:(string -> int) -> Loopir.Affine.t -> Presburger.Linexpr.t
(** Reads a named affine form into an [n]-dimensional {!Presburger.Linexpr},
    mapping each name through [index_of] (which may raise [Not_found] →
    {!Unsupported}). *)

val bound_constraints :
  n:int ->
  index_of:(string -> int) ->
  var:int ->
  Loopir.Prog.loop_ctx ->
  Presburger.Constr.t list
(** Constraints placing dimension [var] within its loop bounds:
    [c·v ≥ num - c + 1] for each lower atom [⌊num/c⌋] and [c·v ≤ num] for
    each upper atom. *)

val stmt_space :
  params:string array -> Loopir.Prog.stmt_info -> Presburger.Iset.t
(** The iteration space of one statement over its own loop indices
    (iters = loop variables outermost-first). *)

(** {2 Unified statement-instance space (§3.3)} *)

type unified = {
  depth : int;  (** maximum loop depth D of the program *)
  dims : string array;  (** [s0; i1; s1; …; iD; sD], length 2D+1 *)
  params : string array;
}

val make_unified : Loopir.Ast.program -> unified

val unified_dim : unified -> int
(** [2·depth + 1]. *)

val stmt_index_fn :
  unified ->
  off:int ->
  params_off:int ->
  Loopir.Prog.stmt_info ->
  string ->
  int
(** Maps a statement's loop variable (by depth) or a parameter to its
    dimension in an embedding of the unified space; raises [Not_found] for
    unknown names. *)

val stmt_poly :
  unified ->
  n:int ->
  off:int ->
  params_off:int ->
  Loopir.Prog.stmt_info ->
  Presburger.Poly.t
(** The convex set of instances of one statement, embedded in an
    [n]-dimensional space with the unified block starting at [off] and
    parameters at [params_off]: loop bounds on the [i_k] dimensions, path
    constants on the [s_k] dimensions, zero padding below the statement's
    depth. *)

val unified_space : Loopir.Ast.program -> unified * Presburger.Iset.t
(** The full unified iteration space [Φ] (union over statements). *)

val unified_vector_of :
  unified -> Loopir.Prog.stmt_info -> iter:int array -> int array
(** Embeds a concrete iteration of a statement into the unified space
    (path constants interleaved, zero padding). *)
