module Iset = Presburger.Iset
module Rel = Presburger.Rel

type t = {
  p1 : Presburger.Iset.t;
  p2 : Presburger.Iset.t;
  p3 : Presburger.Iset.t;
  w : Presburger.Iset.t;
}

let compute ~phi ~rd =
  let ran = Rel.ran rd and dom = Rel.dom rd in
  (* dom/ran come back with the relation's tuple names; rebase both onto the
     iteration-space names so the set algebra type-checks. *)
  let rebase s =
    Iset.make
      ~iters:(Array.sub (Iset.names phi) 0 (Iset.n_iters phi))
      ~params:(Array.sub (Iset.names s) (Iset.n_iters s)
                 (Array.length (Iset.names s) - Iset.n_iters s))
      (Iset.polys s)
  in
  let ran = Iset.simplify (rebase ran) and dom = Iset.simplify (rebase dom) in
  let p1 = Iset.simplify (Iset.diff phi ran) in
  let p2 = Iset.simplify (Iset.inter ran dom) in
  let p3 = Iset.simplify (Iset.diff ran dom) in
  let w_rel = Rel.restrict_dom rd (Iset.inter phi p1) in
  let w = Iset.simplify (Iset.inter (rebase (Rel.ran w_rel)) p2) in
  { p1; p2; p3; w }

let classify_point t ~params x =
  let full = Array.append x params in
  if Iset.mem t.p1 full then `P1
  else if Iset.mem t.p2 full then `P2
  else if Iset.mem t.p3 full then `P3
  else `Outside

let check_cover t ~phi =
  let union = Iset.union t.p1 (Iset.union t.p2 t.p3) in
  Iset.equal union phi
  && Iset.is_empty (Iset.inter t.p1 t.p2)
  && Iset.is_empty (Iset.inter t.p1 t.p3)
  && Iset.is_empty (Iset.inter t.p2 t.p3)
