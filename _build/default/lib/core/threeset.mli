(** The three-set partitioning of §3.1 (eq. 5): given the iteration space
    [Φ] and the forward dependence relation [Rd],

    - [P1 = Φ \ ran Rd] — independent and initial iterations,
    - [P2 = ran Rd ∩ dom Rd] — intermediate iterations,
    - [P3 = ran Rd \ dom Rd] — final iterations,
    - [W  = {j | (i→j) ∈ Rd, i ∈ P1, j ∈ P2}] — chain start points.

    The sets are computed purely with [∩ ∪ \ dom ran], so each is again a
    union of convex sets, exactly as in the paper.  [P1 → P2 → P3] is a
    legal execution order because every dependence arrow goes from an
    earlier set (or within [P2], handled by chains/dataflow). *)

type t = {
  p1 : Presburger.Iset.t;
  p2 : Presburger.Iset.t;
  p3 : Presburger.Iset.t;
  w : Presburger.Iset.t;
}

val compute : phi:Presburger.Iset.t -> rd:Presburger.Rel.t -> t
(** Computes and simplifies the partition. *)

val classify_point :
  t -> params:int array -> int array -> [ `P1 | `P2 | `P3 | `Outside ]

val check_cover : t -> phi:Presburger.Iset.t -> bool
(** [P1 ∪ P2 ∪ P3 = Φ] and the three sets are pairwise disjoint — a
    structural invariant used by tests. *)
