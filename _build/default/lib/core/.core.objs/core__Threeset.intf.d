lib/core/threeset.mli: Presburger
