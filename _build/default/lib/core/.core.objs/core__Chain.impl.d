lib/core/chain.ml: Array Linalg List Presburger Printf Recurrence Set Threeset
