lib/core/recurrence.mli: Depend Linalg Numeric
