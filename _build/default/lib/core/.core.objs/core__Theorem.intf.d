lib/core/theorem.mli: Chain Presburger
