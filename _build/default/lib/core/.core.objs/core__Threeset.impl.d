lib/core/threeset.ml: Array Presburger
