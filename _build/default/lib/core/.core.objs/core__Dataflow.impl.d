lib/core/dataflow.ml: Array Depend List Presburger
