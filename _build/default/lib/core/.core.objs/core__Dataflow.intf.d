lib/core/dataflow.mli: Depend Loopir Presburger
