lib/core/recurrence.ml: Array Depend Float Fun Linalg List Loopir Numeric
