lib/core/partition.ml: Array Chain Depend Linalg List Loopir Option Presburger Printf Recurrence Theorem Threeset
