lib/core/partition.mli: Chain Depend Linalg Loopir Threeset
