lib/core/chain.mli: Linalg Presburger Recurrence Threeset
