lib/core/theorem.ml: Array Chain List Presburger
