(** Dataflow partitioning (the second branch of Algorithm 1): successively
    peel the front [P1 = Φ \ ran Rd] until the space is empty.  Each peeled
    set is fully parallel; the number of steps is the critical-path length.

    Two engines are provided: a symbolic one working on Presburger sets
    (exact, but needs a step limit since termination is only guaranteed for
    compile-time-known bounds) and a concrete one layering the exact
    trace-based dependence graph — the route used for the paper's Cholesky
    experiment (238 steps at the paper's parameters). *)

exception Did_not_terminate of int
(** Symbolic peeling exceeded the step limit (argument = limit). *)

val peel_symbolic :
  phi:Presburger.Iset.t ->
  rd:Presburger.Rel.t ->
  max_steps:int ->
  Presburger.Iset.t list
(** Successive fronts, in execution order. *)

type concrete = {
  graph : Depend.Graph.t;
  instances : Depend.Trace.instance array;
  steps : int;  (** = number of fronts = dataflow partitioning steps *)
  fronts : int list array;  (** instance indices per front *)
}

val peel_concrete :
  Loopir.Ast.program -> params:(string * int) list -> concrete
