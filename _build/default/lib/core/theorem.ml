module Iset = Presburger.Iset
module Enum = Presburger.Enum

let diameter set ~params =
  let pts = Enum.points (Iset.bind_params set params) in
  match pts with
  | [] -> 0.0
  | p0 :: _ ->
      let n = Array.length p0 in
      let lo = Array.copy p0 and hi = Array.copy p0 in
      List.iter
        (fun p ->
          for k = 0 to n - 1 do
            if p.(k) < lo.(k) then lo.(k) <- p.(k);
            if p.(k) > hi.(k) then hi.(k) <- p.(k)
          done)
        pts;
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        let d = float_of_int (hi.(k) - lo.(k)) in
        acc := !acc +. (d *. d)
      done;
      sqrt !acc

let bound ~growth ~diameter =
  if growth <= 1.0 || diameter <= 0.0 then None
  else Some (int_of_float (ceil (log diameter /. log growth)) + 1)

let check (c : Chain.t) ~bound = c.Chain.longest <= bound
