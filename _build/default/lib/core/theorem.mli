(** Theorem 1: for the recurrence [i_{k+1} = i_k·T + u] with
    [a = max(|det T|, |det T⁻¹|) > 1], a recurrence chain inside an
    iteration space of Euclidean diameter [L] has at most
    [⌈log_a L⌉ + 1] iterations. *)

val diameter :
  Presburger.Iset.t -> params:int array -> float
(** Maximum Euclidean distance between two points of the (bounded) set,
    computed from per-dimension extents. *)

val bound : growth:float -> diameter:float -> int option
(** [bound ~growth ~diameter] is [⌈log_a L⌉ + 1], or [None] when the growth
    factor is ≤ 1 (the theorem does not apply). *)

val check : Chain.t -> bound:int -> bool
(** Longest measured chain within the bound. *)
