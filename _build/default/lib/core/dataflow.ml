module Iset = Presburger.Iset
module Rel = Presburger.Rel

exception Did_not_terminate of int

let peel_symbolic ~phi ~rd ~max_steps =
  let iters = Array.sub (Iset.names phi) 0 (Iset.n_iters phi) in
  let params =
    Array.sub (Iset.names phi) (Iset.n_iters phi)
      (Array.length (Iset.names phi) - Iset.n_iters phi)
  in
  let rebase s = Iset.make ~iters ~params (Iset.polys s) in
  let rec go phi rd acc k =
    if Iset.is_empty phi then List.rev acc
    else if k >= max_steps then raise (Did_not_terminate max_steps)
    else
      let ran = rebase (Rel.ran rd) in
      let p1 = Iset.simplify (Iset.diff phi ran) in
      if Iset.is_empty p1 then
        (* A dependence cycle would mean Rd is not a strict order — cannot
           happen for forward dependences, but guard against it. *)
        raise (Did_not_terminate k)
      else
        let phi' = Iset.simplify (Iset.diff phi p1) in
        let rd' =
          Rel.restrict_dom (Rel.restrict_ran rd phi') phi'
        in
        go phi' rd' (p1 :: acc) (k + 1)
  in
  go phi rd [] 0

type concrete = {
  graph : Depend.Graph.t;
  instances : Depend.Trace.instance array;
  steps : int;
  fronts : int list array;
}

let peel_concrete prog ~params =
  let tr = Depend.Trace.build prog ~params in
  let g = Depend.Graph.of_trace tr in
  let fronts = Array.make (max g.Depend.Graph.n_levels 0) [] in
  Array.iteri
    (fun node lvl -> fronts.(lvl - 1) <- node :: fronts.(lvl - 1))
    g.Depend.Graph.level;
  Array.iteri (fun k l -> fronts.(k) <- List.rev l) fronts;
  {
    graph = g;
    instances = tr.Depend.Trace.instances;
    steps = g.Depend.Graph.n_levels;
    fronts;
  }
