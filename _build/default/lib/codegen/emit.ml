module L = Presburger.Linexpr
module C = Presburger.Constr
module Iset = Presburger.Iset
module Q = Numeric.Rat

let expr_str names e = Format.asprintf "%a" (L.pp names) e

let bound_str names ~ceil { Bounds.num; den } =
  if den = 1 then expr_str names num
  else
    Printf.sprintf "%s(%s, %d)"
      (if ceil then "CEILDIV" else "FLOORDIV")
      (expr_str names num) den

let pp_bound_max names ppf lowers =
  match lowers with
  | [ b ] -> Format.pp_print_string ppf (bound_str names ~ceil:true b)
  | bs ->
      Format.fprintf ppf "MAX(%s)"
        (String.concat ", " (List.map (bound_str names ~ceil:true) bs))

let pp_bound_min names ppf uppers =
  match uppers with
  | [ b ] -> Format.pp_print_string ppf (bound_str names ~ceil:false b)
  | bs ->
      Format.fprintf ppf "MIN(%s)"
        (String.concat ", " (List.map (bound_str names ~ceil:false) bs))

let guard_str names = function
  | C.Div (m, e) -> Printf.sprintf "MOD(%s, %d) == 0" (expr_str names e) m
  | C.Ge e -> Printf.sprintf "%s >= 0" (expr_str names e)
  | C.Eq e -> Printf.sprintf "%s == 0" (expr_str names e)

let doall_nest buf ~names ~n_iters ~body nest =
  let indent = ref "" in
  let line s = Buffer.add_string buf (!indent ^ s ^ "\n") in
  let closers = ref [] in
  for k = 0 to n_iters - 1 do
    let lv = nest.Bounds.levels.(k) in
    let lo_str = Format.asprintf "%a" (pp_bound_max names) lv.Bounds.lowers in
    let hi_str = Format.asprintf "%a" (pp_bound_min names) lv.Bounds.uppers in
    (match lv.Bounds.stride with
    | None -> line (Printf.sprintf "DOALL %s = %s, %s" names.(k) lo_str hi_str)
    | Some (m, r) ->
        (* Align the start on the residue class r (mod m). *)
        line
          (Printf.sprintf "DOALL %s = %s + MOD(%s - (%s), %d), %s, %d"
             names.(k) lo_str (expr_str names r) lo_str m hi_str m));
    closers := "ENDDOALL" :: !closers;
    indent := !indent ^ "  ";
    if lv.Bounds.guards <> [] then begin
      let g = String.concat " .AND. " (List.map (guard_str names) lv.Bounds.guards) in
      line (Printf.sprintf "IF (%s) THEN" g);
      closers := "ENDIF" :: !closers;
      indent := !indent ^ "  "
    end
  done;
  line body;
  List.iter
    (fun closer ->
      indent := String.sub !indent 0 (String.length !indent - 2);
      line closer)
    !closers

let doall_of_set ?body ~names set =
  let n_iters = Iset.n_iters set in
  let body =
    match body with
    | Some b -> b
    | None ->
        Printf.sprintf "s(%s)"
          (String.concat ", "
             (Array.to_list (Array.sub (Iset.names set) 0 n_iters)))
  in
  let buf = Buffer.create 256 in
  let polys = Iset.polys set in
  if polys = [] then Buffer.add_string buf "! (empty set)\n"
  else
    List.iteri
      (fun i p ->
        if i > 0 then Buffer.add_string buf "! next disjunct\n";
        match Bounds.with_strides (Bounds.of_poly ~n_iters p) with
        | nest -> doall_nest buf ~names ~n_iters ~body nest
        | exception Bounds.Unbounded k ->
            Buffer.add_string buf
              (Printf.sprintf "! disjunct unbounded in %s\n" names.(k)))
      polys;
  Buffer.contents buf

(* Print one component of the affine step I' = I·T + u, as an expression
   over the current indices (entries of T and u are rational; a common
   denominator becomes a FLOORDIV with an integrality guard emitted by the
   caller when non-trivial). *)
let step_component names t_col u_c =
  let den =
    Array.fold_left
      (fun acc q -> Numeric.Safeint.lcm acc (Q.den q))
      (Q.den u_c) t_col
  in
  let terms =
    Array.to_list
      (Array.mapi
         (fun row q ->
           let c = Q.num q * (den / Q.den q) in
           (names.(row), c))
         t_col)
  in
  let const = Q.num u_c * (den / Q.den u_c) in
  let body =
    String.concat ""
      (List.filter_map
         (fun (v, c) ->
           if c = 0 then None
           else if c = 1 then Some (Printf.sprintf " + %s" v)
           else if c = -1 then Some (Printf.sprintf " - %s" v)
           else if c > 0 then Some (Printf.sprintf " + %d*%s" c v)
           else Some (Printf.sprintf " - %d*%s" (-c) v))
         terms)
  in
  let body =
    let body = if const > 0 then Printf.sprintf "%s + %d" body const
               else if const < 0 then Printf.sprintf "%s - %d" body (-const)
               else body in
    let body = String.trim body in
    let body =
      if String.length body > 2 && String.sub body 0 2 = "+ " then
        String.sub body 2 (String.length body - 2)
      else body
    in
    if body = "" then "0" else body
  in
  if den = 1 then (body, None)
  else (Printf.sprintf "FLOORDIV(%s, %d)" body den, Some (body, den))

let rec_partitioning (rp : Core.Partition.rec_plan) =
  let simple = rp.Core.Partition.simple in
  let three = rp.Core.Partition.three in
  let iters = simple.Depend.Solve.iters in
  let names = Iset.names simple.Depend.Solve.phi in
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  let ivars = String.concat ", " (Array.to_list iters) in
  add "! ---- initial partition P1 (independent + initial iterations)\n";
  add (doall_of_set ~names three.Core.Threeset.p1);
  add "! ---- intermediate partition: WHILE chains started from W\n";
  add
    (doall_of_set ~body:(Printf.sprintf "CALL chain(%s)" ivars) ~names
       three.Core.Threeset.w);
  add "! ---- final partition P3\n";
  add (doall_of_set ~names three.Core.Threeset.p3);
  add (Printf.sprintf "\nSUBROUTINE chain(%s)\n" ivars);
  (* WHILE condition: the current iteration is still intermediate, i.e. in
     ran Rd ∩ dom Rd (its successor exists and is executed later in P3). *)
  let cond =
    match Iset.polys three.Core.Threeset.p2 with
    | [] -> ".FALSE."
    | polys ->
        String.concat "\n          .OR. "
          (List.map
             (fun p ->
               "("
               ^ String.concat " .AND. "
                   (List.map (guard_str names) (Presburger.Poly.constraints p))
               ^ ")")
             polys)
  in
  add (Printf.sprintf "DO WHILE (%s)\n" cond);
  add (Printf.sprintf "  s(%s)\n" ivars);
  (* Step by the forward map of the write side: I := I·(A·B⁻¹) + (a−b)·B⁻¹,
     printed for the parameter-free part; parametric offsets keep their
     affine form. *)
  (match
     Core.Recurrence.of_pair rp.Core.Partition.pair ~params:(fun _ -> 0)
   with
  | Some r ->
      Array.iteri
        (fun col _ ->
          let t_col =
            Array.init r.Core.Recurrence.m (fun row ->
                r.Core.Recurrence.t_wr.(row).(col))
          in
          let s, guard = step_component iters t_col r.Core.Recurrence.u_wr.(col) in
          (match guard with
          | Some (body, den) ->
              add
                (Printf.sprintf "  IF (MOD(%s, %d) /= 0) RETURN\n" body den)
          | None -> ());
          add (Printf.sprintf "  %s_next = %s\n" iters.(col) s))
        iters;
      Array.iter
        (fun v -> add (Printf.sprintf "  %s = %s_next\n" v v))
        iters
  | None -> add "  ! singular recurrence (unreachable for REC plans)\n");
  add "ENDDO\nEND\n";
  Buffer.contents buf

let dataflow_listing fronts ~names =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun k s ->
      Buffer.add_string buf (Printf.sprintf "! ---- dataflow front %d\n" (k + 1));
      Buffer.add_string buf (doall_of_set ~names s))
    fronts;
  Buffer.contents buf
