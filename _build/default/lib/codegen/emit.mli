(** Pseudo-Fortran emission of the partitioned programs — the counterpart
    of the paper's generated-code listings (Examples 1–3).

    DOALL nests are printed per convex disjunct with CEILDIV/FLOORDIV
    bounds and MOD guards; the intermediate set becomes DOALL loops over
    the chain start set [W] whose body calls a WHILE-loop chain subroutine
    stepping [I := I·T + u]. *)

val pp_bound_max : string array -> Format.formatter -> Bounds.bound list -> unit
val pp_bound_min : string array -> Format.formatter -> Bounds.bound list -> unit

val doall_of_set :
  ?body:string -> names:string array -> Presburger.Iset.t -> string
(** One DOALL nest per disjunct; [body] defaults to ["s(<iters>)"].
    Unbounded or empty disjuncts are commented accordingly. *)

val rec_partitioning : Core.Partition.rec_plan -> string
(** The full three-part listing: P1, the W DOALL calling the chain
    subroutine, P3, and the chain subroutine itself. *)

val dataflow_listing :
  Presburger.Iset.t list -> names:string array -> string
(** One fully parallel DOALL region per dataflow front. *)
