lib/codegen/emit.ml: Array Bounds Buffer Core Depend Format List Numeric Presburger Printf String
