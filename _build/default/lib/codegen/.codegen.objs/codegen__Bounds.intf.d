lib/codegen/bounds.mli: Presburger
