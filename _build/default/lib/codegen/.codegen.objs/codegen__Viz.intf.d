lib/codegen/viz.mli: Core Depend
