lib/codegen/bounds.ml: Array List Numeric Presburger
