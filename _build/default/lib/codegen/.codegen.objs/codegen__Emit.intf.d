lib/codegen/emit.mli: Bounds Core Format Presburger
