lib/codegen/viz.ml: Array Buffer Char Core Depend Linalg List Printf String
