module S = Numeric.Safeint
module L = Presburger.Linexpr
module C = Presburger.Constr
module P = Presburger.Poly

type bound = { num : Presburger.Linexpr.t; den : int }

type level = {
  lowers : bound list;
  uppers : bound list;
  guards : Presburger.Constr.t list;
  stride : (int * Presburger.Linexpr.t) option;
}

type nest = { n_iters : int; levels : level array }

exception Unbounded of int

(* Deepest iteration variable of a constraint (-1 when only parameters). *)
let deepest ~n_iters c =
  let e = C.expr c in
  let m = ref (-1) in
  for k = 0 to n_iters - 1 do
    if L.coeff e k <> 0 then m := k
  done;
  !m

(* Rational-relaxation elimination of iteration variable [k]: equality
   pivots and real-shadow pair combination; Div constraints mentioning the
   variable are dropped (they survive as guards on the exact polyhedron). *)
let eliminate_relaxed cons k =
  let eq_pivot =
    List.find_opt
      (function C.Eq e -> L.coeff e k <> 0 | _ -> false)
      cons
  in
  match eq_pivot with
  | Some (C.Eq f as pivot) ->
      let f = if L.coeff f k < 0 then L.neg f else f in
      let a = L.coeff f k in
      let rhs = L.neg (L.set_coeff f k 0) in
      List.filter_map
        (fun c ->
          if c == pivot then None
          else
            let e = C.expr c in
            let b = L.coeff e k in
            if b = 0 then Some c
            else
              let rest = L.set_coeff e k 0 in
              let e' = L.add (L.scale b rhs) (L.scale a rest) in
              match c with
              | C.Eq _ -> Some (C.Eq e')
              | C.Ge _ -> Some (C.Ge e')
              | C.Div _ -> None)
        cons
  | _ ->
      let lowers, uppers, others =
        List.fold_left
          (fun (lo, up, ot) c ->
            match c with
            | C.Ge e when L.coeff e k > 0 -> ((L.coeff e k, e) :: lo, up, ot)
            | C.Ge e when L.coeff e k < 0 -> (lo, (-L.coeff e k, e) :: up, ot)
            | C.Div (_, e) when L.coeff e k <> 0 -> (lo, up, ot)
            | c -> (lo, up, c :: ot))
          ([], [], []) cons
      in
      let combos =
        List.concat_map
          (fun (a, fl) ->
            List.map
              (fun (b, fu) ->
                let lrest = L.set_coeff fl k 0 and urest = L.set_coeff fu k 0 in
                C.Ge (L.add (L.scale b lrest) (L.scale a urest)))
              uppers)
          lowers
      in
      combos @ List.rev others

let empty_nest ~n_iters n =
  (* A nest whose outermost range 1..0 is empty. *)
  {
    n_iters;
    levels =
      Array.init n_iters (fun _ ->
          {
            lowers = [ { num = L.const n 1; den = 1 } ];
            uppers = [ { num = L.const n 0; den = 1 } ];
            guards = [];
            stride = None;
          });
  }

(* Turn one divisibility guard of a level into a loop stride:
   m | c·v + g with gcd(c, m) = 1  ⟺  v ≡ -c⁻¹·g (mod m). *)
let level_with_stride k lv =
  if lv.stride <> None then lv
  else
    let rec pick seen = function
      | [] -> lv
      | (C.Div (m, e) as g) :: rest when L.coeff e k <> 0 ->
          let c = S.emod (L.coeff e k) m in
          let gcd = S.gcd c m in
          if gcd = 1 then begin
            let _, cinv, _ = S.egcd c m in
            (* r = -c⁻¹·(e without the v term), reduced mod m later. *)
            let g_expr = L.set_coeff e k 0 in
            let r = L.scale (S.emod (-cinv) m) g_expr in
            {
              lv with
              guards = List.rev_append seen rest;
              stride = Some (m, r);
            }
          end
          else pick (g :: seen) rest
      | g :: rest -> pick (g :: seen) rest
    in
    pick [] lv.guards

let with_strides nest =
  { nest with levels = Array.mapi level_with_stride nest.levels }

let rec of_poly ~n_iters p =
  match P.normalize p with
  | None -> empty_nest ~n_iters (P.dim p)
  | Some p -> of_poly_normalized ~n_iters p

and of_poly_normalized ~n_iters p =
  (* Variables beyond n_iters are parameters, always in scope. *)
  (* Guards: every constraint, attached at its deepest variable (ground
     constraints are level-0 guards).  Bound-shaped Ge constraints are
     consumed as bounds instead. *)
  let levels =
    Array.init n_iters (fun _ ->
        { lowers = []; uppers = []; guards = []; stride = None })
  in
  let add_guard k c =
    let k = max k 0 in
    levels.(k) <- { (levels.(k)) with guards = c :: levels.(k).guards }
  in
  (* Projected constraint systems per level: proj.(k) has variables beyond k
     eliminated (rationally). *)
  let proj = Array.make n_iters [] in
  let cur = ref (P.constraints p) in
  for k = n_iters - 1 downto 0 do
    proj.(k) <- !cur;
    cur := eliminate_relaxed !cur k
  done;
  (* Ground leftovers (constraints among parameters only) become level-0
     guards if they are not tautologies. *)
  List.iter
    (fun c ->
      match C.normalize c with
      | C.Tautology -> ()
      | C.Keep c -> add_guard 0 c
      | C.Contradiction -> add_guard 0 c)
    (List.filter (fun c -> deepest ~n_iters c = -1) !cur);
  for k = 0 to n_iters - 1 do
    let lowers = ref [] and uppers = ref [] in
    List.iter
      (fun c ->
        let e = C.expr c in
        let ck = L.coeff e k in
        if ck <> 0 && deepest ~n_iters c = k then
          match c with
          | C.Ge _ when ck > 0 ->
              (* c·x + rest ≥ 0 ⟺ x ≥ ⌈-rest/c⌉ *)
              lowers := { num = L.neg (L.set_coeff e k 0); den = ck } :: !lowers
          | C.Ge _ ->
              uppers := { num = L.set_coeff e k 0; den = -ck } :: !uppers
          | C.Eq _ ->
              (* ck·x = -rest ⟹ x = q with q = (-rest)/ck; bound both sides
                 by ⌈q⌉ and ⌊q⌋ of the same quotient (empty range unless the
                 division is exact). *)
              let num, den =
                if ck > 0 then (L.neg (L.set_coeff e k 0), ck)
                else (L.set_coeff e k 0, -ck)
              in
              lowers := { num; den } :: !lowers;
              uppers := { num; den } :: !uppers
          | C.Div _ -> add_guard k c)
      proj.(k);
    (* Equalities with |coeff| > 1 are exact as a ceiling/floor bound pair
       (the range is empty unless the division is exact), so no extra
       divisibility guard is needed; Div constraints became guards above. *)
    if !lowers = [] || !uppers = [] then raise (Unbounded k);
    levels.(k) <-
      { (levels.(k)) with lowers = List.rev !lowers; uppers = List.rev !uppers }
  done;
  { n_iters; levels }
