(** Visualization of dependence structure — the textual counterpart of the
    authors' 3D iteration space visualizer (Yu & D'Hollander, JVLC 2001,
    cited as [28] for Example 3).

    Produces Graphviz DOT for instance dependence graphs and recurrence
    chains, and ASCII grids of 2-D iteration spaces colored by partition
    set (the rendering used in Figure 1/Figure 2-style displays). *)

val dot_of_trace : ?max_nodes:int -> Depend.Trace.t -> string
(** DOT digraph of the statement-instance dependence graph; nodes are
    labelled [S<stmt>(iter)].  Traces larger than [max_nodes] (default 400)
    are truncated with a comment. *)

val dot_of_chains : Core.Chain.t -> string
(** DOT digraph with one path per monotonic chain. *)

val ascii_grid :
  classify:(int array -> char) ->
  x_range:int * int ->
  y_range:int * int ->
  string
(** 2-D grid, x horizontal (left→right), y vertical (top = max). *)

val ascii_three_sets :
  Core.Threeset.t -> params:int array -> x_range:int * int -> y_range:int * int -> string
(** Grid of `1`/`2`/`3` for P1/P2/P3 (`.` outside), as printed by
    [examples/example1_rec.exe]. *)
