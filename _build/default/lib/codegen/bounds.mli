(** Loop-bound extraction from convex integer sets (Fourier–Motzkin, as in
    the DOALLCodeGeneration step of Algorithm 1 [3,13]).

    For each nesting level the variable's lower bounds are ceiling
    divisions [⌈e/c⌉] and its upper bounds floor divisions [⌊e/c⌋] of
    affine expressions over outer variables and parameters.  Constraints
    that are not representable as bounds of their deepest variable (e.g.
    divisibility/stride constraints) become guards, attached at the first
    level where all their variables are available.  Bounds at each level
    come from a rational-relaxation projection (real shadow), which may
    overshoot; the guards keep the enumerated set exact. *)

type bound = { num : Presburger.Linexpr.t; den : int }
(** [⌈num/den⌉] or [⌊num/den⌋] depending on the side; [den ≥ 1]. *)

type level = {
  lowers : bound list;  (** max of ceilings *)
  uppers : bound list;  (** min of floors *)
  guards : Presburger.Constr.t list;
  stride : (int * Presburger.Linexpr.t) option;
      (** [(m, r)]: iterate with step [m] starting at
          [lo + ((r - lo) mod m)] — the loop-stride form of a divisibility
          guard, as in the paper's step-3 DOALL loops.  [r] is affine over
          outer variables and parameters. *)
}

type nest = { n_iters : int; levels : level array }

exception Unbounded of int
(** A level has no lower or no upper bound (argument = level). *)

val of_poly : n_iters:int -> Presburger.Poly.t -> nest
(** [of_poly ~n_iters p] extracts a nest for the first [n_iters] dimensions
    of [p] (remaining dimensions are parameters, always in scope). *)

val with_strides : nest -> nest
(** Converts, at every level, one divisibility guard [m | c·v + g] with
    [gcd(c, m) = 1] into a loop stride ([v ≡ -c⁻¹·g (mod m)]); remaining
    guards stay guards.  The enumerated set is unchanged. *)
