type t = { num : int; den : int }

let make n d =
  if d = 0 then raise Division_by_zero;
  if n = 0 then { num = 0; den = 1 }
  else
    let g = Safeint.gcd n d in
    let n = n / g and d = d / g in
    if d < 0 then { num = Safeint.neg n; den = Safeint.neg d }
    else { num = n; den = d }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num q = q.num
let den q = q.den

let add a b =
  make
    (Safeint.add (Safeint.mul a.num b.den) (Safeint.mul b.num a.den))
    (Safeint.mul a.den b.den)

let neg a = { a with num = Safeint.neg a.num }
let sub a b = add a (neg b)
let mul a b = make (Safeint.mul a.num b.num) (Safeint.mul a.den b.den)

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)
let abs a = { a with num = Safeint.abs a.num }

let compare a b =
  Stdlib.compare (Safeint.mul a.num b.den) (Safeint.mul b.num a.den)

let equal a b = a.num = b.num && a.den = b.den
let sign a = Safeint.sign a.num
let is_zero a = a.num = 0
let is_integer a = a.den = 1

let to_int_exn a =
  if a.den <> 1 then invalid_arg "Rat.to_int_exn: not an integer";
  a.num

let floor a = Safeint.fdiv a.num a.den
let ceil a = Safeint.cdiv a.num a.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
