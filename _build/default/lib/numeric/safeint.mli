(** Overflow-checked arithmetic on native [int].

    Every operation that can overflow the 63-bit native range raises
    {!Overflow} instead of wrapping.  Symbolic loop analysis works with small
    coefficients, so native integers are ample; the checks guarantee that a
    pathological input fails loudly rather than yielding a wrong dependence
    set.  See DESIGN.md §5 for the rationale. *)

exception Overflow

val add : int -> int -> int
(** [add a b] is [a + b]; raises {!Overflow} on overflow. *)

val sub : int -> int -> int
(** [sub a b] is [a - b]; raises {!Overflow} on overflow. *)

val mul : int -> int -> int
(** [mul a b] is [a * b]; raises {!Overflow} on overflow. *)

val neg : int -> int
(** [neg a] is [-a]; raises {!Overflow} for [min_int]. *)

val abs : int -> int
(** [abs a] is the absolute value; raises {!Overflow} for [min_int]. *)

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** [lcm a b] is the non-negative least common multiple; [lcm x 0 = 0]. *)

val egcd : int -> int -> int * int * int
(** [egcd a b] is [(g, x, y)] with [g = gcd a b] (non-negative) and
    [a*x + b*y = g]. *)

val fdiv : int -> int -> int
(** [fdiv a b] is the floor division [⌊a/b⌋]; raises [Division_by_zero]. *)

val cdiv : int -> int -> int
(** [cdiv a b] is the ceiling division [⌈a/b⌉]; raises [Division_by_zero]. *)

val emod : int -> int -> int
(** [emod a b] is the Euclidean remainder in [0, |b|); [a = b * fdiv a b +
    emod a b] when [b > 0]. *)

val sign : int -> int
(** [sign a] is [-1], [0] or [1]. *)

val pow : int -> int -> int
(** [pow a n] is [aⁿ] for [n ≥ 0]; raises {!Overflow} on overflow and
    [Invalid_argument] for negative [n]. *)
