(** Exact rational numbers over overflow-checked native integers.

    Values are kept normalized: the denominator is positive and the numerator
    and denominator are coprime.  All operations are exact; an operation whose
    exact result would exceed the native integer range raises
    {!Safeint.Overflow}. *)

type t = private { num : int; den : int }
(** A normalized rational [num/den] with [den > 0] and [gcd num den = 1]. *)

val make : int -> int -> t
(** [make n d] is the normalized rational [n/d]; raises [Division_by_zero]
    when [d = 0]. *)

val of_int : int -> t
val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** [div a b] raises [Division_by_zero] when [b] is zero. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** [inv a] raises [Division_by_zero] when [a] is zero. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val to_int_exn : t -> int
(** [to_int_exn q] is the integer value of [q]; raises [Invalid_argument]
    when [q] is not an integer. *)

val floor : t -> int
(** [floor q] is [⌊q⌋]. *)

val ceil : t -> int
(** [ceil q] is [⌈q⌉]. *)

val min : t -> t -> t
val max : t -> t -> t

val to_float : t -> float
(** Approximate floating-point value. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
