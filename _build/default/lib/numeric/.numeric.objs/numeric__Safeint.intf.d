lib/numeric/safeint.mli:
