lib/numeric/safeint.ml:
