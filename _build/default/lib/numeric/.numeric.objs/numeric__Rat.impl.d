lib/numeric/rat.ml: Format Safeint Stdlib
