exception Overflow

let add a b =
  let s = a + b in
  (* Overflow iff operands share a sign that the sum does not. *)
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then raise Overflow;
  s

let neg a = if a = min_int then raise Overflow else -a

let sub a b =
  let d = a - b in
  if (a >= 0) <> (b >= 0) && (d >= 0) <> (a >= 0) then raise Overflow;
  d

let mul a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a || (a = min_int && b = -1) || (b = min_int && a = -1) then
      raise Overflow
    else p

let abs a = if a < 0 then neg a else a
let sign a = compare a 0

let rec gcd_pos a b = if b = 0 then a else gcd_pos b (a mod b)
let gcd a b = gcd_pos (abs a) (abs b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (mul (a / gcd a b) b)

let egcd a b =
  (* Invariant: r = a*x + b*y for both tracked rows. *)
  let rec go r0 x0 y0 r1 x1 y1 =
    if r1 = 0 then (r0, x0, y0)
    else
      let q = r0 / r1 in
      go r1 x1 y1 (r0 - (q * r1)) (x0 - (q * x1)) (y0 - (q * y1))
  in
  let g, x, y = go (abs a) (sign a) 0 (abs b) 0 (sign b) in
  (g, x, y)

let fdiv a b =
  if b = 0 then raise Division_by_zero;
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let cdiv a b =
  if b = 0 then raise Division_by_zero;
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) = (b < 0) then q + 1 else q

let emod a b =
  if b = 0 then raise Division_by_zero;
  let r = a mod b in
  if r < 0 then r + abs b else r

let pow a n =
  if n < 0 then invalid_arg "Safeint.pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else
      let acc = if n land 1 = 1 then mul acc base else acc in
      let n = n asr 1 in
      if n = 0 then acc else go acc (mul base base) n
  in
  go 1 a n
