(** Dense float array store for program execution.

    Extents are discovered by a dry scan of every subscript the program will
    evaluate, so negative and parametric indices (as in the Cholesky kernel)
    are handled by offsetting.  Cells start with a deterministic per-cell
    value derived from the array name and indices, so two executions agree
    iff they perform the same writes in an equivalent order. *)

type t

val create : unit -> t

val note_bounds : t -> string -> int list -> unit
(** Extend the recorded extent of an array to include the given index
    tuple (call during the dry scan). *)

val freeze : t -> unit
(** Allocate backing stores; must be called after all {!note_bounds} and
    before any {!get}/{!set}. *)

val get : t -> string -> int list -> float
val set : t -> string -> int list -> float -> unit

val initial_value : string -> int list -> float
(** The deterministic initial cell value. *)

val equal : t -> t -> bool
(** Same arrays, same extents, same contents. *)

val max_abs_diff : t -> t -> float
val arrays : t -> string list
