(** Reference interpreter for the mini-Fortran programs over the dense
    array store, plus schedule execution — the semantic ground truth used to
    validate every partitioning scheme: a legal schedule must leave the
    arrays exactly as the sequential run does. *)

type env = {
  prog : Loopir.Ast.program;  (** normalized *)
  params : (string * int) list;
  stmts : Loopir.Prog.stmt_info array;  (** indexed by statement id *)
}

val prepare : Loopir.Ast.program -> params:(string * int) list -> env
(** Normalizes the program and binds parameters. *)

val scan_bounds : env -> Arrays.t
(** Dry-runs the program, recording every array extent, and freezes the
    store (initial values populated). *)

val run_sequential : env -> Arrays.t
(** Executes the program in source order on a fresh store. *)

val exec_instance : env -> Arrays.t -> Sched.instance -> unit
(** Executes one statement instance (used by the executors). *)

val run_schedule : env -> Sched.t -> Arrays.t
(** Executes a schedule serially (phases in order, tasks in listed order) on
    a fresh store. *)

val check_schedule : env -> Sched.t -> (unit, string) result
(** [run_schedule] vs [run_sequential] array equality. *)
