module Ast = Loopir.Ast
module Prog = Loopir.Prog

type env = {
  prog : Ast.program;
  params : (string * int) list;
  stmts : Prog.stmt_info array;
}

let prepare prog ~params =
  let prog = Loopir.Normalize.unit_strides prog in
  List.iter
    (fun p ->
      if not (List.mem_assoc p params) then
        failwith (Printf.sprintf "Interp: unbound parameter %s" p))
    prog.Ast.params;
  { prog; params; stmts = Array.of_list (Prog.stmts_of prog) }

let var_env t bindings name =
  match List.assoc_opt name bindings with
  | Some v -> v
  | None -> (
      match List.assoc_opt name t.params with
      | Some v -> v
      | None -> failwith (Printf.sprintf "Interp: unbound variable %s" name))

(* Float evaluation of right-hand sides. *)
let rec feval store ienv e =
  match e with
  | Ast.Int k -> float_of_int k
  | Ast.Real r -> r
  | Ast.Var v -> float_of_int (ienv v)
  | Ast.Ref (a, subs) ->
      Arrays.get store a (List.map (Loopir.Eval_int.eval ienv) subs)
  | Ast.Bin (Ast.Add, a, b) -> feval store ienv a +. feval store ienv b
  | Ast.Bin (Ast.Sub, a, b) -> feval store ienv a -. feval store ienv b
  | Ast.Bin (Ast.Mul, a, b) -> feval store ienv a *. feval store ienv b
  | Ast.Bin (Ast.Div, a, b) -> feval store ienv a /. feval store ienv b
  | Ast.Un (Ast.Neg, a) -> -.feval store ienv a
  | Ast.Un (Ast.Sqrt, a) -> sqrt (feval store ienv a)
  | Ast.Un (Ast.Abs, a) -> Float.abs (feval store ienv a)
  | Ast.Min es ->
      List.fold_left (fun m e -> Float.min m (feval store ienv e)) infinity es
  | Ast.Max es ->
      List.fold_left
        (fun m e -> Float.max m (feval store ienv e))
        neg_infinity es
  | Ast.Mod (a, b) ->
      float_of_int
        (Numeric.Safeint.emod (Loopir.Eval_int.eval ienv a)
           (Loopir.Eval_int.eval ienv b))
  | Ast.Pow (a, k) -> feval store ienv a ** float_of_int k

(* Walk the whole program in source order, calling [visit] on each statement
   instance's environment. *)
let iterate t visit =
  let rec run bindings stmt_counter = function
    | Ast.Assign (lhs, rhs) ->
        let id = !stmt_counter in
        incr stmt_counter;
        visit ~stmt:id ~bindings lhs rhs
    | Ast.Loop l ->
        let ienv = var_env t bindings in
        let lo = Loopir.Eval_int.eval ienv l.Ast.lo
        and hi = Loopir.Eval_int.eval ienv l.Ast.hi in
        let saved = !stmt_counter in
        if lo > hi then begin
          (* Still advance the static statement numbering. *)
          let rec count = function
            | Ast.Assign _ -> incr stmt_counter
            | Ast.Loop l -> List.iter count l.Ast.body
          in
          List.iter count l.Ast.body
        end
        else
          for v = lo to hi do
            stmt_counter := saved;
            List.iter
              (run ((l.Ast.index, v) :: bindings) stmt_counter)
              l.Ast.body
          done
    in
  let counter = ref 0 in
  List.iter (run [] counter) t.prog.Ast.body

let scan_bounds t =
  let store = Arrays.create () in
  let note ~stmt:_ ~bindings (a, subs) rhs =
    let ienv = var_env t bindings in
    Arrays.note_bounds store a (List.map (Loopir.Eval_int.eval ienv) subs);
    let rec scan = function
      | Ast.Ref (a, subs) ->
          Arrays.note_bounds store a
            (List.map (Loopir.Eval_int.eval ienv) subs);
          List.iter scan subs
      | Ast.Bin (_, x, y) | Ast.Mod (x, y) ->
          scan x;
          scan y
      | Ast.Un (_, x) | Ast.Pow (x, _) -> scan x
      | Ast.Min es | Ast.Max es -> List.iter scan es
      | Ast.Int _ | Ast.Real _ | Ast.Var _ -> ()
    in
    scan rhs
  in
  iterate t note;
  Arrays.freeze store;
  store

let exec_assign t store bindings (a, subs) rhs =
  let ienv = var_env t bindings in
  let v = feval store ienv rhs in
  Arrays.set store a (List.map (Loopir.Eval_int.eval ienv) subs) v

let run_sequential t =
  let store = scan_bounds t in
  iterate t (fun ~stmt:_ ~bindings lhs rhs ->
      exec_assign t store bindings lhs rhs);
  store

let exec_instance t store (inst : Sched.instance) =
  let info = t.stmts.(inst.Sched.stmt) in
  let vars = Prog.loop_vars info in
  if List.length vars <> Array.length inst.Sched.iter then
    failwith "Interp.exec_instance: iteration arity mismatch";
  let bindings = List.mapi (fun k v -> (v, inst.Sched.iter.(k))) vars in
  exec_assign t store bindings info.Prog.lhs info.Prog.rhs

let run_schedule t (s : Sched.t) =
  let store = scan_bounds t in
  List.iter
    (fun phase ->
      Array.iter (exec_instance t store) (Sched.phase_instances phase))
    s.Sched.phases;
  store

let check_schedule t s =
  let seq = run_sequential t in
  let got = run_schedule t s in
  if Arrays.equal seq got then Ok ()
  else
    Error
      (Printf.sprintf "arrays differ (max abs diff %g)"
         (Arrays.max_abs_diff seq got))
