(* Partition an array of work items into [threads] buckets: blocks for
   DOALL instance arrays, longest-first round-robin for tasks. *)
let doall_buckets threads instances =
  let n = Array.length instances in
  let size = (n + threads - 1) / max threads 1 in
  List.init threads (fun t ->
      let lo = t * size in
      let hi = min n (lo + size) in
      if lo >= hi then [||] else Array.sub instances lo (hi - lo))

let task_buckets threads tasks =
  let order = Array.copy tasks in
  Array.sort (fun a b -> compare (Array.length b) (Array.length a)) order;
  let buckets = Array.make threads [] in
  let loads = Array.make threads 0 in
  Array.iter
    (fun task ->
      let best = ref 0 in
      for k = 1 to threads - 1 do
        if loads.(k) < loads.(!best) then best := k
      done;
      buckets.(!best) <- task :: buckets.(!best);
      loads.(!best) <- loads.(!best) + Array.length task)
    order;
  Array.to_list (Array.map List.rev buckets)

let run_phase env store ~threads phase =
  let work =
    match phase with
    | Sched.Doall { instances; _ } ->
        List.map (fun b -> [ b ]) (doall_buckets threads instances)
    | Sched.Tasks { tasks; _ } -> task_buckets threads tasks
  in
  let run_bucket tasks =
    List.iter (Array.iter (Interp.exec_instance env store)) tasks
  in
  match work with
  | [] -> ()
  | first :: rest ->
      let domains = List.map (fun b -> Domain.spawn (fun () -> run_bucket b)) rest in
      run_bucket first;
      List.iter Domain.join domains

let run env ~threads s =
  let store = Interp.scan_bounds env in
  if threads <= 1 then begin
    List.iter
      (fun phase ->
        Array.iter (Interp.exec_instance env store) (Sched.phase_instances phase))
      s.Sched.phases;
    store
  end
  else begin
    List.iter (run_phase env store ~threads) s.Sched.phases;
    store
  end

let check env ~threads s =
  let seq = Interp.run_sequential env in
  let got = run env ~threads s in
  if Arrays.equal seq got then Ok ()
  else
    Error
      (Printf.sprintf "parallel execution diverged (max abs diff %g)"
         (Arrays.max_abs_diff seq got))

let wall_time env ~threads s =
  let store = Interp.scan_bounds env in
  let t0 = Unix.gettimeofday () in
  if threads <= 1 then
    List.iter
      (fun phase ->
        Array.iter (Interp.exec_instance env store) (Sched.phase_instances phase))
      s.Sched.phases
  else List.iter (run_phase env store ~threads) s.Sched.phases;
  Unix.gettimeofday () -. t0
