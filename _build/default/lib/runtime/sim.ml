type cost = {
  w_iter : float;
  code_factor : float;
  fork : float;
  barrier : float;
  bound_eval : float;
}

let base =
  { w_iter = 1.0; code_factor = 1.0; fork = 20.0; barrier = 30.0; bound_eval = 8.0 }

let with_factor code_factor = { base with code_factor }

let lpt_makespan p durations =
  if p <= 0 then invalid_arg "Sim.lpt_makespan: threads";
  let loads = Array.make p 0.0 in
  let sorted = Array.copy durations in
  Array.sort (fun a b -> compare b a) sorted;
  Array.iter
    (fun d ->
      let best = ref 0 in
      for k = 1 to p - 1 do
        if loads.(k) < loads.(!best) then best := k
      done;
      loads.(!best) <- loads.(!best) +. d)
    sorted;
  Array.fold_left Float.max 0.0 loads

let phase_time c ~threads phase =
  let per_iter = c.w_iter *. c.code_factor in
  let work =
    match phase with
    | Sched.Doall { instances; _ } ->
        let n = Array.length instances in
        float_of_int ((n + threads - 1) / threads) *. per_iter
    | Sched.Tasks { tasks; _ } ->
        lpt_makespan threads
          (Array.map (fun t -> float_of_int (Array.length t) *. per_iter) tasks)
  in
  c.fork +. (c.bound_eval *. float_of_int threads) +. work +. c.barrier

let time c ~threads s =
  List.fold_left (fun acc p -> acc +. phase_time c ~threads p) 0.0 s.Sched.phases

let seq_time c n = float_of_int n *. c.w_iter

let speedup c ~threads ~n_seq s = seq_time c n_seq /. time c ~threads s

type aphase = ADoall of int | ATasks of int array

type asched = aphase list

let abstract (s : Sched.t) =
  List.map
    (function
      | Sched.Doall { instances; _ } -> ADoall (Array.length instances)
      | Sched.Tasks { tasks; _ } -> ATasks (Array.map Array.length tasks))
    s.Sched.phases

let aphase_time c ~threads = function
  | ADoall n ->
      let per_iter = c.w_iter *. c.code_factor in
      c.fork
      +. (c.bound_eval *. float_of_int threads)
      +. (float_of_int ((n + threads - 1) / threads) *. per_iter)
      +. c.barrier
  | ATasks sizes ->
      let per_iter = c.w_iter *. c.code_factor in
      c.fork
      +. (c.bound_eval *. float_of_int threads)
      +. lpt_makespan threads
           (Array.map (fun n -> float_of_int n *. per_iter) sizes)
      +. c.barrier

let time_abstract c ~threads s =
  List.fold_left (fun acc p -> acc +. aphase_time c ~threads p) 0.0 s

let speedup_abstract c ~threads ~n_seq s =
  seq_time c n_seq /. time_abstract c ~threads s

let pipeline_time c ~threads ~stages ~stage_work ~delay =
  if stages <= 0 then 0.0
  else
    (* Stage k may start no earlier than k·delay and no earlier than the
       finish of the previous stage on the same processor. *)
    let proc_free = Array.make (max threads 1) 0.0 in
    let finish = ref 0.0 in
    for k = 0 to stages - 1 do
      let p = k mod max threads 1 in
      let start = Float.max proc_free.(p) (float_of_int k *. delay) in
      let stop = start +. stage_work in
      proc_free.(p) <- stop;
      if stop > !finish then finish := stop
    done;
    c.fork +. !finish +. c.barrier
