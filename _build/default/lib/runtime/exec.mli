(** Real multicore execution of a schedule on OCaml 5 domains — the second
    half of the testbed substitution: it independently validates that a
    schedule's parallel phases are race-free in practice (a legal schedule
    leaves the store identical to the sequential run) and provides
    wall-clock measurements.

    Phases are separated by joins (barriers).  Within a phase, DOALL
    instances are block-distributed and sequential tasks are dealt
    round-robin by decreasing length. *)

val run : Interp.env -> threads:int -> Sched.t -> Arrays.t
(** Executes the schedule on [threads] domains (sequential fallback when
    [threads ≤ 1]). *)

val check : Interp.env -> threads:int -> Sched.t -> (unit, string) result
(** Parallel run vs sequential run array equality. *)

val wall_time : Interp.env -> threads:int -> Sched.t -> float
(** Seconds for one parallel run (store setup excluded). *)
