lib/runtime/exec.mli: Arrays Interp Sched
