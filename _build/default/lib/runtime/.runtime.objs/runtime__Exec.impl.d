lib/runtime/exec.ml: Array Arrays Domain Interp List Printf Sched Unix
