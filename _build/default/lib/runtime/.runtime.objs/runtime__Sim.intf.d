lib/runtime/sim.mli: Sched
