lib/runtime/interp.ml: Array Arrays Float List Loopir Numeric Printf Sched
