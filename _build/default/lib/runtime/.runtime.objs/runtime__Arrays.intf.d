lib/runtime/arrays.mli:
