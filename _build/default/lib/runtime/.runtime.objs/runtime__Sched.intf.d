lib/runtime/sched.mli: Core Depend Linalg
