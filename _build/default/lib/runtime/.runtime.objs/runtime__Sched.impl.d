lib/runtime/sched.ml: Array Core Depend Hashtbl Linalg List Printf
