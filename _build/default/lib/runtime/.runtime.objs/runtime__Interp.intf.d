lib/runtime/interp.mli: Arrays Loopir Sched
