lib/runtime/sim.ml: Array Float List Sched
