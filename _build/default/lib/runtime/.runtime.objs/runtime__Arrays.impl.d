lib/runtime/arrays.ml: Array Float Hashtbl List Printf
