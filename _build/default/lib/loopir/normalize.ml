open Ast

let loop_count_bound l =
  let diff = if l.step > 0 then Bin (Sub, l.hi, l.lo) else Bin (Sub, l.lo, l.hi) in
  let k = abs l.step in
  if k = 1 then diff else Bin (Div, diff, Int k)

let rec norm_stmt = function
  | Assign _ as s -> s
  | Loop l ->
      let body = List.map norm_stmt l.body in
      if l.step = 1 then Loop { l with body }
      else begin
        (* v = lo + step·v' with v' = 0 .. ⌊(hi-lo)/step⌋ (downward loops
           symmetrically); the substitution reuses the index name. *)
        let replacement =
          if l.step > 0 then Bin (Add, l.lo, Bin (Mul, Int l.step, Var l.index))
          else Bin (Sub, l.lo, Bin (Mul, Int (-l.step), Var l.index))
        in
        let subst =
          map_expr_stmt (function
            | Var v when v = l.index -> replacement
            | e -> e)
        in
        Loop
          {
            index = l.index;
            lo = Int 0;
            hi = loop_count_bound l;
            step = 1;
            body = List.map subst body;
          }
      end

let unit_strides p = { p with body = List.map norm_stmt p.body }
