open Ast

type loop_ctx = { index : string; lo : Ast.expr; hi : Ast.expr }
type ref_kind = Read | Write

type stmt_info = {
  id : int;
  path : int list;
  loops : loop_ctx list;
  lhs : string * Ast.expr list;
  rhs : Ast.expr;
}

let stmts_of (p : Ast.program) =
  let infos = ref [] in
  let next_id = ref 0 in
  let rec go path loops body =
    List.iteri
      (fun k s ->
        let pos = k + 1 in
        match s with
        | Assign (lhs, rhs) ->
            let id = !next_id in
            incr next_id;
            infos :=
              {
                id;
                path = List.rev (pos :: path);
                loops = List.rev loops;
                lhs;
                rhs;
              }
              :: !infos
        | Loop l ->
            go (pos :: path)
              ({ index = l.index; lo = l.lo; hi = l.hi } :: loops)
              l.body)
      body
  in
  go [] [] p.body;
  List.rev !infos

let rec reads_of_expr acc = function
  | Int _ | Real _ | Var _ -> acc
  | Ref (a, subs) ->
      let acc = (a, subs, Read) :: acc in
      List.fold_left reads_of_expr acc subs
  | Bin (_, a, b) | Mod (a, b) -> reads_of_expr (reads_of_expr acc a) b
  | Un (_, a) | Pow (a, _) -> reads_of_expr acc a
  | Min es | Max es -> List.fold_left reads_of_expr acc es

let refs_of s =
  let a, subs = s.lhs in
  (a, subs, Write) :: List.rev (reads_of_expr [] s.rhs)

let arrays_of p =
  let table = Hashtbl.create 8 in
  let note name rank =
    match Hashtbl.find_opt table name with
    | None -> Hashtbl.add table name rank
    | Some r when r = rank -> ()
    | Some r ->
        failwith
          (Printf.sprintf "array %s used with ranks %d and %d" name r rank)
  in
  List.iter
    (fun s ->
      List.iter (fun (a, subs, _) -> note a (List.length subs)) (refs_of s))
    (stmts_of p);
  Hashtbl.fold (fun name rank acc -> (name, rank) :: acc) table []
  |> List.sort compare

let depth s = List.length s.loops

let max_depth p =
  List.fold_left (fun acc s -> max acc (depth s)) 0 (stmts_of p)

let loop_vars s = List.map (fun l -> l.index) s.loops
