(** Affine views of expressions: extraction of affine subscript functions
    and of loop-bound constraints (handling MIN/MAX bounds and floor
    divisions by constants, as they appear in normalized loops). *)

exception Unsupported of string
(** Raised when an expression has no affine (or supported bound) form. *)

type t = { terms : (string * int) list; const : int }
(** Canonical affine form [const + Σ coef·name]: terms sorted by name, no
    zero coefficients. *)

val const : int -> t
val var : string -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val coeff : t -> string -> int
val names : t -> string list
val equal : t -> t -> bool
val eval : (string -> int) -> t -> int
val pp : Format.formatter -> t -> unit

val of_expr : Ast.expr -> t option
(** [of_expr e] is the affine form of [e] when it is affine over its
    variables (integer constants, [+ - ×const], unary minus). *)

val of_expr_exn : Ast.expr -> t

type atom = { num : t; den : int }
(** The integer quantity [⌊num/den⌋] with [den ≥ 1]. *)

type bound =
  | Atom of atom
  | Max_of of atom list  (** maximum of atoms — usable as a lower bound *)
  | Min_of of atom list  (** minimum of atoms — usable as an upper bound *)

val bound_of_expr : Ast.expr -> bound
(** [bound_of_expr e] normalizes a loop-bound expression, distributing
    arithmetic over MIN/MAX and folding floor divisions by positive
    constants; raises {!Unsupported} otherwise. *)

val lower_atoms : Ast.expr -> atom list
(** Atoms [a] such that the bound means [v ≥ max ⌊a⌋]; raises
    {!Unsupported} when the expression involves MIN (non-convex as a lower
    bound). *)

val upper_atoms : Ast.expr -> atom list
(** Dual of {!lower_atoms}: [v ≤ min ⌊a⌋]. *)
