(** Abstract syntax of the mini-Fortran loop language used throughout the
    reproduction: normalized DO-loop nests (possibly imperfect) over real
    arrays with affine subscripts — the program model of §2 of the paper. *)

type binop = Add | Sub | Mul | Div
(** [Div] is floor division in index contexts and real division in value
    contexts. *)

type unop = Neg | Sqrt | Abs

type expr =
  | Int of int
  | Real of float
  | Var of string  (** loop index or symbolic parameter *)
  | Ref of string * expr list  (** array element [a(e1, …, ek)] *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Min of expr list
  | Max of expr list
  | Mod of expr * expr
  | Pow of expr * int

type stmt =
  | Assign of (string * expr list) * expr
      (** [a(subs) = rhs]; the only side-effecting statement form. *)
  | Loop of loop

and loop = {
  index : string;
  lo : expr;
  hi : expr;
  step : int;  (** non-zero; 1 after {!Normalize.unit_strides} *)
  body : stmt list;
}

type program = { name : string; params : string list; body : stmt list }
(** [params] are the symbolic constants (e.g. loop bound [N]) appearing free
    in the program, sorted. *)

val free_params : stmt list -> string list
(** Identifiers used as scalars but never bound as a loop index. *)

val program : name:string -> stmt list -> program
(** Builds a program, inferring {!program.params}. *)

val map_expr : (expr -> expr) -> expr -> expr
(** Bottom-up expression rewriting. *)

val map_expr_stmt : (expr -> expr) -> stmt -> stmt
(** Applies a function to every expression of a statement (subscripts,
    bounds, right-hand sides), recursing into loop bodies. *)

val subst_var : string -> expr -> expr -> expr
(** [subst_var v r e] replaces every [Var v] by [r] in [e]. *)

val expr_equal : expr -> expr -> bool
