(** Recursive-descent parser for the mini-Fortran loop language.

    Grammar (keywords case-insensitive):
    {v
    program := stmt* EOF
    stmt    := DO ident = expr , expr [, int] stmt* ENDDO
             | ident ( expr {, expr} ) = expr
    expr    := term { ("+" | "-") term }
    term    := factor { ("*" | "/") factor }
    factor  := atom [** int]
    atom    := INT | REAL | ident | ident ( args )
             | MIN ( args ) | MAX ( args ) | MOD ( expr , expr )
             | SQRT ( expr ) | ABS ( expr ) | ( expr ) | - atom | + atom
    v} *)

exception Error of string * int
(** Message and line number. *)

val parse : name:string -> string -> Ast.program
(** [parse ~name src] parses a program; symbolic parameters are inferred
    from the free identifiers. *)

val parse_expr : string -> Ast.expr
(** Parses a single expression (for tests and the CLI). *)
