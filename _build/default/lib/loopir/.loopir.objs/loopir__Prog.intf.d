lib/loopir/prog.mli: Ast
