lib/loopir/pretty.ml: Ast Format List Printf String
