lib/loopir/builtin.ml: List Parser
