lib/loopir/affine.mli: Ast Format
