lib/loopir/eval_int.ml: Ast List Numeric Pretty
