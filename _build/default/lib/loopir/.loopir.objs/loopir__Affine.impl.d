lib/loopir/affine.ml: Ast Format List Numeric Option Pretty Printf
