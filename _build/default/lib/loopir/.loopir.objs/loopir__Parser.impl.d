lib/loopir/parser.ml: Ast Lexer List Printf
