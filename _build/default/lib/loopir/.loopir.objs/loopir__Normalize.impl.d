lib/loopir/normalize.ml: Ast List
