lib/loopir/normalize.mli: Ast
