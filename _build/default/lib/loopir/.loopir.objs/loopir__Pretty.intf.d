lib/loopir/pretty.mli: Ast Format
