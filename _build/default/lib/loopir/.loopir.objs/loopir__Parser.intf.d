lib/loopir/parser.mli: Ast
