lib/loopir/eval_int.mli: Ast
