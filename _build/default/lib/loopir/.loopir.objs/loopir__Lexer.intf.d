lib/loopir/lexer.mli:
