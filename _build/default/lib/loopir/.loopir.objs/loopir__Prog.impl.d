lib/loopir/prog.ml: Ast Hashtbl List Printf
