lib/loopir/builtin.mli: Ast
