lib/loopir/ast.mli:
