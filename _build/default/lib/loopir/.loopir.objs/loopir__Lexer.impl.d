lib/loopir/lexer.ml: List Printf String
