lib/loopir/ast.ml: List Set String
