(** Integer evaluation of index expressions (subscripts and loop bounds)
    under an environment binding loop indices and parameters.  Division is
    floor division, matching the normalized-bound semantics. *)

exception Not_integer of string
(** Raised on value-domain constructs (reals, array references, SQRT). *)

val eval : (string -> int) -> Ast.expr -> int
