type token =
  | INT of int
  | REAL of float
  | IDENT of string
  | KDO
  | KENDDO
  | KMIN
  | KMAX
  | KMOD
  | KSQRT
  | KABS
  | LPAREN
  | RPAREN
  | COMMA
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | POW
  | EOF

exception Error of string * int

let keyword = function
  | "do" -> Some KDO
  | "enddo" -> Some KENDDO
  | "min" -> Some KMIN
  | "max" -> Some KMAX
  | "mod" -> Some KMOD
  | "sqrt" -> Some KSQRT
  | "abs" -> Some KABS
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '!' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else begin
      if is_digit c then begin
        let j = ref !i in
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        (* A real literal: digits '.' digits (the '.' must be followed by a
           digit or end-of-number to avoid eating operator dots). *)
        if !j < n && src.[!j] = '.' && (!j + 1 >= n || not (is_alpha src.[!j + 1]))
        then begin
          let k = ref (!j + 1) in
          while !k < n && is_digit src.[!k] do
            incr k
          done;
          (* optional exponent: e[+-]digits *)
          if
            !k < n
            && (src.[!k] = 'e' || src.[!k] = 'E')
            && !k + 1 < n
            && (is_digit src.[!k + 1]
               || ((src.[!k + 1] = '+' || src.[!k + 1] = '-')
                  && !k + 2 < n
                  && is_digit src.[!k + 2]))
          then begin
            incr k;
            if src.[!k] = '+' || src.[!k] = '-' then incr k;
            while !k < n && is_digit src.[!k] do
              incr k
            done
          end;
          push (REAL (float_of_string (String.sub src !i (!k - !i))));
          i := !k
        end
        else if
          (* exponent directly after the digits, e.g. 2e3, 1e-5 *)
          !j < n
          && (src.[!j] = 'e' || src.[!j] = 'E')
          && !j + 1 < n
          && (is_digit src.[!j + 1]
             || ((src.[!j + 1] = '+' || src.[!j + 1] = '-')
                && !j + 2 < n
                && is_digit src.[!j + 2]))
        then begin
          let k = ref (!j + 1) in
          if src.[!k] = '+' || src.[!k] = '-' then incr k;
          while !k < n && is_digit src.[!k] do
            incr k
          done;
          push (REAL (float_of_string (String.sub src !i (!k - !i))));
          i := !k
        end
        else begin
          push (INT (int_of_string (String.sub src !i (!j - !i))));
          i := !j
        end
      end
      else if is_alpha c then begin
        let j = ref !i in
        while !j < n && (is_alpha src.[!j] || is_digit src.[!j]) do
          incr j
        done;
        let word = String.lowercase_ascii (String.sub src !i (!j - !i)) in
        (match keyword word with
        | Some k -> push k
        | None -> push (IDENT word));
        i := !j
      end
      else begin
        (match c with
        | '(' -> push LPAREN
        | ')' -> push RPAREN
        | ',' -> push COMMA
        | '=' -> push EQUALS
        | '+' -> push PLUS
        | '-' -> push MINUS
        | '*' ->
            if !i + 1 < n && src.[!i + 1] = '*' then begin
              push POW;
              incr i
            end
            else push STAR
        | '/' -> push SLASH
        | c -> raise (Error (Printf.sprintf "unexpected character %c" c, !line)));
        incr i
      end
    end
  done;
  List.rev ((EOF, !line) :: !toks)

let pp_token = function
  | INT k -> string_of_int k
  | REAL r -> string_of_float r
  | IDENT s -> s
  | KDO -> "DO"
  | KENDDO -> "ENDDO"
  | KMIN -> "MIN"
  | KMAX -> "MAX"
  | KMOD -> "MOD"
  | KSQRT -> "SQRT"
  | KABS -> "ABS"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | EQUALS -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | POW -> "**"
  | EOF -> "<eof>"
