(** The paper's example programs (transcribed into the mini-language) plus a
    corpus of classic loop kernels used by the survey-statistics
    reproduction (DESIGN.md E9). *)

val example1 : Ast.program
(** Figure 1 / Example 1: coupled 2-D subscripts, non-uniform distances
    (d,d), d = 2,4,6. *)

val fig2 : Ast.program
(** Figure 2: [DO I=1,20: a(2I) = a(21-I)]. *)

val fig2_param : Ast.program
(** Figure 2 generalized to bound [2M] with read [a(2M+1-I)]. *)

val example2 : Ast.program
(** Example 2 (Ju et al): [a(2I+3, J+1) = a(I+2J+1, I+J+3)]. *)

val example3 : Ast.program
(** Example 3 (Chen et al): the imperfectly nested 3-deep loop; only the
    [a] array is involved in cross-statement dependences, as in the paper. *)

val cholesky : Ast.program
(** Example 4: the NASA-benchmark Cholesky kernel (both imperfect nests). *)

val corpus : (string * Ast.program) list
(** Named kernels spanning no-dependence, uniform, and non-uniform /
    coupled-subscript loops. *)

val all : (string * Ast.program) list
(** Every builtin program, paper examples first. *)
