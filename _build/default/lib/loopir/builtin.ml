let parse name src = Parser.parse ~name src

let example1 =
  parse "example1"
    {|
! Paper Figure 1 / Example 1 (from Yu & D'Hollander ICPP'00)
DO i1 = 1, N1
  DO i2 = 1, N2
    a(3*i1 + 1, 2*i1 + i2 - 1) = a(i1 + 3, i2 + 1)
  ENDDO
ENDDO
|}

let fig2 =
  parse "fig2"
    {|
! Paper Figure 2
DO i = 1, 20
  a(2*i) = a(21 - i)
ENDDO
|}

let fig2_param =
  parse "fig2_param"
    {|
! Figure 2 generalized: bound 2M, read index 2M+1-i
DO i = 1, 2*m
  a(2*i) = a(2*m + 1 - i)
ENDDO
|}

let example2 =
  parse "example2"
    {|
! Paper Example 2 (Ju & Chaudhary)
DO i = 1, n
  DO j = 1, n
    a(2*i + 3, j + 1) = a(i + 2*j + 1, i + j + 3)
  ENDDO
ENDDO
|}

let example3 =
  parse "example3"
    {|
! Paper Example 3 (Chen & Yew): imperfectly nested loop.
! Only array a carries cross-statement dependences, as in the paper.
DO i = 1, n
  DO j = 1, i
    DO k = j, i
      t(i, j, k) = a(i + 2*k + 5, 4*k - j)
    ENDDO
    a(i - j, i + j) = c(i, j)
  ENDDO
ENDDO
|}

let cholesky =
  parse "cholesky"
    {|
! Paper Example 4: NASA benchmark Cholesky kernel (EPS folded to 1e-5).
DO j = 0, n
  DO i = MAX(-m, -j), -1
    DO jj = MAX(-m, -j) - i, -1
      DO l = 0, nmat
        a(l, i, j) = a(l, i, j) - a(l, jj, i + j)*a(l, i + jj, j)
      ENDDO
    ENDDO
    DO l = 0, nmat
      a(l, i, j) = a(l, i, j)*a(l, 0, i + j)
    ENDDO
  ENDDO
  DO l = 0, nmat
    epss(l) = 0.00001*a(l, 0, j)
  ENDDO
  DO jj = MAX(-m, -j), -1
    DO l = 0, nmat
      a(l, 0, j) = a(l, 0, j) - a(l, jj, j)**2
    ENDDO
  ENDDO
  DO l = 0, nmat
    a(l, 0, j) = 1.0/SQRT(ABS(epss(l) + a(l, 0, j)))
  ENDDO
ENDDO
DO i = 0, nrhs
  DO k = 0, n
    DO l = 0, nmat
      b(i, l, k) = b(i, l, k)*a(l, 0, k)
    ENDDO
    DO jj = 1, MIN(m, n - k)
      DO l = 0, nmat
        b(i, l, k + jj) = b(i, l, k + jj) - a(l, -jj, k + jj)*b(i, l, k)
      ENDDO
    ENDDO
  ENDDO
  DO k = n, 0, -1
    DO l = 0, nmat
      b(i, l, k) = b(i, l, k)*a(l, 0, k)
    ENDDO
    DO jj = 1, MIN(m, k)
      DO l = 0, nmat
        b(i, l, k - jj) = b(i, l, k - jj) - a(l, -jj, k)*b(i, l, k)
      ENDDO
    ENDDO
  ENDDO
ENDDO
|}

let corpus =
  List.map
    (fun (name, src) -> (name, parse name src))
    [
      ( "vecadd",
        {|
DO i = 1, n
  c(i) = a(i) + b(i)
ENDDO
|} );
      ( "scale",
        {|
DO i = 1, n
  a(i) = 2.0*b(i)
ENDDO
|} );
      ( "prefix_sum",
        {|
DO i = 2, n
  s(i) = s(i - 1) + a(i)
ENDDO
|} );
      ( "stencil1d",
        {|
DO i = 2, n - 1
  a(i) = a(i - 1) + a(i + 1)
ENDDO
|} );
      ( "wavefront2d",
        {|
DO i = 2, n
  DO j = 2, n
    a(i, j) = a(i - 1, j) + a(i, j - 1)
  ENDDO
ENDDO
|} );
      ( "uniform_diag",
        {|
DO i = 2, n
  DO j = 2, n
    a(i, j) = a(i - 1, j - 1)
  ENDDO
ENDDO
|} );
      ( "matmul_acc",
        {|
DO i = 1, n
  DO j = 1, n
    DO k = 1, n
      c(i, j) = c(i, j) + a(i, k)*b(k, j)
    ENDDO
  ENDDO
ENDDO
|} );
      ( "transpose_copy",
        {|
DO i = 1, n
  DO j = 1, n
    b(i, j) = a(j, i)
  ENDDO
ENDDO
|} );
      ( "reverse_copy",
        {|
DO i = 1, n
  b(i) = a(n - i + 1)
ENDDO
|} );
      ( "coupled_stretch",
        {|
DO i = 1, n
  a(2*i) = a(i) + 1.0
ENDDO
|} );
      ( "coupled_affine1d",
        {|
DO i = 1, n
  a(3*i + 1) = a(2*i)
ENDDO
|} );
      ( "coupled_mirror",
        {|
DO i = 1, n
  a(i) = a(n - i)
ENDDO
|} );
      ( "coupled_skew2d",
        {|
DO i = 1, n
  DO j = 1, n
    a(i + j, j) = a(j, i)
  ENDDO
ENDDO
|} );
      ( "coupled_scale2d",
        {|
DO i = 1, n
  DO j = 1, n
    a(2*i, 2*j) = a(i + 1, j + 1)
  ENDDO
ENDDO
|} );
      ( "triangular_uniform",
        {|
DO i = 1, n
  DO j = 1, i
    a(i, j) = a(i - 1, j) + 1.0
  ENDDO
ENDDO
|} );
      ( "banded_update",
        {|
DO i = 1, n
  DO j = 1, 4
    a(i + j) = a(i + j) + b(i)*c(j)
  ENDDO
ENDDO
|} );
      ( "gather_shift",
        {|
DO i = 1, n
  b(i) = a(i + 5)
ENDDO
|} );
      ( "imperfect_pair",
        {|
DO i = 1, n
  DO j = 1, n
    t(i, j) = a(i + j, j)
  ENDDO
  a(i, 2*i) = c(i)
ENDDO
|} );
      ( "coupled_rotate",
        {|
DO i = 1, n
  DO j = 1, n
    a(i + j, i - j) = a(i, j)
  ENDDO
ENDDO
|} );
      ( "coupled_symm",
        {|
DO i = 1, n
  DO j = 1, n
    a(i, j) = a(j, i) + 1.0
  ENDDO
ENDDO
|} );
      ( "coupled_shear",
        {|
DO i = 1, n
  DO j = 1, n
    a(2*i + j, j) = a(i, i + j)
  ENDDO
ENDDO
|} );
      ( "coupled_fold1d",
        {|
DO i = 1, 2*n
  a(i) = a(2*n + 1 - i) + 1.0
ENDDO
|} );
      ( "coupled_doubling",
        {|
DO i = 1, n
  DO j = 1, n
    a(2*i, j) = a(i, 2*j)
  ENDDO
ENDDO
|} );
      ( "coupled_antidiag",
        {|
DO i = 1, n
  DO j = 1, n
    a(i + j) = a(i + j) + b(i, j)
  ENDDO
ENDDO
|} );
      ( "uniform_shift2d",
        {|
DO i = 3, n
  DO j = 1, n
    a(i, j) = a(i - 3, j) + a(i - 2, j)
  ENDDO
ENDDO
|} );
      ( "lu_like",
        {|
DO k = 1, n
  DO i = k + 1, n
    a(i, k) = a(i, k)/a(k, k)
  ENDDO
ENDDO
|} );
    ]

let all =
  [
    ("example1", example1);
    ("fig2", fig2);
    ("fig2_param", fig2_param);
    ("example2", example2);
    ("example3", example3);
    ("cholesky", cholesky);
  ]
  @ corpus
