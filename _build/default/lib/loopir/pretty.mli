(** Printing programs back in the mini-Fortran surface syntax (round-trips
    through {!Parser.parse}). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string
