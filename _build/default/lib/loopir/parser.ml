open Ast

exception Error of string * int

type state = { mutable toks : (Lexer.token * int) list }

let peek st =
  match st.toks with [] -> (Lexer.EOF, 0) | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  let t, line = peek st in
  if t = tok then advance st
  else
    raise
      (Error
         (Printf.sprintf "expected %s but found %s" what (Lexer.pp_token t), line))

let rec parse_expr_prec st = parse_additive st

and parse_additive st =
  let lhs = parse_term st in
  let rec go lhs =
    match peek st with
    | Lexer.PLUS, _ ->
        advance st;
        go (Bin (Add, lhs, parse_term st))
    | Lexer.MINUS, _ ->
        advance st;
        go (Bin (Sub, lhs, parse_term st))
    | _ -> lhs
  in
  go lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec go lhs =
    match peek st with
    | Lexer.STAR, _ ->
        advance st;
        go (Bin (Mul, lhs, parse_factor st))
    | Lexer.SLASH, _ ->
        advance st;
        go (Bin (Div, lhs, parse_factor st))
    | _ -> lhs
  in
  go lhs

and parse_factor st =
  let base = parse_atom st in
  match peek st with
  | Lexer.POW, line -> (
      advance st;
      match peek st with
      | Lexer.INT k, _ ->
          advance st;
          Pow (base, k)
      | t, _ ->
          raise
            (Error
               ( Printf.sprintf "expected integer exponent, found %s"
                   (Lexer.pp_token t),
                 line )))
  | _ -> base

and parse_args st =
  let rec go acc =
    let e = parse_expr_prec st in
    match peek st with
    | Lexer.COMMA, _ ->
        advance st;
        go (e :: acc)
    | _ -> List.rev (e :: acc)
  in
  let args = go [] in
  expect st Lexer.RPAREN ")";
  args

and parse_atom st =
  let t, line = peek st in
  match t with
  | Lexer.INT k ->
      advance st;
      Int k
  | Lexer.REAL r ->
      advance st;
      Real r
  | Lexer.MINUS ->
      advance st;
      Un (Neg, parse_atom st)
  | Lexer.PLUS ->
      advance st;
      parse_atom st
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr_prec st in
      expect st Lexer.RPAREN ")";
      e
  | Lexer.KMIN ->
      advance st;
      expect st Lexer.LPAREN "(";
      Min (parse_args st)
  | Lexer.KMAX ->
      advance st;
      expect st Lexer.LPAREN "(";
      Max (parse_args st)
  | Lexer.KSQRT ->
      advance st;
      expect st Lexer.LPAREN "(";
      let args = parse_args st in
      (match args with
      | [ e ] -> Un (Sqrt, e)
      | _ -> raise (Error ("SQRT takes one argument", line)))
  | Lexer.KABS ->
      advance st;
      expect st Lexer.LPAREN "(";
      let args = parse_args st in
      (match args with
      | [ e ] -> Un (Abs, e)
      | _ -> raise (Error ("ABS takes one argument", line)))
  | Lexer.KMOD ->
      advance st;
      expect st Lexer.LPAREN "(";
      let args = parse_args st in
      (match args with
      | [ a; b ] -> Mod (a, b)
      | _ -> raise (Error ("MOD takes two arguments", line)))
  | Lexer.IDENT name -> (
      advance st;
      match peek st with
      | Lexer.LPAREN, _ ->
          advance st;
          Ref (name, parse_args st)
      | _ -> Var name)
  | t ->
      raise
        (Error
           (Printf.sprintf "unexpected token %s in expression" (Lexer.pp_token t), line))

let rec parse_stmts st acc =
  match peek st with
  | Lexer.KDO, _ ->
      advance st;
      let index =
        match peek st with
        | Lexer.IDENT v, _ ->
            advance st;
            v
        | t, line ->
            raise
              (Error
                 ( Printf.sprintf "expected loop index, found %s"
                     (Lexer.pp_token t),
                   line ))
      in
      expect st Lexer.EQUALS "=";
      let lo = parse_expr_prec st in
      expect st Lexer.COMMA ",";
      let hi = parse_expr_prec st in
      let step =
        match peek st with
        | Lexer.COMMA, line -> (
            advance st;
            let neg =
              match peek st with
              | Lexer.MINUS, _ ->
                  advance st;
                  true
              | _ -> false
            in
            match peek st with
            | Lexer.INT k, _ ->
                advance st;
                if k = 0 then raise (Error ("zero loop step", line));
                if neg then -k else k
            | t, line ->
                raise
                  (Error
                     ( Printf.sprintf "expected integer step, found %s"
                         (Lexer.pp_token t),
                       line )))
        | _ -> 1
      in
      let body = parse_stmts st [] in
      expect st Lexer.KENDDO "ENDDO";
      parse_stmts st (Loop { index; lo; hi; step; body } :: acc)
  | Lexer.IDENT name, line ->
      advance st;
      (match peek st with
      | Lexer.LPAREN, _ ->
          advance st;
          let subs = parse_args st in
          expect st Lexer.EQUALS "=";
          let rhs = parse_expr_prec st in
          parse_stmts st (Assign ((name, subs), rhs) :: acc)
      | t, _ ->
          raise
            (Error
               ( Printf.sprintf
                   "expected '(' after identifier %s (only array assignments \
                    are statements), found %s"
                   name (Lexer.pp_token t),
                 line )))
  | _ -> List.rev acc

let parse ~name src =
  let st = { toks = Lexer.tokenize src } in
  let body = parse_stmts st [] in
  (match peek st with
  | Lexer.EOF, _ -> ()
  | t, line ->
      raise
        (Error (Printf.sprintf "trailing input: %s" (Lexer.pp_token t), line)));
  Ast.program ~name body

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expr_prec st in
  (match peek st with
  | Lexer.EOF, _ -> ()
  | t, line ->
      raise
        (Error (Printf.sprintf "trailing input: %s" (Lexer.pp_token t), line)));
  e
