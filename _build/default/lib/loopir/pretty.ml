open Ast

(* Precedence levels: 0 additive, 1 multiplicative, 2 power/atom. *)
let rec pp_prec lvl ppf e =
  let paren needed body =
    if needed then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Int k ->
      if k < 0 then paren (lvl > 1) (fun ppf -> Format.fprintf ppf "%d" k)
      else Format.fprintf ppf "%d" k
  | Real r ->
      (* Decimal notation keeps literals lexable (no bare exponent). *)
      let s = Printf.sprintf "%.12f" r in
      let s =
        let n = String.length s in
        let k = ref n in
        while !k > 1 && s.[!k - 1] = '0' && s.[!k - 2] <> '.' do
          decr k
        done;
        String.sub s 0 !k
      in
      Format.pp_print_string ppf s
  | Var v -> Format.pp_print_string ppf v
  | Ref (a, subs) ->
      Format.fprintf ppf "%s(%a)" a
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (pp_prec 0))
        subs
  | Bin (Add, a, b) ->
      paren (lvl > 0) (fun ppf ->
          Format.fprintf ppf "%a + %a" (pp_prec 0) a (pp_prec 1) b)
  | Bin (Sub, a, b) ->
      paren (lvl > 0) (fun ppf ->
          Format.fprintf ppf "%a - %a" (pp_prec 0) a (pp_prec 1) b)
  | Bin (Mul, a, b) ->
      paren (lvl > 1) (fun ppf ->
          Format.fprintf ppf "%a*%a" (pp_prec 1) a (pp_prec 2) b)
  | Bin (Div, a, b) ->
      paren (lvl > 1) (fun ppf ->
          Format.fprintf ppf "%a/%a" (pp_prec 1) a (pp_prec 2) b)
  | Un (Neg, a) ->
      paren (lvl > 0) (fun ppf -> Format.fprintf ppf "-%a" (pp_prec 2) a)
  | Un (Sqrt, a) -> Format.fprintf ppf "SQRT(%a)" (pp_prec 0) a
  | Un (Abs, a) -> Format.fprintf ppf "ABS(%a)" (pp_prec 0) a
  | Min es ->
      Format.fprintf ppf "MIN(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (pp_prec 0))
        es
  | Max es ->
      Format.fprintf ppf "MAX(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (pp_prec 0))
        es
  | Mod (a, b) ->
      Format.fprintf ppf "MOD(%a, %a)" (pp_prec 0) a (pp_prec 0) b
  | Pow (a, k) -> Format.fprintf ppf "%a**%d" (pp_prec 2) a k

let pp_expr ppf e = pp_prec 0 ppf e

let rec pp_stmt_indent indent ppf = function
  | Assign ((a, subs), rhs) ->
      Format.fprintf ppf "%s%s(%a) = %a" indent a
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_expr)
        subs pp_expr rhs
  | Loop l ->
      Format.fprintf ppf "%sDO %s = %a, %a%s@," indent l.index pp_expr l.lo
        pp_expr l.hi
        (if l.step = 1 then "" else Printf.sprintf ", %d" l.step);
      List.iter
        (fun s -> Format.fprintf ppf "%a@," (pp_stmt_indent (indent ^ "  ")) s)
        l.body;
      Format.fprintf ppf "%sENDDO" indent

let pp_stmt ppf s = Format.fprintf ppf "@[<v>%a@]" (pp_stmt_indent "") s

let pp_program ppf p =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf "@,";
      pp_stmt ppf s)
    p.body;
  Format.fprintf ppf "@]"

let expr_to_string e = Format.asprintf "%a" pp_expr e
let program_to_string p = Format.asprintf "%a@." pp_program p
