(** Statement table: flattening a (normalized) program into per-statement
    records carrying the enclosing loop context and the statement position
    path — the raw material for the unified statement index vectors of §3.3
    of the paper. *)

type loop_ctx = { index : string; lo : Ast.expr; hi : Ast.expr }
(** One enclosing loop (unit stride assumed; run {!Normalize.unit_strides}
    first). *)

type ref_kind = Read | Write

type stmt_info = {
  id : int;  (** textual order, 0-based *)
  path : int list;
      (** statement position numbers [s0; s1; …; sl], 1-based: the position
          of each enclosing construct within its parent body, ending with
          the statement's own position *)
  loops : loop_ctx list;  (** outermost first *)
  lhs : string * Ast.expr list;
  rhs : Ast.expr;
}

val stmts_of : Ast.program -> stmt_info list

val refs_of : stmt_info -> (string * Ast.expr list * ref_kind) list
(** All array references of the statement: the written left-hand side plus
    every read on the right-hand side (subscript expressions of reads are
    scanned recursively too). *)

val arrays_of : Ast.program -> (string * int) list
(** Array names with their rank, sorted; raises [Failure] on inconsistent
    ranks. *)

val depth : stmt_info -> int
val max_depth : Ast.program -> int

val loop_vars : stmt_info -> string list
(** Index names of the enclosing loops, outermost first. *)
