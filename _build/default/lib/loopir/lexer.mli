(** Hand-written lexer for the mini-Fortran surface syntax.

    Keywords are case-insensitive; identifiers are case-normalized to lower
    case.  A line whose first non-blank character is [!] is a comment. *)

type token =
  | INT of int
  | REAL of float
  | IDENT of string
  | KDO
  | KENDDO
  | KMIN
  | KMAX
  | KMOD
  | KSQRT
  | KABS
  | LPAREN
  | RPAREN
  | COMMA
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | POW  (** [**] *)
  | EOF

exception Error of string * int
(** Message and line number. *)

val tokenize : string -> (token * int) list
(** [tokenize src] is the token stream with line numbers. *)

val pp_token : token -> string
