(** Loop normalization to the paper's program model (§2): every loop gets a
    unit positive stride by the change of variable [v = lo + step·v'] (or
    [v = lo - |step|·v'] for downward loops), substituted through bounds,
    subscripts and right-hand sides. *)

val unit_strides : Ast.program -> Ast.program

val loop_count_bound : Ast.loop -> Ast.expr
(** The normalized upper bound [⌊(hi - lo)/step⌋] of the renamed 0-based
    index (simplified for |step| = 1). *)
