type binop = Add | Sub | Mul | Div
type unop = Neg | Sqrt | Abs

type expr =
  | Int of int
  | Real of float
  | Var of string
  | Ref of string * expr list
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Min of expr list
  | Max of expr list
  | Mod of expr * expr
  | Pow of expr * int

type stmt = Assign of (string * expr list) * expr | Loop of loop

and loop = {
  index : string;
  lo : expr;
  hi : expr;
  step : int;
  body : stmt list;
}

type program = { name : string; params : string list; body : stmt list }

module SSet = Set.Make (String)

let rec expr_vars acc = function
  | Int _ | Real _ -> acc
  | Var v -> SSet.add v acc
  | Ref (_, subs) -> List.fold_left expr_vars acc subs
  | Bin (_, a, b) -> expr_vars (expr_vars acc a) b
  | Un (_, a) | Pow (a, _) -> expr_vars acc a
  | Min es | Max es -> List.fold_left expr_vars acc es
  | Mod (a, b) -> expr_vars (expr_vars acc a) b

let free_params body =
  let rec go bound free = function
    | Assign ((_, subs), rhs) ->
        let used = List.fold_left expr_vars (expr_vars SSet.empty rhs) subs in
        SSet.union free (SSet.diff used bound)
    | Loop l ->
        let used = expr_vars (expr_vars SSet.empty l.lo) l.hi in
        let free = SSet.union free (SSet.diff used bound) in
        let bound = SSet.add l.index bound in
        List.fold_left (go bound) free l.body
  in
  SSet.elements (List.fold_left (go SSet.empty) SSet.empty body)

let program ~name body = { name; params = free_params body; body }

let rec map_expr f e =
  let e =
    match e with
    | Int _ | Real _ | Var _ -> e
    | Ref (a, subs) -> Ref (a, List.map (map_expr f) subs)
    | Bin (op, a, b) -> Bin (op, map_expr f a, map_expr f b)
    | Un (op, a) -> Un (op, map_expr f a)
    | Min es -> Min (List.map (map_expr f) es)
    | Max es -> Max (List.map (map_expr f) es)
    | Mod (a, b) -> Mod (map_expr f a, map_expr f b)
    | Pow (a, k) -> Pow (map_expr f a, k)
  in
  f e

let rec map_expr_stmt f = function
  | Assign ((a, subs), rhs) ->
      Assign ((a, List.map (map_expr f) subs), map_expr f rhs)
  | Loop l ->
      Loop
        {
          l with
          lo = map_expr f l.lo;
          hi = map_expr f l.hi;
          body = List.map (map_expr_stmt f) l.body;
        }

let subst_var v r e =
  map_expr (function Var v' when v' = v -> r | e -> e) e

let expr_equal a b = a = b
