open Ast

exception Not_integer of string

let rec eval env = function
  | Int k -> k
  | Var v -> env v
  | Bin (Add, a, b) -> Numeric.Safeint.add (eval env a) (eval env b)
  | Bin (Sub, a, b) -> Numeric.Safeint.sub (eval env a) (eval env b)
  | Bin (Mul, a, b) -> Numeric.Safeint.mul (eval env a) (eval env b)
  | Bin (Div, a, b) -> Numeric.Safeint.fdiv (eval env a) (eval env b)
  | Un (Neg, a) -> Numeric.Safeint.neg (eval env a)
  | Un (Abs, a) -> Numeric.Safeint.abs (eval env a)
  | Min es -> (
      match List.map (eval env) es with
      | [] -> raise (Not_integer "empty MIN")
      | v :: vs -> List.fold_left min v vs)
  | Max es -> (
      match List.map (eval env) es with
      | [] -> raise (Not_integer "empty MAX")
      | v :: vs -> List.fold_left max v vs)
  | Mod (a, b) -> Numeric.Safeint.emod (eval env a) (eval env b)
  | Pow (a, k) -> Numeric.Safeint.pow (eval env a) k
  | (Real _ | Ref _ | Un (Sqrt, _)) as e ->
      raise (Not_integer (Pretty.expr_to_string e))
