module S = Numeric.Safeint

exception Unsupported of string

type t = { terms : (string * int) list; const : int }

let canon terms =
  List.sort (fun (a, _) (b, _) -> compare a b) terms
  |> List.fold_left
       (fun acc (v, c) ->
         match acc with
         | (v', c') :: rest when v' = v -> (v, S.add c c') :: rest
         | acc -> (v, c) :: acc)
       []
  |> List.rev
  |> List.filter (fun (_, c) -> c <> 0)

let const c = { terms = []; const = c }
let var v = { terms = [ (v, 1) ]; const = 0 }

let add a b =
  { terms = canon (a.terms @ b.terms); const = S.add a.const b.const }

let scale k a =
  if k = 0 then const 0
  else
    {
      terms = List.map (fun (v, c) -> (v, S.mul k c)) a.terms;
      const = S.mul k a.const;
    }

let neg a = scale (-1) a
let sub a b = add a (neg b)
let coeff a v = try List.assoc v a.terms with Not_found -> 0
let names a = List.map fst a.terms
let equal a b = a.const = b.const && a.terms = b.terms

let eval env a =
  List.fold_left
    (fun acc (v, c) -> S.add acc (S.mul c (env v)))
    a.const a.terms

let pp ppf a =
  let first = ref true in
  List.iter
    (fun (v, c) ->
      if !first then begin
        first := false;
        if c = 1 then Format.fprintf ppf "%s" v
        else if c = -1 then Format.fprintf ppf "-%s" v
        else Format.fprintf ppf "%d%s" c v
      end
      else if c > 0 then
        if c = 1 then Format.fprintf ppf " + %s" v
        else Format.fprintf ppf " + %d%s" c v
      else if c = -1 then Format.fprintf ppf " - %s" v
      else Format.fprintf ppf " - %d%s" (-c) v)
    a.terms;
  if !first then Format.fprintf ppf "%d" a.const
  else if a.const > 0 then Format.fprintf ppf " + %d" a.const
  else if a.const < 0 then Format.fprintf ppf " - %d" (-a.const)

let rec of_expr (e : Ast.expr) : t option =
  match e with
  | Ast.Int k -> Some (const k)
  | Ast.Var v -> Some (var v)
  | Ast.Un (Ast.Neg, a) -> Option.map neg (of_expr a)
  | Ast.Bin (Ast.Add, a, b) -> (
      match (of_expr a, of_expr b) with
      | Some x, Some y -> Some (add x y)
      | _ -> None)
  | Ast.Bin (Ast.Sub, a, b) -> (
      match (of_expr a, of_expr b) with
      | Some x, Some y -> Some (sub x y)
      | _ -> None)
  | Ast.Bin (Ast.Mul, a, b) -> (
      match (of_expr a, of_expr b) with
      | Some x, Some y when x.terms = [] -> Some (scale x.const y)
      | Some x, Some y when y.terms = [] -> Some (scale y.const x)
      | _ -> None)
  | Ast.Real _ | Ast.Ref _ | Ast.Bin (Ast.Div, _, _)
  | Ast.Un ((Ast.Sqrt | Ast.Abs), _)
  | Ast.Min _ | Ast.Max _ | Ast.Mod _ | Ast.Pow _ ->
      None

let of_expr_exn e =
  match of_expr e with
  | Some a -> a
  | None ->
      raise (Unsupported (Printf.sprintf "non-affine expression %s" (Pretty.expr_to_string e)))

type atom = { num : t; den : int }

type bound = Atom of atom | Max_of of atom list | Min_of of atom list

let atom_of_affine a = { num = a; den = 1 }

(* -⌊a/c⌋ = ⌊(-a + c - 1)/c⌋ *)
let atom_neg { num; den } = { num = add (neg num) (const (den - 1)); den }

(* ⌊a⌋ + ⌊b/c⌋ = ⌊(c·a + b)/c⌋ when the first denominator is 1. *)
let atom_add x y =
  if x.den = 1 then { num = add (scale y.den x.num) y.num; den = y.den }
  else if y.den = 1 then { num = add (scale x.den y.num) x.num; den = x.den }
  else raise (Unsupported "sum of two floor divisions")

let atom_div { num; den } c =
  if c <= 0 then raise (Unsupported "division by non-positive constant");
  { num; den = S.mul den c }

let atom_scale k a =
  if a.den = 1 then { num = scale k a.num; den = 1 }
  else if k = 1 then a
  else if k = -1 then atom_neg a
  else raise (Unsupported "scaling a floor division")

let bound_map f = function
  | Atom a -> Atom (f a)
  | Max_of l -> Max_of (List.map f l)
  | Min_of l -> Min_of (List.map f l)

let bound_neg = function
  | Atom a -> Atom (atom_neg a)
  | Max_of l -> Min_of (List.map atom_neg l)
  | Min_of l -> Max_of (List.map atom_neg l)

let bound_add x y =
  match (x, y) with
  | Atom a, b | b, Atom a -> bound_map (fun c -> atom_add a c) b
  | Max_of xs, Max_of ys ->
      Max_of
        (List.concat_map (fun a -> List.map (fun b -> atom_add a b) ys) xs)
  | Min_of xs, Min_of ys ->
      Min_of
        (List.concat_map (fun a -> List.map (fun b -> atom_add a b) ys) xs)
  | _ -> raise (Unsupported "MAX + MIN in a bound")

let rec bound_of_expr (e : Ast.expr) : bound =
  match of_expr e with
  | Some a -> Atom (atom_of_affine a)
  | None -> (
      match e with
      | Ast.Max es ->
          Max_of
            (List.concat_map
               (fun e ->
                 match bound_of_expr e with
                 | Atom a -> [ a ]
                 | Max_of l -> l
                 | Min_of _ -> raise (Unsupported "MIN under MAX"))
               es)
      | Ast.Min es ->
          Min_of
            (List.concat_map
               (fun e ->
                 match bound_of_expr e with
                 | Atom a -> [ a ]
                 | Min_of l -> l
                 | Max_of _ -> raise (Unsupported "MAX under MIN"))
               es)
      | Ast.Un (Ast.Neg, a) -> bound_neg (bound_of_expr a)
      | Ast.Bin (Ast.Add, a, b) -> bound_add (bound_of_expr a) (bound_of_expr b)
      | Ast.Bin (Ast.Sub, a, b) ->
          bound_add (bound_of_expr a) (bound_neg (bound_of_expr b))
      | Ast.Bin (Ast.Div, a, Ast.Int c) when c > 0 ->
          bound_map (fun at -> atom_div at c) (bound_of_expr a)
      | Ast.Bin (Ast.Mul, Ast.Int k, a) | Ast.Bin (Ast.Mul, a, Ast.Int k) ->
          let b = bound_of_expr a in
          if k >= 0 then bound_map (atom_scale k) b
          else bound_map (atom_scale (-k)) (bound_neg b)
      | e ->
          raise
            (Unsupported
               (Printf.sprintf "loop bound %s" (Pretty.expr_to_string e))))

let lower_atoms e =
  match bound_of_expr e with
  | Atom a -> [ a ]
  | Max_of l -> l
  | Min_of _ ->
      raise (Unsupported "MIN as a lower bound (non-convex)")

let upper_atoms e =
  match bound_of_expr e with
  | Atom a -> [ a ]
  | Min_of l -> l
  | Max_of _ ->
      raise (Unsupported "MAX as an upper bound (non-convex)")
