module Ivec = Linalg.Ivec

type t = Pdm.t

let normalize_direction d =
  let g = Ivec.gcd d in
  if g <= 1 then d else Array.map (fun c -> c / g) d

let of_distances ~dim distances =
  Pdm.of_distances ~dim (List.map normalize_direction distances)

let of_simple (a : Depend.Solve.simple) ~params =
  let ds = Depend.Distance.distances a.Depend.Solve.rd ~params in
  of_distances ~dim:(Array.length a.Depend.Solve.iters) ds

let schedule t ~stmt points =
  Runtime.Sched.of_task_groups ~label:"PL-cosets" ~stmt (Pdm.cosets t points)
