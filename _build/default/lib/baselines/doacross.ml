type result = { makespan : float; busy : float }

let pipeline (tr : Depend.Trace.t) ~threads ~w_iter ~delay_factor =
  let threads = max threads 1 in
  (* Stage sizes: instances per outermost index, in order. *)
  let sizes = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun (i : Depend.Trace.instance) ->
      let key =
        if Array.length i.Depend.Trace.iter > 0 then i.Depend.Trace.iter.(0)
        else 0
      in
      if not (Hashtbl.mem sizes key) then begin
        Hashtbl.add sizes key 0;
        order := key :: !order
      end;
      Hashtbl.replace sizes key (1 + Hashtbl.find sizes key))
    tr.Depend.Trace.instances;
  let stages =
    List.rev_map (fun k -> float_of_int (Hashtbl.find sizes k) *. w_iter) !order
  in
  let proc_free = Array.make threads 0.0 in
  let makespan = ref 0.0 in
  let prev_start = ref neg_infinity in
  let prev_work = ref 0.0 in
  List.iteri
    (fun k work ->
      let p = k mod threads in
      let earliest =
        if k = 0 then 0.0 else !prev_start +. (delay_factor *. !prev_work)
      in
      let start = Float.max proc_free.(p) earliest in
      let stop = start +. work in
      proc_free.(p) <- stop;
      prev_start := start;
      prev_work := work;
      if stop > !makespan then makespan := stop)
    stages;
  {
    makespan = !makespan;
    busy = List.fold_left ( +. ) 0.0 stages;
  }

let simulate (tr : Depend.Trace.t) ~threads ~w_iter ~sync =
  let n = Array.length tr.Depend.Trace.instances in
  let threads = max threads 1 in
  (* Processor of an instance: round-robin on the outermost loop index so a
     whole outer iteration stays on one processor, as in DOACROSS. *)
  let proc_of k =
    let inst = tr.Depend.Trace.instances.(k) in
    let key =
      if Array.length inst.Depend.Trace.iter > 0 then
        inst.Depend.Trace.iter.(0)
      else inst.Depend.Trace.inst
    in
    ((key mod threads) + threads) mod threads
  in
  (* Predecessor lists. *)
  let preds = Array.make n [] in
  Depend.Trace.iter_edges tr (fun src dst -> preds.(dst) <- src :: preds.(dst));
  let finish = Array.make n 0.0 in
  let proc_free = Array.make threads 0.0 in
  let makespan = ref 0.0 in
  (* Program order = topological order; same-processor instances execute in
     program order. *)
  for k = 0 to n - 1 do
    let p = proc_of k in
    let ready =
      List.fold_left
        (fun acc s ->
          let t = finish.(s) +. if proc_of s = p then 0.0 else sync in
          Float.max acc t)
        proc_free.(p) preds.(k)
    in
    let stop = ready +. w_iter in
    finish.(k) <- stop;
    proc_free.(p) <- stop;
    if stop > !makespan then makespan := stop
  done;
  { makespan = !makespan; busy = float_of_int n *. w_iter }
