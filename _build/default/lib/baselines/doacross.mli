(** DOACROSS execution of non-uniform loops (Tzen & Ni 1993 [23], Chen &
    Yew 1996 [6]): outer-loop iterations are started in order on the
    available processors and P/V synchronization enforces every
    cross-iteration dependence.

    Modeled exactly on the concrete instance dependence graph: instance
    start = max(processor available, predecessors' finish + sync delay).
    The makespan feeds the Figure-3 panel for Example 3. *)

type result = {
  makespan : float;  (** simulated time *)
  busy : float;  (** total work executed (for utilization) *)
}

val simulate :
  Depend.Trace.t ->
  threads:int ->
  w_iter:float ->
  sync:float ->
  result
(** Exact-graph variant: instance start = max(processor free, predecessor
    finish + sync).  This is an optimistic lower bound — real DOACROSS
    implementations synchronize on conservative BDV delays. *)

val pipeline :
  Depend.Trace.t ->
  threads:int ->
  w_iter:float ->
  delay_factor:float ->
  result
(** Chen & Yew-style model: each outermost-loop iteration is a sequential
    stage on one processor (round-robin); stage [k] may start only
    [delay_factor × work(k-1)] after stage [k-1] starts (the P/V delay of
    the uniformized dependence). *)
