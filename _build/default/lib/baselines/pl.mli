(** Partitioning & labeling by unimodular transformation (D'Hollander 1992
    [9]), applied to non-uniform loops through direction-based
    uniformization: each distance vector is replaced by its gcd-normalized
    direction, so the covering lattice is coarser than the PDM lattice
    (fewer, longer coset chains — the paper's Figure 3 shows PL below PDM
    on Example 1). *)

type t = Pdm.t

val of_distances : dim:int -> Linalg.Ivec.t list -> t
(** PDM machinery over the normalized directions. *)

val of_simple : Depend.Solve.simple -> params:int array -> t
val schedule : t -> stmt:int -> Linalg.Ivec.t list -> Runtime.Sched.t
