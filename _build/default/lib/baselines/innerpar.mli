(** Inner-loop-only parallelization (the POWER-test style baseline [25] of
    Figure 3, panel 3): the outermost loop stays sequential and each of its
    iterations becomes one DOALL phase over the enclosed instances. *)

val schedule : Depend.Trace.t -> Runtime.Sched.t
(** One DOALL phase per distinct outermost index value, in order. *)
