module Ivec = Linalg.Ivec

type t = { dim : int; extents : int option array }

let of_distances ~dim distances =
  let extents = Array.make dim None in
  List.iter
    (fun d ->
      if Array.length d <> dim then invalid_arg "Mindist.of_distances";
      Array.iteri
        (fun k c ->
          if c <> 0 then
            let c = abs c in
            match extents.(k) with
            | None -> extents.(k) <- Some c
            | Some e -> if c < e then extents.(k) <- Some c)
        d)
    distances;
  { dim; extents }

let of_simple (a : Depend.Solve.simple) ~params =
  let ds = Depend.Distance.distances a.Depend.Solve.rd ~params in
  of_distances ~dim:(Array.length a.Depend.Solve.iters) ds

let tile_parallelism t =
  Array.fold_left
    (fun acc e ->
      match (acc, e) with
      | Some p, Some e -> Some (p * e)
      | _, None | None, _ -> None)
    (Some 1) t.extents

(* Tile origin of a point: component k floored to a multiple of the extent
   (unbounded dimensions collapse to 0). *)
let tile_of t x =
  Array.init t.dim (fun k ->
      match t.extents.(k) with
      | None -> 0
      | Some e -> Numeric.Safeint.fdiv x.(k) e)

let schedule t ~stmt points =
  let tiles = Hashtbl.create 256 in
  List.iter
    (fun x ->
      let key = tile_of t x in
      let cur = try Hashtbl.find tiles key with Not_found -> [] in
      Hashtbl.replace tiles key (x :: cur))
    points;
  (* Tiles must execute in lexicographic order of their origin: every
     dependence crosses tiles forward in that order (its first non-zero
     component is at least the tile extent). *)
  let keys =
    Hashtbl.fold (fun key _ acc -> key :: acc) tiles []
    |> List.sort Ivec.compare_lex
  in
  let phases =
    List.map
      (fun key ->
        Runtime.Sched.Doall
          {
            label = Printf.sprintf "tile%s" (Ivec.to_string key);
            instances =
              Array.of_list
                (List.rev_map
                   (fun iter -> { Runtime.Sched.stmt; iter })
                   (Hashtbl.find tiles key));
          })
      keys
  in
  Runtime.Sched.of_phases phases
