let schedule (tr : Depend.Trace.t) =
  (* Group instances by (outermost index, statement), in first-occurrence
     order: the outer loop stays sequential, each statement's inner
     iterations form one DOALL.  Legality against the exact dependence
     graph is checked by Sched.check_legal in the callers/tests. *)
  let groups = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun (i : Depend.Trace.instance) ->
      let outer =
        if Array.length i.Depend.Trace.iter > 0 then i.Depend.Trace.iter.(0)
        else 0
      in
      let key = (outer, i.Depend.Trace.stmt) in
      if not (Hashtbl.mem groups key) then begin
        Hashtbl.add groups key [];
        order := key :: !order
      end;
      Hashtbl.replace groups key (i :: Hashtbl.find groups key))
    tr.Depend.Trace.instances;
  let phases =
    List.rev_map
      (fun ((outer, stmt) as key) ->
        Runtime.Sched.Doall
          {
            label = Printf.sprintf "outer-%d-s%d" outer stmt;
            instances =
              Array.of_list
                (List.rev_map
                   (fun (i : Depend.Trace.instance) ->
                     {
                       Runtime.Sched.stmt = i.Depend.Trace.stmt;
                       iter = i.Depend.Trace.iter;
                     })
                   (Hashtbl.find groups key));
          })
      !order
  in
  Runtime.Sched.of_phases phases
