module Iset = Presburger.Iset
module Rel = Presburger.Rel
module Lex = Presburger.Lex
module L = Presburger.Linexpr
module C = Presburger.Constr
module P = Presburger.Poly
module Enum = Presburger.Enum
module Solve = Depend.Solve
module Affine = Loopir.Affine
module Prog = Loopir.Prog

type t = {
  head_flow : Presburger.Iset.t;
  head_rest : Presburger.Iset.t;
  mid : Presburger.Iset.t;
  tail_anti : Presburger.Iset.t;
  tail_rest : Presburger.Iset.t;
}

(* The flow orientation of the coupled pair: write instance i before read
   instance j (i ≺ j with i·A + a = j·B + b). *)
let flow_rel (a : Solve.simple) =
  let stmt = a.Solve.stmt in
  let iters = a.Solve.iters in
  let m = Array.length iters in
  let params = a.Solve.params in
  let np = Array.length params in
  let n = (2 * m) + np in
  match Prog.refs_of stmt with
  | [ (_, subs_w, Prog.Write); (_, subs_r, Prog.Read) ] ->
      let index_of base v =
        let rec find k =
          if k = m then
            let rec findp k =
              if k = np then raise Not_found
              else if params.(k) = v then (2 * m) + k
              else findp (k + 1)
            in
            findp 0
          else if iters.(k) = v then base + k
          else find (k + 1)
        in
        find 0
      in
      let lin base e =
        Depend.Space.linexpr_of_affine ~n ~index_of:(index_of base)
          (Affine.of_expr_exn e)
      in
      let eqs =
        List.map2 (fun ew er -> C.Eq (L.sub (lin 0 ew) (lin m er))) subs_w subs_r
      in
      let dom base =
        List.concat
          (List.mapi
             (fun k ctx ->
               Depend.Space.bound_constraints ~n ~index_of:(index_of base)
                 ~var:(base + k) ctx)
             stmt.Prog.loops)
      in
      let base = P.make n (eqs @ dom 0 @ dom m) in
      let lex = Lex.lt ~n_total:n ~fst_off:0 ~snd_off:m ~len:m in
      let out = Array.map (fun v -> v ^ "'") iters in
      Rel.make ~inn:iters ~out ~params (Presburger.Dnf.inter [ base ] lex)
  | _ -> invalid_arg "Unique: single coupled write/read pair required"

let partition (a : Solve.simple) ~three =
  let flow = flow_rel a in
  let iters = a.Solve.iters in
  let params = a.Solve.params in
  let rebase s = Iset.make ~iters ~params (Iset.polys s) in
  let p1 = three.Core.Threeset.p1
  and p2 = three.Core.Threeset.p2
  and p3 = three.Core.Threeset.p3 in
  let head_flow = Iset.simplify (Iset.inter p1 (rebase (Rel.dom flow))) in
  let head_rest = Iset.simplify (Iset.diff p1 head_flow) in
  (* Anti targets: iterations that are written after being read — P3 points
     reached by a non-flow arrow, i.e. outside ran(flow). *)
  let tail_flow = Iset.simplify (Iset.inter p3 (rebase (Rel.ran flow))) in
  let tail_anti = Iset.simplify (Iset.diff p3 tail_flow) in
  {
    head_flow;
    head_rest;
    mid = p2;
    tail_anti;
    tail_rest = tail_flow;
  }

let schedule t ~stmt ~params =
  let doall label set =
    Runtime.Sched.Doall
      {
        label;
        instances =
          Array.of_list
            (List.map
               (fun iter -> { Runtime.Sched.stmt; iter })
               (Enum.points (Iset.bind_params set params)));
      }
  in
  let mid_task =
    Runtime.Sched.Tasks
      {
        label = "unique-3-sequential";
        tasks =
          [|
            Array.of_list
              (List.map
                 (fun iter -> { Runtime.Sched.stmt; iter })
                 (Enum.points (Iset.bind_params t.mid params)));
          |];
      }
  in
  Runtime.Sched.of_phases
    [
      doall "unique-1-head-flow" t.head_flow;
      doall "unique-2-head-rest" t.head_rest;
      mid_task;
      doall "unique-4-tail-anti" t.tail_anti;
      doall "unique-5-tail-rest" t.tail_rest;
    ]

let n_regions t ~params =
  List.length
    (List.filter
       (fun s -> Enum.points (Iset.bind_params s params) <> [])
       [ t.head_flow; t.head_rest; t.mid; t.tail_anti; t.tail_rest ])
