lib/baselines/pl.ml: Array Depend Linalg List Pdm Runtime
