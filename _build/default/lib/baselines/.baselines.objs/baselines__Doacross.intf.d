lib/baselines/doacross.mli: Depend
