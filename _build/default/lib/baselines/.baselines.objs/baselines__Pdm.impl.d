lib/baselines/pdm.ml: Array Depend Hashtbl Linalg List Numeric Runtime
