lib/baselines/pdm.mli: Depend Linalg Runtime
