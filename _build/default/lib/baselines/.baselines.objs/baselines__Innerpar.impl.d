lib/baselines/innerpar.ml: Array Depend Hashtbl List Printf Runtime
