lib/baselines/innerpar.mli: Depend Runtime
