lib/baselines/mindist.ml: Array Depend Hashtbl Linalg List Numeric Printf Runtime
