lib/baselines/pl.mli: Depend Linalg Pdm Runtime
