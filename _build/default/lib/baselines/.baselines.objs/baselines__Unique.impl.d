lib/baselines/unique.ml: Array Core Depend List Loopir Presburger Runtime
