lib/baselines/unique.mli: Core Depend Presburger Runtime
