lib/baselines/doacross.ml: Array Depend Float Hashtbl List
