lib/baselines/mindist.mli: Depend Linalg Runtime
