(** Unique-set oriented partitioning (Ju & Chaudhary, 1997 [11]).

    The dependence convex hull is split by lexicographic order and by the
    flow/anti orientation of the coupled reference pair into head and tail
    unique sets; with the intermediate set this yields the five sequential
    regions the paper reports for Example 2 (the third — the intermediate
    set — is sequential, the other four are fully parallel).

    Legality follows from the three-set structure: [P1] and [P3] carry no
    internal dependences, so any split of them into successive phases is
    legal, and the intermediate set runs sequentially in lexicographic
    order. *)

type t = {
  head_flow : Presburger.Iset.t;  (** P1 sources of flow dependences *)
  head_rest : Presburger.Iset.t;  (** remaining P1 *)
  mid : Presburger.Iset.t;  (** intermediate set, executed sequentially *)
  tail_anti : Presburger.Iset.t;  (** P3 targets of anti dependences *)
  tail_rest : Presburger.Iset.t;  (** remaining P3 *)
}

val partition : Depend.Solve.simple -> three:Core.Threeset.t -> t

val schedule : t -> stmt:int -> params:int array -> Runtime.Sched.t
(** Five phases in order: head-flow ∥, head-rest ∥, mid (one sequential
    task), tail-anti ∥, tail-rest ∥. *)

val n_regions : t -> params:int array -> int
(** Number of non-empty phases at the given parameters. *)
