module Hnf = Linalg.Hnf
module Ivec = Linalg.Ivec
module S = Numeric.Safeint

type t = {
  dim : int;
  basis : Hnf.basis;
  parallel_dims : bool array;
}

let of_distances ~dim distances =
  List.iter
    (fun d ->
      if Array.length d <> dim then invalid_arg "Pdm.of_distances: dimension")
    distances;
  let basis = Hnf.of_rows dim distances in
  let parallel_dims = Array.make dim true in
  List.iter
    (fun row ->
      Array.iteri (fun k c -> if c <> 0 then parallel_dims.(k) <- false) row)
    (Hnf.rows basis);
  { dim; basis; parallel_dims }

let of_simple (a : Depend.Solve.simple) ~params =
  let ds = Depend.Distance.distances a.Depend.Solve.rd ~params in
  of_distances ~dim:(Array.length a.Depend.Solve.iters) ds

let covers t d = Hnf.mem t.basis d

(* Canonical coset representative: reduce the point by each echelon row so
   its pivot-column entries land in [0, pivot). *)
let coset_key t x =
  let x = Array.copy x in
  let rows = t.basis.Hnf.mat in
  Array.iteri
    (fun i row ->
      let col = t.basis.Hnf.pivot_cols.(i) in
      let q = S.fdiv x.(col) row.(col) in
      if q <> 0 then
        for k = 0 to t.dim - 1 do
          x.(k) <- S.sub x.(k) (S.mul q row.(k))
        done)
    rows;
  x

let cosets t points =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let key = coset_key t p in
      let cur = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key (p :: cur))
    points;
  Hashtbl.fold (fun _ group acc -> List.sort Ivec.compare_lex group :: acc) tbl []
  |> List.sort (fun a b ->
         match (a, b) with
         | x :: _, y :: _ -> Ivec.compare_lex x y
         | _ -> 0)

let schedule t ~stmt points =
  Runtime.Sched.of_task_groups ~label:"PDM-cosets" ~stmt (cosets t points)

let degree_of_parallelism t points = List.length (cosets t points)
