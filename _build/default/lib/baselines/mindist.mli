(** Minimum-distance tiling (Punyamurtula, Chaudhary, Ju & Roy 1999 [19]),
    discussed in the paper's related work: adjacent iterations run in
    parallel as long as their distance is smaller than the minimum
    dependence distance in every dimension.

    Tile extent in dimension [k] is [min { |d_k| : d ∈ D, d_k ≠ 0 }]
    (unbounded when no distance uses the dimension).  Inside a tile no two
    iterations can differ by a dependence distance — every [d ∈ D] has some
    component at least as large as the tile extent — so tiles are internally
    fully parallel; tiles execute sequentially in lexicographic order of
    their origin.  The paper notes this yields a theoretical speedup of 4 on
    Example 2 (tile shape 1×4). *)

type t = {
  dim : int;
  extents : int option array;
      (** per-dimension tile extent; [None] = unbounded (dimension never
          constrained by a dependence) *)
}

val of_distances : dim:int -> Linalg.Ivec.t list -> t

val of_simple : Depend.Solve.simple -> params:int array -> t

val tile_parallelism : t -> int option
(** Product of the bounded extents — the intra-tile parallel degree (the
    paper's "4" for Example 2); [None] when some dimension is unbounded
    (whole-dimension parallelism). *)

val schedule : t -> stmt:int -> Linalg.Ivec.t list -> Runtime.Sched.t
(** One DOALL phase per tile, tiles in lexicographic order of origin. *)
