module C = Constr
module P = Poly

let inter a b =
  List.concat_map (fun pa -> List.map (fun pb -> P.inter pa pb) b) a

(* a \ b as the disjoint refinement: walking b's constraints c1..cm, emit
   a ∧ c1 ∧ … ∧ c_{i-1} ∧ ¬c_i. *)
let poly_diff a b =
  let pieces = ref [] in
  let prefix = ref a in
  List.iter
    (fun c ->
      List.iter
        (fun nc -> pieces := P.add_constr !prefix nc :: !pieces)
        (C.negate c);
      prefix := P.add_constr !prefix c)
    (P.constraints b);
  List.rev !pieces

let max_diff_disjuncts = 20_000

let diff a b =
  (* Pruning empty pieces at every step keeps the worklist from exploding
     exponentially on high-dimensional unions; a hard cap turns the
     remaining pathological cases into a loud {!Omega.Blowup}. *)
  List.fold_left
    (fun acc pb ->
      if List.length acc > max_diff_disjuncts then
        raise (Omega.Blowup "difference produced too many disjuncts");
      List.concat_map (fun pa -> poly_diff pa pb) acc
      |> List.filter_map P.normalize
      |> List.filter (fun p -> not (Omega.is_empty p)))
    (List.filter (fun p -> not (Omega.is_empty p)) a)
    b

let is_empty polys = List.for_all Omega.is_empty polys
let subset a b = is_empty (diff a b)
let equal a b = subset a b && subset b a

let project_out polys ks =
  List.concat_map (fun p -> Omega.project_out p ks) polys

(* Constraint c is redundant in p when p minus c still implies c. *)
let remove_redundant p =
  let implied rest c =
    List.for_all
      (fun nc -> Omega.is_empty (P.add_constr (P.make (P.dim p) rest) nc))
      (C.negate c)
  in
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest -> (
        match c with
        | C.Ge _ | C.Div (_, _) ->
            if implied (List.rev_append kept rest) c then go kept rest
            else go (c :: kept) rest
        | C.Eq _ -> go (c :: kept) rest)
  in
  { p with P.cons = go [] (P.constraints p) }

let poly_subset_poly a b =
  List.for_all
    (fun c ->
      List.for_all (fun nc -> Omega.is_empty (P.add_constr a nc)) (C.negate c))
    (P.constraints b)

let simplify ?(aggressive = false) polys =
  let polys =
    List.filter_map P.normalize polys
    |> List.filter (fun p -> not (Omega.is_empty p))
    |> List.map remove_redundant
    |> List.filter_map P.normalize
  in
  (* Drop syntactic duplicates cheaply. *)
  let polys =
    List.fold_left
      (fun acc p ->
        if List.exists (P.equal_syntactic p) acc then acc else p :: acc)
      [] polys
    |> List.rev
  in
  if not aggressive then polys
  else
    (* Drop disjuncts subsumed by another (kept) disjunct. *)
    let rec go kept = function
      | [] -> List.rev kept
      | p :: rest ->
          if
            List.exists (fun q -> poly_subset_poly p q) rest
            || List.exists (fun q -> poly_subset_poly p q) kept
          then go kept rest
          else go (p :: kept) rest
    in
    go [] polys

let mem polys xs = List.exists (fun p -> P.mem p xs) polys
