(** Exact integer variable elimination and emptiness — the Omega test
    (Pugh, CACM 1992), the engine the paper relies on for solving dependence
    relations exactly.

    Elimination of one variable from a polyhedron returns a {e union} of
    polyhedra whose integer points are exactly the projection:
    - an equality pivot substitutes the variable, adding a divisibility
      constraint when the pivot coefficient exceeds 1;
    - divisibility constraints mentioning the variable are removed first by
      branching on the residue class of the variable;
    - otherwise Fourier–Motzkin combines bound pairs: when every pair has a
      unit coefficient the real shadow is exact, else the result is the dark
      shadow plus Pugh's splinter equalities. *)

exception Blowup of string
(** Raised when elimination exceeds the work budget (never silently
    approximate). *)

val eliminate : Poly.t -> int -> Poly.t list
(** [eliminate p k] is the exact integer projection of [p] along variable
    [k]; the results have dimension [dim p - 1] (variables above [k] are
    renumbered down). *)

val project_out : Poly.t -> int list -> Poly.t list
(** [project_out p ks] eliminates every variable in [ks] (any order). *)

val is_empty : Poly.t -> bool
(** [is_empty p] decides whether [p] contains an integer point. *)

val max_branch_modulus : int
(** Residue branching on a divisibility constraint with modulus above this
    raises {!Blowup}. *)
