module L = Linexpr
module C = Constr
module P = Poly

let diff_expr n_total fst_off snd_off j =
  L.sub (L.var n_total (snd_off + j)) (L.var n_total (fst_off + j))

let level_poly ~n_total ~fst_off ~snd_off l ~strict =
  let eqs =
    List.init l (fun j -> C.Eq (diff_expr n_total fst_off snd_off j))
  in
  let last =
    let d = diff_expr n_total fst_off snd_off l in
    C.Ge (if strict then L.add_const d (-1) else d)
  in
  P.make n_total (last :: eqs)

let lt ~n_total ~fst_off ~snd_off ~len =
  List.init len (fun l -> level_poly ~n_total ~fst_off ~snd_off l ~strict:true)

let le ~n_total ~fst_off ~snd_off ~len =
  let all_eq =
    P.make n_total
      (List.init len (fun j -> C.Eq (diff_expr n_total fst_off snd_off j)))
  in
  all_eq :: lt ~n_total ~fst_off ~snd_off ~len
