(** Convex integer polyhedra: conjunctions of {!Constr.t} over [n]
    variables, possibly with divisibility (stride) constraints.

    A value of type [t] is just a conjunction; emptiness over the integers is
    decided exactly by {!Omega.is_empty}. *)

type t = { n : int; cons : Constr.t list }

val universe : int -> t
val make : int -> Constr.t list -> t
val add_constr : t -> Constr.t -> t
val add_constrs : t -> Constr.t list -> t
val inter : t -> t -> t
(** [inter a b] conjoins two polyhedra over the same space. *)

val normalize : t -> t option
(** [normalize p] normalizes every constraint, deduplicates, pairs opposite
    inequalities into equalities, and returns [None] when a ground
    contradiction is found. *)

val mem : t -> int array -> bool
val dim : t -> int
val constraints : t -> Constr.t list
val uses_var : t -> int -> bool

val assign : t -> int -> int -> t
(** [assign p k v] fixes variable [k] to the constant [v] (the dimension
    remains; the variable becomes unconstrained-but-unused afterwards only if
    it occurred nowhere else). *)

val drop_dim : t -> int -> t
(** [drop_dim p k] removes dimension [k], which no constraint may use,
    renumbering higher variables down. *)

val extend : t -> int -> t
val remap : t -> int -> int array -> t
val map_exprs : (Linexpr.t -> Linexpr.t) -> t -> t
val equal_syntactic : t -> t -> bool
val pp : string array -> Format.formatter -> t -> unit
