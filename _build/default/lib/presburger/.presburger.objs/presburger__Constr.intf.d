lib/presburger/constr.mli: Format Linexpr
