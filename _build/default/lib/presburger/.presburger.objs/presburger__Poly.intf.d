lib/presburger/poly.mli: Constr Format Linexpr
