lib/presburger/rel.ml: Array Dnf Enum Format Iset Lex List Poly
