lib/presburger/omega.ml: Constr Fun Linexpr List Numeric Poly Printf
