lib/presburger/linexpr.mli: Format
