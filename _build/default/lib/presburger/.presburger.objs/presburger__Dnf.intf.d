lib/presburger/dnf.mli: Poly
