lib/presburger/iset.ml: Array Dnf Format Linexpr List Poly
