lib/presburger/linexpr.ml: Array Format Numeric Printf
