lib/presburger/lex.mli: Poly
