lib/presburger/iset.mli: Format Poly
