lib/presburger/lex.ml: Constr Linexpr List Poly
