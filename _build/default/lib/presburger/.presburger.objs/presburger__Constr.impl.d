lib/presburger/constr.ml: Array Format Linexpr List Numeric Stdlib
