lib/presburger/enum.mli: Iset Poly
