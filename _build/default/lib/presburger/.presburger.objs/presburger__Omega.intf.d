lib/presburger/omega.mli: Poly
