lib/presburger/poly.ml: Constr Format Linexpr List Stdlib
