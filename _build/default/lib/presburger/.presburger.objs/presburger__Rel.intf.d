lib/presburger/rel.mli: Format Iset Poly
