lib/presburger/enum.ml: Array Constr Int Iset Linexpr List Numeric Omega Poly Set
