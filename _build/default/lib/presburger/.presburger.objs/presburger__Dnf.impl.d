lib/presburger/dnf.ml: Constr List Omega Poly
