(** Lexicographic order between two equal-length blocks of variables, as a
    union of polyhedra — the ordering [i ≺ j] used to orient dependence
    arrows in the paper's relation [Rd]. *)

val lt : n_total:int -> fst_off:int -> snd_off:int -> len:int -> Poly.t list
(** [lt ~n_total ~fst_off ~snd_off ~len] is the union of [len] polyhedra
    over [n_total] variables expressing
    [(x_{fst_off..}) ≺ (x_{snd_off..})]: one disjunct per level [l] with
    equalities on the first [l] components and a strict inequality on
    component [l]. *)

val le : n_total:int -> fst_off:int -> snd_off:int -> len:int -> Poly.t list
(** Non-strict variant ([≼]): {!lt} plus the all-equal disjunct. *)
