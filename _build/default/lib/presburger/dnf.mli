(** Operations on unions of polyhedra (disjunctive normal form) over a
    common variable space.  {!Iset} and {!Rel} wrap these with variable-name
    bookkeeping. *)

val inter : Poly.t list -> Poly.t list -> Poly.t list
(** Pairwise conjunction. *)

val poly_diff : Poly.t -> Poly.t -> Poly.t list
(** [poly_diff a b] is [a \ b] as a disjoint union of polyhedra. *)

val diff : Poly.t list -> Poly.t list -> Poly.t list
(** Set difference of unions. *)

val is_empty : Poly.t list -> bool
val subset : Poly.t list -> Poly.t list -> bool
val equal : Poly.t list -> Poly.t list -> bool

val project_out : Poly.t list -> int list -> Poly.t list
(** Exact integer projection of every polyhedron. *)

val simplify : ?aggressive:bool -> Poly.t list -> Poly.t list
(** Drop empty disjuncts, normalize, and remove redundant constraints; with
    [~aggressive:true] also drop disjuncts subsumed by another disjunct. *)

val mem : Poly.t list -> int array -> bool
