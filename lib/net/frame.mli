(** Bounded-buffer JSONL framing over a socket.

    A {!reader} accumulates raw reads and splits them into
    newline-terminated lines.  Memory is bounded by [max_line]: once a
    line under construction exceeds it, its bytes are {e discarded}
    (not buffered) until the terminating newline, and the reader yields
    one {!Too_long} event in the line's place — the connection stays
    framed, the oversized request becomes a typed [bad-request] record
    instead of an allocation.  A line arriving in many partial reads is
    reassembled; several lines arriving in one read are yielded one by
    one (pipelining). *)

type reader

type event =
  | Line of string  (** one complete request line (["\r"] stripped) *)
  | Too_long of int
      (** an oversized line was discarded; the payload is the byte count
          dropped (order-preserving: yielded in the line's position) *)
  | Eof  (** peer closed cleanly; any unterminated tail is dropped *)
  | Idle_timeout  (** no line {e started} within the timeout *)
  | Read_timeout  (** a partial line stalled past the timeout *)
  | Aborted  (** connection reset mid-read *)

val reader : ?max_line:int -> Unix.file_descr -> reader
(** [max_line] defaults to 1 MiB. *)

val next : reader -> timeout_s:float -> event
(** Block (via [select]) for the next event.  [timeout_s <= 0] waits
    forever.  After {!Eof}/{!Aborted} every later call returns the same
    event. *)

val write_line : Unix.file_descr -> string -> (unit, [ `Closed ]) result
(** Write [line ^ "\n"] fully.  [EPIPE]/[ECONNRESET]-class errors — the
    peer went away — come back as [Error `Closed] for the caller to
    count and clean up; they never raise (the process ignores
    [SIGPIPE]). *)
