module Proto = Svc.Proto
module Service = Svc.Service

let conn_accepted = Obs.Counter.make "net.conn.accepted"
let conn_closed = Obs.Counter.make "net.conn.closed"
let conn_aborted = Obs.Counter.make "net.conn.aborted"
let conn_rejected = Obs.Counter.make "net.conn.rejected"
let conn_timeout = Obs.Counter.make "net.conn.timeout"
let req_received = Obs.Counter.make "net.req.received"
let resp_sent = Obs.Counter.make "net.resp.sent"
let shed = Obs.Counter.make "net.shed"
let frame_oversized = Obs.Counter.make "net.frame.oversized"
let req_drained = Obs.Counter.make "net.req.drained"

type config = {
  max_conns : int;
  max_line : int;
  idle_timeout_s : float;
  drain_timeout_s : float;
  events : Obs.Event.t;
}

let default_config =
  {
    max_conns = 64;
    max_line = 1024 * 1024;
    idle_timeout_s = 300.0;
    drain_timeout_s = 10.0;
    events = Obs.Event.null;
  }

type state = Running | Draining | Stopped

type conn = {
  c_fd : Unix.file_descr;
  c_m : Mutex.t;  (* write ordering + fd close *)
  mutable c_open : bool;  (* fd still writable (set false before close) *)
  mutable c_next_slot : int;  (* reader thread only *)
  mutable c_next_write : int;  (* under c_m *)
  c_pending : (int, string) Hashtbl.t;  (* rendered lines, under c_m *)
  mutable c_inflight : int;  (* under the server mutex *)
  mutable c_force : bool;  (* drain timeout hit: stop waiting, close *)
}

type t = {
  service : Service.t;
  config : config;
  listen_fd : Unix.file_descr;
  bound : Addr.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  m : Mutex.t;
  mutable state : state;
  mutable conns : conn list;
  mutable inflight : int;
  mutable accept_thread : Thread.t option;
  mutable conn_threads : Thread.t list;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let addr t = t.bound
let connections t = locked t (fun () -> List.length t.conns)
let inflight t = locked t (fun () -> t.inflight)

(* ---- response path ---------------------------------------------------- *)

(* Store one rendered response line at its slot, then flush every
   contiguously-ready line in request order.  Runs on worker domains and
   on reader threads; [c_m] serializes them.  A dead peer turns the
   flush into a silent drop — the EPIPE-class close is counted once. *)
let deliver conn slot line =
  Mutex.lock conn.c_m;
  Hashtbl.replace conn.c_pending slot line;
  while conn.c_open && Hashtbl.mem conn.c_pending conn.c_next_write do
    let l = Hashtbl.find conn.c_pending conn.c_next_write in
    Hashtbl.remove conn.c_pending conn.c_next_write;
    conn.c_next_write <- conn.c_next_write + 1;
    match Frame.write_line conn.c_fd l with
    | Ok () -> Obs.Counter.incr resp_sent
    | Error `Closed ->
        conn.c_open <- false;
        Obs.Counter.incr conn_aborted
  done;
  Mutex.unlock conn.c_m

let dec_inflight t conn =
  locked t (fun () ->
      conn.c_inflight <- conn.c_inflight - 1;
      t.inflight <- t.inflight - 1)

(* Every admitted line flows through here exactly once. *)
let complete t conn slot resp =
  deliver conn slot (Proto.response_to_line resp);
  dec_inflight t conn

(* ---- request path (reader thread) ------------------------------------- *)

let admit t conn =
  let slot = conn.c_next_slot in
  conn.c_next_slot <- slot + 1;
  locked t (fun () ->
      conn.c_inflight <- conn.c_inflight + 1;
      t.inflight <- t.inflight + 1);
  slot

let handle_line t conn line =
  Obs.Counter.incr req_received;
  let slot = admit t conn in
  match Proto.request_of_line line with
  | Error { Proto.line_id; message } ->
      complete t conn slot
        (Proto.error_response ?id:line_id (Proto.Bad_request message))
  | Ok req ->
      if locked t (fun () -> t.state <> Running) then begin
        Obs.Counter.incr req_drained;
        complete t conn slot
          (Proto.error_response ~id:req.Proto.id Proto.Draining)
      end
      else begin
        match
          Service.submit t.service req ~k:(fun resp ->
              complete t conn slot resp)
        with
        | Service.Accepted -> ()
        | Service.Shed { queue_depth; queue_capacity } ->
            Obs.Counter.incr shed;
            complete t conn slot
              (Proto.error_response ~id:req.Proto.id
                 (Proto.Overloaded { queue_depth; queue_capacity }))
      end

let handle_oversized t conn dropped =
  Obs.Counter.incr req_received;
  Obs.Counter.incr frame_oversized;
  let slot = admit t conn in
  complete t conn slot
    (Proto.error_response
       (Proto.Bad_request
          (Printf.sprintf
             "request line exceeds %d bytes (%d discarded); connection \
              stays open"
             t.config.max_line dropped)))

(* Reader-thread exit: wait for this connection's in-flight responses
   (abandoned on drain force-close), then close the fd — the only place
   it is ever closed, so worker-domain writes cannot race an fd reuse. *)
let close_conn t conn ~aborted =
  let rec wait_quiesce () =
    let busy =
      locked t (fun () -> conn.c_inflight > 0 && not conn.c_force)
    in
    if busy then begin
      Thread.delay 0.005;
      wait_quiesce ()
    end
  in
  wait_quiesce ();
  Mutex.lock conn.c_m;
  conn.c_open <- false;
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
  Mutex.unlock conn.c_m;
  locked t (fun () ->
      t.conns <- List.filter (fun c -> c != conn) t.conns);
  Obs.Counter.incr (if aborted then conn_aborted else conn_closed)

let rec conn_loop t conn reader =
  match Frame.next reader ~timeout_s:t.config.idle_timeout_s with
  | Frame.Line line ->
      handle_line t conn line;
      conn_loop t conn reader
  | Frame.Too_long dropped ->
      handle_oversized t conn dropped;
      conn_loop t conn reader
  | Frame.Eof -> close_conn t conn ~aborted:false
  | Frame.Idle_timeout | Frame.Read_timeout ->
      Obs.Counter.incr conn_timeout;
      close_conn t conn ~aborted:false
  | Frame.Aborted -> close_conn t conn ~aborted:true

let conn_main t conn =
  let reader = Frame.reader ~max_line:t.config.max_line conn.c_fd in
  try conn_loop t conn reader
  with _ -> close_conn t conn ~aborted:true

(* ---- accept loop ------------------------------------------------------ *)

let reject t fd =
  Obs.Counter.incr conn_rejected;
  let resp =
    Proto.error_response
      (Proto.Overloaded
         {
           queue_depth = locked t (fun () -> List.length t.conns);
           queue_capacity = t.config.max_conns;
         })
  in
  ignore (Frame.write_line fd (Proto.response_to_line resp));
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    let running = locked t (fun () -> t.state = Running) in
    if running then begin
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
      | rs, _, _ ->
          if List.mem t.wake_r rs then ()  (* drain poked the pipe *)
          else if List.mem t.listen_fd rs then begin
            (match Unix.accept t.listen_fd with
            | exception
                Unix.Unix_error
                  ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN), _, _)
              ->
                ()
            | fd, _peer ->
                let admitted =
                  locked t (fun () ->
                      t.state = Running
                      && List.length t.conns < t.config.max_conns)
                in
                if not admitted then reject t fd
                else begin
                  let conn =
                    {
                      c_fd = fd;
                      c_m = Mutex.create ();
                      c_open = true;
                      c_next_slot = 0;
                      c_next_write = 0;
                      c_pending = Hashtbl.create 8;
                      c_inflight = 0;
                      c_force = false;
                    }
                  in
                  Obs.Counter.incr conn_accepted;
                  Obs.Event.emit ~log:t.config.events
                    ~severity:Obs.Event.Debug ~scope:"net"
                    ~name:"conn.accept" (fun () ->
                      [
                        ( "conns",
                          Obs.Event.Int
                            (locked t (fun () -> List.length t.conns) + 1)
                        );
                      ]);
                  let th = Thread.create (fun () -> conn_main t conn) () in
                  locked t (fun () ->
                      t.conns <- conn :: t.conns;
                      t.conn_threads <- th :: t.conn_threads)
                end);
            loop ()
          end
          else loop ()
    end
  in
  loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  match t.bound with
  | Addr.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Addr.Tcp _ -> ()

(* ---- lifecycle -------------------------------------------------------- *)

let listen_sock addr =
  let sa = Addr.to_sockaddr addr in
  let fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
  (match addr with
  | Addr.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Addr.Unix_sock path ->
      if Sys.file_exists path then (
        try Unix.unlink path with Unix.Unix_error _ -> ()));
  Unix.bind fd sa;
  Unix.listen fd 128;
  let bound =
    match addr with
    | Addr.Tcp { host; _ } -> (
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> Addr.Tcp { host; port }
        | _ -> addr)
    | a -> a
  in
  (fd, bound)

let start ?(config = default_config) service addr =
  (* EPIPE must arrive as an error code, never a signal: a client that
     disconnects mid-response is a per-connection event. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd, bound = listen_sock addr in
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      service;
      config;
      listen_fd;
      bound;
      wake_r;
      wake_w;
      m = Mutex.create ();
      state = Running;
      conns = [];
      inflight = 0;
      accept_thread = None;
      conn_threads = [];
    }
  in
  Service.register_gauges service (fun () ->
      locked t (fun () ->
          [
            ("net.conns", float_of_int (List.length t.conns));
            ("net.inflight", float_of_int t.inflight);
          ]));
  Obs.Event.emit ~log:config.events ~severity:Obs.Event.Info ~scope:"net"
    ~name:"server.start" (fun () ->
      [ ("addr", Obs.Event.Str (Addr.to_string bound)) ]);
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let drain t =
  let first =
    locked t (fun () ->
        if t.state = Running then begin
          t.state <- Draining;
          true
        end
        else false)
  in
  if first then
    (* poke the accept loop out of its select; a failed write means the
       pipe is gone because we already stopped — fine either way *)
    try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
    with Unix.Unix_error _ -> ()

let wait t =
  (match t.accept_thread with
  | Some th ->
      Thread.join th;
      t.accept_thread <- None
  | None -> ());
  (* let in-flight requests finish, bounded *)
  let deadline = Unix.gettimeofday () +. t.config.drain_timeout_s in
  let rec settle () =
    let busy = locked t (fun () -> t.inflight > 0) in
    if busy && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.02;
      settle ()
    end
  in
  settle ();
  (* shut every surviving connection down; readers wake, flush their
     slot queues (force flag stops them waiting on abandoned work) and
     close their own fds *)
  let conns = locked t (fun () -> t.conns) in
  List.iter
    (fun conn ->
      locked t (fun () -> conn.c_force <- true);
      try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL
      with Unix.Unix_error _ -> ())
    conns;
  let threads = locked t (fun () -> t.conn_threads) in
  List.iter Thread.join threads;
  locked t (fun () ->
      t.conn_threads <- [];
      t.state <- Stopped);
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  Service.flush_store t.service;
  Obs.Event.emit ~log:t.config.events ~severity:Obs.Event.Info ~scope:"net"
    ~name:"server.stop" (fun () ->
      [ ("addr", Obs.Event.Str (Addr.to_string t.bound)) ])

let stop t =
  drain t;
  wait t
