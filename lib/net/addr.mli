(** Listen/connect addresses for the analysis service.

    Two transports: Unix-domain sockets ([unix:/path/to.sock]) for
    same-host clients and CI, TCP ([tcp:HOST:PORT], or the [HOST:PORT]
    shorthand) for everything else.  TCP port [0] binds an ephemeral
    port — {!Server.addr} reports the one actually bound, which is how
    tests avoid port races. *)

type t =
  | Unix_sock of string  (** filesystem path of the socket *)
  | Tcp of { host : string; port : int }

val parse : string -> (t, string) result
(** [unix:PATH], [tcp:HOST:PORT] or [HOST:PORT].  The error is a usage
    message naming the accepted forms. *)

val to_string : t -> string
(** Round-trips through {!parse} ([unix:…] / [tcp:…] forms). *)

val to_sockaddr : t -> Unix.sockaddr
(** Resolves the host for TCP addresses (numeric forms preferred,
    [gethostbyname] fallback).  @raise Failure when resolution fails. *)

val domain : t -> Unix.socket_domain
