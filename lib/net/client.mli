(** Minimal JSONL client for the analysis socket ({!Server}).

    Used by [recpart metrics --connect], the net tests and anything else
    that wants to speak to a live server without hand-rolling framing.
    One connection, synchronous line-level API; pipelining is just
    several {!send}s before the matching {!recv}s. *)

type t

val connect : ?timeout_s:float -> Addr.t -> (t, string) result
(** Open a connection.  [timeout_s] (default 5 s) bounds the TCP
    connect; the error is a human-readable reason. *)

val send : t -> string -> (unit, string) result
(** Write one request line (newline appended). *)

val recv : ?timeout_s:float -> t -> (string, string) result
(** Read the next response line (default timeout 30 s). *)

val call : ?timeout_s:float -> t -> string -> (string, string) result
(** [send] + [recv]. *)

val request :
  ?timeout_s:float ->
  t ->
  Svc.Proto.request ->
  (Pipeline.Json.t, string) result
(** Typed round-trip: render the request, parse the response line as
    JSON. *)

val close : t -> unit
(** Idempotent. *)
