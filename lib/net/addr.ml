type t = Unix_sock of string | Tcp of { host : string; port : int }

let usage =
  "expected \"unix:PATH\", \"tcp:HOST:PORT\" or \"HOST:PORT\""

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> Error usage
  | Some i -> (
      let host = String.sub s 0 i in
      let port_s = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port_s with
      | Some port when port >= 0 && port < 65536 && host <> "" ->
          Ok (Tcp { host; port })
      | _ -> Error usage)

let parse s =
  let prefixed p =
    String.length s > String.length p
    && String.sub s 0 (String.length p) = p
  in
  let rest p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefixed "unix:" then Ok (Unix_sock (rest "unix:"))
  else if prefixed "tcp:" then parse_host_port (rest "tcp:")
  else if String.contains s ':' then parse_host_port s
  else Error usage

let to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          failwith (Printf.sprintf "cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let to_sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp { host; port } -> Unix.ADDR_INET (resolve host, port)

let domain = function Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
