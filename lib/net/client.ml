type t = {
  fd : Unix.file_descr;
  reader : Frame.reader;
  mutable closed : bool;
}

let connect ?(timeout_s = 5.0) addr =
  match Addr.to_sockaddr addr with
  | exception Failure m -> Error m
  | sa -> (
      let fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
      let finish () =
        Ok { fd; reader = Frame.reader fd; closed = false }
      in
      (* bound the connect without leaving the socket non-blocking *)
      Unix.set_nonblock fd;
      match Unix.connect fd sa with
      | () ->
          Unix.clear_nonblock fd;
          finish ()
      | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
        -> (
          match Unix.select [] [ fd ] [] timeout_s with
          | _, [ _ ], _ -> (
              match Unix.getsockopt_error fd with
              | None ->
                  Unix.clear_nonblock fd;
                  finish ()
              | Some e ->
                  Unix.close fd;
                  Error (Unix.error_message e))
          | _ ->
              Unix.close fd;
              Error
                (Printf.sprintf "connect to %s timed out after %.1fs"
                   (Addr.to_string addr) timeout_s))
      | exception Unix.Unix_error (e, _, _) ->
          Unix.close fd;
          Error
            (Printf.sprintf "connect to %s: %s" (Addr.to_string addr)
               (Unix.error_message e)))

let send t line =
  if t.closed then Error "connection closed"
  else
    match Frame.write_line t.fd line with
    | Ok () -> Ok ()
    | Error `Closed -> Error "connection closed by server"

let recv ?(timeout_s = 30.0) t =
  if t.closed then Error "connection closed"
  else
    match Frame.next t.reader ~timeout_s with
    | Frame.Line l -> Ok l
    | Frame.Too_long n ->
        Error (Printf.sprintf "oversized response line (%d bytes)" n)
    | Frame.Eof -> Error "connection closed by server"
    | Frame.Aborted -> Error "connection reset"
    | Frame.Idle_timeout | Frame.Read_timeout ->
        Error (Printf.sprintf "no response within %.1fs" timeout_s)

let call ?timeout_s t line =
  match send t line with Error e -> Error e | Ok () -> recv ?timeout_s t

let request ?timeout_s t req =
  match
    call ?timeout_s t
      (Pipeline.Json.to_string (Svc.Proto.request_to_json req))
  with
  | Error e -> Error e
  | Ok line -> (
      match Pipeline.Json.parse line with
      | Ok j -> Ok j
      | Error m -> Error ("response not valid JSON: " ^ m))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
