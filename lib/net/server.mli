(** The concurrent socket front-end of the analysis service.

    One accept loop (its own thread) admits connections; each connection
    gets a reader thread that frames JSONL requests ({!Frame}) and feeds
    them to the shared {!Svc.Service} pool via the non-blocking
    {!Svc.Service.submit} — the socket readers never compute and never
    block on a full queue.  Responses may finish out of order on the
    worker domains; a per-connection slot sequencer writes them back in
    {e request} order, so pipelined clients can match responses
    positionally as well as by [id].

    Failure handling is per-request or per-connection, never
    process-wide: an unparsable line is a [bad-request] record, an
    oversized line is discarded unbuffered and answered with a
    [bad-request] record, a full pool queue is an [overloaded] record
    ([net.shed]), a peer that vanishes mid-write ([EPIPE]/[ECONNRESET])
    is a counted close ([net.conn.aborted]) — [SIGPIPE] is ignored
    process-wide at {!start}.

    Graceful drain ({!drain}, wired to SIGTERM/SIGINT by [recpart
    serve]): stop accepting (listener closed, Unix socket path
    unlinked), answer [drain] records to new lines on live connections,
    let in-flight requests finish (bounded by [drain_timeout_s]), flush
    the durable store, exit.  Counters: [net.conn.accepted], [.closed],
    [.aborted], [.rejected], [.timeout], [net.req.received],
    [net.resp.sent], [net.shed], [net.frame.oversized],
    [net.req.drained]; gauges [net.conns] / [net.inflight] are
    registered with the service so the [metrics] op exports them. *)

type config = {
  max_conns : int;  (** concurrent connections; excess get one
                        [overloaded] record and a close *)
  max_line : int;  (** request framing bound (bytes), see {!Frame} *)
  idle_timeout_s : float;
      (** close a connection with no request activity for this long
          ([<= 0] = never) *)
  drain_timeout_s : float;
      (** how long {!wait} lets in-flight requests finish before
          force-closing connections *)
  events : Obs.Event.t;
}

val default_config : config
(** 64 connections, 1 MiB lines, 300 s idle timeout, 10 s drain. *)

type t

val start : ?config:config -> Svc.Service.t -> Addr.t -> t
(** Bind, listen, spawn the accept loop.  TCP port [0] binds an
    ephemeral port ({!addr} reports the real one); an existing file at a
    Unix socket path is unlinked first (stale socket from a previous
    run).  @raise Unix.Unix_error when the bind fails. *)

val addr : t -> Addr.t
(** The address actually bound. *)

val connections : t -> int
val inflight : t -> int

val drain : t -> unit
(** Initiate graceful shutdown: idempotent, non-blocking, callable from
    a signal handler (sets a flag and pokes the accept loop's
    self-pipe). *)

val wait : t -> unit
(** Block until the server is fully stopped: accept loop joined,
    in-flight requests done (or [drain_timeout_s] elapsed), connections
    closed, reader threads joined, store flushed.  Call {!drain} first
    (or let a signal do it). *)

val stop : t -> unit
(** [drain t; wait t]. *)
