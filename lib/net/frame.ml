type event =
  | Line of string
  | Too_long of int
  | Eof
  | Idle_timeout
  | Read_timeout
  | Aborted

type reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  partial : Buffer.t;  (* current line, newline not yet seen *)
  items : event Queue.t;  (* completed lines / markers, in order *)
  max_line : int;
  mutable discarding : bool;  (* oversized line: dropping until '\n' *)
  mutable discarded : int;
  mutable terminal : event option;  (* Eof or Aborted, sticky *)
}

let reader ?(max_line = 1024 * 1024) fd =
  {
    fd;
    chunk = Bytes.create 65536;
    partial = Buffer.create 256;
    items = Queue.create ();
    max_line;
    discarding = false;
    discarded = 0;
    terminal = None;
  }

let finish_line r upto s from =
  if r.discarding then begin
    r.discarded <- r.discarded + (upto - from);
    Queue.push (Too_long r.discarded) r.items;
    r.discarding <- false;
    r.discarded <- 0
  end
  else begin
    Buffer.add_substring r.partial s from (upto - from);
    let line = Buffer.contents r.partial in
    Buffer.clear r.partial;
    let line =
      (* tolerate CRLF clients *)
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
    in
    if String.length line > r.max_line then
      Queue.push (Too_long (String.length line)) r.items
    else Queue.push (Line line) r.items
  end

let ingest r s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    match String.index_from_opt s !i '\n' with
    | Some j ->
        finish_line r j s !i;
        i := j + 1
    | None ->
        let len = n - !i in
        if r.discarding then r.discarded <- r.discarded + len
        else begin
          Buffer.add_substring r.partial s !i len;
          if Buffer.length r.partial > r.max_line then begin
            (* stop buffering: drop what we have and keep dropping until
               the newline restores framing *)
            r.discarded <- Buffer.length r.partial;
            Buffer.clear r.partial;
            r.discarding <- true
          end
        end;
        i := n
  done

let rec next r ~timeout_s =
  if not (Queue.is_empty r.items) then Queue.pop r.items
  else
    match r.terminal with
    | Some e -> e
    | None -> (
        let ready =
          if timeout_s <= 0.0 then true
          else
            match Unix.select [ r.fd ] [] [] timeout_s with
            | [], _, _ -> false
            | _ -> true
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
        in
        if not ready then
          if Buffer.length r.partial = 0 && not r.discarding then Idle_timeout
          else Read_timeout
        else
          match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
          | 0 ->
              (* clean close; an unterminated tail never became a frame *)
              r.terminal <- Some Eof;
              next r ~timeout_s
          | n ->
              ingest r (Bytes.sub_string r.chunk 0 n);
              next r ~timeout_s
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              next r ~timeout_s
          | exception
              Unix.Unix_error
                ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
              r.terminal <- Some Aborted;
              next r ~timeout_s)

let write_line fd line =
  let s = line ^ "\n" in
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  match
    let sent = ref 0 in
    while !sent < len do
      match Unix.write fd b !sent (len - !sent) with
      | n -> sent := !sent + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  with
  | () -> Ok ()
  | exception
      Unix.Unix_error
        ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN
          | Unix.ESHUTDOWN ),
          _,
          _ ) ->
      Error `Closed
