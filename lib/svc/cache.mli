(** Sharded LRU cache over content-addressed {!Key}s.

    Each shard owns a mutex, a hash table and an intrusive
    most-recently-used list; a lookup or insert locks exactly one shard,
    so concurrent requests for different keys rarely contend.  Hit, miss
    and eviction totals are {!Obs.Counter}s registered as
    [svc.cache.<name>.hits|misses|evictions], so they appear in
    {!Obs.Metrics} snapshots and pipeline reports for free.

    Coherence model: the cache stores immutable analysis results keyed by
    content hash, so there is nothing to invalidate — a key can only ever
    map to one value.  Two domains missing on the same key concurrently
    may both compute the result; the second {!add} simply overwrites the
    (identical) first.  LRU order is per shard: eviction picks the least
    recently used entry {e of the full shard}, which approximates global
    LRU the way sharded caches usually do. *)

type 'v t

val create : ?shards:int -> capacity:int -> name:string -> unit -> 'v t
(** [create ~capacity ~name ()] holds at most [capacity] entries in
    total, split evenly over [shards] (default 8, clamped to ≥ 1; each
    shard gets at least one slot — the effective total is
    [shards × ⌈capacity/shards⌉ ≥ capacity]).  [name] scopes the metric
    counters; caches sharing a name share counters. *)

val attach_store :
  'v t ->
  store:Store.t ->
  encode:('v -> string) ->
  decode:(string -> 'v option) ->
  unit
(** Attach a durable {!Store} as a read-through / write-behind second
    tier: {!find} falls through to the store on a memory miss (a decoded
    payload is promoted into memory without re-appending it), and
    {!add} also appends the encoded value to the log (skipped when the
    key is already on disk).  [decode] returning [None] — a corrupt or
    version-incompatible payload — degrades to a miss.  @raise
    Invalid_argument if a tier is already attached. *)

val store : 'v t -> Store.t option
(** The attached second tier, if any. *)

val find : 'v t -> Key.t -> 'v option
(** Lookup; a hit refreshes the entry's recency.  With a store tier
    attached, a memory miss that hits the log counts as a
    [svc.store.hits] (the memory miss counter still moves — diff the
    two layers to separate warm from disk-warm traffic). *)

val add : 'v t -> Key.t -> 'v -> unit
(** Insert (or overwrite) as most recently used, evicting the shard's LRU
    entry when the shard is full; write-behind to the store tier when one
    is attached. *)

val length : 'v t -> int

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;  (** effective total capacity (see {!create}) *)
}

val stats : 'v t -> stats
(** Counter totals are cumulative for the process (they are shared
    metrics); diff two [stats] for a per-run view. *)
