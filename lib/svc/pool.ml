let panics = Obs.Counter.make "svc.pool.panics"
let completed = Obs.Counter.make "svc.pool.completed"
let queue_depth = Obs.Histogram.make "svc.pool.queue_depth"

exception Closed

type t = {
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  q : (Obs.Ctx.t option * (unit -> unit)) Queue.t;
  capacity : int;
  events : Obs.Event.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

let domains t = List.length t.workers
let capacity t = t.capacity

let queue_length t =
  Mutex.lock t.m;
  let n = Queue.length t.q in
  Mutex.unlock t.m;
  n

let alive t =
  Mutex.lock t.m;
  let a = (not t.closing) && t.workers <> [] in
  Mutex.unlock t.m;
  a

(* Drain-then-exit worker: keeps popping while jobs remain, even after
   [closing] is set — graceful shutdown means no queued job is dropped. *)
let rec worker t wid =
  Mutex.lock t.m;
  while Queue.is_empty t.q && not t.closing do
    Condition.wait t.not_empty t.m
  done;
  if Queue.is_empty t.q then Mutex.unlock t.m
  else begin
    let ctx, job = Queue.pop t.q in
    Condition.signal t.not_full;
    Mutex.unlock t.m;
    (* The submitter's request context (captured in [submit]) covers the
       dequeue event, the job and any panic event — everything this job
       emits is attributed to its request.  Installing [None] explicitly
       keeps a context-free job from inheriting the previous job's. *)
    Obs.Ctx.with_opt ctx (fun () ->
        Obs.Event.emit ~log:t.events ~severity:Obs.Event.Debug ~scope:"svc"
          ~name:"pool.dequeue" (fun () -> [ ("worker", Obs.Event.Int wid) ]);
        try
          job ();
          Obs.Counter.incr completed
        with e ->
          Obs.Counter.incr panics;
          Obs.Event.emit ~log:t.events ~severity:Obs.Event.Warn ~scope:"svc"
            ~name:"pool.panic" (fun () ->
              [
                ("worker", Obs.Event.Int wid);
                ("exn", Obs.Event.Str (Printexc.to_string e));
              ]));
    worker t wid
  end

let create ?(queue_capacity = 64) ?(events = Obs.Event.null) ~domains () =
  if domains < 1 then invalid_arg "Svc.Pool.create: domains must be >= 1";
  if queue_capacity < 1 then
    invalid_arg "Svc.Pool.create: queue_capacity must be >= 1";
  let t =
    {
      m = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      q = Queue.create ();
      capacity = queue_capacity;
      events;
      closing = false;
      workers = [];
    }
  in
  t.workers <- List.init domains (fun wid -> Domain.spawn (fun () -> worker t wid));
  t

let submit t job =
  let ctx = Obs.Ctx.current () in
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      while Queue.length t.q >= t.capacity && not t.closing do
        Condition.wait t.not_full t.m
      done;
      if t.closing then raise Closed;
      Queue.push (ctx, job) t.q;
      Obs.Histogram.observe queue_depth (Queue.length t.q);
      Obs.Event.emit ~log:t.events ~severity:Obs.Event.Debug ~scope:"svc"
        ~name:"pool.submit" (fun () ->
          [ ("depth", Obs.Event.Int (Queue.length t.q)) ]);
      Condition.signal t.not_empty)

(* Non-blocking admission for the network path: a full queue is the
   load-shedding signal, not something to wait out while a socket reader
   sits blocked.  Returns [false] instead of raising on a closing pool —
   the server turns both into typed error records. *)
let try_submit t job =
  let ctx = Obs.Ctx.current () in
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      if t.closing || Queue.length t.q >= t.capacity then false
      else begin
        Queue.push (ctx, job) t.q;
        Obs.Histogram.observe queue_depth (Queue.length t.q);
        Obs.Event.emit ~log:t.events ~severity:Obs.Event.Debug ~scope:"svc"
          ~name:"pool.submit" (fun () ->
            [ ("depth", Obs.Event.Int (Queue.length t.q)) ]);
        Condition.signal t.not_empty;
        true
      end)

let shutdown t =
  Mutex.lock t.m;
  let first = not t.closing in
  t.closing <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.m;
  if first then List.iter Domain.join t.workers
