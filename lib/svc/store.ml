(* Append-only, checksummed, per-shard payload logs.  See store.mli for
   the record layout and recovery rules. *)

let hits = Obs.Counter.make "svc.store.hits"
let misses = Obs.Counter.make "svc.store.misses"
let appends = Obs.Counter.make "svc.store.appends"
let flushes = Obs.Counter.make "svc.store.flushes"
let recovered_c = Obs.Counter.make "svc.store.recovered"
let truncated_c = Obs.Counter.make "svc.store.truncated_bytes"

let magic = "RPS1"
let header_len = 4 + 4 + 4 + 16

(* Keys are 32-hex digests, but accept anything short; payloads are
   serialized reports — cap both so a corrupt length field can never ask
   recovery to allocate gigabytes. *)
let max_key_len = 4096
let max_payload_len = 256 * 1024 * 1024

type loc =
  | Mem of string  (* pending, not yet appended *)
  | Disk of { off : int; len : int }  (* payload bytes within the log *)

type shard = {
  m : Mutex.t;
  fd : Unix.file_descr;
  tbl : (Key.t, loc) Hashtbl.t;
  buf : Buffer.t;  (* pending records, in append order *)
  mutable pending : (Key.t * int * int) list;
      (* (key, payload offset within [buf], payload len), newest first *)
  mutable len : int;  (* valid bytes on disk (recovery-truncated) *)
}

type recovery = { recovered : int; truncated_bytes : int }

type t = {
  dir : string;
  flush_every : int;
  shards : shard array;
  rec_info : recovery;
  mutable closed : bool;
}

let dir t = t.dir
let recovery t = t.rec_info

(* ---- binary helpers --------------------------------------------------- *)

let put_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let digest_of ~key ~payload =
  Numeric.Digest.(
    seed
    |> Fun.flip add_int (String.length key)
    |> Fun.flip add_string key
    |> Fun.flip add_int (String.length payload)
    |> Fun.flip add_string payload)

let put_digest b (d : Numeric.Digest.t) =
  let add64 v =
    for i = 0 to 7 do
      Buffer.add_char b
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
    done
  in
  add64 d.Numeric.Digest.a;
  add64 d.Numeric.Digest.b

let get_digest s off =
  let get64 off =
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (Char.code s.[off + i]))
    done;
    !v
  in
  { Numeric.Digest.a = get64 off; b = get64 (off + 8) }

let encode_record b key payload =
  Buffer.add_string b magic;
  put_u32 b (String.length key);
  put_u32 b (String.length payload);
  put_digest b (digest_of ~key ~payload);
  Buffer.add_string b key;
  Buffer.add_string b payload

(* ---- fd helpers (under the shard mutex) ------------------------------- *)

let really_read fd bytes off len =
  let got = ref 0 in
  (try
     while !got < len do
       let n = Unix.read fd bytes (off + !got) (len - !got) in
       if n = 0 then raise Exit;
       got := !got + n
     done
   with Exit -> ());
  !got

let really_write fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write fd b !sent (len - !sent)
  done

(* ---- recovery --------------------------------------------------------- *)

(* Scan one shard log from the front, accepting checksummed records until
   the first violation; returns (entries, valid_len, records, bad_bytes).
   The caller truncates the file to [valid_len]. *)
let scan_shard fd file_len tbl =
  let pos = ref 0 in
  let records = ref 0 in
  let hdr = Bytes.create header_len in
  (try
     while !pos + header_len <= file_len do
       ignore (Unix.lseek fd !pos Unix.SEEK_SET);
       if really_read fd hdr 0 header_len <> header_len then raise Exit;
       let h = Bytes.to_string hdr in
       if String.sub h 0 4 <> magic then raise Exit;
       let key_len = get_u32 h 4 and payload_len = get_u32 h 8 in
       if
         key_len <= 0 || key_len > max_key_len || payload_len < 0
         || payload_len > max_payload_len
       then raise Exit;
       let body_len = key_len + payload_len in
       if !pos + header_len + body_len > file_len then raise Exit;
       let body = Bytes.create body_len in
       if really_read fd body 0 body_len <> body_len then raise Exit;
       let key = Bytes.sub_string body 0 key_len in
       let payload = Bytes.sub_string body key_len payload_len in
       if
         not
           (Numeric.Digest.equal (get_digest h 12) (digest_of ~key ~payload))
       then raise Exit;
       (* last record for a key wins *)
       Hashtbl.replace tbl (Key.of_hex key)
         (Disk { off = !pos + header_len + key_len; len = payload_len });
       incr records;
       pos := !pos + header_len + body_len
     done
   with Exit -> ());
  (!pos, !records)

let shard_path dir i = Filename.concat dir (Printf.sprintf "shard-%02d.log" i)

let open_dir ?(shards = 8) ?(flush_every = 32) dir =
  let shards = max 1 shards in
  let flush_every = max 1 flush_every in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let recovered = ref 0 and truncated = ref 0 in
  let arr =
    Array.init shards (fun i ->
        let path = shard_path dir i in
        let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
        let file_len = (Unix.fstat fd).Unix.st_size in
        let tbl = Hashtbl.create 64 in
        let valid_len, records = scan_shard fd file_len tbl in
        if valid_len < file_len then begin
          Unix.ftruncate fd valid_len;
          truncated := !truncated + (file_len - valid_len)
        end;
        recovered := !recovered + records;
        {
          m = Mutex.create ();
          fd;
          tbl;
          buf = Buffer.create 4096;
          pending = [];
          len = valid_len;
        })
  in
  Obs.Counter.add recovered_c !recovered;
  Obs.Counter.add truncated_c !truncated;
  {
    dir;
    flush_every;
    shards = arr;
    rec_info = { recovered = !recovered; truncated_bytes = !truncated };
    closed = false;
  }

(* ---- operations -------------------------------------------------------- *)

let shard_of t k = t.shards.(Key.hash k mod Array.length t.shards)

let locked sh f =
  Mutex.lock sh.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.m) f

let check_open t = if t.closed then invalid_arg "Svc.Store: closed"

(* Append the pending buffer; caller holds the shard mutex. *)
let flush_shard sh =
  if Buffer.length sh.buf > 0 then begin
    ignore (Unix.lseek sh.fd sh.len Unix.SEEK_SET);
    really_write sh.fd (Buffer.contents sh.buf);
    (* Pending Mem entries become Disk entries at their absolute offsets
       — unless a later add already superseded them in the table. *)
    List.iter
      (fun (key, rel_off, len) ->
        match Hashtbl.find_opt sh.tbl key with
        | Some (Mem _) when rel_off + len <= Buffer.length sh.buf ->
            (* the newest pending record for this key is the one whose
               offset we recorded last; [pending] is newest-first, so
               only rewrite if the table still holds a Mem entry and
               this is its first (= newest) occurrence *)
            Hashtbl.replace sh.tbl key (Disk { off = sh.len + rel_off; len })
        | _ -> ())
      sh.pending;
    sh.len <- sh.len + Buffer.length sh.buf;
    Buffer.clear sh.buf;
    sh.pending <- [];
    Obs.Counter.incr flushes
  end

let add t k payload =
  check_open t;
  let sh = shard_of t k in
  let key_bytes = Key.to_string k in
  locked sh (fun () ->
      let rel_off =
        Buffer.length sh.buf + header_len + String.length key_bytes
      in
      encode_record sh.buf key_bytes payload;
      sh.pending <- (k, rel_off, String.length payload) :: sh.pending;
      Hashtbl.replace sh.tbl k (Mem payload);
      Obs.Counter.incr appends;
      if List.length sh.pending >= t.flush_every then flush_shard sh)

let find t k =
  check_open t;
  let sh = shard_of t k in
  locked sh (fun () ->
      match Hashtbl.find_opt sh.tbl k with
      | None ->
          Obs.Counter.incr misses;
          None
      | Some (Mem s) ->
          Obs.Counter.incr hits;
          Some s
      | Some (Disk { off; len }) ->
          ignore (Unix.lseek sh.fd off Unix.SEEK_SET);
          let b = Bytes.create len in
          if really_read sh.fd b 0 len = len then begin
            Obs.Counter.incr hits;
            Some (Bytes.to_string b)
          end
          else begin
            (* unreadable tail (should be impossible after recovery);
               treat as a miss rather than crash the request *)
            Obs.Counter.incr misses;
            None
          end)

let mem t k =
  check_open t;
  let sh = shard_of t k in
  locked sh (fun () -> Hashtbl.mem sh.tbl k)

let flush t =
  check_open t;
  Array.iter (fun sh -> locked sh (fun () -> flush_shard sh)) t.shards

let entries t =
  check_open t;
  Array.fold_left
    (fun acc sh -> acc + locked sh (fun () -> Hashtbl.length sh.tbl))
    0 t.shards

let close t =
  if not t.closed then begin
    Array.iter
      (fun sh ->
        locked sh (fun () ->
            flush_shard sh;
            (try Unix.fsync sh.fd with Unix.Unix_error _ -> ());
            Unix.close sh.fd))
      t.shards;
    t.closed <- true
  end
