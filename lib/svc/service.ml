type config = {
  domains : int;
  queue_capacity : int;
  cache_capacity : int;
  cache_shards : int;
  threads : int;
  check : bool;
  measure : bool;
  deadline_s : float option;
  exec_engine : Runtime.Exec.engine;
  sink : Obs.Sink.t;
  events : Obs.Event.t;
  slow_ms : float option;
  flight : bool;
  flight_dir : string option;
  window_s : float;
  windows : int;
  store_dir : string option;
  store_flush_every : int;
}

let default_config =
  {
    domains = 4;
    queue_capacity = 64;
    cache_capacity = 512;
    cache_shards = 8;
    threads = 2;
    check = true;
    measure = true;
    deadline_s = None;
    exec_engine = `Compiled;
    sink = Obs.Sink.null;
    events = Obs.Event.null;
    slow_ms = None;
    flight = true;
    flight_dir = None;
    window_s = 1.0;
    windows = 60;
    store_dir = None;
    store_flush_every = 32;
  }

let latency_us = Obs.Histogram.make "svc.request.latency_us"
let queue_us = Obs.Histogram.make "svc.request.queue_us"

(* The cached payload of one successful request: everything a warm
   response needs except the requester's identity and timing. *)
type value = {
  v_strategy : string option;
  v_describe : string option;
  v_survey : Proto.survey option;
  v_report : Pipeline.Report.t option;
}

type t = {
  config : config;
  cache : value Cache.t;
  pool : Pool.t;
  exec : Runtime.Workers.t;
      (* one executor pool for every request's parallel phases: spawned at
         service creation, shared across the whole batch/serve lifetime
         (spawn count scales with [threads], not with requests) *)
  window : Obs.Window.t;
  store : Store.t option;
  mutable gauge_providers : (unit -> (string * float) list) list;
      (* extra point-in-time gauges for the metrics op, registered by
         layers above the service (the network server's connection
         counts live here — svc cannot depend on net) *)
}

(* The durable tier speaks strings: values are Marshal'd behind a
   version tag so a payload written by an incompatible binary decodes as
   a miss (recomputed and re-written), never a crash.  The store's
   checksummed records already reject corruption below this layer. *)
let value_tag = "rpv1:"

let encode_value (v : value) = value_tag ^ Marshal.to_string v []

let decode_value s : value option =
  let tl = String.length value_tag in
  if
    String.length s > tl
    && String.equal (String.sub s 0 tl) value_tag
  then try Some (Marshal.from_string s tl) with _ -> None
  else None

let create ?(config = default_config) () =
  let store =
    Option.map
      (fun dir ->
        Store.open_dir ~shards:config.cache_shards
          ~flush_every:config.store_flush_every dir)
      config.store_dir
  in
  let t =
    {
      config;
      cache =
        Cache.create ~shards:config.cache_shards
          ~capacity:config.cache_capacity ~name:"results" ();
      pool =
        Pool.create ~queue_capacity:config.queue_capacity
          ~events:config.events ~domains:config.domains ();
      exec = Runtime.Workers.create ~domains:(max 1 config.threads);
      window = Obs.Window.create ~windows:config.windows ~period_s:config.window_s ();
      store;
      gauge_providers = [];
    }
  in
  Option.iter
    (fun store ->
      Cache.attach_store t.cache ~store ~encode:encode_value
        ~decode:decode_value)
    store;
  (* The exec pool doubles as the presburger layer's DNF-disjunct runner,
     so analysis-side set algebra parallelizes over the same domains. *)
  Runtime.Workers.install_dnf_runner t.exec;
  if config.flight then Obs.Flight.enable ();
  t

let cache_stats t = Cache.stats t.cache
let exec_pool t = t.exec
let window t = t.window
let store t = t.store
let pool_capacity t = Pool.capacity t.pool
let pool_queue_length t = Pool.queue_length t.pool

let register_gauges t provider =
  t.gauge_providers <- provider :: t.gauge_providers

let flush_store t = Option.iter Store.flush t.store

let shutdown t =
  Runtime.Workers.uninstall_dnf_runner ();
  if t.config.flight then Obs.Flight.disable ();
  Pool.shutdown t.pool;
  Runtime.Workers.shutdown t.exec;
  Option.iter Store.close t.store

(* Same exception → Diag mapping as Pipeline.Driver.guarded: the known
   library exceptions become typed errors; anything else escapes to the
   per-request panic isolation in [process]. *)
let guarded f =
  match f () with
  | v -> Ok v
  | exception Diag.Error e -> Error e
  | exception Presburger.Omega.Blowup m -> Error (Diag.Set_blowup m)
  | exception Core.Dataflow.Did_not_terminate n ->
      Error (Diag.Dataflow_step_limit n)
  | exception Invalid_argument m -> Error (Diag.Unsupported m)
  | exception Depend.Space.Unsupported m -> Error (Diag.Unsupported m)

let pipeline_failure stage e =
  Proto.Pipeline_error
    {
      stage = Diag.stage_name stage;
      label = Diag.label e;
      message = Diag.to_string e;
    }

(* Survey classification (dependence uniformity + coupled subscripts) with
   typed errors: the exact single-statement analysis when it applies, the
   exact instance graph otherwise — the logic examples/corpus_scan.ml used
   to hand-roll with catch-all exception swallows. *)
let survey_of prog ~params =
  let coupled () =
    List.exists Depend.Distance.has_coupled_subscripts
      (Loopir.Prog.stmts_of prog)
  in
  let classified =
    match Pipeline.Driver.analyze prog with
    | Ok a ->
        guarded (fun () ->
            let arr =
              Array.map
                (fun n ->
                  match List.assoc_opt n params with
                  | Some v -> v
                  | None -> Diag.fail (Diag.Unbound_parameter n))
                a.Depend.Solve.params
            in
            let cls =
              Depend.Distance.classify a.Depend.Solve.rd
                ~phi:a.Depend.Solve.phi ~params:arr
            in
            {
              Proto.cls = Depend.Distance.class_to_string cls;
              coupled = coupled ();
              via = "exact";
            })
    | Error (Diag.Unsupported _) ->
        (* Imperfect nest / multiple statements: classify on the exact
           instance graph, like Algorithm 1's fallback. *)
        guarded (fun () ->
            List.iter
              (fun p ->
                if not (List.mem_assoc p params) then
                  Diag.fail (Diag.Unbound_parameter p))
              prog.Loopir.Ast.params;
            let tr = Depend.Trace.build prog ~params in
            let cls =
              if Depend.Trace.n_edges tr = 0 then Depend.Distance.No_dependence
              else Depend.Distance.Non_uniform
            in
            {
              Proto.cls = Depend.Distance.class_to_string cls;
              coupled = coupled ();
              via = "instance-graph";
            })
    | Error e -> Error e
  in
  Result.map_error (fun e -> (Diag.Analyze, e)) classified

let compute t (req : Proto.request) prog ~threads =
  match req.mode with
  | Proto.Metrics | Proto.Health ->
      (* introspective requests never reach compute — [process] answers
         them before parse/key/cache *)
      assert false
  | Proto.Classify -> (
      match survey_of prog ~params:req.params with
      | Error (stage, e) -> Error (pipeline_failure stage e)
      | Ok s ->
          let strategy =
            match
              guarded (fun () ->
                  Pipeline.Driver.classify ?strategy:req.strategy prog)
            with
            | Ok (Ok plan) ->
                Some
                  (Pipeline.Plan.strategy_name (Pipeline.Plan.strategy plan))
            | Ok (Error _) | Error _ -> None
          in
          Ok
            {
              v_strategy = strategy;
              v_describe = None;
              v_survey = Some s;
              v_report = None;
            })
  | Proto.Run -> (
      let options =
        {
          Pipeline.Driver.default_options with
          threads;
          check = t.config.check;
          measure = t.config.measure;
          strategy = req.strategy;
          exec_engine = t.config.exec_engine;
          workers = Some t.exec;
          sink = t.config.sink;
          events = t.config.events;
        }
      in
      match Pipeline.Driver.run ~options ~name:req.name ~params:req.params prog with
      | Error e ->
          Error (pipeline_failure e.Pipeline.Driver.stage e.Pipeline.Driver.error)
      | Ok o ->
          let survey =
            if not req.survey then None
            else
              match survey_of prog ~params:req.params with
              | Ok s -> Some s
              | Error _ -> None
          in
          Ok
            {
              v_strategy =
                Some
                  (Pipeline.Plan.strategy_name
                     (Pipeline.Plan.strategy o.Pipeline.Driver.plan));
              v_describe = Some (Pipeline.Plan.describe o.Pipeline.Driver.plan);
              v_survey = survey;
              v_report = Some o.Pipeline.Driver.report;
            })

let done_of_value req v =
  Proto.Done
    {
      strategy = v.v_strategy;
      describe = v.v_describe;
      survey = v.v_survey;
      report =
        (* A warm hit reuses the first computation's report; only the
           requester-visible name is rebound. *)
        Option.map
          (fun r -> { r with Pipeline.Report.program = req.Proto.name })
          v.v_report;
    }

(* ---- introspection ops ----------------------------------------------- *)

let stats_body t =
  let m = Obs.Metrics.snapshot () in
  (* Point-in-time pool state: counters only move forward, but queue depth
     and domain counts are levels — exported as gauges alongside them. *)
  let gauges =
    [
      ("svc.pool.domains", float_of_int (Pool.domains t.pool));
      (* "queue_now" not "queue_depth": the per-submit depth histogram
         already owns that name in the exposition. *)
      ("svc.pool.queue_now", float_of_int (Pool.queue_length t.pool));
      ("svc.pool.queue_capacity", float_of_int (Pool.capacity t.pool));
      ("runtime.workers.domains", float_of_int (Runtime.Workers.domains t.exec));
      ("runtime.workers.spawned", float_of_int (Runtime.Workers.spawned t.exec));
    ]
    @ (match t.store with
      | None -> []
      | Some s -> [ ("svc.store.entries", float_of_int (Store.entries s)) ])
    @ List.concat_map (fun provider -> provider ()) t.gauge_providers
  in
  let prometheus = Obs.Export.prometheus ~gauges ~window:t.window m in
  let snapshot =
    match
      Pipeline.Json.parse (Obs.Export.json_string ~gauges ~window:t.window m)
    with
    | Ok j -> j
    | Error _ -> Pipeline.Json.Null
  in
  Proto.Stats { prometheus; snapshot }

let health_body t =
  let module Json = Pipeline.Json in
  let alive = Pool.alive t.pool in
  let qlen = Pool.queue_length t.pool in
  let qcap = Pool.capacity t.pool in
  (* Cache.length takes every shard lock in turn — a responsiveness probe
     as much as a size reading. *)
  let cache_size = Cache.length t.cache in
  let st = Cache.stats t.cache in
  let ok = alive && qlen < qcap in
  let detail =
    Json.Obj
      ([
         ( "pool",
           Json.Obj
             [
               ("alive", Json.Bool alive);
               ("domains", Json.Int (Pool.domains t.pool));
               ("queue_depth", Json.Int qlen);
               ("queue_capacity", Json.Int qcap);
             ] );
         ( "cache",
           Json.Obj
             [
               ("size", Json.Int cache_size);
               ("capacity", Json.Int st.Cache.capacity);
             ] );
         ( "exec",
           Json.Obj
             [
               ("domains", Json.Int (Runtime.Workers.domains t.exec));
               ("spawned", Json.Int (Runtime.Workers.spawned t.exec));
             ] );
         ( "windows",
           Json.Obj
             [
               ("period_s", Json.Float (Obs.Window.period_s t.window));
               ("max", Json.Int (Obs.Window.max_windows t.window));
             ] );
       ]
      @
      match t.store with
      | None -> []
      | Some s ->
          [
            ( "store",
              Json.Obj
                [
                  ("dir", Json.Str (Store.dir s));
                  ("entries", Json.Int (Store.entries s));
                ] );
          ])
  in
  Proto.Healthy { ok; detail }

(* ---- failure postmortems --------------------------------------------- *)

let fs_name_of id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    id

(* Dump the flight recorder's view of a failed request (deadline, pipeline
   error, panic — not bad-request noise) as JSONL: one header record, then
   every retained entry attributed to the request's trace id. *)
let dump_flight t (ctx : Obs.Ctx.t) (req : Proto.request) f =
  match t.config.flight_dir with
  | None -> ()
  | Some dir when Obs.Flight.enabled () -> (
      let module Json = Pipeline.Json in
      let trace = Obs.Ctx.id ctx in
      let header =
        Json.to_string
          (Json.Obj
             [
               ("flight", Json.Str "v1");
               ("id", Json.Str req.Proto.id);
               ("trace", Json.Str trace);
               ("kind", Json.Str (Proto.failure_kind f));
               ("error", Json.Str (Proto.failure_message f));
             ])
      in
      let body = Obs.Flight.to_jsonl (Obs.Flight.entries ~req:trace ()) in
      try
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let path =
          Filename.concat dir
            (Printf.sprintf "flight-%s-%s.jsonl" (fs_name_of req.Proto.id)
               (fs_name_of trace))
        in
        let oc = open_out path in
        output_string oc header;
        output_char oc '\n';
        output_string oc body;
        close_out oc
      with Sys_error _ -> ())
  | Some _ -> ()

let slow_log t (ctx : Obs.Ctx.t) (req : Proto.request) ~run_s ~memo0 body =
  match t.config.slow_ms with
  | Some ms when run_s *. 1000.0 >= ms ->
      let memo1 = Presburger.Hc.totals () in
      let stages =
        match body with
        | Proto.Done { report = Some r; _ } ->
            r.Pipeline.Report.timings
            |> List.map (fun (stage, s) ->
                   Printf.sprintf "%s=%.1fms" stage (s *. 1000.0))
            |> String.concat " "
        | Proto.Failed f -> "failed:" ^ Proto.failure_kind f
        | _ -> "-"
      in
      Printf.eprintf
        "slow-request: id=%s trace=%s run_ms=%.1f memo-hits=+%d \
         memo-misses=+%d stages=[%s]\n\
         %!"
        req.Proto.id (Obs.Ctx.id ctx) (run_s *. 1000.0)
        (memo1.Presburger.Hc.hits - memo0.Presburger.Hc.hits)
        (memo1.Presburger.Hc.misses - memo0.Presburger.Hc.misses)
        stages
  | _ -> ()

let emit_outcome t (req : Proto.request) ~cached body =
  Obs.Event.emit ~log:t.config.events ~scope:"svc"
    ~name:
      (match body with
      | Proto.Failed _ -> "request.error"
      | Proto.Done _ | Proto.Stats _ | Proto.Healthy _ -> "request.done")
    ~severity:
      (match body with Proto.Failed _ -> Obs.Event.Warn | _ -> Obs.Event.Info)
    (fun () ->
      ("id", Obs.Event.Str req.Proto.id)
      :: ("cached", Obs.Event.Bool cached)
      ::
      (match body with
      | Proto.Failed f ->
          [
            ("kind", Obs.Event.Str (Proto.failure_kind f));
            ("why", Obs.Event.Str (Proto.failure_message f));
          ]
      | _ -> []))

let process t (req : Proto.request) ~submitted_ns =
  (* The request context: reuse the one the pool propagated from submit
     time, or mint one here (run_one, direct library calls).  Everything
     below — spans, events, worker-domain jobs — runs under it. *)
  let ctx =
    match Obs.Ctx.current () with Some c -> c | None -> Obs.Ctx.make ()
  in
  Obs.Ctx.with_ctx ctx @@ fun () ->
  let dequeued_ns = Obs.Clock.now_ns () in
  let queue_s =
    Int64.to_float (Int64.sub dequeued_ns submitted_ns) *. 1e-9
  in
  Obs.Histogram.observe queue_us (int_of_float (queue_s *. 1e6));
  (* Begin marker: the svc:request span only records when it closes, so
     without this a request that dies mid-flight would be invisible in
     its own flight dump. *)
  Obs.Event.emit ~log:t.config.events ~severity:Obs.Event.Debug ~scope:"svc"
    ~name:"request.begin" (fun () ->
      [
        ("id", Obs.Event.Str req.Proto.id);
        ("mode", Obs.Event.Str (Proto.mode_name req.Proto.mode));
      ]);
  let memo0 = Presburger.Hc.totals () in
  let finish ~cached body =
    let run_s = Obs.Clock.elapsed_s dequeued_ns in
    Obs.Histogram.observe latency_us (int_of_float (run_s *. 1e6));
    Obs.Window.roll_if_due t.window;
    (* The outcome event goes out before any flight dump so the dump's
       body includes it (the request's begin breadcrumb is Debug and
       log-only; the failure event is the one flight-recorded record
       that names the failure). *)
    emit_outcome t req ~cached body;
    (match body with
    | Proto.Failed (Proto.Bad_request _) | Proto.Done _ | Proto.Stats _
    | Proto.Healthy _ ->
        ()
    | Proto.Failed f -> dump_flight t ctx req f);
    slow_log t ctx req ~run_s ~memo0 body;
    {
      Proto.id = req.Proto.id;
      trace = Obs.Ctx.id ctx;
      cached;
      queue_s;
      run_s;
      body;
    }
  in
  match req.Proto.mode with
  | Proto.Metrics -> finish ~cached:false (stats_body t)
  | Proto.Health -> finish ~cached:false (health_body t)
  | Proto.Run | Proto.Classify ->
  Obs.Span.with_ ~sink:t.config.sink ~name:"svc:request"
    ~args:[ ("id", req.Proto.id) ]
  @@ fun () ->
  let deadline =
    match req.Proto.deadline_s with
    | Some _ as d -> d
    | None -> t.config.deadline_s
  in
  let overrun () =
    match deadline with
    | None -> None
    | Some limit_s ->
        let elapsed_s =
          Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) submitted_ns)
          *. 1e-9
        in
        if elapsed_s > limit_s then
          Some (Proto.Deadline { limit_s; elapsed_s })
        else None
  in
  match overrun () with
  | Some f -> finish ~cached:false (Proto.Failed f)
  | None -> (
      let prog =
        match req.Proto.source with
        | Proto.Prog p -> Ok p
        | Proto.Src s -> (
            match Loopir.Parser.parse ~name:req.Proto.name s with
            | p -> Ok p
            | exception Loopir.Parser.Error (msg, line) ->
                Error
                  (Printf.sprintf "%s: parse error at line %d: %s"
                     req.Proto.name line msg))
      in
      match prog with
      | Error msg -> finish ~cached:false (Proto.Failed (Proto.Bad_request msg))
      | Ok prog -> (
          let threads =
            Option.value req.Proto.threads ~default:t.config.threads
          in
          let key =
            Key.of_request ?strategy:req.Proto.strategy
              ~extra:
                [
                  "mode=" ^ Proto.mode_name req.Proto.mode;
                  Printf.sprintf "threads=%d" threads;
                  Printf.sprintf "check=%b" t.config.check;
                  Printf.sprintf "measure=%b" t.config.measure;
                  "exec=" ^ Runtime.Exec.engine_name t.config.exec_engine;
                  Printf.sprintf "survey=%b" req.Proto.survey;
                ]
              ~params:req.Proto.params prog
          in
          match Cache.find t.cache key with
          | Some v ->
              Obs.Event.emit ~log:t.config.events ~severity:Obs.Event.Debug
                ~scope:"svc" ~name:"cache.hit" (fun () ->
                  [ ("key", Obs.Event.Str (Key.to_string key)) ]);
              finish ~cached:true (done_of_value req v)
          | None -> (
              Obs.Event.emit ~log:t.config.events ~severity:Obs.Event.Debug
                ~scope:"svc" ~name:"cache.miss" (fun () ->
                  [ ("key", Obs.Event.Str (Key.to_string key)) ]);
              let outcome =
                try
                  Obs.Span.with_ ~sink:t.config.sink ~name:"svc:analyze"
                    ~args:[ ("id", req.Proto.id) ] (fun () ->
                      compute t req prog ~threads)
                with e -> Error (Proto.Panic (Printexc.to_string e))
              in
              match outcome with
              | Error f -> finish ~cached:false (Proto.Failed f)
              | Ok v -> (
                  Cache.add t.cache key v;
                  (* The result is cached even when this requester ran past
                     its deadline: the work is done and the next hit is
                     free; only this response reports the overrun. *)
                  match overrun () with
                  | Some f -> finish ~cached:false (Proto.Failed f)
                  | None -> finish ~cached:false (done_of_value req v)))))

let run_one t (req : Proto.request) =
  let submitted_ns = Obs.Clock.now_ns () in
  try process t req ~submitted_ns
  with e -> Proto.error_response ~id:req.Proto.id (Proto.Panic (Printexc.to_string e))

type admission =
  | Accepted
  | Shed of { queue_depth : int; queue_capacity : int }

(* Asynchronous admission for the network server: one request, one
   continuation, no blocking.  Introspective ops are answered inline on
   the caller (they read registries, never the pool); everything else is
   try-submitted — a full queue sheds the request instead of stalling
   the socket reader, and the caller renders the typed [overloaded]
   record itself (it owns the response ordering). *)
let submit t (req : Proto.request) ~k =
  if Proto.introspective req.Proto.mode then begin
    k (run_one t req);
    Accepted
  end
  else begin
    (* Same trace discipline as [batch]: mint the context at submit so
       the pool job and every span/event it causes carry it. *)
    let ctx = Obs.Ctx.make () in
    Obs.Ctx.with_ctx ctx @@ fun () ->
    Obs.Event.emit ~log:t.config.events ~severity:Obs.Event.Debug ~scope:"svc"
      ~name:"request.submit" (fun () ->
        [ ("id", Obs.Event.Str req.Proto.id) ]);
    let submitted_ns = Obs.Clock.now_ns () in
    let job () =
      let resp =
        try process t req ~submitted_ns
        with e ->
          Proto.error_response ~id:req.Proto.id ~trace:(Obs.Ctx.id ctx)
            (Proto.Panic (Printexc.to_string e))
      in
      k resp
    in
    if Pool.try_submit t.pool job then Accepted
    else
      Shed
        {
          queue_depth = Pool.queue_length t.pool;
          queue_capacity = Pool.capacity t.pool;
        }
  end

let batch t reqs =
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  let out = Array.make n None in
  let m = Mutex.create () in
  let all_done = Condition.create () in
  let pooled (req : Proto.request) =
    not (Proto.introspective req.Proto.mode)
  in
  let remaining =
    ref (Array.fold_left (fun k r -> if pooled r then k + 1 else k) 0 reqs)
  in
  Array.iteri
    (fun i (req : Proto.request) ->
      if pooled req then begin
        (* Mint the request context here and install it around submit:
           Pool.submit captures it with the job, so the dequeue event and
           every span/event of the pooled run carry this trace id. *)
        let ctx = Obs.Ctx.make () in
        Obs.Ctx.with_ctx ctx @@ fun () ->
        Obs.Event.emit ~log:t.config.events ~severity:Obs.Event.Debug
          ~scope:"svc" ~name:"request.submit" (fun () ->
            [ ("id", Obs.Event.Str req.Proto.id) ]);
        let submitted_ns = Obs.Clock.now_ns () in
        Pool.submit t.pool (fun () ->
            let resp =
              try process t req ~submitted_ns
              with e ->
                Proto.error_response ~id:req.Proto.id ~trace:(Obs.Ctx.id ctx)
                  (Proto.Panic (Printexc.to_string e))
            in
            out.(i) <- Some resp;
            Mutex.lock m;
            decr remaining;
            if !remaining = 0 then Condition.signal all_done;
            Mutex.unlock m)
      end)
    reqs;
  Mutex.lock m;
  while !remaining > 0 do
    Condition.wait all_done m
  done;
  Mutex.unlock m;
  (* Introspective ops run after the pooled work has drained, so a
     trailing metrics/health line observes the whole batch — and a
     deterministic cache hit-rate — rather than a race-dependent prefix. *)
  Array.iteri
    (fun i (req : Proto.request) ->
      if not (pooled req) then out.(i) <- Some (run_one t req))
    reqs;
  Array.to_list
    (Array.map (function Some r -> r | None -> assert false) out)
