type config = {
  domains : int;
  queue_capacity : int;
  cache_capacity : int;
  cache_shards : int;
  threads : int;
  check : bool;
  measure : bool;
  deadline_s : float option;
  exec_engine : Runtime.Exec.engine;
  sink : Obs.Sink.t;
  events : Obs.Event.t;
}

let default_config =
  {
    domains = 4;
    queue_capacity = 64;
    cache_capacity = 512;
    cache_shards = 8;
    threads = 2;
    check = true;
    measure = true;
    deadline_s = None;
    exec_engine = `Compiled;
    sink = Obs.Sink.null;
    events = Obs.Event.null;
  }

(* The cached payload of one successful request: everything a warm
   response needs except the requester's identity and timing. *)
type value = {
  v_strategy : string option;
  v_describe : string option;
  v_survey : Proto.survey option;
  v_report : Pipeline.Report.t option;
}

type t = {
  config : config;
  cache : value Cache.t;
  pool : Pool.t;
  exec : Runtime.Workers.t;
      (* one executor pool for every request's parallel phases: spawned at
         service creation, shared across the whole batch/serve lifetime
         (spawn count scales with [threads], not with requests) *)
}

let create ?(config = default_config) () =
  let t =
    {
      config;
      cache =
        Cache.create ~shards:config.cache_shards
          ~capacity:config.cache_capacity ~name:"results" ();
      pool =
        Pool.create ~queue_capacity:config.queue_capacity
          ~events:config.events ~domains:config.domains ();
      exec = Runtime.Workers.create ~domains:(max 1 config.threads);
    }
  in
  (* The exec pool doubles as the presburger layer's DNF-disjunct runner,
     so analysis-side set algebra parallelizes over the same domains. *)
  Runtime.Workers.install_dnf_runner t.exec;
  t

let cache_stats t = Cache.stats t.cache
let exec_pool t = t.exec

let shutdown t =
  Runtime.Workers.uninstall_dnf_runner ();
  Pool.shutdown t.pool;
  Runtime.Workers.shutdown t.exec

(* Same exception → Diag mapping as Pipeline.Driver.guarded: the known
   library exceptions become typed errors; anything else escapes to the
   per-request panic isolation in [process]. *)
let guarded f =
  match f () with
  | v -> Ok v
  | exception Diag.Error e -> Error e
  | exception Presburger.Omega.Blowup m -> Error (Diag.Set_blowup m)
  | exception Core.Dataflow.Did_not_terminate n ->
      Error (Diag.Dataflow_step_limit n)
  | exception Invalid_argument m -> Error (Diag.Unsupported m)
  | exception Depend.Space.Unsupported m -> Error (Diag.Unsupported m)

let pipeline_failure stage e =
  Proto.Pipeline_error
    {
      stage = Diag.stage_name stage;
      label = Diag.label e;
      message = Diag.to_string e;
    }

(* Survey classification (dependence uniformity + coupled subscripts) with
   typed errors: the exact single-statement analysis when it applies, the
   exact instance graph otherwise — the logic examples/corpus_scan.ml used
   to hand-roll with catch-all exception swallows. *)
let survey_of prog ~params =
  let coupled () =
    List.exists Depend.Distance.has_coupled_subscripts
      (Loopir.Prog.stmts_of prog)
  in
  let classified =
    match Pipeline.Driver.analyze prog with
    | Ok a ->
        guarded (fun () ->
            let arr =
              Array.map
                (fun n ->
                  match List.assoc_opt n params with
                  | Some v -> v
                  | None -> Diag.fail (Diag.Unbound_parameter n))
                a.Depend.Solve.params
            in
            let cls =
              Depend.Distance.classify a.Depend.Solve.rd
                ~phi:a.Depend.Solve.phi ~params:arr
            in
            {
              Proto.cls = Depend.Distance.class_to_string cls;
              coupled = coupled ();
              via = "exact";
            })
    | Error (Diag.Unsupported _) ->
        (* Imperfect nest / multiple statements: classify on the exact
           instance graph, like Algorithm 1's fallback. *)
        guarded (fun () ->
            List.iter
              (fun p ->
                if not (List.mem_assoc p params) then
                  Diag.fail (Diag.Unbound_parameter p))
              prog.Loopir.Ast.params;
            let tr = Depend.Trace.build prog ~params in
            let cls =
              if Depend.Trace.n_edges tr = 0 then Depend.Distance.No_dependence
              else Depend.Distance.Non_uniform
            in
            {
              Proto.cls = Depend.Distance.class_to_string cls;
              coupled = coupled ();
              via = "instance-graph";
            })
    | Error e -> Error e
  in
  Result.map_error (fun e -> (Diag.Analyze, e)) classified

let compute t (req : Proto.request) prog ~threads =
  match req.mode with
  | Proto.Classify -> (
      match survey_of prog ~params:req.params with
      | Error (stage, e) -> Error (pipeline_failure stage e)
      | Ok s ->
          let strategy =
            match
              guarded (fun () ->
                  Pipeline.Driver.classify ?strategy:req.strategy prog)
            with
            | Ok (Ok plan) ->
                Some
                  (Pipeline.Plan.strategy_name (Pipeline.Plan.strategy plan))
            | Ok (Error _) | Error _ -> None
          in
          Ok
            {
              v_strategy = strategy;
              v_describe = None;
              v_survey = Some s;
              v_report = None;
            })
  | Proto.Run -> (
      let options =
        {
          Pipeline.Driver.default_options with
          threads;
          check = t.config.check;
          measure = t.config.measure;
          strategy = req.strategy;
          exec_engine = t.config.exec_engine;
          workers = Some t.exec;
          sink = t.config.sink;
          events = t.config.events;
        }
      in
      match Pipeline.Driver.run ~options ~name:req.name ~params:req.params prog with
      | Error e ->
          Error (pipeline_failure e.Pipeline.Driver.stage e.Pipeline.Driver.error)
      | Ok o ->
          let survey =
            if not req.survey then None
            else
              match survey_of prog ~params:req.params with
              | Ok s -> Some s
              | Error _ -> None
          in
          Ok
            {
              v_strategy =
                Some
                  (Pipeline.Plan.strategy_name
                     (Pipeline.Plan.strategy o.Pipeline.Driver.plan));
              v_describe = Some (Pipeline.Plan.describe o.Pipeline.Driver.plan);
              v_survey = survey;
              v_report = Some o.Pipeline.Driver.report;
            })

let done_of_value req v =
  Proto.Done
    {
      strategy = v.v_strategy;
      describe = v.v_describe;
      survey = v.v_survey;
      report =
        (* A warm hit reuses the first computation's report; only the
           requester-visible name is rebound. *)
        Option.map
          (fun r -> { r with Pipeline.Report.program = req.Proto.name })
          v.v_report;
    }

let emit_outcome t (req : Proto.request) ~cached body =
  Obs.Event.emit ~log:t.config.events ~scope:"svc"
    ~name:
      (match body with
      | Proto.Done _ -> "request.done"
      | Proto.Failed _ -> "request.error")
    ~severity:
      (match body with Proto.Done _ -> Obs.Event.Info | _ -> Obs.Event.Warn)
    (fun () ->
      ("id", Obs.Event.Str req.Proto.id)
      :: ("cached", Obs.Event.Bool cached)
      ::
      (match body with
      | Proto.Failed f ->
          [
            ("kind", Obs.Event.Str (Proto.failure_kind f));
            ("why", Obs.Event.Str (Proto.failure_message f));
          ]
      | Proto.Done _ -> []))

let process t (req : Proto.request) ~submitted_ns =
  let dequeued_ns = Obs.Clock.now_ns () in
  let queue_s =
    Int64.to_float (Int64.sub dequeued_ns submitted_ns) *. 1e-9
  in
  let finish ~cached body =
    emit_outcome t req ~cached body;
    {
      Proto.id = req.Proto.id;
      cached;
      queue_s;
      run_s = Obs.Clock.elapsed_s dequeued_ns;
      body;
    }
  in
  Obs.Span.with_ ~sink:t.config.sink ~name:"svc:request"
    ~args:[ ("id", req.Proto.id) ]
  @@ fun () ->
  let deadline =
    match req.Proto.deadline_s with
    | Some _ as d -> d
    | None -> t.config.deadline_s
  in
  let overrun () =
    match deadline with
    | None -> None
    | Some limit_s ->
        let elapsed_s =
          Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) submitted_ns)
          *. 1e-9
        in
        if elapsed_s > limit_s then
          Some (Proto.Deadline { limit_s; elapsed_s })
        else None
  in
  match overrun () with
  | Some f -> finish ~cached:false (Proto.Failed f)
  | None -> (
      let prog =
        match req.Proto.source with
        | Proto.Prog p -> Ok p
        | Proto.Src s -> (
            match Loopir.Parser.parse ~name:req.Proto.name s with
            | p -> Ok p
            | exception Loopir.Parser.Error (msg, line) ->
                Error
                  (Printf.sprintf "%s: parse error at line %d: %s"
                     req.Proto.name line msg))
      in
      match prog with
      | Error msg -> finish ~cached:false (Proto.Failed (Proto.Bad_request msg))
      | Ok prog -> (
          let threads =
            Option.value req.Proto.threads ~default:t.config.threads
          in
          let key =
            Key.of_request ?strategy:req.Proto.strategy
              ~extra:
                [
                  (match req.Proto.mode with
                  | Proto.Run -> "mode=run"
                  | Proto.Classify -> "mode=classify");
                  Printf.sprintf "threads=%d" threads;
                  Printf.sprintf "check=%b" t.config.check;
                  Printf.sprintf "measure=%b" t.config.measure;
                  "exec=" ^ Runtime.Exec.engine_name t.config.exec_engine;
                  Printf.sprintf "survey=%b" req.Proto.survey;
                ]
              ~params:req.Proto.params prog
          in
          match Cache.find t.cache key with
          | Some v ->
              Obs.Event.emit ~log:t.config.events ~severity:Obs.Event.Debug
                ~scope:"svc" ~name:"cache.hit" (fun () ->
                  [ ("key", Obs.Event.Str (Key.to_string key)) ]);
              finish ~cached:true (done_of_value req v)
          | None -> (
              Obs.Event.emit ~log:t.config.events ~severity:Obs.Event.Debug
                ~scope:"svc" ~name:"cache.miss" (fun () ->
                  [ ("key", Obs.Event.Str (Key.to_string key)) ]);
              let outcome =
                try
                  Obs.Span.with_ ~sink:t.config.sink ~name:"svc:analyze"
                    ~args:[ ("id", req.Proto.id) ] (fun () ->
                      compute t req prog ~threads)
                with e -> Error (Proto.Panic (Printexc.to_string e))
              in
              match outcome with
              | Error f -> finish ~cached:false (Proto.Failed f)
              | Ok v -> (
                  Cache.add t.cache key v;
                  (* The result is cached even when this requester ran past
                     its deadline: the work is done and the next hit is
                     free; only this response reports the overrun. *)
                  match overrun () with
                  | Some f -> finish ~cached:false (Proto.Failed f)
                  | None -> finish ~cached:false (done_of_value req v)))))

let run_one t (req : Proto.request) =
  let submitted_ns = Obs.Clock.now_ns () in
  try process t req ~submitted_ns
  with e -> Proto.error_response ~id:req.Proto.id (Proto.Panic (Printexc.to_string e))

let batch t reqs =
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  let out = Array.make n None in
  let m = Mutex.create () in
  let all_done = Condition.create () in
  let remaining = ref n in
  Array.iteri
    (fun i (req : Proto.request) ->
      Obs.Event.emit ~log:t.config.events ~severity:Obs.Event.Debug
        ~scope:"svc" ~name:"request.submit" (fun () ->
          [ ("id", Obs.Event.Str req.Proto.id) ]);
      let submitted_ns = Obs.Clock.now_ns () in
      Pool.submit t.pool (fun () ->
          let resp =
            try process t req ~submitted_ns
            with e ->
              Proto.error_response ~id:req.Proto.id
                (Proto.Panic (Printexc.to_string e))
          in
          out.(i) <- Some resp;
          Mutex.lock m;
          decr remaining;
          if !remaining = 0 then Condition.signal all_done;
          Mutex.unlock m))
    reqs;
  Mutex.lock m;
  while !remaining > 0 do
    Condition.wait all_done m
  done;
  Mutex.unlock m;
  Array.to_list
    (Array.map (function Some r -> r | None -> assert false) out)
