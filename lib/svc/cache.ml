type 'v node = {
  nkey : Key.t;
  mutable value : 'v;
  mutable prev : 'v node option;
  mutable next : 'v node option;
}

type 'v shard = {
  m : Mutex.t;
  tbl : (Key.t, 'v node) Hashtbl.t;
  mutable head : 'v node option;  (* most recently used *)
  mutable tail : 'v node option;  (* least recently used *)
  mutable size : int;
  cap : int;
}

(* Optional durable second tier: a memory miss falls through to the
   store, a decoded payload is promoted into memory, and every insert is
   written behind to the log.  The codec lives with the tier because the
   cache is polymorphic and the store speaks strings. *)
type 'v tier = {
  t_store : Store.t;
  t_encode : 'v -> string;
  t_decode : string -> 'v option;
}

type 'v t = {
  shards : 'v shard array;
  hits : Obs.Counter.t;
  misses : Obs.Counter.t;
  evictions : Obs.Counter.t;
  mutable tier : 'v tier option;
}

let create ?(shards = 8) ~capacity ~name () =
  if capacity <= 0 then invalid_arg "Svc.Cache.create: capacity must be > 0";
  let shards = max 1 shards in
  let per_shard = (capacity + shards - 1) / shards in
  {
    shards =
      Array.init shards (fun _ ->
          {
            m = Mutex.create ();
            tbl = Hashtbl.create 16;
            head = None;
            tail = None;
            size = 0;
            cap = per_shard;
          });
    hits = Obs.Counter.make (Printf.sprintf "svc.cache.%s.hits" name);
    misses = Obs.Counter.make (Printf.sprintf "svc.cache.%s.misses" name);
    evictions = Obs.Counter.make (Printf.sprintf "svc.cache.%s.evictions" name);
    tier = None;
  }

let attach_store t ~store ~encode ~decode =
  if Option.is_some t.tier then
    invalid_arg "Svc.Cache.attach_store: tier already attached";
  t.tier <- Some { t_store = store; t_encode = encode; t_decode = decode }

let store t = Option.map (fun tier -> tier.t_store) t.tier

let shard_of t k = t.shards.(Key.hash k mod Array.length t.shards)

(* List surgery below runs under the shard mutex. *)

let unlink sh n =
  (match n.prev with Some p -> p.next <- n.next | None -> sh.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> sh.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front sh n =
  n.next <- sh.head;
  n.prev <- None;
  (match sh.head with Some h -> h.prev <- Some n | None -> sh.tail <- Some n);
  sh.head <- Some n

let locked sh f =
  Mutex.lock sh.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.m) f

(* Memory insert without touching the store tier — shared by [add] and
   the disk-hit promotion path (which must not re-append the record it
   just read). *)
let add_mem t k v =
  let sh = shard_of t k in
  locked sh (fun () ->
      match Hashtbl.find_opt sh.tbl k with
      | Some n ->
          n.value <- v;
          unlink sh n;
          push_front sh n
      | None ->
          let n = { nkey = k; value = v; prev = None; next = None } in
          Hashtbl.replace sh.tbl k n;
          push_front sh n;
          sh.size <- sh.size + 1;
          if sh.size > sh.cap then begin
            match sh.tail with
            | Some lru ->
                unlink sh lru;
                Hashtbl.remove sh.tbl lru.nkey;
                sh.size <- sh.size - 1;
                Obs.Counter.incr t.evictions
            | None -> assert false
          end)

let find t k =
  let sh = shard_of t k in
  let in_mem =
    locked sh (fun () ->
        match Hashtbl.find_opt sh.tbl k with
        | Some n ->
            unlink sh n;
            push_front sh n;
            Obs.Counter.incr t.hits;
            Some n.value
        | None ->
            Obs.Counter.incr t.misses;
            None)
  in
  match (in_mem, t.tier) with
  | (Some _ as hit), _ -> hit
  | None, None -> None
  | None, Some tier -> (
      (* Read-through outside the shard lock: the store has its own
         locks and a disk read must not block the hot memory path. *)
      match Option.bind (Store.find tier.t_store k) tier.t_decode with
      | None -> None
      | Some v as hit ->
          add_mem t k v;
          hit)

let add t k v =
  add_mem t k v;
  match t.tier with
  | None -> ()
  | Some tier ->
      (* Skip re-appending a key the log already holds (memory eviction
         followed by recompute would otherwise grow the log forever); a
         racing duplicate append is harmless — last record wins. *)
      if not (Store.mem tier.t_store k) then
        Store.add tier.t_store k (tier.t_encode v)

let length t =
  Array.fold_left
    (fun acc sh -> acc + locked sh (fun () -> sh.size))
    0 t.shards

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let stats (t : 'v t) =
  {
    hits = Obs.Counter.value t.hits;
    misses = Obs.Counter.value t.misses;
    evictions = Obs.Counter.value t.evictions;
    size = length t;
    capacity =
      Array.fold_left (fun acc sh -> acc + sh.cap) 0 t.shards;
  }
