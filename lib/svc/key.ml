type t = string

let equal = String.equal
let compare = String.compare
let hash (k : t) = Hashtbl.hash k
let to_string (k : t) = k
let of_hex (s : string) : t = s

(* Alpha-rename loop indices to position-derived names ($0, $1, … in
   pre-order), respecting shadowing: an inner loop reusing an outer index
   name rebinds it for its own body only.  Bounds of a loop are renamed in
   the enclosing scope (the index is not in scope in its own bounds). *)
let canonical prog =
  let prog = Loopir.Normalize.unit_strides prog in
  let counter = ref 0 in
  let rn_expr env e =
    Loopir.Ast.map_expr
      (function
        | Loopir.Ast.Var v as e -> (
            match List.assoc_opt v env with
            | Some fresh -> Loopir.Ast.Var fresh
            | None -> e)
        | e -> e)
      e
  in
  let rec rn_stmt env = function
    | Loopir.Ast.Assign ((a, subs), rhs) ->
        Loopir.Ast.Assign
          ((a, List.map (rn_expr env) subs), rn_expr env rhs)
    | Loopir.Ast.Loop l ->
        let lo = rn_expr env l.Loopir.Ast.lo
        and hi = rn_expr env l.Loopir.Ast.hi in
        let fresh = Printf.sprintf "$%d" !counter in
        incr counter;
        let env = (l.Loopir.Ast.index, fresh) :: env in
        Loopir.Ast.Loop
          {
            Loopir.Ast.index = fresh;
            lo;
            hi;
            step = l.Loopir.Ast.step;
            body = List.map (rn_stmt env) l.Loopir.Ast.body;
          }
  in
  {
    Loopir.Ast.name = "";
    params = prog.Loopir.Ast.params;
    body = List.map (rn_stmt []) prog.Loopir.Ast.body;
  }

let canonical_string prog = Loopir.Pretty.program_to_string (canonical prog)

let of_request ?strategy ?(extra = []) ~params prog =
  let c = canonical prog in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Loopir.Pretty.program_to_string c);
  Buffer.add_string buf "\nparams:";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s=%d;" k v))
    (List.filter (fun (k, _) -> List.mem k c.Loopir.Ast.params) params
    |> List.sort (fun (a, _) (b, _) -> String.compare a b));
  Buffer.add_string buf "\nstrategy:";
  Buffer.add_string buf
    (match strategy with
    | None -> "auto"
    | Some s -> Pipeline.Plan.strategy_name s);
  List.iter
    (fun e ->
      Buffer.add_char buf '\n';
      Buffer.add_char buf '+';
      Buffer.add_string buf e)
    extra;
  (* 128-bit FNV-1a over the canonical request text; the digest discipline
     lives in Numeric.Digest, shared with the presburger hash-cons layer. *)
  Numeric.Digest.(to_hex (of_string (Buffer.contents buf)))
