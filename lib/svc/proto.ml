module Json = Pipeline.Json

type source = Src of string | Prog of Loopir.Ast.program
type mode = Run | Classify | Metrics | Health

let introspective = function
  | Metrics | Health -> true
  | Run | Classify -> false

type request = {
  id : string;
  name : string;
  source : source;
  params : (string * int) list;
  strategy : Pipeline.Plan.strategy option;
  threads : int option;
  mode : mode;
  survey : bool;
  deadline_s : float option;
}

let request ?(params = []) ?strategy ?threads ?(mode = Run) ?(survey = false)
    ?deadline_s ~id ~name source =
  { id; name; source; params; strategy; threads; mode; survey; deadline_s }

type survey = { cls : string; coupled : bool; via : string }

type failure =
  | Bad_request of string
  | Pipeline_error of { stage : string; label : string; message : string }
  | Deadline of { limit_s : float; elapsed_s : float }
  | Panic of string
  | Overloaded of { queue_depth : int; queue_capacity : int }
  | Draining

let failure_kind = function
  | Bad_request _ -> "bad-request"
  | Pipeline_error _ -> "pipeline"
  | Deadline _ -> "deadline"
  | Panic _ -> "panic"
  | Overloaded _ -> "overloaded"
  | Draining -> "drain"

let failure_message = function
  | Bad_request m | Panic m -> m
  | Pipeline_error { stage; message; _ } ->
      Printf.sprintf "%s: %s" stage message
  | Deadline { limit_s; elapsed_s } ->
      Printf.sprintf "deadline %.3fs exceeded (elapsed %.3fs)" limit_s
        elapsed_s
  | Overloaded { queue_depth; queue_capacity } ->
      Printf.sprintf
        "server overloaded: request shed (queue %d/%d full); retry with \
         backoff"
        queue_depth queue_capacity
  | Draining -> "server draining: not accepting new requests"

type body =
  | Done of {
      strategy : string option;
      describe : string option;
      survey : survey option;
      report : Pipeline.Report.t option;
    }
  | Stats of { prometheus : string; snapshot : Json.t }
  | Healthy of { ok : bool; detail : Json.t }
  | Failed of failure

type response = {
  id : string;
  trace : string;
  cached : bool;
  queue_s : float;
  run_s : float;
  body : body;
}

let ok r = match r.body with Failed _ -> false | _ -> true

(* ---- JSON ------------------------------------------------------------ *)

type parse_failure = { line_id : string option; message : string }

let mode_name = function
  | Run -> "run"
  | Classify -> "classify"
  | Metrics -> "metrics"
  | Health -> "health"

let request_to_json (r : request) =
  let opt l = List.filter_map (fun x -> x) l in
  Json.Obj
    (opt
       [
         Some ("id", Json.Str r.id);
         Some ("name", Json.Str r.name);
         (match r.source with
         | Src "" when introspective r.mode -> None
         | Src s -> Some ("src", Json.Str s)
         | Prog p ->
             Some ("src", Json.Str (Loopir.Pretty.program_to_string p)));
         Some
           ( "params",
             Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.params) );
         Option.map
           (fun s ->
             ("strategy", Json.Str (Pipeline.Plan.strategy_name s)))
           r.strategy;
         Option.map (fun t -> ("threads", Json.Int t)) r.threads;
         (if r.mode = Run then None
          else Some ("mode", Json.Str (mode_name r.mode)));
         (if r.survey then Some ("survey", Json.Bool true) else None);
         Option.map (fun d -> ("deadline_s", Json.Float d)) r.deadline_s;
       ])

let ( let* ) = Result.bind

let request_of_json j =
  let str k =
    match Json.member k j with
    | Some (Json.Str s) -> Ok s
    | Some _ -> Error (Printf.sprintf "%S must be a string" k)
    | None -> Error (Printf.sprintf "missing required field %S" k)
  in
  let* id =
    Result.map_error (fun message -> { line_id = None; message }) (str "id")
  in
  let fail message = Error { line_id = Some id; message } in
  let wrap = function Ok v -> Ok v | Error m -> fail m in
  let* mode =
    match Json.member "mode" j with
    | None -> Ok Run
    | Some (Json.Str "run") -> Ok Run
    | Some (Json.Str "classify") -> Ok Classify
    | Some (Json.Str "metrics") -> Ok Metrics
    | Some (Json.Str "health") -> Ok Health
    | Some _ ->
        fail "\"mode\" must be \"run\", \"classify\", \"metrics\" or \"health\""
  in
  (* Introspective requests have no program: name/src become optional. *)
  let* name =
    match (Json.member "name" j, introspective mode) with
    | None, true -> Ok (mode_name mode)
    | _ -> wrap (str "name")
  in
  let* src =
    match (Json.member "src" j, introspective mode) with
    | None, true -> Ok ""
    | _ -> wrap (str "src")
  in
  let* params =
    match Json.member "params" j with
    | None -> Ok []
    | Some (Json.Obj fields) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (k, Json.Int v) :: rest -> go ((k, v) :: acc) rest
          | (k, _) :: _ ->
              fail (Printf.sprintf "params.%s must be an integer" k)
        in
        go [] fields
    | Some _ -> fail "\"params\" must be an object of integers"
  in
  let* strategy =
    match Json.member "strategy" j with
    | None -> Ok None
    | Some (Json.Str s) -> (
        match Pipeline.Plan.strategy_of_string s with
        | Some st -> Ok (Some st)
        | None -> fail (Printf.sprintf "unknown strategy %S" s))
    | Some _ -> fail "\"strategy\" must be a string"
  in
  let* threads =
    match Json.member "threads" j with
    | None -> Ok None
    | Some (Json.Int t) when t >= 1 -> Ok (Some t)
    | Some _ -> fail "\"threads\" must be an integer >= 1"
  in
  let* survey =
    match Json.member "survey" j with
    | None -> Ok false
    | Some (Json.Bool b) -> Ok b
    | Some _ -> fail "\"survey\" must be a boolean"
  in
  let* deadline_s =
    match Json.member "deadline_s" j with
    | None -> Ok None
    | Some (Json.Float f) -> Ok (Some f)
    | Some (Json.Int n) -> Ok (Some (float_of_int n))
    | Some _ -> fail "\"deadline_s\" must be a number"
  in
  Ok
    {
      id;
      name;
      source = Src src;
      params;
      strategy;
      threads;
      mode;
      survey;
      deadline_s;
    }

let request_of_line line =
  match Json.parse line with
  | Error m -> Error { line_id = None; message = "not valid JSON: " ^ m }
  | Ok (Json.Obj _ as j) -> request_of_json j
  | Ok _ -> Error { line_id = None; message = "request must be a JSON object" }

let survey_json s =
  Json.Obj
    [
      ("class", Json.Str s.cls);
      ("coupled", Json.Bool s.coupled);
      ("via", Json.Str s.via);
    ]

let response_to_json r =
  let common =
    ("id", Json.Str r.id)
    :: (if r.trace = "" then [] else [ ("trace", Json.Str r.trace) ])
    @ [
        ( "status",
          Json.Str (match r.body with Failed _ -> "error" | _ -> "ok") );
        ("cached", Json.Bool r.cached);
        ("queue_seconds", Json.Float r.queue_s);
        ("run_seconds", Json.Float r.run_s);
      ]
  in
  let rest =
    match r.body with
    | Stats { prometheus; snapshot } ->
        [ ("prometheus", Json.Str prometheus); ("metrics", snapshot) ]
    | Healthy { ok; detail } ->
        [ ("healthy", Json.Bool ok); ("health", detail) ]
    | Done { strategy; describe; survey; report } ->
        List.filter_map
          (fun x -> x)
          [
            Option.map (fun s -> ("strategy", Json.Str s)) strategy;
            Option.map (fun d -> ("describe", Json.Str d)) describe;
            Option.map (fun s -> ("survey", survey_json s)) survey;
            Option.map
              (fun rep -> ("report", Pipeline.Report.to_json rep))
              report;
          ]
    | Failed f ->
        [
          ("kind", Json.Str (failure_kind f));
          ("error", Json.Str (failure_message f));
        ]
        @ (match f with
          | Pipeline_error { stage; label; _ } ->
              [ ("stage", Json.Str stage); ("label", Json.Str label) ]
          | Overloaded { queue_depth; queue_capacity } ->
              [
                ("queue_depth", Json.Int queue_depth);
                ("queue_capacity", Json.Int queue_capacity);
              ]
          | _ -> [])
  in
  Json.Obj (common @ rest)

let response_to_line r = Json.to_string (response_to_json r)

let error_response ?(id = "?") ?(trace = "") ?(queue_s = 0.0) ?(run_s = 0.0) f
    =
  { id; trace; cached = false; queue_s; run_s; body = Failed f }
