(** Durable content-addressed payload store: an append-only,
    checksummed, per-shard log under one directory.

    The store is the disk tier below {!Cache}: payloads (serialized
    plan/report values) are keyed by {!Key} digest, appended to
    [shard-NN.log] inside the store directory, and indexed in memory.
    Because keys are content hashes there is nothing to invalidate — a
    key maps to one value forever; a duplicate append simply supersedes
    the earlier record (last record wins at recovery).  A store
    directory is self-contained: it can be rsync'd to another replica or
    reopened by a later process, and the pinned {!Key} digest format
    makes it double as a cross-version compatibility check.

    {b Record layout} (all integers little-endian):

    {v magic "RPS1" | key_len u32 | payload_len u32 |
   digest 16B (two FNV-1a lanes over len-framed key+payload) |
   key bytes | payload bytes v}

    {b Recovery rules}: on open, each shard log is scanned from the
    front; a record is accepted only if the magic matches, the lengths
    are sane, the bytes are all present and the recomputed
    {!Numeric.Digest} equals the stored one.  The first violation —
    a torn tail from a crash mid-append, or any corruption — truncates
    the file at the last good record (append-only logs have no valid
    data after a bad record), counts the dropped bytes in
    [svc.store.truncated_bytes], and every accepted record rebuilds the
    in-memory index ([svc.store.recovered]).

    {b Write-behind}: {!add} buffers the record in memory (immediately
    readable) and appends to the log when the shard has [flush_every]
    pending records, on {!flush}, or at {!close}.  A crash between
    {!add} and the next flush loses only those cache entries — they are
    recomputable by definition.

    Counters: [svc.store.{hits,misses,appends,flushes,recovered}] and
    [svc.store.truncated_bytes], all visible in {!Obs.Metrics}
    snapshots and the service's [metrics] op. *)

type t

val open_dir : ?shards:int -> ?flush_every:int -> string -> t
(** [open_dir dir] creates [dir] (one level) if missing, then opens or
    recovers [shards] (default 8) shard logs inside it.  [flush_every]
    (default 32) is the per-shard pending-record count that triggers an
    automatic append.  @raise Sys_error / [Unix.Unix_error] when the
    directory cannot be created or a log cannot be opened. *)

val find : t -> Key.t -> string option
(** Payload for a key, from the pending buffer or the log.  Counted in
    [svc.store.hits]/[svc.store.misses]. *)

val add : t -> Key.t -> string -> unit
(** Buffer a record for append (write-behind); immediately visible to
    {!find}.  Re-adding a key supersedes the old payload. *)

val mem : t -> Key.t -> bool
(** Index probe without reading the payload (does not move counters). *)

val flush : t -> unit
(** Append every pending record to its shard log.  Not fsync'd — the
    data is in the OS page cache; {!close} flushes and fsyncs. *)

val close : t -> unit
(** {!flush}, fsync and close every shard log.  Idempotent; {!find} and
    {!add} raise [Invalid_argument] afterwards. *)

val entries : t -> int
(** Distinct keys currently indexed (pending + on disk). *)

val dir : t -> string

type recovery = {
  recovered : int;  (** records accepted at {!open_dir} *)
  truncated_bytes : int;  (** bytes dropped by torn-tail truncation *)
}

val recovery : t -> recovery
(** What the last {!open_dir} recovery found (zeros for a fresh dir). *)
