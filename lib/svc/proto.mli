(** JSONL request/response records for the analysis service.

    One request per line:

    {v {"id":"r1","name":"ex1","src":"DO i = 1, n\n  ...\nENDDO",
    "params":{"n":30},"strategy":"rec","threads":2,"mode":"run",
    "survey":true,"deadline_s":2.5} v}

    [id], [name] and [src] are required ([strategy], [threads], [mode],
    [survey], [deadline_s] optional); programmatic clients may pass an
    already-parsed program instead of source text.  Introspective modes
    ([{"id":"m1","mode":"metrics"}], [{"id":"h1","mode":"health"}]) need
    only [id].  One response per line: [{"id", "trace", "status": "ok" |
    "error", "cached", timing, …}] with the plan/report payload, the
    telemetry/health payload, or a typed error record — a malformed
    request produces an error {e record}, never a crash. *)

type source =
  | Src of string  (** mini-Fortran source text, parsed by the worker *)
  | Prog of Loopir.Ast.program  (** pre-parsed (library clients) *)

type mode =
  | Run  (** full pipeline: classify → … → execute, returns a report *)
  | Classify
      (** survey classification only (dependence uniformity + coupled
          subscripts); no schedule is built or executed *)
  | Metrics
      (** live-telemetry snapshot: Prometheus text + JSON over the [Obs]
          registries and windowed quantiles; no program is analyzed *)
  | Health
      (** service liveness: pool alive, queue headroom, cache shards
          responsive *)

val mode_name : mode -> string
(** ["run"], ["classify"], ["metrics"], ["health"]. *)

val introspective : mode -> bool
(** [true] for {!Metrics}/{!Health} — requests that carry no program
    ([name]/[src] optional in the JSON form) and are never cached. *)

type request = {
  id : string;
  name : string;
  source : source;
  params : (string * int) list;
  strategy : Pipeline.Plan.strategy option;
  threads : int option;  (** overrides the service default *)
  mode : mode;
  survey : bool;  (** attach the survey block to a [Run] response too *)
  deadline_s : float option;  (** overrides the service default *)
}

val request :
  ?params:(string * int) list ->
  ?strategy:Pipeline.Plan.strategy ->
  ?threads:int ->
  ?mode:mode ->
  ?survey:bool ->
  ?deadline_s:float ->
  id:string ->
  name:string ->
  source ->
  request
(** Smart constructor with the JSON defaults ([mode = Run],
    [survey = false]). *)

type survey = {
  cls : string;  (** {!Depend.Distance.class_to_string} *)
  coupled : bool;  (** some reference couples a loop index *)
  via : string;  (** ["exact"] or ["instance-graph"] *)
}

type failure =
  | Bad_request of string  (** request line or program source malformed *)
  | Pipeline_error of { stage : string; label : string; message : string }
      (** a pipeline stage failed with a typed {!Diag.error} *)
  | Deadline of { limit_s : float; elapsed_s : float }
  | Panic of string  (** unexpected exception, isolated by the worker *)
  | Overloaded of { queue_depth : int; queue_capacity : int }
      (** the bounded pool queue was full and the request was shed
          (network server load shedding); the record carries the queue
          state so clients can size their backoff *)
  | Draining
      (** the server is in graceful shutdown: in-flight requests finish,
          new ones get this record *)

val failure_kind : failure -> string
(** ["bad-request"], ["pipeline"], ["deadline"], ["panic"],
    ["overloaded"], ["drain"]. *)

val failure_message : failure -> string

type body =
  | Done of {
      strategy : string option;
      describe : string option;
      survey : survey option;
      report : Pipeline.Report.t option;  (** [None] in [Classify] mode *)
    }
  | Stats of {
      prometheus : string;  (** {!Obs.Export.prometheus} text *)
      snapshot : Pipeline.Json.t;  (** parsed {!Obs.Export.json_string} *)
    }  (** answer to a {!Metrics} request *)
  | Healthy of { ok : bool; detail : Pipeline.Json.t }
      (** answer to a {!Health} request; the op itself succeeded even
          when [ok = false] *)
  | Failed of failure

type response = {
  id : string;
  trace : string;
      (** the {!Obs.Ctx} trace id the request ran under ([""] when it
          never reached the service, e.g. parse-failure records) *)
  cached : bool;
  queue_s : float;  (** submit → dequeue *)
  run_s : float;  (** dequeue → response *)
  body : body;
}

val ok : response -> bool

(* ---- JSON ------------------------------------------------------------ *)

type parse_failure = {
  line_id : string option;
      (** the record's [id] when the line parsed far enough to have one *)
  message : string;
}

val request_of_line : string -> (request, parse_failure) result
(** Parse one JSONL request line (strict {!Pipeline.Json.parse}). *)

val request_to_json : request -> Pipeline.Json.t
(** Inverse of {!request_of_line} for corpus generators and tests
    ([Prog] sources are pretty-printed into [src]). *)

val response_to_json : response -> Pipeline.Json.t
val response_to_line : response -> string
(** Compact single-line rendering (the JSONL response format). *)

val error_response :
  ?id:string ->
  ?trace:string ->
  ?queue_s:float ->
  ?run_s:float ->
  failure ->
  response
(** A response record for a request that never reached a worker (e.g. an
    unparsable line); [id] defaults to ["?"], [trace] to [""]. *)
