(** Content-addressed request keys for the analysis service.

    Two requests share a key exactly when the pipeline would do the same
    work for both: the key is a hash of the {e canonicalized} program
    (unit strides via {!Loopir.Normalize.unit_strides}, loop indices
    alpha-renamed to position-derived names, program name dropped)
    together with the parameter bindings the program actually uses, the
    forced strategy (if any), and any extra service-level facets (thread
    count, request mode, …).

    Because the key is computed over the parsed AST, whitespace, comments
    and statement formatting of the source never affect it; because loop
    indices are alpha-renamed, neither does the choice of index names.
    Parameter {e names} do matter — they are bound by name in requests —
    as do subscript expressions, bounds, and statement order. *)

type t

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** For shard selection; deterministic within a process. *)

val to_string : t -> string
(** 32 lowercase hex digits (a 128-bit FNV-1a digest). *)

val of_hex : string -> t
(** Inverse of {!to_string} — how {!Store} recovery turns the key bytes
    persisted in its shard logs back into keys.  No validation: the
    store's record checksum already vouches for the bytes. *)

val canonical : Loopir.Ast.program -> Loopir.Ast.program
(** The canonical form hashed by {!of_request}: unit strides, loop
    indices renamed to [$0, $1, …] in pre-order, name dropped.  Exposed
    for tests and debugging. *)

val canonical_string : Loopir.Ast.program -> string
(** Pretty-printed {!canonical} — the program part of the hashed
    material. *)

val of_request :
  ?strategy:Pipeline.Plan.strategy ->
  ?extra:string list ->
  params:(string * int) list ->
  Loopir.Ast.program ->
  t
(** Key of one analysis request.  Only bindings for parameters the
    program mentions enter the hash (extra bindings cannot defeat
    caching), sorted by name.  [extra] facets are hashed in order. *)
