(** A fixed pool of domains draining a bounded work queue.

    [submit] applies backpressure: when the queue is at capacity it
    blocks the caller until a worker frees a slot, so a producer can
    stream an arbitrarily large batch without unbounded buffering.
    {!shutdown} is graceful: it stops admissions, lets the workers drain
    every job already queued, and joins them.

    Jobs are [unit -> unit] thunks; a job that raises does {e not} kill
    its worker — the exception is swallowed (counted in the
    [svc.pool.panics] counter and logged as a [Warn] event).  Request
    code wanting the exception as data must catch it itself (the service
    layer turns panics into typed error responses before they reach the
    pool).  Queue depth is observed into the [svc.pool.queue_depth]
    histogram at every submit. *)

type t

exception Closed
(** Raised by {!submit} after {!shutdown} started. *)

val create : ?queue_capacity:int -> ?events:Obs.Event.t -> domains:int -> unit -> t
(** Spawns [domains] (≥ 1) workers sharing a queue of at most
    [queue_capacity] (default 64, ≥ 1) pending jobs.  [events] receives
    the pool's lifecycle events (default: none). *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue one job, blocking while the queue is full.  The submitter's
    {!Obs.Ctx} (if any) is captured with the job and installed around it
    on the worker — the dequeue event and everything the job emits carry
    the originating request's trace id.  @raise Closed once {!shutdown}
    has been called. *)

val try_submit : t -> (unit -> unit) -> bool
(** Non-blocking {!submit}: [false] when the queue is at capacity or the
    pool is shutting down, [true] when the job was enqueued.  The
    network server's load-shedding primitive — a [false] becomes a typed
    [overloaded] error record instead of backpressure on the socket
    reader. *)

val shutdown : t -> unit
(** Stop accepting jobs, drain the queue, join the workers.  Idempotent;
    concurrent submitters blocked on a full queue are released with
    {!Closed}. *)

val domains : t -> int

val capacity : t -> int
(** The configured queue capacity. *)

val queue_length : t -> int
(** Jobs currently queued (point-in-time; the health op's headroom
    signal). *)

val alive : t -> bool
(** [true] while the pool accepts work: not shut down and workers
    running. *)
