(** The concurrent analysis service: {!Pipeline.Driver} behind a
    content-addressed result cache and a domain pool.

    Requests are keyed by {!Key.of_request} (canonicalized program +
    bindings + strategy + execution facets); a hit returns the cached
    plan/report payload without re-running any pipeline stage.  Worker
    errors are isolated per request: parse failures, typed pipeline
    errors, deadline overruns and unexpected exceptions all become error
    {e records} in the response stream — a batch never dies on one bad
    nest.

    Deadlines are cooperative: a request found expired when dequeued is
    failed without running, and one that finishes past its deadline has
    its (complete) result discarded in favor of a deadline error — a
    running pipeline stage is never interrupted mid-flight.

    Every request runs under an {!Obs.Ctx} (minted at submit, propagated
    through the pool and the executor domains), so all spans/events it
    causes carry its trace id, which is also stamped into the response.
    Failed requests (deadline/pipeline/panic) dump their flight-recorder
    history to [config.flight_dir]; {!Proto.Metrics}/{!Proto.Health}
    requests are answered inline from the [Obs] registries and the
    rolling {!Obs.Window} without touching the cache. *)

type config = {
  domains : int;  (** worker domains draining the queue *)
  queue_capacity : int;  (** bounded submit queue (backpressure) *)
  cache_capacity : int;  (** total cached results (see {!Cache.create}) *)
  cache_shards : int;
  threads : int;  (** default execution domains per request *)
  check : bool;  (** validate legality + sequential equivalence *)
  measure : bool;
  deadline_s : float option;  (** default per-request deadline *)
  exec_engine : Runtime.Exec.engine;
      (** schedule execution engine for [Run] requests — [`Compiled],
          [`Bytecode] or [`Interp].  Part of the cache key (the [exec=]
          facet), so results produced by different engines never alias
          even though they are bit-identical by construction. *)
  sink : Obs.Sink.t;  (** spans: submit→dequeue→analyze→respond *)
  events : Obs.Event.t;  (** decision + service lifecycle events *)
  slow_ms : float option;
      (** log any request slower than this to stderr with stage timings
          and the presburger-memo delta it caused *)
  flight : bool;  (** enable the {!Obs.Flight} recorder at {!create} *)
  flight_dir : string option;
      (** where failed requests (deadline/pipeline/panic) dump their
          flight-recorder JSONL postmortems; [None] = no dumps *)
  window_s : float;  (** aggregation window period (see {!Obs.Window}) *)
  windows : int;  (** retained windows *)
  store_dir : string option;
      (** durable second cache tier: a {!Store} opened under this
          directory at {!create} and attached below the in-memory
          {!Cache} (read-through / write-behind); [None] = memory only *)
  store_flush_every : int;
      (** write-behind threshold forwarded to {!Store.open_dir} *)
}

val default_config : config
(** 4 domains, queue 64, cache 512 over 8 shards, 2 threads, check and
    measure on, no deadline, compiled execution, no-op sink and event
    log; flight recorder on (no dump dir), no slow-request log, 60
    windows of 1s; no store. *)

type t

val create : ?config:config -> unit -> t
(** Spawns the worker pool (and opens the durable store when
    [config.store_dir] is set); call {!shutdown} when done. *)

val run_one : t -> Proto.request -> Proto.response
(** Process one request synchronously on the calling domain, sharing the
    service cache ([recpart serve]). *)

val batch : t -> Proto.request list -> Proto.response list
(** Submit every request to the pool and wait for all responses, in
    request order.  Duplicate (content-equal) requests hit the cache
    after the first completes. *)

type admission =
  | Accepted
  | Shed of { queue_depth : int; queue_capacity : int }
      (** the bounded pool queue was full; the request was {e not}
          enqueued and [k] will never be called *)

val submit : t -> Proto.request -> k:(Proto.response -> unit) -> admission
(** Asynchronous single-request admission for the network server.
    Introspective ops ({!Proto.Metrics}/{!Proto.Health}) are answered
    inline — [k] runs on the calling thread before [submit] returns.
    Run/Classify requests are handed to the pool without blocking: [k]
    fires later on a worker domain (so it must be thread-safe), or the
    call returns {!Shed} when the queue is at capacity — the server's
    load-shedding signal, rendered as a typed [overloaded] record.  [k]
    must not raise; an exception from it is counted as a pool panic. *)

val cache_stats : t -> Cache.stats

val store : t -> Store.t option
(** The durable tier, when [config.store_dir] was set. *)

val flush_store : t -> unit
(** Force the store's write-behind buffers to disk (no-op without a
    store).  The server calls this on graceful drain. *)

val pool_capacity : t -> int
val pool_queue_length : t -> int
(** Queue state for rendering {!Shed} into an [overloaded] record and
    for the health op's headroom signal. *)

val register_gauges : t -> (unit -> (string * float) list) -> unit
(** Add gauge providers sampled by the [metrics] op's export (the
    network server registers its connection/in-flight gauges here so
    [recpart metrics --connect] sees them). *)

val window : t -> Obs.Window.t
(** The service's rolling aggregation window (rolled from the request
    hot path; what the [metrics] op's windowed quantiles read). *)

val exec_pool : t -> Runtime.Workers.t
(** The persistent executor pool shared by every request's parallel
    phases — created once with [config.threads] domains at {!create}
    (its spawn count scales with the pool size, never with the request
    count). *)

val shutdown : t -> unit
(** Drain in-flight work, join the workers and shut the executor pool
    down.  Idempotent. *)
