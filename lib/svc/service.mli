(** The concurrent analysis service: {!Pipeline.Driver} behind a
    content-addressed result cache and a domain pool.

    Requests are keyed by {!Key.of_request} (canonicalized program +
    bindings + strategy + execution facets); a hit returns the cached
    plan/report payload without re-running any pipeline stage.  Worker
    errors are isolated per request: parse failures, typed pipeline
    errors, deadline overruns and unexpected exceptions all become error
    {e records} in the response stream — a batch never dies on one bad
    nest.

    Deadlines are cooperative: a request found expired when dequeued is
    failed without running, and one that finishes past its deadline has
    its (complete) result discarded in favor of a deadline error — a
    running pipeline stage is never interrupted mid-flight.

    Every request runs under an {!Obs.Ctx} (minted at submit, propagated
    through the pool and the executor domains), so all spans/events it
    causes carry its trace id, which is also stamped into the response.
    Failed requests (deadline/pipeline/panic) dump their flight-recorder
    history to [config.flight_dir]; {!Proto.Metrics}/{!Proto.Health}
    requests are answered inline from the [Obs] registries and the
    rolling {!Obs.Window} without touching the cache. *)

type config = {
  domains : int;  (** worker domains draining the queue *)
  queue_capacity : int;  (** bounded submit queue (backpressure) *)
  cache_capacity : int;  (** total cached results (see {!Cache.create}) *)
  cache_shards : int;
  threads : int;  (** default execution domains per request *)
  check : bool;  (** validate legality + sequential equivalence *)
  measure : bool;
  deadline_s : float option;  (** default per-request deadline *)
  exec_engine : Runtime.Exec.engine;
      (** schedule execution engine for [Run] requests (part of the cache
          key) *)
  sink : Obs.Sink.t;  (** spans: submit→dequeue→analyze→respond *)
  events : Obs.Event.t;  (** decision + service lifecycle events *)
  slow_ms : float option;
      (** log any request slower than this to stderr with stage timings
          and the presburger-memo delta it caused *)
  flight : bool;  (** enable the {!Obs.Flight} recorder at {!create} *)
  flight_dir : string option;
      (** where failed requests (deadline/pipeline/panic) dump their
          flight-recorder JSONL postmortems; [None] = no dumps *)
  window_s : float;  (** aggregation window period (see {!Obs.Window}) *)
  windows : int;  (** retained windows *)
}

val default_config : config
(** 4 domains, queue 64, cache 512 over 8 shards, 2 threads, check and
    measure on, no deadline, compiled execution, no-op sink and event
    log; flight recorder on (no dump dir), no slow-request log, 60
    windows of 1s. *)

type t

val create : ?config:config -> unit -> t
(** Spawns the worker pool; call {!shutdown} when done. *)

val run_one : t -> Proto.request -> Proto.response
(** Process one request synchronously on the calling domain, sharing the
    service cache ([recpart serve]). *)

val batch : t -> Proto.request list -> Proto.response list
(** Submit every request to the pool and wait for all responses, in
    request order.  Duplicate (content-equal) requests hit the cache
    after the first completes. *)

val cache_stats : t -> Cache.stats

val window : t -> Obs.Window.t
(** The service's rolling aggregation window (rolled from the request
    hot path; what the [metrics] op's windowed quantiles read). *)

val exec_pool : t -> Runtime.Workers.t
(** The persistent executor pool shared by every request's parallel
    phases — created once with [config.threads] domains at {!create}
    (its spawn count scales with the pool size, never with the request
    count). *)

val shutdown : t -> unit
(** Drain in-flight work, join the workers and shut the executor pool
    down.  Idempotent. *)
