type t = { name : string; cell : int Atomic.t }

(* The registry is append-only and tiny (one entry per instrumentation
   site); a CAS loop keeps it lock-free for the rare concurrent [make]. *)
let registry : t list Atomic.t = Atomic.make []

let make name =
  let rec go () =
    let seen = Atomic.get registry in
    match List.find_opt (fun c -> c.name = name) seen with
    | Some c -> c
    | None ->
        let c = { name; cell = Atomic.make 0 } in
        if Atomic.compare_and_set registry seen (c :: seen) then c else go ()
  in
  go ()

let incr t = ignore (Atomic.fetch_and_add t.cell 1)
let add t n = ignore (Atomic.fetch_and_add t.cell n)
let value t = Atomic.get t.cell

let snapshot () =
  Atomic.get registry
  |> List.map (fun c -> (c.name, Atomic.get c.cell))
  |> List.sort compare

let reset_all () =
  List.iter (fun c -> Atomic.set c.cell 0) (Atomic.get registry)
