(** Metric exporters — the wire formats the service's [metrics] op and
    [recpart metrics] print.

    Both renderers take a cumulative {!Metrics.t} snapshot and optionally
    a {!Window.t}, whose windowed per-histogram quantiles (p50/p90/p99
    over the last [n] periods) are appended as gauges / a ["windows"]
    block. *)

val sanitize : string -> string
(** Dotted metric names to Prometheus identifiers: every character
    outside [[A-Za-z0-9_]] becomes ['_']
    (e.g. [svc.cache.results.hits → svc_cache_results_hits]). *)

val prometheus :
  ?prefix:string ->
  ?gauges:(string * float) list ->
  ?window:Window.t ->
  Metrics.t ->
  string
(** Prometheus text exposition format (version 0.0.4): counters as
    [counter], histograms as cumulative [_bucket{le="..."}] series plus
    [_sum]/[_count], windowed quantiles as
    [<prefix>window_quantile{name="...",q="0.5|0.9|0.99"}] gauges.
    [gauges] are point-in-time values the registries do not track
    (pool queue depth, configured domain counts, …), emitted first as
    [gauge] series.  [prefix] defaults to ["recpart_"]. *)

val json_string :
  ?gauges:(string * float) list -> ?window:Window.t -> Metrics.t -> string
(** One JSON object — [{"gauges": {...}, "counters": {...},
    "histograms": {name: {count, sum, p50, p90, p99, buckets:
    [[ub, n], ...]}}, "windows": {period_s, max, closed, histograms:
    {...}}}] (["gauges"] only when given) — guaranteed to parse with
    [Pipeline.Json.parse] (obs sits below the pipeline layer, so it
    writes the text directly). *)
