(* Monotonic time.  Primary source: the CLOCK_MONOTONIC C stub shipped
   with bechamel (no allocation, immune to NTP steps).  Fallback: if the
   stub reports a frozen clock, durations degrade to Unix.gettimeofday
   forced monotone by a global high-water mark. *)

let stub_works =
  (* A monotonic clock that returns the same value twice with a sleep in
     between is not ticking (some exotic platforms stub it to 0). *)
  let a = Monotonic_clock.now () in
  let b = Monotonic_clock.now () in
  a <> 0L || b <> 0L

let hwm = Atomic.make 0L

let fallback_now_ns () =
  let rec bump candidate =
    let seen = Atomic.get hwm in
    let v = if candidate > seen then candidate else seen in
    if Atomic.compare_and_set hwm seen v then v else bump candidate
  in
  bump (Int64.of_float (Unix.gettimeofday () *. 1e9))

let now_ns () = if stub_works then Monotonic_clock.now () else fallback_now_ns ()
let now_s () = Int64.to_float (now_ns ()) *. 1e-9
let elapsed_s t0 = Int64.to_float (Int64.sub (now_ns ()) t0) *. 1e-9
let wall_s = Unix.gettimeofday
