(** Export of recorded spans.

    {!to_chrome_json} renders the Chrome [trace_event] JSON format (an
    object with a ["traceEvents"] array of complete ["ph":"X"] events,
    timestamps in microseconds) — load the file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}.  Spans become one row per domain
    ([tid]); counters, when given, are appended as ["ph":"C"] counter
    events so they plot as tracks.

    {!to_text} renders the same spans as an indented per-domain tree for
    terminals. *)

val to_chrome_json : ?metrics:Metrics.t -> ?process:string -> Sink.t -> string

val to_text : Sink.t -> string
