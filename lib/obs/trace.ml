(* The emitter writes JSON directly: obs sits below the pipeline layer,
   so it cannot use Pipeline.Json (which is also where the parser used by
   the round-trip tests lives). *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let us_of_ns ns = Int64.to_float ns /. 1e3

(* Timestamps are shifted so the earliest span starts at 0 — Chrome's UI
   shows absolute microseconds, and boot-relative values are noise. *)
let origin spans =
  List.fold_left
    (fun acc (s : Sink.span) ->
      match acc with
      | None -> Some s.Sink.start_ns
      | Some t -> Some (min t s.Sink.start_ns))
    None spans
  |> Option.value ~default:0L

let event buf ~first ~t0 (s : Sink.span) =
  if not first then Buffer.add_string buf ",\n    ";
  Buffer.add_string buf "{\"name\": ";
  escape buf s.Sink.name;
  Buffer.add_string buf ", \"cat\": \"recpart\", \"ph\": \"X\"";
  Printf.bprintf buf ", \"ts\": %.3f" (us_of_ns (Int64.sub s.Sink.start_ns t0));
  Printf.bprintf buf ", \"dur\": %.3f" (us_of_ns s.Sink.dur_ns);
  Printf.bprintf buf ", \"pid\": 0, \"tid\": %d" s.Sink.tid;
  (match s.Sink.args with
  | [] -> ()
  | args ->
      Buffer.add_string buf ", \"args\": {";
      List.iteri
        (fun k (key, v) ->
          if k > 0 then Buffer.add_string buf ", ";
          escape buf key;
          Buffer.add_string buf ": ";
          escape buf v)
        args;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let counter_event buf ~t_us name v =
  Buffer.add_string buf ",\n    {\"name\": ";
  escape buf name;
  Printf.bprintf buf
    ", \"cat\": \"recpart\", \"ph\": \"C\", \"ts\": %.3f, \"pid\": 0, \
     \"args\": {\"value\": %d}}"
    t_us v

let to_chrome_json ?metrics ?(process = "recpart") sink =
  let spans = Sink.spans sink in
  let t0 = origin spans in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"traceEvents\": [\n    ";
  Buffer.add_string buf "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"args\": {\"name\": ";
  escape buf process;
  Buffer.add_string buf "}}";
  List.iter (fun s -> event buf ~first:false ~t0 s) spans;
  (match metrics with
  | None -> ()
  | Some m ->
      let t_end =
        List.fold_left
          (fun acc (s : Sink.span) ->
            max acc (us_of_ns (Int64.sub (Int64.add s.Sink.start_ns s.Sink.dur_ns) t0)))
          0.0 spans
      in
      List.iter
        (fun (name, v) -> counter_event buf ~t_us:t_end name v)
        m.Metrics.counters);
  Buffer.add_string buf "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
  Buffer.contents buf

(* ---- text tree ------------------------------------------------------- *)

let fmt_ns ns =
  let f = Int64.to_float ns in
  if f >= 1e9 then Printf.sprintf "%8.3f s " (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%8.3f ms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%8.3f us" (f /. 1e3)
  else Printf.sprintf "%8.0f ns" f

let to_text sink =
  let spans = Sink.spans sink in
  let tids =
    List.sort_uniq compare (List.map (fun (s : Sink.span) -> s.Sink.tid) spans)
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun tid ->
      Printf.bprintf buf "domain %d\n" tid;
      List.iter
        (fun (s : Sink.span) ->
          if s.Sink.tid = tid then begin
            let indent = String.make (2 * (s.Sink.depth + 1)) ' ' in
            let label =
              match s.Sink.args with
              | [] -> s.Sink.name
              | args ->
                  s.Sink.name ^ " ["
                  ^ String.concat ", "
                      (List.map (fun (k, v) -> k ^ "=" ^ v) args)
                  ^ "]"
            in
            let pad = max 1 (46 - String.length indent - String.length label) in
            Printf.bprintf buf "%s%s%s%s\n" indent label (String.make pad ' ')
              (fmt_ns s.Sink.dur_ns)
          end)
        spans)
    tids;
  Buffer.contents buf
