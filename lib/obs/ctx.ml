type t = { id : string }

let id t = t.id
let of_id id = { id }

let seq = Atomic.make 0

(* Process tag derived from the monotonic clock at module init, so trace
   ids from different service instances don't collide when their logs are
   aggregated. *)
let origin = Int64.to_int (Clock.now_ns ()) land 0xffffff

let make () =
  { id = Printf.sprintf "t%06x-%x" origin (Atomic.fetch_and_add seq 1) }

(* Per-domain cell: the context never migrates between domains by itself —
   pools that move work across domains capture it at submit time and
   install it around the job (Svc.Pool, Runtime.Workers). *)
let key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get key)

let current_id () =
  match current () with Some c -> Some c.id | None -> None

let with_opt c f =
  let cell = Domain.DLS.get key in
  let prev = !cell in
  cell := c;
  Fun.protect ~finally:(fun () -> cell := prev) f

let with_ctx c f = with_opt (Some c) f
