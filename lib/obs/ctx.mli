(** Request-scoped context — the identity a span or event is attributed
    to.

    A context carries one unique trace id.  It lives in domain-local
    storage: {!with_ctx} installs it for the dynamic extent of a
    callback, and {!Span}/{!Event} read {!current} at record time, so
    everything emitted while a context is installed carries the request
    id without any parameter threading.

    Contexts do not cross domains by themselves.  A layer that moves
    work between domains (the service pool, the executor pool) captures
    {!current} when the job is submitted and re-installs it with
    {!with_opt} around the job body on the worker domain — that is the
    whole propagation protocol. *)

type t

val make : unit -> t
(** A fresh context with a unique trace id (unique within the process,
    and tagged with a boot-time salt so ids from different processes are
    unlikely to collide in merged logs). *)

val of_id : string -> t
(** Adopt an externally supplied trace id (e.g. from a client header). *)

val id : t -> string

val current : unit -> t option
(** The context installed on the calling domain, if any. *)

val current_id : unit -> string option

val with_ctx : t -> (unit -> 'a) -> 'a
(** Runs [f] with the context installed on this domain, restoring the
    previous one afterwards (also on exceptions). *)

val with_opt : t option -> (unit -> 'a) -> 'a
(** Like {!with_ctx} but also installs "no context" when given [None] —
    worker loops use it so a job never inherits the previous job's
    context by accident. *)
