type t = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

let zero =
  {
    minor_words = 0.0;
    promoted_words = 0.0;
    major_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
    compactions = 0;
  }

let quick () =
  let s = Gc.quick_stat () in
  {
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
  }

let diff ~before ~after =
  {
    minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    major_words = after.major_words -. before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
    compactions = after.compactions - before.compactions;
  }

let allocated_words t = t.minor_words +. t.major_words -. t.promoted_words

let is_zero t =
  t.minor_words = 0.0 && t.promoted_words = 0.0 && t.major_words = 0.0
  && t.minor_collections = 0
  && t.major_collections = 0
  && t.compactions = 0
