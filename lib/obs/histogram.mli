(** Process-wide named histograms over non-negative integers, with
    power-of-two buckets: bucket [k] counts observations [v] with
    [2^(k-1) < v ≤ 2^k] (bucket 0 counts [v ≤ 0 or v = 1]).  Observation
    is one atomic fetch-and-add per sample plus two for count/sum. *)

type t

type snap = {
  count : int;
  sum : int;
  buckets : (int * int) list;
      (** (inclusive upper bound of the bucket, samples in it); empty
          buckets omitted *)
}

val make : string -> t
(** Creates (or returns the existing) histogram with this name. *)

val observe : t -> int -> unit
(** Records one sample.  Negative values are clamped to 0 before
    anything is updated, so [count], [sum] and the bucket counters always
    describe the same (clamped) sample. *)

val snap : t -> snap
(** Point-in-time snapshot.  The counters are read individually, so a
    snapshot taken while other domains observe is not a single atomic
    cut; [snap] retries a bounded number of times until [count] is
    stable across the read.  Even when concurrent observations keep it
    unstable, the returned [count] is read {e after} the buckets — and
    since {!observe} bumps [count] before the bucket, the reported
    bucket totals never exceed the reported [count]. *)

val percentile : snap -> float -> float
(** [percentile s q] estimates the [q]-quantile ([q ∈ [0,1]], clamped) of
    the observed samples by locating the bucket holding the [q]-th sample
    and interpolating linearly inside its [(lower, upper]] range.  The
    estimate always lands in the true sample's bucket, so the relative
    error is bounded by the bucket width (2×).  [0.0] on an empty
    snapshot. *)

val snapshot : unit -> (string * snap) list
(** Every registered histogram, sorted by name. *)

val reset_all : unit -> unit
