(** Process-wide named histograms over non-negative integers, with
    power-of-two buckets: bucket [k] counts observations [v] with
    [2^(k-1) < v ≤ 2^k] (bucket 0 counts [v ≤ 0 or v = 1]).  Observation
    is one atomic fetch-and-add per sample plus two for count/sum. *)

type t

type snap = {
  count : int;
  sum : int;
  buckets : (int * int) list;
      (** (inclusive upper bound of the bucket, samples in it); empty
          buckets omitted *)
}

val make : string -> t
(** Creates (or returns the existing) histogram with this name. *)

val observe : t -> int -> unit

val snap : t -> snap

val snapshot : unit -> (string * snap) list
(** Every registered histogram, sorted by name. *)

val reset_all : unit -> unit
