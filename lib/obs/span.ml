(* Per-domain nesting depth: spans never cross domains, so a plain DLS
   counter is race-free. *)
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let with_ ?sink ~name ?(args = []) f =
  let sink = match sink with Some s -> s | None -> Sink.ambient () in
  if not (Sink.enabled sink) then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    let t0 = Clock.now_ns () in
    let finish () =
      depth := d;
      Sink.record sink
        {
          Sink.name;
          args;
          tid = (Domain.self () :> int);
          start_ns = t0;
          dur_ns = Int64.sub (Clock.now_ns ()) t0;
          depth = d;
        }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let instant ?sink ~name ?(args = []) () =
  let sink = match sink with Some s -> s | None -> Sink.ambient () in
  if Sink.enabled sink then
    Sink.record sink
      {
        Sink.name;
        args;
        tid = (Domain.self () :> int);
        start_ns = Clock.now_ns ();
        dur_ns = 0L;
        depth = !(Domain.DLS.get depth_key);
      }
