(* Per-domain nesting depth: spans never cross domains, so a plain DLS
   counter is race-free. *)
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let with_ ?sink ~name ?(args = []) f =
  let sink = match sink with Some s -> s | None -> Sink.ambient () in
  let sink_on = Sink.enabled sink in
  if not (sink_on || Flight.enabled ()) then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    let t0 = Clock.now_ns () in
    let finish () =
      depth := d;
      let dur_ns = Int64.sub (Clock.now_ns ()) t0 in
      let tid = (Domain.self () :> int) in
      (* Request attribution: a span closed while an Obs.Ctx is installed
         carries its trace id, whichever domain it ran on. *)
      let req = Ctx.current_id () in
      if sink_on then
        Sink.record sink
          {
            Sink.name;
            args =
              (match req with
              | Some id -> ("req", id) :: args
              | None -> args);
            tid;
            start_ns = t0;
            dur_ns;
            depth = d;
          };
      Flight.record
        {
          Flight.kind = "span";
          scope = "";
          name;
          req = Option.value req ~default:"";
          tid;
          t_ns = t0;
          dur_ns;
          detail = args;
        }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let instant ?sink ~name ?(args = []) () =
  let sink = match sink with Some s -> s | None -> Sink.ambient () in
  let sink_on = Sink.enabled sink in
  if sink_on || Flight.enabled () then begin
    let t0 = Clock.now_ns () in
    let tid = (Domain.self () :> int) in
    let req = Ctx.current_id () in
    if sink_on then
      Sink.record sink
        {
          Sink.name;
          args =
            (match req with Some id -> ("req", id) :: args | None -> args);
          tid;
          start_ns = t0;
          dur_ns = 0L;
          depth = !(Domain.DLS.get depth_key);
        };
    Flight.record
      {
        Flight.kind = "span";
        scope = "";
        name;
        req = Option.value req ~default:"";
        tid;
        t_ns = t0;
        dur_ns = 0L;
        detail = args;
      }
  end
