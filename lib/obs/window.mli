(** Rolling time-window aggregates over the process-wide
    {!Counter}/{!Histogram} registries.

    The registries are cumulative; a live service wants "the last few
    minutes", not "since boot".  A window keeps a ring of the last [n]
    per-period {!Metrics.diff}s plus the cumulative snapshot where the
    current period started.  {!roll_if_due} is called from the request
    hot path and costs one monotonic-clock read until a period boundary
    passes, at which point one caller (mutex-elected) snapshots the
    registries and closes the window.

    {!merged} and {!summary} fold the retained windows — including the
    in-progress one — back into a single {!Metrics.t} / per-histogram
    p50/p90/p99 view, which is what the metrics exporters render. *)

type t

type window = {
  until_ns : int64;  (** {!Clock.now_ns} when the window closed *)
  metrics : Metrics.t;  (** activity during the window (a diff) *)
}

val create : ?windows:int -> period_s:float -> unit -> t
(** A ring of [windows] (default 60, ≥ 1) periods of [period_s] (> 0)
    seconds, based at the current registry state. *)

val period_s : t -> float

val max_windows : t -> int

val roll_if_due : t -> unit
(** Closes the current window if at least one period has elapsed since it
    opened (late calls close one window, not several — the ring tracks
    activity, not wall-clock alignment).  Safe from any domain. *)

val roll : t -> unit
(** Closes the current window unconditionally (tests, section
    boundaries). *)

val closed : t -> int
(** Closed windows currently retained (≤ [max_windows]). *)

val windows : t -> window list
(** The retained closed windows, newest first. *)

val merged : t -> Metrics.t
(** All retained windows plus the in-progress one, {!Metrics.merge}d. *)

type quantiles = {
  count : int;
  sum : int;
  p50 : float;
  p90 : float;
  p99 : float;
}

val quantiles_of : Histogram.snap -> quantiles

val summary : t -> (string * quantiles) list
(** Per-histogram windowed quantiles over {!merged}, sorted by name —
    e.g. [svc.request.latency_us → {p50; p90; p99}] over the last
    [n × period_s] seconds. *)
