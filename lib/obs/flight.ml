type entry = {
  kind : string;
  scope : string;
  name : string;
  req : string;
  tid : int;
  t_ns : int64;
  dur_ns : int64;
  detail : (string * string) list;
}

(* One ring per (domain, generation): only the owning domain writes, so
   recording is plain stores — no synchronization on the hot path.
   [clear]/capacity changes bump the generation and drop the ring list;
   stale rings are recreated lazily on the next record.

   Storage is copy-in: every field of a recorded entry is copied into a
   preallocated fixed-width byte slot — timestamps as two little-endian
   int64s at the head, then length-prefixed strings and as many detail
   pairs as fit.  Nothing the caller allocated is retained, so a busy
   service does not promote per-request garbage to the major heap just
   because the recorder is on, and a record touches exactly the two
   consecutive cache lines of its slot (the arena is written as one
   sequential stream, which the hardware prefetcher hides).  The
   recorder's memory is fixed at [capacity * slot_bytes] bytes per
   domain, allocated once.  A reader decoding another domain's ring
   mid-write can see a torn slot; lengths are clamped to the slot, so
   decoding never fails, it just yields a mangled entry (the documented
   best-effort trade). *)

let slot_bytes = 128

(* slot layout: [0..7] t_ns LE, [8..15] dur_ns LE, then length-prefixed
   kind, scope, name, req, a detail-pair count byte, and the pairs *)

type ring = {
  tid : int;
  gen : int;
  cap : int;
  data : Bytes.t;  (* cap * slot_bytes *)
  mutable cursor : int;  (* next write position *)
  mutable total : int;  (* entries ever written through this ring *)
}

let on = Atomic.make false
let capacity = Atomic.make 256
let generation = Atomic.make 0
let rings : ring list Atomic.t = Atomic.make []

let enabled () = Atomic.get on

let enable ?capacity:cap () =
  (match cap with
  | None -> ()
  | Some c ->
      if c < 1 then invalid_arg "Obs.Flight.enable: capacity must be >= 1";
      if c <> Atomic.get capacity then begin
        Atomic.set capacity c;
        Atomic.incr generation;
        Atomic.set rings []
      end);
  Atomic.set on true

let disable () = Atomic.set on false

let clear () =
  Atomic.incr generation;
  Atomic.set rings []

let ring_key : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_ring () =
  let cell = Domain.DLS.get ring_key in
  match !cell with
  | Some r when r.gen = Atomic.get generation -> r
  | _ ->
      let cap = Atomic.get capacity in
      let r =
        {
          tid = (Domain.self () :> int);
          gen = Atomic.get generation;
          cap;
          data = Bytes.create (cap * slot_bytes);
          cursor = 0;
          total = 0;
        }
      in
      cell := Some r;
      let rec register () =
        let seen = Atomic.get rings in
        if not (Atomic.compare_and_set rings seen (r :: seen)) then
          register ()
      in
      register ();
      r

(* Unchecked word access — the compiler primitives, not C calls.  Every
   use below is bounds-safe by construction; see the comments at the
   use sites. *)
external get64u : string -> int -> int64 = "%caml_string_get64u"
external set64u : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"

(* Copy [n] bytes of [s] to [data] at [dpos], a word at a time —
   ceil(n/8) unboxed 8-byte moves instead of a C blit call or a byte
   loop.  Reading the last partial word of [s] never faults: an OCaml
   string of length n occupies ceil((n+1)/8) words, so the word
   containing any byte < n is allocated.  The write may spill up to 7
   bytes past [dpos + n]; callers guarantee the spill lands inside the
   slot's pad (below). *)
let rec copy_words s spos data dpos n =
  if spos < n then begin
    set64u data dpos (get64u s spos);
    copy_words s (spos + 8) data (dpos + 8) n
  end

(* Length-prefixed string at [pos], truncated to the slot: one length
   byte then the bytes; returns the next position.  [limit] is the slot
   end minus the 8-byte spill pad, so [room] <= slot_bytes - 9 < 255
   and the length always fits its byte.  Loop-free so Closure inlines
   it into [record]. *)
let[@inline always] put_str data pos ~limit s =
  let room = limit - pos - 1 in
  if room >= 1 then begin
    let n = String.length s in
    let n = if n > room then room else n in
    Bytes.unsafe_set data pos (Char.unsafe_chr n);
    copy_words s 0 data (pos + 1) n;
    pos + 1 + n
  end
  else begin
    if room = 0 then Bytes.unsafe_set data pos '\000';
    limit
  end

let rec put_pairs data pos ~limit pairs written =
  match pairs with
  | [] -> written
  | (k, v) :: rest ->
      if limit - pos >= 4 then
        let pos = put_str data pos ~limit k in
        let pos = put_str data pos ~limit v in
        put_pairs data pos ~limit rest (written + 1)
      else written

let get_str data pos ~limit =
  if limit - !pos < 1 then ""
  else begin
    let n = min (Char.code (Bytes.get data !pos)) (limit - !pos - 1) in
    let s = Bytes.sub_string data (!pos + 1) n in
    pos := !pos + 1 + n;
    s
  end

let record e =
  if Atomic.get on then begin
    let r = my_ring () in
    let slot = r.cursor in
    let base = slot * slot_bytes in
    (* [base + 16 .. limit) holds the strings; [limit .. base +
       slot_bytes) is the spill pad for [copy_words], so every write
       stays inside this slot of [r.data]. *)
    let limit = base + slot_bytes - 8 in
    set64u r.data base e.t_ns;
    set64u r.data (base + 8) e.dur_ns;
    let pos = put_str r.data (base + 16) ~limit e.kind in
    let pos = put_str r.data pos ~limit e.scope in
    let pos = put_str r.data pos ~limit e.name in
    let pos = put_str r.data pos ~limit e.req in
    (* detail count byte, then as many pairs as fit *)
    if limit - pos >= 1 then begin
      let written = put_pairs r.data (pos + 1) ~limit e.detail 0 in
      Bytes.unsafe_set r.data pos (Char.unsafe_chr written)
    end;
    r.cursor <- (if slot + 1 = r.cap then 0 else slot + 1);
    r.total <- r.total + 1
  end

let decode_slot r slot =
  let base = slot * slot_bytes in
  let limit = base + slot_bytes - 8 in
  let t_ns = Bytes.get_int64_le r.data base in
  let dur_ns = Bytes.get_int64_le r.data (base + 8) in
  let pos = ref (base + 16) in
  let kind = get_str r.data pos ~limit in
  let scope = get_str r.data pos ~limit in
  let name = get_str r.data pos ~limit in
  let req = get_str r.data pos ~limit in
  let detail =
    if limit - !pos < 1 then []
    else begin
      let n = Char.code (Bytes.get r.data !pos) in
      incr pos;
      List.init n (fun _ ->
          let k = get_str r.data pos ~limit in
          let v = get_str r.data pos ~limit in
          (k, v))
    end
  in
  { kind; scope; name; req; tid = r.tid; t_ns; dur_ns; detail }

(* Oldest → newest; once the ring has wrapped, the cursor points at the
   oldest surviving slot. *)
let ring_entries r =
  let start = if r.total >= r.cap then r.cursor else 0 in
  let n = min r.total r.cap in
  List.init n (fun i -> decode_slot r ((start + i) mod r.cap))

let entries ?req () =
  let all = List.concat_map ring_entries (Atomic.get rings) in
  let all =
    match req with
    | None -> all
    | Some id -> List.filter (fun e -> e.req = id) all
  in
  List.stable_sort
    (fun (a : entry) (b : entry) -> Int64.compare a.t_ns b.t_ns)
    all

(* ---- JSONL ----------------------------------------------------------- *)

(* obs sits below the pipeline layer, so like Event/Trace it writes JSON
   directly (Pipeline.Json.parse round-trips it in the tests). *)
let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_jsonl es =
  let t0 =
    List.fold_left
      (fun acc (e : entry) ->
        match acc with None -> Some e.t_ns | Some v -> Some (min v e.t_ns))
      None es
    |> Option.value ~default:0L
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Printf.bprintf buf "{\"kind\": ";
      escape buf e.kind;
      Printf.bprintf buf ", \"t_us\": %.3f, \"dur_us\": %.3f, \"tid\": %d"
        (Int64.to_float (Int64.sub e.t_ns t0) /. 1e3)
        (Int64.to_float e.dur_ns /. 1e3)
        e.tid;
      Buffer.add_string buf ", \"req\": ";
      escape buf e.req;
      Buffer.add_string buf ", \"scope\": ";
      escape buf e.scope;
      Buffer.add_string buf ", \"name\": ";
      escape buf e.name;
      Buffer.add_string buf ", \"detail\": {";
      List.iteri
        (fun k (key, v) ->
          if k > 0 then Buffer.add_string buf ", ";
          escape buf key;
          Buffer.add_string buf ": ";
          escape buf v)
        e.detail;
      Buffer.add_string buf "}}\n")
    es;
  Buffer.contents buf
