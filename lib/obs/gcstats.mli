(** GC/runtime telemetry: cheap [Gc.quick_stat] snapshots and deltas.

    The pipeline driver snapshots around every stage so reports can show
    which stage allocated and collected how much; the executor snapshots
    inside each worker domain so per-domain allocation shows up next to
    per-domain busy time.

    On OCaml 5 the word counters of [Gc.quick_stat] are exact for the
    calling domain and may lag slightly for others, while collection
    counts are process-global — deltas taken on one domain are therefore
    that domain's allocation plus whatever the others published, which is
    the right reading for both uses above. *)

type t = {
  minor_words : float;  (** words allocated in the minor heap *)
  promoted_words : float;  (** minor words that survived into the major heap *)
  major_words : float;  (** words allocated in the major heap, promotions included *)
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

val quick : unit -> t
(** Snapshot via [Gc.quick_stat] (no heap traversal). *)

val diff : before:t -> after:t -> t
(** Field-wise [after - before]. *)

val allocated_words : t -> float
(** [minor + major - promoted]: total fresh words of a delta, counting
    promoted words once. *)

val is_zero : t -> bool

val zero : t
