type span = {
  name : string;
  args : (string * string) list;
  tid : int;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
}

(* One cell per (recording sink, domain): only the owning domain mutates
   [recorded], so appends need no synchronization.  Registration into the
   sink's cell list is a CAS loop; domain termination is a memory barrier
   (Domain.join), so the reader sees complete cells. *)
type cell = { tid : int; mutable recorded : span list }

type rec_sink = { id : int; cells : cell list Atomic.t }
type t = Null | Rec of rec_sink

let null = Null
let next_id = Atomic.make 0

let make () =
  Rec { id = Atomic.fetch_and_add next_id 1; cells = Atomic.make [] }

let enabled = function Null -> false | Rec _ -> true

(* sink id → this domain's cell for that sink *)
let cells_key : (int * cell) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let my_cell s =
  let local = Domain.DLS.get cells_key in
  match List.assoc_opt s.id !local with
  | Some c -> c
  | None ->
      let c = { tid = (Domain.self () :> int); recorded = [] } in
      local := (s.id, c) :: !local;
      let rec register () =
        let seen = Atomic.get s.cells in
        if not (Atomic.compare_and_set s.cells seen (c :: seen)) then
          register ()
      in
      register ();
      c

let record t span =
  match t with
  | Null -> ()
  | Rec s ->
      let c = my_cell s in
      c.recorded <- span :: c.recorded

let spans = function
  | Null -> []
  | Rec s ->
      List.concat_map (fun c -> c.recorded) (Atomic.get s.cells)
      |> List.sort (fun a b ->
             match Int64.compare a.start_ns b.start_ns with
             | 0 -> compare (a.depth, a.tid) (b.depth, b.tid)
             | c -> c)

let clear = function
  | Null -> ()
  | Rec s -> List.iter (fun c -> c.recorded <- []) (Atomic.get s.cells)

let ambient_sink = Atomic.make Null
let ambient () = Atomic.get ambient_sink
let set_ambient t = Atomic.set ambient_sink t

let with_ambient t f =
  let prev = Atomic.get ambient_sink in
  Atomic.set ambient_sink t;
  Fun.protect ~finally:(fun () -> Atomic.set ambient_sink prev) f
