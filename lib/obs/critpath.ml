type unit_kind = Chain | Block

type task = {
  kind : unit_kind;
  id : int;
  len : int;
  tid : int;
  start_ns : int64;
  dur_ns : int64;
}

type barrier = {
  label : string;
  start_ns : int64;
  wall_ns : int64;
  n_tasks : int;
  n_domains : int;
  busy_ns : int64;
  idle_fraction : float;
  straggler : task option;
  crit_ns : int64;
  longest_len : int;
}

type t = {
  threads : int;
  barriers : barrier list;
  wall_ns : int64;
  critical_ns : int64;
  critical_fraction : float;
  longest_chain : int option;
}

let clamp01 x =
  if Float.is_finite x then Float.max 0.0 (Float.min 1.0 x) else 0.0

let phase_of_span (s : Sink.span) =
  let n = String.length s.name in
  if n > 6 && String.sub s.name 0 6 = "phase:" then
    Some (String.sub s.name 6 (n - 6))
  else None

let task_of_span (s : Sink.span) =
  if s.name <> "task" then None
  else
    let int_arg k =
      Option.bind (List.assoc_opt k s.args) int_of_string_opt
    in
    match List.assoc_opt "phase" s.args with
    | None -> None
    | Some label ->
        let len = Option.value (int_arg "len") ~default:0 in
        let mk kind id =
          ( label,
            {
              kind;
              id;
              len;
              tid = s.tid;
              start_ns = s.start_ns;
              dur_ns = s.dur_ns;
            } )
        in
        (match (int_arg "chain", int_arg "block") with
        | Some id, _ -> Some (mk Chain id)
        | None, Some id -> Some (mk Block id)
        | None, None -> None)

let end_ns (t : task) = Int64.add t.start_ns t.dur_ns

let chain_ratio_pct = Counter.make "runtime.sched.longest_chain_ratio_pct"

let observe_chain_ratio ~measured ~bound =
  if measured > 0 && bound > 0 then
    Counter.add chain_ratio_pct (100 * measured / bound)

let of_spans ?threads ?theorem_bound spans =
  let phases =
    List.filter_map
      (fun s -> Option.map (fun label -> (label, s)) (phase_of_span s))
      spans
  in
  let phases = Array.of_list phases in
  let groups = Array.map (fun _ -> []) phases in
  let all_tasks = List.filter_map task_of_span spans in
  (* Attach each task to the innermost (latest-starting) phase span with
     its label whose window contains the task start: label match alone
     would conflate repeated labels (many runs through one sink). *)
  List.iter
    (fun (label, (tk : task)) ->
      let best = ref (-1) in
      Array.iteri
        (fun i (plabel, (p : Sink.span)) ->
          if
            plabel = label
            && p.Sink.start_ns <= tk.start_ns
            && tk.start_ns <= Int64.add p.Sink.start_ns p.Sink.dur_ns
            && (!best < 0
               || (snd phases.(!best)).Sink.start_ns <= p.Sink.start_ns)
          then best := i)
        phases;
      if !best >= 0 then groups.(!best) <- tk :: groups.(!best))
    all_tasks;
  let groups = Array.map List.rev groups in
  let distinct_tids ts =
    List.length (List.sort_uniq compare (List.map (fun t -> t.tid) ts))
  in
  let threads =
    match threads with
    | Some t when t >= 1 -> t
    | _ -> max 1 (Array.fold_left (fun m ts -> max m (distinct_tids ts)) 1 groups)
  in
  let barriers =
    Array.to_list
      (Array.mapi
         (fun i (label, (p : Sink.span)) ->
           let ts = groups.(i) in
           let busy_ns =
             List.fold_left (fun acc t -> Int64.add acc t.dur_ns) 0L ts
           in
           let straggler =
             List.fold_left
               (fun acc t ->
                 match acc with
                 | Some s when end_ns s >= end_ns t -> acc
                 | _ -> Some t)
               None ts
           in
           let wall_ns = p.Sink.dur_ns in
           let crit_ns =
             match straggler with
             | None -> wall_ns
             | Some s ->
                 Int64.max 0L (Int64.sub (end_ns s) p.Sink.start_ns)
           in
           let idle_fraction =
             if Int64.compare wall_ns 0L <= 0 then 0.0
             else
               clamp01
                 (1.0
                 -. Int64.to_float busy_ns
                    /. (float_of_int threads *. Int64.to_float wall_ns))
           in
           {
             label;
             start_ns = p.Sink.start_ns;
             wall_ns;
             n_tasks = List.length ts;
             n_domains = distinct_tids ts;
             busy_ns;
             idle_fraction;
             straggler;
             crit_ns;
             longest_len = List.fold_left (fun m t -> max m t.len) 0 ts;
           })
         phases)
  in
  let wall_ns =
    List.fold_left (fun acc (b : barrier) -> Int64.add acc b.wall_ns) 0L barriers
  in
  let critical_ns =
    List.fold_left (fun acc (b : barrier) -> Int64.add acc b.crit_ns) 0L barriers
  in
  let critical_fraction =
    if Int64.compare wall_ns 0L <= 0 then 0.0
    else clamp01 (Int64.to_float critical_ns /. Int64.to_float wall_ns)
  in
  let longest_chain =
    List.fold_left
      (fun acc (_, t) ->
        if t.kind <> Chain then acc
        else
          match acc with
          | Some l when l >= t.len -> acc
          | _ -> Some t.len)
      None all_tasks
  in
  (match (longest_chain, theorem_bound) with
  | Some l, Some b -> observe_chain_ratio ~measured:l ~bound:b
  | _ -> ());
  { threads; barriers; wall_ns; critical_ns; critical_fraction; longest_chain }

(* ---- text rendering -------------------------------------------------- *)

let ms ns = Int64.to_float ns /. 1e6

let kind_name = function Chain -> "chain" | Block -> "block"

let to_text ?theorem_bound t =
  let buf = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "critical path : %.3fms of %.3fms wall (%.1f%%), %d barrier(s), %d thread(s)"
    (ms t.critical_ns) (ms t.wall_ns)
    (100.0 *. t.critical_fraction)
    (List.length t.barriers) t.threads;
  line "%-14s %10s %6s %4s %6s   %s" "barrier" "wall(ms)" "tasks" "dom"
    "idle%" "straggler";
  List.iter
    (fun b ->
      let straggler =
        match b.straggler with
        | None -> "-"
        | Some s ->
            Printf.sprintf "%s %d (len %d, %.3fms, tid %d)" (kind_name s.kind)
              s.id s.len (ms s.dur_ns) s.tid
      in
      line "%-14s %10.3f %6d %4d %6.1f   %s" b.label (ms b.wall_ns) b.n_tasks
        b.n_domains
        (100.0 *. b.idle_fraction)
        straggler)
    t.barriers;
  (match (t.longest_chain, theorem_bound) with
  | Some l, Some b ->
      line "longest chain : %d point(s) measured vs Theorem 1 bound %d%s" l b
        (if l <= b then "" else "  (EXCEEDS the bound!)")
  | Some l, None -> line "longest chain : %d point(s) measured" l
  | None, _ -> ());
  Buffer.contents buf
