let n_buckets = 63

type snap = { count : int; sum : int; buckets : (int * int) list }

type t = {
  name : string;
  count : int Atomic.t;
  sum : int Atomic.t;
  buckets : int Atomic.t array;  (* bucket k: 2^(k-1) < v <= 2^k *)
}

let registry : t list Atomic.t = Atomic.make []

let make name =
  let rec go () =
    let seen = Atomic.get registry in
    match List.find_opt (fun h -> h.name = name) seen with
    | Some h -> h
    | None ->
        let h =
          {
            name;
            count = Atomic.make 0;
            sum = Atomic.make 0;
            buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
          }
        in
        if Atomic.compare_and_set registry seen (h :: seen) then h else go ()
  in
  go ()

let bucket_of v =
  if v <= 1 then 0
  else
    (* index of the highest set bit of v-1, plus one: 2^(k-1) < v <= 2^k *)
    let rec go k x = if x = 0 then k else go (k + 1) (x lsr 1) in
    min (n_buckets - 1) (go 0 (v - 1))

let observe t v =
  ignore (Atomic.fetch_and_add t.count 1);
  ignore (Atomic.fetch_and_add t.sum (max 0 v));
  ignore (Atomic.fetch_and_add t.buckets.(bucket_of v) 1)

let snap t : snap =
  let buckets = ref [] in
  for k = n_buckets - 1 downto 0 do
    let n = Atomic.get t.buckets.(k) in
    if n > 0 then buckets := ((1 lsl k), n) :: !buckets
  done;
  { count = Atomic.get t.count; sum = Atomic.get t.sum; buckets = !buckets }

let snapshot () =
  Atomic.get registry
  |> List.map (fun h -> (h.name, snap h))
  |> List.sort compare

let reset_all () =
  List.iter
    (fun h ->
      Atomic.set h.count 0;
      Atomic.set h.sum 0;
      Array.iter (fun b -> Atomic.set b 0) h.buckets)
    (Atomic.get registry)
