let n_buckets = 63

type snap = { count : int; sum : int; buckets : (int * int) list }

type t = {
  name : string;
  count : int Atomic.t;
  sum : int Atomic.t;
  buckets : int Atomic.t array;  (* bucket k: 2^(k-1) < v <= 2^k *)
}

let registry : t list Atomic.t = Atomic.make []

let make name =
  let rec go () =
    let seen = Atomic.get registry in
    match List.find_opt (fun h -> h.name = name) seen with
    | Some h -> h
    | None ->
        let h =
          {
            name;
            count = Atomic.make 0;
            sum = Atomic.make 0;
            buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
          }
        in
        if Atomic.compare_and_set registry seen (h :: seen) then h else go ()
  in
  go ()

let bucket_of v =
  if v <= 1 then 0
  else
    (* index of the highest set bit of v-1, plus one: 2^(k-1) < v <= 2^k *)
    let rec go k x = if x = 0 then k else go (k + 1) (x lsr 1) in
    min (n_buckets - 1) (go 0 (v - 1))

(* Negative samples are clamped to 0 *before* anything records, so count,
   sum and the bucket all see the same value (previously sum clamped but
   count/bucket recorded the raw sample). *)
let observe t v =
  let v = if v < 0 then 0 else v in
  ignore (Atomic.fetch_and_add t.count 1);
  ignore (Atomic.fetch_and_add t.sum v);
  ignore (Atomic.fetch_and_add t.buckets.(bucket_of v) 1)

(* Reads are not atomic as a group, so a snapshot taken while other
   domains observe could tear.  Two mitigations: retry while the count
   moved during the read, and read [count] *after* the buckets — every
   bucket increment is preceded (same domain, seq_cst atomics) by its
   count increment, so the returned count always covers the bucket total
   even when the retry budget runs out. *)
let snap t : snap =
  let read () =
    let c0 = Atomic.get t.count in
    let sum = Atomic.get t.sum in
    let buckets = ref [] in
    for k = n_buckets - 1 downto 0 do
      let n = Atomic.get t.buckets.(k) in
      if n > 0 then buckets := ((1 lsl k), n) :: !buckets
    done;
    let c1 = Atomic.get t.count in
    (c0 = c1, { count = c1; sum; buckets = !buckets })
  in
  let rec go attempts =
    let stable, s = read () in
    if stable || attempts = 0 then s else go (attempts - 1)
  in
  go 8

(* Quantile estimate from the power-of-two buckets: find the bucket
   holding the q-th sample and interpolate linearly inside its
   (lower, upper] range.  The estimate is always inside the true sample's
   bucket, so the worst-case error is the bucket width (a factor of 2). *)
let percentile (s : snap) q =
  if s.count <= 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int s.count in
    let rec go cum = function
      | [] -> (
          (* count outran the buckets (torn snapshot): report the top
             observed bound *)
          match List.rev s.buckets with
          | (ub, _) :: _ -> float_of_int ub
          | [] -> 0.0)
      | (ub, n) :: rest ->
          let cum' = cum + n in
          if float_of_int cum' >= target then
            let lo = if ub <= 1 then 0.0 else float_of_int (ub / 2) in
            let frac = (target -. float_of_int cum) /. float_of_int n in
            lo +. (frac *. (float_of_int ub -. lo))
          else go cum' rest
    in
    go 0 s.buckets
  end

let snapshot () =
  Atomic.get registry
  |> List.map (fun h -> (h.name, snap h))
  |> List.sort compare

let reset_all () =
  List.iter
    (fun h ->
      Atomic.set h.count 0;
      Atomic.set h.sum 0;
      Array.iter (fun b -> Atomic.set b 0) h.buckets)
    (Atomic.get registry)
