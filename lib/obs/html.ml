(* One self-contained page, inline CSS, no scripts: the report must
   survive being shipped as a bare CI artifact. *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let esc s =
  let buf = Buffer.create (String.length s + 8) in
  escape buf s;
  Buffer.contents buf

let fmt_ns ns =
  let f = Int64.to_float ns in
  if f >= 1e9 then Printf.sprintf "%.3f s" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.3f ms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.3f us" (f /. 1e3)
  else Printf.sprintf "%.0f ns" f

(* Stable hue per span name so the same stage keeps its colour across
   waterfall, timeline and tree. *)
let hue name =
  let h = Hashtbl.hash name in
  h mod 360

let span_style name = Printf.sprintf "background:hsl(%d,65%%,78%%)" (hue name)

let origin spans =
  List.fold_left
    (fun acc (s : Sink.span) ->
      match acc with
      | None -> Some s.Sink.start_ns
      | Some t -> Some (min t s.Sink.start_ns))
    None spans
  |> Option.value ~default:0L

let horizon spans t0 =
  List.fold_left
    (fun acc (s : Sink.span) ->
      max acc (Int64.sub (Int64.add s.Sink.start_ns s.Sink.dur_ns) t0))
    1L spans

let pct part whole = 100.0 *. Int64.to_float part /. Int64.to_float whole

let css =
  {|body{font:14px/1.45 system-ui,sans-serif;margin:1.5em auto;max-width:70em;
  padding:0 1em;color:#222}
h1{font-size:1.4em}h2{font-size:1.1em;margin-top:1.6em;border-bottom:1px solid #ddd;
  padding-bottom:.2em}
table{border-collapse:collapse;margin:.5em 0}
td,th{border:1px solid #ddd;padding:.25em .6em;text-align:left}
th{background:#f5f5f5}td.num{text-align:right;font-variant-numeric:tabular-nums}
.meta span{margin-right:1.5em;color:#555}
.lane{position:relative;background:#fafafa;border:1px solid #eee;margin:2px 0}
.lane .bar{position:absolute;height:16px;border:1px solid rgba(0,0,0,.25);
  border-radius:2px;overflow:hidden;white-space:nowrap;font-size:11px;
  padding:0 2px;box-sizing:border-box}
.wf{position:relative;height:22px;margin:2px 0}
.wf .bar{position:absolute;height:18px;border:1px solid rgba(0,0,0,.25);
  border-radius:2px}
.wf .lbl{position:absolute;left:0;font-size:12px;line-height:20px}
.dom{color:#555;font-size:12px;margin-top:.6em}
details{margin-left:1.2em}summary{cursor:pointer}
summary .dur{color:#777;font-variant-numeric:tabular-nums}
summary .args{color:#999;font-size:12px}
|}

(* ---- stage waterfall -------------------------------------------------- *)

let waterfall buf spans t0 total =
  let stages =
    List.filter
      (fun (s : Sink.span) ->
        String.length s.Sink.name > 6 && String.sub s.Sink.name 0 6 = "stage:")
      spans
  in
  if stages <> [] then begin
    Buffer.add_string buf "<h2>Stage waterfall</h2>\n";
    List.iter
      (fun (s : Sink.span) ->
        let left = pct (Int64.sub s.Sink.start_ns t0) total in
        let width = max 0.15 (pct s.Sink.dur_ns total) in
        Printf.bprintf buf
          "<div class=\"wf\"><span class=\"lbl\">%s &mdash; %s</span>\n\
           <div class=\"bar\" style=\"left:%.2f%%;width:%.2f%%;%s\"></div></div>\n"
          (esc s.Sink.name) (fmt_ns s.Sink.dur_ns) left width
          (span_style s.Sink.name))
      stages
  end

(* ---- per-domain flame timeline ---------------------------------------- *)

let timeline buf spans t0 total tids =
  Buffer.add_string buf "<h2>Domain timeline</h2>\n";
  List.iter
    (fun tid ->
      let mine =
        List.filter (fun (s : Sink.span) -> s.Sink.tid = tid) spans
      in
      let max_depth =
        List.fold_left (fun d (s : Sink.span) -> max d s.Sink.depth) 0 mine
      in
      Printf.bprintf buf "<div class=\"dom\">domain %d</div>\n" tid;
      Printf.bprintf buf "<div class=\"lane\" style=\"height:%dpx\">\n"
        (((max_depth + 1) * 18) + 4);
      List.iter
        (fun (s : Sink.span) ->
          let left = pct (Int64.sub s.Sink.start_ns t0) total in
          let width = max 0.1 (pct s.Sink.dur_ns total) in
          Printf.bprintf buf
            "<div class=\"bar\" style=\"left:%.2f%%;width:%.2f%%;top:%dpx;%s\" \
             title=\"%s (%s)\">%s</div>\n"
            left width
            ((s.Sink.depth * 18) + 2)
            (span_style s.Sink.name)
            (esc s.Sink.name) (fmt_ns s.Sink.dur_ns) (esc s.Sink.name))
        mine;
      Buffer.add_string buf "</div>\n")
    tids

(* ---- span tree -------------------------------------------------------- *)

let tree buf spans tids =
  Buffer.add_string buf "<h2>Span tree</h2>\n";
  List.iter
    (fun tid ->
      Printf.bprintf buf "<div class=\"dom\">domain %d</div>\n" tid;
      let mine =
        List.filter (fun (s : Sink.span) -> s.Sink.tid = tid) spans
      in
      (* [Sink.spans] orders by start time with parents before children;
         nesting follows the recorded depth directly. *)
      let depth = ref (-1) in
      let close_to d =
        while !depth >= d do
          Buffer.add_string buf "</details>\n";
          decr depth
        done
      in
      List.iter
        (fun (s : Sink.span) ->
          close_to s.Sink.depth;
          Printf.bprintf buf
            "<details open><summary>%s <span class=\"dur\">%s</span>"
            (esc s.Sink.name) (fmt_ns s.Sink.dur_ns);
          (match s.Sink.args with
          | [] -> ()
          | args ->
              Printf.bprintf buf " <span class=\"args\">%s</span>"
                (esc
                   (String.concat ", "
                      (List.map (fun (k, v) -> k ^ "=" ^ v) args))));
          Buffer.add_string buf "</summary>\n";
          depth := s.Sink.depth)
        mine;
      close_to 0)
    tids

(* ---- metrics tables --------------------------------------------------- *)

let metrics_tables buf (m : Metrics.t) =
  if m.Metrics.counters <> [] then begin
    Buffer.add_string buf
      "<h2>Counters</h2>\n<table><tr><th>counter</th><th>value</th></tr>\n";
    List.iter
      (fun (name, v) ->
        Printf.bprintf buf "<tr><td>%s</td><td class=\"num\">%d</td></tr>\n"
          (esc name) v)
      m.Metrics.counters;
    Buffer.add_string buf "</table>\n"
  end;
  if m.Metrics.histograms <> [] then begin
    Buffer.add_string buf "<h2>Histograms</h2>\n";
    List.iter
      (fun (name, (h : Histogram.snap)) ->
        Printf.bprintf buf
          "<h3>%s</h3>\n\
           <p class=\"meta\"><span>count %d</span><span>sum %d</span></p>\n\
           <table><tr><th>&le; bound</th><th>samples</th></tr>\n"
          (esc name) h.Histogram.count h.Histogram.sum;
        List.iter
          (fun (bound, n) ->
            Printf.bprintf buf
              "<tr><td class=\"num\">%d</td><td class=\"num\">%d</td></tr>\n"
              bound n)
          h.Histogram.buckets;
        Buffer.add_string buf "</table>\n")
      m.Metrics.histograms
  end

let render ?metrics ?(title = "recpart profile") sink =
  let spans = Sink.spans sink in
  let t0 = origin spans in
  let total = horizon spans t0 in
  let tids =
    List.sort_uniq compare (List.map (fun (s : Sink.span) -> s.Sink.tid) spans)
  in
  let buf = Buffer.create 8192 in
  Printf.bprintf buf
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>%s</title>\n\
     <style>%s</style></head>\n<body>\n<h1>%s</h1>\n"
    (esc title) css (esc title);
  Printf.bprintf buf
    "<p class=\"meta\"><span>%d spans</span><span>%d domains</span>\
     <span>wall %s</span></p>\n"
    (List.length spans) (List.length tids) (fmt_ns total);
  if spans = [] then
    Buffer.add_string buf "<p>No spans were recorded.</p>\n"
  else begin
    waterfall buf spans t0 total;
    timeline buf spans t0 total tids;
    tree buf spans tids
  end;
  (match metrics with None -> () | Some m -> metrics_tables buf m);
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
