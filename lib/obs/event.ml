type value = Bool of bool | Int of int | Float of float | Str of string

type severity = Debug | Info | Warn

let severity_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

type event = {
  scope : string;
  name : string;
  severity : severity;
  fields : (string * value) list;
  tid : int;
  t_ns : int64;
  seq : int;
}

(* Same recording scheme as Sink: one cell per (log, domain), only the
   owning domain mutates [recorded], registration is a CAS loop.  The
   global [seq] counter is the one shared atomic — event volume is a few
   per pipeline stage, so contention is irrelevant, and it buys a total
   emission order that per-domain timestamps alone cannot. *)
type cell = { tid : int; mutable recorded : event list }

type rec_log = { id : int; cells : cell list Atomic.t; seq : int Atomic.t }

type t = Null | Rec of rec_log

let null = Null
let next_id = Atomic.make 0

let make () =
  Rec
    {
      id = Atomic.fetch_and_add next_id 1;
      cells = Atomic.make [];
      seq = Atomic.make 0;
    }

let enabled = function Null -> false | Rec _ -> true

let cells_key : (int * cell) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let my_cell l =
  let local = Domain.DLS.get cells_key in
  match List.assoc_opt l.id !local with
  | Some c -> c
  | None ->
      let c = { tid = (Domain.self () :> int); recorded = [] } in
      local := (l.id, c) :: !local;
      let rec register () =
        let seen = Atomic.get l.cells in
        if not (Atomic.compare_and_set l.cells seen (c :: seen)) then
          register ()
      in
      register ();
      c

let ambient_log = Atomic.make Null
let ambient () = Atomic.get ambient_log
let set_ambient t = Atomic.set ambient_log t

let with_ambient t f =
  let prev = Atomic.get ambient_log in
  Atomic.set ambient_log t;
  Fun.protect ~finally:(fun () -> Atomic.set ambient_log prev) f

let value_to_string = function
  | Bool b -> if b then "true" else "false"
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%.9g" f
  | Str s -> s

let emit ?log ?(severity = Info) ~scope ~name fields =
  let log = match log with Some l -> l | None -> Atomic.get ambient_log in
  (* The always-on flight ring keeps Info and above (every span is kept
     too, by Span itself).  Debug events are breadcrumbs for attached
     event logs, so with no log wired they cost one branch — hot paths
     can afford them. *)
  let flight_on = Flight.enabled () && severity <> Debug in
  match log with
  | Null when not flight_on -> ()
  | _ ->
      (* Request attribution: an event emitted while an Obs.Ctx is
         installed gains a ("req", trace-id) field. *)
      let req = Ctx.current_id () in
      let fs = fields () in
      let tid = (Domain.self () :> int) in
      let t_ns = Clock.now_ns () in
      (match log with
      | Null -> ()
      | Rec l ->
          let c = my_cell l in
          c.recorded <-
            {
              scope;
              name;
              severity;
              fields =
                (match req with
                | Some id -> fs @ [ ("req", Str id) ]
                | None -> fs);
              tid = c.tid;
              t_ns;
              seq = Atomic.fetch_and_add l.seq 1;
            }
            :: c.recorded);
      if flight_on then
        (* The flight entry carries the request id in its own [req]
           field, so the detail list is the fields as given — no append
           on the always-on path. *)
        Flight.record
          {
            Flight.kind = "event";
            scope;
            name;
            req = Option.value req ~default:"";
            tid;
            t_ns;
            dur_ns = 0L;
            detail = List.map (fun (k, v) -> (k, value_to_string v)) fs;
          }

let events = function
  | Null -> []
  | Rec l ->
      List.concat_map (fun c -> c.recorded) (Atomic.get l.cells)
      |> List.sort (fun (a : event) (b : event) -> compare a.seq b.seq)

let clear = function
  | Null -> ()
  | Rec l -> List.iter (fun c -> c.recorded <- []) (Atomic.get l.cells)

(* ---- JSONL ----------------------------------------------------------- *)

(* obs sits below the pipeline layer, so like Trace it writes JSON
   directly (Pipeline.Json.parse round-trips it in the tests). *)
let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let emit_value buf = function
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then Printf.bprintf buf "%.9g" f
      else Buffer.add_string buf "null"
  | Str s -> escape buf s

let to_jsonl t =
  let evs = events t in
  let t0 =
    List.fold_left
      (fun acc e -> match acc with None -> Some e.t_ns | Some v -> Some (min v e.t_ns))
      None evs
    |> Option.value ~default:0L
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (e : event) ->
      Printf.bprintf buf "{\"seq\": %d, \"t_us\": %.3f, \"tid\": %d" e.seq
        (Int64.to_float (Int64.sub e.t_ns t0) /. 1e3)
        e.tid;
      Buffer.add_string buf ", \"severity\": ";
      escape buf (severity_name e.severity);
      Buffer.add_string buf ", \"scope\": ";
      escape buf e.scope;
      Buffer.add_string buf ", \"name\": ";
      escape buf e.name;
      Buffer.add_string buf ", \"fields\": {";
      List.iteri
        (fun k (key, v) ->
          if k > 0 then Buffer.add_string buf ", ";
          escape buf key;
          Buffer.add_string buf ": ";
          emit_value buf v)
        e.fields;
      Buffer.add_string buf "}}\n")
    evs;
  Buffer.contents buf
