(** Where spans go.  A sink is either the no-op {!null} (the default —
    recording code must cost nothing beyond one branch) or a recording
    buffer.

    Recording is lock-free on the hot path: every domain appends to its
    own private cell (created on the domain's first record and registered
    once with a compare-and-set).  Reading a sink ({!spans}) is meant for
    after the parallel section has joined. *)

type span = {
  name : string;
  args : (string * string) list;  (** free-form key/value labels *)
  tid : int;  (** id of the domain that ran the span *)
  start_ns : int64;  (** {!Clock.now_ns} at entry *)
  dur_ns : int64;  (** duration (≥ 0) *)
  depth : int;  (** nesting depth within the recording domain *)
}

type t

val null : t
(** Drops everything; {!enabled} is [false]. *)

val make : unit -> t
(** A fresh recording sink. *)

val enabled : t -> bool

val record : t -> span -> unit
(** No-op on {!null}.  Lock-free; safe from any domain. *)

val spans : t -> span list
(** Everything recorded so far, sorted by start time (ties by depth so
    parents precede their children).  Call after joining worker
    domains. *)

val clear : t -> unit
(** Forget all recorded spans (the sink remains usable). *)

val ambient : unit -> t
(** The process-wide default sink used by {!Span.with_} when no explicit
    sink is given.  Starts as {!null}. *)

val set_ambient : t -> unit

val with_ambient : t -> (unit -> 'a) -> 'a
(** Runs [f] with the ambient sink swapped to [t], restoring the previous
    one afterwards (also on exceptions). *)
