(** Nested, monotonic-clock-timed spans.

    [with_ ~name f] times [f] and records one {!Sink.span} into the
    ambient sink (or [?sink]) when that sink is recording, and an entry
    into the {!Flight} recorder when that is enabled; with the no-op sink
    and the recorder off the overhead is a single branch.  When an
    {!Ctx} is installed on the recording domain, the span carries a
    [("req", trace-id)] argument.  Nesting depth is tracked per domain,
    so spans opened inside spawned domains are independent timelines
    tagged with that domain's id. *)

val with_ :
  ?sink:Sink.t ->
  name:string ->
  ?args:(string * string) list ->
  (unit -> 'a) ->
  'a
(** Runs [f] inside a span.  The span is recorded even when [f] raises
    (the exception is re-raised); [args] become Chrome-trace [args]. *)

val instant : ?sink:Sink.t -> name:string -> ?args:(string * string) list -> unit -> unit
(** A zero-duration marker at the current time. *)
