(** Structured decision events — the provenance companion to {!Span}.

    Spans answer {e where time went}; events answer {e why the compiler
    took a branch}: which dependence test fired and what it concluded,
    why Algorithm 1 chose or rejected a strategy, what the partition
    looked like.  Each event is a named record with a severity and typed
    key/value fields, stamped with the emitting domain and a monotonic
    timestamp, and globally sequenced so a log replays in emission order
    even across domains.

    Like {!Sink}, the default log is {!null}: with it, {!emit} costs one
    branch plus the (unevaluated) field thunk, so instrumentation can
    stay in hot paths.  Recording is lock-free per domain, same cell
    scheme as {!Sink}.  Events are deliberately separate from spans:
    spans are a timing tree consumed by trace viewers, events are a flat
    decision log consumed by [recpart explain] and JSONL tooling — mixing
    them would force every span reader to skip decision payloads and
    vice versa. *)

type value = Bool of bool | Int of int | Float of float | Str of string

type severity = Debug | Info | Warn

val severity_name : severity -> string
(** ["debug"], ["info"], ["warn"]. *)

type event = {
  scope : string;  (** subsystem, e.g. ["depend"], ["partition"] *)
  name : string;  (** event kind within the scope, e.g. ["choose.rec"] *)
  severity : severity;
  fields : (string * value) list;  (** typed payload, in emission order *)
  tid : int;  (** domain that emitted the event *)
  t_ns : int64;  (** {!Clock.now_ns} at emission *)
  seq : int;  (** global emission order (gap-free per log) *)
}

type t

val null : t
(** Drops everything; {!enabled} is [false]. *)

val make : unit -> t
(** A fresh recording log. *)

val enabled : t -> bool

val emit :
  ?log:t ->
  ?severity:severity ->
  scope:string ->
  name:string ->
  (unit -> (string * value) list) ->
  unit
(** [emit ~scope ~name fields] appends one event to [log] (default: the
    ambient log) and, when the {!Flight} recorder is enabled and the
    severity is [Info] or above, to the calling domain's flight ring —
    [Debug] events are breadcrumbs for attached logs only, so hot paths
    can emit them for the price of one branch.  The field thunk is only
    forced when something records; if an {!Ctx} is installed, a
    [("req", trace-id)] field is appended (logs record it as a field,
    the flight ring in the entry's [req] slot).  Lock-free; safe from
    any domain. *)

val events : t -> event list
(** Everything recorded so far, in emission ([seq]) order.  Call after
    joining worker domains. *)

val clear : t -> unit

val ambient : unit -> t
(** The process-wide default log used by {!emit} when no explicit log is
    given.  Starts as {!null}. *)

val set_ambient : t -> unit

val with_ambient : t -> (unit -> 'a) -> 'a
(** Runs [f] with the ambient log swapped to [t], restoring the previous
    one afterwards (also on exceptions). *)

val to_jsonl : t -> string
(** One JSON object per line, in emission order: [seq], [t_us] (relative
    to the first event), [tid], [severity], [scope], [name], and the
    typed [fields] as a nested object.  Each line parses with
    [Pipeline.Json.parse]; the whole string is the JSONL event-log
    artifact format. *)
