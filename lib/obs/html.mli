(** Self-contained HTML profile reports.

    [render] turns a recorded {!Sink} (plus an optional {!Metrics}
    snapshot) into one HTML page with no external assets — inline CSS
    only, so the file can be attached to a CI run or mailed around and
    still render.  Sections:

    - a header with wall-clock span, span count and domain count;
    - a stage waterfall built from the driver's [stage:*] spans;
    - a per-domain flame timeline (every span positioned by start time
      and nesting depth);
    - the full span tree as nested [<details>] elements;
    - counter and histogram tables when metrics are given.

    Like {!Trace}, this sits below the pipeline layer and writes its
    output directly. *)

val render : ?metrics:Metrics.t -> ?title:string -> Sink.t -> string
(** [render sink] is the complete HTML document.  [title] defaults to
    ["recpart profile"]. *)
