(** Process-wide named counters with atomic increments.

    Counters are created once (typically at module initialization of the
    instrumented layer) and registered globally; {!incr}/{!add} are a
    single atomic fetch-and-add, safe from any domain, and cheap enough to
    leave always on.  Snapshots are cumulative; callers wanting per-run
    numbers diff two snapshots ({!Metrics}). *)

type t

val make : string -> t
(** Creates (or returns the existing) counter with this name. *)

val incr : t -> unit
val add : t -> int -> unit
val value : t -> int

val snapshot : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

val reset_all : unit -> unit
(** Zeroes every registered counter (tests and CLI runs). *)
