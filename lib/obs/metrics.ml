type t = {
  counters : (string * int) list;
  histograms : (string * Histogram.snap) list;
}

let snapshot () =
  { counters = Counter.snapshot (); histograms = Histogram.snapshot () }

let diff ~before ~after =
  let counters =
    List.filter_map
      (fun (name, v) ->
        let v0 =
          Option.value ~default:0 (List.assoc_opt name before.counters)
        in
        if v - v0 = 0 then None else Some (name, v - v0))
      after.counters
  in
  let hist_diff (a : Histogram.snap) (b : Histogram.snap) : Histogram.snap =
    let bucket (ub, n) =
      let n0 = Option.value ~default:0 (List.assoc_opt ub b.buckets) in
      if n - n0 = 0 then None else Some (ub, n - n0)
    in
    {
      Histogram.count = a.Histogram.count - b.Histogram.count;
      sum = a.Histogram.sum - b.Histogram.sum;
      buckets = List.filter_map bucket a.Histogram.buckets;
    }
  in
  let histograms =
    List.filter_map
      (fun (name, h) ->
        let d =
          match List.assoc_opt name before.histograms with
          | Some h0 -> hist_diff h h0
          | None -> h
        in
        if d.Histogram.count = 0 then None else Some (name, d))
      after.histograms
  in
  { counters; histograms }

let merge a b =
  let assoc0 k l = Option.value ~default:0 (List.assoc_opt k l) in
  let counters =
    List.sort_uniq compare (List.map fst a.counters @ List.map fst b.counters)
    |> List.filter_map (fun n ->
           match assoc0 n a.counters + assoc0 n b.counters with
           | 0 -> None
           | v -> Some (n, v))
  in
  let hist_merge (x : Histogram.snap) (y : Histogram.snap) : Histogram.snap =
    let ubs =
      List.sort_uniq compare (List.map fst x.buckets @ List.map fst y.buckets)
    in
    {
      Histogram.count = x.Histogram.count + y.Histogram.count;
      sum = x.Histogram.sum + y.Histogram.sum;
      buckets =
        List.map
          (fun ub -> (ub, assoc0 ub x.buckets + assoc0 ub y.buckets))
          ubs;
    }
  in
  let empty : Histogram.snap = { Histogram.count = 0; sum = 0; buckets = [] } in
  let histograms =
    List.sort_uniq compare
      (List.map fst a.histograms @ List.map fst b.histograms)
    |> List.filter_map (fun n ->
           let ha = Option.value ~default:empty (List.assoc_opt n a.histograms) in
           let hb = Option.value ~default:empty (List.assoc_opt n b.histograms) in
           let h = hist_merge ha hb in
           if h.Histogram.count = 0 then None else Some (n, h))
  in
  { counters; histograms }

let reset_all () =
  Counter.reset_all ();
  Histogram.reset_all ()

let filter pred t =
  {
    counters = List.filter (fun (name, _) -> pred name) t.counters;
    histograms = List.filter (fun (name, _) -> pred name) t.histograms;
  }

let is_empty t = t.counters = [] && t.histograms = []
