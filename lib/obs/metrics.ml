type t = {
  counters : (string * int) list;
  histograms : (string * Histogram.snap) list;
}

let snapshot () =
  { counters = Counter.snapshot (); histograms = Histogram.snapshot () }

let diff ~before ~after =
  let counters =
    List.filter_map
      (fun (name, v) ->
        let v0 =
          Option.value ~default:0 (List.assoc_opt name before.counters)
        in
        if v - v0 = 0 then None else Some (name, v - v0))
      after.counters
  in
  let hist_diff (a : Histogram.snap) (b : Histogram.snap) : Histogram.snap =
    let bucket (ub, n) =
      let n0 = Option.value ~default:0 (List.assoc_opt ub b.buckets) in
      if n - n0 = 0 then None else Some (ub, n - n0)
    in
    {
      Histogram.count = a.Histogram.count - b.Histogram.count;
      sum = a.Histogram.sum - b.Histogram.sum;
      buckets = List.filter_map bucket a.Histogram.buckets;
    }
  in
  let histograms =
    List.filter_map
      (fun (name, h) ->
        let d =
          match List.assoc_opt name before.histograms with
          | Some h0 -> hist_diff h h0
          | None -> h
        in
        if d.Histogram.count = 0 then None else Some (name, d))
      after.histograms
  in
  { counters; histograms }

let filter pred t =
  {
    counters = List.filter (fun (name, _) -> pred name) t.counters;
    histograms = List.filter (fun (name, _) -> pred name) t.histograms;
  }

let is_empty t = t.counters = [] && t.histograms = []
