(** Always-on flight recorder — per-domain ring buffers of the most
    recent spans and [Info]-and-above events, kept so a failed request
    can be explained after the fact without re-running under a
    recording sink.

    Unlike {!Sink}/{!Event} logs (which grow without bound and are wired
    up per run), the recorder is process-global and fixed-size: each
    domain writes into its own ring of [capacity] fixed-width slots,
    overwriting the oldest entry.  Recording is lock-free and copying —
    the owning domain copies the entry's fields into its preallocated
    ring storage (truncating oversized strings to the slot), so nothing
    recorded retains caller-allocated memory and the recorder adds no
    GC pressure.  The one shared cost on the hot path is a single atomic
    flag read, so {!Span.with_}/{!Event.emit} stay cheap when the
    recorder is off.

    {!entries} reads other domains' rings without synchronization; a ring
    being written concurrently can yield a slightly torn view (one entry
    missing or duplicated at the overwrite frontier).  That is the
    documented trade: dumps happen on failure paths where a best-effort
    recent-history view is worth much more than a barrier on every
    record. *)

type entry = {
  kind : string;  (** ["span"] or ["event"] *)
  scope : string;  (** event scope; [""] for spans *)
  name : string;
  req : string;  (** originating {!Ctx} trace id; [""] when none *)
  tid : int;  (** recording domain *)
  t_ns : int64;  (** {!Clock.now_ns} at span start / event emission *)
  dur_ns : int64;  (** span duration; [0] for events *)
  detail : (string * string) list;  (** span args / stringified fields *)
}

val enable : ?capacity:int -> unit -> unit
(** Turns recording on.  [capacity] (default 256, ≥ 1) is slots {e per
    domain}; changing it resets every ring. *)

val disable : unit -> unit
(** Turns recording off; already-recorded entries remain readable. *)

val enabled : unit -> bool

val record : entry -> unit
(** Appends to the calling domain's ring (no-op when disabled).  Called
    by {!Span} and {!Event}; direct use is fine for layer-specific
    breadcrumbs.  Slots are fixed-width: oversized strings are
    truncated and detail pairs beyond the slot are dropped. *)

val entries : ?req:string -> unit -> entry list
(** Everything currently held across all rings, oldest first (merged by
    timestamp); [?req] keeps only entries attributed to that trace id.
    Best-effort under concurrent writers — see the module comment. *)

val clear : unit -> unit
(** Drops all rings (they are recreated lazily on the next record). *)

val to_jsonl : entry list -> string
(** One JSON object per line — [kind], [t_us] (relative to the earliest
    entry in the list), [dur_us], [tid], [req], [scope], [name],
    [detail] — each line parses with [Pipeline.Json.parse].  This is the
    flight-dump artifact format. *)
