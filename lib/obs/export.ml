(* obs sits below the pipeline layer, so both renderers write their
   output directly (the JSON form parses with Pipeline.Json.parse). *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.bprintf buf "%.1f" f
  else Printf.bprintf buf "%.9g" f

(* ---- Prometheus text format ------------------------------------------ *)

let prometheus ?(prefix = "recpart_") ?(gauges = []) ?window (m : Metrics.t) =
  let buf = Buffer.create 2048 in
  List.iter
    (fun (name, v) ->
      let n = prefix ^ sanitize name in
      Printf.bprintf buf "# TYPE %s gauge\n%s " n n;
      num buf v;
      Buffer.add_char buf '\n')
    gauges;
  List.iter
    (fun (name, v) ->
      let n = prefix ^ sanitize name in
      Printf.bprintf buf "# TYPE %s counter\n%s %d\n" n n v)
    m.Metrics.counters;
  List.iter
    (fun (name, (s : Histogram.snap)) ->
      let n = prefix ^ sanitize name in
      Printf.bprintf buf "# TYPE %s histogram\n" n;
      let cum = ref 0 in
      List.iter
        (fun (ub, c) ->
          cum := !cum + c;
          Printf.bprintf buf "%s_bucket{le=\"%d\"} %d\n" n ub !cum)
        s.Histogram.buckets;
      Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" n s.Histogram.count;
      Printf.bprintf buf "%s_sum %d\n%s_count %d\n" n s.Histogram.sum n
        s.Histogram.count)
    m.Metrics.histograms;
  (match window with
  | None -> ()
  | Some w ->
      let summary = Window.summary w in
      Printf.bprintf buf "# TYPE %swindow_period_seconds gauge\n" prefix;
      Printf.bprintf buf "%swindow_period_seconds " prefix;
      num buf (Window.period_s w);
      Buffer.add_char buf '\n';
      Printf.bprintf buf "# TYPE %swindow_closed gauge\n" prefix;
      Printf.bprintf buf "%swindow_closed %d\n" prefix (Window.closed w);
      if summary <> [] then begin
        Printf.bprintf buf "# TYPE %swindow_quantile gauge\n" prefix;
        Printf.bprintf buf "# TYPE %swindow_samples gauge\n" prefix;
        List.iter
          (fun (name, (q : Window.quantiles)) ->
            let label = sanitize name in
            Printf.bprintf buf "%swindow_samples{name=\"%s\"} %d\n" prefix
              label q.Window.count;
            List.iter
              (fun (tag, v) ->
                Printf.bprintf buf "%swindow_quantile{name=\"%s\",q=\"%s\"} "
                  prefix label tag;
                num buf v;
                Buffer.add_char buf '\n')
              [
                ("0.5", q.Window.p50);
                ("0.9", q.Window.p90);
                ("0.99", q.Window.p99);
              ])
          summary
      end);
  Buffer.contents buf

(* ---- JSON snapshot --------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let hist_json buf (s : Histogram.snap) =
  Printf.bprintf buf "{\"count\": %d, \"sum\": %d" s.Histogram.count
    s.Histogram.sum;
  List.iter
    (fun (tag, q) ->
      Printf.bprintf buf ", \"%s\": " tag;
      num buf (Histogram.percentile s q))
    [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ];
  Buffer.add_string buf ", \"buckets\": [";
  List.iteri
    (fun k (ub, c) ->
      if k > 0 then Buffer.add_string buf ", ";
      Printf.bprintf buf "[%d, %d]" ub c)
    s.Histogram.buckets;
  Buffer.add_string buf "]}"

let json_string ?(gauges = []) ?window (m : Metrics.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{";
  if gauges <> [] then begin
    Buffer.add_string buf "\"gauges\": {";
    List.iteri
      (fun k (name, v) ->
        if k > 0 then Buffer.add_string buf ", ";
        escape buf name;
        Buffer.add_string buf ": ";
        num buf v)
      gauges;
    Buffer.add_string buf "}, "
  end;
  Buffer.add_string buf "\"counters\": {";
  List.iteri
    (fun k (name, v) ->
      if k > 0 then Buffer.add_string buf ", ";
      escape buf name;
      Printf.bprintf buf ": %d" v)
    m.Metrics.counters;
  Buffer.add_string buf "}, \"histograms\": {";
  List.iteri
    (fun k (name, s) ->
      if k > 0 then Buffer.add_string buf ", ";
      escape buf name;
      Buffer.add_string buf ": ";
      hist_json buf s)
    m.Metrics.histograms;
  Buffer.add_string buf "}";
  (match window with
  | None -> ()
  | Some w ->
      Buffer.add_string buf ", \"windows\": {\"period_s\": ";
      num buf (Window.period_s w);
      Printf.bprintf buf ", \"max\": %d, \"closed\": %d, \"histograms\": {"
        (Window.max_windows w) (Window.closed w);
      List.iteri
        (fun k (name, (q : Window.quantiles)) ->
          if k > 0 then Buffer.add_string buf ", ";
          escape buf name;
          Printf.bprintf buf ": {\"count\": %d, \"sum\": %d" q.Window.count
            q.Window.sum;
          List.iter
            (fun (tag, v) ->
              Printf.bprintf buf ", \"%s\": " tag;
              num buf v)
            [
              ("p50", q.Window.p50);
              ("p90", q.Window.p90);
              ("p99", q.Window.p99);
            ];
          Buffer.add_char buf '}')
        (Window.summary w);
      Buffer.add_string buf "}}");
  Buffer.add_string buf "}";
  Buffer.contents buf
