(** A combined snapshot of every registered counter and histogram —
    what pipeline reports embed.

    Counters and histograms are cumulative for the process; {!diff} turns
    two snapshots into the activity between them (a per-run view). *)

type t = {
  counters : (string * int) list;
  histograms : (string * Histogram.snap) list;
}

val snapshot : unit -> t

val diff : before:t -> after:t -> t
(** Per-name subtraction.  Counters that did not move and histograms that
    saw no observations are dropped, so a diff only lists the layers the
    run actually exercised. *)

val merge : t -> t -> t
(** Per-name addition (counter values summed, histogram counts/sums/
    buckets summed) — how {!Window} folds per-window diffs back into one
    view.  Names that sum to zero are dropped, mirroring {!diff}. *)

val reset_all : unit -> unit
(** Zeroes every registered counter and histogram ({!Counter.reset_all} +
    {!Histogram.reset_all}).  For section isolation in benchmarks and
    tests — cumulative process metrics restart from a clean slate. *)

val filter : (string -> bool) -> t -> t
(** Keeps the counters and histograms whose name satisfies the predicate
    (e.g. only the [presburger.]/[omega.] analysis metrics). *)

val is_empty : t -> bool
