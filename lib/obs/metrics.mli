(** A combined snapshot of every registered counter and histogram —
    what pipeline reports embed.

    Counters and histograms are cumulative for the process; {!diff} turns
    two snapshots into the activity between them (a per-run view). *)

type t = {
  counters : (string * int) list;
  histograms : (string * Histogram.snap) list;
}

val snapshot : unit -> t

val diff : before:t -> after:t -> t
(** Per-name subtraction.  Counters that did not move and histograms that
    saw no observations are dropped, so a diff only lists the layers the
    run actually exercised. *)

val filter : (string -> bool) -> t -> t
(** Keeps the counters and histograms whose name satisfies the predicate
    (e.g. only the [presburger.]/[omega.] analysis metrics). *)

val is_empty : t -> bool
