(** The single clock every span and phase timing goes through.

    The primary source is [CLOCK_MONOTONIC] (via the bechamel C stub), so
    timings cannot go backwards under NTP adjustment.  If that clock is
    unavailable at runtime (it reports a frozen value), readings fall back
    to {!Unix.gettimeofday} forced monotone by a global high-water mark —
    documented fallback only, never the preferred path. *)

val now_ns : unit -> int64
(** Nanoseconds on a monotonic timeline.  The origin is unspecified (boot
    time on Linux); only differences are meaningful. *)

val now_s : unit -> float
(** [now_ns] in seconds. *)

val elapsed_s : int64 -> float
(** [elapsed_s t0] is the seconds elapsed since the earlier reading
    [t0]. *)

val wall_s : unit -> float
(** Wall-clock epoch seconds ({!Unix.gettimeofday}) — for timestamps
    meant to be correlated with the outside world, never for durations. *)
