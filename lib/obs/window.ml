type window = { until_ns : int64; metrics : Metrics.t }

type t = {
  period_ns : int64;
  n : int;
  m : Mutex.t;
  ring : window option array;
  mutable next : int;  (* next write position *)
  mutable closed : int;  (* windows closed so far *)
  mutable base : Metrics.t;  (* cumulative snapshot at the last roll *)
  mutable opened_ns : int64;
}

let create ?(windows = 60) ~period_s () =
  if windows < 1 then invalid_arg "Obs.Window.create: windows must be >= 1";
  if period_s <= 0.0 then
    invalid_arg "Obs.Window.create: period_s must be > 0";
  {
    period_ns = Int64.of_float (period_s *. 1e9);
    n = windows;
    m = Mutex.create ();
    ring = Array.make windows None;
    next = 0;
    closed = 0;
    base = Metrics.snapshot ();
    opened_ns = Clock.now_ns ();
  }

let period_s t = Int64.to_float t.period_ns *. 1e-9
let max_windows t = t.n

let roll_locked t now =
  let after = Metrics.snapshot () in
  t.ring.(t.next) <-
    Some { until_ns = now; metrics = Metrics.diff ~before:t.base ~after };
  t.next <- (t.next + 1) mod t.n;
  t.closed <- t.closed + 1;
  t.base <- after;
  t.opened_ns <- now

let roll t =
  Mutex.lock t.m;
  roll_locked t (Clock.now_ns ());
  Mutex.unlock t.m

let roll_if_due t =
  (* Unlocked age check first: the per-request cost is one clock read
     until a period boundary actually passes. *)
  let now = Clock.now_ns () in
  if Int64.sub now t.opened_ns >= t.period_ns then begin
    Mutex.lock t.m;
    (* another domain may have rolled while we waited for the lock *)
    if Int64.sub now t.opened_ns >= t.period_ns then roll_locked t now;
    Mutex.unlock t.m
  end

let closed t =
  Mutex.lock t.m;
  let c = min t.closed t.n in
  Mutex.unlock t.m;
  c

let windows t =
  Mutex.lock t.m;
  let out = ref [] in
  (* walk backwards from the most recent write: newest first *)
  for i = 0 to t.n - 1 do
    let k = ((t.next - 1 - i) mod t.n + t.n) mod t.n in
    match t.ring.(k) with
    | Some w -> out := w :: !out
    | None -> ()
  done;
  Mutex.unlock t.m;
  List.rev !out

let merged t =
  Mutex.lock t.m;
  let parts =
    Array.to_list t.ring
    |> List.filter_map (Option.map (fun w -> w.metrics))
  in
  (* include the in-progress window, so a freshly started service still
     reports its recent activity *)
  let current = Metrics.diff ~before:t.base ~after:(Metrics.snapshot ()) in
  Mutex.unlock t.m;
  List.fold_left Metrics.merge current parts

type quantiles = {
  count : int;
  sum : int;
  p50 : float;
  p90 : float;
  p99 : float;
}

let quantiles_of (s : Histogram.snap) =
  {
    count = s.Histogram.count;
    sum = s.Histogram.sum;
    p50 = Histogram.percentile s 0.5;
    p90 = Histogram.percentile s 0.9;
    p99 = Histogram.percentile s 0.99;
  }

let summary t =
  let m = merged t in
  List.map (fun (name, h) -> (name, quantiles_of h)) m.Metrics.histograms
