(** Critical-path analysis of a recorded span timeline.

    Consumes the generic {!Sink.span} list an instrumented execution
    leaves behind (obs sits below the runtime layer, so nothing here
    knows about schedules or phases beyond the span naming convention)
    and answers the scheduler-observability questions: which work unit
    did each barrier wait for (straggler attribution), how much of the
    wall time is on the critical path, and how long the longest measured
    recurrence chain really was — the quantity Theorem 1 bounds by
    [⌈log_a L⌉ + 1].

    Naming convention (produced by the executor):
    - a span named ["phase:<label>"] delimits one barrier-terminated
      phase;
    - spans named ["task"] inside it carry args
      [("phase", <label>); ("len", <points>)] and either
      [("chain", <id>)] (a recurrence chain / sequential task) or
      [("block", <id>)] (a DOALL block).

    Unknown spans are ignored, so the analysis is safe to run on any
    sink (pipeline stage spans, service spans, …). *)

type unit_kind = Chain | Block

type task = {
  kind : unit_kind;
  id : int;  (** chain id (REC: index into the chain table) or block id *)
  len : int;  (** statement instances (chain points) in the unit *)
  tid : int;  (** domain that executed it *)
  start_ns : int64;
  dur_ns : int64;
}

type barrier = {
  label : string;  (** the phase label, e.g. ["P1"], ["P2-chains"] *)
  start_ns : int64;
  wall_ns : int64;  (** phase wall time, barrier included *)
  n_tasks : int;
  n_domains : int;  (** distinct executing domains observed *)
  busy_ns : int64;  (** Σ task durations across domains *)
  idle_fraction : float;
      (** 1 − busy / (threads × wall), clamped to [0, 1]; 0 on a
          zero-duration phase *)
  straggler : task option;
      (** the latest-finishing unit — the one the barrier waited for *)
  crit_ns : int64;
      (** straggler finish − phase start (= wall when no tasks were
          recorded): this phase's contribution to the critical path *)
  longest_len : int;  (** largest unit (points) in the phase; 0 if none *)
}

type t = {
  threads : int;  (** parallelism used for idle attribution *)
  barriers : barrier list;  (** phases in execution order *)
  wall_ns : int64;  (** Σ phase wall times *)
  critical_ns : int64;  (** Σ per-phase critical contributions *)
  critical_fraction : float;
      (** critical_ns / wall_ns, clamped to [0, 1]; 0 on zero wall *)
  longest_chain : int option;
      (** longest measured chain (points) over all [Chain] units; [None]
          when no chain task was recorded *)
}

val of_spans : ?threads:int -> ?theorem_bound:int -> Sink.span list -> t
(** Builds the analysis from a recorded timeline ({!Sink.spans} order —
    sorted by start time).  [threads] (default: the largest number of
    distinct domains seen in any one phase, at least 1) sets the
    denominator for idle attribution.  Phases with duplicate labels are
    kept separate (tasks attach to the innermost enclosing phase
    window).  When [theorem_bound] is given and a chain was measured,
    {!observe_chain_ratio} is ticked. *)

val observe_chain_ratio : measured:int -> bound:int -> unit
(** Ticks the gateable counter [runtime.sched.longest_chain_ratio_pct]
    with [100·measured/bound] — the measured longest chain as a
    percentage of the Theorem 1 bound [⌈log_a L⌉ + 1].  A rising value
    across runs of the same experiment means chains are getting longer
    relative to the bound (a partitioner regression); values above 100
    mean the bound is violated.  No-op unless both arguments are
    positive. *)

val to_text : ?theorem_bound:int -> t -> string
(** Human-readable critical-path summary and per-barrier straggler
    table; [theorem_bound] adds the measured-longest-chain vs Theorem 1
    comparison line. *)
