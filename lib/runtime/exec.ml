(* Partition an array of work items into [threads] buckets: blocks for
   DOALL instance arrays, longest-first round-robin for tasks.  A thread
   count ≤ 1 always degrades to one bucket (never raises). *)
let doall_buckets threads instances =
  let threads = max 1 threads in
  let n = Array.length instances in
  let size = (n + threads - 1) / threads in
  List.init threads (fun t ->
      let lo = t * size in
      let hi = min n (lo + size) in
      if lo >= hi then [||] else Array.sub instances lo (hi - lo))
  |> List.filter (fun b -> Array.length b > 0)

let task_buckets threads tasks =
  let threads = max 1 threads in
  let order = Array.copy tasks in
  Array.sort (fun a b -> compare (Array.length b) (Array.length a)) order;
  let buckets = Array.make threads [] in
  let loads = Array.make threads 0 in
  Array.iter
    (fun task ->
      let best = ref 0 in
      for k = 1 to threads - 1 do
        if loads.(k) < loads.(!best) then best := k
      done;
      buckets.(!best) <- task :: buckets.(!best);
      loads.(!best) <- loads.(!best) + Array.length task)
    order;
  Array.to_list (Array.map List.rev buckets)

type phase_stat = {
  label : string;
  n_instances : int;
  n_units : int;
  loads : int array;
  seconds : float;
}

type timed = { store : Arrays.t; seconds : float; phase_stats : phase_stat list }

(* The single execution path: every phase — sequential or parallel — goes
   through here, so instrumentation (per-phase wall time and per-domain
   load) is measured on exactly the code that runs. *)
let run_phase_timed env store ~threads phase =
  let threads = max 1 threads in
  let label = Sched.phase_label phase in
  let n_instances = Sched.phase_size phase in
  let t0 = Unix.gettimeofday () in
  let n_units, loads =
    if threads = 1 then begin
      Array.iter (Interp.exec_instance env store) (Sched.phase_instances phase);
      let units =
        match phase with
        | Sched.Doall _ -> if n_instances = 0 then 0 else 1
        | Sched.Tasks { tasks; _ } ->
            Array.fold_left
              (fun acc t -> if Array.length t = 0 then acc else acc + 1)
              0 tasks
      in
      (units, [| n_instances |])
    end
    else begin
      let work =
        match phase with
        | Sched.Doall { instances; _ } ->
            List.map (fun b -> [ b ]) (doall_buckets threads instances)
        | Sched.Tasks { tasks; _ } -> task_buckets threads tasks
      in
      let loads =
        Array.of_list
          (List.map
             (List.fold_left (fun acc t -> acc + Array.length t) 0)
             work)
      in
      let n_units =
        match phase with
        | Sched.Doall _ -> Array.fold_left (fun acc l -> if l > 0 then acc + 1 else acc) 0 loads
        | Sched.Tasks { tasks; _ } ->
            Array.fold_left
              (fun acc t -> if Array.length t = 0 then acc else acc + 1)
              0 tasks
      in
      let run_bucket tasks =
        List.iter (Array.iter (Interp.exec_instance env store)) tasks
      in
      (* Spawn domains only for buckets that hold work: empty buckets would
         pay the domain fork/join cost for nothing. *)
      (match
         List.filter
           (fun b -> List.exists (fun t -> Array.length t > 0) b)
           work
       with
      | [] -> ()
      | first :: rest ->
          let domains =
            List.map (fun b -> Domain.spawn (fun () -> run_bucket b)) rest
          in
          run_bucket first;
          List.iter Domain.join domains);
      (n_units, loads)
    end
  in
  { label; n_instances; n_units; loads; seconds = Unix.gettimeofday () -. t0 }

let run_timed env ~threads s =
  let store = Interp.scan_bounds env in
  let t0 = Unix.gettimeofday () in
  let phase_stats =
    List.map (run_phase_timed env store ~threads) s.Sched.phases
  in
  { store; seconds = Unix.gettimeofday () -. t0; phase_stats }

let run env ~threads s = (run_timed env ~threads s).store
let wall_time env ~threads s = (run_timed env ~threads s).seconds

let check env ~threads s =
  let seq = Interp.run_sequential env in
  let got = run env ~threads s in
  if Arrays.equal seq got then Ok ()
  else
    Error
      (Printf.sprintf "parallel execution diverged (max abs diff %g)"
         (Arrays.max_abs_diff seq got))

let thread_loads timed ~threads =
  let threads = max 1 threads in
  let acc = Array.make threads 0 in
  List.iter
    (fun ps ->
      Array.iteri
        (fun k l -> if k < threads then acc.(k) <- acc.(k) + l)
        ps.loads)
    timed.phase_stats;
  acc
