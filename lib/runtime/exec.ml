(* Legacy block distribution, kept for tests: the execution path now
   addresses work as (unit, offset, length) chunks and never re-slices
   instance arrays. *)
let doall_buckets threads instances =
  let threads = max 1 threads in
  let n = Array.length instances in
  let size = (n + threads - 1) / threads in
  List.init threads (fun t ->
      let lo = t * size in
      let hi = min n (lo + size) in
      if lo >= hi then [||] else Array.sub instances lo (hi - lo))
  |> List.filter (fun b -> Array.length b > 0)

type engine = [ `Bytecode | `Compiled | `Interp ]

let engine_name = function
  | `Bytecode -> "bytecode"
  | `Compiled -> "compiled"
  | `Interp -> "interp"

type chunking = [ `Static | `Cost of Sim.cost ]

let chunking_name = function `Static -> "static" | `Cost _ -> "cost"

type phase_stat = {
  label : string;
  n_instances : int;
  n_units : int;
  loads : int array;
  busy : float array;
  alloc : float array;
  seconds : float;
}

type timed = { store : Arrays.t; seconds : float; phase_stats : phase_stat list }

let task_len_hist = Obs.Histogram.make "exec.task_len"
let task_ns_hist = Obs.Histogram.make "exec.task_ns"

(* ---- engine-agnostic phase runners ----------------------------------- *)

(* A chunk addresses a contiguous instance range of one work unit — a
   DOALL block ([c_unit] 0, [c_id] the block ordinal) or a whole
   sequential task ([c_unit] = [c_id] = the task index; for REC plans the
   recurrence-chain id, which the per-task spans carry so barrier
   stragglers stay attributable to a chain).  Chunks are descriptors over
   the phase's flat buffers: building them copies no instance data. *)
type chunk = { c_unit : int; c_id : int; c_off : int; c_len : int }

(* A phase prepared for execution.  [p_runner ()] yields this domain's
   range runner (the bytecode engine allocates a per-domain scratch stack
   here; closure engines return a shared closure). *)
type prepared = {
  p_kind : string;  (* "block" | "chain" — the span unit-id arg *)
  p_units : int array;  (* per-unit instance counts *)
  p_runner : unit -> int -> int -> int -> unit;  (* unit off len *)
}

let kind_of_phase = function
  | Sched.Doall _ -> "block"
  | Sched.Tasks _ -> "chain"

let prepared_of_exec (exec : Sched.instance -> unit) phase =
  match phase with
  | Sched.Doall { instances; _ } ->
      {
        p_kind = "block";
        p_units = [| Array.length instances |];
        p_runner =
          (fun () _u off len ->
            for i = off to off + len - 1 do
              exec instances.(i)
            done);
      }
  | Sched.Tasks { tasks; _ } ->
      {
        p_kind = "chain";
        p_units = Array.map Array.length tasks;
        p_runner =
          (fun () u off len ->
            let t = tasks.(u) in
            for i = off to off + len - 1 do
              exec t.(i)
            done);
      }

(* ---- chunk building --------------------------------------------------- *)

(* [k] near-equal contiguous ranges over [n] DOALL instances (never an
   empty range: [k] is clamped to [n]). *)
let doall_chunk_ranges ~chunks n =
  let k = max 1 chunks in
  if n <= 0 then []
  else
    let k = min k n in
    List.init k (fun t ->
        let lo = t * n / k and hi = (t + 1) * n / k in
        { c_unit = 0; c_id = t; c_off = lo; c_len = hi - lo })

(* Longest-first LPT deal of whole-task chunks into [threads] buckets —
   the static schedule.  Buckets keep their chunks in longest-first
   order. *)
let lpt_deal threads chunks =
  let threads = max 1 threads in
  let order = Array.of_list chunks in
  Array.sort
    (fun a b ->
      let c = compare b.c_len a.c_len in
      if c <> 0 then c else compare a.c_id b.c_id)
    order;
  let buckets = Array.make threads [] in
  let loads = Array.make threads 0 in
  Array.iter
    (fun c ->
      let best = ref 0 in
      for k = 1 to threads - 1 do
        if loads.(k) < loads.(!best) then best := k
      done;
      buckets.(!best) <- c :: buckets.(!best);
      loads.(!best) <- loads.(!best) + c.c_len)
    order;
  Array.to_list (Array.map List.rev buckets)

(* How a phase's chunks are driven:
   - sequential runs execute them in order on the calling domain;
   - [`Static] pre-deals them into one bucket per domain (equal DOALL
     blocks, LPT for tasks) — the legacy schedule;
   - [`Cost] builds a single ordered queue (cost-proportional DOALL
     blocks sized by {!Sim.doall_chunk_count}; whole chains sorted
     longest-first) drained by all domains through one atomic cursor, so
     late-waking or straggling domains simply take fewer chunks. *)
type disposition =
  | Seq of chunk list
  | Buckets of chunk list list
  | Queue of chunk array

let dispose ~chunking ~threads phase prepared =
  match phase with
  | Sched.Doall _ ->
      let n = Array.fold_left ( + ) 0 prepared.p_units in
      if threads <= 1 then Seq (doall_chunk_ranges ~chunks:1 n)
      else (
        match chunking with
        | `Static ->
            Buckets
              (List.map (fun c -> [ c ]) (doall_chunk_ranges ~chunks:threads n))
        | `Cost cost ->
            let k = Sim.doall_chunk_count cost ~threads ~n in
            Queue (Array.of_list (doall_chunk_ranges ~chunks:k n)))
  | Sched.Tasks _ ->
      let chunks =
        List.filter
          (fun c -> c.c_len > 0)
          (List.init (Array.length prepared.p_units) (fun u ->
               { c_unit = u; c_id = u; c_off = 0; c_len = prepared.p_units.(u) }))
      in
      if threads <= 1 then Seq chunks
      else (
        match chunking with
        | `Static -> Buckets (lpt_deal threads chunks)
        | `Cost _ ->
            let arr = Array.of_list chunks in
            Array.sort
              (fun a b ->
                let c = compare b.c_len a.c_len in
                if c <> 0 then c else compare a.c_id b.c_id)
              arr;
            Queue arr)

let disposition_units = function
  | Seq chunks -> List.length chunks
  | Buckets buckets -> List.fold_left (fun acc b -> acc + List.length b) 0 buckets
  | Queue chunks -> Array.length chunks

(* ---- instrumented chunk execution ------------------------------------ *)

(* Runs the chunks [iter_chunks] yields to this domain and returns the
   seconds it was busy, the words it allocated (the GC delta is taken
   inside the executing domain, so on OCaml 5 the counters are exact for
   this domain's work) and the instances it executed.  With a recording
   sink each chunk gets a span carrying the per-chunk sample
   {!Obs.Critpath} consumes: [("phase", label)], [(kind, id)] and
   [("len", points)]. *)
let run_chunks ~sink ~label ~kind runner iter_chunks =
  let gc0 = Obs.Gcstats.quick () in
  let t0 = Obs.Clock.now_ns () in
  let load = ref 0 in
  if not (Obs.Sink.enabled sink) then
    iter_chunks (fun c ->
        if c.c_len > 0 then begin
          load := !load + c.c_len;
          runner c.c_unit c.c_off c.c_len
        end)
  else
    Obs.Span.with_ ~sink ~name:("bucket:" ^ label) (fun () ->
        iter_chunks (fun c ->
            if c.c_len > 0 then begin
              load := !load + c.c_len;
              let s0 = Obs.Clock.now_ns () in
              Obs.Span.with_ ~sink ~name:"task"
                ~args:
                  [
                    ("phase", label);
                    (kind, string_of_int c.c_id);
                    ("len", string_of_int c.c_len);
                  ]
                (fun () -> runner c.c_unit c.c_off c.c_len);
              Obs.Histogram.observe task_len_hist c.c_len;
              Obs.Histogram.observe task_ns_hist
                (Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) s0))
            end));
  let busy = Obs.Clock.elapsed_s t0 in
  let words =
    Obs.Gcstats.(allocated_words (diff ~before:gc0 ~after:(quick ())))
  in
  (busy, words, !load)

(* The single execution path: every phase — sequential or parallel, any
   engine, either chunking mode — goes through here, so instrumentation
   (per-phase wall time and per-domain load/busy time) is measured on
   exactly the code that runs.  Parallel work is handed to the persistent
   [pool]; the return from {!Workers.run} is the inter-phase barrier. *)
let run_phase_timed ?(sink = Obs.Sink.null) ~pool ~chunking prepared ~threads
    phase =
  let threads = max 1 threads in
  let label = Sched.phase_label phase in
  let kind = prepared.p_kind in
  let n_instances = Sched.phase_size phase in
  let t0 = Obs.Clock.now_ns () in
  let disposition = dispose ~chunking ~threads phase prepared in
  let n_units = disposition_units disposition in
  let require_pool () =
    match pool with
    | Some p -> p
    | None -> invalid_arg "Exec: parallel phase without a pool"
  in
  let loads, busy, alloc =
    match disposition with
    | Seq chunks ->
        let runner = prepared.p_runner () in
        let b, w, _ =
          run_chunks ~sink ~label ~kind runner (fun f -> List.iter f chunks)
        in
        ([| n_instances |], [| b |], [| w |])
    | Buckets buckets -> (
        (* Hand only buckets that hold work to the pool: empty buckets
           would pay the queue round-trip for nothing. *)
        match List.filter (fun b -> b <> []) buckets with
        | [] -> ([||], [||], [||])
        | buckets ->
            let pool = require_pool () in
            let stats =
              Workers.run pool
                (Array.of_list
                   (List.map
                      (fun b () ->
                        let runner = prepared.p_runner () in
                        run_chunks ~sink ~label ~kind runner (fun f ->
                            List.iter f b))
                      buckets))
            in
            ( Array.map (fun (_, _, l) -> l) stats,
              Array.map (fun (b, _, _) -> b) stats,
              Array.map (fun (_, w, _) -> w) stats ))
    | Queue chunks ->
        if Array.length chunks = 0 then ([||], [||], [||])
        else begin
          let pool = require_pool () in
          let next = Atomic.make 0 in
          let n_chunks = Array.length chunks in
          let stats =
            Workers.run pool
              (Array.init (min threads n_chunks) (fun _ () ->
                   let runner = prepared.p_runner () in
                   run_chunks ~sink ~label ~kind runner (fun f ->
                       let rec drain () =
                         let k = Atomic.fetch_and_add next 1 in
                         if k < n_chunks then begin
                           f chunks.(k);
                           drain ()
                         end
                       in
                       drain ())))
          in
          ( Array.map (fun (_, _, l) -> l) stats,
            Array.map (fun (b, _, _) -> b) stats,
            Array.map (fun (_, w, _) -> w) stats )
        end
  in
  {
    label;
    n_instances;
    n_units;
    loads;
    busy;
    alloc;
    seconds = Obs.Clock.elapsed_s t0;
  }

let run_timed ?(sink = Obs.Sink.null) ?(engine = `Compiled)
    ?(chunking = `Cost Sim.base_seconds) ?workers env ~threads s =
  let threads = max 1 threads in
  let store = Interp.scan_bounds env in
  (* Engine setup — kernel compilation and, for the bytecode engine,
     per-phase work packing — happens outside the timed region, like
     store setup: [seconds] measures execution of the hot loop. *)
  let prepare : Sched.phase -> prepared =
    match engine with
    | `Interp ->
        let exec = Interp.exec_instance env store in
        prepared_of_exec exec
    | `Compiled ->
        let compiled =
          Obs.Span.with_ ~sink ~name:"compile" (fun () ->
              Compile.program env store)
        in
        prepared_of_exec (Compile.exec_instance compiled)
    | `Bytecode ->
        let bp =
          Obs.Span.with_ ~sink ~name:"compile" (fun () ->
              Bytecode.compile env store)
        in
        fun phase ->
          let w = Bytecode.pack bp phase in
          {
            p_kind = kind_of_phase phase;
            p_units = Bytecode.unit_sizes w;
            p_runner =
              (fun () ->
                let sc = Bytecode.scratch bp in
                fun u off len -> Bytecode.exec_range bp sc w ~unit_:u ~off ~len);
          }
  in
  let prepped = List.map (fun phase -> (phase, prepare phase)) s.Sched.phases in
  let pool, owned =
    if threads = 1 then (None, false)
    else
      match workers with
      | Some w -> (Some w, false)
      | None -> (Some (Workers.create ~domains:threads), true)
  in
  Fun.protect
    ~finally:(fun () -> if owned then Option.iter Workers.shutdown pool)
    (fun () ->
      let t0 = Obs.Clock.now_ns () in
      let phase_stats =
        List.map
          (fun (phase, prepared) ->
            Obs.Span.with_ ~sink ~name:("phase:" ^ Sched.phase_label phase)
              (fun () ->
                run_phase_timed ~sink ~pool ~chunking prepared ~threads phase))
          prepped
      in
      { store; seconds = Obs.Clock.elapsed_s t0; phase_stats })

let run ?engine ?chunking env ~threads s =
  (run_timed ?engine ?chunking env ~threads s).store

let wall_time ?engine ?chunking env ~threads s =
  (run_timed ?engine ?chunking env ~threads s).seconds

let check ?engine ?chunking env ~threads s =
  let seq = Interp.run_sequential env in
  let got = run ?engine ?chunking env ~threads s in
  if Arrays.equal seq got then Ok ()
  else
    Error
      (Printf.sprintf "parallel execution diverged (max abs diff %g)"
         (Arrays.max_abs_diff seq got))

let thread_loads timed ~threads =
  let threads = max 1 threads in
  let acc = Array.make threads 0 in
  List.iter
    (fun ps ->
      (* A phase may have used more buckets than [threads] (e.g. stats
         taken with a smaller thread count than the run): fold the
         overflow into the last slot instead of dropping it. *)
      Array.iteri
        (fun k l -> acc.(min k (threads - 1)) <- acc.(min k (threads - 1)) + l)
        ps.loads)
    timed.phase_stats;
  acc

(* Exposed for tests. *)
let doall_chunks ~chunks n =
  List.map (fun c -> (c.c_off, c.c_len)) (doall_chunk_ranges ~chunks n)
