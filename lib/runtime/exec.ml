(* Partition an array of work items into [threads] buckets: blocks for
   DOALL instance arrays, longest-first round-robin for tasks.  A thread
   count ≤ 1 always degrades to one bucket (never raises). *)
let doall_buckets threads instances =
  let threads = max 1 threads in
  let n = Array.length instances in
  let size = (n + threads - 1) / threads in
  List.init threads (fun t ->
      let lo = t * size in
      let hi = min n (lo + size) in
      if lo >= hi then [||] else Array.sub instances lo (hi - lo))
  |> List.filter (fun b -> Array.length b > 0)

(* Tasks keep their original index through the length-sorted deal: for a
   REC schedule the index {e is} the chain id, which the per-task spans
   carry so barrier stragglers stay attributable to a chain. *)
let task_buckets threads tasks =
  let threads = max 1 threads in
  let order = Array.mapi (fun i t -> (i, t)) tasks in
  Array.sort
    (fun (_, a) (_, b) -> compare (Array.length b) (Array.length a))
    order;
  let buckets = Array.make threads [] in
  let loads = Array.make threads 0 in
  Array.iter
    (fun ((_, task) as it) ->
      let best = ref 0 in
      for k = 1 to threads - 1 do
        if loads.(k) < loads.(!best) then best := k
      done;
      buckets.(!best) <- it :: buckets.(!best);
      loads.(!best) <- loads.(!best) + Array.length task)
    order;
  Array.to_list (Array.map List.rev buckets)

type engine = [ `Compiled | `Interp ]

let engine_name = function `Compiled -> "compiled" | `Interp -> "interp"

type phase_stat = {
  label : string;
  n_instances : int;
  n_units : int;
  loads : int array;
  busy : float array;
  alloc : float array;
  seconds : float;
}

type timed = { store : Arrays.t; seconds : float; phase_stats : phase_stat list }

let task_len_hist = Obs.Histogram.make "exec.task_len"
let task_ns_hist = Obs.Histogram.make "exec.task_ns"

(* Executes one bucket (a list of indexed sequential tasks) through the
   engine's per-instance function and returns the seconds this domain was
   busy plus the words it allocated (the GC delta is taken inside the
   executing domain, so on OCaml 5 the word counters are exact for this
   bucket's work).  With a recording sink, the bucket and each task get
   their own spans; [kind] names the unit-id arg — ["chain"] for task
   phases (for REC plans the id is the recurrence-chain index), ["block"]
   for DOALL blocks — giving {!Obs.Critpath} the per-chunk samples
   (unit id, point count, duration) it needs to name each barrier's
   straggler. *)
let run_bucket ~sink ~label ~kind exec tasks =
  let gc0 = Obs.Gcstats.quick () in
  let t0 = Obs.Clock.now_ns () in
  if not (Obs.Sink.enabled sink) then
    List.iter (fun (_, t) -> Array.iter (exec : Sched.instance -> unit) t) tasks
  else begin
    let n_inst =
      List.fold_left (fun acc (_, t) -> acc + Array.length t) 0 tasks
    in
    Obs.Span.with_ ~sink ~name:("bucket:" ^ label)
      ~args:[ ("instances", string_of_int n_inst) ]
      (fun () ->
        List.iter
          (fun (id, task) ->
            let len = Array.length task in
            if len > 0 then begin
              let s0 = Obs.Clock.now_ns () in
              Obs.Span.with_ ~sink ~name:"task"
                ~args:
                  [
                    ("phase", label);
                    (kind, string_of_int id);
                    ("len", string_of_int len);
                  ]
                (fun () -> Array.iter exec task);
              Obs.Histogram.observe task_len_hist len;
              Obs.Histogram.observe task_ns_hist
                (Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) s0))
            end)
          tasks)
  end;
  let busy = Obs.Clock.elapsed_s t0 in
  let words =
    Obs.Gcstats.(allocated_words (diff ~before:gc0 ~after:(quick ())))
  in
  (busy, words)

(* The single execution path: every phase — sequential or parallel — goes
   through here, so instrumentation (per-phase wall time and per-domain
   load/busy time) is measured on exactly the code that runs.  Parallel
   buckets are handed to the persistent [pool] (first bucket runs on the
   calling domain, via {!Workers.run}); the return from [Workers.run] is
   the inter-phase barrier. *)
let run_phase_timed ?(sink = Obs.Sink.null) ~pool exec ~threads phase =
  let threads = max 1 threads in
  let label = Sched.phase_label phase in
  let kind =
    match phase with Sched.Doall _ -> "block" | Sched.Tasks _ -> "chain"
  in
  let n_instances = Sched.phase_size phase in
  let t0 = Obs.Clock.now_ns () in
  let n_units, loads, busy, alloc =
    if threads = 1 then begin
      (* Keep tasks separate (same execution order as the flattened
         instances) so sequential profile runs still see per-chain
         spans. *)
      let tasks =
        match phase with
        | Sched.Doall { instances; _ } -> [ (0, instances) ]
        | Sched.Tasks { tasks; _ } ->
            Array.to_list (Array.mapi (fun i t -> (i, t)) tasks)
      in
      let b, w = run_bucket ~sink ~label ~kind exec tasks in
      let units =
        match phase with
        | Sched.Doall _ -> if n_instances = 0 then 0 else 1
        | Sched.Tasks { tasks; _ } ->
            Array.fold_left
              (fun acc t -> if Array.length t = 0 then acc else acc + 1)
              0 tasks
      in
      (units, [| n_instances |], [| b |], [| w |])
    end
    else begin
      let work =
        match phase with
        | Sched.Doall { instances; _ } ->
            List.mapi (fun i b -> [ (i, b) ]) (doall_buckets threads instances)
        | Sched.Tasks { tasks; _ } -> task_buckets threads tasks
      in
      let loads =
        Array.of_list
          (List.map
             (List.fold_left (fun acc (_, t) -> acc + Array.length t) 0)
             work)
      in
      let n_units =
        match phase with
        | Sched.Doall _ -> Array.fold_left (fun acc l -> if l > 0 then acc + 1 else acc) 0 loads
        | Sched.Tasks { tasks; _ } ->
            Array.fold_left
              (fun acc t -> if Array.length t = 0 then acc else acc + 1)
              0 tasks
      in
      (* Hand only buckets that hold work to the pool: empty buckets would
         pay the queue round-trip for nothing. *)
      let stats =
        match
          List.filter
            (fun b -> List.exists (fun (_, t) -> Array.length t > 0) b)
            work
        with
        | [] -> [||]
        | buckets ->
            let pool =
              match pool with
              | Some p -> p
              | None -> invalid_arg "Exec: parallel phase without a pool"
            in
            Workers.run pool
              (Array.of_list
                 (List.map
                    (fun b () -> run_bucket ~sink ~label ~kind exec b)
                    buckets))
      in
      (n_units, loads, Array.map fst stats, Array.map snd stats)
    end
  in
  {
    label;
    n_instances;
    n_units;
    loads;
    busy;
    alloc;
    seconds = Obs.Clock.elapsed_s t0;
  }

let run_timed ?(sink = Obs.Sink.null) ?(engine = `Compiled) ?workers env
    ~threads s =
  let threads = max 1 threads in
  let store = Interp.scan_bounds env in
  (* Engine setup (kernel compilation) happens outside the timed region,
     like store setup: [seconds] measures execution of the hot loop. *)
  let exec =
    match engine with
    | `Interp -> Interp.exec_instance env store
    | `Compiled ->
        let compiled =
          Obs.Span.with_ ~sink ~name:"compile" (fun () ->
              Compile.program env store)
        in
        Compile.exec_instance compiled
  in
  let pool, owned =
    if threads = 1 then (None, false)
    else
      match workers with
      | Some w -> (Some w, false)
      | None -> (Some (Workers.create ~domains:threads), true)
  in
  Fun.protect
    ~finally:(fun () ->
      if owned then Option.iter Workers.shutdown pool)
    (fun () ->
      let t0 = Obs.Clock.now_ns () in
      let phase_stats =
        List.map
          (fun phase ->
            Obs.Span.with_ ~sink ~name:("phase:" ^ Sched.phase_label phase)
              (fun () -> run_phase_timed ~sink ~pool exec ~threads phase))
          s.Sched.phases
      in
      { store; seconds = Obs.Clock.elapsed_s t0; phase_stats })

let run ?engine env ~threads s = (run_timed ?engine env ~threads s).store

let wall_time ?engine env ~threads s =
  (run_timed ?engine env ~threads s).seconds

let check ?engine env ~threads s =
  let seq = Interp.run_sequential env in
  let got = run ?engine env ~threads s in
  if Arrays.equal seq got then Ok ()
  else
    Error
      (Printf.sprintf "parallel execution diverged (max abs diff %g)"
         (Arrays.max_abs_diff seq got))

let thread_loads timed ~threads =
  let threads = max 1 threads in
  let acc = Array.make threads 0 in
  List.iter
    (fun ps ->
      (* A phase may have used more buckets than [threads] (e.g. stats
         taken with a smaller thread count than the run): fold the
         overflow into the last slot instead of dropping it. *)
      Array.iteri
        (fun k l -> acc.(min k (threads - 1)) <- acc.(min k (threads - 1)) + l)
        ps.loads)
    timed.phase_stats;
  acc
