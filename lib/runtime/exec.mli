(** Real multicore execution of a schedule on OCaml 5 domains — the second
    half of the testbed substitution: it independently validates that a
    schedule's parallel phases are race-free in practice (a legal schedule
    leaves the store identical to the sequential run) and provides
    wall-clock measurements.

    Three engines share one instrumented path.  [`Compiled] (default)
    runs each instance through {!Compile} kernels — closures with fused
    affine offsets, no per-instance allocation.  [`Bytecode] runs the
    flat-bytecode VM ({!Bytecode}): whole DOALL blocks and recurrence
    chains execute in a single tight dispatch loop over packed int work
    buffers, with no per-instance closure call, record traversal or
    boxing.  [`Interp] walks the AST via {!Interp.exec_instance}.
    {!Interp.run_sequential} remains the reference oracle for all three
    ({!check}).

    Phases are separated by barriers.  Within a phase, work is addressed
    as [(unit, offset, length)] chunks — descriptors over the phase's
    flat buffers, so chunk setup copies no instance data.  How chunks
    are shaped and driven is the {!chunking} policy:

    - [`Static]: the legacy schedule.  Equal-size DOALL blocks, one per
      domain; whole tasks dealt longest-first (LPT) into one bucket per
      domain.  Assignment is fixed before the phase starts.
    - [`Cost c] (default, with the calibrated {!Sim} cost model): DOALL
      blocks are sized cost-proportionally via {!Sim.doall_chunk_count}
      (several chunks per domain when per-chunk work dwarfs scheduling
      overhead), task chunks are sorted longest-first, and all domains
      drain one ordered queue through an atomic cursor — dynamic
      self-scheduling, so a straggling domain simply takes fewer chunks
      and per-barrier idle time shrinks.

    Both policies execute chunks of the same phase concurrently on a
    persistent {!Workers.t} pool: pass [?workers] to reuse one pool
    across many runs (the analysis service does), or let {!run_timed}
    create a transient pool — domains are then spawned once per run, not
    once per phase.

    All entry points accept any thread count: values ≤ 1 run sequentially
    on the calling domain (never raise), and only chunks that actually
    hold work are handed to the pool.

    Every run goes through one instrumented path ({!run_timed}); {!run},
    {!wall_time} and {!check} are thin views of it, and the pipeline layer
    turns the per-phase statistics into its report.  All timings come from
    {!Obs.Clock} (monotonic).  With a recording {!Obs.Sink.t}, each phase,
    per-domain bucket and chunk additionally becomes a span on the
    executing domain's timeline.  Per-chunk [task] spans carry the sample
    {!Obs.Critpath} consumes — [("phase", label)], [("chain", id)] (task
    phases; the REC chain index) or [("block", id)] (DOALL blocks), and
    [("len", points)] — so every barrier's straggler is attributable to
    a concrete chain or block. *)

type engine = [ `Bytecode | `Compiled | `Interp ]

val engine_name : engine -> string
(** ["bytecode"] / ["compiled"] / ["interp"] — used by reports and the
    service cache key. *)

type chunking = [ `Static | `Cost of Sim.cost ]

val chunking_name : chunking -> string
(** ["static"] / ["cost"]. *)

type phase_stat = {
  label : string;  (** the phase's {!Sched.phase_label} *)
  n_instances : int;  (** statement instances executed in the phase *)
  n_units : int;  (** non-empty chunks (DOALL) or tasks executed *)
  loads : int array;
      (** instances executed per domain (length = executing domain count
          for parallel runs, [[| n |]] for sequential runs) *)
  busy : float array;
      (** seconds each domain spent executing its chunks, aligned with
          [loads]; the gap to [seconds] is barrier idle time *)
  alloc : float array;
      (** words each domain allocated while executing its chunks
          ({!Obs.Gcstats} delta taken inside the domain), aligned with
          [busy] *)
  seconds : float;  (** wall time of the phase, barrier included *)
}

type timed = {
  store : Arrays.t;  (** final array store *)
  seconds : float;  (** total wall time (store setup, kernel compilation
                        and bytecode work packing excluded) *)
  phase_stats : phase_stat list;  (** one entry per phase, in order *)
}

val run_timed :
  ?sink:Obs.Sink.t ->
  ?engine:engine ->
  ?chunking:chunking ->
  ?workers:Workers.t ->
  Interp.env ->
  threads:int ->
  Sched.t ->
  timed
(** Executes the schedule on [threads] domains (sequential on the calling
    domain when [threads ≤ 1]) and records per-phase wall time and
    per-domain load/busy time.  [engine] (default [`Compiled]) selects the
    execution engine; [chunking] (default [`Cost Sim.base_seconds])
    selects the chunk policy; [workers] (default: a transient pool created
    and shut down inside this call) supplies a persistent executor pool;
    [sink] (default {!Obs.Sink.null}) receives phase/bucket/task spans
    when recording. *)

val run :
  ?engine:engine ->
  ?chunking:chunking ->
  Interp.env ->
  threads:int ->
  Sched.t ->
  Arrays.t
(** [run_timed]'s final store. *)

val check :
  ?engine:engine ->
  ?chunking:chunking ->
  Interp.env ->
  threads:int ->
  Sched.t ->
  (unit, string) result
(** Parallel run vs sequential interpreter run array equality. *)

val wall_time :
  ?engine:engine ->
  ?chunking:chunking ->
  Interp.env ->
  threads:int ->
  Sched.t ->
  float
(** Seconds for one parallel run (store setup excluded). *)

val thread_loads : timed -> threads:int -> int array
(** Total instances executed per domain across all phases — the bucket
    load balance statistic of the pipeline report.  Phases that used more
    executors than [threads] have the overflow folded into the last slot
    (nothing is dropped). *)

(**/**)

val doall_buckets : int -> 'a array -> 'a array list
(** Exposed for tests: legacy block distribution; thread counts ≤ 1
    (including negative) yield a single bucket, and empty buckets are
    dropped (an empty input yields no buckets at all). *)

val doall_chunks : chunks:int -> int -> (int * int) list
(** Exposed for tests: [(offset, length)] of each cost-proportional DOALL
    chunk — [chunks] clamped to [1 …​ n], ranges contiguous, complete and
    never empty. *)
