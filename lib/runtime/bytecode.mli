(** Flat-bytecode execution engine — the second-generation compiled
    engine.

    The closure engine ({!Compile}) killed AST walking but still pays one
    OCaml closure call, one boxed [Sched.instance] record and one boxed
    iteration vector per statement instance.  This engine lowers each
    statement once more, into a flat int-coded postfix instruction stream
    (ops + inline operand tables) held in a [Bigarray] buffer, and
    executes whole P1 blocks / P2 chains / P3 blocks with a single tight
    [match]-loop dispatch over a packed int work buffer — no per-instance
    closure call, record traversal or allocation.

    {2 Format}

    One instruction stream holds every statement; [entry] maps a
    statement id to its first pc (or -1 for the closure fallback).
    Instructions execute linearly — postfix evaluation over a small float
    scratch stack — and every stream ends in a store form that terminates
    the instance.  Array references are encoded inline as
    [tbl; c; n; m₀; j₀; …]: the cell is
    [tables.(tbl).(c + Σ mₖ·iter.(jₖ))], the same fused affine offset the
    closure engine computes (both engines share the {!Compile} lowering
    seam, so the address arithmetic is identical by construction).  A
    peephole pass fuses the dominant whole-statement shapes — copy,
    load⊕load, load⊕const — into single superinstructions, so most corpus
    kernels execute one dispatch per instance.

    {2 Semantics and fallback}

    Statements the flat encoding cannot express bit-for-bit — non-affine
    or unscanned references (whose general path carries the
    {!Arrays.initial_value} fallback), and integer [MOD] (checked
    euclidean semantics) — keep their {!Compile} closure kernel and are
    dispatched through it per instance; everything else never leaves the
    VM loop.  {!Interp.run_sequential} remains the bit-for-bit oracle
    either way ([Exec.check], and the differential corpus suite).

    Fused accesses use unchecked array reads/writes: the dry scan
    ({!Interp.scan_bounds}) evaluated every subscript the program
    executes, so offsets of scheduled instances are always in bounds.
    Feeding instances from outside the scanned iteration space is a
    programming error (the closure engine raises [Invalid_argument]
    there; this engine's behaviour is then undefined).

    Instrumented under [runtime.bytecode.*]: counters [stmts],
    [fallbacks], [code_words]. *)

type t
(** A compiled program: instruction stream, literal/array tables, closure
    fallbacks. *)

val compile : Interp.env -> Arrays.t -> t
(** [compile env store] lowers every statement of [env] against the
    frozen [store] (from {!Interp.scan_bounds} on the same [env]).
    Raises [Failure] on unbound variables, exactly like
    {!Compile.program}. *)

type work
(** A phase's instances packed into one flat [Bigarray] int buffer
    ([stride] cells per instance: statement id + padded iteration
    vector).  Work units are tasks (chains) for [Tasks] phases, the whole
    instance array for [Doall] — executors address work as
    [(unit, offset, length)] triples, so chunk setup copies nothing. *)

val pack : t -> Sched.phase -> work
(** Packs a phase (engine setup; do it outside timed regions).  Raises
    [Failure] on an iteration arity mismatch. *)

val unit_sizes : work -> int array
(** Instance count per work unit. *)

val stride : t -> int
(** Work-buffer cells per instance ([1 + max loop depth]). *)

type scratch
(** Per-domain evaluation stack; create one per executing domain (the
    compiled program itself is immutable and safely shared). *)

val scratch : t -> scratch

val exec_range : t -> scratch -> work -> unit_:int -> off:int -> len:int -> unit
(** [exec_range t s w ~unit_ ~off ~len] executes instances
    [off … off+len-1] of work unit [unit_] in order.  Raises
    [Invalid_argument] when the range exceeds the unit. *)

val n_fallbacks : t -> int
(** Statements executing through the closure fallback (0 for fully
    affine programs — exposed for tests and benchmarks). *)

val code_words : t -> int
(** Length of the instruction stream, in int cells. *)
