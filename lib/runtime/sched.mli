(** Executable schedules: an ordered list of phases separated by barriers.
    Inside a phase, work is either a flat fully-parallel set of statement
    instances (DOALL) or a set of parallel sequential tasks (e.g. the WHILE
    chains of the REC partitioning, or lattice cosets for PDM).

    The same schedule value drives the semantic validator ({!Interp}), the
    SMP cost simulator ({!Sim}) and the multicore executor ({!Exec}). *)

type instance = { stmt : int; iter : int array }

type phase =
  | Doall of { label : string; instances : instance array }
  | Tasks of { label : string; tasks : instance array array }

type t = { phases : phase list }

val n_instances : t -> int
val n_phases : t -> int
val phase_label : phase -> string

val phase_size : phase -> int
(** Number of statement instances in the phase. *)

val phase_instances : phase -> instance array
(** All instances of the phase, flattened in task order. *)

val of_phases : phase list -> t
(** Drops empty phases. *)

val sequential_of_trace : Depend.Trace.t -> t
(** One task executing every instance in original program order. *)

val of_rec : stmt:int -> Core.Partition.concrete_rec -> t
(** [P1 DOALL; chains in parallel; P3 DOALL] (empty phases dropped). *)

val of_fronts : Core.Dataflow.concrete -> t
(** One DOALL phase per dataflow front. *)

val of_task_groups :
  label:string -> stmt:int -> Linalg.Ivec.t list list -> t
(** A single phase of parallel sequential tasks (e.g. PDM cosets). *)

val concat : t list -> t
(** Phase-wise concatenation (sequential composition). *)

val check_legal : t -> Depend.Trace.t -> (unit, string) result
(** Verifies that every dependence edge of the exact instance graph is
    respected: source strictly before target (earlier phase, or same task of
    the same phase at a smaller index) and every instance appears exactly
    once. *)
