module Ast = Loopir.Ast
module Prog = Loopir.Prog

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Observability: compile-time shape of the programs flowing through the
   engine, under the [runtime.bytecode.*] naming convention. *)
let stmts_counter = Obs.Counter.make "runtime.bytecode.stmts"
let fallbacks_counter = Obs.Counter.make "runtime.bytecode.fallbacks"
let code_words_counter = Obs.Counter.make "runtime.bytecode.code_words"

(* ---- opcodes ---------------------------------------------------------

   A statement compiles to a postfix instruction stream executed start to
   end (no jumps); the last instruction is always a store form, which
   terminates the instance.  Array references are encoded inline as
   [tbl; c; n; m₀; j₀; …; mₙ₋₁; jₙ₋₁]: the cell is
   [tables.(tbl).(c + Σ mₖ·iter.(jₖ))] — the same fused affine offset the
   closure engine computes, via the shared {!Compile} lowering seam. *)

let op_const = 0 (* lit              push lits.(lit) *)
let op_iter = 1 (* j                 push float iter.(j) *)
let op_load = 2 (* ref               push cell *)
let op_bin = 3 (* op                 pop b, a; push a⊕b *)
let op_neg = 4
let op_sqrt = 5
let op_abs = 6
let op_minn = 7 (* n                 fold top n with infinity *)
let op_maxn = 8 (* n                 fold top n with neg_infinity *)
let op_powk = 9 (* lit               x ← x ** lits.(lit) *)
let op_store = 10 (* ref             pop v; cell ← v; end *)
let op_copy = 11 (* src dst          cell(dst) ← cell(src); end *)
let op_llb = 12 (* op a b dst        cell(dst) ← cell(a) ⊕ cell(b); end *)
let op_lcb = 13 (* op a lit dst      cell(dst) ← cell(a) ⊕ lits.(lit); end *)
let op_clb = 14 (* op lit a dst      cell(dst) ← lits.(lit) ⊕ cell(a); end *)
let op_lllb = 15 (* o1 o2 a b c dst  cell(dst) ← cell(a) ⊕₁ (cell(b) ⊕₂ cell(c)); end *)

let bin_add = 0
let bin_sub = 1
let bin_mul = 2
let bin_div = 3

(* ---- compiled program ------------------------------------------------ *)

type t = {
  code : buf;  (** flat instruction stream, all statements concatenated *)
  entry : int array;  (** per-statement entry pc; -1 = closure fallback *)
  depth : int array;  (** per-statement loop depth *)
  lits : float array;  (** float literal pool *)
  tables : float array array;  (** live array backing stores, by table id *)
  max_stack : int;
  fb : (int array -> unit) array;  (** closure kernels (fallback path) *)
  stride : int;  (** work-buffer cells per instance: 1 + max depth *)
}

type scratch = float array

let scratch t = Array.make (max 1 t.max_stack) 0.0
let n_fallbacks t = Array.fold_left (fun a e -> if e < 0 then a + 1 else a) 0 t.entry
let code_words t = Bigarray.Array1.dim t.code
let stride t = t.stride

(* ---- compilation ----------------------------------------------------- *)

exception Fallback
(* raised while lowering a statement the flat encoding cannot express
   bit-for-bit (non-affine or unscanned reference — the general path has
   the [Arrays.get] initial-value fallback — or integer [Mod] semantics);
   the statement keeps its closure kernel instead. *)

(* Structured instruction, peepholed before the final int encoding. *)
type ref_ = { r_tbl : int; r_base : int; r_terms : (int * int) array }

type ins =
  | Const of int
  | Iter of int
  | Load of ref_
  | Bin of int
  | Neg
  | Sqrt
  | Abs
  | Minn of int
  | Maxn of int
  | Powk of int
  | Store of ref_
  | Copy of ref_ * ref_
  | Llb of int * ref_ * ref_ * ref_
  | Lcb of int * ref_ * int * ref_
  | Clb of int * int * ref_ * ref_
  | Lllb of int * int * ref_ * ref_ * ref_ * ref_

type pools = {
  mutable lit_list : float list;  (* reversed *)
  mutable n_lits : int;
  lit_idx : (int64, int) Hashtbl.t;
  mutable tbl_list : float array list;  (* reversed *)
  mutable n_tbls : int;
}

let lit pools v =
  (* Bit-exact interning (covers nan / -0.0 distinctions). *)
  let bits = Int64.bits_of_float v in
  match Hashtbl.find_opt pools.lit_idx bits with
  | Some i -> i
  | None ->
      let i = pools.n_lits in
      pools.lit_list <- v :: pools.lit_list;
      pools.n_lits <- i + 1;
      Hashtbl.add pools.lit_idx bits i;
      i

let table pools data =
  let rec find i = function
    | [] -> None
    | d :: _ when d == data -> Some (pools.n_tbls - 1 - i)
    | _ :: rest -> find (i + 1) rest
  in
  match find 0 pools.tbl_list with
  | Some i -> i
  | None ->
      let i = pools.n_tbls in
      pools.tbl_list <- data :: pools.tbl_list;
      pools.n_tbls <- i + 1;
      i

let ref_of pools (data, c, terms) =
  {
    r_tbl = table pools data;
    r_base = c;
    r_terms = Array.of_list (List.map (fun (j, m) -> (m, j)) terms);
  }

(* Postfix lowering of the RHS; tracks the evaluation-stack height so the
   VM scratch can be sized exactly. *)
type emitter = { mutable ins : ins list; mutable sp : int; mutable max_sp : int }

let push em i delta =
  em.ins <- i :: em.ins;
  em.sp <- em.sp + delta;
  if em.sp > em.max_sp then em.max_sp <- em.sp

let rec lower_rhs pools ctx em e =
  match e with
  | Ast.Int k -> push em (Const (lit pools (float_of_int k))) 1
  | Ast.Real r -> push em (Const (lit pools r)) 1
  | Ast.Var v -> (
      match Compile.low_slot ctx v with
      | Some j -> push em (Iter j) 1
      | None -> (
          match Compile.low_param ctx v with
          | Some f -> push em (Const (lit pools f)) 1
          | None -> raise Fallback))
  | Ast.Ref (a, subs) -> (
      match Compile.low_ref ctx a subs with
      | Some fused -> push em (Load (ref_of pools fused)) 1
      | None -> raise Fallback)
  | Ast.Bin (bop, a, b) ->
      let op =
        match bop with
        | Ast.Add -> bin_add
        | Ast.Sub -> bin_sub
        | Ast.Mul -> bin_mul
        | Ast.Div -> bin_div
      in
      lower_rhs pools ctx em a;
      lower_rhs pools ctx em b;
      push em (Bin op) (-1)
  | Ast.Un (Ast.Neg, a) ->
      lower_rhs pools ctx em a;
      push em Neg 0
  | Ast.Un (Ast.Sqrt, a) ->
      lower_rhs pools ctx em a;
      push em Sqrt 0
  | Ast.Un (Ast.Abs, a) ->
      lower_rhs pools ctx em a;
      push em Abs 0
  | Ast.Min [] -> push em (Const (lit pools infinity)) 1
  | Ast.Max [] -> push em (Const (lit pools neg_infinity)) 1
  | Ast.Min es ->
      List.iter (lower_rhs pools ctx em) es;
      push em (Minn (List.length es)) (1 - List.length es)
  | Ast.Max es ->
      List.iter (lower_rhs pools ctx em) es;
      push em (Maxn (List.length es)) (1 - List.length es)
  | Ast.Mod (_, _) ->
      (* Checked euclidean integer semantics; keep the closure kernel. *)
      raise Fallback
  | Ast.Pow (a, k) ->
      lower_rhs pools ctx em a;
      push em (Powk (lit pools (float_of_int k))) 0

(* Fuse the ubiquitous whole-statement shapes (copy, load⊕load, load⊕const,
   and the multiply-accumulate [d ← a ⊕₁ (b ⊕₂ c)] of matmul/banded updates)
   into one superinstruction: most corpus kernels then execute exactly one
   dispatch per instance. *)
let peephole ins =
  match ins with
  | [ Load s; Store d ] -> [ Copy (s, d) ]
  | [ Load a; Load b; Bin op; Store d ] -> [ Llb (op, a, b, d) ]
  | [ Load a; Const l; Bin op; Store d ] -> [ Lcb (op, a, l, d) ]
  | [ Const l; Load a; Bin op; Store d ] -> [ Clb (op, l, a, d) ]
  | [ Load a; Load b; Load c; Bin op2; Bin op1; Store d ] ->
      [ Lllb (op1, op2, a, b, c, d) ]
  | _ -> ins

let encode_ref r acc =
  let acc = ref acc in
  let put v = acc := v :: !acc in
  put r.r_tbl;
  put r.r_base;
  put (Array.length r.r_terms);
  Array.iter
    (fun (m, j) ->
      put m;
      put j)
    r.r_terms;
  !acc

let encode ins acc =
  let acc = ref acc in
  let put v = acc := v :: !acc in
  let put_ref r = acc := encode_ref r !acc in
  List.iter
    (fun i ->
      match i with
      | Const l -> put op_const; put l
      | Iter j -> put op_iter; put j
      | Load r -> put op_load; put_ref r
      | Bin op -> put op_bin; put op
      | Neg -> put op_neg
      | Sqrt -> put op_sqrt
      | Abs -> put op_abs
      | Minn n -> put op_minn; put n
      | Maxn n -> put op_maxn; put n
      | Powk l -> put op_powk; put l
      | Store r -> put op_store; put_ref r
      | Copy (s, d) -> put op_copy; put_ref s; put_ref d
      | Llb (op, a, b, d) -> put op_llb; put op; put_ref a; put_ref b; put_ref d
      | Lcb (op, a, l, d) -> put op_lcb; put op; put_ref a; put l; put_ref d
      | Clb (op, l, a, d) -> put op_clb; put op; put l; put_ref a; put_ref d
      | Lllb (o1, o2, a, b, c, d) ->
          put op_lllb; put o1; put o2; put_ref a; put_ref b; put_ref c;
          put_ref d)
    ins;
  !acc

let compile (env : Interp.env) store =
  (* The closure program doubles as the fallback path and reproduces the
     compile-time [Failure] semantics (unbound variables) exactly. *)
  let closures = Compile.program env store in
  let n = Array.length env.Interp.stmts in
  let pools =
    {
      lit_list = [];
      n_lits = 0;
      lit_idx = Hashtbl.create 16;
      tbl_list = [];
      n_tbls = 0;
    }
  in
  let entry = Array.make n (-1) in
  let depth = Array.make n 0 in
  let max_stack = ref 0 in
  let code_rev = ref [] in
  let code_len = ref 0 in
  Array.iteri
    (fun s info ->
      let ctx = Compile.lowering env store info in
      depth.(s) <- Compile.low_depth ctx;
      match
        let em = { ins = []; sp = 0; max_sp = 0 } in
        lower_rhs pools ctx em info.Prog.rhs;
        let lhs_name, lhs_subs = info.Prog.lhs in
        (match Compile.low_ref ctx lhs_name lhs_subs with
        | Some fused -> push em (Store (ref_of pools fused)) (-1)
        | None -> raise Fallback);
        (peephole (List.rev em.ins), em.max_sp)
      with
      | ins, stmt_stack ->
          entry.(s) <- !code_len;
          let stmt_code = List.rev (encode ins []) in
          code_rev := List.rev_append stmt_code !code_rev;
          code_len := !code_len + List.length stmt_code;
          if stmt_stack > !max_stack then max_stack := stmt_stack
      | exception Fallback ->
          entry.(s) <- -1;
          Obs.Counter.incr fallbacks_counter)
    env.Interp.stmts;
  let code = Bigarray.Array1.create Bigarray.int Bigarray.c_layout !code_len in
  List.iteri
    (fun i v -> Bigarray.Array1.set code (!code_len - 1 - i) v)
    !code_rev;
  let max_depth = Array.fold_left max 0 depth in
  Obs.Counter.add stmts_counter n;
  Obs.Counter.add code_words_counter !code_len;
  {
    code;
    entry;
    depth;
    lits = Array.of_list (List.rev pools.lit_list);
    tables = Array.of_list (List.rev pools.tbl_list);
    max_stack = !max_stack;
    fb = Array.init n (Compile.kernel closures);
    stride = 1 + max_depth;
  }

(* ---- packed work buffers --------------------------------------------- *)

(* A phase's instances packed into one flat int buffer: cell 0 of each
   [stride]-wide slot is the statement id, cells 1.. are the iteration
   vector (tail cells beyond the statement's depth are never read).  A
   work unit is a task (chain) for [Tasks] phases, the whole instance
   array for [Doall] — chunks address instances as (unit, offset, length)
   so bucket setup never copies instance arrays. *)
type work = {
  wdata : buf;
  wstride : int;
  starts : int array;  (** per-unit first instance slot *)
  lens : int array;  (** per-unit instance count *)
}

let unit_sizes w = w.lens

let pack t (phase : Sched.phase) =
  let stride = t.stride in
  let units =
    match phase with
    | Sched.Doall { instances; _ } -> [| instances |]
    | Sched.Tasks { tasks; _ } -> tasks
  in
  let n_units = Array.length units in
  let starts = Array.make n_units 0 in
  let lens = Array.make n_units 0 in
  let total = ref 0 in
  Array.iteri
    (fun u insts ->
      starts.(u) <- !total;
      lens.(u) <- Array.length insts;
      total := !total + Array.length insts)
    units;
  let wdata = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (!total * stride) in
  let pos = ref 0 in
  Array.iter
    (fun insts ->
      Array.iter
        (fun (inst : Sched.instance) ->
          let d = Array.length inst.Sched.iter in
          if d <> t.depth.(inst.Sched.stmt) then
            failwith "Bytecode.pack: iteration arity mismatch";
          let b = !pos * stride in
          Bigarray.Array1.set wdata b inst.Sched.stmt;
          for j = 0 to d - 1 do
            Bigarray.Array1.set wdata (b + 1 + j) inst.Sched.iter.(j)
          done;
          incr pos)
        insts)
    units;
  { wdata; wstride = stride; starts; lens }

(* ---- the VM ---------------------------------------------------------- *)

let[@inline] geti (code : buf) i = Bigarray.Array1.unsafe_get code i

(* Offset of the reference encoded at [p] for the instance whose iteration
   vector starts at [wk.(ib)].  Safety: the dry scan evaluated every
   subscript the program executes, so fused offsets of scheduled
   instances are in bounds (same argument as the closure engine's fused
   accesses; see {!Compile}). *)
let[@inline] roff code (wk : buf) ib p =
  let n = geti code (p + 2) in
  let c = geti code (p + 1) in
  (* Unrolled for the 1-D/2-D references that dominate the corpus: the
     generic fold's loop counter and accumulator cost ~15% per instance on
     already-fused kernels. *)
  if n = 1 then
    c + (geti code (p + 3) * Bigarray.Array1.unsafe_get wk (ib + geti code (p + 4)))
  else if n = 2 then
    c
    + (geti code (p + 3) * Bigarray.Array1.unsafe_get wk (ib + geti code (p + 4)))
    + (geti code (p + 5) * Bigarray.Array1.unsafe_get wk (ib + geti code (p + 6)))
  else begin
    let acc = ref c in
    for k = 0 to n - 1 do
      acc :=
        !acc
        + geti code (p + 3 + (2 * k))
          * Bigarray.Array1.unsafe_get wk (ib + geti code (p + 4 + (2 * k)))
    done;
    !acc
  end

let[@inline] rlen code p = 3 + (2 * geti code (p + 2))

let exec_one t (wk : buf) (stack : float array) entry ib =
  let code = t.code in
  let tables = t.tables in
  let lits = t.lits in
  let pc = ref entry in
  let sp = ref 0 in
  let running = ref true in
  while !running do
    match geti code !pc with
    | 0 (* CONST *) ->
        Array.unsafe_set stack !sp (Array.unsafe_get lits (geti code (!pc + 1)));
        incr sp;
        pc := !pc + 2
    | 1 (* ITER *) ->
        Array.unsafe_set stack !sp
          (float_of_int (Bigarray.Array1.unsafe_get wk (ib + geti code (!pc + 1))));
        incr sp;
        pc := !pc + 2
    | 2 (* LOAD *) ->
        let p = !pc + 1 in
        let data = Array.unsafe_get tables (geti code p) in
        Array.unsafe_set stack !sp (Array.unsafe_get data (roff code wk ib p));
        incr sp;
        pc := p + rlen code p
    | 3 (* BIN *) ->
        let b = Array.unsafe_get stack (!sp - 1) in
        let a = Array.unsafe_get stack (!sp - 2) in
        let v =
          match geti code (!pc + 1) with
          | 0 -> a +. b
          | 1 -> a -. b
          | 2 -> a *. b
          | _ -> a /. b
        in
        Array.unsafe_set stack (!sp - 2) v;
        decr sp;
        pc := !pc + 2
    | 4 (* NEG *) ->
        Array.unsafe_set stack (!sp - 1) (-.Array.unsafe_get stack (!sp - 1));
        incr pc
    | 5 (* SQRT *) ->
        Array.unsafe_set stack (!sp - 1) (sqrt (Array.unsafe_get stack (!sp - 1)));
        incr pc
    | 6 (* ABS *) ->
        Array.unsafe_set stack (!sp - 1)
          (Float.abs (Array.unsafe_get stack (!sp - 1)));
        incr pc
    | 7 (* MINN *) ->
        let n = geti code (!pc + 1) in
        let acc = ref infinity in
        for k = !sp - n to !sp - 1 do
          acc := Float.min !acc (Array.unsafe_get stack k)
        done;
        sp := !sp - n + 1;
        Array.unsafe_set stack (!sp - 1) !acc;
        pc := !pc + 2
    | 8 (* MAXN *) ->
        let n = geti code (!pc + 1) in
        let acc = ref neg_infinity in
        for k = !sp - n to !sp - 1 do
          acc := Float.max !acc (Array.unsafe_get stack k)
        done;
        sp := !sp - n + 1;
        Array.unsafe_set stack (!sp - 1) !acc;
        pc := !pc + 2
    | 9 (* POWK *) ->
        Array.unsafe_set stack (!sp - 1)
          (Array.unsafe_get stack (!sp - 1)
          ** Array.unsafe_get lits (geti code (!pc + 1)));
        pc := !pc + 2
    | 10 (* STORE *) ->
        let p = !pc + 1 in
        let data = Array.unsafe_get tables (geti code p) in
        decr sp;
        Array.unsafe_set data (roff code wk ib p) (Array.unsafe_get stack !sp);
        running := false
    | 11 (* COPY *) ->
        let ps = !pc + 1 in
        let pd = ps + rlen code ps in
        let src = Array.unsafe_get tables (geti code ps) in
        let dst = Array.unsafe_get tables (geti code pd) in
        Array.unsafe_set dst (roff code wk ib pd)
          (Array.unsafe_get src (roff code wk ib ps));
        running := false
    | 12 (* LLB *) ->
        let pa = !pc + 2 in
        let pb = pa + rlen code pa in
        let pd = pb + rlen code pb in
        let x =
          Array.unsafe_get
            (Array.unsafe_get tables (geti code pa))
            (roff code wk ib pa)
        in
        let y =
          Array.unsafe_get
            (Array.unsafe_get tables (geti code pb))
            (roff code wk ib pb)
        in
        let v =
          match geti code (!pc + 1) with
          | 0 -> x +. y
          | 1 -> x -. y
          | 2 -> x *. y
          | _ -> x /. y
        in
        Array.unsafe_set
          (Array.unsafe_get tables (geti code pd))
          (roff code wk ib pd) v;
        running := false
    | 13 (* LCB *) ->
        let pa = !pc + 2 in
        let pl = pa + rlen code pa in
        let pd = pl + 1 in
        let x =
          Array.unsafe_get
            (Array.unsafe_get tables (geti code pa))
            (roff code wk ib pa)
        in
        let y = Array.unsafe_get lits (geti code pl) in
        let v =
          match geti code (!pc + 1) with
          | 0 -> x +. y
          | 1 -> x -. y
          | 2 -> x *. y
          | _ -> x /. y
        in
        Array.unsafe_set
          (Array.unsafe_get tables (geti code pd))
          (roff code wk ib pd) v;
        running := false
    | 14 (* CLB *) ->
        let x = Array.unsafe_get lits (geti code (!pc + 2)) in
        let pa = !pc + 3 in
        let pd = pa + rlen code pa in
        let y =
          Array.unsafe_get
            (Array.unsafe_get tables (geti code pa))
            (roff code wk ib pa)
        in
        let v =
          match geti code (!pc + 1) with
          | 0 -> x +. y
          | 1 -> x -. y
          | 2 -> x *. y
          | _ -> x /. y
        in
        Array.unsafe_set
          (Array.unsafe_get tables (geti code pd))
          (roff code wk ib pd) v;
        running := false
    | 15 (* LLLB *) ->
        let pa = !pc + 3 in
        let pb = pa + rlen code pa in
        let pcc = pb + rlen code pb in
        let pd = pcc + rlen code pcc in
        let a =
          Array.unsafe_get
            (Array.unsafe_get tables (geti code pa))
            (roff code wk ib pa)
        in
        let b =
          Array.unsafe_get
            (Array.unsafe_get tables (geti code pb))
            (roff code wk ib pb)
        in
        let c =
          Array.unsafe_get
            (Array.unsafe_get tables (geti code pcc))
            (roff code wk ib pcc)
        in
        let inner =
          match geti code (!pc + 2) with
          | 0 -> b +. c
          | 1 -> b -. c
          | 2 -> b *. c
          | _ -> b /. c
        in
        let v =
          match geti code (!pc + 1) with
          | 0 -> a +. inner
          | 1 -> a -. inner
          | 2 -> a *. inner
          | _ -> a /. inner
        in
        Array.unsafe_set
          (Array.unsafe_get tables (geti code pd))
          (roff code wk ib pd) v;
        running := false
    | _ -> assert false
  done

let exec_range t scratch w ~unit_ ~off ~len =
  let wk = w.wdata in
  let stride = w.wstride in
  let first = w.starts.(unit_) + off in
  if off < 0 || len < 0 || off + len > w.lens.(unit_) then
    invalid_arg "Bytecode.exec_range: range out of unit bounds";
  for q = first to first + len - 1 do
    let b = q * stride in
    let stmt = Bigarray.Array1.unsafe_get wk b in
    let e = Array.unsafe_get t.entry stmt in
    if e >= 0 then exec_one t wk scratch e (b + 1)
    else begin
      (* Closure fallback: the only per-instance allocation in the engine,
         paid exactly by the statements the flat encoding cannot express. *)
      let d = t.depth.(stmt) in
      let iter = Array.init d (fun j -> Bigarray.Array1.get wk (b + 1 + j)) in
      t.fb.(stmt) iter
    end
  done
