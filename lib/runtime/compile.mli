(** Closure-compiled statement kernels — the compiled execution engine.

    Each statement's LHS/RHS is translated once into an OCaml closure over
    the [int array] iteration vector: loop variables become vector slots,
    parameter values are folded in as constants, array references resolve
    to the raw backing store of a frozen {!Arrays.t}, and affine
    subscripts (recognized via {!Loopir.Affine}) are pre-lowered into a
    single fused linear offset [c + Σ mⱼ·iterⱼ] — so the per-instance hot
    loop performs no list traversal, no string lookup and no AST matching.

    Semantics match {!Interp.exec_instance} for every instance of the
    program's own iteration space: the dry scan ({!Interp.scan_bounds})
    has already evaluated every subscript with checked arithmetic and
    noted its extent, so fused offsets are always in bounds for scheduled
    instances.  Feeding iteration vectors from outside the scanned space
    is a programming error: fused accesses then raise [Invalid_argument]
    (the OCaml array bounds check) instead of falling back to
    {!Arrays.initial_value}.  Non-affine subscripts keep the exact
    interpreter semantics (they go through {!Arrays.get}/{!Arrays.set}).

    {!Interp} remains the reference oracle: [Exec.check] compares a
    compiled run against [Interp.run_sequential] bit-for-bit. *)

type t

val program : Interp.env -> Arrays.t -> t
(** [program env store] compiles every statement of [env] against the
    frozen [store] (from {!Interp.scan_bounds} on the same [env]).
    Raises [Failure] on variables bound neither by a loop nor by a
    parameter, like the interpreter would at execution time. *)

val exec_instance : t -> Sched.instance -> unit
(** Runs one statement instance through its compiled kernel.  Raises
    [Failure] on an iteration arity mismatch, like
    {!Interp.exec_instance}. *)

val kernel : t -> int -> int array -> unit
(** [kernel t stmt] is the compiled kernel of statement [stmt] (exposed
    for benchmarks and tests). *)

(** {2 Lowering seam}

    The pieces of the closure compiler the bytecode engine ({!Bytecode})
    shares, so both engines compute identical fused addresses: loop-slot
    and parameter resolution, and the affine reference fusion against the
    live store. *)

type lowctx

val lowering : Interp.env -> Arrays.t -> Loopir.Prog.stmt_info -> lowctx
(** Lowering context of one statement: its loop-variable slot mapping
    (outermost first) and the bound parameters, against a frozen store. *)

val low_depth : lowctx -> int
(** Loop depth (= expected iteration-vector arity). *)

val low_slot : lowctx -> string -> int option
(** Iteration-vector slot of a loop variable. *)

val low_param : lowctx -> string -> float option
(** Bound parameter value, as the float the RHS evaluator would use. *)

val low_ref : lowctx -> string -> Loopir.Ast.expr list -> (float array * int * (int * int) list) option
(** Fused affine reference: [(data, c, [(j, m); …])] such that the cell
    is [data.(c + Σ m·iter.(j))] — exactly the offset the closure engine
    fuses.  [None] when a subscript is non-affine, the array was never
    scanned, or the rank mismatches (callers must fall back to the
    general {!Arrays.get}/{!Arrays.set} path to keep interpreter
    semantics). *)
