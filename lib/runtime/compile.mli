(** Closure-compiled statement kernels — the compiled execution engine.

    Each statement's LHS/RHS is translated once into an OCaml closure over
    the [int array] iteration vector: loop variables become vector slots,
    parameter values are folded in as constants, array references resolve
    to the raw backing store of a frozen {!Arrays.t}, and affine
    subscripts (recognized via {!Loopir.Affine}) are pre-lowered into a
    single fused linear offset [c + Σ mⱼ·iterⱼ] — so the per-instance hot
    loop performs no list traversal, no string lookup and no AST matching.

    Semantics match {!Interp.exec_instance} for every instance of the
    program's own iteration space: the dry scan ({!Interp.scan_bounds})
    has already evaluated every subscript with checked arithmetic and
    noted its extent, so fused offsets are always in bounds for scheduled
    instances.  Feeding iteration vectors from outside the scanned space
    is a programming error: fused accesses then raise [Invalid_argument]
    (the OCaml array bounds check) instead of falling back to
    {!Arrays.initial_value}.  Non-affine subscripts keep the exact
    interpreter semantics (they go through {!Arrays.get}/{!Arrays.set}).

    {!Interp} remains the reference oracle: [Exec.check] compares a
    compiled run against [Interp.run_sequential] bit-for-bit. *)

type t

val program : Interp.env -> Arrays.t -> t
(** [program env store] compiles every statement of [env] against the
    frozen [store] (from {!Interp.scan_bounds} on the same [env]).
    Raises [Failure] on variables bound neither by a loop nor by a
    parameter, like the interpreter would at execution time. *)

val exec_instance : t -> Sched.instance -> unit
(** Runs one statement instance through its compiled kernel.  Raises
    [Failure] on an iteration arity mismatch, like
    {!Interp.exec_instance}. *)

val kernel : t -> int -> int array -> unit
(** [kernel t stmt] is the compiled kernel of statement [stmt] (exposed
    for benchmarks and tests). *)
