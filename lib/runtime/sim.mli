(** Deterministic SMP cost model — the substitute for the paper's 4-CPU
    Itanium/OpenMP testbed (DESIGN.md §2).  It charges:

    - a per-iteration work cost, scaled by a per-scheme code factor (the
      paper credits REC's superlinear 1–2 thread speedups to simplified
      subscript code in the WHILE chains, and its 4-thread droop to more
      expensive generated loop bounds);
    - a fork cost and a per-thread bound-evaluation cost per parallel
      region;
    - a barrier cost per phase;

    and computes each phase's makespan with LPT assignment of sequential
    tasks to threads. *)

type cost = {
  w_iter : float;  (** base per-iteration work (μs-ish, arbitrary unit) *)
  code_factor : float;  (** scheme's generated-code per-iteration factor *)
  fork : float;  (** parallel region launch *)
  barrier : float;  (** end-of-phase barrier *)
  bound_eval : float;  (** per region per thread: loop-bound computation *)
}

val base : cost
(** [code_factor = 1], calibrated defaults. *)

val with_factor : float -> cost
(** [base] with another code factor. *)

val scale : float -> cost -> cost
(** Multiplies every time-dimensioned constant ([w_iter], [fork],
    [barrier], [bound_eval]) by a factor; [code_factor] (a ratio) is
    untouched. *)

val base_seconds : cost
(** [scale 1e-6 base] — {!base} with its μs-ish units read as
    microseconds, so uncalibrated predictions are at least dimensionally
    comparable to measured wall seconds. *)

val phase_time : cost -> threads:int -> Sched.phase -> float
val time : cost -> threads:int -> Sched.t -> float

val doall_chunk_count : cost -> threads:int -> n:int -> int
(** Cost-proportional block count for an [n]-iteration DOALL phase on
    [threads] domains: as many blocks as the modelled work can amortize
    against the per-phase fork+barrier overhead (each block ≥ 4× the
    overhead), floored at [threads], capped at [8 × threads] and at [n].
    [threads ≤ 1] yields one block ([0] for an empty phase) — sequential
    execution never splits.  This is what the executor's cost-aware
    chunking uses in place of equal per-thread index ranges. *)

val seq_time : cost -> int -> float
(** Sequential execution of [n] iterations of the {e original} code
    ([code_factor] deliberately not applied). *)

val speedup : cost -> threads:int -> n_seq:int -> Sched.t -> float
(** [seq_time n_seq / time sched] — the figure-3 quantity. *)

val lpt_makespan : int -> float array -> float
(** [lpt_makespan p durations] is the longest-processing-time-first
    makespan on [p] identical processors (exposed for tests). *)

(** {2 Abstract schedules}

    Phase structures described only by sizes, for paper-scale experiments
    where materializing instance arrays would be wasteful. *)

type aphase =
  | ADoall of int  (** n independent iterations *)
  | ATasks of int array  (** parallel sequential tasks, by length *)

type asched = aphase list

val abstract : Sched.t -> asched
val time_abstract : cost -> threads:int -> asched -> float
val speedup_abstract : cost -> threads:int -> n_seq:int -> asched -> float

(** {2 Predicted-vs-actual accounting}

    The cost model is only useful if it is held to account
    (ROADMAP item 2): {!predict} is called by the pipeline before
    execution, the realized error is fed back with
    {!observe_rel_error}, and {!calibrate} fits the constants from
    measured runs.  Instrumented under the [runtime.sim.*] naming
    convention: counters ["runtime.sim.predictions"] and
    ["runtime.sim.calibrations"], histogram
    ["runtime.sim.rel_error_pct"]. *)

val predict : cost -> threads:int -> Sched.t -> (string * float) list
(** Per-phase predicted time [(label, phase_time)], in [cost]'s units
    (seconds for a calibrated cost, see {!calibrate}); increments
    ["runtime.sim.predictions"]. *)

val observe_rel_error : float -> unit
(** Feeds a realized relative error (|predicted − actual| / actual) into
    ["runtime.sim.rel_error_pct"] as an integer percentage; non-finite
    and negative values are dropped. *)

type sample = {
  s_threads : int;  (** threads the measured run used *)
  s_shape : aphase;  (** the phase's size structure *)
  s_busy : float;  (** Σ per-domain busy seconds of the phase *)
  s_wall : float;  (** measured phase wall seconds, barrier included *)
}

val calibrate : sample list -> cost option
(** Fits cost constants (in seconds) from measured phases: [w_iter] =
    Σbusy / Σiterations, then fork/barrier split the mean wall-time
    residual over the fitted work makespan ([bound_eval] is folded in,
    [code_factor] stays 1).  [None] when the samples carry no work
    ([Σiterations = 0] or [Σbusy ≤ 0]).  Increments
    ["runtime.sim.calibrations"]. *)

val pipeline_time :
  cost -> threads:int -> stages:int -> stage_work:float -> delay:float -> float
(** DOACROSS-style software pipeline: [stages] sequential stages of
    [stage_work] each, consecutive stages separated by [delay], executed on
    [threads] processors round-robin. *)
