type cost = {
  w_iter : float;
  code_factor : float;
  fork : float;
  barrier : float;
  bound_eval : float;
}

let base =
  { w_iter = 1.0; code_factor = 1.0; fork = 20.0; barrier = 30.0; bound_eval = 8.0 }

let with_factor code_factor = { base with code_factor }

(* Time-dimensioned constants scale together; [code_factor] is a ratio. *)
let scale k c =
  {
    c with
    w_iter = c.w_iter *. k;
    fork = c.fork *. k;
    barrier = c.barrier *. k;
    bound_eval = c.bound_eval *. k;
  }

let base_seconds = scale 1e-6 base

let lpt_makespan p durations =
  if p <= 0 then invalid_arg "Sim.lpt_makespan: threads";
  let loads = Array.make p 0.0 in
  let sorted = Array.copy durations in
  Array.sort (fun a b -> compare b a) sorted;
  Array.iter
    (fun d ->
      let best = ref 0 in
      for k = 1 to p - 1 do
        if loads.(k) < loads.(!best) then best := k
      done;
      loads.(!best) <- loads.(!best) +. d)
    sorted;
  Array.fold_left Float.max 0.0 loads

let phase_time c ~threads phase =
  let per_iter = c.w_iter *. c.code_factor in
  let work =
    match phase with
    | Sched.Doall { instances; _ } ->
        let n = Array.length instances in
        float_of_int ((n + threads - 1) / threads) *. per_iter
    | Sched.Tasks { tasks; _ } ->
        lpt_makespan threads
          (Array.map (fun t -> float_of_int (Array.length t) *. per_iter) tasks)
  in
  c.fork +. (c.bound_eval *. float_of_int threads) +. work +. c.barrier

(* How many blocks a DOALL phase of [n] iterations should be split into
   so that dynamic self-scheduling can absorb wake-up jitter and
   stragglers: as many as the work can amortize (each chunk must be worth
   several times the per-phase fork+barrier overhead), floored at
   [threads] (every domain gets work) and capped at [8 × threads] (queue
   traffic stays negligible).  Sequential runs get a single block. *)
let doall_chunk_count c ~threads ~n =
  if n <= 0 then 0
  else if threads <= 1 || n = 1 then 1
  else begin
    let per_iter = c.w_iter *. c.code_factor in
    let overhead = Float.max 1e-12 (c.fork +. c.barrier) in
    let affordable =
      int_of_float (float_of_int n *. per_iter /. (4.0 *. overhead))
    in
    min n (max threads (min (8 * threads) affordable))
  end

let time c ~threads s =
  List.fold_left (fun acc p -> acc +. phase_time c ~threads p) 0.0 s.Sched.phases

let seq_time c n = float_of_int n *. c.w_iter

let speedup c ~threads ~n_seq s = seq_time c n_seq /. time c ~threads s

type aphase = ADoall of int | ATasks of int array

type asched = aphase list

let abstract (s : Sched.t) =
  List.map
    (function
      | Sched.Doall { instances; _ } -> ADoall (Array.length instances)
      | Sched.Tasks { tasks; _ } -> ATasks (Array.map Array.length tasks))
    s.Sched.phases

let aphase_time c ~threads = function
  | ADoall n ->
      let per_iter = c.w_iter *. c.code_factor in
      c.fork
      +. (c.bound_eval *. float_of_int threads)
      +. (float_of_int ((n + threads - 1) / threads) *. per_iter)
      +. c.barrier
  | ATasks sizes ->
      let per_iter = c.w_iter *. c.code_factor in
      c.fork
      +. (c.bound_eval *. float_of_int threads)
      +. lpt_makespan threads
           (Array.map (fun n -> float_of_int n *. per_iter) sizes)
      +. c.barrier

let time_abstract c ~threads s =
  List.fold_left (fun acc p -> acc +. aphase_time c ~threads p) 0.0 s

let speedup_abstract c ~threads ~n_seq s =
  seq_time c n_seq /. time_abstract c ~threads s

(* ---- predicted-vs-actual accounting ---------------------------------- *)

(* Naming convention [runtime.sim.*]: one [predictions] tick per schedule
   predicted before execution, one [calibrations] tick per fitted cost,
   and the realized |predicted − actual| / actual (in percent) observed
   into [rel_error_pct] by whoever later measures the run. *)
let predictions_counter = Obs.Counter.make "runtime.sim.predictions"
let calibrations_counter = Obs.Counter.make "runtime.sim.calibrations"
let rel_error_hist = Obs.Histogram.make "runtime.sim.rel_error_pct"

let predict c ~threads (s : Sched.t) =
  Obs.Counter.incr predictions_counter;
  List.map (fun p -> (Sched.phase_label p, phase_time c ~threads p)) s.Sched.phases

let observe_rel_error e =
  if Float.is_finite e && e >= 0.0 then
    Obs.Histogram.observe rel_error_hist
      (int_of_float (Float.min 1e6 (e *. 100.0)))

type sample = {
  s_threads : int;
  s_shape : aphase;
  s_busy : float;
  s_wall : float;
}

let aphase_size = function
  | ADoall n -> n
  | ATasks sizes -> Array.fold_left ( + ) 0 sizes

(* Two-step fit of the cost constants from measured phases, in seconds:
   [w_iter] from the busy time (which excludes barrier waits, so it is a
   pure per-iteration execution cost), then the per-phase overhead
   (fork + barrier) as the mean wall-time residual over the fitted work
   makespan.  [bound_eval] is folded into that overhead (fitting its
   per-thread slope would need runs at several thread counts), and
   [code_factor] stays 1: the fit absorbs the scheme's real generated
   code into [w_iter]. *)
let calibrate samples =
  let iters =
    List.fold_left (fun acc s -> acc + aphase_size s.s_shape) 0 samples
  in
  let busy = List.fold_left (fun acc s -> acc +. s.s_busy) 0.0 samples in
  if iters <= 0 || busy <= 0.0 then None
  else begin
    let w_iter = busy /. float_of_int iters in
    let work_only =
      { w_iter; code_factor = 1.0; fork = 0.0; barrier = 0.0; bound_eval = 0.0 }
    in
    let residual s =
      Float.max 0.0
        (s.s_wall -. aphase_time work_only ~threads:(max 1 s.s_threads) s.s_shape)
    in
    let overhead =
      List.fold_left (fun acc s -> acc +. residual s) 0.0 samples
      /. float_of_int (List.length samples)
    in
    Obs.Counter.incr calibrations_counter;
    Some
      {
        w_iter;
        code_factor = 1.0;
        fork = overhead /. 2.0;
        barrier = overhead /. 2.0;
        bound_eval = 0.0;
      }
  end

let pipeline_time c ~threads ~stages ~stage_work ~delay =
  if stages <= 0 then 0.0
  else
    (* Stage k may start no earlier than k·delay and no earlier than the
       finish of the previous stage on the same processor. *)
    let proc_free = Array.make (max threads 1) 0.0 in
    let finish = ref 0.0 in
    for k = 0 to stages - 1 do
      let p = k mod max threads 1 in
      let start = Float.max proc_free.(p) (float_of_int k *. delay) in
      let stop = start +. stage_work in
      proc_free.(p) <- stop;
      if stop > !finish then finish := stop
    done;
    c.fork +. !finish +. c.barrier
