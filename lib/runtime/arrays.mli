(** Dense float array store for program execution.

    Extents are discovered by a dry scan of every subscript the program will
    evaluate, so negative and parametric indices (as in the Cholesky kernel)
    are handled by offsetting.  Cells start with a deterministic per-cell
    value derived from the array name and indices, so two executions agree
    iff they perform the same writes in an equivalent order. *)

type t

val create : unit -> t

val note_bounds : t -> string -> int list -> unit
(** Extend the recorded extent of an array to include the given index
    tuple (call during the dry scan). *)

val freeze : t -> unit
(** Allocate backing stores; must be called after all {!note_bounds} and
    before any {!get}/{!set}. *)

val get : t -> string -> int list -> float
val set : t -> string -> int list -> float -> unit

val initial_value : string -> int list -> float
(** The deterministic initial cell value. *)

type view = {
  v_lo : int array;  (** per-dimension scanned lower bound *)
  v_hi : int array;  (** per-dimension scanned upper bound *)
  v_strides : int array;  (** row-major strides (innermost = 1) *)
  v_data : float array;  (** the live backing store (shared, not a copy) *)
}

val view : t -> string -> view option
(** Raw view of a frozen array for compiled execution: flat offset of index
    tuple [v] is [Σ_k (v_k - v_lo_k) · v_strides_k].  [v_data] aliases the
    store, so writes through the view are visible to {!get}.  [None] for
    unknown arrays; raises [Invalid_argument] before {!freeze}. *)

val equal : t -> t -> bool
(** Same arrays, same extents, same contents. *)

val max_abs_diff : t -> t -> float
val arrays : t -> string list
