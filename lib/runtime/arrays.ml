type extent = { mutable lo : int array; mutable hi : int array }

type store = {
  ext : extent;
  mutable data : float array;  (** row-major with offsets from [ext] *)
}

type t = {
  tbl : (string, store) Hashtbl.t;
  mutable frozen : bool;
}

let create () = { tbl = Hashtbl.create 8; frozen = false }

let note_bounds t name idx =
  if t.frozen then invalid_arg "Arrays.note_bounds: already frozen";
  let idx = Array.of_list idx in
  match Hashtbl.find_opt t.tbl name with
  | None ->
      Hashtbl.add t.tbl name
        { ext = { lo = Array.copy idx; hi = Array.copy idx }; data = [||] }
  | Some s ->
      if Array.length idx <> Array.length s.ext.lo then
        invalid_arg ("Arrays: rank mismatch for " ^ name);
      Array.iteri
        (fun k v ->
          if v < s.ext.lo.(k) then s.ext.lo.(k) <- v;
          if v > s.ext.hi.(k) then s.ext.hi.(k) <- v)
        idx

let initial_value name idx =
  float_of_int (Hashtbl.hash (name, idx) mod 1000) /. 97.0

let cell_count ext =
  Array.fold_left ( * ) 1
    (Array.mapi (fun k lo -> ext.hi.(k) - lo + 1) ext.lo)

let offset ext idx =
  let acc = ref 0 in
  List.iteri
    (fun k v ->
      if v < ext.lo.(k) || v > ext.hi.(k) then raise Not_found;
      acc := (!acc * (ext.hi.(k) - ext.lo.(k) + 1)) + (v - ext.lo.(k)))
    idx;
  !acc

(* Rebuild the index tuple of a flat offset, to seed initial values. *)
let idx_of_offset ext off =
  let n = Array.length ext.lo in
  let idx = Array.make n 0 in
  let off = ref off in
  for k = n - 1 downto 0 do
    let w = ext.hi.(k) - ext.lo.(k) + 1 in
    idx.(k) <- (!off mod w) + ext.lo.(k);
    off := !off / w
  done;
  Array.to_list idx

let freeze t =
  if not t.frozen then begin
    Hashtbl.iter
      (fun name s ->
        let n = cell_count s.ext in
        s.data <-
          Array.init n (fun off -> initial_value name (idx_of_offset s.ext off)))
      t.tbl;
    t.frozen <- true
  end

let get t name idx =
  match Hashtbl.find_opt t.tbl name with
  | None -> initial_value name idx
  | Some s -> (
      match offset s.ext idx with
      | off -> s.data.(off)
      | exception Not_found -> initial_value name idx)

let set t name idx v =
  if not t.frozen then invalid_arg "Arrays.set: freeze first";
  match Hashtbl.find_opt t.tbl name with
  | None -> invalid_arg ("Arrays.set: unknown array " ^ name)
  | Some s -> (
      match offset s.ext idx with
      | off -> s.data.(off) <- v
      | exception Not_found ->
          invalid_arg
            (Printf.sprintf "Arrays.set: %s index out of scanned bounds" name))

type view = {
  v_lo : int array;
  v_hi : int array;
  v_strides : int array;
  v_data : float array;
}

let view t name =
  if not t.frozen then invalid_arg "Arrays.view: freeze first";
  match Hashtbl.find_opt t.tbl name with
  | None -> None
  | Some s ->
      let n = Array.length s.ext.lo in
      let strides = Array.make n 1 in
      for k = n - 2 downto 0 do
        strides.(k) <- strides.(k + 1) * (s.ext.hi.(k + 1) - s.ext.lo.(k + 1) + 1)
      done;
      Some
        {
          v_lo = Array.copy s.ext.lo;
          v_hi = Array.copy s.ext.hi;
          v_strides = strides;
          v_data = s.data;
        }

let arrays t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl [] |> List.sort compare

let max_abs_diff a b =
  List.fold_left
    (fun acc name ->
      match (Hashtbl.find_opt a.tbl name, Hashtbl.find_opt b.tbl name) with
      | Some sa, Some sb when Array.length sa.data = Array.length sb.data ->
          let m = ref acc in
          Array.iteri
            (fun k v ->
              let d = Float.abs (v -. sb.data.(k)) in
              if d > !m then m := d)
            sa.data;
          !m
      | _ -> infinity)
    0.0 (arrays a)

let equal a b = arrays a = arrays b && max_abs_diff a b = 0.0
