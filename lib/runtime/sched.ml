type instance = { stmt : int; iter : int array }

type phase =
  | Doall of { label : string; instances : instance array }
  | Tasks of { label : string; tasks : instance array array }

type t = { phases : phase list }

let phase_size = function
  | Doall { instances; _ } -> Array.length instances
  | Tasks { tasks; _ } ->
      Array.fold_left (fun acc t -> acc + Array.length t) 0 tasks

let n_instances s = List.fold_left (fun acc p -> acc + phase_size p) 0 s.phases
let n_phases s = List.length s.phases
let phase_label = function Doall { label; _ } | Tasks { label; _ } -> label

let phase_instances = function
  | Doall { instances; _ } -> instances
  | Tasks { tasks; _ } -> Array.concat (Array.to_list tasks)

let of_phases phases =
  { phases = List.filter (fun p -> phase_size p > 0) phases }

let sequential_of_trace (tr : Depend.Trace.t) =
  let task =
    Array.map
      (fun (i : Depend.Trace.instance) ->
        { stmt = i.Depend.Trace.stmt; iter = i.Depend.Trace.iter })
      tr.Depend.Trace.instances
  in
  of_phases [ Tasks { label = "sequential"; tasks = [| task |] } ]

let of_rec ~stmt (c : Core.Partition.concrete_rec) =
  let doall label pts =
    Doall
      {
        label;
        instances =
          Array.init (Core.Points.length pts) (fun i ->
              { stmt; iter = Core.Points.get pts i });
      }
  in
  let ch = c.Core.Partition.chains in
  let lens = Core.Chain.lengths ch in
  let chains =
    Tasks
      {
        label = "P2-chains";
        tasks =
          (* Task index = chain id: chunk ids in spans and straggler
             tables name the paper's chains directly. *)
          Array.init (Core.Chain.n_chains ch) (fun k ->
              Array.init lens.(k) (fun i ->
                  { stmt; iter = Core.Chain.get ch k i }));
      }
  in
  of_phases
    [ doall "P1" c.Core.Partition.p1_pts; chains; doall "P3" c.Core.Partition.p3_pts ]

let of_fronts (c : Core.Dataflow.concrete) =
  let phases =
    Array.to_list
      (Array.mapi
         (fun k nodes ->
           Doall
             {
               label = Printf.sprintf "front-%d" (k + 1);
               instances =
                 Array.of_list
                   (List.map
                      (fun node ->
                        let i = c.Core.Dataflow.instances.(node) in
                        {
                          stmt = i.Depend.Trace.stmt;
                          iter = i.Depend.Trace.iter;
                        })
                      nodes);
             })
         c.Core.Dataflow.fronts)
  in
  of_phases phases

let of_task_groups ~label ~stmt groups =
  of_phases
    [
      Tasks
        {
          label;
          tasks =
            Array.of_list
              (List.map
                 (fun g ->
                   Array.of_list (List.map (fun iter -> { stmt; iter }) g))
                 groups);
        };
    ]

let concat ss = of_phases (List.concat_map (fun s -> s.phases) ss)

let check_legal s (tr : Depend.Trace.t) =
  (* Position of every scheduled instance: (phase, task, index-in-task);
     DOALL instances get distinct task ids so only phase order counts. *)
  let pos = Hashtbl.create (Array.length tr.Depend.Trace.instances * 2) in
  let dup = ref None in
  List.iteri
    (fun pi phase ->
      let note key v =
        if Hashtbl.mem pos key then dup := Some key else Hashtbl.add pos key v
      in
      match phase with
      | Doall { instances; _ } ->
          Array.iteri
            (fun k inst -> note (inst.stmt, inst.iter) (pi, k, 0))
            instances
      | Tasks { tasks; _ } ->
          Array.iteri
            (fun ti task ->
              Array.iteri
                (fun k inst -> note (inst.stmt, inst.iter) (pi, ti, k))
                task)
            tasks)
    s.phases;
  match !dup with
  | Some (stmt, iter) ->
      Error
        (Printf.sprintf "instance S%d%s scheduled twice" stmt
           (Linalg.Ivec.to_string iter))
  | None ->
      if Hashtbl.length pos <> Array.length tr.Depend.Trace.instances then
        Error
          (Printf.sprintf "schedule has %d instances, trace has %d"
             (Hashtbl.length pos)
             (Array.length tr.Depend.Trace.instances))
      else begin
        let key node =
          let i = tr.Depend.Trace.instances.(node) in
          (i.Depend.Trace.stmt, i.Depend.Trace.iter)
        in
        let bad = ref None in
        Depend.Trace.iter_edges tr
          (fun a b ->
            if !bad = None then
              match (Hashtbl.find_opt pos (key a), Hashtbl.find_opt pos (key b)) with
              | Some (pa, ta, ka), Some (pb, tb, kb) ->
                  let ok =
                    pa < pb || (pa = pb && ta = tb && ka < kb)
                  in
                  if not ok then
                    bad :=
                      Some
                        (Printf.sprintf
                           "dependence %d→%d not respected (phase %d task %d \
                            idx %d vs phase %d task %d idx %d)"
                           a b pa ta ka pb tb kb)
              | _ -> bad := Some "instance missing from schedule");
        match !bad with Some m -> Error m | None -> Ok ()
      end
