module Ast = Loopir.Ast
module Prog = Loopir.Prog
module Affine = Loopir.Affine
module S = Numeric.Safeint

type t = { kernels : (int array -> unit) array }

(* Compilation of one statement happens in the context of its loop-variable
   slot mapping (outermost first, matching the [iter] vectors built by
   [Sched]) and the parameter values — both resolved exactly once. *)
type ctx = {
  vars : string array;  (** loop variables, outermost first *)
  params : (string * int) list;
  store : Arrays.t;
}

(* First occurrence wins, matching the binding list [Interp.exec_instance]
   builds (outermost first, [List.assoc] semantics). *)
let slot ctx name =
  let n = Array.length ctx.vars in
  let rec find j =
    if j = n then None else if ctx.vars.(j) = name then Some j else find (j + 1)
  in
  find 0

let param ctx name = List.assoc_opt name ctx.params

(* ---- integer expressions --------------------------------------------- *)

(* Affine form over iteration slots with parameters folded into the
   constant: value(iter) = a_const + Σⱼ a_coefs.(j)·iter.(j). *)
type aff = { a_const : int; a_coefs : int array }

let affine_of ctx e =
  match Affine.of_expr e with
  | None -> None
  | Some { Affine.terms; const } ->
      let coefs = Array.make (Array.length ctx.vars) 0 in
      let const = ref const in
      let ok =
        List.for_all
          (fun (name, c) ->
            match slot ctx name with
            | Some j ->
                coefs.(j) <- coefs.(j) + c;
                true
            | None -> (
                match param ctx name with
                | Some v ->
                    const := !const + (c * v);
                    true
                | None -> false))
          terms
      in
      if ok then Some { a_const = !const; a_coefs = coefs } else None

(* General (non-affine) integer evaluation: the {!Loopir.Eval_int}
   semantics — checked arithmetic included — with variable lookups
   resolved to slots/constants at compile time. *)
let rec cint ctx e : int array -> int =
  match e with
  | Ast.Int k -> fun _ -> k
  | Ast.Var v -> (
      match slot ctx v with
      | Some j -> fun it -> it.(j)
      | None -> (
          match param ctx v with
          | Some k -> fun _ -> k
          | None ->
              failwith (Printf.sprintf "Compile: unbound variable %s" v)))
  | Ast.Bin (Ast.Add, a, b) ->
      let fa = cint ctx a and fb = cint ctx b in
      fun it -> S.add (fa it) (fb it)
  | Ast.Bin (Ast.Sub, a, b) ->
      let fa = cint ctx a and fb = cint ctx b in
      fun it -> S.sub (fa it) (fb it)
  | Ast.Bin (Ast.Mul, a, b) ->
      let fa = cint ctx a and fb = cint ctx b in
      fun it -> S.mul (fa it) (fb it)
  | Ast.Bin (Ast.Div, a, b) ->
      let fa = cint ctx a and fb = cint ctx b in
      fun it -> S.fdiv (fa it) (fb it)
  | Ast.Un (Ast.Neg, a) ->
      let fa = cint ctx a in
      fun it -> S.neg (fa it)
  | Ast.Un (Ast.Abs, a) ->
      let fa = cint ctx a in
      fun it -> S.abs (fa it)
  | Ast.Min es -> (
      match List.map (cint ctx) es with
      | [] -> failwith "Compile: empty MIN"
      | f :: fs -> fun it -> List.fold_left (fun m g -> min m (g it)) (f it) fs)
  | Ast.Max es -> (
      match List.map (cint ctx) es with
      | [] -> failwith "Compile: empty MAX"
      | f :: fs -> fun it -> List.fold_left (fun m g -> max m (g it)) (f it) fs)
  | Ast.Mod (a, b) ->
      let fa = cint ctx a and fb = cint ctx b in
      fun it -> S.emod (fa it) (fb it)
  | Ast.Pow (a, k) ->
      let fa = cint ctx a in
      fun it -> S.pow (fa it) k
  | Ast.Real _ | Ast.Ref _ | Ast.Un (Ast.Sqrt, _) ->
      failwith
        (Printf.sprintf "Compile: non-integer subscript %s"
           (Loopir.Pretty.expr_to_string e))

(* Integer evaluator with the affine fast path: affine expressions use raw
   machine arithmetic (the dry scan already evaluated every subscript with
   checked arithmetic, so overflow would have raised there first). *)
let cint_value ctx e : int array -> int =
  match affine_of ctx e with
  | Some { a_const; a_coefs } -> (
      let nz = ref [] in
      Array.iteri (fun j c -> if c <> 0 then nz := (j, c) :: !nz) a_coefs;
      match List.rev !nz with
      | [] -> fun _ -> a_const
      | [ (j0, c0) ] -> fun it -> a_const + (c0 * it.(j0))
      | [ (j0, c0); (j1, c1) ] ->
          fun it -> a_const + (c0 * it.(j0)) + (c1 * it.(j1))
      | pairs ->
          let slots = Array.of_list (List.map fst pairs) in
          let coefs = Array.of_list (List.map snd pairs) in
          let n = Array.length slots in
          fun it ->
            let acc = ref a_const in
            for j = 0 to n - 1 do
              acc := !acc + (coefs.(j) * it.(slots.(j)))
            done;
            !acc)
  | None -> cint ctx e

(* ---- array references ------------------------------------------------ *)

(* Fused linear offset of an all-affine subscript list against a raw array
   view: offset(iter) = c + Σⱼ mⱼ·iter.(j), with the extent lo offsets and
   the parameter parts of every subscript folded into [c]. *)
let fuse_offset ctx (view : Arrays.view) affs =
  let depth = Array.length ctx.vars in
  let ms = Array.make depth 0 in
  let c = ref 0 in
  List.iteri
    (fun k { a_const; a_coefs } ->
      let stride = view.Arrays.v_strides.(k) in
      c := !c + (stride * (a_const - view.Arrays.v_lo.(k)));
      Array.iteri (fun j m -> ms.(j) <- ms.(j) + (stride * m)) a_coefs)
    affs;
  let nz = ref [] in
  Array.iteri (fun j m -> if m <> 0 then nz := (j, m) :: !nz) ms;
  (!c, List.rev !nz)

let fused_load view c nz =
  let data = view.Arrays.v_data in
  match nz with
  | [] -> fun _ -> data.(c)
  | [ (j0, m0) ] -> fun it -> data.(c + (m0 * it.(j0)))
  | [ (j0, m0); (j1, m1) ] -> fun it -> data.(c + (m0 * it.(j0)) + (m1 * it.(j1)))
  | pairs ->
      let slots = Array.of_list (List.map fst pairs) in
      let ms = Array.of_list (List.map snd pairs) in
      let n = Array.length slots in
      fun it ->
        let off = ref c in
        for j = 0 to n - 1 do
          off := !off + (ms.(j) * it.(slots.(j)))
        done;
        data.(!off)

let fused_store view c nz =
  let data = view.Arrays.v_data in
  match nz with
  | [] -> fun _ v -> data.(c) <- v
  | [ (j0, m0) ] -> fun it v -> data.(c + (m0 * it.(j0))) <- v
  | [ (j0, m0); (j1, m1) ] ->
      fun it v -> data.(c + (m0 * it.(j0)) + (m1 * it.(j1))) <- v
  | pairs ->
      let slots = Array.of_list (List.map fst pairs) in
      let ms = Array.of_list (List.map snd pairs) in
      let n = Array.length slots in
      fun it v ->
        let off = ref c in
        for j = 0 to n - 1 do
          off := !off + (ms.(j) * it.(slots.(j)))
        done;
        data.(!off) <- v

(* The affine views of a subscript list, when every subscript is affine
   and the array has a raw view (it was noted during the dry scan). *)
let fused_of ctx name subs =
  match Arrays.view ctx.store name with
  | None -> None
  | Some view ->
      if List.length subs <> Array.length view.Arrays.v_lo then None
      else
        let rec all acc = function
          | [] -> Some (List.rev acc)
          | s :: rest -> (
              match affine_of ctx s with
              | Some a -> all (a :: acc) rest
              | None -> None)
        in
        Option.map (fun affs -> (view, fuse_offset ctx view affs)) (all [] subs)

(* Non-affine (or unscanned-array) references keep the exact interpreter
   semantics, including the [initial_value] fallback of {!Arrays.get}. *)
let general_load ctx name subs =
  let fs = List.map (cint_value ctx) subs in
  let store = ctx.store in
  fun it -> Arrays.get store name (List.map (fun f -> f it) fs)

let general_store ctx name subs =
  let fs = List.map (cint_value ctx) subs in
  let store = ctx.store in
  fun it v -> Arrays.set store name (List.map (fun f -> f it) fs) v

(* ---- float expressions ----------------------------------------------- *)

let rec cfloat ctx e : int array -> float =
  match e with
  | Ast.Int k ->
      let v = float_of_int k in
      fun _ -> v
  | Ast.Real r -> fun _ -> r
  | Ast.Var v -> (
      match slot ctx v with
      | Some j -> fun it -> float_of_int it.(j)
      | None -> (
          match param ctx v with
          | Some k ->
              let v = float_of_int k in
              fun _ -> v
          | None ->
              failwith (Printf.sprintf "Compile: unbound variable %s" v)))
  | Ast.Ref (a, subs) -> (
      match fused_of ctx a subs with
      | Some (view, (c, nz)) -> fused_load view c nz
      | None -> general_load ctx a subs)
  | Ast.Bin (Ast.Add, a, b) ->
      let fa = cfloat ctx a and fb = cfloat ctx b in
      fun it -> fa it +. fb it
  | Ast.Bin (Ast.Sub, a, b) ->
      let fa = cfloat ctx a and fb = cfloat ctx b in
      fun it -> fa it -. fb it
  | Ast.Bin (Ast.Mul, a, b) ->
      let fa = cfloat ctx a and fb = cfloat ctx b in
      fun it -> fa it *. fb it
  | Ast.Bin (Ast.Div, a, b) ->
      let fa = cfloat ctx a and fb = cfloat ctx b in
      fun it -> fa it /. fb it
  | Ast.Un (Ast.Neg, a) ->
      let fa = cfloat ctx a in
      fun it -> -.fa it
  | Ast.Un (Ast.Sqrt, a) ->
      let fa = cfloat ctx a in
      fun it -> sqrt (fa it)
  | Ast.Un (Ast.Abs, a) ->
      let fa = cfloat ctx a in
      fun it -> Float.abs (fa it)
  | Ast.Min es ->
      let fs = List.map (cfloat ctx) es in
      fun it -> List.fold_left (fun m f -> Float.min m (f it)) infinity fs
  | Ast.Max es ->
      let fs = List.map (cfloat ctx) es in
      fun it -> List.fold_left (fun m f -> Float.max m (f it)) neg_infinity fs
  | Ast.Mod (a, b) ->
      let fa = cint_value ctx a and fb = cint_value ctx b in
      fun it -> float_of_int (S.emod (fa it) (fb it))
  | Ast.Pow (a, k) ->
      let fa = cfloat ctx a in
      let k = float_of_int k in
      fun it -> fa it ** k

(* ---- statements ------------------------------------------------------ *)

let compile_stmt env store (info : Prog.stmt_info) =
  let ctx =
    {
      vars = Array.of_list (Prog.loop_vars info);
      params = env.Interp.params;
      store;
    }
  in
  let depth = Array.length ctx.vars in
  let lhs_name, lhs_subs = info.Prog.lhs in
  let set =
    match fused_of ctx lhs_name lhs_subs with
    | Some (view, (c, nz)) -> fused_store view c nz
    | None -> general_store ctx lhs_name lhs_subs
  in
  let rhs = cfloat ctx info.Prog.rhs in
  fun iter ->
    if Array.length iter <> depth then
      failwith "Compile.exec_instance: iteration arity mismatch";
    set iter (rhs iter)

let program (env : Interp.env) store =
  { kernels = Array.map (compile_stmt env store) env.Interp.stmts }

(* ---- lowering seam --------------------------------------------------- *)

(* The bytecode engine lowers the same statements against the same store;
   exporting the slot/param/fused-offset resolution here keeps the two
   engines' address arithmetic identical by construction. *)

type lowctx = ctx

let lowering (env : Interp.env) store (info : Prog.stmt_info) =
  {
    vars = Array.of_list (Prog.loop_vars info);
    params = env.Interp.params;
    store;
  }

let low_depth ctx = Array.length ctx.vars
let low_slot = slot
let low_param ctx name = Option.map float_of_int (param ctx name)

let low_ref ctx name subs =
  match fused_of ctx name subs with
  | Some (view, (c, nz)) -> Some (view.Arrays.v_data, c, nz)
  | None -> None

let kernel t stmt = t.kernels.(stmt)
let exec_instance t (inst : Sched.instance) =
  t.kernels.(inst.Sched.stmt) inst.Sched.iter
