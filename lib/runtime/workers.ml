let spawned_counter = Obs.Counter.make "runtime.workers.spawned"
let runs_counter = Obs.Counter.make "runtime.workers.runs"

(* Per-domain job accounting: every executed thunk is attributed to
   exactly one side — [jobs_stolen] when a helper domain popped it,
   [jobs_caller] when the submitting caller ran it (its own first thunk,
   or a queued job it drained while waiting) — so
   jobs = jobs_stolen + jobs_caller holds on a quiescent pool.  The
   histograms measure scheduling latency: [queue_wait_us] from a job's
   enqueue to its dequeue, [barrier_wait_us] the time a caller spends
   blocked at the completion barrier after running out of queued work. *)
let jobs_counter = Obs.Counter.make "runtime.workers.jobs"
let stolen_counter = Obs.Counter.make "runtime.workers.jobs_stolen"
let caller_counter = Obs.Counter.make "runtime.workers.jobs_caller"
let queue_wait_hist = Obs.Histogram.make "runtime.workers.queue_wait_us"
let barrier_wait_hist = Obs.Histogram.make "runtime.workers.barrier_wait_us"

let elapsed_us t0 =
  Int64.to_int (Int64.div (Int64.sub (Obs.Clock.now_ns ()) t0) 1000L)

type t = {
  m : Mutex.t;
  not_empty : Condition.t;
  q : (unit -> unit) Queue.t;
  n_domains : int;
  n_spawned : int;
  mutable closing : bool;
  mutable helpers : unit Domain.t list;
}

let domains t = t.n_domains
let spawned t = t.n_spawned

(* Drain-then-exit helper: keeps popping while jobs remain, even after
   [closing] is set, so shutdown never drops a queued job. *)
let rec helper t =
  Mutex.lock t.m;
  while Queue.is_empty t.q && not t.closing do
    Condition.wait t.not_empty t.m
  done;
  if Queue.is_empty t.q then Mutex.unlock t.m
  else begin
    let job = Queue.pop t.q in
    Mutex.unlock t.m;
    Obs.Counter.incr stolen_counter;
    job ();
    helper t
  end

let create ~domains =
  if domains < 1 then invalid_arg "Workers.create: domains must be >= 1";
  let t =
    {
      m = Mutex.create ();
      not_empty = Condition.create ();
      q = Queue.create ();
      n_domains = domains;
      n_spawned = domains - 1;
      closing = false;
      helpers = [];
    }
  in
  t.helpers <-
    List.init (domains - 1) (fun _ ->
        Obs.Counter.incr spawned_counter;
        Domain.spawn (fun () -> helper t));
  t

let run t thunks =
  Obs.Counter.incr runs_counter;
  let n = Array.length thunks in
  Obs.Counter.add jobs_counter n;
  if n = 0 then [||]
  else if n = 1 then begin
    Obs.Counter.incr caller_counter;
    [| thunks.(0) () |]
  end
  else begin
    let results = Array.make n None in
    (* Jobs handed to helper domains run under the submitter's request
       context, so spans/events they emit keep the originating trace id.
       (The caller's own thunk already runs with it installed.) *)
    let ctx = Obs.Ctx.current () in
    (* Always install (even [None]): the domain draining this job may be a
       caller from a concurrent [run] with its own context, which must not
       leak into someone else's thunk. *)
    let wrap f = Obs.Ctx.with_opt ctx f in
    (* Call-local barrier state: jobs of concurrent [run] calls share the
       pool queue but complete against their own counter. *)
    let cm = Mutex.create () in
    let all_done = Condition.create () in
    let remaining = ref (n - 1) in
    let error = ref None in
    let record_error e =
      Mutex.lock cm;
      if !error = None then error := Some e;
      Mutex.unlock cm
    in
    let enq_ns = Obs.Clock.now_ns () in
    let job i () =
      Obs.Histogram.observe queue_wait_hist (elapsed_us enq_ns);
      (match wrap (fun () -> results.(i) <- Some (thunks.(i) ())) with
      | () -> ()
      | exception e -> record_error e);
      Mutex.lock cm;
      decr remaining;
      if !remaining = 0 then Condition.broadcast all_done;
      Mutex.unlock cm
    in
    Mutex.lock t.m;
    for i = 1 to n - 1 do
      Queue.push (job i) t.q
    done;
    Condition.broadcast t.not_empty;
    Mutex.unlock t.m;
    (* The caller is a worker too: run the first thunk here, then help
       drain the queue until this call's jobs are all accounted for. *)
    Obs.Counter.incr caller_counter;
    (match thunks.(0) () with
    | v -> results.(0) <- Some v
    | exception e -> record_error e);
    let rec drain () =
      Mutex.lock cm;
      let pending = !remaining > 0 in
      Mutex.unlock cm;
      if pending then begin
        Mutex.lock t.m;
        let next = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
        Mutex.unlock t.m;
        match next with
        | Some j ->
            (* A drained job may belong to a concurrent [run]; it still
               ran on a submitting caller, not a pool helper. *)
            Obs.Counter.incr caller_counter;
            j ();
            drain ()
        | None ->
            (* Own jobs are in flight on other domains: wait them out. *)
            let w0 = Obs.Clock.now_ns () in
            Mutex.lock cm;
            while !remaining > 0 do
              Condition.wait all_done cm
            done;
            Mutex.unlock cm;
            Obs.Histogram.observe barrier_wait_hist (elapsed_us w0)
      end
    in
    drain ();
    (match !error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

(* The presburger layer sits below this one, so its parallel disjunct
   elimination receives the pool as an injected runner rather than a direct
   dependency.  [run] already satisfies Dnf's runner contract: barrier
   semantics, re-raise of the first job exception, concurrent callers. *)
let install_dnf_runner t =
  Presburger.Dnf.set_runner (Some (fun jobs -> ignore (run t jobs)))

let uninstall_dnf_runner () = Presburger.Dnf.set_runner None

let shutdown t =
  Mutex.lock t.m;
  let first = not t.closing in
  t.closing <- true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.m;
  if first then begin
    List.iter Domain.join t.helpers;
    t.helpers <- []
  end
