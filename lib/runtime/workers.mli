(** Persistent executor domain pool — domains are spawned once and reused
    across every phase of a run (and across requests when the pool is
    shared by the analysis service), replacing per-phase
    [Domain.spawn]/[join] with a queue hand-off and a completion barrier.

    The pool follows the [Svc.Pool] bounded-queue design (mutex + condition
    variables + job queue + drain-then-join shutdown) but adds
    caller participation: {!run} executes its first thunk on the calling
    domain and then helps drain the shared queue until its own jobs are
    done, so a pool of [domains = 1] spawns nothing and degenerates to
    sequential execution, and concurrent {!run} calls from several service
    workers share one pool without starving each other.  Jobs must not
    call {!run} themselves (no nesting).

    {!run} is a barrier: it returns only when all of its thunks have
    finished.  The first exception raised by any thunk is re-raised in the
    caller after the barrier.

    The pool is always-on instrumented through the {!Obs.Metrics}
    registries (naming convention [runtime.workers.*]): counters
    ["runtime.workers.jobs"] (thunks executed), ["…jobs_stolen"] (popped
    by a helper domain) and ["…jobs_caller"] (run by the submitting
    caller — its first thunk plus anything it drained), with
    [jobs = jobs_stolen + jobs_caller] on a quiescent pool; histograms
    ["runtime.workers.queue_wait_us"] (enqueue → dequeue latency per
    queued job) and ["runtime.workers.barrier_wait_us"] (time a caller
    blocks at the completion barrier per {!run} that had to wait).  Each
    observation is a few atomic adds, cheap enough for the execution hot
    path. *)

type t

val create : domains:int -> t
(** Spawns [domains - 1] helper domains ([domains ≥ 1]; the calling domain
    is the remaining worker).  Each spawn increments the global
    ["runtime.workers.spawned"] counter — the service smoke test asserts
    this stays equal to the pool size, not the request count. *)

val domains : t -> int
(** The configured size (helpers + the participating caller). *)

val spawned : t -> int
(** Helper domains actually spawned ([domains - 1]). *)

val run : t -> (unit -> 'a) array -> 'a array
(** Executes the thunks (first one on the calling domain, the rest through
    the pool queue), waits for all of them, and returns their results in
    order.  Safe to call concurrently from multiple domains; also safe
    after {!shutdown} (the caller then drains its own jobs itself).

    The caller's {!Obs.Ctx} (if any) is captured and installed around
    every thunk, wherever it runs — spans and events emitted on helper
    domains keep the originating request's trace id. *)

val install_dnf_runner : t -> unit
(** Registers this pool as [Presburger.Dnf]'s parallel job runner, so
    independent DNF-disjunct elimination shares the executor domains.
    Process-global: the last installed pool wins. *)

val uninstall_dnf_runner : unit -> unit
(** Clears the Dnf runner (set algebra falls back to sequential). *)

val shutdown : t -> unit
(** Signals the helpers to drain the queue and joins them; idempotent. *)
