(** 128-bit FNV-1a content digests (two independent 64-bit lanes).

    Shared by {!Svc.Key} (content-addressed result cache keys) and the
    presburger hash-cons/memo tables ({!Presburger.Hc}), so both layers
    use one digest discipline.  Digests are incremental: start from
    {!seed} and feed bytes with the [add_*] functions. *)

type t = { a : int64; b : int64 }

val seed : t
(** The FNV-1a offset bases ([0xcbf29ce484222325] / [0x84222325cbf29ce4]). *)

val add_char : t -> char -> t
val add_string : t -> string -> t

val add_int : t -> int -> t
(** Feeds the int as 8 little-endian bytes. *)

val add_digest : t -> t -> t
(** Mixes a sub-digest in by feeding its 16 bytes. *)

val of_string : string -> t
(** [of_string s] is [add_string seed s] — the digest of a whole string,
    byte-compatible with the original [Svc.Key] implementation. *)

val to_hex : t -> string
(** 32 lowercase hex characters ([%016Lx%016Lx]). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
