(* 128-bit content digests: two independent 64-bit FNV-1a passes with
   distinct offset bases, no external dependency.  This is the digest
   discipline Svc.Key introduced for content-addressed result caching;
   the presburger hash-cons tables reuse it, so both layers agree on
   what "same content" means.

   The two lanes always consume identical byte streams; only the seeds
   differ, which keeps [of_string]/[to_hex] byte-compatible with the
   original Svc.Key implementation (the pinned digest regression test
   in test_svc.ml checks this). *)

type t = { a : int64; b : int64 }

let prime = 0x100000001b3L
let seed = { a = 0xcbf29ce484222325L; b = 0x84222325cbf29ce4L }

let add_byte t c =
  let x = Int64.of_int (c land 0xff) in
  {
    a = Int64.mul (Int64.logxor t.a x) prime;
    b = Int64.mul (Int64.logxor t.b x) prime;
  }

let add_char t c = add_byte t (Char.code c)
let add_string t s = String.fold_left add_char t s

(* Feed a native int as 8 little-endian bytes so negative values and
   values sharing low bytes stay distinguishable. *)
let add_int t n =
  let x = Int64.of_int n in
  let acc = ref t in
  for i = 0 to 7 do
    acc :=
      add_byte !acc
        (Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * i)) 0xffL))
  done;
  !acc

let add_int64 t x =
  let acc = ref t in
  for i = 0 to 7 do
    acc :=
      add_byte !acc
        (Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * i)) 0xffL))
  done;
  !acc

(* Mix a sub-digest in by feeding its 16 bytes. *)
let add_digest t d = add_int64 (add_int64 t d.a) d.b
let of_string s = add_string seed s
let to_hex t = Printf.sprintf "%016Lx%016Lx" t.a t.b
let equal x y = Int64.equal x.a y.a && Int64.equal x.b y.b

let compare x y =
  match Int64.compare x.a y.a with 0 -> Int64.compare x.b y.b | c -> c

let hash t = Int64.to_int t.a land max_int
