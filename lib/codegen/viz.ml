let node_name (i : Depend.Trace.instance) =
  Printf.sprintf "s%d_%s" i.Depend.Trace.stmt
    (String.concat "_"
       (List.map
          (fun v -> if v < 0 then Printf.sprintf "m%d" (-v) else string_of_int v)
          (Array.to_list i.Depend.Trace.iter)))

let node_label (i : Depend.Trace.instance) =
  Printf.sprintf "S%d%s" i.Depend.Trace.stmt
    (Linalg.Ivec.to_string i.Depend.Trace.iter)

let dot_of_trace ?(max_nodes = 400) (tr : Depend.Trace.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dependences {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  let n = Array.length tr.Depend.Trace.instances in
  let shown = min n max_nodes in
  for k = 0 to shown - 1 do
    let i = tr.Depend.Trace.instances.(k) in
    Buffer.add_string buf
      (Printf.sprintf "  %s [label=\"%s\"];\n" (node_name i) (node_label i))
  done;
  Depend.Trace.iter_edges tr (fun a b ->
      if a < shown && b < shown then
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s;\n"
             (node_name tr.Depend.Trace.instances.(a))
             (node_name tr.Depend.Trace.instances.(b))));
  if shown < n then
    Buffer.add_string buf
      (Printf.sprintf "  // %d further instances truncated\n" (n - shown));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let dot_of_chains (c : Core.Chain.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph chains {\n  node [shape=circle, fontsize=10];\n";
  List.iteri
    (fun k chain ->
      let name p =
        Printf.sprintf "c%d_%s" k
          (String.concat "_"
             (List.map
                (fun v ->
                  if v < 0 then Printf.sprintf "m%d" (-v) else string_of_int v)
                (Array.to_list p)))
      in
      List.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf "  %s [label=\"%s\"];\n" (name p)
               (Linalg.Ivec.to_string p)))
        chain;
      let rec arrows = function
        | a :: (b :: _ as rest) ->
            Buffer.add_string buf
              (Printf.sprintf "  %s -> %s;\n" (name a) (name b));
            arrows rest
        | _ -> ()
      in
      arrows chain)
    (Core.Chain.to_lists c);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let ascii_grid ~classify ~x_range:(x0, x1) ~y_range:(y0, y1) =
  let buf = Buffer.create 256 in
  for y = y1 downto y0 do
    Buffer.add_string buf (Printf.sprintf "%4d " y);
    for x = x0 to x1 do
      Buffer.add_char buf (classify [| x; y |])
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "     ";
  for x = x0 to x1 do
    Buffer.add_char buf
      (if x mod 10 = 0 then '0' else Char.chr (Char.code '0' + abs (x mod 10)))
  done;
  Buffer.add_string buf "  (x)\n";
  Buffer.contents buf

let ascii_three_sets three ~params ~x_range ~y_range =
  ascii_grid
    ~classify:(fun p ->
      match Core.Threeset.classify_point three ~params p with
      | `P1 -> '1'
      | `P2 -> '2'
      | `P3 -> '3'
      | `Outside -> '.')
    ~x_range ~y_range
