(** Typed strategy plans — the artifact produced by the pipeline's
    classification stage.

    A plan is {e symbolic}: it fixes the partitioning strategy and carries
    every strategy-specific symbolic artifact (three-set partition, unique
    sets, …) but binds no loop-bound parameters.  Materialization at
    concrete parameters happens in {!Driver.materialize}.

    The variant covers the paper's Algorithm 1 branches (REC chains,
    constant-bound dataflow fronts, PDM fallback) {e and} the comparison
    strategies of the evaluation ([unique], [mindist], [doacross]), so
    every frontend — CLI, benchmarks, examples, tests — selects strategies
    through one type instead of re-stitching [Core.Partition] matches. *)

(** Strategy names, used by [--strategy] flags and reports. *)
type strategy =
  | Rec  (** recurrence chains (Algorithm 1 branch 1) *)
  | Dataflow  (** successive dataflow fronts (branch 2) *)
  | Pdm  (** pseudo-distance-matrix uniformization (branch 3 / [27]) *)
  | Unique  (** unique-set oriented partitioning (Ju & Chaudhary) *)
  | Mindist  (** minimum-distance tiling (Punyamurtula et al.) *)
  | Doacross  (** P/V-synchronized DOACROSS (Tzen & Ni) — cost model only *)

val strategy_name : strategy -> string
val strategy_of_string : string -> strategy option
val all_strategies : strategy list

type t =
  | Rec_chains of Core.Partition.rec_plan
      (** three-set partition + disjoint monotonic chains in [P2] *)
  | Dataflow_fronts of { reason : string }
      (** peel [Φ \ ran Rd] fronts on the exact instance graph *)
  | Pdm_fallback of {
      simple : Depend.Solve.simple option;
      reason : string;
    }
      (** PDM uniformization when the analysis produced a single-statement
          summary ([simple = Some _] → true lattice cosets); otherwise the
          exact instance graph stands in for the uniformized schedule *)
  | Unique_sets of {
      rp : Core.Partition.rec_plan;
      u : Baselines.Unique.t;
    }  (** five-region unique-set partitioning over the three sets *)
  | Mindist_tiles of { simple : Depend.Solve.simple }
      (** minimum-distance tiles, internally fully parallel *)
  | Doacross_model of { reason : string }
      (** simulation-only: DOACROSS has no barrier schedule *)

val strategy : t -> strategy
val describe : t -> string
(** One-line human description, e.g. for [recpart partition]. *)

val reason : t -> string option
(** Why this plan was selected (fallback reasons, forced strategies). *)
