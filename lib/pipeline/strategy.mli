(** The common strategy signature: every partitioning scheme — the paper's
    Algorithm 1 branches and the baselines it is evaluated against — is a
    planner from a program to a typed {!Plan.t}, with failures threaded as
    structured {!Diag.error}s.

    [auto] reproduces Algorithm 1's selection (REC if the single-pair
    full-rank hypotheses hold, else dataflow for constant bounds, else
    PDM); [find] retrieves a specific scheme for forced selection
    ([recpart run --strategy pdm], benchmark panels, tests). *)

module type S = sig
  val strategy : Plan.strategy

  val plan : Loopir.Ast.program -> (Plan.t, Diag.error) result
  (** Symbolic planning only — no loop-bound parameters are consumed.
      [Error] when the program is outside the scheme's hypotheses. *)
end

module Rec_chains : S
module Dataflow : S
module Pdm : S
module Unique : S
module Mindist : S
module Doacross : S

val find : Plan.strategy -> (module S)
val auto : Loopir.Ast.program -> (Plan.t, Diag.error) result
(** Algorithm 1 strategy selection; never fails on the shapes the paper
    considers (degrades REC → dataflow → PDM), so an [Error] means even
    the PDM fallback cannot apply. *)

val analyze_simple :
  Loopir.Ast.program -> (Depend.Solve.simple, Diag.error) result
(** Result-based wrapper over {!Depend.Solve.analyze_simple} (shared by
    the strategies and the driver). *)

val predict :
  ?cost:Runtime.Sim.cost ->
  threads:int ->
  Runtime.Sched.t ->
  (string * float) list
(** Per-phase predicted execution time [(phase label, seconds)] from the
    {!Runtime.Sim} cost model ([cost] defaults to the uncalibrated
    {!Runtime.Sim.base_seconds}).  The driver calls this before executing
    a schedule and folds the result, with the realized error, into
    {!Report.t.prediction}. *)
