(** Minimal JSON tree and printer — just enough for machine-readable
    pipeline reports and benchmark trajectories, without pulling a JSON
    dependency into the build. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (RFC 8259 string escaping; non-finite
    floats render as [null]). *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read by humans and
    diffed across PRs. *)

val parse : string -> (t, string) result
(** Strict RFC 8259 parsing of one value (plus surrounding whitespace).
    Numbers without a fraction or exponent come back as [Int], everything
    else as [Float]; [\u] escapes decode to UTF-8.  Round-trips the
    output of {!to_string}/{!to_string_pretty} and of
    [Obs.Trace.to_chrome_json]. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the value bound to [k]; [None] on missing
    keys and non-objects. *)
