type strategy = Rec | Dataflow | Pdm | Unique | Mindist | Doacross

let strategy_name = function
  | Rec -> "rec"
  | Dataflow -> "dataflow"
  | Pdm -> "pdm"
  | Unique -> "unique"
  | Mindist -> "mindist"
  | Doacross -> "doacross"

let all_strategies = [ Rec; Dataflow; Pdm; Unique; Mindist; Doacross ]

let strategy_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun st -> strategy_name st = s) all_strategies

type t =
  | Rec_chains of Core.Partition.rec_plan
  | Dataflow_fronts of { reason : string }
  | Pdm_fallback of { simple : Depend.Solve.simple option; reason : string }
  | Unique_sets of { rp : Core.Partition.rec_plan; u : Baselines.Unique.t }
  | Mindist_tiles of { simple : Depend.Solve.simple }
  | Doacross_model of { reason : string }

let strategy = function
  | Rec_chains _ -> Rec
  | Dataflow_fronts _ -> Dataflow
  | Pdm_fallback _ -> Pdm
  | Unique_sets _ -> Unique
  | Mindist_tiles _ -> Mindist
  | Doacross_model _ -> Doacross

let describe = function
  | Rec_chains _ ->
      "recurrence chains (REC): three-set partition, chains in P2"
  | Dataflow_fronts { reason } ->
      Printf.sprintf "dataflow partitioning (%s)" reason
  | Pdm_fallback { simple; reason } ->
      Printf.sprintf "PDM %s (%s)"
        (match simple with
        | Some _ -> "uniformization over lattice cosets"
        | None -> "fallback via the exact instance graph")
        reason
  | Unique_sets _ -> "unique-set oriented partitioning (five regions)"
  | Mindist_tiles _ -> "minimum-distance tiling"
  | Doacross_model { reason } ->
      Printf.sprintf "DOACROSS synchronization model (%s)" reason

let reason = function
  | Rec_chains _ -> None
  | Dataflow_fronts { reason }
  | Pdm_fallback { reason; _ }
  | Doacross_model { reason } ->
      Some reason
  | Unique_sets _ | Mindist_tiles _ -> None
