let ( let* ) = Result.bind

let analyze_simple prog =
  match Depend.Solve.analyze_simple prog with
  | a -> Ok a
  | exception Invalid_argument m -> Error (Diag.Unsupported m)
  | exception Depend.Space.Unsupported m -> Error (Diag.Unsupported m)
  | exception Presburger.Omega.Blowup m -> Error (Diag.Set_blowup m)

let rec_reject why =
  Obs.Event.emit ~scope:"strategy" ~name:"rec.reject" ~severity:Obs.Event.Warn
    (fun () -> [ ("why", Obs.Event.Str why) ]);
  Error (Diag.Unsupported why)

(* The REC hypotheses (Lemma 1): a single coupled reference pair whose
   coefficient matrices are both full rank. *)
let rec_plan_of prog =
  let* a = analyze_simple prog in
  match a.Depend.Solve.pair with
  | Some p when Depend.Depeq.full_rank p -> (
      match
        Core.Threeset.compute ~phi:a.Depend.Solve.phi ~rd:a.Depend.Solve.rd
      with
      | three ->
          Obs.Event.emit ~scope:"strategy" ~name:"rec.accept" (fun () ->
              [
                ("array", Obs.Event.Str p.Depend.Depeq.arr);
                ("det_a", Obs.Event.Int (Depend.Depeq.det_a p));
                ("det_b", Obs.Event.Int (Depend.Depeq.det_b p));
                ( "why",
                  Obs.Event.Str
                    "Lemma 1 preconditions hold: single coupled reference \
                     pair with full-rank A and B" );
              ]);
          Ok { Core.Partition.simple = a; pair = p; three }
      | exception Presburger.Omega.Blowup m -> Error (Diag.Set_blowup m))
  | Some p ->
      rec_reject
        (Printf.sprintf
           "coupled pair coefficient matrices are not full rank (det A = %d, \
            det B = %d)"
           (Depend.Depeq.det_a p) (Depend.Depeq.det_b p))
  | None -> rec_reject "no single coupled reference pair"

module type S = sig
  val strategy : Plan.strategy
  val plan : Loopir.Ast.program -> (Plan.t, Diag.error) result
end

module Rec_chains : S = struct
  let strategy = Plan.Rec

  let plan prog =
    let* rp = rec_plan_of prog in
    Ok (Plan.Rec_chains rp)
end

module Dataflow : S = struct
  let strategy = Plan.Dataflow

  let plan prog =
    let reason =
      if prog.Loopir.Ast.params = [] then "compile-time-known loop bounds"
      else "forced: fronts peeled at bound parameters"
    in
    Ok (Plan.Dataflow_fronts { reason })
end

module Pdm : S = struct
  let strategy = Plan.Pdm

  let plan prog =
    match analyze_simple prog with
    | Ok a ->
        Ok
          (Plan.Pdm_fallback
             { simple = Some a; reason = "lattice cover of the distance set" })
    | Error (Diag.Unsupported m) ->
        (* No single-statement summary: the exact instance graph stands in
           for the uniformized schedule. *)
        Ok (Plan.Pdm_fallback { simple = None; reason = m })
    | Error e -> Error e
end

module Unique : S = struct
  let strategy = Plan.Unique

  let plan prog =
    let* rp = rec_plan_of prog in
    match
      Baselines.Unique.partition rp.Core.Partition.simple
        ~three:rp.Core.Partition.three
    with
    | u -> Ok (Plan.Unique_sets { rp; u })
    | exception Invalid_argument m -> Error (Diag.Unsupported m)
    | exception Presburger.Omega.Blowup m -> Error (Diag.Set_blowup m)
end

module Mindist : S = struct
  let strategy = Plan.Mindist

  let plan prog =
    let* a = analyze_simple prog in
    Ok (Plan.Mindist_tiles { simple = a })
end

module Doacross : S = struct
  let strategy = Plan.Doacross

  let plan _prog =
    Ok
      (Plan.Doacross_model
         { reason = "P/V-synchronized outer iterations (cost model)" })
end

let find = function
  | Plan.Rec -> (module Rec_chains : S)
  | Plan.Dataflow -> (module Dataflow : S)
  | Plan.Pdm -> (module Pdm : S)
  | Plan.Unique -> (module Unique : S)
  | Plan.Mindist -> (module Mindist : S)
  | Plan.Doacross -> (module Doacross : S)

let selected plan =
  Obs.Event.emit ~scope:"strategy" ~name:"auto.selected" (fun () ->
      [
        ("strategy", Obs.Event.Str (Plan.strategy_name (Plan.strategy plan)));
        ("describe", Obs.Event.Str (Plan.describe plan));
      ]);
  Ok plan

let auto prog =
  match Core.Partition.choose prog with
  | Core.Partition.Rec_chains rp -> selected (Plan.Rec_chains rp)
  | Core.Partition.Dataflow_const ->
      selected (Plan.Dataflow_fronts { reason = "compile-time-known loop bounds" })
  | Core.Partition.Pdm_fallback reason ->
      let simple = Result.to_option (analyze_simple prog) in
      selected (Plan.Pdm_fallback { simple; reason })
  | exception Presburger.Omega.Blowup m -> Error (Diag.Set_blowup m)

(* Cost-model prediction: the strategy layer consults {!Runtime.Sim}
   before execution so every run carries a predicted-vs-actual account
   ({!Report.prediction}) regardless of which scheme planned it. *)
let predict ?(cost = Runtime.Sim.base_seconds) ~threads sched =
  Runtime.Sim.predict cost ~threads sched
