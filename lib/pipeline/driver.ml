let ( let* ) = Result.bind

type materialized =
  | Rec of {
      rp : Core.Partition.rec_plan;
      c : Core.Partition.concrete_rec;
    }
  | Fronts of Core.Dataflow.concrete
  | Tasks of { sched : Runtime.Sched.t }
  | Model of { tr : Depend.Trace.t }

type error = {
  stage : Diag.stage;
  error : Diag.error;
  timings : (string * float) list;
}

let error_to_string { stage; error; _ } =
  Printf.sprintf "%s: %s" (Diag.stage_name stage) (Diag.to_string error)

(* Runs [f], threading typed failures and the known library exceptions
   (symbolic blowup, dataflow step limit) into the result. *)
let guarded f =
  match f () with
  | v -> Ok v
  | exception Diag.Error e -> Error e
  | exception Presburger.Omega.Blowup m -> Error (Diag.Set_blowup m)
  | exception Core.Dataflow.Did_not_terminate n ->
      Error (Diag.Dataflow_step_limit n)
  | exception Invalid_argument m -> Error (Diag.Unsupported m)
  | exception Depend.Space.Unsupported m -> Error (Diag.Unsupported m)

(* ---- individual stages ---------------------------------------------- *)

let analyze = Strategy.analyze_simple

let classify ?strategy prog =
  match strategy with
  | None -> Strategy.auto prog
  | Some s ->
      let (module M : Strategy.S) = Strategy.find s in
      M.plan prog

let check_params prog ~params =
  List.iter
    (fun p ->
      if not (List.mem_assoc p params) then
        Diag.fail (Diag.Unbound_parameter p))
    prog.Loopir.Ast.params

let param_array ~names ~params =
  Array.map
    (fun n ->
      match List.assoc_opt n params with
      | Some v -> v
      | None -> Diag.fail (Diag.Unbound_parameter n))
    names

let materialize plan ~prog ~params =
  guarded (fun () ->
      check_params prog ~params;
      match plan with
      | Plan.Rec_chains rp ->
          let arr =
            param_array ~names:rp.Core.Partition.simple.Depend.Solve.params
              ~params
          in
          let c =
            match Core.Partition.materialize rp ~params:arr with
            | Ok c -> c
            | Error e -> Diag.fail e
          in
          Rec { rp; c }
      | Plan.Dataflow_fronts _ ->
          Fronts (Core.Dataflow.peel_concrete prog ~params)
      | Plan.Pdm_fallback { simple = Some a; _ } ->
          let arr = param_array ~names:a.Depend.Solve.params ~params in
          let pdm = Baselines.Pdm.of_simple a ~params:arr in
          let pts = Depend.Scan.iter_space a.Depend.Solve.stmt ~params in
          let stmt = a.Depend.Solve.stmt.Loopir.Prog.id in
          Tasks { sched = Baselines.Pdm.schedule pdm ~stmt pts }
      | Plan.Pdm_fallback { simple = None; _ } ->
          (* No single-statement summary to uniformize: fall back to the
             exact instance graph, like Algorithm 1 does for Cholesky. *)
          Fronts (Core.Dataflow.peel_concrete prog ~params)
      | Plan.Unique_sets { rp; u } ->
          let arr =
            param_array ~names:rp.Core.Partition.simple.Depend.Solve.params
              ~params
          in
          let stmt =
            rp.Core.Partition.simple.Depend.Solve.stmt.Loopir.Prog.id
          in
          Tasks { sched = Baselines.Unique.schedule u ~stmt ~params:arr }
      | Plan.Mindist_tiles { simple = a } ->
          let arr = param_array ~names:a.Depend.Solve.params ~params in
          let md = Baselines.Mindist.of_simple a ~params:arr in
          let pts = Depend.Scan.iter_space a.Depend.Solve.stmt ~params in
          let stmt = a.Depend.Solve.stmt.Loopir.Prog.id in
          Tasks { sched = Baselines.Mindist.schedule md ~stmt pts }
      | Plan.Doacross_model _ -> Model { tr = Depend.Trace.build prog ~params })

let schedule = function
  | Rec { rp; c } ->
      let stmt = rp.Core.Partition.simple.Depend.Solve.stmt.Loopir.Prog.id in
      Ok (Runtime.Sched.of_rec ~stmt c)
  | Fronts d -> Ok (Runtime.Sched.of_fronts d)
  | Tasks { sched } -> Ok sched
  | Model _ ->
      Error
        (Diag.Unsupported
           "DOACROSS is cost-model only: P/V synchronization has no \
            barrier schedule")

let codegen plan ~prog =
  match plan with
  | Plan.Rec_chains rp -> Ok (Codegen.Emit.rec_partitioning rp)
  | Plan.Dataflow_fronts _ ->
      let* a = Strategy.analyze_simple prog in
      guarded (fun () ->
          let fronts =
            Core.Dataflow.peel_symbolic ~phi:a.Depend.Solve.phi
              ~rd:a.Depend.Solve.rd ~max_steps:64
          in
          Codegen.Emit.dataflow_listing fronts
            ~names:a.Depend.Solve.iters)
  | p ->
      Error
        (Diag.Unsupported
           (Printf.sprintf "no code generator for the %s strategy"
              (Plan.strategy_name (Plan.strategy p))))

let stats = function
  | Rec { c; _ } ->
      let n_chains = Core.Chain.n_chains c.Core.Partition.chains in
      {
        Report.empty_stats with
        p1 = Some (Core.Points.length c.Core.Partition.p1_pts);
        p2 = Some (Core.Chain.total_points c.Core.Partition.chains);
        p3 = Some (Core.Points.length c.Core.Partition.p3_pts);
        n_chains = Some n_chains;
        longest_chain = Some c.Core.Partition.chains.Core.Chain.longest;
        growth = Some c.Core.Partition.growth;
        theorem_bound = c.Core.Partition.theorem_bound;
        n_tasks = Some n_chains;
      }
  | Fronts d -> { Report.empty_stats with n_fronts = Some d.Core.Dataflow.steps }
  | Tasks { sched } ->
      let n_tasks =
        List.fold_left
          (fun acc ph ->
            match ph with
            | Runtime.Sched.Tasks { tasks; _ } -> acc + Array.length tasks
            | Runtime.Sched.Doall _ -> acc)
          0 sched.Runtime.Sched.phases
      in
      {
        Report.empty_stats with
        n_tasks = (if n_tasks > 0 then Some n_tasks else None);
      }
  | Model _ -> Report.empty_stats

(* ---- composed, instrumented run ------------------------------------- *)

type options = {
  threads : int;
  check : bool;
  measure : bool;
  strategy : Plan.strategy option;
  engine : [ `Enum | `Scan ];
  exec_engine : Runtime.Exec.engine;
  chunking : [ `Static | `Cost ];
  workers : Runtime.Workers.t option;
  sim_cost : Runtime.Sim.cost option;
  sink : Obs.Sink.t;
  events : Obs.Event.t;
}

let default_options =
  {
    threads = 4;
    check = true;
    measure = true;
    strategy = None;
    engine = `Scan;
    exec_engine = `Compiled;
    chunking = `Cost;
    workers = None;
    sim_cost = None;
    sink = Obs.Sink.null;
    events = Obs.Event.null;
  }

type outcome = {
  plan : Plan.t;
  concrete : materialized;
  sched : Runtime.Sched.t option;
  report : Report.t;
}

(* The executor's [`Cost] chunking wants concrete cost constants; reuse
   the prediction's calibrated ones when the caller supplied them so the
   chunk sizes and the prediction come from the same model. *)
let exec_chunking options : Runtime.Exec.chunking =
  match options.chunking with
  | `Static -> `Static
  | `Cost ->
      `Cost (Option.value options.sim_cost ~default:Runtime.Sim.base_seconds)

(* The engine option only affects REC materialization; route it through
   [Core.Partition.materialize] by re-dispatching here. *)
let materialize_with ~engine plan ~prog ~params =
  match plan with
  | Plan.Rec_chains rp ->
      guarded (fun () ->
          check_params prog ~params;
          let arr =
            param_array ~names:rp.Core.Partition.simple.Depend.Solve.params
              ~params
          in
          match Core.Partition.materialize ~engine rp ~params:arr with
          | Ok c -> Rec { rp; c }
          | Error e -> Diag.fail e)
  | _ -> materialize plan ~prog ~params

let run ?(options = default_options) ~name ~params prog =
  if options.threads <= 0 then
    Error
      {
        stage = Diag.Execute;
        error = Diag.Invalid_thread_count options.threads;
        timings = [];
      }
  else begin
    let sink = options.sink in
    let timings = ref [] in
    let gcs = ref [] in
    let timed label f =
      Obs.Span.with_ ~sink ~name:("stage:" ^ label) (fun () ->
          let gc0 = Obs.Gcstats.quick () in
          let t0 = Obs.Clock.now_ns () in
          let r = f () in
          timings := (label, Obs.Clock.elapsed_s t0) :: !timings;
          gcs :=
            (label, Obs.Gcstats.(diff ~before:gc0 ~after:(quick ())))
            :: !gcs;
          r)
    in
    (* Mid-pipeline failures keep the stage timings collected so far,
       including the failing stage's own duration (it ran to its typed
       Error). *)
    let at stage r =
      Result.map_error
        (fun error ->
          Obs.Event.emit ~scope:"pipeline" ~name:"stage.failed"
            ~severity:Obs.Event.Warn (fun () ->
              [
                ("stage", Obs.Event.Str (Diag.stage_name stage));
                ("error", Obs.Event.Str (Diag.to_string error));
              ]);
          { stage; error; timings = List.rev !timings })
        r
    in
    let metrics_before = Obs.Metrics.snapshot () in
    Obs.Sink.with_ambient sink @@ fun () ->
    Obs.Event.with_ambient options.events @@ fun () ->
    Obs.Span.with_ ~sink ~name:("run:" ^ name) @@ fun () ->
    let* plan =
      at Diag.Classify
        (timed "classify" (fun () -> classify ?strategy:options.strategy prog))
    in
    let* concrete =
      at Diag.Materialize
        (timed "materialize" (fun () ->
             materialize_with ~engine:options.engine plan ~prog ~params))
    in
    let sched =
      match concrete with
      | Model _ -> None
      | m -> (
          match timed "schedule" (fun () -> schedule m) with
          | Ok s -> Some s
          | Error _ -> None)
    in
    (* Legality: replay the exact instance graph against the schedule. *)
    let* legality =
      match (sched, concrete) with
      | Some s, _ when options.check ->
          at Diag.Validate
            (guarded (fun () ->
                 timed "validate" (fun () ->
                     let tr = Depend.Trace.build prog ~params in
                     match Runtime.Sched.check_legal s tr with
                     | Ok () -> Report.Passed
                     | Error m -> Report.Failed m)))
      | _ -> Ok Report.Skipped
    in
    (* Predict before executing: the cost model is only useful if it is
       held to account against what the executor then measures. *)
    let predicted =
      match sched with
      | None -> None
      | Some s ->
          let cost, cost_source =
            match options.sim_cost with
            | Some c -> (c, "calibrated")
            | None -> (Runtime.Sim.base_seconds, "default")
          in
          Some (Strategy.predict ~cost ~threads:options.threads s, cost_source)
    in
    (* Execution: sequential ground truth + instrumented parallel run, or
       the DOACROSS cost model. *)
    let* ( semantics,
           seq_seconds,
           par_seconds,
           model_makespan,
           loads,
           profiles,
           balance ) =
      match (concrete, sched) with
      | Model { tr }, _ ->
          at Diag.Execute
            (guarded (fun () ->
                 let r =
                   timed "execute" (fun () ->
                       Baselines.Doacross.pipeline tr ~threads:options.threads
                         ~w_iter:1.0 ~delay_factor:0.5)
                 in
                 ( Report.Skipped,
                   None,
                   None,
                   Some r.Baselines.Doacross.makespan,
                   None,
                   [],
                   None )))
      | _, Some s when options.check || options.measure ->
          at Diag.Execute
            (guarded (fun () ->
                 timed "execute" (fun () ->
                     let env = Runtime.Interp.prepare prog ~params in
                     let t0 = Obs.Clock.now_ns () in
                     let seq =
                       Obs.Span.with_ ~sink ~name:"seq-interp" (fun () ->
                           Runtime.Interp.run_sequential env)
                     in
                     let seq_s = Obs.Clock.elapsed_s t0 in
                     let tmd =
                       Runtime.Exec.run_timed ~sink
                         ~engine:options.exec_engine
                         ~chunking:(exec_chunking options)
                         ?workers:options.workers env ~threads:options.threads
                         s
                     in
                     let semantics =
                       if not options.check then Report.Skipped
                       else if Runtime.Arrays.equal seq tmd.Runtime.Exec.store
                       then Report.Passed
                       else
                         Report.Failed
                           "parallel store differs from the sequential run"
                     in
                     let profiles =
                       List.map
                         (fun p ->
                           {
                             Report.label = p.Runtime.Exec.label;
                             instances = p.Runtime.Exec.n_instances;
                             units = p.Runtime.Exec.n_units;
                             seconds = p.Runtime.Exec.seconds;
                             busy_seconds =
                               Array.fold_left ( +. ) 0.0 p.Runtime.Exec.busy;
                             alloc_words =
                               Array.fold_left ( +. ) 0.0
                                 p.Runtime.Exec.alloc;
                           })
                         tmd.Runtime.Exec.phase_stats
                     in
                     let balance =
                       Report.balance_of_phases ~threads:options.threads
                         (List.map
                            (fun p ->
                              ( p.Runtime.Exec.label,
                                p.Runtime.Exec.busy,
                                p.Runtime.Exec.seconds ))
                            tmd.Runtime.Exec.phase_stats)
                     in
                     ( semantics,
                       Some seq_s,
                       Some tmd.Runtime.Exec.seconds,
                       None,
                       Some
                         (Runtime.Exec.thread_loads tmd
                            ~threads:options.threads),
                       profiles,
                       balance ))))
      | _ -> Ok (Report.Skipped, None, None, None, None, [], None)
    in
    let n_instances, n_phases =
      match (concrete, sched) with
      | Model { tr }, _ ->
          (Some (Array.length tr.Depend.Trace.instances), None)
      | _, Some s ->
          (Some (Runtime.Sched.n_instances s), Some (Runtime.Sched.n_phases s))
      | _ -> (None, None)
    in
    let prediction =
      match predicted with
      | None -> None
      | Some (per_phase_pred, cost_source) ->
          (* run_timed profiles phases positionally off the same schedule
             the prediction walked, so zip when the lengths agree. *)
          let actuals =
            if List.length profiles = List.length per_phase_pred then
              List.map
                (fun (p : Report.phase_profile) -> Some p.Report.seconds)
                profiles
            else List.map (fun _ -> None) per_phase_pred
          in
          let per_phase =
            List.map2
              (fun (lbl, pred) actual ->
                {
                  Report.p_label = lbl;
                  predicted_s = pred;
                  actual_s = actual;
                  p_rel_error =
                    Option.bind actual (fun a ->
                        Report.rel_error ~predicted:pred ~actual:a);
                })
              per_phase_pred actuals
          in
          let total_predicted_s =
            List.fold_left (fun acc (_, p) -> acc +. p) 0.0 per_phase_pred
          in
          let rel_error =
            Option.bind par_seconds (fun a ->
                Report.rel_error ~predicted:total_predicted_s ~actual:a)
          in
          Option.iter Runtime.Sim.observe_rel_error rel_error;
          Some
            {
              Report.cost_source;
              per_phase;
              total_predicted_s;
              total_actual_s = par_seconds;
              rel_error;
            }
    in
    let run_stats = stats concrete in
    (* Tick the gateable chain-vs-bound ratio inside the metrics window so
       per-run reports (and baseline gates) see it. *)
    (match (run_stats.Report.longest_chain, run_stats.Report.theorem_bound) with
    | Some measured, Some bound ->
        Obs.Critpath.observe_chain_ratio ~measured ~bound
    | _ -> ());
    let metrics =
      Obs.Metrics.diff ~before:metrics_before ~after:(Obs.Metrics.snapshot ())
    in
    let report =
      {
        Report.program = name;
        params;
        strategy = Plan.strategy_name (Plan.strategy plan);
        reason = Plan.reason plan;
        timings = List.rev !timings;
        n_instances;
        n_phases;
        stats = Some run_stats;
        threads = options.threads;
        legality;
        semantics;
        exec_engine =
          Option.map
            (fun _ -> Runtime.Exec.engine_name options.exec_engine)
            par_seconds;
        chunking =
          Option.map
            (fun _ -> Runtime.Exec.chunking_name (exec_chunking options))
            par_seconds;
        seq_seconds;
        par_seconds;
        model_makespan;
        thread_loads = loads;
        phases = profiles;
        balance;
        prediction;
        gc = List.rev !gcs;
        metrics = (if Obs.Metrics.is_empty metrics then None else Some metrics);
      }
    in
    Ok { plan; concrete; sched; report }
  end
