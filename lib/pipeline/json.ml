type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep_open l r items emit_item =
    match items with
    | [] -> Buffer.add_string buf (l ^ r)
    | _ ->
        Buffer.add_string buf l;
        if indent then Buffer.add_char buf '\n';
        List.iteri
          (fun k item ->
            if k > 0 then begin
              Buffer.add_char buf ',';
              if indent then Buffer.add_char buf '\n'
            end;
            pad (level + 1);
            emit_item item)
          items;
        if indent then begin
          Buffer.add_char buf '\n';
          pad level
        end;
        Buffer.add_string buf r
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_str f)
      else Buffer.add_string buf "null"
  | Str s -> escape buf s
  | List items ->
      sep_open "[" "]" items (fun item ->
          emit buf ~indent ~level:(level + 1) item)
  | Obj fields ->
      sep_open "{" "}" fields (fun (k, item) ->
          escape buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          emit buf ~indent ~level:(level + 1) item)

let render ~indent v =
  let buf = Buffer.create 256 in
  emit buf ~indent ~level:0 v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v

(* ---- parsing --------------------------------------------------------- *)

exception Parse_error of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> error (Printf.sprintf "expected %c, found %c" c d)
    | None -> error (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else error ("invalid literal, expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' -> (
               match Uchar.of_int (hex4 ()) with
               | u -> Buffer.add_utf_8_uchar buf u
               | exception Invalid_argument _ ->
                   (* surrogate halves etc. — emit the replacement char *)
                   Buffer.add_utf_8_uchar buf Uchar.rep)
           | c -> error (Printf.sprintf "invalid escape \\%c" c));
          go ()
      | c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digit_run () =
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done
    in
    digit_run ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digit_run ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digit_run ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error ("invalid number " ^ text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* out of int range: keep the value, as a float *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> error ("invalid number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> error "expected , or ] in array"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> error "expected , or } in object"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (msg, at) ->
      Error (Printf.sprintf "at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
