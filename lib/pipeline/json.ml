type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep_open l r items emit_item =
    match items with
    | [] -> Buffer.add_string buf (l ^ r)
    | _ ->
        Buffer.add_string buf l;
        if indent then Buffer.add_char buf '\n';
        List.iteri
          (fun k item ->
            if k > 0 then begin
              Buffer.add_char buf ',';
              if indent then Buffer.add_char buf '\n'
            end;
            pad (level + 1);
            emit_item item)
          items;
        if indent then begin
          Buffer.add_char buf '\n';
          pad level
        end;
        Buffer.add_string buf r
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_str f)
      else Buffer.add_string buf "null"
  | Str s -> escape buf s
  | List items ->
      sep_open "[" "]" items (fun item ->
          emit buf ~indent ~level:(level + 1) item)
  | Obj fields ->
      sep_open "{" "}" fields (fun (k, item) ->
          escape buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          emit buf ~indent ~level:(level + 1) item)

let render ~indent v =
  let buf = Buffer.create 256 in
  emit buf ~indent ~level:0 v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v
