type partition_stats = {
  p1 : int option;
  p2 : int option;
  p3 : int option;
  n_chains : int option;
  longest_chain : int option;
  growth : float option;
  theorem_bound : int option;
  n_fronts : int option;
  n_tasks : int option;
}

let empty_stats =
  {
    p1 = None;
    p2 = None;
    p3 = None;
    n_chains = None;
    longest_chain = None;
    growth = None;
    theorem_bound = None;
    n_fronts = None;
    n_tasks = None;
  }

type check_result = Passed | Failed of string | Skipped

type phase_profile = {
  label : string;
  instances : int;
  units : int;
  seconds : float;
}

type t = {
  program : string;
  params : (string * int) list;
  strategy : string;
  reason : string option;
  timings : (string * float) list;
  n_instances : int option;
  n_phases : int option;
  stats : partition_stats option;
  threads : int;
  legality : check_result;
  semantics : check_result;
  seq_seconds : float option;
  par_seconds : float option;
  model_makespan : float option;
  thread_loads : int array option;
  phases : phase_profile list;
}

let check_result_string = function
  | Passed -> "ok"
  | Failed m -> "FAILED: " ^ m
  | Skipped -> "skipped"

(* ---- text ------------------------------------------------------------ *)

let to_text r =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "program  : %s%s" r.program
    (match r.params with
    | [] -> ""
    | ps ->
        "  ["
        ^ String.concat ", "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) ps)
        ^ "]");
  line "strategy : %s%s" r.strategy
    (match r.reason with None -> "" | Some why -> "  (" ^ why ^ ")");
  (match (r.n_phases, r.n_instances) with
  | Some np, Some ni -> line "schedule : %d phases, %d instances" np ni
  | _ -> ());
  (match r.stats with
  | None -> ()
  | Some s ->
      let parts =
        List.filter_map Fun.id
          [
            Option.map (Printf.sprintf "|P1| = %d") s.p1;
            Option.map (Printf.sprintf "|P2| = %d") s.p2;
            Option.map (Printf.sprintf "|P3| = %d") s.p3;
            Option.map (Printf.sprintf "chains = %d") s.n_chains;
            Option.map (Printf.sprintf "longest = %d") s.longest_chain;
            Option.map (Printf.sprintf "fronts = %d") s.n_fronts;
            Option.map (Printf.sprintf "tasks = %d") s.n_tasks;
          ]
      in
      if parts <> [] then line "partition: %s" (String.concat ", " parts);
      match (s.growth, s.theorem_bound) with
      | Some g, Some b -> line "theorem 1: growth %g, chain bound %d" g b
      | Some g, None -> line "theorem 1: growth %g (unbounded)" g
      | _ -> ());
  line "stages   :%s"
    (String.concat ""
       (List.map
          (fun (name, sec) -> Printf.sprintf "  %s %.4fs" name sec)
          r.timings));
  line "legality : %s" (check_result_string r.legality);
  line "semantics: %s" (check_result_string r.semantics);
  (match (r.par_seconds, r.seq_seconds) with
  | Some par, Some seq ->
      line "wall time: %.4fs on %d thread(s) (sequential interp: %.4fs)" par
        r.threads seq
  | Some par, None -> line "wall time: %.4fs on %d thread(s)" par r.threads
  | None, Some seq -> line "wall time: sequential interp %.4fs" seq
  | None, None -> ());
  (match r.model_makespan with
  | Some m -> line "model    : DOACROSS makespan %.1f (unit work per instance)" m
  | None -> ());
  (match r.thread_loads with
  | Some loads ->
      line "loads    : %s"
        (String.concat " "
           (Array.to_list (Array.map string_of_int loads)))
  | None -> ());
  List.iter
    (fun p ->
      line "  phase %-12s %7d inst %5d unit(s) %.4fs" p.label p.instances
        p.units p.seconds)
    r.phases;
  Buffer.contents buf

(* ---- json ------------------------------------------------------------ *)

let opt f = function None -> [] | Some v -> [ f v ]

let stats_json s =
  let field name conv v = opt (fun x -> (name, conv x)) v in
  Json.Obj
    (List.concat
       [
         field "p1" (fun n -> Json.Int n) s.p1;
         field "p2" (fun n -> Json.Int n) s.p2;
         field "p3" (fun n -> Json.Int n) s.p3;
         field "chains" (fun n -> Json.Int n) s.n_chains;
         field "longest_chain" (fun n -> Json.Int n) s.longest_chain;
         field "growth" (fun g -> Json.Float g) s.growth;
         field "theorem_bound" (fun n -> Json.Int n) s.theorem_bound;
         field "fronts" (fun n -> Json.Int n) s.n_fronts;
         field "tasks" (fun n -> Json.Int n) s.n_tasks;
       ])

let check_json = function
  | Passed -> Json.Str "ok"
  | Failed m -> Json.Obj [ ("failed", Json.Str m) ]
  | Skipped -> Json.Str "skipped"

let to_json r =
  Json.Obj
    (List.concat
       [
         [ ("program", Json.Str r.program) ];
         [
           ( "params",
             Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.params) );
         ];
         [ ("strategy", Json.Str r.strategy) ];
         opt (fun why -> ("reason", Json.Str why)) r.reason;
         [
           ( "stages",
             Json.Obj
               (List.map (fun (name, s) -> (name, Json.Float s)) r.timings) );
         ];
         opt (fun n -> ("instances", Json.Int n)) r.n_instances;
         opt (fun n -> ("phases", Json.Int n)) r.n_phases;
         opt (fun s -> ("partition", stats_json s)) r.stats;
         [ ("threads", Json.Int r.threads) ];
         [ ("legality", check_json r.legality) ];
         [ ("semantics", check_json r.semantics) ];
         opt (fun s -> ("seq_seconds", Json.Float s)) r.seq_seconds;
         opt (fun s -> ("par_seconds", Json.Float s)) r.par_seconds;
         opt (fun s -> ("model_makespan", Json.Float s)) r.model_makespan;
         opt
           (fun loads ->
             ( "thread_loads",
               Json.List
                 (Array.to_list (Array.map (fun l -> Json.Int l) loads)) ))
           r.thread_loads;
         (match r.phases with
         | [] -> []
         | ps ->
             [
               ( "phase_profile",
                 Json.List
                   (List.map
                      (fun p ->
                        Json.Obj
                          [
                            ("label", Json.Str p.label);
                            ("instances", Json.Int p.instances);
                            ("units", Json.Int p.units);
                            ("seconds", Json.Float p.seconds);
                          ])
                      ps) );
             ]);
       ])
