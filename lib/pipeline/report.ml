type partition_stats = {
  p1 : int option;
  p2 : int option;
  p3 : int option;
  n_chains : int option;
  longest_chain : int option;
  growth : float option;
  theorem_bound : int option;
  n_fronts : int option;
  n_tasks : int option;
}

let empty_stats =
  {
    p1 = None;
    p2 = None;
    p3 = None;
    n_chains = None;
    longest_chain = None;
    growth = None;
    theorem_bound = None;
    n_fronts = None;
    n_tasks = None;
  }

type check_result = Passed | Failed of string | Skipped

type phase_profile = {
  label : string;
  instances : int;
  units : int;
  seconds : float;
  busy_seconds : float;
  alloc_words : float;
}

type phase_prediction = {
  p_label : string;
  predicted_s : float;
  actual_s : float option;
  p_rel_error : float option;
}

type prediction = {
  cost_source : string;
  per_phase : phase_prediction list;
  total_predicted_s : float;
  total_actual_s : float option;
  rel_error : float option;
}

let rel_error ~predicted ~actual =
  if actual > 0.0 && Float.is_finite predicted then
    let e = Float.abs (predicted -. actual) /. actual in
    if Float.is_finite e then Some e else None
  else None

type balance = {
  busy : float array;
  busy_max : float;
  busy_min : float;
  busy_mean : float;
  idle_fraction : float;
  per_phase_idle : (string * float) list;
}

(* Idle time is a fraction by construction; degenerate schedules (zero or
   sub-tick wall time, empty busy arrays, non-finite clock readings) must
   clamp to 0.0 rather than leak nan/inf into reports and the bench
   gate. *)
let idle_frac ~busy_sum ~slots ~wall =
  if not (Float.is_finite wall) || wall <= 0.0 then 0.0
  else
    let f = 1.0 -. (busy_sum /. (float_of_int (max 1 slots) *. wall)) in
    if Float.is_finite f then Float.max 0.0 (Float.min 1.0 f) else 0.0

let balance_of_phases ~threads stats =
  match stats with
  | [] -> None
  | stats ->
      let threads = max 1 threads in
      let slots = Array.make threads 0.0 in
      let total_wall = ref 0.0 in
      let per_phase_idle =
        List.map
          (fun (label, busy, seconds) ->
            Array.iteri
              (fun k b ->
                let k = min k (threads - 1) in
                slots.(k) <- slots.(k) +. b)
              busy;
            if Float.is_finite seconds && seconds > 0.0 then
              total_wall := !total_wall +. seconds;
            let sum = Array.fold_left ( +. ) 0.0 busy in
            ( label,
              idle_frac ~busy_sum:sum ~slots:(Array.length busy)
                ~wall:seconds ))
          stats
      in
      let busy_max = Array.fold_left max slots.(0) slots in
      let busy_min = Array.fold_left min slots.(0) slots in
      let busy_sum = Array.fold_left ( +. ) 0.0 slots in
      let busy_mean = busy_sum /. float_of_int threads in
      let idle_fraction =
        idle_frac ~busy_sum ~slots:threads ~wall:!total_wall
      in
      Some
        {
          busy = slots;
          busy_max;
          busy_min;
          busy_mean;
          idle_fraction;
          per_phase_idle;
        }

type t = {
  program : string;
  params : (string * int) list;
  strategy : string;
  reason : string option;
  timings : (string * float) list;
  n_instances : int option;
  n_phases : int option;
  stats : partition_stats option;
  threads : int;
  legality : check_result;
  semantics : check_result;
  exec_engine : string option;
      (** execution engine of the parallel run
          ("bytecode"/"compiled"/"interp"); [None] when nothing was
          executed *)
  chunking : string option;
      (** chunk policy of the parallel run ("static"/"cost"); [None] when
          nothing was executed *)
  seq_seconds : float option;
  par_seconds : float option;
  model_makespan : float option;
  thread_loads : int array option;
  phases : phase_profile list;
  balance : balance option;
  prediction : prediction option;
  gc : (string * Obs.Gcstats.t) list;
  metrics : Obs.Metrics.t option;
}

let check_result_string = function
  | Passed -> "ok"
  | Failed m -> "FAILED: " ^ m
  | Skipped -> "skipped"

(* ---- text ------------------------------------------------------------ *)

let to_text r =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "program  : %s%s" r.program
    (match r.params with
    | [] -> ""
    | ps ->
        "  ["
        ^ String.concat ", "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) ps)
        ^ "]");
  line "strategy : %s%s" r.strategy
    (match r.reason with None -> "" | Some why -> "  (" ^ why ^ ")");
  (match (r.n_phases, r.n_instances) with
  | Some np, Some ni -> line "schedule : %d phases, %d instances" np ni
  | _ -> ());
  (match r.stats with
  | None -> ()
  | Some s ->
      let parts =
        List.filter_map Fun.id
          [
            Option.map (Printf.sprintf "|P1| = %d") s.p1;
            Option.map (Printf.sprintf "|P2| = %d") s.p2;
            Option.map (Printf.sprintf "|P3| = %d") s.p3;
            Option.map (Printf.sprintf "chains = %d") s.n_chains;
            Option.map (Printf.sprintf "longest = %d") s.longest_chain;
            Option.map (Printf.sprintf "fronts = %d") s.n_fronts;
            Option.map (Printf.sprintf "tasks = %d") s.n_tasks;
          ]
      in
      if parts <> [] then line "partition: %s" (String.concat ", " parts);
      match (s.growth, s.theorem_bound) with
      | Some g, Some b -> line "theorem 1: growth %g, chain bound %d" g b
      | Some g, None -> line "theorem 1: growth %g (unbounded)" g
      | _ -> ());
  line "stages   :%s"
    (String.concat ""
       (List.map
          (fun (name, sec) -> Printf.sprintf "  %s %.4fs" name sec)
          r.timings));
  line "legality : %s" (check_result_string r.legality);
  line "semantics: %s" (check_result_string r.semantics);
  (match r.exec_engine with
  | Some e ->
      line "engine   : %s%s" e
        (match r.chunking with
        | Some c -> Printf.sprintf " (%s chunking)" c
        | None -> "")
  | None -> ());
  (match (r.par_seconds, r.seq_seconds) with
  | Some par, Some seq ->
      line "wall time: %.4fs on %d thread(s) (sequential interp: %.4fs)" par
        r.threads seq
  | Some par, None -> line "wall time: %.4fs on %d thread(s)" par r.threads
  | None, Some seq -> line "wall time: sequential interp %.4fs" seq
  | None, None -> ());
  (match r.model_makespan with
  | Some m -> line "model    : DOACROSS makespan %.1f (unit work per instance)" m
  | None -> ());
  (match r.thread_loads with
  | Some loads ->
      line "loads    : %s"
        (String.concat " "
           (Array.to_list (Array.map string_of_int loads)))
  | None -> ());
  List.iter
    (fun p ->
      line "  phase %-12s %7d inst %5d unit(s) %.4fs  %.0f alloc words"
        p.label p.instances p.units p.seconds p.alloc_words)
    r.phases;
  (match r.balance with
  | None -> ()
  | Some b ->
      line "domains  : busy max %.4fs / min %.4fs / mean %.4fs, idle %.1f%%"
        b.busy_max b.busy_min b.busy_mean (100.0 *. b.idle_fraction);
      List.iter
        (fun (label, idle) ->
          line "  barrier %-10s idle %.1f%%" label (100.0 *. idle))
        b.per_phase_idle);
  (match r.prediction with
  | None -> ()
  | Some p ->
      line "predict  : %.4fs total (%s cost model)%s" p.total_predicted_s
        p.cost_source
        (match (p.total_actual_s, p.rel_error) with
        | Some a, Some e ->
            Printf.sprintf " vs %.4fs measured, rel error %.0f%%" a
              (100.0 *. e)
        | Some a, None -> Printf.sprintf " vs %.4fs measured" a
        | None, _ -> "");
      List.iter
        (fun pp ->
          line "  phase %-12s predicted %.4fs%s" pp.p_label pp.predicted_s
            (match (pp.actual_s, pp.p_rel_error) with
            | Some a, Some e ->
                Printf.sprintf "  actual %.4fs  rel error %.0f%%" a
                  (100.0 *. e)
            | Some a, None -> Printf.sprintf "  actual %.4fs" a
            | None, _ -> ""))
        p.per_phase);
  (match List.filter (fun (_, g) -> not (Obs.Gcstats.is_zero g)) r.gc with
  | [] -> ()
  | gcs ->
      line "gc       :";
      List.iter
        (fun (stage, g) ->
          line "  %-12s %12.0f words alloc  %4d minor / %d major gc%s" stage
            (Obs.Gcstats.allocated_words g)
            g.Obs.Gcstats.minor_collections g.Obs.Gcstats.major_collections
            (if g.Obs.Gcstats.compactions > 0 then
               Printf.sprintf "  %d compaction(s)" g.Obs.Gcstats.compactions
             else ""))
        gcs);
  (match r.metrics with
  | None -> ()
  | Some m ->
      if not (Obs.Metrics.is_empty m) then begin
        line "metrics  :";
        List.iter
          (fun (name, v) -> line "  %-32s %d" name v)
          m.Obs.Metrics.counters;
        List.iter
          (fun (name, h) ->
            line "  %-32s count %d, sum %d, p50 %.0f, p99 %.0f" name
              h.Obs.Histogram.count h.Obs.Histogram.sum
              (Obs.Histogram.percentile h 0.5)
              (Obs.Histogram.percentile h 0.99))
          m.Obs.Metrics.histograms
      end);
  Buffer.contents buf

(* ---- json ------------------------------------------------------------ *)

let opt f = function None -> [] | Some v -> [ f v ]

let stats_json s =
  let field name conv v = opt (fun x -> (name, conv x)) v in
  Json.Obj
    (List.concat
       [
         field "p1" (fun n -> Json.Int n) s.p1;
         field "p2" (fun n -> Json.Int n) s.p2;
         field "p3" (fun n -> Json.Int n) s.p3;
         field "chains" (fun n -> Json.Int n) s.n_chains;
         field "longest_chain" (fun n -> Json.Int n) s.longest_chain;
         field "growth" (fun g -> Json.Float g) s.growth;
         field "theorem_bound" (fun n -> Json.Int n) s.theorem_bound;
         field "fronts" (fun n -> Json.Int n) s.n_fronts;
         field "tasks" (fun n -> Json.Int n) s.n_tasks;
       ])

let check_json = function
  | Passed -> Json.Str "ok"
  | Failed m -> Json.Obj [ ("failed", Json.Str m) ]
  | Skipped -> Json.Str "skipped"

let balance_json b =
  Json.Obj
    [
      ( "busy_seconds",
        Json.List (Array.to_list (Array.map (fun s -> Json.Float s) b.busy)) );
      ("busy_max", Json.Float b.busy_max);
      ("busy_min", Json.Float b.busy_min);
      ("busy_mean", Json.Float b.busy_mean);
      ("idle_fraction", Json.Float b.idle_fraction);
      ( "per_phase_idle",
        Json.Obj
          (List.map (fun (l, idle) -> (l, Json.Float idle)) b.per_phase_idle)
      );
    ]

let prediction_json p =
  Json.Obj
    (List.concat
       [
         [ ("cost_source", Json.Str p.cost_source) ];
         [ ("predicted_s", Json.Float p.total_predicted_s) ];
         opt (fun a -> ("actual_s", Json.Float a)) p.total_actual_s;
         opt (fun e -> ("rel_error", Json.Float e)) p.rel_error;
         [
           ( "per_phase",
             Json.List
               (List.map
                  (fun pp ->
                    Json.Obj
                      (List.concat
                         [
                           [ ("label", Json.Str pp.p_label) ];
                           [ ("predicted_s", Json.Float pp.predicted_s) ];
                           opt (fun a -> ("actual_s", Json.Float a)) pp.actual_s;
                           opt
                             (fun e -> ("rel_error", Json.Float e))
                             pp.p_rel_error;
                         ]))
                  p.per_phase) );
         ];
       ])

let gcstats_json (g : Obs.Gcstats.t) =
  Json.Obj
    [
      ("minor_words", Json.Float g.Obs.Gcstats.minor_words);
      ("promoted_words", Json.Float g.Obs.Gcstats.promoted_words);
      ("major_words", Json.Float g.Obs.Gcstats.major_words);
      ("minor_collections", Json.Int g.Obs.Gcstats.minor_collections);
      ("major_collections", Json.Int g.Obs.Gcstats.major_collections);
      ("compactions", Json.Int g.Obs.Gcstats.compactions);
      ("allocated_words", Json.Float (Obs.Gcstats.allocated_words g));
    ]

let metrics_json (m : Obs.Metrics.t) =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (name, v) -> (name, Json.Int v)) m.Obs.Metrics.counters)
      );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (name, h) ->
               ( name,
                 Json.Obj
                   [
                     ("count", Json.Int h.Obs.Histogram.count);
                     ("sum", Json.Int h.Obs.Histogram.sum);
                     ("p50", Json.Float (Obs.Histogram.percentile h 0.5));
                     ("p99", Json.Float (Obs.Histogram.percentile h 0.99));
                     ( "buckets",
                       Json.Obj
                         (List.map
                            (fun (ub, n) -> (string_of_int ub, Json.Int n))
                            h.Obs.Histogram.buckets) );
                   ] ))
             m.Obs.Metrics.histograms) );
    ]

let to_json r =
  Json.Obj
    (List.concat
       [
         [ ("program", Json.Str r.program) ];
         [
           ( "params",
             Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.params) );
         ];
         [ ("strategy", Json.Str r.strategy) ];
         opt (fun why -> ("reason", Json.Str why)) r.reason;
         [
           ( "stages",
             Json.Obj
               (List.map (fun (name, s) -> (name, Json.Float s)) r.timings) );
         ];
         opt (fun n -> ("instances", Json.Int n)) r.n_instances;
         opt (fun n -> ("phases", Json.Int n)) r.n_phases;
         opt (fun s -> ("partition", stats_json s)) r.stats;
         [ ("threads", Json.Int r.threads) ];
         [ ("legality", check_json r.legality) ];
         [ ("semantics", check_json r.semantics) ];
         opt (fun e -> ("exec_engine", Json.Str e)) r.exec_engine;
         opt (fun c -> ("chunking", Json.Str c)) r.chunking;
         opt (fun s -> ("seq_seconds", Json.Float s)) r.seq_seconds;
         opt (fun s -> ("par_seconds", Json.Float s)) r.par_seconds;
         opt (fun s -> ("model_makespan", Json.Float s)) r.model_makespan;
         opt
           (fun loads ->
             ( "thread_loads",
               Json.List
                 (Array.to_list (Array.map (fun l -> Json.Int l) loads)) ))
           r.thread_loads;
         (match r.phases with
         | [] -> []
         | ps ->
             [
               ( "phase_profile",
                 Json.List
                   (List.map
                      (fun p ->
                        Json.Obj
                          [
                            ("label", Json.Str p.label);
                            ("instances", Json.Int p.instances);
                            ("units", Json.Int p.units);
                            ("seconds", Json.Float p.seconds);
                            ("busy_seconds", Json.Float p.busy_seconds);
                            ("alloc_words", Json.Float p.alloc_words);
                          ])
                      ps) );
             ]);
         opt (fun b -> ("balance", balance_json b)) r.balance;
         opt (fun p -> ("prediction", prediction_json p)) r.prediction;
         (match r.gc with
         | [] -> []
         | gcs ->
             [
               ( "gc",
                 Json.Obj
                   (List.map (fun (stage, g) -> (stage, gcstats_json g)) gcs)
               );
             ]);
         (match r.metrics with
         | Some m when not (Obs.Metrics.is_empty m) ->
             [ ("metrics", metrics_json m) ]
         | _ -> []);
       ])
