(** The benchmark regression gate: diff a current [BENCH_pipeline.json]
    document against a committed baseline and flag stage timings or
    metric counters that regressed past a threshold.

    Both documents use the schema written by [bench/main.ml]:
    [{"schema_version": 1, "entries": [...]}], where each entry carries a
    program name and per-thread-count runs with ["stages"] (stage name →
    seconds) and ["metrics"]["counters"] blocks.  The legacy shape — a
    bare top-level list of entries — is still accepted as a baseline, so
    gates keep working across the schema change.

    Comparisons are keyed by (program, threads): pairs present in only
    one document are skipped, not flagged — a baseline from an older
    bench run stays usable when programs are added.  Noise damping:
    stage timings below [min_seconds] in both documents and counters
    below [min_count] in both are never flagged, whatever the ratio. *)

type regression = {
  program : string;
  threads : int;
  what : string;  (** e.g. ["stage:classify"] or ["counter:dtests.gcd"] *)
  baseline : float;
  current : float;
  ratio : float;  (** [current / baseline] *)
}

type outcome = {
  regressions : regression list;
  compared : int;  (** individual stage/counter comparisons performed *)
}

val entries : Json.t -> (Json.t list, string) result
(** The entry list of a baseline/current document; accepts the
    [schema_version] wrapper and the legacy bare list.  [Error] on any
    other shape or an unsupported [schema_version]. *)

val check :
  ?min_seconds:float ->
  ?min_count:int ->
  threshold_pct:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  (outcome, string) result
(** Flags every stage timing and counter that grew more than
    [threshold_pct] percent over the baseline (and exceeds the absolute
    floors: [min_seconds], default [0.05] — millisecond-scale stage
    timings swing 2× run to run from domain-spawn variance, so only
    stages that reach tens of milliseconds in at least one document are
    judged; [min_count], default [16]).  Metric counters are
    deterministic, so they carry the precision the damped timings give
    up.  [Error] when either document does not parse as a bench
    schema. *)

val to_text : threshold_pct:float -> outcome -> string
(** Human-readable verdict: one line per regression (or a pass line),
    suitable for CI logs. *)
