type regression = {
  program : string;
  threads : int;
  what : string;
  baseline : float;
  current : float;
  ratio : float;
}

type outcome = { regressions : regression list; compared : int }

let entries = function
  | Json.List l -> Ok l
  | Json.Obj _ as doc -> (
      match Json.member "schema_version" doc with
      (* v2 added the analyze (memoization) section; entries are
         backward-compatible, so both versions read the same way. *)
      | Some (Json.Int (1 | 2)) -> (
          match Json.member "entries" doc with
          | Some (Json.List l) -> Ok l
          | Some _ -> Error "bench document: \"entries\" is not a list"
          | None -> Error "bench document: missing \"entries\"")
      | Some v ->
          Error
            (Printf.sprintf "bench document: unsupported schema_version %s"
               (Json.to_string v))
      | None -> Error "bench document: object without \"schema_version\"")
  | _ -> Error "bench document: expected an object or a list"

let str_member k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let int_member k j =
  match Json.member k j with Some (Json.Int n) -> Some n | _ -> None

(* (program, threads) → (stage name → seconds, counter name → value) for
   every run of every entry. *)
let index_runs entry_list =
  List.concat_map
    (fun entry ->
      match (str_member "program" entry, Json.member "runs" entry) with
      | Some program, Some (Json.List runs) ->
          List.filter_map
            (fun run ->
              match int_member "threads" run with
              | None -> None
              | Some threads ->
                  let stages =
                    match Json.member "stages" run with
                    | Some (Json.Obj fields) ->
                        List.filter_map
                          (fun (k, v) ->
                            match v with
                            | Json.Float f -> Some (k, f)
                            | Json.Int n -> Some (k, float_of_int n)
                            | _ -> None)
                          fields
                    | _ -> []
                  in
                  let counters =
                    match
                      Option.bind
                        (Json.member "metrics" run)
                        (Json.member "counters")
                    with
                    | Some (Json.Obj fields) ->
                        List.filter_map
                          (fun (k, v) ->
                            match v with
                            | Json.Int n -> Some (k, float_of_int n)
                            | _ -> None)
                          fields
                    | _ -> []
                  in
                  Some ((program, threads), (stages, counters)))
            runs
      | _ -> [])
    entry_list

let check ?(min_seconds = 0.05) ?(min_count = 16) ~threshold_pct ~baseline
    ~current () =
  match (entries baseline, entries current) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("current: " ^ e)
  | Ok base_entries, Ok cur_entries ->
      let base_idx = index_runs base_entries in
      let cur_idx = index_runs cur_entries in
      let factor = 1.0 +. (threshold_pct /. 100.0) in
      let regressions = ref [] in
      let compared = ref 0 in
      let flag (program, threads) what ~base ~cur ~floor =
        incr compared;
        (* Below the floor in both documents the measurement is noise,
           whatever the ratio. *)
        if
          (base >= floor || cur >= floor)
          && base > 0.0
          && cur > base *. factor
        then
          regressions :=
            {
              program;
              threads;
              what;
              baseline = base;
              current = cur;
              ratio = cur /. base;
            }
            :: !regressions
      in
      List.iter
        (fun (key, (base_stages, base_counters)) ->
          match List.assoc_opt key cur_idx with
          | None -> ()
          | Some (cur_stages, cur_counters) ->
              List.iter
                (fun (stage, base) ->
                  match List.assoc_opt stage cur_stages with
                  | None -> ()
                  | Some cur ->
                      flag key ("stage:" ^ stage) ~base ~cur
                        ~floor:min_seconds)
                base_stages;
              List.iter
                (fun (counter, base) ->
                  match List.assoc_opt counter cur_counters with
                  | None -> ()
                  | Some cur ->
                      flag key ("counter:" ^ counter) ~base ~cur
                        ~floor:(float_of_int min_count))
                base_counters)
        base_idx;
      Ok { regressions = List.rev !regressions; compared = !compared }

let to_text ~threshold_pct o =
  let buf = Buffer.create 256 in
  (match o.regressions with
  | [] ->
      Printf.bprintf buf
        "regression gate: PASS (%d comparisons within +%g%% of baseline)\n"
        o.compared threshold_pct
  | rs ->
      Printf.bprintf buf
        "regression gate: FAIL (%d of %d comparisons exceed +%g%%)\n"
        (List.length rs) o.compared threshold_pct;
      List.iter
        (fun r ->
          Printf.bprintf buf
            "  %s t=%d %-28s baseline %g -> current %g  (x%.2f)\n" r.program
            r.threads r.what r.baseline r.current r.ratio)
        rs);
  Buffer.contents buf
